// Webserver: the paper's Lighttpd workload (§9.1) as a runnable example.
// A master SIP binds a listening socket and spawns worker SIPs that
// inherit it; an ApacheBench-style client hammers the server over the
// host loopback and reports throughput.
//
// One server instance survives every benchmark round: workers serve
// until an in-band stop request (see workloads.StopHTTPD), and — thanks
// to the M:N scheduler — more workers than SGX TCS entries can be live,
// each parked in accept at no hart cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/workloads"
)

func main() {
	const (
		port     = 8080
		workers  = 4
		requests = 200
	)
	occ, err := workloads.NewOcclumKernel(workloads.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}

	master, err := workloads.InstallHTTPD(occ, port, workers)
	if err != nil {
		log.Fatal(err)
	}
	p, err := occ.Spawn(master, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lighttpd master (pid %d) + %d workers serving 10 KB pages on :%d\n",
		p.PID(), workers, port)

	for _, concurrency := range []int{1, 4, 16} {
		res := workloads.RunHTTPBench(occ, port, concurrency, requests)
		fmt.Printf("  c=%-3d %6.0f req/s  (%d requests, %d failed, %.1f MB served)\n",
			concurrency, res.Throughput(), res.Requests, res.Failed,
			float64(res.Bytes)/(1<<20))
	}

	workloads.StopHTTPD(occ, port, workers)
	if status := p.Wait(); status != 0 {
		log.Fatalf("master exited with %d", status)
	}
	snap := occ.Sys.OS.Sched().Snapshot()
	fmt.Printf("sched: %d parks, %d steals, %d preempts, %.0f%% hart utilization\n",
		snap.Parks, snap.Steals, snap.Preempts, 100*snap.Utilization())
}
