// Webserver: the paper's Lighttpd workload (§9.1) as a runnable example.
// A master SIP binds a listening socket and spawns two worker SIPs that
// inherit it; an ApacheBench-style client hammers the server over the
// host loopback and reports throughput.
package main

import (
	"fmt"
	"log"

	"repro/internal/workloads"
)

func main() {
	const (
		port     = 8080
		workers  = 2
		requests = 200
	)
	occ, err := workloads.NewOcclumKernel(workloads.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}

	master, err := workloads.InstallHTTPD(occ, port, workers, requests)
	if err != nil {
		log.Fatal(err)
	}
	p, err := occ.Spawn(master, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lighttpd master (pid %d) + %d workers serving 10 KB pages on :%d\n",
		p.PID(), workers, port)

	for _, concurrency := range []int{1, 4, 16} {
		if concurrency != 1 {
			// Respawn the server for each round (workers exit after
			// their request quota).
			p, err = occ.Spawn(master, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
		}
		res := workloads.RunHTTPBench(occ, port, concurrency, requests)
		if status := p.Wait(); status != 0 {
			log.Fatalf("master exited with %d", status)
		}
		fmt.Printf("  c=%-3d %6.0f req/s  (%d requests, %d failed, %.1f MB served)\n",
			concurrency, res.Throughput(), res.Requests, res.Failed,
			float64(res.Bytes)/(1<<20))
	}
}
