// Webserver: the paper's Lighttpd workload (§9.1) as a runnable example,
// upgraded to the event-driven configuration. A master SIP binds a
// nonblocking listening socket and spawns epoll-loop worker SIPs that
// inherit it; an ApacheBench-style client hammers the server over the
// host loopback, then a C10K round holds a thousand connections open at
// once — far past the hart count, which the seed's thread-per-connection
// server could never serve concurrently.
//
// Every blocking wait in the server (epoll_wait, accept, recv, send)
// parks its SIP and releases the hart; the scheduler and netstat
// counters printed at the end prove it.
package main

import (
	"fmt"
	"log"

	"repro/internal/libos"
	"repro/internal/workloads"
)

func main() {
	const (
		port     = 8080
		workers  = 4
		harts    = 4
		requests = 200
	)
	spec := workloads.DefaultSpec()
	spec.Domains = workers + 2
	spec.Harts = harts
	occ, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		log.Fatal(err)
	}

	master, err := workloads.InstallEventHTTPD(occ, port, workers)
	if err != nil {
		log.Fatal(err)
	}
	p, err := occ.Spawn(master, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event-driven httpd master (pid %d) + %d epoll workers serving 10 KB pages on :%d (%d harts)\n",
		p.PID(), workers, port, harts)

	for _, concurrency := range []int{1, 4, 16} {
		res := workloads.RunHTTPBench(occ, port, concurrency, requests)
		fmt.Printf("  c=%-4d %6.0f req/s  (%d requests, %d failed, %.1f MB served)\n",
			concurrency, res.Throughput(), res.Requests, res.Failed,
			float64(res.Bytes)/(1<<20))
	}

	// The C10K round: 1000 connections all open before the first
	// request is sent.
	c10k := workloads.RunC10K(occ, port, 1000, 1)
	fmt.Printf("  c10k   %6.0f req/s  (%d concurrent conns, %d failed, p50=%v p99=%v)\n",
		c10k.Throughput(), c10k.Conns, c10k.Failed, c10k.P50, c10k.P99)

	workloads.StopHTTPD(occ, port, workers)
	if status := p.Wait(); status != 0 {
		log.Fatalf("master exited with %d", status)
	}
	snap := occ.Sys.OS.Sched().Snapshot()
	net := libos.NetStats()
	fmt.Printf("sched: %d parks, %d steals, %d preempts, %.0f%% hart utilization\n",
		snap.Parks, snap.Steals, snap.Preempts, 100*snap.Utilization())
	fmt.Printf("net:   %d epoll_waits (%d parked), %d send-parks, %d nonblocking EAGAINs\n",
		net.EpWaits, net.EpWaitParks, net.SendParks, net.EAgains)
}
