// Shell pipeline: the paper's Fish workload (§9.1) as a runnable example.
// A driver SIP spawns four utility SIPs (od | grep | sort | wc) connected
// by in-enclave pipes — the multitasking scenario that motivates SIPs.
// The same workload then runs on the Graphene-SGX-style baseline to show
// the cost of enclave-per-process multitasking.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/workloads"
)

func main() {
	const inputSize = 32 << 10
	spec := workloads.DefaultSpec()

	occ, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		log.Fatal(err)
	}
	gra := workloads.NewEIPKernel(spec)

	for _, k := range []workloads.Kernel{occ, gra} {
		driver, err := workloads.InstallFish(k, inputSize)
		if err != nil {
			log.Fatal(err)
		}
		var out bytes.Buffer
		start := time.Now()
		status, err := workloads.RunToCompletion(k, driver, nil, &out)
		if err != nil || status != 0 {
			log.Fatalf("%s: status %d err %v", k.Name(), status, err)
		}
		elapsed := time.Since(start)
		count := binary.LittleEndian.Uint64(out.Bytes())
		fmt.Printf("%-14s od|grep|sort|wc over %d KiB: %d bytes survived the filter, %v\n",
			k.Name(), inputSize>>10, count, elapsed.Round(time.Microsecond))
	}
	fmt.Println("\nFive processes per run: one driver + four utilities.")
	fmt.Println("On Occlum each spawn reuses a preallocated MMDSFI domain;")
	fmt.Println("on Graphene-SGX each spawn creates and measures a whole enclave.")
}
