// Secure FS: demonstrates the complete Occlum filesystem of §6 — a
// union of the integrity-verified read-only image layer (the trusted
// app bundle, packed by occlum-image) and the writable encrypted
// filesystem:
//
//   - the LibOS boots from a packed image whose Merkle root is the only
//     trusted input (it stands in for part of the enclave measurement);
//   - a SIP reads the trusted base content and mutates it through the
//     unchanged write(2) path — copy-up moves the file into the
//     encrypted layer, where the host sees only ciphertext;
//   - the mutation survives a LibOS restart (the encrypted upper layer
//     is persistent; the image layer stays pristine);
//   - a hostile host flipping a single bit anywhere in the image blob
//     is caught by the lazy Merkle verification at read time.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/sgx"
	"repro/internal/ulib"
)

const secret = "API-TOKEN-5f4dcc3b5aa765d61d8327deb882cf99"

func bootFromImage(host *hostos.Host, tc *core.Toolchain, root [32]byte, out *bytes.Buffer) (*libos.Occlum, error) {
	cfg := libos.DefaultConfig()
	cfg.VerifierKey = tc.Key()
	cfg.BaseImage = "base.img"
	cfg.BaseImageRoot = root
	cfg.Stdout = out
	return libos.Boot(sgx.NewPlatform(512<<20), host, cfg)
}

func main() {
	// "occlum build": pack the trusted app bundle into an image blob.
	// (cmd/occlum-image does the same from a host directory.)
	ib := fs.NewImageBuilder()
	if err := ib.AddFile("/app/config", []byte("mode=paper-reproduction\n")); err != nil {
		log.Fatal(err)
	}
	if err := ib.AddFile("/app/secret-template", []byte("REPLACE-ME")); err != nil {
		log.Fatal(err)
	}
	blob, root, err := ib.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed base image: %d bytes, merkle root %x…\n", len(blob), root[:8])

	// The untrusted host stores the blob (and the encrypted upper layer).
	host := hostos.New()
	host.WriteFile("base.img", blob)
	tc := core.NewToolchain()

	var out bytes.Buffer
	osys, err := bootFromImage(host, tc, root, &out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LibOS booted from the read-only image (union root mounted) ✓")

	// A SIP reads the trusted config, then writes the real secret over
	// the template — an ordinary write(2) that the union turns into a
	// copy-up into the encrypted layer.
	prog := func(b *asm.Builder) {
		b.String("conf", "/app/config")
		b.String("tmpl", "/app/secret-template")
		b.String("secret", secret)
		b.Zero("buf", 64)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.OpenPath(b, "conf", 11, libos.ORdOnly)
		b.MovRR(isa.R6, isa.R0)
		b.CmpI(isa.R6, 0)
		b.Jl("fail")
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 24)
		ulib.Syscall(b, libos.SysRead)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 24)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Close(b, isa.R6)
		ulib.OpenPath(b, "tmpl", 20, libos.OWrOnly|libos.OTrunc)
		b.MovRR(isa.R6, isa.R0)
		b.CmpI(isa.R6, 0)
		b.Jl("fail")
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "secret")
		b.MovRI(isa.R3, int64(len(secret)))
		ulib.Syscall(b, libos.SysWrite)
		b.CmpI(isa.R0, int32(len(secret)))
		b.Jne("fail")
		ulib.Close(b, isa.R6)
		b.MovRI(isa.R1, 0)
		ulib.Syscall(b, libos.SysFsync)
		ulib.Exit(b, 0)
		b.Label("fail")
		b.Nop()
		ulib.Exit(b, 1)
	}
	b := asm.NewBuilder()
	prog(b)
	p, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	bin, err := tc.Compile("provision", p)
	if err != nil {
		log.Fatal(err)
	}
	if err := osys.VFS().Mkdir("/bin"); err != nil {
		log.Fatal(err)
	}
	if err := osys.InstallBinary("/bin/provision", bin); err != nil {
		log.Fatal(err)
	}
	proc, err := osys.Spawn("/bin/provision", nil, libos.SpawnOpt{})
	if err != nil {
		log.Fatal(err)
	}
	if status := proc.Wait(); status != 0 {
		log.Fatalf("provision SIP exited %d", status)
	}
	st := fs.Stats()
	fmt.Printf("SIP read trusted config %q and provisioned the secret (copy-ups so far: %d) ✓\n",
		out.String(), st.CopyUps)
	backing := osys.Store().BackingFiles()
	if err := osys.Shutdown(); err != nil {
		log.Fatal(err)
	}

	// The host sees the image blob (public) and the encrypted layer —
	// striped with parity across several backing files — but never the
	// secret in plaintext, in any of them.
	encBytes := 0
	for _, name := range backing {
		enc, _ := host.ReadFile(name)
		if bytes.Contains(enc, []byte(secret)) {
			log.Fatal("PLAINTEXT LEAKED TO HOST")
		}
		encBytes += len(enc)
	}
	fmt.Printf("host-side encrypted layer: %d backing files, %d bytes, secret not present in plaintext ✓\n",
		len(backing), encBytes)

	// Restart the LibOS: the copy-up persisted in the encrypted layer,
	// the image below is untouched.
	var out2 bytes.Buffer
	osys2, err := bootFromImage(host, tc, root, &out2)
	if err != nil {
		log.Fatal(err)
	}
	n, err := osys2.VFS().Open("/app/secret-template", fs.ORdOnly)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(secret))
	if _, err := n.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	if string(buf) != secret {
		log.Fatalf("after restart: %q", buf)
	}
	fmt.Println("after LibOS restart: provisioned secret served from the encrypted layer ✓")
	osys2.Shutdown()

	// The hostile host deletes one entire backing file. The store's
	// Reed–Solomon parity covers the loss: the next boot reconstructs
	// every read from the surviving shards, and an offline repair
	// rebuilds the missing file in full.
	host.RemoveFile(backing[2])
	var outH bytes.Buffer
	osysH, err := bootFromImage(host, tc, root, &outH)
	if err != nil {
		log.Fatal(err)
	}
	nh, err := osysH.VFS().Open("/app/secret-template", fs.ORdOnly)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := nh.ReadAt(buf, 0); err != nil || string(buf) != secret {
		log.Fatalf("after shard-file loss: %q, %v", buf, err)
	}
	rebuilt, err := osysH.Store().Repair()
	if err != nil {
		log.Fatal(err)
	}
	osysH.Shutdown()
	fmt.Printf("host deleted %s: reads reconstructed from parity, repair rebuilt %d shards ✓\n",
		backing[2], rebuilt)

	// A hostile host flips ONE bit in the image blob's data region: the
	// next read through a fresh boot fails closed at the Merkle check.
	if err := host.FlipBit("base.img", fs.BlockSize+100); err != nil {
		log.Fatal(err)
	}
	var out3 bytes.Buffer
	osys3, err := bootFromImage(host, tc, root, &out3)
	if err != nil {
		fmt.Printf("tampered image rejected at boot: %v ✓\n", err)
		return
	}
	defer osys3.Shutdown()
	m, err := osys3.VFS().Open("/app/config", fs.ORdOnly)
	if err == nil {
		_, err = m.ReadAt(make([]byte, 8), 0)
	}
	if err == nil {
		log.Fatal("IMAGE TAMPERING WENT UNDETECTED")
	}
	fmt.Printf("tampered image block rejected at read time: %v ✓\n", err)
}
