// Secure FS: demonstrates the writable encrypted filesystem that
// distinguishes Occlum from EIP-based LibOSes (Table 1), and the
// integrity protection of the protected-file layer: a SIP persists
// secrets, the image survives a LibOS restart, the host sees only
// ciphertext, and host tampering is detected at the block layer.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/fs"
	"repro/internal/hostos"
)

func main() {
	host := hostos.New()
	key := fs.KeyFromString("sealing-key-derived-from-enclave-identity")

	// Create and populate the encrypted filesystem.
	store, err := fs.CreateStore(host, "occlum.img", key, 1024)
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.Mkfs(store); err != nil {
		log.Fatal(err)
	}
	efs, err := fs.Mount(store)
	if err != nil {
		log.Fatal(err)
	}
	if err := efs.Mkdir("/secrets"); err != nil {
		log.Fatal(err)
	}
	f, err := efs.Open("/secrets/api-token", fs.ORdWr|fs.OCreate)
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte("TOKEN-5f4dcc3b5aa765d61d8327deb882cf99")
	if _, err := f.WriteAt(secret, 0); err != nil {
		log.Fatal(err)
	}
	if err := efs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote /secrets/api-token and synced the image to the host")

	// The untrusted host sees only ciphertext.
	raw, _ := host.ReadFile("occlum.img")
	if bytes.Contains(raw, secret) {
		log.Fatal("PLAINTEXT LEAKED TO HOST")
	}
	fmt.Printf("host-side image: %d bytes, plaintext not present ✓\n", len(raw))

	// Remount (a LibOS restart) and read the secret back.
	store2, err := fs.OpenStore(host, "occlum.img", key)
	if err != nil {
		log.Fatal(err)
	}
	efs2, err := fs.Mount(store2)
	if err != nil {
		log.Fatal(err)
	}
	g, err := efs2.Open("/secrets/api-token", fs.ORdOnly)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(secret))
	if _, err := g.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after remount: %q ✓\n", buf)

	// A hostile host flips one bit in the authentication table → the
	// root MAC check rejects the whole image at mount time.
	if err := host.TamperFile("occlum.img", 100); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.OpenStore(host, "occlum.img", key); err != nil {
		fmt.Printf("tampered metadata rejected at mount: %v ✓\n", err)
	} else {
		log.Fatal("TAMPERING WENT UNDETECTED")
	}

	// Restore, then corrupt a data block instead: the per-block MAC
	// catches it on read.
	host.WriteFile("occlum.img", raw)
	store3, err := fs.OpenStore(host, "occlum.img", key)
	if err != nil {
		log.Fatal(err)
	}
	efs3, err := fs.Mount(store3)
	if err != nil {
		log.Fatal(err)
	}
	// Flip bits across the data area until the secret read fails.
	for off := 200000 % len(raw); off < len(raw); off += 1000 {
		_ = host.TamperFile("occlum.img", off)
	}
	h, err := efs3.Open("/secrets/api-token", fs.ORdOnly)
	if err == nil {
		_, err = h.ReadAt(buf, 0)
	}
	if err != nil {
		fmt.Printf("tampered data block rejected on read: %v ✓\n", err)
	} else {
		log.Fatal("DATA TAMPERING WENT UNDETECTED")
	}
}
