// Quickstart: the full Occlum workflow in one file — build a program with
// the toolchain (instrument → link → verify → sign), boot an enclave,
// install the binary into the encrypted filesystem, spawn it as a SIP,
// and collect its output.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/libos"
	"repro/internal/ulib"
)

func main() {
	// 1. Write a program against the LibOS syscall ABI.
	b := asm.NewBuilder()
	b.String("msg", "Hello from inside the enclave!\n")
	b.Entry("_start")
	ulib.Prologue(b) // capture the syscall trampoline from the auxv
	ulib.WriteStr(b, 1, "msg", 31)
	ulib.Exit(b, 0)
	prog, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The toolchain instruments it with MMDSFI, links it, and the
	// verifier checks and signs it.
	tc := core.NewToolchain()
	bin, err := tc.Compile("hello", prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled+verified: %d code bytes, signed=%v\n",
		len(bin.Image.Code), len(bin.Sig) > 0)

	// 3. Boot the enclave: one SGX enclave, many preallocated MMDSFI
	// domains, a fresh encrypted filesystem.
	sys, err := core.BootSystem(core.SystemConfig{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.OS.Shutdown()
	fmt.Printf("enclave booted: %d EPC pages measured (MRENCLAVE %x...)\n",
		sys.OS.BootStats.PagesAdded, sys.OS.BootStats.Measurement[:4])

	// 4. Install and run.
	if err := sys.InstallBinary("/bin/hello", bin); err != nil {
		log.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/hello", nil, libos.SpawnOpt{
		Stdout: libos.NewWriterFile(os.Stdout),
	})
	if err != nil {
		log.Fatal(err)
	}
	status := p.Wait()
	fmt.Printf("SIP pid %d exited with status %d after %d instructions\n",
		p.PID(), status, p.Cycles())
}
