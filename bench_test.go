package repro

// One benchmark per table/figure of the paper's evaluation (§9). Each
// wraps the corresponding experiment from internal/bench at quick scale
// and reports the headline quantities as custom metrics. Run
// cmd/occlum-bench for the full formatted tables.

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/mmdsfi"
	"repro/internal/ripe"
	"repro/internal/workloads"
	"repro/internal/workloads/specint"
)

func quickScale() bench.Scale {
	s := bench.Quick()
	s.HTTPConcurrency = []int{4}
	s.HTTPRequests = 64
	return s
}

func rowsByLabel(t *bench.Table) map[string][]float64 {
	m := map[string][]float64{}
	for _, r := range t.Rows {
		m[r.Label] = r.Values
	}
	return m
}

// BenchmarkFig5aFish regenerates Figure 5a: the Fish pipeline on all
// three systems (paper: Linux 1.4 ms, Occlum 19.5 ms, Graphene 9.5 s).
func BenchmarkFig5aFish(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig5aFish(quickScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rowsByLabel(tab)
		b.ReportMetric(m["Linux"][0], "linux-ms")
		b.ReportMetric(m["Occlum"][0], "occlum-ms")
		b.ReportMetric(m["Graphene-SGX"][0], "graphene-ms")
	}
}

// BenchmarkFig5bGCC regenerates Figure 5b: compilation time on the
// largest source (paper: Occlum between Linux and Graphene throughout).
func BenchmarkFig5bGCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig5bGCC(quickScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rowsByLabel(tab)
		last := len(m["Occlum"]) - 1
		b.ReportMetric(m["Linux"][last], "linux-ms")
		b.ReportMetric(m["Occlum"][last], "occlum-ms")
		b.ReportMetric(m["Graphene-SGX"][last], "graphene-ms")
	}
}

// BenchmarkFig5cLighttpd regenerates Figure 5c: web throughput (paper:
// both SGX systems within ~10% of Linux at peak).
func BenchmarkFig5cLighttpd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig5cLighttpd(quickScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rowsByLabel(tab)
		b.ReportMetric(m["Linux"][0], "linux-rps")
		b.ReportMetric(m["Occlum"][0], "occlum-rps")
		b.ReportMetric(m["Graphene-SGX"][0], "graphene-rps")
	}
}

// BenchmarkFig6aSpawn regenerates Figure 6a: process creation latency
// (paper: Occlum 97 µs–63 ms scaling with size; Graphene ~0.7 s flat).
func BenchmarkFig6aSpawn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig6aSpawn(quickScale())
		if err != nil {
			b.Fatal(err)
		}
		m := rowsByLabel(tab)
		b.ReportMetric(m["Occlum"][0], "occlum-small-ms")
		b.ReportMetric(m["Occlum"][2], "occlum-large-ms")
		b.ReportMetric(m["Graphene-SGX"][0], "graphene-small-ms")
		b.ReportMetric(m["Graphene-SGX"][0]/m["Occlum"][0], "speedup-x")
	}
}

// BenchmarkFig6bPipe regenerates Figure 6b: pipe throughput (paper:
// Occlum ≈ Linux, >3× Graphene).
func BenchmarkFig6bPipe(b *testing.B) {
	s := quickScale()
	s.PipeTotal = 512 << 10
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig6bPipe(s)
		if err != nil {
			b.Fatal(err)
		}
		m := rowsByLabel(tab)
		last := len(m["Occlum"]) - 1
		b.ReportMetric(m["Occlum"][last], "occlum-MBps")
		b.ReportMetric(m["Graphene-SGX"][last], "graphene-MBps")
		b.ReportMetric(m["Linux"][last], "linux-MBps")
	}
}

// BenchmarkFig6cFileRead regenerates Figure 6c: sequential reads on
// Occlum's encrypted FS vs ext4 (paper: 39% average overhead).
func BenchmarkFig6cFileRead(b *testing.B) {
	benchFileIO(b, false)
}

// BenchmarkFig6dFileWrite regenerates Figure 6d: sequential writes
// (paper: 18% average overhead).
func BenchmarkFig6dFileWrite(b *testing.B) {
	benchFileIO(b, true)
}

func benchFileIO(b *testing.B, write bool) {
	s := quickScale()
	s.FileTotal = 512 << 10
	for i := 0; i < b.N; i++ {
		tab, err := bench.Fig6cdFileIO(s, write)
		if err != nil {
			b.Fatal(err)
		}
		m := rowsByLabel(tab)
		last := len(m["Occlum"]) - 1
		b.ReportMetric(m["Occlum"][last], "occlum-MBps")
		b.ReportMetric(m["Linux"][last], "ext4-MBps")
	}
}

// BenchmarkFig7aSpecint regenerates Figure 7a: MMDSFI overhead on the
// kernel suite (paper mean: 36.6%). Deterministic cycle counts.
func BenchmarkFig7aSpecint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, r := range specint.Suite {
			ov, err := specint.Overhead(r, 200, mmdsfi.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			sum += ov
		}
		b.ReportMetric(100*sum/float64(len(specint.Suite)), "mean-overhead-%")
	}
}

// BenchmarkFig7bBreakdown regenerates Figure 7b: naive vs optimized
// confinement cost (paper: loads 39.6%→25.5%, stores 10.1%→4.3%).
func BenchmarkFig7bBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var naive, opt float64
		for _, r := range specint.Suite {
			n, err := specint.Overhead(r, 200, mmdsfi.Options{
				ConfineControl: true, ConfineLoads: true, ConfineStores: true})
			if err != nil {
				b.Fatal(err)
			}
			o, err := specint.Overhead(r, 200, mmdsfi.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			naive += n
			opt += o
		}
		k := float64(len(specint.Suite))
		b.ReportMetric(100*naive/k, "naive-%")
		b.ReportMetric(100*opt/k, "optimized-%")
	}
}

// BenchmarkRIPE regenerates §9.3: the attack corpus on both environments
// (paper: Occlum stops all code injection and ROP; return-to-libc
// remains).
func BenchmarkRIPE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		occ, _, err := ripe.RunCorpus(ripe.GenerateCorpus(false), ripe.EnvOcclum)
		if err != nil {
			b.Fatal(err)
		}
		gra, _, err := ripe.RunCorpus(ripe.GenerateCorpus(false), ripe.EnvGraphene)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(occ.Succeeded[ripe.TargetShellcode]+occ.Succeeded[ripe.TargetGadget]), "occlum-ci+rop")
		b.ReportMetric(float64(gra.Succeeded[ripe.TargetShellcode]+gra.Succeeded[ripe.TargetGadget]), "graphene-ci+rop")
	}
}

// BenchmarkTable1 regenerates Table 1: the SIP-vs-EIP comparison.
func BenchmarkTable1(b *testing.B) {
	s := quickScale()
	s.PipeTotal = 512 << 10
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnOcclum is a plain per-op spawn latency benchmark on
// Occlum (the 97 µs headline of Figure 6a).
func BenchmarkSpawnOcclum(b *testing.B) {
	occ, err := workloads.NewOcclumKernel(workloads.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workloads.BuildCat()
	if err != nil {
		b.Fatal(err)
	}
	// cat with no input: give it a trivially empty stdin via fd table
	// defaults; it exits immediately on EOF.
	if err := occ.InstallProgram("/bin/cat", prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := occ.Spawn("/bin/cat", nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if st := p.Wait(); st != 0 {
			b.Fatalf("status %d", st)
		}
	}
}
