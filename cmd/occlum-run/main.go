// Command occlum-run boots an Occlum enclave (on the simulated SGX
// platform), installs a signed OELF binary into the encrypted filesystem,
// spawns it as a SIP, and relays its stdout and exit status.
//
// Usage:
//
//	occlum-run [-key seed] prog.oelf [args...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/libos"
	"repro/internal/oelf"
)

func main() {
	keySeed := flag.String("key", "occlum", "verifier key seed the LibOS trusts")
	domains := flag.Int("domains", 8, "preallocated MMDSFI domains")
	dataMB := flag.Int("data-mb", 16, "data region size per domain (MiB)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: occlum-run prog.oelf [args...]")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	bin, err := oelf.Unmarshal(raw)
	if err != nil {
		fatal(err)
	}

	lc := libos.DefaultConfig()
	lc.NumDomains = *domains
	lc.DomainDataSize = uint64(*dataMB) << 20
	lc.VerifierKey = oelf.NewSigningKey(*keySeed)
	lc.Stdout = os.Stdout
	sys, err := core.BootSystem(core.SystemConfig{LibOS: lc, EPCBytes: 4 << 30, Stdout: os.Stdout})
	if err != nil {
		fatal(err)
	}
	defer sys.OS.Shutdown()

	path := "/bin/" + bin.Name
	if err := sys.InstallBinary(path, bin); err != nil {
		fatal(err)
	}
	p, err := sys.OS.Spawn(path, flag.Args()[1:], libos.SpawnOpt{
		Stdout: libos.NewWriterFile(os.Stdout),
	})
	if err != nil {
		fatal(err)
	}
	status := p.Wait()
	fmt.Fprintf(os.Stderr, "occlum-run: %s exited with status %d (%d instructions)\n",
		bin.Name, status, p.Cycles())
	os.Exit(status)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "occlum-run:", err)
	os.Exit(1)
}
