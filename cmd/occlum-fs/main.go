// Command occlum-fs is the offline maintenance tool for the striped
// encrypted filesystem: it loads the store's backing files
// (<image>.s0, <image>.s1, …) from the host filesystem, runs the
// requested operation inside the trusted FS stack, and writes any
// repaired shards back out.
//
// Modes:
//
//	info    print geometry, epoch and per-file health without writing
//	scrub   verify every committed block, rewriting rotted shards
//	repair  rebuild every damaged or missing shard — including an
//	        entire deleted backing file — from Reed–Solomon parity
//	fsck    full metadata check of the encrypted filesystem on top
//
// Usage:
//
//	occlum-fs [-image occlum.img] [-key seed] info|scrub|repair|fsck
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fs"
	"repro/internal/hostos"
)

func main() {
	image := flag.String("image", "occlum.img", "store name: backing files are <image>.s0, <image>.s1, …")
	keySeed := flag.String("key", "occlum-default", "filesystem key seed (must match the LibOS configuration)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: occlum-fs [-image occlum.img] [-key seed] info|scrub|repair|fsck")
		os.Exit(2)
	}
	mode := flag.Arg(0)

	// Pull the on-disk backing files into the simulated untrusted host
	// the FS stack runs against.
	host := hostos.New()
	loaded := 0
	for f := 0; f < 64; f++ {
		name := fmt.Sprintf("%s.s%d", *image, f)
		raw, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		host.WriteFile(name, raw)
		loaded++
	}
	if loaded == 0 {
		fatal(fmt.Errorf("no backing files %s.s* found", *image))
	}
	if !fs.StoreExists(host, *image) {
		fatal(fmt.Errorf("%s.s* is not a block store", *image))
	}

	key := fs.KeyFromString(*keySeed)
	store, err := fs.OpenStore(host, *image, key)
	if err != nil {
		fatal(fmt.Errorf("open: %w", err))
	}

	switch mode {
	case "info":
		k, m := store.Geometry()
		fmt.Printf("%s: %d+%d striped store, epoch %d, %d blocks max\n",
			*image, k, m, store.Epoch(), store.MaxBlocks())
		for _, name := range store.BackingFiles() {
			size := host.FileSize(name)
			health := "ok"
			if _, err := os.Stat(name); err != nil {
				health = "MISSING on disk"
			} else if size == 0 {
				health = "EMPTY"
			}
			fmt.Printf("  %-20s %10d bytes  %s\n", name, size, health)
		}
	case "scrub":
		before := fs.Stats()
		blocks, err := store.Scrub()
		if err != nil {
			fatal(fmt.Errorf("scrub: %w", err))
		}
		d := fs.Stats().Sub(before)
		fmt.Printf("%s: scrubbed %d blocks, repaired %d shards\n", *image, blocks, d.RepairedShards)
		if d.RepairedShards > 0 {
			writeBack(host, store)
		}
	case "repair":
		rebuilt, err := store.Repair()
		if err != nil {
			fatal(fmt.Errorf("repair: %w", err))
		}
		fmt.Printf("%s: rebuilt %d shards\n", *image, rebuilt)
		if rebuilt > 0 {
			writeBack(host, store)
		}
	case "fsck":
		efs, err := fs.Mount(store)
		if err != nil {
			fatal(fmt.Errorf("mount: %w", err))
		}
		if err := efs.Fsck(); err != nil {
			fatal(fmt.Errorf("fsck: %w", err))
		}
		fmt.Printf("%s: clean\n", *image)
	default:
		fmt.Fprintf(os.Stderr, "occlum-fs: unknown mode %q\n", mode)
		os.Exit(2)
	}
}

// writeBack flushes every (possibly repaired) backing file to disk.
func writeBack(host *hostos.Host, store *fs.BlockStore) {
	for _, name := range store.BackingFiles() {
		raw, err := host.ReadFile(name)
		if err != nil {
			continue // shard file the store never wrote
		}
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "occlum-fs:", err)
	os.Exit(1)
}
