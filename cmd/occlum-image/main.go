// Command occlum-image packs a host directory into Occlum's read-only
// image format: a single blob holding superblock, inode table, data
// extents and a Merkle tree whose root hash is the blob's only trust
// anchor. The LibOS mounts the blob as the lower layer of its union
// root (libos.Config.BaseImage), pinning the printed root hash — in a
// real deployment the hash would be part of the enclave measurement, so
// the untrusted host can store and ship the blob but not alter a bit of
// it.
//
// Usage:
//
//	occlum-image pack -dir DIR -out IMAGE     pack DIR, print the root hash
//	occlum-image root -in IMAGE               recompute and print the root hash
//	occlum-image ls -in IMAGE                 list the image's file tree
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	ofs "repro/internal/fs"
	"repro/internal/hostos"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "pack":
		return cmdPack(os.Args[2:])
	case "root":
		return cmdRoot(os.Args[2:])
	case "ls":
		return cmdLs(os.Args[2:])
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  occlum-image pack -dir DIR -out IMAGE
  occlum-image root -in IMAGE
  occlum-image ls -in IMAGE`)
}

func cmdPack(args []string) int {
	fl := flag.NewFlagSet("pack", flag.ExitOnError)
	dir := fl.String("dir", "", "host directory to pack")
	out := fl.String("out", "", "output image file")
	fl.Parse(args)
	if *dir == "" || *out == "" {
		usage()
		return 2
	}
	b := ofs.NewImageBuilder()
	err := filepath.WalkDir(*dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(*dir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		img := "/" + filepath.ToSlash(rel)
		if d.IsDir() {
			return b.AddDir(img)
		}
		if !d.Type().IsRegular() {
			fmt.Fprintf(os.Stderr, "occlum-image: skipping non-regular file %s\n", p)
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return b.AddFile(img, data)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	blob, root, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	fmt.Printf("packed %s: %d bytes\nroot %s\n", *out, len(blob), hex.EncodeToString(root[:]))
	return 0
}

func loadBlob(args []string, name string) ([]byte, int) {
	fl := flag.NewFlagSet(name, flag.ExitOnError)
	in := fl.String("in", "", "image file")
	fl.Parse(args)
	if *in == "" {
		usage()
		return nil, 2
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return nil, 1
	}
	return blob, 0
}

func cmdRoot(args []string) int {
	blob, rc := loadBlob(args, "root")
	if blob == nil {
		return rc
	}
	root, err := ofs.ImageRoot(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	fmt.Printf("root %s\n", hex.EncodeToString(root[:]))
	return 0
}

func cmdLs(args []string) int {
	blob, rc := loadBlob(args, "ls")
	if blob == nil {
		return rc
	}
	root, err := ofs.ImageRoot(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	h := hostos.New()
	h.WriteFile("img", blob)
	m, err := ofs.MountImage(h, "img", root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, err := m.ReadDir(dir)
		if err != nil {
			return err
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, e := range ents {
			p := strings.TrimSuffix(dir, "/") + "/" + e.Name
			if e.IsDir {
				fmt.Printf("%-40s dir\n", p+"/")
				if err := walk(p); err != nil {
					return err
				}
			} else {
				fmt.Printf("%-40s %d bytes\n", p, e.Size)
			}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		fmt.Fprintf(os.Stderr, "occlum-image: %v\n", err)
		return 1
	}
	return 0
}
