// Command occlum-as is the Occlum toolchain front end: it assembles OVM
// assembly text, applies MMDSFI instrumentation, links, and writes an
// (unsigned) OELF binary. Run occlum-verify to verify and sign the result
// before the LibOS will load it — keeping this large, untrusted toolchain
// out of the TCB is the point of the paper's architecture.
//
// Usage:
//
//	occlum-as [-o out.oelf] [-naive] [-no-sfi] [-dump] prog.oasm
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mmdsfi"
	"repro/internal/oelf"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .oelf)")
	naive := flag.Bool("naive", false, "disable the range-analysis optimizations")
	noSFI := flag.Bool("no-sfi", false, "skip MMDSFI instrumentation entirely (binary will not verify)")
	dump := flag.Bool("dump", false, "print the final instruction stream")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: occlum-as [-o out.oelf] [-naive] [-no-sfi] prog.oasm")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opts := mmdsfi.DefaultOptions()
	if *naive {
		opts.Optimize = false
	}
	if !*noSFI {
		prog, err = mmdsfi.Instrument(prog, opts)
		if err != nil {
			fatal(err)
		}
	}
	img, err := asm.Link(prog)
	if err != nil {
		fatal(err)
	}
	if *dump {
		off := 0
		for off < len(img.Code) {
			inst, n, derr := isa.Decode(img.Code, off)
			if derr != nil {
				fmt.Printf("%#06x: <%v>\n", off, derr)
				break
			}
			fmt.Printf("%#06x: %s\n", off, inst)
			off += n
		}
	}
	name := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
	bin := oelf.FromImage(name, img)
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, filepath.Ext(in)) + ".oelf"
	}
	if err := os.WriteFile(dst, bin.Marshal(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("occlum-as: %s: %d code bytes, %d data bytes → %s (unsigned)\n",
		name, len(img.Code), len(img.Data), dst)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "occlum-as:", err)
	os.Exit(1)
}
