// Command occlum-verify is the Occlum verifier (§5): it statically checks
// an OELF binary against MMDSFI's security policies (complete
// disassembly, instruction set, control transfers, memory accesses) and,
// on success, signs it so the LibOS loader will accept it.
//
// Usage:
//
//	occlum-verify [-key seed] [-check-only] prog.oelf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/oelf"
	"repro/internal/verifier"
)

func main() {
	keySeed := flag.String("key", "occlum", "signing key seed (must match the LibOS configuration)")
	checkOnly := flag.Bool("check-only", false, "verify without signing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: occlum-verify [-key seed] [-check-only] prog.oelf")
		os.Exit(2)
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	bin, err := oelf.Unmarshal(raw)
	if err != nil {
		fatal(err)
	}
	v := verifier.New(oelf.NewSigningKey(*keySeed))
	if *checkOnly {
		if err := v.Verify(bin); err != nil {
			fmt.Fprintf(os.Stderr, "occlum-verify: REJECTED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("occlum-verify: %s: compliant with MMDSFI\n", bin.Name)
		return
	}
	if err := v.VerifyAndSign(bin); err != nil {
		fmt.Fprintf(os.Stderr, "occlum-verify: REJECTED: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, bin.Marshal(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("occlum-verify: %s: verified and signed\n", bin.Name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "occlum-verify:", err)
	os.Exit(1)
}
