// Command occlum-bench regenerates the paper's evaluation: every figure
// of §9 plus the RIPE security table and Table 1, printed as text tables.
//
// Usage:
//
//	occlum-bench [-scale quick|full] [-vmstats] [-schedstats] [-netstats] [-fsstats] [-cpuprofile f] [-memprofile f] [experiment ...]
//
// With no arguments, all experiments run. Experiments: fig5a fig5b fig5c
// fig6a fig6b fig6c fig6d fig7a fig7b ripe table1 c10k fsbench. With -vmstats,
// each experiment also reports the OVM translation-cache counters
// (blocks decoded, hits, misses, flushes, chained transitions,
// threaded-dispatch instructions, superblocks formed, trace
// hits/exits, instructions retired inside traces, return-address-stack
// hits, and indirect-jump inline-cache hits/misses) aggregated over
// every simulated hart, with trace hits distinguished from block hits.
// With -schedstats, each experiment reports the M:N scheduler counters
// (parks, unparks, steals, preemptions, yields and hart utilization)
// aggregated over every Occlum hart pool. With -netstats, each
// experiment reports the readiness-path counters (recv/send/accept
// parks, poll/epoll_wait calls and parks, EAGAIN returns) plus the
// timer-wheel and backpressure counters (wheel arms/fires/cancels/
// cascades, idle-reaped and shed connections, suppressed stale timer
// wakes). With
// -fsstats, each experiment reports the filesystem counters (image
// blocks Merkle-verified, verified-cache hits, read-aheads, copy-ups,
// whiteouts).
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments, so interpreter-perf work can profile the hot
// path without editing code (the memory profile is written at exit,
// after a final GC).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"time"

	"repro/internal/bench"
)

func main() {
	// Exit through realMain's return value so the deferred profile
	// flushes run even when an experiment fails.
	os.Exit(realMain())
}

func realMain() int {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	vmStats := flag.Bool("vmstats", false, "report OVM translation-cache counters per experiment")
	schedStats := flag.Bool("schedstats", false, "report M:N scheduler counters per experiment")
	netStats := flag.Bool("netstats", false, "report readiness/network counters per experiment")
	fsStats := flag.Bool("fsstats", false, "report filesystem counters (verify/copy-up/read-ahead) per experiment")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write an allocation profile to `file` at exit")
	flag.Parse()
	bench.VMStats = *vmStats
	bench.SchedStats = *schedStats
	bench.NetStats = *netStats
	bench.FSStats = *fsStats

	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.Quick()
	case "full":
		scale = bench.Full()
	default:
		fmt.Fprintln(os.Stderr, "occlum-bench: -scale must be quick or full")
		return 2
	}

	names := flag.Args()
	if len(names) == 0 {
		names = bench.Experiments
	}
	for _, name := range names {
		if !slices.Contains(bench.Experiments, name) {
			fmt.Fprintf(os.Stderr, "occlum-bench: unknown experiment %q (valid: %v)\n", name, bench.Experiments)
			return 2
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "occlum-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "occlum-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Deferred, like the CPU profile, so a failing experiment still
		// leaves a usable heap profile — the case where one is most
		// wanted.
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "occlum-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "occlum-bench: -memprofile: %v\n", err)
			}
		}()
	}

	for _, name := range names {
		start := time.Now()
		if err := bench.Run(name, scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "occlum-bench: %v\n", err)
			return 1
		}
		fmt.Printf("  (%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}

	return 0
}
