// Command occlum-bench regenerates the paper's evaluation: every figure
// of §9 plus the RIPE security table and Table 1, printed as text tables.
//
// Usage:
//
//	occlum-bench [-scale quick|full] [-vmstats] [experiment ...]
//
// With no arguments, all experiments run. Experiments: fig5a fig5b fig5c
// fig6a fig6b fig6c fig6d fig7a fig7b ripe table1. With -vmstats, each
// experiment also reports the OVM basic-block translation-cache counters
// (blocks decoded, hits, misses, flushes) aggregated over every
// simulated hart.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	vmStats := flag.Bool("vmstats", false, "report OVM translation-cache counters per experiment")
	flag.Parse()
	bench.VMStats = *vmStats

	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.Quick()
	case "full":
		scale = bench.Full()
	default:
		fmt.Fprintln(os.Stderr, "occlum-bench: -scale must be quick or full")
		os.Exit(2)
	}

	names := flag.Args()
	if len(names) == 0 {
		names = bench.Experiments
	}
	for _, name := range names {
		start := time.Now()
		if err := bench.Run(name, scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "occlum-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  (%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
}
