// Package ring provides the fixed-capacity byte ring underneath the
// LibOS pipe and host stream buffers — the storage half of the
// zero-copy data plane.
//
// The ring's native API is lending, not copying: Peek borrows the next
// contiguous run of readable bytes and Consume retires them; Reserve
// borrows a contiguous run of free space and Commit publishes it. The
// convenience Read/Write wrappers are built from those four. Because
// the buffer never grows and never reallocates, a borrowed run stays
// valid until the corresponding Consume/Commit — unlike the
// append-grown slices it replaces, whose `buf = buf[n:]` idiom both
// pinned dead prefixes and moved the backing array under any
// outstanding reference.
//
// A Ring is not synchronized; the owner (pipeBuf, stream) guards it
// with its own mutex and must hold that lock across a whole
// borrow–use–retire sequence.
package ring

// Ring is a fixed-capacity FIFO byte queue.
type Ring struct {
	buf []byte
	r   int // index of the oldest unread byte
	n   int // bytes currently queued
}

// New returns an empty ring holding at most capacity bytes.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Ring{buf: make([]byte, capacity)}
}

// Cap returns the fixed capacity.
func (g *Ring) Cap() int { return len(g.buf) }

// Len returns the number of queued bytes.
func (g *Ring) Len() int { return g.n }

// Free returns the remaining space.
func (g *Ring) Free() int { return len(g.buf) - g.n }

// Peek borrows the next contiguous run of readable bytes, at most max
// long. The run aliases ring storage: it is valid until Consume (or any
// Write/Commit that could recycle the space — retire it first). A
// wrapped ring may hold more readable bytes than one run; callers
// drain runs in a loop. Returns nil when empty or max <= 0.
func (g *Ring) Peek(max int) []byte {
	if max > g.n {
		max = g.n
	}
	if max <= 0 {
		return nil
	}
	run := len(g.buf) - g.r
	if run > max {
		run = max
	}
	return g.buf[g.r : g.r+run : g.r+run]
}

// Consume retires k bytes previously observed via Peek. k must not
// exceed Len.
func (g *Ring) Consume(k int) {
	if k < 0 || k > g.n {
		panic("ring: consume beyond queued bytes")
	}
	g.r += k
	if g.r >= len(g.buf) {
		g.r -= len(g.buf)
	}
	g.n -= k
}

// Reserve borrows the next contiguous run of free space, at most max
// long. The caller fills a prefix and publishes it with Commit; until
// then readers cannot observe the bytes. Like Peek, a wrapped ring may
// have more free space than one run. Returns nil when full or max <= 0.
func (g *Ring) Reserve(max int) []byte {
	free := len(g.buf) - g.n
	if max > free {
		max = free
	}
	if max <= 0 {
		return nil
	}
	w := g.r + g.n
	if w >= len(g.buf) {
		w -= len(g.buf)
	}
	run := len(g.buf) - w
	if run > max {
		run = max
	}
	return g.buf[w : w+run : w+run]
}

// Commit publishes k bytes written into the span returned by Reserve.
// k must not exceed Free.
func (g *Ring) Commit(k int) {
	if k < 0 || k > len(g.buf)-g.n {
		panic("ring: commit beyond reserved space")
	}
	g.n += k
}

// Read copies queued bytes into p, consuming them, and returns the
// count (0 when empty).
func (g *Ring) Read(p []byte) int {
	total := 0
	for len(p) > 0 {
		run := g.Peek(len(p))
		if run == nil {
			break
		}
		k := copy(p, run)
		g.Consume(k)
		p = p[k:]
		total += k
	}
	return total
}

// Write copies as much of p as fits, and returns the count.
func (g *Ring) Write(p []byte) int {
	total := 0
	for len(p) > 0 {
		run := g.Reserve(len(p))
		if run == nil {
			break
		}
		k := copy(run, p)
		g.Commit(k)
		p = p[k:]
		total += k
	}
	return total
}
