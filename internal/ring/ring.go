// Package ring provides the fixed-capacity byte ring underneath the
// LibOS pipe and host stream buffers — the storage half of the
// zero-copy data plane.
//
// The ring's native API is lending, not copying: Peek borrows the next
// contiguous run of readable bytes and Consume retires them; Reserve
// borrows a contiguous run of free space and Commit publishes it. The
// convenience Read/Write wrappers are built from those four. A borrowed
// run stays valid until the corresponding Consume/Commit — and, for
// Peek runs, until any Reserve/Write/Commit that could grow or recycle
// the space; retire a run before producing into the same ring.
//
// Capacity is a promise, not an allocation. The backing buffer is
// allocated lazily on first Reserve, sized to the next power of two of
// the demand (min one chunk), and doubles as demand grows, never past
// the configured capacity. When the ring drains completely a buffer
// that grew past the keep threshold is released. A server holding 100k
// mostly-idle connections therefore pays for the bytes actually queued,
// not for 2×256 KiB of pre-provisioned stream buffer per connection.
//
// A Ring is not synchronized; the owner (pipeBuf, stream) guards it
// with its own mutex and must hold that lock across a whole
// borrow–use–retire sequence.
package ring

const (
	// minAlloc is the smallest backing buffer a ring allocates (unless
	// its capacity is smaller still).
	minAlloc = 1 << 10
	// shrinkKeep is the largest backing buffer kept across a complete
	// drain; bigger buffers are released so a burst does not pin its
	// high-water mark for the life of an idle connection.
	shrinkKeep = 64 << 10
)

// Ring is a fixed-capacity FIFO byte queue.
type Ring struct {
	buf []byte
	max int // configured capacity; len(buf) grows toward it lazily
	r   int // index of the oldest unread byte
	n   int // bytes currently queued
}

// New returns an empty ring holding at most capacity bytes. No buffer
// is allocated until the first write.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Ring{max: capacity}
}

// Cap returns the configured capacity.
func (g *Ring) Cap() int { return g.max }

// Len returns the number of queued bytes.
func (g *Ring) Len() int { return g.n }

// Free returns the remaining space against the configured capacity.
func (g *Ring) Free() int { return g.max - g.n }

// Alloc returns the size of the backing buffer currently allocated —
// the ring's real memory footprint, which lazy growth keeps at the
// smallest power-of-two chunk covering the high-water mark since the
// last complete drain.
func (g *Ring) Alloc() int { return len(g.buf) }

// grow ensures the backing buffer holds at least need bytes (clamped
// to capacity), linearizing queued bytes into the new buffer.
func (g *Ring) grow(need int) {
	if need > g.max {
		need = g.max
	}
	if need <= len(g.buf) {
		return
	}
	size := minAlloc
	if size > g.max {
		size = g.max
	}
	for size < need {
		size <<= 1
	}
	if size > g.max {
		size = g.max
	}
	nb := make([]byte, size)
	if g.n > 0 {
		first := len(g.buf) - g.r
		if first > g.n {
			first = g.n
		}
		copy(nb, g.buf[g.r:g.r+first])
		copy(nb[first:], g.buf[:g.n-first])
	}
	g.buf, g.r = nb, 0
}

// Peek borrows the next contiguous run of readable bytes, at most max
// long. The run aliases ring storage: it is valid until Consume (or
// any Reserve/Write/Commit that could grow or recycle the space —
// retire it first). A wrapped ring may hold more readable bytes than
// one run; callers drain runs in a loop. Returns nil when empty or
// max <= 0.
func (g *Ring) Peek(max int) []byte {
	if max > g.n {
		max = g.n
	}
	if max <= 0 {
		return nil
	}
	run := len(g.buf) - g.r
	if run > max {
		run = max
	}
	return g.buf[g.r : g.r+run : g.r+run]
}

// Consume retires k bytes previously observed via Peek. k must not
// exceed Len. Draining the ring completely releases a backing buffer
// that grew past the keep threshold.
func (g *Ring) Consume(k int) {
	if k < 0 || k > g.n {
		panic("ring: consume beyond queued bytes")
	}
	g.r += k
	if g.r >= len(g.buf) {
		g.r -= len(g.buf)
	}
	g.n -= k
	if g.n == 0 {
		g.r = 0
		if len(g.buf) > shrinkKeep {
			g.buf = nil
		}
	}
}

// Reserve borrows the next contiguous run of free space, at most max
// long, growing the backing buffer if the configured capacity allows.
// The caller fills a prefix and publishes it with Commit; until then
// readers cannot observe the bytes. Growth reallocates, so any
// outstanding Peek run must be retired before calling Reserve. Like
// Peek, a wrapped ring may have more free space than one run. Returns
// nil when full or max <= 0.
func (g *Ring) Reserve(max int) []byte {
	free := g.max - g.n
	if max > free {
		max = free
	}
	if max <= 0 {
		return nil
	}
	if g.n+max > len(g.buf) {
		g.grow(g.n + max)
	}
	w := g.r + g.n
	if w >= len(g.buf) {
		w -= len(g.buf)
	}
	run := len(g.buf) - w
	if run > max {
		run = max
	}
	return g.buf[w : w+run : w+run]
}

// Commit publishes k bytes written into the span returned by Reserve.
// k must not exceed the free space of the allocated buffer.
func (g *Ring) Commit(k int) {
	if k < 0 || k > len(g.buf)-g.n {
		panic("ring: commit beyond reserved space")
	}
	g.n += k
}

// Read copies queued bytes into p, consuming them, and returns the
// count (0 when empty).
func (g *Ring) Read(p []byte) int {
	total := 0
	for len(p) > 0 {
		run := g.Peek(len(p))
		if run == nil {
			break
		}
		k := copy(p, run)
		g.Consume(k)
		p = p[k:]
		total += k
	}
	return total
}

// Write copies as much of p as fits, and returns the count.
func (g *Ring) Write(p []byte) int {
	total := 0
	for len(p) > 0 {
		run := g.Reserve(len(p))
		if run == nil {
			break
		}
		k := copy(run, p)
		g.Commit(k)
		p = p[k:]
		total += k
	}
	return total
}
