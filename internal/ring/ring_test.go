package ring

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRingBasics(t *testing.T) {
	g := New(8)
	if g.Cap() != 8 || g.Len() != 0 || g.Free() != 8 {
		t.Fatalf("fresh ring: cap=%d len=%d free=%d", g.Cap(), g.Len(), g.Free())
	}
	if n := g.Write([]byte("abcde")); n != 5 {
		t.Fatalf("write = %d", n)
	}
	if g.Len() != 5 || g.Free() != 3 {
		t.Fatalf("after write: len=%d free=%d", g.Len(), g.Free())
	}
	p := make([]byte, 3)
	if n := g.Read(p); n != 3 || string(p) != "abc" {
		t.Fatalf("read = %d %q", n, p)
	}
	// Overfill: only what fits is taken.
	if n := g.Write([]byte("XYZ123456")); n != 6 {
		t.Fatalf("overfill write = %d", n)
	}
	out := make([]byte, 16)
	if n := g.Read(out); n != 8 || string(out[:8]) != "deXYZ123" {
		t.Fatalf("drain = %d %q", n, out[:n])
	}
	if n := g.Read(out); n != 0 {
		t.Fatalf("read from empty = %d", n)
	}
}

func TestRingBorrowWraps(t *testing.T) {
	g := New(8)
	g.Write([]byte("abcdef"))
	g.Consume(4) // r=4, n=2: readable "ef", free space wraps

	// Reserve sees the contiguous tail run first…
	run := g.Reserve(100)
	if len(run) != 2 { // indices 6,7
		t.Fatalf("tail reserve run = %d", len(run))
	}
	copy(run, "gh")
	g.Commit(2)
	// …then the wrapped head run.
	run = g.Reserve(100)
	if len(run) != 4 { // indices 0..3
		t.Fatalf("wrapped reserve run = %d", len(run))
	}
	copy(run, "ijkl")
	g.Commit(4)
	if g.Free() != 0 {
		t.Fatalf("free = %d", g.Free())
	}

	// Peek drains the same way: tail run then wrapped run.
	run = g.Peek(100)
	if string(run) != "efgh" {
		t.Fatalf("tail peek = %q", run)
	}
	g.Consume(len(run))
	run = g.Peek(100)
	if string(run) != "ijkl" {
		t.Fatalf("wrapped peek = %q", run)
	}
	g.Consume(len(run))
	if g.Len() != 0 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestRingPeekDoesNotConsume(t *testing.T) {
	g := New(8)
	g.Write([]byte("abc"))
	if string(g.Peek(2)) != "ab" || string(g.Peek(2)) != "ab" {
		t.Fatal("peek consumed")
	}
	if g.Len() != 3 {
		t.Fatalf("len = %d", g.Len())
	}
	// A partially-committed reserve publishes only the prefix.
	run := g.Reserve(4)
	copy(run, "XY")
	g.Commit(1)
	out := make([]byte, 8)
	if n := g.Read(out); n != 4 || string(out[:4]) != "abcX" {
		t.Fatalf("after partial commit: %q", out[:n])
	}
}

func TestRingMisusePanics(t *testing.T) {
	g := New(4)
	g.Write([]byte("ab"))
	for _, f := range []func(){
		func() { g.Consume(3) },
		func() { g.Commit(3) },
		func() { g.Consume(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("misuse did not panic")
				}
			}()
			f()
		}()
	}
}

// TestRingLazyAlloc checks that capacity is a promise, not an
// allocation: the backing buffer appears on first write, grows in
// power-of-two chunks toward the cap, and is released on a complete
// drain once it outgrows the keep threshold.
func TestRingLazyAlloc(t *testing.T) {
	g := New(256 << 10)
	if g.Alloc() != 0 {
		t.Fatalf("fresh ring allocated %d bytes", g.Alloc())
	}
	if g.Cap() != 256<<10 || g.Free() != 256<<10 {
		t.Fatalf("cap=%d free=%d", g.Cap(), g.Free())
	}
	// Small write: min chunk, not full capacity.
	if n := g.Write(make([]byte, 100)); n != 100 {
		t.Fatalf("write = %d", n)
	}
	if g.Alloc() != minAlloc {
		t.Fatalf("after 100B write alloc = %d, want %d", g.Alloc(), minAlloc)
	}
	// Growth is pow2 of demand.
	if n := g.Write(make([]byte, 10000)); n != 10000 {
		t.Fatalf("write = %d", n)
	}
	if g.Alloc() != 16<<10 {
		t.Fatalf("after 10100B queued alloc = %d, want %d", g.Alloc(), 16<<10)
	}
	// Draining a small buffer keeps it warm.
	g.Read(make([]byte, 10100))
	if g.Len() != 0 || g.Alloc() != 16<<10 {
		t.Fatalf("after drain len=%d alloc=%d", g.Len(), g.Alloc())
	}
	// A burst past the keep threshold is released on complete drain.
	if n := g.Write(make([]byte, 200<<10)); n != 200<<10 {
		t.Fatalf("burst write = %d", n)
	}
	if g.Alloc() != 256<<10 {
		t.Fatalf("burst alloc = %d", g.Alloc())
	}
	g.Read(make([]byte, 256<<10))
	if g.Alloc() != 0 {
		t.Fatalf("post-burst drain alloc = %d, want 0", g.Alloc())
	}
	// And the ring still works after the release.
	g.Write([]byte("hello"))
	out := make([]byte, 8)
	if n := g.Read(out); n != 5 || string(out[:5]) != "hello" {
		t.Fatalf("post-release read = %d %q", n, out[:n])
	}
}

// TestRingGrowPreservesOrder fills a ring so the queued bytes wrap,
// then forces growth and checks the FIFO order survives linearization.
func TestRingGrowPreservesOrder(t *testing.T) {
	g := New(1 << 20)
	// Fill the min chunk, wrap the read pointer, refill the tail.
	g.Write(make([]byte, minAlloc))
	g.Read(make([]byte, 700))
	seq := make([]byte, 700)
	for i := range seq {
		seq[i] = byte(i)
	}
	g.Write(seq) // wraps: 324 at tail, 376 at head
	// Grow by writing more than fits in the current chunk.
	big := make([]byte, 3*minAlloc)
	for i := range big {
		big[i] = byte(i + 700)
	}
	g.Write(big)
	// Drain and verify: minAlloc-700 zeros, then seq, then big.
	out := make([]byte, g.Len())
	if n := g.Read(out); n != len(out) {
		t.Fatalf("drain = %d", n)
	}
	out = out[minAlloc-700:]
	for i := 0; i < 700+len(big); i++ {
		if out[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, out[i], byte(i))
		}
	}
}

// TestRingDifferential drives a ring and a model FIFO with the same
// random operation stream, mixing the copy API and the borrow API.
func TestRingDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(300)
		g := New(capacity)
		var model []byte
		next := byte(0)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0: // copy write
				p := make([]byte, rng.Intn(capacity+10))
				for i := range p {
					p[i] = next
					next++
				}
				n := g.Write(p)
				want := min(len(p), capacity-len(model))
				if n != want {
					t.Fatalf("write = %d want %d", n, want)
				}
				next -= byte(len(p) - n) // unwritten bytes re-generated later
				model = append(model, p[:n]...)
			case 1: // copy read
				p := make([]byte, rng.Intn(capacity+10))
				n := g.Read(p)
				want := min(len(p), len(model))
				if n != want || !bytes.Equal(p[:n], model[:n]) {
					t.Fatalf("read = %d %v want %d %v", n, p[:n], want, model[:n])
				}
				model = model[n:]
			case 2: // borrow write
				k := rng.Intn(capacity + 1)
				run := g.Reserve(k)
				take := rng.Intn(len(run) + 1)
				for i := 0; i < take; i++ {
					run[i] = next
					next++
				}
				g.Commit(take)
				model = append(model, run[:take]...)
			case 3: // borrow read
				k := rng.Intn(capacity + 1)
				run := g.Peek(k)
				if len(run) > 0 && !bytes.Equal(run, model[:len(run)]) {
					t.Fatalf("peek mismatch: %v vs %v", run, model[:len(run)])
				}
				take := rng.Intn(len(run) + 1)
				g.Consume(take)
				model = model[take:]
			}
			if g.Len() != len(model) {
				t.Fatalf("len = %d, model %d", g.Len(), len(model))
			}
		}
	}
}
