// Package ulib is the user-space support library for OVM programs — the
// role musl libc plays in the paper's toolchain. It emits the program
// prologue that captures the syscall trampoline from the auxiliary
// vector, and wrappers for every LibOS system call.
//
// Register conventions on top of the ISA's:
//
//	R12  trampoline address (set by Prologue; programs must preserve it)
//	R10  auxv pointer at entry (consumed by Prologue)
//	R0   syscall number / return value
//	R1-5 syscall arguments
//
// All wrappers go through a cfi_guard-ed indirect call to the trampoline,
// exactly like posix_spawn-era musl rewritten for Occlum's spawn (§8).
package ulib

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
)

// TrampReg holds the trampoline address for the program's lifetime.
const TrampReg = isa.R12

// Prologue captures the trampoline address from the auxv. Emit it first
// in every program, at the entry label.
func Prologue(b *asm.Builder) {
	b.Load(TrampReg, isa.Mem(isa.R10, libos.AuxTrampoline))
}

// Syscall emits a system call with the number in no. Arguments must
// already be in R1..R5; the result lands in R0.
func Syscall(b *asm.Builder, no int64) {
	b.MovRI(isa.R0, no)
	b.CallR(TrampReg)
}

// Exit emits exit(code). The syscall never returns; the trailing
// self-loop terminates the fallthrough path so the verifier's complete
// disassembly does not run off the end of the code segment.
func Exit(b *asm.Builder, code int64) {
	b.MovRI(isa.R1, code)
	Syscall(b, libos.SysExit)
	spin := b.Uniq("exit_unreachable")
	b.Label(spin)
	b.Jmp(spin)
}

// ExitR emits exit(<reg>).
func ExitR(b *asm.Builder, reg isa.Reg) {
	b.MovRR(isa.R1, reg)
	Syscall(b, libos.SysExit)
	spin := b.Uniq("exit_unreachable")
	b.Label(spin)
	b.Jmp(spin)
}

// WriteStr emits write(fd, sym, len(sym content)) for a string data
// symbol previously defined with b.String(sym, s).
func WriteStr(b *asm.Builder, fd int64, sym string, n int64) {
	b.MovRI(isa.R1, fd)
	b.LeaData(isa.R2, sym)
	b.MovRI(isa.R3, n)
	Syscall(b, libos.SysWrite)
}

// Write emits write(fd, bufReg, lenReg).
func Write(b *asm.Builder, fd int64, buf, n isa.Reg) {
	b.MovRI(isa.R1, fd)
	if buf != isa.R2 {
		b.MovRR(isa.R2, buf)
	}
	if n != isa.R3 {
		b.MovRR(isa.R3, n)
	}
	Syscall(b, libos.SysWrite)
}

// Read emits read(fd, bufReg, lenReg).
func Read(b *asm.Builder, fd int64, buf, n isa.Reg) {
	b.MovRI(isa.R1, fd)
	if buf != isa.R2 {
		b.MovRR(isa.R2, buf)
	}
	if n != isa.R3 {
		b.MovRR(isa.R3, n)
	}
	Syscall(b, libos.SysRead)
}

// OpenPath emits open(pathSym, flags) for a path string symbol; the fd
// lands in R0.
func OpenPath(b *asm.Builder, pathSym string, pathLen int64, flags int64) {
	b.LeaData(isa.R1, pathSym)
	b.MovRI(isa.R2, pathLen)
	b.MovRI(isa.R3, flags)
	Syscall(b, libos.SysOpen)
}

// Close emits close(fdReg).
func Close(b *asm.Builder, fd isa.Reg) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	Syscall(b, libos.SysClose)
}

// SpawnPath emits spawn(pathSym, argvSym) for path and argv-block data
// symbols; the child pid lands in R0. Pass argvLen 0 for no arguments.
func SpawnPath(b *asm.Builder, pathSym string, pathLen int64, argvSym string, argvLen int64) {
	b.LeaData(isa.R1, pathSym)
	b.MovRI(isa.R2, pathLen)
	if argvLen > 0 {
		b.LeaData(isa.R3, argvSym)
	} else {
		b.MovRI(isa.R3, 0)
	}
	b.MovRI(isa.R4, argvLen)
	Syscall(b, libos.SysSpawn)
}

// Wait4 emits wait4(pidReg, 0): wait for a child, status discarded.
func Wait4(b *asm.Builder, pid isa.Reg) {
	if pid != isa.R1 {
		b.MovRR(isa.R1, pid)
	}
	b.MovRI(isa.R2, 0)
	Syscall(b, libos.SysWait4)
}

// Pipe2 emits pipe2(fdsSym): the read fd lands at the symbol, the write
// fd 8 bytes later.
func Pipe2(b *asm.Builder, fdsSym string) {
	b.LeaData(isa.R1, fdsSym)
	Syscall(b, libos.SysPipe2)
}

// Dup2 emits dup2(old, new) from registers.
func Dup2(b *asm.Builder, oldfd, newfd isa.Reg) {
	if oldfd != isa.R1 {
		b.MovRR(isa.R1, oldfd)
	}
	if newfd != isa.R2 {
		b.MovRR(isa.R2, newfd)
	}
	Syscall(b, libos.SysDup2)
}

// RenamePath emits rename(oldSym, newSym) for two path string symbols;
// 0 or -errno lands in R0.
func RenamePath(b *asm.Builder, oldSym string, oldLen int64, newSym string, newLen int64) {
	b.LeaData(isa.R1, oldSym)
	b.MovRI(isa.R2, oldLen)
	b.LeaData(isa.R3, newSym)
	b.MovRI(isa.R4, newLen)
	Syscall(b, libos.SysRename)
}

// StatPath emits stat(pathSym, bufSym) for a path symbol; the 16-byte
// {size, isdir} result lands at bufSym, 0 or -errno in R0.
func StatPath(b *asm.Builder, pathSym string, pathLen int64, bufSym string) {
	b.LeaData(isa.R1, pathSym)
	b.MovRI(isa.R2, pathLen)
	b.LeaData(isa.R3, bufSym)
	Syscall(b, libos.SysStat)
}

// --- Network and readiness wrappers --------------------------------------

// Socket emits socket(); the fd lands in R0.
func Socket(b *asm.Builder) {
	Syscall(b, libos.SysSocket)
}

// Bind emits bind(fdReg, port).
func Bind(b *asm.Builder, fd isa.Reg, port int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.MovRI(isa.R2, port)
	Syscall(b, libos.SysBind)
}

// ListenSock emits listen(fdReg) with the default backlog. R2 is
// zeroed explicitly: leftover register contents must not be
// misread as a backlog request.
func ListenSock(b *asm.Builder, fd isa.Reg) {
	ListenBacklog(b, fd, 0)
}

// ListenBacklog emits listen(fdReg, backlog). backlog ≤ 0 keeps the
// kernel default; positive values are clamped to the host cap.
func ListenBacklog(b *asm.Builder, fd isa.Reg, backlog int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.MovRI(isa.R2, backlog)
	Syscall(b, libos.SysListen)
}

// Connect emits connect(fdReg, port).
func Connect(b *asm.Builder, fd isa.Reg, port int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.MovRI(isa.R2, port)
	Syscall(b, libos.SysConnect)
}

// Accept emits accept(fd) for an immediate listener fd; the connection
// fd (or -EAGAIN on a drained O_NONBLOCK listener) lands in R0.
func Accept(b *asm.Builder, fd int64) {
	b.MovRI(isa.R1, fd)
	Syscall(b, libos.SysAccept)
}

// SendSym emits send(fdReg, sym, n) from a data symbol.
func SendSym(b *asm.Builder, fd isa.Reg, sym string, n int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.LeaData(isa.R2, sym)
	b.MovRI(isa.R3, n)
	Syscall(b, libos.SysSend)
}

// RecvSym emits recv(fdReg, sym, n) into a data symbol.
func RecvSym(b *asm.Builder, fd isa.Reg, sym string, n int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.LeaData(isa.R2, sym)
	b.MovRI(isa.R3, n)
	Syscall(b, libos.SysRecv)
}

// Fcntl emits fcntl(fd, cmd, arg) with an immediate fd.
func Fcntl(b *asm.Builder, fd, cmd, arg int64) {
	b.MovRI(isa.R1, fd)
	b.MovRI(isa.R2, cmd)
	b.MovRI(isa.R3, arg)
	Syscall(b, libos.SysFcntl)
}

// FcntlR emits fcntl(fdReg, cmd, arg).
func FcntlR(b *asm.Builder, fd isa.Reg, cmd, arg int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.MovRI(isa.R2, cmd)
	b.MovRI(isa.R3, arg)
	Syscall(b, libos.SysFcntl)
}

// Shutdown emits shutdown(fdReg, how).
func Shutdown(b *asm.Builder, fd isa.Reg, how int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.MovRI(isa.R2, how)
	Syscall(b, libos.SysShutdown)
}

// Poll emits poll(fdsSym, nfds, timeoutMs) over an array of 24-byte
// {fd, events, revents} entries at a data symbol; the ready count lands
// in R0.
func Poll(b *asm.Builder, fdsSym string, nfds, timeoutMs int64) {
	b.LeaData(isa.R1, fdsSym)
	b.MovRI(isa.R2, nfds)
	b.MovRI(isa.R3, timeoutMs)
	Syscall(b, libos.SysPoll)
}

// EpCreate emits epoll_create(); the epoll fd lands in R0.
func EpCreate(b *asm.Builder) {
	Syscall(b, libos.SysEpCreate)
}

// EpCtl emits epoll_ctl(epReg, op, fdReg, events). fdReg must not be R1
// or R2 and epReg must not be R3 (the wrapper marshals into R1..R4 in
// that order).
func EpCtl(b *asm.Builder, ep isa.Reg, op int64, fd isa.Reg, events int64) {
	if fd != isa.R3 {
		b.MovRR(isa.R3, fd)
	}
	if ep != isa.R1 {
		b.MovRR(isa.R1, ep)
	}
	b.MovRI(isa.R2, op)
	b.MovRI(isa.R4, events)
	Syscall(b, libos.SysEpCtl)
}

// EpCtlI emits epoll_ctl(epReg, op, fd, events) with an immediate fd.
func EpCtlI(b *asm.Builder, ep isa.Reg, op, fd, events int64) {
	if ep != isa.R1 {
		b.MovRR(isa.R1, ep)
	}
	b.MovRI(isa.R2, op)
	b.MovRI(isa.R3, fd)
	b.MovRI(isa.R4, events)
	Syscall(b, libos.SysEpCtl)
}

// EpWait emits epoll_wait(epReg, evSym, maxEvents, timeoutMs) into an
// array of 16-byte {fd, revents} entries at a data symbol; the ready
// count lands in R0.
func EpWait(b *asm.Builder, ep isa.Reg, evSym string, maxEvents, timeoutMs int64) {
	if ep != isa.R1 {
		b.MovRR(isa.R1, ep)
	}
	b.LeaData(isa.R2, evSym)
	b.MovRI(isa.R3, maxEvents)
	b.MovRI(isa.R4, timeoutMs)
	Syscall(b, libos.SysEpWait)
}

// Memcpy emits an inline word-wise copy loop: copies lenReg bytes
// (multiple of 8) from srcReg to dstReg. Clobbers R8, R9 and the three
// argument registers.
func Memcpy(b *asm.Builder, dst, src, n isa.Reg, unique string) {
	loop, done := "memcpy_loop_"+unique, "memcpy_done_"+unique
	b.Label(loop)
	b.CmpI(n, 8)
	b.Jl(done)
	b.Load(isa.R8, isa.Mem(src, 0))
	b.Store(isa.Mem(dst, 0), isa.R8)
	b.AddI(src, 8)
	b.AddI(dst, 8)
	b.SubI(n, 8)
	b.Jmp(loop)
	b.Label(done)
	b.Nop()
}

// --- Zero-copy data plane wrappers ---------------------------------------

// IovSetSym fills iovec entry idx of the array at iovSym (16-byte
// {base, len} entries, declared with b.Zero(iovSym, 16*cnt)) with the
// address of dataSym and length n. Clobbers R8, R9.
func IovSetSym(b *asm.Builder, iovSym string, idx int64, dataSym string, n int64) {
	b.LeaData(isa.R8, iovSym)
	b.LeaData(isa.R9, dataSym)
	b.Store(isa.Mem(isa.R8, int32(idx*16)), isa.R9)
	b.MovRI(isa.R9, n)
	b.Store(isa.Mem(isa.R8, int32(idx*16+8)), isa.R9)
}

// IovSetReg fills iovec entry idx at iovSym with a runtime base address
// and length n. Clobbers R8, R9.
func IovSetReg(b *asm.Builder, iovSym string, idx int64, base isa.Reg, n int64) {
	b.LeaData(isa.R8, iovSym)
	b.Store(isa.Mem(isa.R8, int32(idx*16)), base)
	b.MovRI(isa.R9, n)
	b.Store(isa.Mem(isa.R8, int32(idx*16+8)), isa.R9)
}

// Writev emits writev(fdReg, iovSym, cnt).
func Writev(b *asm.Builder, fd isa.Reg, iovSym string, cnt int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.LeaData(isa.R2, iovSym)
	b.MovRI(isa.R3, cnt)
	Syscall(b, libos.SysWritev)
}

// Readv emits readv(fdReg, iovSym, cnt).
func Readv(b *asm.Builder, fd isa.Reg, iovSym string, cnt int64) {
	if fd != isa.R1 {
		b.MovRR(isa.R1, fd)
	}
	b.LeaData(isa.R2, iovSym)
	b.MovRI(isa.R3, cnt)
	Syscall(b, libos.SysReadv)
}

// Sendfile emits sendfile(outfdReg, infdReg, off, count). Stages both
// fds through R8/R9 so any outfd/infd register pair is safe; clobbers
// R8, R9.
func Sendfile(b *asm.Builder, outfd, infd isa.Reg, off, count int64) {
	b.MovRR(isa.R8, outfd)
	b.MovRR(isa.R9, infd)
	b.MovRR(isa.R1, isa.R8)
	b.MovRR(isa.R2, isa.R9)
	b.MovRI(isa.R3, off)
	b.MovRI(isa.R4, count)
	Syscall(b, libos.SysSendfile)
}

// Splice emits splice(fdInReg, fdOutReg, count). Stages both fds
// through R8/R9 so any register pair is safe; clobbers R8, R9.
func Splice(b *asm.Builder, fdIn, fdOut isa.Reg, count int64) {
	b.MovRR(isa.R8, fdIn)
	b.MovRR(isa.R9, fdOut)
	b.MovRR(isa.R1, isa.R8)
	b.MovRR(isa.R2, isa.R9)
	b.MovRI(isa.R3, count)
	Syscall(b, libos.SysSplice)
}
