package ulib_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// run builds a program with f, installs it through the full toolchain
// (instrument, sign, verify), spawns it as a SIP and returns its stdout
// and exit status.
func run(t *testing.T, f func(b *asm.Builder)) (string, int) {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	tc := core.NewToolchain()
	sys, err := core.BootSystem(core.SystemConfig{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.OS.Shutdown()
	if err := sys.Install(tc, "/bin/prog", "prog", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/prog", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	status := p.Wait()
	return out.String(), status
}

func TestPrologueWriteStrExit(t *testing.T) {
	const msg = "ulib says hi\n"
	out, status := run(t, func(b *asm.Builder) {
		b.String("msg", msg)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.WriteStr(b, 1, "msg", int64(len(msg)))
		ulib.Exit(b, 3)
	})
	if out != msg {
		t.Fatalf("stdout = %q, want %q", out, msg)
	}
	if status != 3 {
		t.Fatalf("exit status = %d, want 3", status)
	}
}

func TestExitR(t *testing.T) {
	_, status := run(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.MovRI(isa.R7, 21)
		b.AddI(isa.R7, 21)
		ulib.ExitR(b, isa.R7)
	})
	if status != 42 {
		t.Fatalf("exit status = %d, want 42", status)
	}
}

func TestMemcpyAndWrite(t *testing.T) {
	const msg = "0123456789abcdef" // 16 bytes, a multiple of the word size
	out, status := run(t, func(b *asm.Builder) {
		b.String("src", msg)
		b.Zero("dst", len(msg))
		b.Entry("_start")
		ulib.Prologue(b)
		b.LeaData(isa.R4, "dst")
		b.LeaData(isa.R5, "src")
		b.MovRI(isa.R6, int64(len(msg)))
		ulib.Memcpy(b, isa.R4, isa.R5, isa.R6, "t")
		b.LeaData(isa.R2, "dst")
		b.MovRI(isa.R3, int64(len(msg)))
		ulib.Write(b, 1, isa.R2, isa.R3)
		ulib.Exit(b, 0)
	})
	if out != msg {
		t.Fatalf("stdout = %q, want %q (Memcpy corrupted the buffer)", out, msg)
	}
	if status != 0 {
		t.Fatalf("exit status = %d, want 0", status)
	}
}
