package libos

import (
	"errors"
	"io"
	"runtime"
	"time"

	"repro/internal/fs"
)

// dispatch executes one LibOS system call — just a function call within
// the enclave, never an enclave transition (the core performance argument
// of SIPs). Returns the value for R0 and whether the process exited.
func (p *Proc) dispatch(no, a1, a2, a3, a4, a5 uint64) (int64, bool) {
	switch no {
	case SysExit:
		p.teardown(int(int64(a1)) & 0xFF)
		return 0, true

	case SysWrite, SysSend:
		return p.sysWrite(int(int64(a1)), a2, a3), false
	case SysRead, SysRecv:
		return p.sysRead(int(int64(a1)), a2, a3), false
	case SysOpen:
		return p.sysOpen(a1, a2, fs.OpenFlag(a3)), false
	case SysClose:
		return p.sysClose(int(int64(a1))), false
	case SysSpawn:
		return p.sysSpawn(a1, a2, a3, a4), false
	case SysWait4:
		pid, status, errno := p.wait4(int(int64(a1)))
		if errno != 0 {
			return -int64(errno), false
		}
		if a2 != 0 {
			if err := p.writeUserU64(a2, uint64(status)); err != nil {
				return -EFAULT, false
			}
		}
		return int64(pid), false
	case SysPipe2:
		r, w := NewPipe()
		rfd, wfd := p.installFD(r), p.installFD(w)
		if err := p.writeUserU64(a1, uint64(rfd)); err != nil {
			return -EFAULT, false
		}
		if err := p.writeUserU64(a1+8, uint64(wfd)); err != nil {
			return -EFAULT, false
		}
		return 0, false
	case SysDup2:
		return p.sysDup2(int(int64(a1)), int(int64(a2))), false
	case SysGetpid:
		return int64(p.pid), false
	case SysGetppid:
		return int64(p.ppid), false
	case SysMmap:
		return p.sysMmap(a1), false
	case SysMunmap:
		return 0, false // bump allocator: munmap is a no-op
	case SysFutex:
		return p.sysFutex(a1, a2, a3), false
	case SysKill:
		if err := p.os.Kill(int(int64(a1)), int(int64(a2))); err != nil {
			return -ESRCH, false
		}
		return 0, false
	case SysSigact:
		return p.sysSigaction(int(int64(a1)), a2), false
	case SysSigret:
		return p.sysSigreturn()
	case SysLseek:
		of, ok := p.getFD(int(int64(a1)))
		if !ok {
			return -EBADF, false
		}
		off, err := of.Seek(int64(a2), int(int64(a3)))
		if err != nil {
			return -ESPIPE, false
		}
		return off, false
	case SysStat:
		return p.sysStat(a1, a2, a3), false
	case SysMkdir:
		path, err := p.readUserBytes(a1, a2)
		if err != nil {
			return -EFAULT, false
		}
		return errno(p.os.vfs.Mkdir(string(path))), false
	case SysUnlink:
		path, err := p.readUserBytes(a1, a2)
		if err != nil {
			return -EFAULT, false
		}
		return errno(p.os.vfs.Unlink(string(path))), false
	case SysReaddir:
		return p.sysReaddir(a1, a2, a3, a4), false
	case SysSocket:
		of := &OpenFile{refs: 1, kind: kindSock}
		return int64(p.installFD(of)), false
	case SysBind:
		return p.sysBind(int(int64(a1)), uint16(a2)), false
	case SysListen:
		return 0, false // binding already created the host listener
	case SysAccept:
		return p.sysAccept(int(int64(a1))), false
	case SysConnect:
		return p.sysConnect(int(int64(a1)), uint16(a2)), false
	case SysClock:
		return time.Now().UnixNano(), false
	case SysYield:
		runtime.Gosched()
		return 0, false
	case SysFsync:
		return errno(p.os.encfs.Sync()), false
	case SysSpawnCPU:
		return int64(p.cpu.Cycles), false
	}
	return -ENOSYS, false
}

func errno(err error) int64 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, fs.ErrNotExist):
		return -ENOENT
	case errors.Is(err, fs.ErrExist):
		return -EEXIST
	case errors.Is(err, fs.ErrIsDir):
		return -EISDIR
	case errors.Is(err, fs.ErrNotDir):
		return -ENOTDIR
	case errors.Is(err, fs.ErrNotEmpty):
		return -ENOTEMPTY
	case errors.Is(err, fs.ErrReadOnly):
		return -EACCES
	case errors.Is(err, fs.ErrFull):
		return -ENOSPC
	default:
		return -EIO
	}
}

func (p *Proc) sysWrite(fd int, buf, n uint64) int64 {
	of, ok := p.getFD(fd)
	if !ok {
		return -EBADF
	}
	data, err := p.readUserBytes(buf, n)
	if err != nil {
		return -EFAULT
	}
	wn, werr := of.Write(data)
	if werr != nil && wn == 0 {
		return -EPIPE
	}
	return int64(wn)
}

func (p *Proc) sysRead(fd int, buf, n uint64) int64 {
	of, ok := p.getFD(fd)
	if !ok {
		return -EBADF
	}
	if !p.inData(buf, n) {
		return -EFAULT
	}
	tmp := make([]byte, n)
	rn, err := of.Read(tmp)
	if err != nil && err != io.EOF && rn == 0 {
		return -EIO
	}
	if rn > 0 {
		if werr := p.writeUserBytes(buf, tmp[:rn]); werr != nil {
			return -EFAULT
		}
	}
	return int64(rn)
}

func (p *Proc) sysOpen(pathPtr, pathLen uint64, flags fs.OpenFlag) int64 {
	path, err := p.readUserBytes(pathPtr, pathLen)
	if err != nil {
		return -EFAULT
	}
	n, oerr := p.os.vfs.Open(string(path), flags)
	if oerr != nil {
		return errno(oerr)
	}
	return int64(p.installFD(newNodeFile(n, flags)))
}

func (p *Proc) sysClose(fd int) int64 {
	p.fdmu.Lock()
	of, ok := p.fds[fd]
	if ok {
		delete(p.fds, fd)
	}
	p.fdmu.Unlock()
	if !ok {
		return -EBADF
	}
	of.unref()
	return 0
}

func (p *Proc) sysDup2(oldfd, newfd int) int64 {
	p.fdmu.Lock()
	of, ok := p.fds[oldfd]
	if !ok {
		p.fdmu.Unlock()
		return -EBADF
	}
	if oldfd == newfd {
		p.fdmu.Unlock()
		return int64(newfd)
	}
	if old, exists := p.fds[newfd]; exists {
		old.unref()
	}
	of.ref()
	p.fds[newfd] = of
	p.fdmu.Unlock()
	return int64(newfd)
}

func (p *Proc) sysSpawn(pathPtr, pathLen, argvPtr, argvLen uint64) int64 {
	path, err := p.readUserBytes(pathPtr, pathLen)
	if err != nil {
		return -EFAULT
	}
	var argv []string
	if argvLen > 0 {
		block, err := p.readUserBytes(argvPtr, argvLen)
		if err != nil {
			return -EFAULT
		}
		start := 0
		for i, b := range block {
			if b == 0 {
				argv = append(argv, string(block[start:i]))
				start = i + 1
			}
		}
	}
	child, err := p.os.Spawn(string(path), argv, SpawnOpt{Parent: p})
	if err != nil {
		switch {
		case errors.Is(err, ErrNoDomains), errors.Is(err, ErrNoThreads):
			return -EAGAIN
		case errors.Is(err, fs.ErrNotExist):
			return -ENOENT
		default:
			return -EACCES
		}
	}
	return int64(child.pid)
}

func (p *Proc) sysMmap(length uint64) int64 {
	// Anonymous RW mapping from the domain's heap. The pages were
	// zeroed when the domain was recycled, and the bump pointer only
	// hands out fresh memory, so the zero-fill guarantee of §6 holds.
	length = (length + 4095) &^ 4095
	p.os.mu.Lock()
	defer p.os.mu.Unlock()
	if p.heapPtr+length > p.heapEnd {
		return -ENOMEM
	}
	addr := p.heapPtr
	p.heapPtr += length
	// mmap must return zeroed pages even if a previous user of this
	// heap range dirtied them within this process lifetime.
	zero := make([]byte, length)
	if f := p.os.enclave.WriteAt(addr, zero); f != nil {
		return -ENOMEM
	}
	return int64(addr)
}

func (p *Proc) sysFutex(op, addr, val uint64) int64 {
	switch op {
	case FutexWait:
		// The value check happens inside the LibOS (semantic
		// correctness), only the sleep is delegated to the host.
		cur, err := p.readUserU64(addr)
		if err != nil {
			return -EFAULT
		}
		if cur != val {
			return -EAGAIN
		}
		p.os.host.FutexWait(addr)
		return 0
	case FutexWake:
		return int64(p.os.host.FutexWake(addr, int(val)))
	}
	return -EINVAL
}

func (p *Proc) sysSigaction(sig int, handler uint64) int64 {
	if sig == SIGKILL {
		return -EINVAL
	}
	if handler != 0 && !p.os.isDomainLabel(p.dom, handler) {
		// A handler must be a cfi_label of this domain, otherwise
		// signal delivery would be an arbitrary-jump primitive.
		return -EINVAL
	}
	p.os.mu.Lock()
	if handler == 0 {
		delete(p.handlers, sig)
	} else {
		p.handlers[sig] = handler
	}
	p.os.mu.Unlock()
	return 0
}

func (p *Proc) sysSigreturn() (int64, bool) {
	p.os.mu.Lock()
	if !p.inHandler {
		p.os.mu.Unlock()
		return -EINVAL, false
	}
	p.inHandler = false
	p.os.mu.Unlock()
	p.cpu.PC = p.savedPC
	p.cpu.Regs = p.savedRegs
	// Resume at the saved context rather than the syscall return path:
	// report "exited=true" semantics are wrong here, so instead we
	// return a sentinel telling syscallEntry not to clobber PC.
	return sigreturnSentinel, false
}

// sigreturnSentinel makes syscallEntry skip the normal PC/R0 update.
const sigreturnSentinel = int64(-1) << 62

func (p *Proc) sysStat(pathPtr, pathLen, statPtr uint64) int64 {
	path, err := p.readUserBytes(pathPtr, pathLen)
	if err != nil {
		return -EFAULT
	}
	fi, serr := p.os.vfs.Stat(string(path))
	if serr != nil {
		return errno(serr)
	}
	if err := p.writeUserU64(statPtr, uint64(fi.Size)); err != nil {
		return -EFAULT
	}
	var d uint64
	if fi.IsDir {
		d = 1
	}
	if err := p.writeUserU64(statPtr+8, d); err != nil {
		return -EFAULT
	}
	return 0
}

func (p *Proc) sysReaddir(pathPtr, pathLen, bufPtr, bufLen uint64) int64 {
	path, err := p.readUserBytes(pathPtr, pathLen)
	if err != nil {
		return -EFAULT
	}
	ents, derr := p.os.vfs.ReadDir(string(path))
	if derr != nil {
		return errno(derr)
	}
	var out []byte
	for _, e := range ents {
		out = append(out, e.Name...)
		out = append(out, 0)
	}
	if uint64(len(out)) > bufLen {
		out = out[:bufLen]
	}
	if err := p.writeUserBytes(bufPtr, out); err != nil {
		return -EFAULT
	}
	return int64(len(out))
}

func (p *Proc) sysBind(fd int, port uint16) int64 {
	of, ok := p.getFD(fd)
	if !ok || of.kind != kindSock {
		return -EBADF
	}
	lis, err := p.os.host.Listen(port)
	if err != nil {
		return -EACCES
	}
	of.mu.Lock()
	of.kind = kindListener
	of.lis = lis
	of.port = port
	of.mu.Unlock()
	return 0
}

func (p *Proc) sysAccept(fd int) int64 {
	of, ok := p.getFD(fd)
	if !ok || of.kind != kindListener {
		return -EBADF
	}
	conn, err := of.lis.Accept()
	if err != nil {
		return -EIO
	}
	nf := &OpenFile{refs: 1, kind: kindSock, conn: conn}
	return int64(p.installFD(nf))
}

func (p *Proc) sysConnect(fd int, port uint16) int64 {
	of, ok := p.getFD(fd)
	if !ok || of.kind != kindSock {
		return -EBADF
	}
	conn, err := p.os.host.Dial(port)
	if err != nil {
		return -ECONNREFUSED
	}
	of.mu.Lock()
	of.conn = conn
	of.mu.Unlock()
	return 0
}
