package libos

import (
	"errors"
	"io"

	"repro/internal/fs"
	"repro/internal/sysdispatch"
)

// sysTable is the LibOS's registration into the shared syscall spine
// (internal/sysdispatch): marshalling and the fd table come from the
// spine; the handlers below supply SIP semantics — domain-checked user
// memory, the encrypted VFS, signals, and the parking protocol that
// releases a hart instead of blocking it.
var sysTable = newSysTable()

func newSysTable() *sysdispatch.Table {
	t := sysdispatch.NewTable()
	t.Register(SysExit, sysdispatch.ExitHandler(func(k sysdispatch.Kernel, status int) {
		k.(*Proc).teardown(status)
	}))
	t.Register(SysWrite, sysWrite)
	t.Register(SysSend, sysWrite)
	t.Register(SysRead, sysRead)
	t.Register(SysRecv, sysRead)
	t.Register(SysWritev, sysWritev)
	t.Register(SysReadv, sysReadv)
	t.Register(SysSendfile, sysSendfile)
	t.Register(SysSplice, sysSplice)
	t.Register(SysOpen, sysdispatch.OpenHandler(sysOpen))
	t.Register(SysClose, sysdispatch.CloseFD)
	t.Register(SysSpawn, sysdispatch.SpawnHandler(sysSpawn))
	t.Register(SysWait4, sysdispatch.Wait4Handler(func(k sysdispatch.Kernel, pid int) (int, int, int64, bool) {
		return k.(*Proc).sysWait4(pid)
	}))
	t.Register(SysPipe2, sysdispatch.Pipe2Handler(func(sysdispatch.Kernel) (sysdispatch.File, sysdispatch.File) {
		r, w := NewPipe()
		return r, w
	}))
	t.Register(SysDup2, sysdispatch.Dup2FD)
	t.Register(SysGetpid, sysdispatch.Getpid)
	t.Register(SysGetppid, sysdispatch.Getppid)
	t.Register(SysMmap, sysMmap)
	t.Register(SysMunmap, sysdispatch.Munmap)
	t.Register(SysFutex, sysFutex)
	t.Register(SysKill, sysKill)
	t.Register(SysSigact, sysSigaction)
	t.Register(SysSigret, sysSigreturn)
	t.Register(SysLseek, sysdispatch.Lseek)
	t.Register(SysStat, sysStat)
	t.Register(SysMkdir, pathHandler(func(p *Proc, path string) int64 {
		return errno(p.os.vfs.Mkdir(path))
	}))
	t.Register(SysUnlink, pathHandler(func(p *Proc, path string) int64 {
		return errno(p.os.vfs.Unlink(path))
	}))
	t.Register(SysRename, sysRename)
	t.Register(SysReaddir, sysReaddir)
	t.Register(SysSocket, sysdispatch.SocketHandler(func(sysdispatch.Kernel) sysdispatch.File {
		return NewSocketFile()
	}))
	t.Register(SysBind, sysBind)
	t.Register(SysListen, sysdispatch.Listen)
	t.Register(SysAccept, sysAccept)
	t.Register(SysConnect, sysConnect)
	t.Register(SysClock, sysdispatch.Clock)
	t.Register(SysFcntl, sysFcntl)
	t.Register(SysPoll, sysPoll)
	t.Register(SysEpCreate, sysEpCreate)
	t.Register(SysEpCtl, sysEpCtl)
	t.Register(SysEpWait, sysEpWait)
	t.Register(SysShutdown, sysShutdown)
	t.Register(SysYield, func(sysdispatch.Kernel, *[5]uint64) sysdispatch.Result {
		return sysdispatch.Result{Yielded: true}
	})
	t.Register(SysFsync, func(k sysdispatch.Kernel, _ *[5]uint64) sysdispatch.Result {
		return sysdispatch.Ok(errno(k.(*Proc).os.encfs.Sync()))
	})
	t.Register(SysSpawnCPU, func(k sysdispatch.Kernel, _ *[5]uint64) sysdispatch.Result {
		return sysdispatch.Ok(int64(k.(*Proc).cpu.Cycles))
	})
	return t
}

func errno(err error) int64 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, fs.ErrNotExist):
		return -ENOENT
	case errors.Is(err, fs.ErrExist):
		return -EEXIST
	case errors.Is(err, fs.ErrIsDir):
		return -EISDIR
	case errors.Is(err, fs.ErrNotDir):
		return -ENOTDIR
	case errors.Is(err, fs.ErrNotEmpty):
		return -ENOTEMPTY
	case errors.Is(err, fs.ErrReadOnly):
		return -EACCES
	case errors.Is(err, fs.ErrFull):
		return -ENOSPC
	case errors.Is(err, fs.ErrCrossDevice):
		return -EXDEV
	case errors.Is(err, fs.ErrInvalid):
		return -EINVAL
	case errors.Is(err, fs.ErrReservedName):
		return -EACCES
	default:
		return -EIO
	}
}

// pathHandler adapts a path-only operation (mkdir, unlink).
func pathHandler(f func(p *Proc, path string) int64) sysdispatch.Handler {
	return func(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
		path, ok := sysdispatch.ReadPath(k, a[0], a[1])
		if !ok {
			return sysdispatch.Errno(EFAULT)
		}
		return sysdispatch.Ok(f(k.(*Proc), path))
	}
}

func (p *Proc) getFD(fd int) (*OpenFile, bool) {
	f, ok := p.fds.Get(fd)
	if !ok {
		return nil, false
	}
	of, ok := f.(*OpenFile)
	return of, ok
}

// sysWrite is the SIP write(2)/send(2): pipes and sockets park when the
// ring is full, resuming where they left off (cursys.prog) so no byte is
// sent twice; O_NONBLOCK sockets return the partial count or EAGAIN
// instead of parking. Other descriptions complete or fail immediately.
func sysWrite(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	fd, buf, n := int(int64(a[0])), a[1], a[2]
	of, ok := p.getFD(fd)
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	if of.kind == kindSock {
		return p.sockSend(of, buf, n)
	}
	if of.kind == kindPipeW {
		// Copy only the unsent remainder out of the user buffer: a
		// partially drained write re-dispatches once per ring-full of
		// progress, and re-copying the whole buffer each retry would
		// be O(n²/cap).
		cur := p.cursys
		rem, err := p.readUserBytes(buf+uint64(cur.prog), n-uint64(cur.prog))
		if err != nil {
			return sysdispatch.Errno(EFAULT)
		}
		wn, closed := of.pipe.tryWrite(rem, p.unpark)
		cur.prog += int64(wn)
		netStats.bytesCopied.Add(uint64(wn))
		if closed {
			if cur.prog == 0 {
				return sysdispatch.Errno(EPIPE)
			}
			return sysdispatch.Ok(cur.prog)
		}
		if cur.prog < int64(n) {
			return sysdispatch.ParkedResult
		}
		return sysdispatch.Ok(cur.prog)
	}
	data, err := p.readUserBytes(buf, n)
	if err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	wn, werr := of.Write(data)
	if werr != nil && wn == 0 {
		return sysdispatch.Errno(EPIPE)
	}
	netStats.bytesCopied.Add(uint64(wn))
	return sysdispatch.Ok(int64(wn))
}

// sysRead is the SIP read(2)/recv(2): pipe and socket reads park until
// data or close (O_NONBLOCK sockets return EAGAIN instead); nodes use
// the immediate path.
func sysRead(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	fd, buf, n := int(int64(a[0])), a[1], a[2]
	of, ok := p.getFD(fd)
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	if n > sysdispatch.MaxUserBuf || !p.inData(buf, n) {
		return sysdispatch.Errno(EFAULT)
	}
	tmp := make([]byte, n)
	var rn int
	switch of.kind {
	case kindPipeR:
		var eof, parked bool
		rn, eof, parked = of.pipe.tryRead(tmp, p.unpark)
		if parked {
			return sysdispatch.ParkedResult
		}
		if eof {
			return sysdispatch.Ok(0)
		}
	case kindSock:
		of.mu.Lock()
		conn := of.conn
		of.mu.Unlock()
		if conn == nil {
			return sysdispatch.Errno(ENOTCONN)
		}
		wait := p.unpark
		if of.nonblock.Load() {
			wait = nil
		}
		var eof, wouldBlock bool
		rn, eof, wouldBlock = conn.TryRead(tmp, wait)
		if rn > 0 {
			of.touch()
		}
		if wouldBlock {
			if wait == nil {
				netStats.eagains.Add(1)
				return sysdispatch.Errno(EAGAIN)
			}
			netStats.recvParks.Add(1)
			return sysdispatch.ParkedResult
		}
		if eof {
			return sysdispatch.Ok(0)
		}
	default:
		var err error
		rn, err = of.Read(tmp)
		if err != nil && err != io.EOF && rn == 0 {
			return sysdispatch.Errno(EIO)
		}
	}
	if rn > 0 {
		if werr := p.writeUserBytes(buf, tmp[:rn]); werr != nil {
			return sysdispatch.Errno(EFAULT)
		}
		netStats.bytesCopied.Add(uint64(rn))
	}
	return sysdispatch.Ok(int64(rn))
}

// sockSend is the socket half of sysWrite: like pipe writes it copies
// only the unsent remainder each retry (cursys.prog) and parks when the
// peer's receive buffer is full; O_NONBLOCK returns the partial count,
// or EAGAIN when nothing fit.
func (p *Proc) sockSend(of *OpenFile, buf, n uint64) sysdispatch.Result {
	of.mu.Lock()
	conn := of.conn
	of.mu.Unlock()
	if conn == nil {
		return sysdispatch.Errno(ENOTCONN)
	}
	cur := p.cursys
	rem, err := p.readUserBytes(buf+uint64(cur.prog), n-uint64(cur.prog))
	if err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	wait := p.unpark
	if of.nonblock.Load() {
		wait = nil
	}
	wn, closed, wouldBlock := conn.TryWrite(rem, wait)
	cur.prog += int64(wn)
	netStats.bytesCopied.Add(uint64(wn))
	if wn > 0 {
		of.touch()
	}
	if closed {
		if cur.prog == 0 {
			return sysdispatch.Errno(EPIPE)
		}
		return sysdispatch.Ok(cur.prog)
	}
	if wouldBlock {
		if wait == nil {
			if cur.prog > 0 {
				return sysdispatch.Ok(cur.prog)
			}
			netStats.eagains.Add(1)
			return sysdispatch.Errno(EAGAIN)
		}
		netStats.sendParks.Add(1)
		return sysdispatch.ParkedResult
	}
	return sysdispatch.Ok(cur.prog)
}

func sysOpen(k sysdispatch.Kernel, path string, flags uint64) (sysdispatch.File, int64) {
	p := k.(*Proc)
	n, err := p.os.vfs.Open(path, fs.OpenFlag(flags))
	if err != nil {
		return nil, -errno(err)
	}
	return newNodeFile(n, fs.OpenFlag(flags)), 0
}

func sysSpawn(k sysdispatch.Kernel, path string, argv []string) int64 {
	p := k.(*Proc)
	child, err := p.os.Spawn(path, argv, SpawnOpt{Parent: p})
	if err != nil {
		switch {
		case errors.Is(err, ErrNoDomains), errors.Is(err, ErrNoThreads):
			return -EAGAIN
		case errors.Is(err, fs.ErrNotExist):
			return -ENOENT
		default:
			return -EACCES
		}
	}
	return int64(child.pid)
}

func sysMmap(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	// Anonymous RW mapping from the domain's heap. The pages were
	// zeroed when the domain was recycled, and the bump pointer only
	// hands out fresh memory, so the zero-fill guarantee of §6 holds.
	length := (a[0] + 4095) &^ 4095
	p.os.mu.Lock()
	defer p.os.mu.Unlock()
	if p.heapPtr+length > p.heapEnd {
		return sysdispatch.Errno(ENOMEM)
	}
	addr := p.heapPtr
	p.heapPtr += length
	// mmap must return zeroed pages even if a previous user of this
	// heap range dirtied them within this process lifetime.
	zero := make([]byte, length)
	if f := p.os.enclave.WriteAt(addr, zero); f != nil {
		return sysdispatch.Errno(ENOMEM)
	}
	return sysdispatch.Ok(int64(addr))
}

// sysFutex: the value check happens inside the LibOS (semantic
// correctness); only the sleep is delegated to the host. Waiting parks
// the SIP: the wake callback latches cursys.woken and unparks, and the
// retry returns 0 without re-checking the futex word (the waker usually
// changed it). Registrations not consumed by a wake are cancelled by
// dispatch/teardown, so no wake is ever wasted on a dead waiter.
func sysFutex(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	op, addr, val := a[0], a[1], a[2]
	switch op {
	case FutexWait:
		cur := p.cursys
		if cur.woken.Load() {
			return sysdispatch.Ok(0)
		}
		if cur.cancel == nil {
			v, err := p.readUserU64(addr)
			if err != nil {
				return sysdispatch.Errno(EFAULT)
			}
			if v != val {
				return sysdispatch.Errno(EAGAIN)
			}
			reg := p.os.host.FutexSubscribe(addr, func() {
				cur.woken.Store(true)
				p.unpark()
			})
			cur.cancel = reg.Cancel
		}
		// Still registered (a spurious wake re-parks here).
		return sysdispatch.ParkedResult
	case FutexWake:
		return sysdispatch.Ok(int64(p.os.host.FutexWake(addr, int(val))))
	}
	return sysdispatch.Errno(EINVAL)
}

func sysKill(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	if err := p.os.Kill(int(int64(a[0])), int(int64(a[1]))); err != nil {
		return sysdispatch.Errno(ESRCH)
	}
	return sysdispatch.Ok(0)
}

func sysSigaction(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	sig, handler := int(int64(a[0])), a[1]
	if sig == SIGKILL {
		return sysdispatch.Errno(EINVAL)
	}
	if handler != 0 && !p.os.isDomainLabel(p.dom, handler) {
		// A handler must be a cfi_label of this domain, otherwise
		// signal delivery would be an arbitrary-jump primitive.
		return sysdispatch.Errno(EINVAL)
	}
	p.os.mu.Lock()
	if handler == 0 {
		delete(p.handlers, sig)
	} else {
		p.handlers[sig] = handler
	}
	p.os.mu.Unlock()
	return sysdispatch.Ok(0)
}

func sysSigreturn(k sysdispatch.Kernel, _ *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	p.os.mu.Lock()
	if !p.inHandler {
		p.os.mu.Unlock()
		return sysdispatch.Errno(EINVAL)
	}
	p.inHandler = false
	p.os.mu.Unlock()
	// Restore the full pre-signal context; the normal syscall return
	// path must not clobber it.
	p.cpu.PC = p.savedPC
	p.cpu.Regs = p.savedRegs
	return sysdispatch.Result{NoWriteback: true}
}

// sysRename is rename(oldPath, oldLen, newPath, newLen).
func sysRename(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	oldp, ok := sysdispatch.ReadPath(p, a[0], a[1])
	if !ok {
		return sysdispatch.Errno(EFAULT)
	}
	newp, ok := sysdispatch.ReadPath(p, a[2], a[3])
	if !ok {
		return sysdispatch.Errno(EFAULT)
	}
	return sysdispatch.Ok(errno(p.os.vfs.Rename(oldp, newp)))
}

func sysStat(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	path, ok := sysdispatch.ReadPath(p, a[0], a[1])
	if !ok {
		return sysdispatch.Errno(EFAULT)
	}
	fi, serr := p.os.vfs.Stat(path)
	if serr != nil {
		return sysdispatch.Ok(errno(serr))
	}
	if err := p.writeUserU64(a[2], uint64(fi.Size)); err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	var d uint64
	if fi.IsDir {
		d = 1
	}
	if err := p.writeUserU64(a[2]+8, d); err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	return sysdispatch.Ok(0)
}

func sysReaddir(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	path, ok := sysdispatch.ReadPath(p, a[0], a[1])
	if !ok {
		return sysdispatch.Errno(EFAULT)
	}
	ents, derr := p.os.vfs.ReadDir(path)
	if derr != nil {
		return sysdispatch.Ok(errno(derr))
	}
	var out []byte
	for _, e := range ents {
		out = append(out, e.Name...)
		out = append(out, 0)
	}
	if uint64(len(out)) > a[3] {
		out = out[:a[3]]
	}
	if err := p.writeUserBytes(a[2], out); err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	return sysdispatch.Ok(int64(len(out)))
}

func sysBind(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok || of.kind != kindSock {
		return sysdispatch.Errno(EBADF)
	}
	lis, err := p.os.host.Listen(uint16(a[1]))
	if err != nil {
		return sysdispatch.Errno(EACCES)
	}
	of.mu.Lock()
	of.kind = kindListener
	of.lis = lis
	of.port = uint16(a[1])
	of.mu.Unlock()
	return sysdispatch.Ok(0)
}

// sysAccept parks the SIP until a connection is queued or the listener
// closes — the paper's Lighttpd configuration runs more workers than
// TCS entries only because a worker waiting in accept costs no hart. On
// an O_NONBLOCK listener an empty backlog returns EAGAIN instead (the
// event-driven acceptor's drain loop).
func sysAccept(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok || of.kind != kindListener {
		return sysdispatch.Errno(EBADF)
	}
	wait := p.unpark
	if of.nonblock.Load() {
		wait = nil
	}
	o := p.os
	for {
		conn, got, closed := of.lis.TryAccept(wait)
		if closed {
			return sysdispatch.Errno(EIO)
		}
		if !got {
			if wait == nil {
				netStats.eagains.Add(1)
				return sysdispatch.Errno(EAGAIN)
			}
			netStats.acceptParks.Add(1)
			return sysdispatch.ParkedResult
		}
		// Backpressure: when the run queues are saturated past the
		// configured threshold, admitting another connection only grows
		// the backlog of work the harts cannot reach — shed it at the
		// door (accept-and-close, the cheapest refusal) and drain the
		// next queued one, so a burst is rejected promptly instead of
		// timing out one accept at a time.
		if o.cfg.ShedThreshold > 0 && o.sched.Runnable() >= o.cfg.ShedThreshold {
			conn.Close()
			netStats.sheds.Add(1)
			continue
		}
		nf := &OpenFile{refs: 1, kind: kindSock, conn: conn}
		if d := o.cfg.IdleTimeout; d > 0 {
			nf.armIdleReap(o.wheelFor(p.pid), d)
		}
		return sysdispatch.Ok(int64(p.fds.Install(nf)))
	}
}

func sysConnect(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok || of.kind != kindSock {
		return sysdispatch.Errno(EBADF)
	}
	conn, err := p.os.host.Dial(uint16(a[1]))
	if err != nil {
		return sysdispatch.Errno(ECONNREFUSED)
	}
	of.mu.Lock()
	of.conn = conn
	of.mu.Unlock()
	return sysdispatch.Ok(0)
}
