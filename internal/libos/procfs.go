package libos

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fs"
)

// procFS is the /proc special filesystem, synthesized by the LibOS: a
// unified view over every SIP in the enclave — something EIP-based
// LibOSes cannot offer, since each of their processes lives in a separate
// enclave.
type procFS struct {
	os *Occlum
}

func newProcFS(o *Occlum) *procFS { return &procFS{os: o} }

var _ fs.FileSystem = (*procFS)(nil)

// Open synthesizes the content of a proc file at open time.
func (pf *procFS) Open(p string, flags fs.OpenFlag) (fs.Node, error) {
	if flags.Writable() {
		return nil, fs.ErrReadOnly
	}
	content, err := pf.render(p)
	if err != nil {
		return nil, err
	}
	return &procNode{content: content}, nil
}

func (pf *procFS) render(p string) ([]byte, error) {
	comps := strings.Split(strings.Trim(path.Clean("/"+p), "/"), "/")
	switch {
	case len(comps) == 1 && comps[0] == "meminfo":
		o := pf.os
		o.mu.Lock()
		used := 0
		for _, d := range o.domains {
			if d.inUse {
				used++
			}
		}
		n := len(o.domains)
		o.mu.Unlock()
		return []byte(fmt.Sprintf("Domains: %d\nDomainsUsed: %d\nEPCPages: %d\n",
			n, used, pf.os.enclave.PagesAdded())), nil
	case len(comps) == 1 && comps[0] == "cpuinfo":
		return []byte("model name: OVM virtual hart\nfeatures: mpx sgx mmdsfi\n"), nil
	case len(comps) == 2 && comps[1] == "status":
		pid, err := strconv.Atoi(comps[0])
		if err != nil {
			return nil, fs.ErrNotExist
		}
		o := pf.os
		o.mu.Lock()
		proc, ok := o.procs[pid]
		if !ok {
			o.mu.Unlock()
			return nil, fs.ErrNotExist
		}
		// Render under the lock: exited and ppid mutate on teardown.
		state := "R (running)"
		if proc.exited {
			state = "Z (zombie)"
		}
		out := fmt.Sprintf("Name:\t%s\nPid:\t%d\nPPid:\t%d\nState:\t%s\nDomain:\t%d\nCycles:\t%d\n",
			proc.name, proc.pid, proc.ppid, state, proc.dom.ID, proc.cycles.Load())
		o.mu.Unlock()
		return []byte(out), nil
	}
	return nil, fs.ErrNotExist
}

// Mkdir is not supported on procfs.
func (pf *procFS) Mkdir(string) error { return fs.ErrReadOnly }

// Unlink is not supported on procfs.
func (pf *procFS) Unlink(string) error { return fs.ErrReadOnly }

// ReadDir lists /proc: meminfo, cpuinfo and one directory per process.
func (pf *procFS) ReadDir(p string) ([]fs.FileInfo, error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		out := []fs.FileInfo{{Name: "meminfo"}, {Name: "cpuinfo"}}
		pids := pf.os.Procs()
		sort.Ints(pids)
		for _, pid := range pids {
			out = append(out, fs.FileInfo{Name: strconv.Itoa(pid), IsDir: true})
		}
		return out, nil
	}
	if pid, err := strconv.Atoi(strings.Trim(clean, "/")); err == nil {
		pf.os.mu.Lock()
		_, ok := pf.os.procs[pid]
		pf.os.mu.Unlock()
		if ok {
			return []fs.FileInfo{{Name: "status"}}, nil
		}
	}
	return nil, fs.ErrNotExist
}

// Stat describes a proc path.
func (pf *procFS) Stat(p string) (fs.FileInfo, error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return fs.FileInfo{Name: "proc", IsDir: true}, nil
	}
	if content, err := pf.render(p); err == nil {
		return fs.FileInfo{Name: path.Base(clean), Size: int64(len(content))}, nil
	}
	if _, err := pf.ReadDir(p); err == nil {
		return fs.FileInfo{Name: path.Base(clean), IsDir: true}, nil
	}
	return fs.FileInfo{}, fs.ErrNotExist
}

type procNode struct {
	content []byte
}

func (n *procNode) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(n.content)) {
		return 0, nil
	}
	return copy(p, n.content[off:]), nil
}

func (n *procNode) WriteAt([]byte, int64) (int, error) { return 0, fs.ErrReadOnly }
func (n *procNode) Size() int64                        { return int64(len(n.content)) }
func (n *procNode) Close() error                       { return nil }
