package libos_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

func buildProg(t testing.TB, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bootSys(t testing.TB, out *bytes.Buffer) (*core.System, *core.Toolchain) {
	t.Helper()
	tc := core.NewToolchain()
	sys, err := core.BootSystem(core.SystemConfig{Stdout: out})
	if err != nil {
		t.Fatal(err)
	}
	return sys, tc
}

// helloProgram writes a message to stdout and exits with the given code.
func helloProgram(msg string, exitCode int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.String("msg", msg)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.WriteStr(b, 1, "msg", int64(len(msg)))
		ulib.Exit(b, exitCode)
	}
}

func TestHelloWorld(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, helloProgram("hello from a SIP\n", 7))
	if err := sys.Install(tc, "/bin/hello", "hello", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/hello", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 7 {
		t.Fatalf("exit status = %d, want 7", status)
	}
	if out.String() != "hello from a SIP\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestUnsignedBinaryRefused(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, helloProgram("evil\n", 0))
	bin, err := tc.CompileUnverified("evil", prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallBinary("/bin/evil", bin); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OS.Spawn("/bin/evil", nil, libos.SpawnOpt{}); err == nil {
		t.Fatal("loader must refuse unsigned binaries")
	}
}

func TestSpawnChildAndWait(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	child := buildProg(t, helloProgram("child says hi\n", 3))
	if err := sys.Install(tc, "/bin/child", "child", child); err != nil {
		t.Fatal(err)
	}

	parent := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/bin/child")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.SpawnPath(b, "path", 10, "", 0)
		b.MovRR(isa.R6, isa.R0) // child pid
		ulib.Wait4(b, isa.R6)
		ulib.ExitR(b, isa.R0) // exit with waited pid
	})
	if err := sys.Install(tc, "/bin/parent", "parent", parent); err != nil {
		t.Fatal(err)
	}

	p, err := sys.OS.Spawn("/bin/parent", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	status := p.Wait()
	if out.String() != "child says hi\n" {
		t.Fatalf("stdout = %q", out.String())
	}
	// The parent exits with the pid wait4 returned (child pid & 0xFF).
	if status == 0 || status > 255 {
		t.Fatalf("status = %d", status)
	}
}

func TestPipeBetweenSIPs(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	// Child reads from fd 0 and echoes to fd 1 uppercased by adding
	// nothing fancy — just copies.
	child := buildProg(t, func(b *asm.Builder) {
		b.Zero("buf", 64)
		b.Entry("_start")
		ulib.Prologue(b)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 64)
		ulib.Syscall(b, libos.SysRead) // read(0 is in R1? no: set R1)
		ulib.Exit(b, 0)
	})
	_ = child

	// Parent: pipe2, spawn child with fds inherited, write into the
	// pipe, child reads. For determinism, instead have the parent
	// write and read back through its own pipe (IPC plumbing), and
	// separately spawn a child that writes to inherited stdout.
	parent := buildProg(t, func(b *asm.Builder) {
		b.Zero("fds", 16)
		b.String("hello", "through the pipe")
		b.Zero("buf", 32)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Pipe2(b, "fds")
		// write(fds[1], hello, 16)
		b.LoadData(isa.R1, "fds")
		b.AddI(isa.R1, 0) // keep rfd in R6
		b.MovRR(isa.R6, isa.R1)
		b.LeaData(isa.R1, "fds")
		b.Load(isa.R1, isa.Mem(isa.R1, 8)) // wfd
		b.LeaData(isa.R2, "hello")
		b.MovRI(isa.R3, 16)
		ulib.Syscall(b, libos.SysWrite)
		// read(fds[0], buf, 16)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 16)
		ulib.Syscall(b, libos.SysRead)
		// write(1, buf, R0)
		b.MovRR(isa.R3, isa.R0)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/pipes", "pipes", parent); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/pipes", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "through the pipe" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestFileSyscalls(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/data/out.txt")
		b.String("dir", "/data")
		b.String("content", "persisted by a SIP")
		b.Zero("buf", 32)
		b.Entry("_start")
		ulib.Prologue(b)
		// mkdir /data
		b.LeaData(isa.R1, "dir")
		b.MovRI(isa.R2, 5)
		ulib.Syscall(b, libos.SysMkdir)
		// fd = open(path, O_RDWR|O_CREATE)
		ulib.OpenPath(b, "path", 13, libos.ORdWr|libos.OCreate)
		b.MovRR(isa.R6, isa.R0)
		// write(fd, content, 18)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "content")
		b.MovRI(isa.R3, 18)
		ulib.Syscall(b, libos.SysWrite)
		// lseek(fd, 0, SET)
		b.MovRR(isa.R1, isa.R6)
		b.MovRI(isa.R2, 0)
		b.MovRI(isa.R3, libos.SeekSet)
		ulib.Syscall(b, libos.SysLseek)
		// read(fd, buf, 18) and echo to stdout
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 18)
		ulib.Syscall(b, libos.SysRead)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 18)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Close(b, isa.R6)
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/fileio", "fileio", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/fileio", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "persisted by a SIP" {
		t.Fatalf("stdout = %q", out.String())
	}
	// The file is visible host-side through the LibOS (shared FS view).
	data, err := sys.ReadFile("/data/out.txt")
	if err != nil || string(data) != "persisted by a SIP" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
}

func TestSegfaultingSIPKilledOthersSurvive(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	// A SIP that corrupts a pointer and dies on the mem_guard.
	crasher := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.MovRI(isa.R1, 0x10000000) // LibOS reserve area
		b.MovRI(isa.R2, 0xBAD)
		b.Store(isa.Mem(isa.R1, 0), isa.R2)
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/crash", "crash", crasher); err != nil {
		t.Fatal(err)
	}
	ok := buildProg(t, helloProgram("survivor\n", 0))
	if err := sys.Install(tc, "/bin/ok", "ok", ok); err != nil {
		t.Fatal(err)
	}

	pc, err := sys.OS.Spawn("/bin/crash", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := pc.Wait(); status != 128+libos.SIGSEGV {
		t.Fatalf("crasher status = %d, want %d", status, 128+libos.SIGSEGV)
	}
	po, err := sys.OS.Spawn("/bin/ok", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := po.Wait(); status != 0 {
		t.Fatalf("survivor status = %d", status)
	}
	if out.String() != "survivor\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestDomainRecycling(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, helloProgram("x", 0))
	if err := sys.Install(tc, "/bin/x", "x", prog); err != nil {
		t.Fatal(err)
	}
	// Spawn far more processes than domains; each must get a clean
	// domain after recycling.
	for i := 0; i < 25; i++ {
		p, err := sys.OS.Spawn("/bin/x", nil, libos.SpawnOpt{})
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		if status := p.Wait(); status != 0 {
			t.Fatalf("spawn %d: status %d", i, status)
		}
	}
	if got := strings.Repeat("x", 25); out.String() != got {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestProcFS(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/proc/meminfo")
		b.Zero("buf", 128)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.OpenPath(b, "path", 13, libos.ORdOnly)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 128)
		ulib.Syscall(b, libos.SysRead)
		b.MovRR(isa.R3, isa.R0)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/proc", "proc", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/proc", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(out.String(), "Domains:") {
		t.Fatalf("meminfo = %q", out.String())
	}
}

func TestMmap(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		// addr = mmap(8192)
		b.MovRI(isa.R1, 8192)
		ulib.Syscall(b, libos.SysMmap)
		b.MovRR(isa.R6, isa.R0)
		// The mapping must read as zero, then accept stores.
		b.Load(isa.R2, isa.Mem(isa.R6, 0))
		b.CmpI(isa.R2, 0)
		b.Jne("fail")
		b.MovRI(isa.R2, 77)
		b.Store(isa.Mem(isa.R6, 4096), isa.R2)
		b.Load(isa.R3, isa.Mem(isa.R6, 4096))
		b.CmpI(isa.R3, 77)
		b.Jne("fail")
		ulib.Exit(b, 0)
		b.Label("fail")
		b.Nop()
		ulib.Exit(b, 1)
	})
	if err := sys.Install(tc, "/bin/mmap", "mmap", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/mmap", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
}

func TestArgvDelivery(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	// Echo argv[1] (length 5) to stdout.
	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.Load(isa.R2, isa.Mem(isa.R10, libos.AuxArgv+8)) // argv[1]
		b.MovRI(isa.R1, 1)
		b.MovRI(isa.R3, 5)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/echoarg", "echoarg", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/echoarg", []string{"howdy"}, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "howdy" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestConcurrentSIPs(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		// Busy loop then exit with pid.
		b.MovRI(isa.R7, 50000)
		b.Label("spin")
		b.SubI(isa.R7, 1)
		b.CmpI(isa.R7, 0)
		b.Jg("spin")
		ulib.Syscall(b, libos.SysGetpid)
		ulib.ExitR(b, isa.R0)
	})
	if err := sys.Install(tc, "/bin/spin", "spin", prog); err != nil {
		t.Fatal(err)
	}
	var procs []*libos.Proc
	for i := 0; i < 8; i++ {
		p, err := sys.OS.Spawn("/bin/spin", nil, libos.SpawnOpt{})
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		procs = append(procs, p)
	}
	seen := map[int]bool{}
	for _, p := range procs {
		st := p.Wait()
		if seen[st] {
			t.Fatalf("duplicate exit status (pid) %d", st)
		}
		seen[st] = true
	}
}

func TestKillSignal(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	spin := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.Label("forever")
		b.Jmp("forever")
	})
	if err := sys.Install(tc, "/bin/forever", "forever", spin); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/forever", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.Kill(p.PID(), libos.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 128+libos.SIGTERM {
		t.Fatalf("status = %d", status)
	}
}

func TestSpawnPropagatesStdout(t *testing.T) {
	// A dedicated stdout per top-level process.
	var global, mine bytes.Buffer
	sys, tc := bootSys(t, &global)
	defer sys.OS.Shutdown()

	prog := buildProg(t, helloProgram("to my writer", 0))
	if err := sys.Install(tc, "/bin/w", "w", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/w", nil, libos.SpawnOpt{Stdout: libos.NewWriterFile(&mine)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if mine.String() != "to my writer" {
		t.Fatalf("mine = %q", mine.String())
	}
	if global.Len() != 0 {
		t.Fatalf("global = %q", global.String())
	}
}

// TestRenameSyscall drives SysRename end to end from a SIP: same-dir
// rename, cross-dir rename, overwrite of an existing target, and the
// error paths (missing source → ENOENT, cross-mount → EXDEV).
func TestRenameSyscall(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	if err := sys.WriteFile("/w/orig", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteFile("/w/victim", []byte("to be replaced")); err != nil {
		t.Fatal(err)
	}
	sys.MkdirAll("/w2")

	prog := buildProg(t, func(b *asm.Builder) {
		b.String("orig", "/w/orig")
		b.String("mid", "/w/renamed")
		b.String("victim", "/w/victim")
		b.String("far", "/w2/final")
		b.String("missing", "/w/missing")
		b.String("dev", "/dev/null")
		b.Entry("_start")
		ulib.Prologue(b)
		// Same-dir rename must succeed (R0 == 0).
		ulib.RenamePath(b, "orig", 7, "mid", 10)
		b.CmpI(isa.R0, 0)
		b.Jne("fail1")
		// Overwrite an existing file.
		ulib.RenamePath(b, "mid", 10, "victim", 9)
		b.CmpI(isa.R0, 0)
		b.Jne("fail2")
		// Cross-dir rename.
		ulib.RenamePath(b, "victim", 9, "far", 9)
		b.CmpI(isa.R0, 0)
		b.Jne("fail3")
		// Missing source → -ENOENT.
		ulib.RenamePath(b, "missing", 8, "mid", 10)
		b.CmpI(isa.R0, -libos.ENOENT)
		b.Jne("fail4")
		// Cross-mount → -EXDEV.
		ulib.RenamePath(b, "far", 9, "dev", 9)
		b.CmpI(isa.R0, -libos.EXDEV)
		b.Jne("fail5")
		ulib.Exit(b, 0)
		b.Label("fail1")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("fail2")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("fail3")
		b.Nop()
		ulib.Exit(b, 3)
		b.Label("fail4")
		b.Nop()
		ulib.Exit(b, 4)
		b.Label("fail5")
		b.Nop()
		ulib.Exit(b, 5)
	})
	if err := sys.Install(tc, "/bin/mv", "mv", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/mv", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	// The moves are visible through the shared FS view.
	if data, err := sys.ReadFile("/w2/final"); err != nil || string(data) != "payload" {
		t.Fatalf("final = %q, %v", data, err)
	}
	if _, err := sys.OS.VFS().Stat("/w/orig"); err == nil {
		t.Fatal("/w/orig survived its rename")
	}
	if _, err := sys.OS.VFS().Stat("/w/victim"); err == nil {
		t.Fatal("/w/victim survived being overwritten")
	}
}
