package libos_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fs"
)

// waitFS polls the package-global fs counters until cond sees the delta
// it wants or the deadline passes.
func waitFS(t *testing.T, before fs.StatCounters, what string, cond func(fs.StatCounters) bool) fs.StatCounters {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		d := fs.Stats().Sub(before)
		if cond(d) {
			return d
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle scrubber never %s (delta %+v)", what, d)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIdleScrubberHealsRot boots a LibOS, lets the idle harts scrub the
// encrypted store in the background, rots two backing files on the host
// and checks the scrubber finds and repairs the damage without any
// foreground I/O asking for those blocks — then reads the data back to
// prove the repair preserved content.
func TestIdleScrubberHealsRot(t *testing.T) {
	// Counters are package-global: snapshot before boot so nothing the
	// background scrubber does can slip under the baseline.
	before := fs.Stats()

	var out bytes.Buffer
	sys, _ := bootSys(t, &out)
	defer sys.OS.Shutdown()

	// Commit some real data so scrubbing has committed blocks to walk.
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 8<<10)
	f, err := sys.OS.VFS().Open("/data", fs.OWrOnly|fs.OCreate|fs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := sys.OS.Sync(); err != nil {
		t.Fatal(err)
	}

	// The harts are idle now; the scrubber starts walking on its own.
	waitFS(t, before, "walked any blocks", func(d fs.StatCounters) bool {
		return d.ScrubbedBlocks > 0
	})

	// Rot two of the six backing files (within parity: m = 2) across the
	// file tails, where the freshly written /data block cells live — the
	// table region would be rewritten wholesale by the next Flush, which
	// would launder the damage before the scrubber could be credited with
	// it. The next scrub pass must spot the rot via the MAC layer and
	// rewrite the bad shards from parity.
	files := sys.OS.Store().BackingFiles()
	host := sys.OS.Host()
	rotted := 0
	for _, name := range files[1:3] {
		size := host.FileSize(name)
		rotted += host.CorruptFiles(name, size-8192, size, 64, 7)
	}
	if rotted == 0 {
		t.Fatal("fixture corrupted no bits")
	}

	// A host-side mutation is invisible to scrubGen, so nudge the store
	// out of its clean-pass latch the way a real workload would: write.
	poke, err := sys.OS.VFS().Open("/poke", fs.OWrOnly|fs.OCreate|fs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poke.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	poke.Close()
	if err := sys.OS.Sync(); err != nil {
		t.Fatal(err)
	}

	waitFS(t, before, "repaired the rot", func(d fs.StatCounters) bool {
		return d.RepairedShards > 0
	})

	// Content survived the damage and the repair.
	g, err := sys.OS.VFS().Open("/data", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data diverged after background repair")
	}
}
