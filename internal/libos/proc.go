package libos

import (
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Proc is one SIP: an SFI-isolated process occupying one MMDSFI domain and
// one SGX thread.
type Proc struct {
	os   *Occlum
	pid  int
	ppid int
	name string
	dom  *Domain
	cpu  *vm.CPU

	fdmu   sync.Mutex
	fds    map[int]*OpenFile
	nextFD int

	heapBase, heapEnd, heapPtr uint64
	tramp                      uint64

	// Signal state (guarded by os.mu).
	handlers  map[int]uint64
	pending   []int
	inHandler bool
	savedPC   uint64
	savedRegs [isa.NumRegs]uint64
	killed    bool
	killSig   int

	// Exit state (guarded by os.mu).
	exited bool
	status int
	done   chan struct{}

	// Cycles consumed (for diagnostics and /proc).
	cycles uint64
}

// PID returns the process ID.
func (p *Proc) PID() int { return p.pid }

// Cycles returns retired instruction count so far.
func (p *Proc) Cycles() uint64 { return p.cycles }

// SpawnOpt carries optional spawn parameters.
type SpawnOpt struct {
	// Parent, when set, is the spawning SIP; the child inherits its
	// open file table (sharing open file descriptions, as in §6).
	Parent *Proc
	// Stdin/Stdout/Stderr override fds 0-2 when Parent is nil.
	Stdin, Stdout, Stderr *OpenFile
}

// Spawn implements the spawn system call (§3.3): create a SIP in a free
// domain running the verified binary at path. Unlike fork, spawn shares
// no address space with the parent; unlike EIP spawn, it creates no
// enclave, performs no attestation, and copies no encrypted state.
func (o *Occlum) Spawn(path string, argv []string, opt SpawnOpt) (*Proc, error) {
	bin, err := o.loadBinary(path)
	if err != nil {
		return nil, err
	}
	dom, err := o.allocDomain()
	if err != nil {
		return nil, err
	}

	o.mu.Lock()
	if o.threads >= o.cfg.MaxThreads {
		o.mu.Unlock()
		o.freeDomain(dom)
		return nil, ErrNoThreads
	}
	o.threads++
	pid := o.nextPID
	o.nextPID++
	p := &Proc{
		os:       o,
		pid:      pid,
		name:     path,
		dom:      dom,
		fds:      make(map[int]*OpenFile),
		nextFD:   3,
		handlers: make(map[int]uint64),
		done:     make(chan struct{}),
	}
	if opt.Parent != nil {
		p.ppid = opt.Parent.pid
	}
	o.procs[pid] = p
	o.mu.Unlock()

	// Inherit or set up standard fds.
	if opt.Parent != nil {
		opt.Parent.fdmu.Lock()
		for fd, of := range opt.Parent.fds {
			of.ref()
			p.fds[fd] = of
			if fd >= p.nextFD {
				p.nextFD = fd + 1
			}
		}
		opt.Parent.fdmu.Unlock()
	} else {
		stdio := func(of *OpenFile) *OpenFile {
			if of != nil {
				of.ref()
				return of
			}
			return o.consoleFile()
		}
		p.fds[0] = stdio(opt.Stdin)
		p.fds[1] = stdio(opt.Stdout)
		p.fds[2] = stdio(opt.Stderr)
	}

	p.cpu = vm.New(o.enclave.Paged)
	if err := o.loadIntoDomain(dom, bin, append([]string{path}, argv...), p); err != nil {
		p.teardown(127)
		return nil, err
	}

	go p.run()
	return p, nil
}

// run is the SGX-thread loop of one SIP.
func (p *Proc) run() {
	for {
		if p.deliverPendingSignal() {
			return // killed
		}
		stop := p.cpu.Run(p.os.cfg.CycleSlice)
		p.cycles = p.cpu.Cycles
		switch stop.Reason {
		case vm.StopCycles:
			// Preemption point; loop to check signals.
		case vm.StopTrap:
			if exited := p.syscallEntry(); exited {
				return
			}
		case vm.StopException:
			// An AEX the LibOS turns into a fatal signal.
			sig := SIGSEGV
			switch stop.Exc {
			case vm.ExcBound:
				sig = SIGSEGV // MMDSFI guard violation
			case vm.ExcDivide:
				sig = SIGFPE
			case vm.ExcInvalid:
				sig = SIGILL
			}
			p.teardown(128 + sig)
			return
		case vm.StopHalt, vm.StopEExit:
			// Verified code cannot contain these; treat as fatal.
			p.teardown(128 + SIGILL)
			return
		}
	}
}

// syscallEntry is the LibOS entry path: sanity-check the return address,
// dispatch, and resume the SIP. Returns true if the process exited.
func (p *Proc) syscallEntry() bool {
	// Pop the return address pushed by the user's call to the
	// trampoline and ensure it targets a cfi_label of this SIP (§6).
	sp := p.cpu.Regs[isa.SP]
	retAddr, err := p.readUserU64(sp)
	if err != nil || !p.os.isDomainLabel(p.dom, retAddr) {
		p.teardown(128 + SIGSEGV)
		return true
	}
	p.cpu.Regs[isa.SP] = sp + 8

	no := p.cpu.Regs[isa.R0]
	a1, a2, a3, a4 := p.cpu.Regs[isa.R1], p.cpu.Regs[isa.R2], p.cpu.Regs[isa.R3], p.cpu.Regs[isa.R4]
	ret, exited := p.dispatch(no, a1, a2, a3, a4, p.cpu.Regs[isa.R5])
	if exited {
		return true
	}
	if ret == sigreturnSentinel {
		// sigreturn restored the full pre-signal context; do not
		// clobber it with the syscall return path.
		return false
	}
	p.cpu.Regs[isa.R0] = uint64(ret)
	p.cpu.PC = retAddr
	return false
}

// teardown releases everything the SIP held and publishes its exit
// status.
func (p *Proc) teardown(status int) {
	p.fdmu.Lock()
	for fd, of := range p.fds {
		of.unref()
		delete(p.fds, fd)
	}
	p.fdmu.Unlock()

	p.os.freeDomain(p.dom)

	o := p.os
	o.mu.Lock()
	p.exited = true
	p.status = status
	o.threads--
	close(p.done)
	o.procCond.Broadcast()
	o.mu.Unlock()
}

// Wait blocks until the process exits and returns its status. Unlike the
// in-LibOS wait4, Wait does not reap (the host-side caller may wait
// multiple times).
func (p *Proc) Wait() int {
	<-p.done
	return p.status
}

// wait4 implements the syscall: wait for a specific child (or any, when
// pid < 0), reap it, and return (pid, status).
func (p *Proc) wait4(pid int) (int, int, int) {
	o := p.os
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		found := false
		for cpid, c := range o.procs {
			if c.ppid != p.pid {
				continue
			}
			if pid >= 0 && cpid != pid {
				continue
			}
			found = true
			if c.exited {
				delete(o.procs, cpid)
				return cpid, c.status, 0
			}
		}
		if !found {
			return 0, 0, ECHILD
		}
		o.procCond.Wait()
	}
}

// Kill delivers a signal to pid from outside the enclave (host-side
// test/bench use) or from another SIP.
func (o *Occlum) Kill(pid, sig int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.procs[pid]
	if !ok || p.exited {
		return fmt.Errorf("libos: kill: no process %d", pid)
	}
	p.pending = append(p.pending, sig)
	if sig == SIGKILL {
		p.killed, p.killSig = true, sig
	}
	return nil
}

// deliverPendingSignal processes one pending signal at a preemption
// point. Returns true when the process was terminated.
func (p *Proc) deliverPendingSignal() bool {
	o := p.os
	o.mu.Lock()
	if len(p.pending) == 0 {
		o.mu.Unlock()
		return false
	}
	sig := p.pending[0]
	p.pending = p.pending[1:]
	handler, hasHandler := p.handlers[sig]
	inHandler := p.inHandler
	if hasHandler && !inHandler && sig != SIGKILL {
		p.inHandler = true
		o.mu.Unlock()
		// Push context and run the handler (its address was
		// validated as a domain cfi_label at sigaction time).
		p.savedPC = p.cpu.PC
		p.savedRegs = p.cpu.Regs
		p.cpu.PC = handler
		p.cpu.Regs[isa.R1] = uint64(sig)
		return false
	}
	o.mu.Unlock()
	switch sig {
	case SIGKILL, SIGTERM, SIGSEGV, SIGILL, SIGFPE, SIGUSR1:
		p.teardown(128 + sig)
		return true
	}
	return false // default-ignored signal
}

// Procs returns a snapshot of live process IDs (for /proc and tests).
func (o *Occlum) Procs() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []int
	for pid, p := range o.procs {
		if !p.exited {
			out = append(out, pid)
		}
	}
	return out
}
