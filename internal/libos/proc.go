package libos

import (
	"fmt"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/sysdispatch"
	"repro/internal/vm"
)

// Proc is one SIP: an SFI-isolated process occupying one MMDSFI domain.
//
// Under the M:N scheduler a SIP no longer owns a goroutine (nor, in the
// model, an SGX TCS) for its lifetime: it is a resumable coroutine
// stepped by the hart pool. Everything the CPU needs to continue — PC,
// registers, flags, bounds, and a possibly-in-flight blocked syscall —
// lives in this struct, so a hart can drop the SIP at any quantum
// boundary and any hart can pick it up later.
type Proc struct {
	os   *Occlum
	pid  int
	ppid int // guarded by os.mu after spawn (reparenting)
	name string
	dom  *Domain
	cpu  *vm.CPU
	task *sched.G

	fds *sysdispatch.FDTable

	heapBase, heapEnd, heapPtr uint64
	tramp                      uint64

	// Signal state (guarded by os.mu).
	handlers  map[int]uint64
	pending   []int
	inHandler bool
	savedPC   uint64
	savedRegs [isa.NumRegs]uint64

	// blocked is the parked syscall awaiting its wakeup, nil while the
	// SIP runs user code. Owned by the hart currently stepping the SIP
	// (only one ever does); the waker side never touches it — it only
	// flips flags inside and calls Unpark.
	blocked *blockedSys
	// cursys is the syscall record being dispatched right now, so
	// handlers can persist progress and registrations across parks.
	cursys *blockedSys
	// sysGen numbers syscall records (hart-owned, no atomics needed);
	// liveGen publishes the generation of the record currently being
	// dispatched or parked, and 0 between syscalls. Timer-wheel wake
	// callbacks compare their record's gen against liveGen before
	// unparking, so a timeout armed by an already-completed syscall can
	// never wake-steal the SIP out of a later park (see timerWake).
	sysGen  uint64
	liveGen atomic.Uint64

	// Exit state (guarded by os.mu).
	exited bool
	status int
	done   chan struct{}

	// Cycles consumed (for diagnostics and /proc; read concurrently).
	cycles atomic.Uint64
}

// blockedSys is the continuation of a parked syscall: the original trap
// arguments plus whatever the handler needs to resume where it left off.
// Parked syscalls are re-dispatched from scratch on every wakeup, so
// handlers must be retry-safe; prog and woken are the two pieces of
// state that make pipe writes and futex waits idempotent across retries.
type blockedSys struct {
	no      uint64
	a       [5]uint64
	retAddr uint64
	// gen is this record's generation (Proc.sysGen at entry). Wheel
	// timeout callbacks check it against Proc.liveGen so a stale timer
	// — one whose cancel raced its fire — cannot unpark a SIP that
	// already re-parked in a later syscall.
	gen uint64
	// prog counts bytes already transferred (pipe writes park midway
	// without re-sending what the reader already consumed).
	prog int64
	// woken latches a futex wake: the wake consumed our queue slot, so
	// the retry must return 0 instead of re-checking the futex word.
	// Written by the waker, read by the hart; ordered by the
	// unpark/park protocol.
	woken atomic.Bool
	// cancel deregisters from the wait queue (futex registrations must
	// not outlive the syscall — a stale one would swallow a wake meant
	// for a real waiter). Called on any completion; wakers make it a
	// no-op for consumed registrations.
	cancel func()
}

// PID returns the process ID.
func (p *Proc) PID() int { return p.pid }

// PPID returns the parent process ID (0 after orphaning).
func (p *Proc) PPID() int {
	p.os.mu.Lock()
	defer p.os.mu.Unlock()
	return p.ppid
}

// Cycles returns retired instruction count so far.
func (p *Proc) Cycles() uint64 { return p.cycles.Load() }

// ReadUser implements sysdispatch.Kernel over the domain's data region.
func (p *Proc) ReadUser(addr, n uint64) ([]byte, error) { return p.readUserBytes(addr, n) }

// WriteUser implements sysdispatch.Kernel.
func (p *Proc) WriteUser(addr uint64, b []byte) error { return p.writeUserBytes(addr, b) }

// FDs implements sysdispatch.Kernel.
func (p *Proc) FDs() *sysdispatch.FDTable { return p.fds }

// RequestPreempt implements sched.Preempter: the scheduler asks a
// CPU-bound SIP to yield at the next block boundary when runnable work
// piles up behind it.
func (p *Proc) RequestPreempt() { p.cpu.RequestPreempt() }

// unpark makes the SIP runnable again; resource wakeup callbacks close
// over this.
func (p *Proc) unpark() { p.task.Unpark() }

// SpawnOpt carries optional spawn parameters.
type SpawnOpt struct {
	// Parent, when set, is the spawning SIP; the child inherits its
	// open file table (sharing open file descriptions, as in §6).
	Parent *Proc
	// Stdin/Stdout/Stderr override fds 0-2 when Parent is nil.
	Stdin, Stdout, Stderr *OpenFile
}

// Spawn implements the spawn system call (§3.3): create a SIP in a free
// domain running the verified binary at path. Unlike fork, spawn shares
// no address space with the parent; unlike EIP spawn, it creates no
// enclave, performs no attestation, and copies no encrypted state.
//
// Concurrency is bounded by domains only: the SIP is a scheduler task,
// not a dedicated SGX thread, so far more SIPs than TCS entries
// (Config.NumThreads harts) can be live at once — the point of the M:N
// refactor.
func (o *Occlum) Spawn(path string, argv []string, opt SpawnOpt) (*Proc, error) {
	bin, err := o.loadBinary(path)
	if err != nil {
		return nil, err
	}
	dom, err := o.allocDomain()
	if err != nil {
		return nil, err
	}

	o.mu.Lock()
	pid := o.nextPID
	o.nextPID++
	p := &Proc{
		os:       o,
		pid:      pid,
		name:     path,
		dom:      dom,
		cpu:      vm.New(o.enclave.Paged),
		fds:      sysdispatch.NewFDTable(),
		handlers: make(map[int]uint64),
		done:     make(chan struct{}),
	}
	p.task = o.sched.Prepare(p)
	if opt.Parent != nil {
		p.ppid = opt.Parent.pid
	}
	o.procs[pid] = p
	o.mu.Unlock()

	// Inherit or set up standard fds.
	if opt.Parent != nil {
		p.fds.InheritFrom(opt.Parent.fds)
	} else {
		stdio := func(of *OpenFile) *OpenFile {
			if of != nil {
				of.ref()
				return of
			}
			return o.consoleFile()
		}
		p.fds.Set(0, stdio(opt.Stdin))
		p.fds.Set(1, stdio(opt.Stdout))
		p.fds.Set(2, stdio(opt.Stderr))
	}

	if err := o.loadIntoDomain(dom, bin, append([]string{path}, argv...), p); err != nil {
		p.teardown(127)
		return nil, err
	}

	o.sched.Start(p.task)
	return p, nil
}

// stepResult says how one syscall dispatch left the SIP.
type stepResult uint8

const (
	sysResume stepResult = iota // continue executing user code
	sysExited                   // the SIP tore down
	sysParked                   // the SIP parked; re-dispatch on unpark
	sysYield                    // end the quantum (sched_yield)
)

// Step implements sched.Task: run the SIP for one scheduling quantum
// (up to CycleSlice retired instructions), handling however many
// syscalls occur within it. It returns Park when a blocking syscall
// registered a waiter, releasing the hart to other SIPs — the core of
// the M:N model.
func (p *Proc) Step() sched.Status {
	if cur := p.blocked; cur != nil {
		// Parked syscall: let fatal signals terminate a blocked SIP
		// (handler-signals wait until the syscall completes, as they
		// did when a blocked syscall held its goroutine), then retry.
		if p.fatalSignalWhileBlocked() {
			return sched.Done
		}
		p.blocked = nil
		switch p.dispatch(cur) {
		case sysExited:
			return sched.Done
		case sysParked:
			return sched.Park
		case sysYield:
			return sched.Yield
		}
	}

	deadline := p.cpu.Cycles + p.os.cfg.CycleSlice
	for {
		if p.deliverPendingSignal() {
			return sched.Done
		}
		if p.cpu.Cycles >= deadline {
			return sched.Yield
		}
		stop := p.cpu.Run(deadline - p.cpu.Cycles)
		p.cycles.Store(p.cpu.Cycles)
		switch stop.Reason {
		case vm.StopCycles:
			// Quantum exhausted; requeue so other SIPs get the hart.
			return sched.Yield
		case vm.StopPreempt:
			// Asynchronous preemption honored at a block boundary —
			// requeue; the pending signal (or the queued work that
			// requested the preemption) is serviced on the next Step.
			p.os.sched.Stats().Preempts.Add(1)
			return sched.Yield
		case vm.StopTrap:
			switch p.syscallEntry() {
			case sysExited:
				return sched.Done
			case sysParked:
				return sched.Park
			case sysYield:
				return sched.Yield
			}
			// sysResume: keep running within the same quantum.
		case vm.StopException:
			// An AEX the LibOS turns into a fatal signal.
			sig := SIGSEGV
			switch stop.Exc {
			case vm.ExcBound:
				sig = SIGSEGV // MMDSFI guard violation
			case vm.ExcDivide:
				sig = SIGFPE
			case vm.ExcInvalid:
				sig = SIGILL
			}
			p.teardown(128 + sig)
			return sched.Done
		case vm.StopHalt, vm.StopEExit:
			// Verified code cannot contain these; treat as fatal.
			p.teardown(128 + SIGILL)
			return sched.Done
		}
	}
}

// syscallEntry is the LibOS entry path: sanity-check the return address,
// build the syscall record, and dispatch.
func (p *Proc) syscallEntry() stepResult {
	// Pop the return address pushed by the user's call to the
	// trampoline and ensure it targets a cfi_label of this SIP (§6).
	sp := p.cpu.Regs[isa.SP]
	retAddr, err := p.readUserU64(sp)
	if err != nil || !p.os.isDomainLabel(p.dom, retAddr) {
		p.teardown(128 + SIGSEGV)
		return sysExited
	}
	p.cpu.Regs[isa.SP] = sp + 8

	p.sysGen++
	cur := &blockedSys{
		no: p.cpu.Regs[isa.R0],
		a: [5]uint64{
			p.cpu.Regs[isa.R1], p.cpu.Regs[isa.R2], p.cpu.Regs[isa.R3],
			p.cpu.Regs[isa.R4], p.cpu.Regs[isa.R5],
		},
		retAddr: retAddr,
		gen:     p.sysGen,
	}
	return p.dispatch(cur)
}

// dispatch runs one LibOS system call — just a function call within the
// enclave, never an enclave transition (the core performance argument of
// SIPs) — through the shared dispatch table, and applies the return
// protocol: R0 gets the result, PC the validated return address.
func (p *Proc) dispatch(cur *blockedSys) stepResult {
	p.cursys = cur
	p.liveGen.Store(cur.gen)
	res := sysTable.Dispatch(p, cur.no, &cur.a)
	p.cursys = nil
	if res.Exited {
		return sysExited
	}
	if res.Parked {
		p.blocked = cur
		return sysParked
	}
	// The record retires: stale-timer wakes for it are now suppressed
	// (liveGen no longer matches), closing the fire-vs-cancel race.
	p.liveGen.Store(0)
	if cur.cancel != nil {
		// The syscall is done; a wait-queue registration that was not
		// consumed by a wake must not linger.
		cur.cancel()
		cur.cancel = nil
	}
	if !res.NoWriteback {
		p.cpu.Regs[isa.R0] = uint64(res.Ret)
		p.cpu.PC = cur.retAddr
	}
	if res.Yielded {
		return sysYield
	}
	return sysResume
}

// teardown releases everything the SIP held and publishes its exit
// status.
func (p *Proc) teardown(status int) {
	if p.blocked != nil && p.blocked.cancel != nil {
		// Deregister the parked syscall's waiter so no future wake is
		// wasted on a dead SIP.
		p.blocked.cancel()
		p.blocked = nil
	}
	p.fds.CloseAll()
	p.os.freeDomain(p.dom)

	o := p.os
	o.mu.Lock()
	p.exited = true
	p.status = status
	// Children: reap zombies, orphan the living (they auto-reap when
	// they exit — no one is left to wait4 them).
	for cpid, c := range o.procs {
		if c.ppid != p.pid || c == p {
			continue
		}
		if c.exited {
			delete(o.procs, cpid)
		} else {
			c.ppid = 0
		}
	}
	// A SIP with no parent to reap it does not linger as a zombie.
	if parent, ok := o.procs[p.ppid]; p.ppid == 0 || !ok || parent.exited {
		delete(o.procs, p.pid)
	}
	// Wake the parent if it is parked in wait4, and drop our own
	// wait4 registrations.
	wakers := o.waitWakers[p.ppid]
	delete(o.waitWakers, p.ppid)
	delete(o.waitWakers, p.pid)
	close(p.done)
	o.mu.Unlock()
	for _, w := range wakers {
		w()
	}
}

// Wait blocks until the process exits and returns its status. Unlike the
// in-LibOS wait4, Wait does not reap (the host-side caller may wait
// multiple times).
func (p *Proc) Wait() int {
	<-p.done
	return p.status
}

// sysWait4 is the reaping primitive behind wait4: find a matching child
// and reap it, report ECHILD when none can ever match, or park until a
// child exits. Parking registers a waker keyed by our pid; every child
// teardown broadcasts to it, and the retry re-scans (wait4 semantics
// tolerate the spurious wakeups this allows).
func (p *Proc) sysWait4(pid int) (cpid, status int, errno int64, parked bool) {
	o := p.os
	o.mu.Lock()
	defer o.mu.Unlock()
	found := false
	for c0pid, c := range o.procs {
		if c.ppid != p.pid || c == p {
			continue
		}
		if pid >= 0 && c0pid != pid {
			continue
		}
		found = true
		if c.exited {
			delete(o.procs, c0pid)
			return c0pid, c.status, 0, false
		}
	}
	if !found {
		return 0, 0, ECHILD, false
	}
	o.waitWakers[p.pid] = append(o.waitWakers[p.pid], p.unpark)
	return 0, 0, 0, true
}

// Kill delivers a signal to pid from outside the enclave (host-side
// test/bench use) or from another SIP. Delivery is prompt: the preempt
// flag stops a running SIP at its next block boundary, and an unpark
// wakes a parked one, instead of waiting out the CycleSlice as the
// goroutine-per-SIP model did.
func (o *Occlum) Kill(pid, sig int) error {
	o.mu.Lock()
	p, ok := o.procs[pid]
	if !ok || p.exited {
		o.mu.Unlock()
		return fmt.Errorf("libos: kill: no process %d", pid)
	}
	p.pending = append(p.pending, sig)
	task := p.task
	o.mu.Unlock()
	p.cpu.RequestPreempt()
	task.Unpark()
	return nil
}

// deliverPendingSignal processes one pending signal at a preemption
// point. Returns true when the process was terminated.
func (p *Proc) deliverPendingSignal() bool {
	o := p.os
	o.mu.Lock()
	if len(p.pending) == 0 {
		o.mu.Unlock()
		return false
	}
	sig := p.pending[0]
	p.pending = p.pending[1:]
	handler, hasHandler := p.handlers[sig]
	inHandler := p.inHandler
	if hasHandler && !inHandler && sig != SIGKILL {
		p.inHandler = true
		o.mu.Unlock()
		// Push context and run the handler (its address was
		// validated as a domain cfi_label at sigaction time).
		p.savedPC = p.cpu.PC
		p.savedRegs = p.cpu.Regs
		p.cpu.PC = handler
		p.cpu.Regs[isa.R1] = uint64(sig)
		return false
	}
	o.mu.Unlock()
	if fatalByDefault(sig) {
		p.teardown(128 + sig)
		return true
	}
	return false // default-ignored signal
}

// fatalSignalWhileBlocked scans the pending queue of a SIP parked in a
// syscall: default-fatal signals terminate it immediately (cancelling
// the parked waiter); handler-signals stay queued until the syscall
// completes, matching the old behavior of a goroutine blocked in a
// syscall. Returns true when the SIP was terminated.
func (p *Proc) fatalSignalWhileBlocked() bool {
	o := p.os
	o.mu.Lock()
	kept := p.pending[:0]
	fatal := 0
	hasFatal := false
	for _, sig := range p.pending {
		_, hasHandler := p.handlers[sig]
		if (!hasHandler || sig == SIGKILL) && fatalByDefault(sig) {
			if !hasFatal {
				fatal, hasFatal = sig, true
			}
			continue
		}
		if !hasHandler && !fatalByDefault(sig) {
			continue // default-ignored: drop
		}
		kept = append(kept, sig)
	}
	p.pending = kept
	o.mu.Unlock()
	if hasFatal {
		p.teardown(128 + fatal)
		return true
	}
	return false
}

// fatalByDefault reports whether sig terminates a SIP that installed no
// handler.
func fatalByDefault(sig int) bool {
	switch sig {
	case SIGKILL, SIGTERM, SIGSEGV, SIGILL, SIGFPE, SIGUSR1:
		return true
	}
	return false
}

// Procs returns a snapshot of live process IDs (for /proc and tests).
func (o *Occlum) Procs() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []int
	for pid, p := range o.procs {
		if !p.exited {
			out = append(out, pid)
		}
	}
	return out
}
