// Package libos implements the Occlum LibOS (§6 of the paper): a single
// library operating system instance that hosts many SFI-Isolated
// Processes (SIPs) inside one enclave.
//
// The LibOS owns:
//
//   - the enclave and the preallocated MMDSFI domains (SGX 1.0 forbids
//     page changes after EINIT, so all domain pages are EADDed up front);
//   - the ELF loader with its four extra duties (signature check,
//     cfi_label domain-ID rewriting, trampoline injection, MPX bound
//     initialization);
//   - the syscall interface (spawn instead of fork, pipes and signals as
//     shared in-LibOS structures, futex via the host), dispatched through
//     the shared table of internal/sysdispatch;
//   - the virtual filesystem: a writable encrypted root, /dev and /proc;
//   - the M:N scheduler (internal/sched): a fixed pool of harts — one
//     per configured SGX TCS — multiplexes every SIP, so many more SIPs
//     than TCS entries can be live, and a SIP blocked in a syscall parks
//     instead of holding a hardware thread hostage.
package libos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/mem"
	"repro/internal/oelf"
	"repro/internal/sched"
	"repro/internal/sgx"
	"repro/internal/timerwheel"
)

// Config sizes the enclave and its domains.
type Config struct {
	// NumDomains is the number of preallocated MMDSFI domains (the
	// maximum number of concurrent SIPs).
	NumDomains int
	// DomainCodeSize is the code-region size per domain (bytes,
	// page-multiple).
	DomainCodeSize uint64
	// DomainDataSize is the data-region size per domain.
	DomainDataSize uint64
	// StackSize is the stack carved from the top of each data region.
	StackSize uint64
	// LibOSReserve is enclave memory reserved for the LibOS itself
	// (contributes to enclave measurement/creation cost).
	LibOSReserve uint64
	// MaxThreads is the number of SGX TCS — the size of the hart pool
	// the M:N scheduler runs SIPs on. It no longer caps concurrent
	// SIPs (NumDomains does): a blocked or runnable-but-descheduled
	// SIP holds no TCS.
	MaxThreads int
	// FSImage is the host file holding the encrypted filesystem.
	FSImage string
	// FSKey unseals the filesystem.
	FSKey fs.Key
	// FSBlocks sizes a newly created filesystem image.
	FSBlocks int
	// FSDataShards and FSParityShards select the Reed-Solomon stripe
	// geometry (k data + m parity shards per block) of a newly created
	// filesystem image. Zero keeps the built-in 4+2 default. The
	// geometry is a creation-time property recorded in the store
	// superblock; opening an existing image ignores these fields
	// (occlum-fs info shows what an image was formatted with).
	FSDataShards, FSParityShards int
	// BaseImage optionally names the host file holding a packed
	// read-only image (cmd/occlum-image). When set, the root mount
	// becomes a union: the integrity-verified image below, the writable
	// encrypted filesystem above (copy-up on first write).
	BaseImage string
	// BaseImageRoot is the pinned Merkle root hash of BaseImage — the
	// only trusted input of the image layer (in a real deployment it
	// would be part of the enclave measurement).
	BaseImageRoot [32]byte
	// Stdout receives /dev/console output (nil discards).
	Stdout io.Writer
	// VerifierKey is the signing key the loader trusts.
	VerifierKey oelf.SigningKey
	// CycleSlice is the interpreter cycle budget between LibOS
	// preemption points (signal checks).
	CycleSlice uint64
	// IdleTimeout, when positive, reaps accepted sockets that have seen
	// no I/O for this long: each accept arms a timer-wheel deadline
	// that lazily re-arms while the connection stays active and closes
	// the host connection once it idles out — the slowloris defense.
	IdleTimeout time.Duration
	// ShedThreshold, when positive, is the run-queue depth past which
	// the accept path sheds inbound connections (accept-and-close)
	// instead of admitting work the harts cannot keep up with.
	ShedThreshold int
}

// DefaultConfig returns a workable configuration: 8 domains of 1 MiB code
// + 4 MiB data.
func DefaultConfig() Config {
	return Config{
		NumDomains:     8,
		DomainCodeSize: 1 << 20,
		DomainDataSize: 4 << 20,
		StackSize:      256 << 10,
		LibOSReserve:   1 << 20,
		MaxThreads:     32,
		FSImage:        "occlum.img",
		FSKey:          fs.KeyFromString("occlum-default"),
		FSBlocks:       16384,
		VerifierKey:    oelf.NewSigningKey("occlum"),
		CycleSlice:     1 << 20,
	}
}

// Domain is one preallocated MMDSFI domain: [C][G1][D][G2].
type Domain struct {
	ID       uint32
	CodeBase uint64 // start of the code region C
	CodeSize uint64
	DataBase uint64 // start of the data region D
	DataSize uint64
	inUse    bool
}

// Occlum is one LibOS instance inside one enclave.
type Occlum struct {
	cfg      Config
	platform *sgx.Platform
	enclave  *sgx.Enclave
	host     *hostos.Host
	sched    *sched.Scheduler
	// wheels are the per-hart hierarchical timer wheels: every guest
	// deadline (poll/epoll timeouts, idle reaping) is an O(1) wheel
	// entry, and each wheel keeps at most ONE host timer outstanding —
	// so host timer pressure is bounded by MaxThreads, not by the
	// number of parked connections (the c100k property).
	wheels []*timerwheel.Wheel

	mu      sync.Mutex
	domains []*Domain
	procs   map[int]*Proc
	nextPID int
	// waitWakers holds the unpark callbacks of SIPs parked in wait4,
	// keyed by the waiting (parent) pid; every child teardown
	// broadcasts to its parent's entry.
	waitWakers map[int][]func()

	vfs   *fs.VFS
	encfs *fs.EncFS
	store *fs.BlockStore

	// BootStats records the cost of enclave creation.
	BootStats BootStats
}

// BootStats reports what enclave creation cost.
type BootStats struct {
	PagesAdded  uint64
	Measurement sgx.Measurement
}

// Boot errors.
var (
	// ErrNoDomains reports domain exhaustion at spawn.
	ErrNoDomains = errors.New("libos: no free MMDSFI domains")
	// ErrNoThreads reported SGX TCS exhaustion at spawn under the old
	// SIP-per-thread model. The M:N scheduler removed that limit (SIP
	// concurrency is bounded by domains only); the variable remains so
	// existing callers' errors.Is checks keep compiling.
	ErrNoThreads = errors.New("libos: no free SGX threads")
	// ErrTooBig reports a binary that does not fit a domain.
	ErrTooBig = errors.New("libos: binary does not fit in a domain")
	// ErrNotSigned reports a binary without a valid verifier signature.
	ErrNotSigned = errors.New("libos: binary not signed by the verifier")
)

// enclaveBase is where the enclave's ELRANGE starts.
const enclaveBase = 0x10000000

// Boot creates the enclave on platform, preallocates all domains (EADD +
// EEXTEND over every page — the real cryptographic cost of enclave
// creation), initializes it, and mounts the filesystems. A fresh
// encrypted image is created if none exists in host storage.
func Boot(platform *sgx.Platform, host *hostos.Host, cfg Config) (*Occlum, error) {
	if cfg.NumDomains <= 0 || cfg.MaxThreads <= 0 {
		return nil, fmt.Errorf("libos: bad config")
	}
	g := uint64(mem.PageSize) // guard size
	domSpan := cfg.DomainCodeSize + g + cfg.DomainDataSize + g
	total := cfg.LibOSReserve + g + uint64(cfg.NumDomains)*domSpan

	e, err := platform.ECreate(enclaveBase, total, cfg.MaxThreads)
	if err != nil {
		return nil, err
	}
	// LibOS reserve pages (RW; the LibOS "code" is this Go package).
	for off := uint64(0); off < cfg.LibOSReserve; off += mem.PageSize {
		if err := e.EAdd(enclaveBase+off, nil, mem.PermRW); err != nil {
			e.Destroy()
			return nil, err
		}
	}
	o := &Occlum{
		cfg:        cfg,
		platform:   platform,
		enclave:    e,
		host:       host,
		procs:      make(map[int]*Proc),
		nextPID:    1,
		waitWakers: make(map[int][]func()),
	}

	// Preallocate domains: code pages RWX (the loader rewrites them;
	// the common SGX-LibOS pitfall of §7), data pages RW, guards
	// unmapped.
	base := enclaveBase + cfg.LibOSReserve + g
	for i := 0; i < cfg.NumDomains; i++ {
		d := &Domain{
			ID:       uint32(i + 1),
			CodeBase: base,
			CodeSize: cfg.DomainCodeSize,
			DataBase: base + cfg.DomainCodeSize + g,
			DataSize: cfg.DomainDataSize,
		}
		for off := uint64(0); off < d.CodeSize; off += mem.PageSize {
			if err := e.EAdd(d.CodeBase+off, nil, mem.PermRWX); err != nil {
				e.Destroy()
				return nil, err
			}
		}
		for off := uint64(0); off < d.DataSize; off += mem.PageSize {
			if err := e.EAdd(d.DataBase+off, nil, mem.PermRW); err != nil {
				e.Destroy()
				return nil, err
			}
		}
		o.domains = append(o.domains, d)
		base += domSpan
	}
	meas, err := e.EInit()
	if err != nil {
		e.Destroy()
		return nil, err
	}
	o.BootStats = BootStats{PagesAdded: e.PagesAdded(), Measurement: meas}

	if err := o.mountFilesystems(); err != nil {
		e.Destroy()
		return nil, err
	}
	// The hart pool starts last, once boot can no longer fail: one hart
	// per TCS, multiplexing every SIP this enclave will ever run.
	o.sched = sched.New(cfg.MaxThreads)
	// One driven timer wheel per hart, each backed by a single host
	// alarm (host.Timer); SIPs hash to a wheel by pid so deadline churn
	// spreads across the per-wheel locks.
	for i := 0; i < o.sched.NumHarts(); i++ {
		o.wheels = append(o.wheels, timerwheel.New(wheelTick, host.Timer))
	}
	registerWheels(o.wheels)
	// Idle harts scrub the encrypted store in the background: each hook
	// call verifies (and, where parity allows, repairs) a bounded window
	// of stripes, so latent host bit-rot is found while the enclave still
	// has redundancy to heal it — not at the next cold open. The hook
	// reports false once a full pass has seen no new writes, letting the
	// pool quiesce until the store is mutated again.
	o.sched.SetIdle(func() bool {
		worked, err := o.store.ScrubStep(scrubWindow)
		return worked && err == nil
	})
	return o, nil
}

// scrubWindow is how many blocks one idle-hook call scrubs — small
// enough that a freshly enqueued SIP waits at most one window behind
// background verification.
const scrubWindow = 32

// wheelTick is the timer-wheel resolution. 1ms matches poll(2)'s
// millisecond timeout ABI, so no guest deadline loses precision.
const wheelTick = time.Millisecond

// wheelFor picks the timer wheel owning a SIP's deadlines. The
// fibonacci multiply spreads consecutive pids across wheels.
func (o *Occlum) wheelFor(pid int) *timerwheel.Wheel {
	return o.wheels[(uint64(pid)*0x9e3779b97f4a7c15>>33)%uint64(len(o.wheels))]
}

// Wheels exposes the per-hart timer wheels (tests assert the ≤1 host
// timer per hart bound through them).
func (o *Occlum) Wheels() []*timerwheel.Wheel { return o.wheels }

// WheelStats sums activity across this LibOS's wheels.
func (o *Occlum) WheelStats() timerwheel.Stats {
	var t timerwheel.Stats
	for _, w := range o.wheels {
		s := w.Stats()
		t.Arms += s.Arms
		t.Fires += s.Fires
		t.Cancels += s.Cancels
		t.Cascades += s.Cascades
	}
	return t
}

func (o *Occlum) mountFilesystems() error {
	var store *fs.BlockStore
	var err error
	if !fs.StoreExists(o.host, o.cfg.FSImage) {
		k, m := o.cfg.FSDataShards, o.cfg.FSParityShards
		if k == 0 && m == 0 {
			store, err = fs.CreateStore(o.host, o.cfg.FSImage, o.cfg.FSKey, o.cfg.FSBlocks)
		} else {
			store, err = fs.CreateStoreGeom(o.host, o.cfg.FSImage, o.cfg.FSKey, o.cfg.FSBlocks, k, m)
		}
		if err != nil {
			return err
		}
		if err := fs.Mkfs(store); err != nil {
			return err
		}
	} else {
		store, err = fs.OpenStore(o.host, o.cfg.FSImage, o.cfg.FSKey)
		if err != nil {
			return err
		}
	}
	o.store = store
	o.encfs, err = fs.Mount(store)
	if err != nil {
		return err
	}
	root := fs.FileSystem(o.encfs)
	if o.cfg.BaseImage != "" {
		img, err := fs.MountImage(o.host, o.cfg.BaseImage, o.cfg.BaseImageRoot)
		if err != nil {
			return err
		}
		root = fs.NewUnionFS(o.encfs, img)
	}
	o.vfs = fs.NewVFS()
	o.vfs.Mount("/", root)
	o.vfs.Mount("/dev", fs.NewDevFS(o.cfg.Stdout))
	o.vfs.Mount("/proc", newProcFS(o))
	return nil
}

// VFS exposes the LibOS filesystem (for image preparation and tests).
func (o *Occlum) VFS() *fs.VFS { return o.vfs }

// Host returns the untrusted host beneath this LibOS.
func (o *Occlum) Host() *hostos.Host { return o.host }

// Store exposes the encrypted block store (for scrub/repair tooling and
// tests).
func (o *Occlum) Store() *fs.BlockStore { return o.store }

// Sync flushes the encrypted filesystem to host storage and kicks the
// scheduler so the idle scrubber re-verifies the mutated store even when
// the mutation came from a host thread (no hart would wake otherwise).
func (o *Occlum) Sync() error {
	err := o.encfs.Sync()
	o.sched.Kick()
	return err
}

// Shutdown flushes state, stops the hart pool and releases the enclave.
// Processes should have exited.
func (o *Occlum) Shutdown() error {
	err := o.encfs.Sync()
	retireWheels(o.wheels)
	o.sched.Stop()
	o.enclave.Destroy()
	return err
}

// Sched exposes the hart-pool scheduler (stats and tests).
func (o *Occlum) Sched() *sched.Scheduler { return o.sched }

// InstallBinary writes a marshaled binary into the LibOS filesystem at
// path — the "occlum build" step that prepares an image.
func (o *Occlum) InstallBinary(path string, bin *oelf.Binary) error {
	f, err := o.vfs.Open(path, fs.OWrOnly|fs.OCreate|fs.OTrunc)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(bin.Marshal(), 0)
	return err
}

func (o *Occlum) allocDomain() (*Domain, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, d := range o.domains {
		if !d.inUse {
			d.inUse = true
			return d, nil
		}
	}
	return nil, ErrNoDomains
}

func (o *Occlum) freeDomain(d *Domain) {
	// Scrub both regions so the next SIP cannot observe stale data —
	// inter-process isolation across domain reuse.
	zero := make([]byte, mem.PageSize)
	for off := uint64(0); off < d.CodeSize; off += mem.PageSize {
		_ = o.enclave.WriteDirect(d.CodeBase+off, zero)
	}
	for off := uint64(0); off < d.DataSize; off += mem.PageSize {
		_ = o.enclave.WriteDirect(d.DataBase+off, zero)
	}
	o.mu.Lock()
	d.inUse = false
	o.mu.Unlock()
}

// readUserString copies a NUL-free string of length n from user memory,
// validating that the range lies inside the calling SIP's data region
// (the sanity checks of the syscall entry path).
func (p *Proc) readUserBytes(addr, n uint64) ([]byte, error) {
	if n > 1<<20 {
		return nil, errors.New("libos: user buffer too large")
	}
	if !p.inData(addr, n) {
		return nil, errors.New("libos: user pointer outside domain data region")
	}
	b, err := p.os.enclave.ReadDirect(addr, int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

func (p *Proc) writeUserBytes(addr uint64, b []byte) error {
	if !p.inData(addr, uint64(len(b))) {
		return errors.New("libos: user pointer outside domain data region")
	}
	// WriteAt is permission-checked, which is the point here: syscall
	// results may only land in the SIP's (never-executable) data pages.
	// Translated-code caches are unaffected either way — generation
	// stamps are page-granular, and these pages hold no code.
	if f := p.os.enclave.WriteAt(addr, b); f != nil {
		return f
	}
	return nil
}

func (p *Proc) inData(addr, n uint64) bool {
	d := p.dom
	end := addr + n
	return addr >= d.DataBase && end >= addr && end <= d.DataBase+d.DataSize
}

func (p *Proc) readUserU64(addr uint64) (uint64, error) {
	b, err := p.readUserBytes(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (p *Proc) writeUserU64(addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.writeUserBytes(addr, b[:])
}
