package libos_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/sgx"
	"repro/internal/ulib"
)

// packBase builds a little trusted base image holding config the SIP
// will read and then mutate (through copy-up).
func packBase(t testing.TB) (blob []byte, root [32]byte) {
	t.Helper()
	b := fs.NewImageBuilder()
	if err := b.AddFile("/app/motd", []byte("read-only greeting")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFile("/app/todelete", []byte("x")); err != nil {
		t.Fatal(err)
	}
	blob, root, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return blob, root
}

func bootFromImage(t testing.TB, host *hostos.Host, out *bytes.Buffer, root [32]byte) (*libos.Occlum, *core.Toolchain) {
	t.Helper()
	tc := core.NewToolchain()
	cfg := libos.DefaultConfig()
	cfg.VerifierKey = tc.Key()
	cfg.BaseImage = "base.img"
	cfg.BaseImageRoot = root
	cfg.Stdout = out
	os, err := libos.Boot(sgx.NewPlatform(512<<20), host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return os, tc
}

// TestBootFromBaseImage is the tentpole's end-to-end path: the LibOS
// mounts a union of the packed integrity-verified image (lower) and the
// encrypted filesystem (upper); a SIP reads trusted base content,
// overwrites it (copy-up), and unlinks another image file (whiteout) —
// all through the unchanged open/read/write/stat/unlink syscalls.
func TestBootFromBaseImage(t *testing.T) {
	blob, root := packBase(t)
	host := hostos.New()
	host.WriteFile("base.img", blob)
	var out bytes.Buffer
	os, tc := bootFromImage(t, host, &out, root)
	defer os.Shutdown()

	app := func(b *asm.Builder) {
		b.String("motd", "/app/motd")
		b.String("gone", "/app/todelete")
		b.Zero("buf", 32)
		b.Entry("_start")
		ulib.Prologue(b)
		// fd = open("/app/motd", O_RDONLY); read; write to stdout.
		ulib.OpenPath(b, "motd", 9, libos.ORdOnly)
		b.MovRR(isa.R6, isa.R0)
		b.CmpI(isa.R6, 0)
		b.Jl("fail")
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 18)
		ulib.Syscall(b, libos.SysRead)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 18)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Close(b, isa.R6)
		// Overwrite the same path → copy-up into the encrypted layer.
		ulib.OpenPath(b, "motd", 9, libos.ORdWr)
		b.MovRR(isa.R6, isa.R0)
		b.CmpI(isa.R6, 0)
		b.Jl("fail")
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf") // write back what we read: same bytes, new layer
		b.MovRI(isa.R3, 18)
		ulib.Syscall(b, libos.SysWrite)
		b.CmpI(isa.R0, 18)
		b.Jne("fail")
		ulib.Close(b, isa.R6)
		// Unlink the other image file → whiteout.
		b.LeaData(isa.R1, "gone")
		b.MovRI(isa.R2, 13)
		ulib.Syscall(b, libos.SysUnlink)
		b.CmpI(isa.R0, 0)
		b.Jne("fail")
		// It must be gone now.
		ulib.OpenPath(b, "gone", 13, libos.ORdOnly)
		b.CmpI(isa.R0, -libos.ENOENT)
		b.Jne("fail")
		ulib.Exit(b, 0)
		b.Label("fail")
		b.Nop()
		ulib.Exit(b, 1)
	}

	fsBefore := fs.Stats()
	p, err := buildAndSpawn(t, os, tc, "/bin/app", app)
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d (stdout %q)", status, out.String())
	}
	if out.String() != "read-only greeting" {
		t.Fatalf("stdout = %q", out.String())
	}
	// Copy-up and whiteout really happened.
	if d := fs.Stats().Sub(fsBefore); d.CopyUps == 0 || d.Whiteouts == 0 {
		t.Fatalf("stats = %+v: expected copy-up and whiteout activity", d)
	}
	// The mutated file lives in the writable layer; the unlinked one is
	// dead through the VFS.
	if _, err := os.VFS().Stat("/app/todelete"); err == nil {
		t.Fatal("whiteout did not take")
	}
	if fi, err := os.VFS().Stat("/app/motd"); err != nil || fi.Size != 18 {
		t.Fatalf("motd after copy-up: %+v, %v", fi, err)
	}
}

// TestBaseImageTamperFailsClosed flips one bit in the image's content
// region host-side: a freshly booted LibOS must refuse it — at mount
// (superblock path) or at first read (data path) — and never serve the
// SIP modified bytes.
func TestBaseImageTamperFailsClosed(t *testing.T) {
	blob, root := packBase(t)
	for _, off := range []int{100, fs.BlockSize + 64, len(blob) - fs.BlockSize} {
		host := hostos.New()
		host.WriteFile("base.img", blob)
		if err := host.FlipBit("base.img", off); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		tc := core.NewToolchain()
		cfg := libos.DefaultConfig()
		cfg.VerifierKey = tc.Key()
		cfg.BaseImage = "base.img"
		cfg.BaseImageRoot = root
		cfg.Stdout = &out
		os, err := libos.Boot(sgx.NewPlatform(512<<20), host, cfg)
		if err != nil {
			continue // failed closed at mount: fine
		}
		// Booted (tamper not on the superblock path): every read of the
		// affected region must error, never return flipped bytes.
		n, err := os.VFS().Open("/app/motd", fs.ORdOnly)
		if err == nil {
			buf := make([]byte, 18)
			if _, rerr := n.ReadAt(buf, 0); rerr == nil {
				if string(buf) != "read-only greeting" {
					t.Fatalf("offset %d: tampered bytes served to the enclave", off)
				}
			}
		}
		os.Shutdown()
	}
}

// buildAndSpawn compiles, installs and spawns a program on a LibOS
// booted outside core.BootSystem.
func buildAndSpawn(t testing.TB, os *libos.Occlum, tc *core.Toolchain, path string, f func(b *asm.Builder)) (*libos.Proc, error) {
	t.Helper()
	prog := buildProg(t, f)
	bin, err := tc.Compile(path, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.VFS().Mkdir("/bin"); err != nil {
		t.Fatal(err)
	}
	if err := os.InstallBinary(path, bin); err != nil {
		t.Fatal(err)
	}
	return os.Spawn(path, nil, libos.SpawnOpt{})
}
