package libos

// Readiness multiplexing: the LibOS halves of poll(2), epoll(7), fcntl
// O_NONBLOCK and shutdown(2).
//
// The design mirrors the PR 3 parking protocol: a blocking wait never
// holds a hart. A SIP calling poll/epoll_wait first registers readiness
// subscriptions (and, for finite timeouts, a host timer) under the same
// syscall record that futex waits use, then returns Parked; any
// readiness edge or the timer unparks it, and the retry re-scans the
// level-triggered state from scratch. Because every scan recomputes
// readiness, spurious wakeups and lost edges are both harmless — the
// subscriptions only need at-least-once delivery of the *last* edge,
// which the latched-wake protocol guarantees.

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sysdispatch"
	"repro/internal/timerwheel"
)

// --- Network/readiness statistics ---------------------------------------

// netStats counts readiness-path events across every LibOS instance in
// the process (the net analog of sched.GlobalSnapshot), reported by
// occlum-bench -netstats and asserted by the C10K smoke test.
var netStats struct {
	recvParks, sendParks, acceptParks atomic.Uint64
	polls, pollParks                  atomic.Uint64
	epWaits, epWaitParks              atomic.Uint64
	eagains                           atomic.Uint64
	// Zero-copy data-plane counters: completed vectored/splice/sendfile
	// syscalls, and the two byte ledgers every data syscall feeds —
	// bytesLent moved via borrowed views (guest loans, ring runs, image
	// cache blocks: no staging buffer), bytesCopied staged through a
	// per-syscall temp buffer (the scalar read/write paths).
	writevs, readvs, sendfiles, splices atomic.Uint64
	bytesLent, bytesCopied              atomic.Uint64
	// Backpressure counters: reaps counts idle connections closed by
	// the wheel-driven reaper, sheds counts inbound connections refused
	// by the saturated accept path, staleWakes counts timer fires whose
	// syscall had already completed (suppressed by the generation check
	// in timerWake instead of wake-stealing a later park).
	reaps, sheds, staleWakes atomic.Uint64
}

// --- Timer-wheel registry -------------------------------------------------

// Live wheels are enumerated so NetStats can report process-wide wheel
// activity; Shutdown folds a LibOS's final figures into the retired
// accumulator (the sched.GlobalSnapshot pattern).
var wheelReg struct {
	mu      sync.Mutex
	live    []*timerwheel.Wheel
	retired timerwheel.Stats
}

func registerWheels(ws []*timerwheel.Wheel) {
	wheelReg.mu.Lock()
	wheelReg.live = append(wheelReg.live, ws...)
	wheelReg.mu.Unlock()
}

func retireWheels(ws []*timerwheel.Wheel) {
	wheelReg.mu.Lock()
	defer wheelReg.mu.Unlock()
	for _, w := range ws {
		w.Stop()
		s := w.Stats()
		wheelReg.retired.Arms += s.Arms
		wheelReg.retired.Fires += s.Fires
		wheelReg.retired.Cancels += s.Cancels
		wheelReg.retired.Cascades += s.Cascades
		for i, l := range wheelReg.live {
			if l == w {
				wheelReg.live = append(wheelReg.live[:i], wheelReg.live[i+1:]...)
				break
			}
		}
	}
}

func wheelTotals() timerwheel.Stats {
	wheelReg.mu.Lock()
	defer wheelReg.mu.Unlock()
	t := wheelReg.retired
	for _, w := range wheelReg.live {
		s := w.Stats()
		t.Arms += s.Arms
		t.Fires += s.Fires
		t.Cancels += s.Cancels
		t.Cascades += s.Cascades
	}
	return t
}

// NetSnapshot is a plain-value copy of the readiness-path counters.
type NetSnapshot struct {
	// RecvParks/SendParks/AcceptParks count socket operations that
	// parked the SIP instead of blocking a hart.
	RecvParks, SendParks, AcceptParks uint64
	// Polls/EpWaits count poll and epoll_wait syscalls; PollParks and
	// EpWaitParks count park events — a long wait re-parks once per
	// spurious wakeup, so parks can exceed calls.
	Polls, PollParks, EpWaits, EpWaitParks uint64
	// EAgains counts O_NONBLOCK operations that returned EAGAIN.
	EAgains uint64
	// Writevs/Readvs/Sendfiles/Splices count completed zero-copy-plane
	// syscalls (a parked call counts once, when it finally returns).
	Writevs, Readvs, Sendfiles, Splices uint64
	// BytesLent counts payload bytes moved through borrowed views —
	// guest-memory loans, ring-to-ring splice runs, image-cache blocks —
	// without a staging copy. BytesCopied counts payload bytes staged
	// through a temp buffer (the scalar paths). The splice pipe→socket
	// path must report BytesCopied = 0.
	BytesLent, BytesCopied uint64
	// Reaps counts idle connections closed by the wheel-driven reaper;
	// Sheds counts inbound connections refused under run-queue
	// saturation; StaleWakes counts suppressed stale timer fires.
	Reaps, Sheds, StaleWakes uint64
	// WheelArms/Fires/Cancels/Cascades aggregate timer-wheel activity
	// across every LibOS in the process (live and shut down).
	WheelArms, WheelFires, WheelCancels, WheelCascades uint64
}

// NetStats returns the current counter values.
func NetStats() NetSnapshot {
	wt := wheelTotals()
	return NetSnapshot{
		RecvParks:     netStats.recvParks.Load(),
		SendParks:     netStats.sendParks.Load(),
		AcceptParks:   netStats.acceptParks.Load(),
		Polls:         netStats.polls.Load(),
		PollParks:     netStats.pollParks.Load(),
		EpWaits:       netStats.epWaits.Load(),
		EpWaitParks:   netStats.epWaitParks.Load(),
		EAgains:       netStats.eagains.Load(),
		Writevs:       netStats.writevs.Load(),
		Readvs:        netStats.readvs.Load(),
		Sendfiles:     netStats.sendfiles.Load(),
		Splices:       netStats.splices.Load(),
		BytesLent:     netStats.bytesLent.Load(),
		BytesCopied:   netStats.bytesCopied.Load(),
		Reaps:         netStats.reaps.Load(),
		Sheds:         netStats.sheds.Load(),
		StaleWakes:    netStats.staleWakes.Load(),
		WheelArms:     wt.Arms,
		WheelFires:    wt.Fires,
		WheelCancels:  wt.Cancels,
		WheelCascades: wt.Cascades,
	}
}

// Sub returns the event delta s - o.
func (s NetSnapshot) Sub(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		RecvParks: s.RecvParks - o.RecvParks, SendParks: s.SendParks - o.SendParks,
		AcceptParks: s.AcceptParks - o.AcceptParks,
		Polls:       s.Polls - o.Polls, PollParks: s.PollParks - o.PollParks,
		EpWaits: s.EpWaits - o.EpWaits, EpWaitParks: s.EpWaitParks - o.EpWaitParks,
		EAgains: s.EAgains - o.EAgains,
		Writevs: s.Writevs - o.Writevs, Readvs: s.Readvs - o.Readvs,
		Sendfiles: s.Sendfiles - o.Sendfiles, Splices: s.Splices - o.Splices,
		BytesLent: s.BytesLent - o.BytesLent, BytesCopied: s.BytesCopied - o.BytesCopied,
		Reaps: s.Reaps - o.Reaps, Sheds: s.Sheds - o.Sheds,
		StaleWakes: s.StaleWakes - o.StaleWakes,
		WheelArms:  s.WheelArms - o.WheelArms, WheelFires: s.WheelFires - o.WheelFires,
		WheelCancels: s.WheelCancels - o.WheelCancels, WheelCascades: s.WheelCascades - o.WheelCascades,
	}
}

// --- Epoll interest sets -------------------------------------------------

// epollSet is the object behind an epoll fd: a level-triggered interest
// list, the ready-candidate set that keeps epoll_wait O(ready) rather
// than O(interest) — the property that makes epoll the C10K syscall —
// and the waiter list of SIPs parked in epoll_wait.
//
// Readiness edges call markReady(fd), adding the fd to the candidate
// set; epoll_wait drains the candidates, verifies each against the real
// level-triggered state, and re-adds the ones still ready (so a
// partially-read fd keeps being reported without any new edge). A
// 10k-connection interest list with 64 active connections costs 64
// checks per wait, not 10k.
//
// The interest list and candidate set are sharded by fd: a readiness
// edge (markReady, fired from the connection's own wake path) takes
// only its fd's shard lock, so 100k connections hammering one epoll set
// do not serialize on a single mutex — each shard owns its slice of the
// readiness queue outright. The waiter list stays under its own small
// lock (waiters are the few SIPs parked in epoll_wait, not the many
// watched fds).
//
// Lock ordering: readiness callbacks run while the watched resource's
// lock is held (a stream's, a pipe's, a listener's) and take a shard
// lock, so nothing here may call back into a watched description while
// holding one — scans pop the candidate list first and query readiness
// unlocked. Shard locks never nest with each other or with wmu.
type epollSet struct {
	shards [epShards]epShard
	closed atomic.Bool

	wmu     sync.Mutex // guards waiters/nextID only
	waiters map[int]func()
	nextID  int
}

// epShards is the interest-table shard count (power of two; fds are
// dense small integers, so the low bits spread them evenly).
const epShards = 16

// epShard owns one slice of the interest list and its ready set.
type epShard struct {
	mu    sync.Mutex
	items map[int]*epItem
	ready map[int]struct{}
}

// epItem is one interest-list entry. It pins the open file description
// (not the fd): like Linux, the kernel watches descriptions, and — as
// close(2) does not remove an entry there either — callers must EpCtlDel
// an fd before closing it, or a recycled fd number will keep reporting
// the old description's readiness.
type epItem struct {
	events uint32
	file   *OpenFile
	cancel func()
}

func newEpollSet() *epollSet {
	ep := &epollSet{waiters: make(map[int]func())}
	for i := range ep.shards {
		ep.shards[i].items = make(map[int]*epItem)
		ep.shards[i].ready = make(map[int]struct{})
	}
	return ep
}

func (ep *epollSet) shardFor(fd int) *epShard {
	return &ep.shards[uint(fd)&(epShards-1)]
}

// markReady records a readiness edge for fd and wakes parked waiters.
// The candidate set is conservative (a superset of the truly ready):
// epoll_wait re-verifies against the level-triggered state. Only the
// fd's own shard lock is taken, so concurrent edges on different
// connections never contend.
func (ep *epollSet) markReady(fd int) {
	sh := ep.shardFor(fd)
	sh.mu.Lock()
	if _, ok := sh.items[fd]; ok {
		sh.ready[fd] = struct{}{}
	}
	sh.mu.Unlock()
	ep.wake()
}

// popCandidates drains every shard's candidate set, returning each
// candidate with its interest mask and file. Candidates the caller
// finds still ready must be pushed back with readd; a concurrent edge
// during the scan simply re-adds the fd to the fresh set, so no
// readiness is ever lost. Shards are drained one lock at a time —
// epoll_wait tolerates the resulting not-quite-snapshot the same way it
// tolerates edges arriving mid-scan.
func (ep *epollSet) popCandidates() []epCandidate {
	var out []epCandidate
	for i := range ep.shards {
		sh := &ep.shards[i]
		sh.mu.Lock()
		if len(sh.ready) == 0 {
			sh.mu.Unlock()
			continue
		}
		for fd := range sh.ready {
			if it, ok := sh.items[fd]; ok {
				out = append(out, epCandidate{fd: fd, ev: it.events, file: it.file})
			}
		}
		sh.ready = make(map[int]struct{})
		sh.mu.Unlock()
	}
	return out
}

// readd pushes still-ready (or unverified) candidates back.
func (ep *epollSet) readd(fds []int) {
	for _, fd := range fds {
		sh := ep.shardFor(fd)
		sh.mu.Lock()
		if _, ok := sh.items[fd]; ok {
			sh.ready[fd] = struct{}{}
		}
		sh.mu.Unlock()
	}
}

// add installs an interest-list entry, failing on a closed set (EBADF)
// or a duplicate fd (EEXIST). The closed check runs under the shard
// lock: either this insert is visible to close's drain of the shard, or
// the insert observes closed and rejects — no entry can slip in
// unseen and leak its subscription.
func (ep *epollSet) add(fd int, it *epItem) int64 {
	sh := ep.shardFor(fd)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ep.closed.Load() {
		return EBADF
	}
	if _, dup := sh.items[fd]; dup {
		return EEXIST
	}
	sh.items[fd] = it
	return 0
}

// del removes an entry, returning it for the caller to cancel outside
// the lock.
func (ep *epollSet) del(fd int) (*epItem, bool) {
	sh := ep.shardFor(fd)
	sh.mu.Lock()
	it, ok := sh.items[fd]
	if ok {
		delete(sh.items, fd)
		delete(sh.ready, fd)
	}
	sh.mu.Unlock()
	return it, ok
}

// get looks an entry up (for EpCtlMod's re-subscribe).
func (ep *epollSet) get(fd int) (*epItem, bool) {
	sh := ep.shardFor(fd)
	sh.mu.Lock()
	it, ok := sh.items[fd]
	sh.mu.Unlock()
	return it, ok
}

// swap replaces an entry's mask and subscription, returning the old
// cancel to run outside the lock; ok=false reports the entry vanished
// (removed concurrently).
func (ep *epollSet) swap(fd int, events uint32, cancel func()) (old func(), ok bool) {
	sh := ep.shardFor(fd)
	sh.mu.Lock()
	it, ok := sh.items[fd]
	if ok {
		old = it.cancel
		it.events = events
		it.cancel = cancel
	}
	sh.mu.Unlock()
	return old, ok
}

type epCandidate struct {
	fd   int
	ev   uint32
	file *OpenFile
}

// wake unparks every parked epoll_wait caller; they re-scan and park
// again if their events have not arrived. Registrations are NOT
// consumed by a wake (unlike the listener's one-shot accept waiters): a
// parked epoll_wait re-dispatches without re-registering, so its waiter
// must stay live until the syscall completes and its cancel runs —
// clearing here would lose the second wake and hang the retry.
func (ep *epollSet) wake() {
	ep.wmu.Lock()
	if len(ep.waiters) == 0 {
		ep.wmu.Unlock()
		return
	}
	ws := make([]func(), 0, len(ep.waiters))
	for _, w := range ep.waiters {
		ws = append(ws, w)
	}
	ep.wmu.Unlock()
	for _, w := range ws {
		w()
	}
}

// addWaiter registers a persistent wake callback for a parking
// epoll_wait, returning its cancel (run by the dispatch loop when the
// syscall completes and by teardown when the SIP dies, so no stale
// waiter outlives its syscall).
func (ep *epollSet) addWaiter(fn func()) (cancel func()) {
	ep.wmu.Lock()
	id := ep.nextID
	ep.nextID++
	ep.waiters[id] = fn
	ep.wmu.Unlock()
	return func() {
		ep.wmu.Lock()
		delete(ep.waiters, id)
		ep.wmu.Unlock()
	}
}

// close tears the set down when the last fd referencing it goes away:
// every readiness subscription is cancelled and parked waiters are woken
// (their retry fails with EBADF instead of sleeping forever).
func (ep *epollSet) close() {
	if !ep.closed.CompareAndSwap(false, true) {
		return
	}
	// closed is visible before any shard drain; add() checks it under
	// the shard lock, so every entry is either drained here or rejected
	// there.
	var items []*epItem
	for i := range ep.shards {
		sh := &ep.shards[i]
		sh.mu.Lock()
		for _, it := range sh.items {
			items = append(items, it)
		}
		sh.items = make(map[int]*epItem)
		sh.ready = make(map[int]struct{})
		sh.mu.Unlock()
	}
	for _, it := range items {
		it.cancel()
	}
	ep.wake()
}

// --- Syscall handlers ----------------------------------------------------

// sysFcntl implements F_GETFL/F_SETFL; the only status flag is
// O_NONBLOCK, which converts parking socket operations into immediate
// EAGAIN returns.
func sysFcntl(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	switch a[1] {
	case FGetFl:
		fl := int64(of.flags)
		if of.nonblock.Load() {
			fl |= ONonblock
		}
		return sysdispatch.Ok(fl)
	case FSetFl:
		of.nonblock.Store(a[2]&ONonblock != 0)
		return sysdispatch.Ok(0)
	}
	return sysdispatch.Errno(EINVAL)
}

// sysShutdown implements shutdown(2) over host connections — the real
// half-close the HTTPD uses to flush a response while still reading.
func sysShutdown(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok || of.kind != kindSock {
		return sysdispatch.Errno(EBADF)
	}
	of.mu.Lock()
	conn := of.conn
	of.mu.Unlock()
	if conn == nil {
		return sysdispatch.Errno(ENOTCONN)
	}
	switch a[1] {
	case ShutRd:
		conn.CloseRead()
	case ShutWr:
		conn.CloseWrite()
	case ShutRdWr:
		conn.CloseRead()
		conn.CloseWrite()
	default:
		return sysdispatch.Errno(EINVAL)
	}
	return sysdispatch.Ok(0)
}

// armTimeout installs the parking-side bookkeeping for a blocking
// readiness wait: the given registration cancels plus, for finite
// timeouts, a timer-wheel deadline whose firing latches cur.woken and
// unparks the SIP. The wheel entry is an O(1) splice on the SIP's
// per-hart wheel — no host timer is created per park; the wheel's one
// host alarm covers every pending deadline. The combined cancel lands
// in cur.cancel, which the dispatch loop runs on completion and
// teardown runs on death — so neither subscriptions nor timers outlive
// the syscall.
func (p *Proc) armTimeout(cur *blockedSys, cancels []func(), tmoMS int64) {
	if tmoMS > 0 {
		t := p.os.wheelFor(p.pid).Arm(time.Duration(tmoMS)*time.Millisecond, func() {
			p.timerWake(cur)
		})
		cancels = append(cancels, func() { t.Cancel() })
	}
	cur.cancel = func() {
		for _, c := range cancels {
			c()
		}
	}
}

// timerWake is the wheel callback for an expired syscall timeout.
// Cancel-vs-fire races are inherent (the wheel collects a tick's slot
// before running callbacks, so a cancel can arrive too late): a stale
// fire must not unpark the SIP, which may have completed that syscall
// and re-parked in a LATER one — the unpark would be wake-stolen by the
// wrong syscall, burning a spurious retry (and, for edge-sensitive
// waits, masking the real wakeup ordering). The generation check
// closes the race: the wake latch always lands in the timer's own
// record (harmless if stale), but the unpark only happens while that
// record is still the SIP's live syscall.
func (p *Proc) timerWake(cur *blockedSys) {
	cur.woken.Store(true)
	if p.liveGen.Load() != cur.gen {
		netStats.staleWakes.Add(1)
		return
	}
	p.unpark()
}

// sysPoll implements poll(2): a[0] points at an array of a[1] 24-byte
// entries {fd, events, revents}; a[2] is the timeout in milliseconds
// (negative: infinite; zero: pure readiness probe, never parks).
// Returns the number of entries with non-zero revents.
func sysPoll(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	cur := p.cursys
	ptr, nfds, tmo := a[0], a[1], int64(a[2])
	if nfds > sysdispatch.PollMaxFDs {
		return sysdispatch.Errno(EINVAL)
	}
	raw, err := p.readUserBytes(ptr, nfds*sysdispatch.PollEntrySize)
	if err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	first := cur.cancel == nil && !cur.woken.Load()
	if first {
		netStats.polls.Add(1)
	}
	// Subscribe before scanning (first blocking pass only): an edge
	// landing between the scan and the registration must not be lost.
	if tmo != 0 && first {
		var cancels []func()
		for i := uint64(0); i < nfds; i++ {
			ent := raw[i*sysdispatch.PollEntrySize:]
			fd := int(int64(binary.LittleEndian.Uint64(ent)))
			if fd < 0 {
				continue
			}
			if of, ok := p.getFD(fd); ok {
				if c, subbed := of.SubscribeReady(p.unpark, uint32(binary.LittleEndian.Uint64(ent[8:]))); subbed {
					cancels = append(cancels, c)
				}
			}
		}
		p.armTimeout(cur, cancels, tmo)
	}
	n := 0
	for i := uint64(0); i < nfds; i++ {
		ent := raw[i*sysdispatch.PollEntrySize:]
		fd := int(int64(binary.LittleEndian.Uint64(ent)))
		events := uint32(binary.LittleEndian.Uint64(ent[8:]))
		var revents uint32
		if fd >= 0 {
			if of, ok := p.getFD(fd); ok {
				revents = of.Readiness() & (events | PollErr | PollHup | PollNval)
			} else {
				revents = PollNval
			}
		}
		if revents != 0 {
			n++
		}
		if !sysdispatch.WriteU64(p, ptr+i*sysdispatch.PollEntrySize+16, uint64(revents)) {
			return sysdispatch.Errno(EFAULT)
		}
	}
	if n > 0 {
		return sysdispatch.Ok(int64(n))
	}
	if tmo == 0 || cur.woken.Load() {
		return sysdispatch.Ok(0) // probe, or timeout expired
	}
	netStats.pollParks.Add(1)
	return sysdispatch.ParkedResult
}

// sysEpCreate creates an epoll interest set behind a fresh fd.
func sysEpCreate(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of := &OpenFile{refs: 1, kind: kindEpoll, ep: newEpollSet()}
	return sysdispatch.Ok(int64(p.fds.Install(of)))
}

// sysEpCtl adds, modifies or removes interest-list entries:
// epoll_ctl(epfd, op, fd, events).
func sysEpCtl(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	epof, ok := p.getFD(int(int64(a[0])))
	if !ok || epof.kind != kindEpoll {
		return sysdispatch.Errno(EBADF)
	}
	ep := epof.ep
	op, fd, events := a[1], int(int64(a[2])), uint32(a[3])
	switch op {
	case EpCtlAdd:
		tf, ok := p.getFD(fd)
		if !ok {
			return sysdispatch.Errno(EBADF)
		}
		// Subscribe outside the shard lock (lock order: resource lock →
		// shard lock).
		cancel, subbed := tf.SubscribeReady(func() { ep.markReady(fd) }, events)
		if !subbed {
			return sysdispatch.Errno(EPERM) // not pollable (regular file, epoll)
		}
		if e := ep.add(fd, &epItem{events: events, file: tf, cancel: cancel}); e != 0 {
			cancel()
			return sysdispatch.Errno(e)
		}
		// The fd may already be ready — a level no future edge will
		// announce; seed it as a candidate.
		ep.markReady(fd)
		return sysdispatch.Ok(0)
	case EpCtlDel:
		it, ok := ep.del(fd)
		if !ok {
			return sysdispatch.Errno(ENOENT)
		}
		it.cancel()
		return sysdispatch.Ok(0)
	case EpCtlMod:
		it, ok := ep.get(fd)
		if !ok {
			return sysdispatch.Errno(ENOENT)
		}
		tf := it.file
		// The subscription is direction-filtered by the interest mask
		// (an EPOLLIN item never hears write-side edges), so changing
		// the mask must re-subscribe — keeping the old registration
		// would lose every wakeup for the newly requested direction.
		cancel, subbed := tf.SubscribeReady(func() { ep.markReady(fd) }, events)
		if !subbed {
			return sysdispatch.Errno(EPERM)
		}
		old, ok := ep.swap(fd, events, cancel)
		if !ok {
			cancel() // item removed concurrently
			return sysdispatch.Errno(ENOENT)
		}
		old()
		ep.markReady(fd) // the new mask may match a standing level
		return sysdispatch.Ok(0)
	}
	return sysdispatch.Errno(EINVAL)
}

// sysEpWait waits for interest-list readiness:
// epoll_wait(epfd, eventsPtr, maxEvents, timeoutMs) → n. The result
// array holds 16-byte entries {fd, revents}. Level-triggered: an entry
// stays reported as long as its readiness persists, so a partial read
// re-arms by simply leaving data buffered.
func sysEpWait(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	cur := p.cursys
	epof, ok := p.getFD(int(int64(a[0])))
	if !ok || epof.kind != kindEpoll {
		return sysdispatch.Errno(EBADF)
	}
	ep := epof.ep
	evPtr, maxEv, tmo := a[1], int64(a[2]), int64(a[3])
	if maxEv <= 0 {
		return sysdispatch.Errno(EINVAL)
	}
	if maxEv > sysdispatch.EpMaxEvents {
		maxEv = sysdispatch.EpMaxEvents
	}
	first := cur.cancel == nil && !cur.woken.Load()
	if first {
		netStats.epWaits.Add(1)
	}
	if tmo != 0 && first {
		p.armTimeout(cur, []func(){ep.addWaiter(p.unpark)}, tmo)
	}
	// Drain the candidate set and verify each fd against the real
	// level-triggered state: still-ready fds are reported AND pushed
	// back (a partial read keeps them reported on the next wait);
	// candidates past the batch budget go back unverified.
	cands := ep.popCandidates()
	sort.Slice(cands, func(i, j int) bool { return cands[i].fd < cands[j].fd })
	var out []byte
	var readd []int
	n := int64(0)
	for _, c := range cands {
		if n >= maxEv {
			readd = append(readd, c.fd)
			continue
		}
		r := c.file.Readiness() & (c.ev | PollErr | PollHup)
		if r == 0 {
			continue
		}
		var ent [sysdispatch.EpEntrySize]byte
		binary.LittleEndian.PutUint64(ent[:], uint64(int64(c.fd)))
		binary.LittleEndian.PutUint64(ent[8:], uint64(r))
		out = append(out, ent[:]...)
		readd = append(readd, c.fd)
		n++
	}
	ep.readd(readd)
	if n > 0 {
		if p.writeUserBytes(evPtr, out) != nil {
			return sysdispatch.Errno(EFAULT)
		}
		return sysdispatch.Ok(n)
	}
	if tmo == 0 || cur.woken.Load() {
		return sysdispatch.Ok(0)
	}
	netStats.epWaitParks.Add(1)
	return sysdispatch.ParkedResult
}
