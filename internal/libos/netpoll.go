package libos

// Readiness multiplexing: the LibOS halves of poll(2), epoll(7), fcntl
// O_NONBLOCK and shutdown(2).
//
// The design mirrors the PR 3 parking protocol: a blocking wait never
// holds a hart. A SIP calling poll/epoll_wait first registers readiness
// subscriptions (and, for finite timeouts, a host timer) under the same
// syscall record that futex waits use, then returns Parked; any
// readiness edge or the timer unparks it, and the retry re-scans the
// level-triggered state from scratch. Because every scan recomputes
// readiness, spurious wakeups and lost edges are both harmless — the
// subscriptions only need at-least-once delivery of the *last* edge,
// which the latched-wake protocol guarantees.

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sysdispatch"
)

// --- Network/readiness statistics ---------------------------------------

// netStats counts readiness-path events across every LibOS instance in
// the process (the net analog of sched.GlobalSnapshot), reported by
// occlum-bench -netstats and asserted by the C10K smoke test.
var netStats struct {
	recvParks, sendParks, acceptParks atomic.Uint64
	polls, pollParks                  atomic.Uint64
	epWaits, epWaitParks              atomic.Uint64
	eagains                           atomic.Uint64
	// Zero-copy data-plane counters: completed vectored/splice/sendfile
	// syscalls, and the two byte ledgers every data syscall feeds —
	// bytesLent moved via borrowed views (guest loans, ring runs, image
	// cache blocks: no staging buffer), bytesCopied staged through a
	// per-syscall temp buffer (the scalar read/write paths).
	writevs, readvs, sendfiles, splices atomic.Uint64
	bytesLent, bytesCopied              atomic.Uint64
}

// NetSnapshot is a plain-value copy of the readiness-path counters.
type NetSnapshot struct {
	// RecvParks/SendParks/AcceptParks count socket operations that
	// parked the SIP instead of blocking a hart.
	RecvParks, SendParks, AcceptParks uint64
	// Polls/EpWaits count poll and epoll_wait syscalls; PollParks and
	// EpWaitParks count park events — a long wait re-parks once per
	// spurious wakeup, so parks can exceed calls.
	Polls, PollParks, EpWaits, EpWaitParks uint64
	// EAgains counts O_NONBLOCK operations that returned EAGAIN.
	EAgains uint64
	// Writevs/Readvs/Sendfiles/Splices count completed zero-copy-plane
	// syscalls (a parked call counts once, when it finally returns).
	Writevs, Readvs, Sendfiles, Splices uint64
	// BytesLent counts payload bytes moved through borrowed views —
	// guest-memory loans, ring-to-ring splice runs, image-cache blocks —
	// without a staging copy. BytesCopied counts payload bytes staged
	// through a temp buffer (the scalar paths). The splice pipe→socket
	// path must report BytesCopied = 0.
	BytesLent, BytesCopied uint64
}

// NetStats returns the current counter values.
func NetStats() NetSnapshot {
	return NetSnapshot{
		RecvParks:   netStats.recvParks.Load(),
		SendParks:   netStats.sendParks.Load(),
		AcceptParks: netStats.acceptParks.Load(),
		Polls:       netStats.polls.Load(),
		PollParks:   netStats.pollParks.Load(),
		EpWaits:     netStats.epWaits.Load(),
		EpWaitParks: netStats.epWaitParks.Load(),
		EAgains:     netStats.eagains.Load(),
		Writevs:     netStats.writevs.Load(),
		Readvs:      netStats.readvs.Load(),
		Sendfiles:   netStats.sendfiles.Load(),
		Splices:     netStats.splices.Load(),
		BytesLent:   netStats.bytesLent.Load(),
		BytesCopied: netStats.bytesCopied.Load(),
	}
}

// Sub returns the event delta s - o.
func (s NetSnapshot) Sub(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		RecvParks: s.RecvParks - o.RecvParks, SendParks: s.SendParks - o.SendParks,
		AcceptParks: s.AcceptParks - o.AcceptParks,
		Polls:       s.Polls - o.Polls, PollParks: s.PollParks - o.PollParks,
		EpWaits: s.EpWaits - o.EpWaits, EpWaitParks: s.EpWaitParks - o.EpWaitParks,
		EAgains: s.EAgains - o.EAgains,
		Writevs: s.Writevs - o.Writevs, Readvs: s.Readvs - o.Readvs,
		Sendfiles: s.Sendfiles - o.Sendfiles, Splices: s.Splices - o.Splices,
		BytesLent: s.BytesLent - o.BytesLent, BytesCopied: s.BytesCopied - o.BytesCopied,
	}
}

// --- Epoll interest sets -------------------------------------------------

// epollSet is the object behind an epoll fd: a level-triggered interest
// list, the ready-candidate set that keeps epoll_wait O(ready) rather
// than O(interest) — the property that makes epoll the C10K syscall —
// and the waiter list of SIPs parked in epoll_wait.
//
// Readiness edges call markReady(fd), adding the fd to the candidate
// set; epoll_wait drains the candidates, verifies each against the real
// level-triggered state, and re-adds the ones still ready (so a
// partially-read fd keeps being reported without any new edge). A
// 10k-connection interest list with 64 active connections costs 64
// checks per wait, not 10k.
//
// Lock ordering: readiness callbacks run while the watched resource's
// lock is held (a stream's, a pipe's, a listener's) and take ep.mu, so
// nothing here may call back into a watched description while holding
// ep.mu — scans pop the candidate list first and query readiness
// unlocked.
type epollSet struct {
	mu      sync.Mutex
	items   map[int]*epItem
	ready   map[int]struct{}
	waiters map[int]func()
	nextID  int
	closed  bool
}

// epItem is one interest-list entry. It pins the open file description
// (not the fd): like Linux, the kernel watches descriptions, and — as
// close(2) does not remove an entry there either — callers must EpCtlDel
// an fd before closing it, or a recycled fd number will keep reporting
// the old description's readiness.
type epItem struct {
	events uint32
	file   *OpenFile
	cancel func()
}

func newEpollSet() *epollSet {
	return &epollSet{
		items:   make(map[int]*epItem),
		ready:   make(map[int]struct{}),
		waiters: make(map[int]func()),
	}
}

// markReady records a readiness edge for fd and wakes parked waiters.
// The candidate set is conservative (a superset of the truly ready):
// epoll_wait re-verifies against the level-triggered state.
func (ep *epollSet) markReady(fd int) {
	ep.mu.Lock()
	if _, ok := ep.items[fd]; ok {
		ep.ready[fd] = struct{}{}
	}
	ep.mu.Unlock()
	ep.wake()
}

// popCandidates drains the candidate set, returning each candidate with
// its interest mask and file. Candidates the caller finds still ready
// must be pushed back with readd; a concurrent edge during the scan
// simply re-adds the fd to the fresh set, so no readiness is ever lost.
func (ep *epollSet) popCandidates() []epCandidate {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.ready) == 0 {
		return nil
	}
	out := make([]epCandidate, 0, len(ep.ready))
	for fd := range ep.ready {
		if it, ok := ep.items[fd]; ok {
			out = append(out, epCandidate{fd: fd, ev: it.events, file: it.file})
		}
	}
	ep.ready = make(map[int]struct{})
	return out
}

// readd pushes still-ready (or unverified) candidates back.
func (ep *epollSet) readd(fds []int) {
	if len(fds) == 0 {
		return
	}
	ep.mu.Lock()
	for _, fd := range fds {
		if _, ok := ep.items[fd]; ok {
			ep.ready[fd] = struct{}{}
		}
	}
	ep.mu.Unlock()
}

type epCandidate struct {
	fd   int
	ev   uint32
	file *OpenFile
}

// wake unparks every parked epoll_wait caller; they re-scan and park
// again if their events have not arrived. Registrations are NOT
// consumed by a wake (unlike the listener's one-shot accept waiters): a
// parked epoll_wait re-dispatches without re-registering, so its waiter
// must stay live until the syscall completes and its cancel runs —
// clearing here would lose the second wake and hang the retry.
func (ep *epollSet) wake() {
	ep.mu.Lock()
	if len(ep.waiters) == 0 {
		ep.mu.Unlock()
		return
	}
	ws := make([]func(), 0, len(ep.waiters))
	for _, w := range ep.waiters {
		ws = append(ws, w)
	}
	ep.mu.Unlock()
	for _, w := range ws {
		w()
	}
}

// addWaiter registers a persistent wake callback for a parking
// epoll_wait, returning its cancel (run by the dispatch loop when the
// syscall completes and by teardown when the SIP dies, so no stale
// waiter outlives its syscall).
func (ep *epollSet) addWaiter(fn func()) (cancel func()) {
	ep.mu.Lock()
	id := ep.nextID
	ep.nextID++
	ep.waiters[id] = fn
	ep.mu.Unlock()
	return func() {
		ep.mu.Lock()
		delete(ep.waiters, id)
		ep.mu.Unlock()
	}
}

// close tears the set down when the last fd referencing it goes away:
// every readiness subscription is cancelled and parked waiters are woken
// (their retry fails with EBADF instead of sleeping forever).
func (ep *epollSet) close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	items := ep.items
	ep.items = make(map[int]*epItem)
	ep.ready = make(map[int]struct{})
	ep.mu.Unlock()
	for _, it := range items {
		it.cancel()
	}
	ep.wake()
}

// --- Syscall handlers ----------------------------------------------------

// sysFcntl implements F_GETFL/F_SETFL; the only status flag is
// O_NONBLOCK, which converts parking socket operations into immediate
// EAGAIN returns.
func sysFcntl(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	switch a[1] {
	case FGetFl:
		fl := int64(of.flags)
		if of.nonblock.Load() {
			fl |= ONonblock
		}
		return sysdispatch.Ok(fl)
	case FSetFl:
		of.nonblock.Store(a[2]&ONonblock != 0)
		return sysdispatch.Ok(0)
	}
	return sysdispatch.Errno(EINVAL)
}

// sysShutdown implements shutdown(2) over host connections — the real
// half-close the HTTPD uses to flush a response while still reading.
func sysShutdown(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok || of.kind != kindSock {
		return sysdispatch.Errno(EBADF)
	}
	of.mu.Lock()
	conn := of.conn
	of.mu.Unlock()
	if conn == nil {
		return sysdispatch.Errno(ENOTCONN)
	}
	switch a[1] {
	case ShutRd:
		conn.CloseRead()
	case ShutWr:
		conn.CloseWrite()
	case ShutRdWr:
		conn.CloseRead()
		conn.CloseWrite()
	default:
		return sysdispatch.Errno(EINVAL)
	}
	return sysdispatch.Ok(0)
}

// armTimeout installs the parking-side bookkeeping for a blocking
// readiness wait: the given registration cancels plus, for finite
// timeouts, a host timer whose firing latches cur.woken and unparks the
// SIP. The combined cancel lands in cur.cancel, which the dispatch loop
// runs on completion and teardown runs on death — so neither
// subscriptions nor timers outlive the syscall.
func (p *Proc) armTimeout(cur *blockedSys, cancels []func(), tmoMS int64) {
	if tmoMS > 0 {
		cancels = append(cancels, p.os.host.Timer(time.Duration(tmoMS)*time.Millisecond, func() {
			cur.woken.Store(true)
			p.unpark()
		}))
	}
	cur.cancel = func() {
		for _, c := range cancels {
			c()
		}
	}
}

// sysPoll implements poll(2): a[0] points at an array of a[1] 24-byte
// entries {fd, events, revents}; a[2] is the timeout in milliseconds
// (negative: infinite; zero: pure readiness probe, never parks).
// Returns the number of entries with non-zero revents.
func sysPoll(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	cur := p.cursys
	ptr, nfds, tmo := a[0], a[1], int64(a[2])
	if nfds > sysdispatch.PollMaxFDs {
		return sysdispatch.Errno(EINVAL)
	}
	raw, err := p.readUserBytes(ptr, nfds*sysdispatch.PollEntrySize)
	if err != nil {
		return sysdispatch.Errno(EFAULT)
	}
	first := cur.cancel == nil && !cur.woken.Load()
	if first {
		netStats.polls.Add(1)
	}
	// Subscribe before scanning (first blocking pass only): an edge
	// landing between the scan and the registration must not be lost.
	if tmo != 0 && first {
		var cancels []func()
		for i := uint64(0); i < nfds; i++ {
			ent := raw[i*sysdispatch.PollEntrySize:]
			fd := int(int64(binary.LittleEndian.Uint64(ent)))
			if fd < 0 {
				continue
			}
			if of, ok := p.getFD(fd); ok {
				if c, subbed := of.SubscribeReady(p.unpark, uint32(binary.LittleEndian.Uint64(ent[8:]))); subbed {
					cancels = append(cancels, c)
				}
			}
		}
		p.armTimeout(cur, cancels, tmo)
	}
	n := 0
	for i := uint64(0); i < nfds; i++ {
		ent := raw[i*sysdispatch.PollEntrySize:]
		fd := int(int64(binary.LittleEndian.Uint64(ent)))
		events := uint32(binary.LittleEndian.Uint64(ent[8:]))
		var revents uint32
		if fd >= 0 {
			if of, ok := p.getFD(fd); ok {
				revents = of.Readiness() & (events | PollErr | PollHup | PollNval)
			} else {
				revents = PollNval
			}
		}
		if revents != 0 {
			n++
		}
		if !sysdispatch.WriteU64(p, ptr+i*sysdispatch.PollEntrySize+16, uint64(revents)) {
			return sysdispatch.Errno(EFAULT)
		}
	}
	if n > 0 {
		return sysdispatch.Ok(int64(n))
	}
	if tmo == 0 || cur.woken.Load() {
		return sysdispatch.Ok(0) // probe, or timeout expired
	}
	netStats.pollParks.Add(1)
	return sysdispatch.ParkedResult
}

// sysEpCreate creates an epoll interest set behind a fresh fd.
func sysEpCreate(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of := &OpenFile{refs: 1, kind: kindEpoll, ep: newEpollSet()}
	return sysdispatch.Ok(int64(p.fds.Install(of)))
}

// sysEpCtl adds, modifies or removes interest-list entries:
// epoll_ctl(epfd, op, fd, events).
func sysEpCtl(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	epof, ok := p.getFD(int(int64(a[0])))
	if !ok || epof.kind != kindEpoll {
		return sysdispatch.Errno(EBADF)
	}
	ep := epof.ep
	op, fd, events := a[1], int(int64(a[2])), uint32(a[3])
	switch op {
	case EpCtlAdd:
		tf, ok := p.getFD(fd)
		if !ok {
			return sysdispatch.Errno(EBADF)
		}
		// Subscribe outside ep.mu (lock order: resource lock → ep.mu).
		cancel, subbed := tf.SubscribeReady(func() { ep.markReady(fd) }, events)
		if !subbed {
			return sysdispatch.Errno(EPERM) // not pollable (regular file, epoll)
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			cancel()
			return sysdispatch.Errno(EBADF)
		}
		if _, dup := ep.items[fd]; dup {
			ep.mu.Unlock()
			cancel()
			return sysdispatch.Errno(EEXIST)
		}
		ep.items[fd] = &epItem{events: events, file: tf, cancel: cancel}
		ep.mu.Unlock()
		// The fd may already be ready — a level no future edge will
		// announce; seed it as a candidate.
		ep.markReady(fd)
		return sysdispatch.Ok(0)
	case EpCtlDel:
		ep.mu.Lock()
		it, ok := ep.items[fd]
		if ok {
			delete(ep.items, fd)
			delete(ep.ready, fd)
		}
		ep.mu.Unlock()
		if !ok {
			return sysdispatch.Errno(ENOENT)
		}
		it.cancel()
		return sysdispatch.Ok(0)
	case EpCtlMod:
		ep.mu.Lock()
		it, ok := ep.items[fd]
		var tf *OpenFile
		if ok {
			tf = it.file
		}
		ep.mu.Unlock()
		if !ok {
			return sysdispatch.Errno(ENOENT)
		}
		// The subscription is direction-filtered by the interest mask
		// (an EPOLLIN item never hears write-side edges), so changing
		// the mask must re-subscribe — keeping the old registration
		// would lose every wakeup for the newly requested direction.
		cancel, subbed := tf.SubscribeReady(func() { ep.markReady(fd) }, events)
		if !subbed {
			return sysdispatch.Errno(EPERM)
		}
		var old func()
		ep.mu.Lock()
		it, ok = ep.items[fd]
		if ok {
			old = it.cancel
			it.events = events
			it.cancel = cancel
		}
		ep.mu.Unlock()
		if !ok {
			cancel() // item removed concurrently
			return sysdispatch.Errno(ENOENT)
		}
		old()
		ep.markReady(fd) // the new mask may match a standing level
		return sysdispatch.Ok(0)
	}
	return sysdispatch.Errno(EINVAL)
}

// sysEpWait waits for interest-list readiness:
// epoll_wait(epfd, eventsPtr, maxEvents, timeoutMs) → n. The result
// array holds 16-byte entries {fd, revents}. Level-triggered: an entry
// stays reported as long as its readiness persists, so a partial read
// re-arms by simply leaving data buffered.
func sysEpWait(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	cur := p.cursys
	epof, ok := p.getFD(int(int64(a[0])))
	if !ok || epof.kind != kindEpoll {
		return sysdispatch.Errno(EBADF)
	}
	ep := epof.ep
	evPtr, maxEv, tmo := a[1], int64(a[2]), int64(a[3])
	if maxEv <= 0 {
		return sysdispatch.Errno(EINVAL)
	}
	if maxEv > sysdispatch.EpMaxEvents {
		maxEv = sysdispatch.EpMaxEvents
	}
	first := cur.cancel == nil && !cur.woken.Load()
	if first {
		netStats.epWaits.Add(1)
	}
	if tmo != 0 && first {
		p.armTimeout(cur, []func(){ep.addWaiter(p.unpark)}, tmo)
	}
	// Drain the candidate set and verify each fd against the real
	// level-triggered state: still-ready fds are reported AND pushed
	// back (a partial read keeps them reported on the next wait);
	// candidates past the batch budget go back unverified.
	cands := ep.popCandidates()
	sort.Slice(cands, func(i, j int) bool { return cands[i].fd < cands[j].fd })
	var out []byte
	var readd []int
	n := int64(0)
	for _, c := range cands {
		if n >= maxEv {
			readd = append(readd, c.fd)
			continue
		}
		r := c.file.Readiness() & (c.ev | PollErr | PollHup)
		if r == 0 {
			continue
		}
		var ent [sysdispatch.EpEntrySize]byte
		binary.LittleEndian.PutUint64(ent[:], uint64(int64(c.fd)))
		binary.LittleEndian.PutUint64(ent[8:], uint64(r))
		out = append(out, ent[:]...)
		readd = append(readd, c.fd)
		n++
	}
	ep.readd(readd)
	if n > 0 {
		if p.writeUserBytes(evPtr, out) != nil {
			return sysdispatch.Errno(EFAULT)
		}
		return sysdispatch.Ok(n)
	}
	if tmo == 0 || cur.woken.Load() {
		return sysdispatch.Ok(0)
	}
	netStats.epWaitParks.Add(1)
	return sysdispatch.ParkedResult
}
