package libos

// Internal regression tests for the timer-wake generation check: these
// need blockedSys/liveGen/timerWake, so they live inside the package
// (the full-stack readiness tests stay in libos_test).

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// manualParker parks on every Step until released, never registering a
// waiter — only an explicit Unpark can requeue it, which makes unparks
// observable one-for-one through the scheduler counters.
type manualParker struct{ quit atomic.Bool }

func (m *manualParker) Step() sched.Status {
	if m.quit.Load() {
		return sched.Done
	}
	return sched.Park
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStaleTimerWakeSuppressed is the regression test for the
// wake-steal bug: a poll timeout's host timer could fire just after
// the poll completed (cancel raced the fire), and its callback would
// unpark the SIP even though the SIP had re-parked in a LATER syscall
// — a spurious wake stolen by the wrong wait. The fix stamps each
// syscall record with a generation and gates the unpark on the record
// still being the live one. This test replays the race directly:
// complete the "poll" (liveGen moves on to a later record), fire the
// stale timer callback, and assert the parked task is NOT woken — then
// fire the live record's callback and assert it is.
func TestStaleTimerWakeSuppressed(t *testing.T) {
	s := sched.New(1)
	defer s.Stop()
	task := &manualParker{}
	g := s.Prepare(task)
	p := &Proc{task: g}

	s.Start(g)
	waitFor(t, "initial park", func() bool { return s.Snapshot().Parks >= 1 })

	// The SIP completed syscall gen 1 (the poll) and is now parked in
	// syscall gen 2 — exactly the moment the stale gen-1 timer fires.
	p.liveGen.Store(2)
	stale := &blockedSys{gen: 1}
	baseUnparks := s.Snapshot().Unparks
	baseStale := netStats.staleWakes.Load()

	p.timerWake(stale)
	if !stale.woken.Load() {
		t.Fatal("stale fire must still latch its own record's wake flag")
	}
	if got := netStats.staleWakes.Load() - baseStale; got != 1 {
		t.Fatalf("staleWakes delta = %d, want 1", got)
	}
	time.Sleep(50 * time.Millisecond)
	if got := s.Snapshot().Unparks - baseUnparks; got != 0 {
		t.Fatalf("stale timer unparked the task %d times; want 0", got)
	}

	// The live record's timer still wakes normally.
	task.quit.Store(true)
	live := &blockedSys{gen: 2}
	p.timerWake(live)
	if !live.woken.Load() {
		t.Fatal("live fire did not latch the wake flag")
	}
	waitFor(t, "task completion", func() bool { return g.Done() })
	if got := s.Snapshot().Unparks - baseUnparks; got != 1 {
		t.Fatalf("unparks after live fire = %d, want 1", got)
	}
}

// TestTimerWakeLiveUnparks covers the inverse direction at the retry
// boundary: a timer firing for the record currently being re-dispatched
// (liveGen matches) must unpark even though the task is momentarily
// running — the latched wake is absorbed by the next park attempt, the
// normal timeout path.
func TestTimerWakeLiveUnparks(t *testing.T) {
	s := sched.New(1)
	defer s.Stop()
	task := &manualParker{}
	g := s.Prepare(task)
	p := &Proc{task: g}
	s.Start(g)
	waitFor(t, "initial park", func() bool { return s.Snapshot().Parks >= 1 })

	p.liveGen.Store(7)
	cur := &blockedSys{gen: 7}
	task.quit.Store(true)
	p.timerWake(cur)
	waitFor(t, "task completion", func() bool { return g.Done() })
}
