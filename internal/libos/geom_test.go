package libos_test

import (
	"bytes"
	"testing"

	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/sgx"
)

// TestConfigurableStripeGeometry drives the k+m Reed-Solomon stripe
// geometry end to end through libos.Config: a fresh image is formatted
// with the configured shape, data written through it survives a
// remount, reopening an existing image keeps the superblock's geometry
// regardless of what the config now says, and an impossible geometry
// fails boot instead of formatting a broken store.
func TestConfigurableStripeGeometry(t *testing.T) {
	host := hostos.New()
	boot := func(k, m int) (*libos.Occlum, error) {
		lc := libos.DefaultConfig()
		lc.FSBlocks = 1024
		lc.FSDataShards, lc.FSParityShards = k, m
		return libos.Boot(sgx.NewPlatform(512<<20), host, lc)
	}

	os1, err := boot(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k, m := os1.Store().Geometry(); k != 8 || m != 3 {
		t.Fatalf("fresh store geometry = %d+%d, want 8+3", k, m)
	}
	if files := os1.Store().BackingFiles(); len(files) != 11 {
		t.Fatalf("backing files = %d, want 11 (one per shard)", len(files))
	}
	payload := bytes.Repeat([]byte{0x5A, 0xC3}, 8<<10)
	f, err := os1.VFS().Open("/geom", fs.OWrOnly|fs.OCreate|fs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os1.Sync(); err != nil {
		t.Fatal(err)
	}
	os1.Shutdown()

	// Same host files, different config: the creation-time geometry in
	// the superblock wins, and the striped data reads back intact.
	os2, err := boot(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer os2.Shutdown()
	if k, m := os2.Store().Geometry(); k != 8 || m != 3 {
		t.Fatalf("reopened store geometry = %d+%d, want the formatted 8+3", k, m)
	}
	f2, err := os2.VFS().Open("/geom", fs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after remount with different configured geometry")
	}

	// 5 does not divide the 4 KiB block: boot must refuse to format.
	if _, err := libos.Boot(sgx.NewPlatform(512<<20), hostos.New(), func() libos.Config {
		lc := libos.DefaultConfig()
		lc.FSBlocks = 1024
		lc.FSDataShards, lc.FSParityShards = 5, 1
		return lc
	}()); err == nil {
		t.Fatal("boot with k=5 (does not divide BlockSize) succeeded, want error")
	}
}
