package libos

// This file defines the LibOS syscall ABI shared with user programs (the
// workload generators emit code against these constants — the role musl
// libc plays in the paper).
//
// Calling convention: the user program loads the trampoline address from
// its auxiliary vector and performs a (cfi_guard-ed) indirect call to it.
// The trampoline — injected by the loader, and the only way out of the
// MMDSFI sandbox — consists of a cfi_label and a trap. On trap, the LibOS
// pops the return address, checks it is a cfi_label of the calling SIP's
// domain, dispatches on R0, writes the result to R0 (negative errno on
// failure) and resumes at the return address.
//
// Registers: R0 = syscall number in, result out; R1..R5 = arguments.

// Syscall numbers.
const (
	SysExit     = 1  // exit(status)
	SysWrite    = 2  // write(fd, buf, len) → n
	SysRead     = 3  // read(fd, buf, len) → n
	SysOpen     = 4  // open(path, pathLen, flags) → fd
	SysClose    = 5  // close(fd)
	SysSpawn    = 6  // spawn(path, pathLen, argvBlock, argvLen) → pid
	SysWait4    = 7  // wait4(pid, statusPtr) → pid
	SysPipe2    = 8  // pipe2(fds[2]ptr)
	SysDup2     = 9  // dup2(oldfd, newfd)
	SysGetpid   = 10 // getpid() → pid
	SysMmap     = 11 // mmap(len) → addr (anonymous RW only)
	SysMunmap   = 12 // munmap(addr, len)
	SysFutex    = 13 // futex(op, addr, val)
	SysKill     = 14 // kill(pid, sig)
	SysSigact   = 15 // sigaction(sig, handler)
	SysSigret   = 16 // sigreturn()
	SysLseek    = 17 // lseek(fd, off, whence) → off
	SysStat     = 18 // stat(path, pathLen, statPtr{size,isdir})
	SysMkdir    = 19 // mkdir(path, pathLen)
	SysUnlink   = 20 // unlink(path, pathLen)
	SysReaddir  = 21 // readdir(path, pathLen, buf, bufLen) → n
	SysSocket   = 22 // socket() → fd
	SysBind     = 23 // bind(fd, port)
	SysListen   = 24 // listen(fd)
	SysAccept   = 25 // accept(fd) → connfd
	SysConnect  = 26 // connect(fd, port)
	SysSend     = 27 // send(fd, buf, len) → n
	SysRecv     = 28 // recv(fd, buf, len) → n
	SysClock    = 29 // clock_gettime() → ns
	SysYield    = 30 // sched_yield()
	SysGetppid  = 31 // getppid() → pid
	SysFsync    = 32 // fsync(fd)
	SysSpawnCPU = 33 // internal: report consumed cycles (diagnostics)
)

// Errno values (returned as -errno in R0).
const (
	EPERM        = 1
	ENOENT       = 2
	ESRCH        = 3
	EINTR        = 4
	EIO          = 5
	EBADF        = 9
	ECHILD       = 10
	EAGAIN       = 11
	ENOMEM       = 12
	EACCES       = 13
	EFAULT       = 14
	EEXIST       = 17
	ENOTDIR      = 20
	EISDIR       = 21
	EINVAL       = 22
	EMFILE       = 24
	ENOSPC       = 28
	ESPIPE       = 29
	EPIPE        = 32
	ENOSYS       = 38
	ENOTDIRE     = ENOTDIR
	ENOTEMPTY    = 39
	ECONNREFUSED = 111
)

// Open flags in the user ABI (mirroring fs.OpenFlag values).
const (
	ORdOnly = 0
	OWrOnly = 1
	ORdWr   = 2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Futex operations.
const (
	FutexWait = 0
	FutexWake = 1
)

// Signals.
const (
	SIGKILL = 9
	SIGSEGV = 11
	SIGTERM = 15
	SIGUSR1 = 10
	SIGILL  = 4
	SIGFPE  = 8
)

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Auxiliary vector layout. At process entry, R10 points to this block in
// the data region and SP is just below it:
//
//	[ 0] trampoline address (the LibOS syscall gate)
//	[ 8] heap base
//	[16] heap end
//	[24] argc
//	[32] argv[0] pointer, argv[1] pointer, ... (each NUL-terminated)
const (
	AuxTrampoline = 0
	AuxHeapBase   = 8
	AuxHeapEnd    = 16
	AuxArgc       = 24
	AuxArgv       = 32
)
