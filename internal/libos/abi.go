package libos

// This file defines the LibOS syscall ABI shared with user programs (the
// workload generators emit code against these constants — the role musl
// libc plays in the paper).
//
// Calling convention: the user program loads the trampoline address from
// its auxiliary vector and performs a (cfi_guard-ed) indirect call to it.
// The trampoline — injected by the loader, and the only way out of the
// MMDSFI sandbox — consists of a cfi_label and a trap. On trap, the LibOS
// pops the return address, checks it is a cfi_label of the calling SIP's
// domain, dispatches on R0, writes the result to R0 (negative errno on
// failure) and resumes at the return address.
//
// Registers: R0 = syscall number in, result out; R1..R5 = arguments.
//
// The numbers, errnos and flag values themselves live in
// internal/sysdispatch — the syscall spine shared with the baseline
// kernels — and are re-exported here so user-program builders keep a
// single import.

import "repro/internal/sysdispatch"

// Syscall numbers (see internal/sysdispatch/abi.go for the catalog).
const (
	SysExit     = sysdispatch.SysExit
	SysWrite    = sysdispatch.SysWrite
	SysRead     = sysdispatch.SysRead
	SysOpen     = sysdispatch.SysOpen
	SysClose    = sysdispatch.SysClose
	SysSpawn    = sysdispatch.SysSpawn
	SysWait4    = sysdispatch.SysWait4
	SysPipe2    = sysdispatch.SysPipe2
	SysDup2     = sysdispatch.SysDup2
	SysGetpid   = sysdispatch.SysGetpid
	SysMmap     = sysdispatch.SysMmap
	SysMunmap   = sysdispatch.SysMunmap
	SysFutex    = sysdispatch.SysFutex
	SysKill     = sysdispatch.SysKill
	SysSigact   = sysdispatch.SysSigact
	SysSigret   = sysdispatch.SysSigret
	SysLseek    = sysdispatch.SysLseek
	SysStat     = sysdispatch.SysStat
	SysMkdir    = sysdispatch.SysMkdir
	SysUnlink   = sysdispatch.SysUnlink
	SysReaddir  = sysdispatch.SysReaddir
	SysSocket   = sysdispatch.SysSocket
	SysBind     = sysdispatch.SysBind
	SysListen   = sysdispatch.SysListen
	SysAccept   = sysdispatch.SysAccept
	SysConnect  = sysdispatch.SysConnect
	SysSend     = sysdispatch.SysSend
	SysRecv     = sysdispatch.SysRecv
	SysClock    = sysdispatch.SysClock
	SysYield    = sysdispatch.SysYield
	SysGetppid  = sysdispatch.SysGetppid
	SysFsync    = sysdispatch.SysFsync
	SysSpawnCPU = sysdispatch.SysSpawnCPU
	SysFcntl    = sysdispatch.SysFcntl
	SysPoll     = sysdispatch.SysPoll
	SysEpCreate = sysdispatch.SysEpCreate
	SysEpCtl    = sysdispatch.SysEpCtl
	SysEpWait   = sysdispatch.SysEpWait
	SysShutdown = sysdispatch.SysShutdown
	SysRename   = sysdispatch.SysRename
	SysWritev   = sysdispatch.SysWritev
	SysReadv    = sysdispatch.SysReadv
	SysSendfile = sysdispatch.SysSendfile
	SysSplice   = sysdispatch.SysSplice

	// IovMax and IovEntrySize mirror the sysdispatch iovec ABI for
	// kernels that unmarshal iovec arrays themselves.
	IovMax       = sysdispatch.IovMax
	IovEntrySize = sysdispatch.IovEntrySize
)

// Errno values (returned as -errno in R0).
const (
	EPERM        = sysdispatch.EPERM
	ENOENT       = sysdispatch.ENOENT
	ESRCH        = sysdispatch.ESRCH
	EINTR        = sysdispatch.EINTR
	EIO          = sysdispatch.EIO
	EBADF        = sysdispatch.EBADF
	ECHILD       = sysdispatch.ECHILD
	EAGAIN       = sysdispatch.EAGAIN
	ENOMEM       = sysdispatch.ENOMEM
	EACCES       = sysdispatch.EACCES
	EFAULT       = sysdispatch.EFAULT
	EEXIST       = sysdispatch.EEXIST
	EXDEV        = sysdispatch.EXDEV
	ENOTDIR      = sysdispatch.ENOTDIR
	EISDIR       = sysdispatch.EISDIR
	EINVAL       = sysdispatch.EINVAL
	EMFILE       = sysdispatch.EMFILE
	ENOSPC       = sysdispatch.ENOSPC
	ESPIPE       = sysdispatch.ESPIPE
	EPIPE        = sysdispatch.EPIPE
	ENOSYS       = sysdispatch.ENOSYS
	ENOTDIRE     = ENOTDIR
	ENOTEMPTY    = sysdispatch.ENOTEMPTY
	ENOTCONN     = sysdispatch.ENOTCONN
	ECONNREFUSED = sysdispatch.ECONNREFUSED
)

// Open flags in the user ABI (mirroring fs.OpenFlag values).
const (
	ORdOnly = sysdispatch.ORdOnly
	OWrOnly = sysdispatch.OWrOnly
	ORdWr   = sysdispatch.ORdWr
	OCreate = sysdispatch.OCreate
	OTrunc  = sysdispatch.OTrunc
	OAppend = sysdispatch.OAppend
)

// Futex operations.
const (
	FutexWait = sysdispatch.FutexWait
	FutexWake = sysdispatch.FutexWake
)

// fcntl commands and status flags.
const (
	FGetFl    = sysdispatch.FGetFl
	FSetFl    = sysdispatch.FSetFl
	ONonblock = sysdispatch.ONonblock
)

// poll/epoll event bits and epoll_ctl operations.
const (
	PollIn   = sysdispatch.PollIn
	PollOut  = sysdispatch.PollOut
	PollErr  = sysdispatch.PollErr
	PollHup  = sysdispatch.PollHup
	PollNval = sysdispatch.PollNval

	EpCtlAdd = sysdispatch.EpCtlAdd
	EpCtlDel = sysdispatch.EpCtlDel
	EpCtlMod = sysdispatch.EpCtlMod

	ShutRd   = sysdispatch.ShutRd
	ShutWr   = sysdispatch.ShutWr
	ShutRdWr = sysdispatch.ShutRdWr
)

// Signals.
const (
	SIGKILL = 9
	SIGSEGV = 11
	SIGTERM = 15
	SIGUSR1 = 10
	SIGILL  = 4
	SIGFPE  = 8
)

// Lseek whence values.
const (
	SeekSet = sysdispatch.SeekSet
	SeekCur = sysdispatch.SeekCur
	SeekEnd = sysdispatch.SeekEnd
)

// Auxiliary vector layout. At process entry, R10 points to this block in
// the data region and SP is just below it:
//
//	[ 0] trampoline address (the LibOS syscall gate)
//	[ 8] heap base
//	[16] heap end
//	[24] argc
//	[32] argv[0] pointer, argv[1] pointer, ... (each NUL-terminated)
const (
	AuxTrampoline = 0
	AuxHeapBase   = 8
	AuxHeapEnd    = 16
	AuxArgc       = 24
	AuxArgv       = 32
)
