package libos_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// bootSmall boots a system with a 4-hart pool and enough small domains
// for oversubscription tests.
func bootSmall(t testing.TB, domains, harts int, slice uint64, out *bytes.Buffer) (*core.System, *core.Toolchain) {
	t.Helper()
	tc := core.NewToolchain()
	lc := libos.DefaultConfig()
	lc.NumDomains = domains
	lc.DomainCodeSize = 256 << 10
	lc.DomainDataSize = 1 << 20
	lc.StackSize = 128 << 10
	lc.MaxThreads = harts
	lc.FSBlocks = 4096
	if slice != 0 {
		lc.CycleSlice = slice
	}
	if out != nil {
		lc.Stdout = out
	}
	sys, err := core.BootSystem(core.SystemConfig{LibOS: lc})
	if err != nil {
		t.Fatal(err)
	}
	return sys, tc
}

// syncBuffer is a Writer safe to read while SIPs write to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// futexWaiterProg writes the address of its futex word to stdout (so the
// host can wake it), then waits on it.
func futexWaiterProg(b *asm.Builder) {
	b.Zero("fut", 8)
	b.Zero("futaddr", 8)
	b.Entry("_start")
	ulib.Prologue(b)
	b.LeaData(isa.R6, "fut")
	b.StoreData("futaddr", isa.R6)
	b.MovRI(isa.R1, 1)
	b.LeaData(isa.R2, "futaddr")
	b.MovRI(isa.R3, 8)
	ulib.Syscall(b, libos.SysWrite)
	// futex(WAIT, fut, 0)
	b.MovRI(isa.R1, libos.FutexWait)
	b.LeaData(isa.R2, "fut")
	b.MovRI(isa.R3, 0)
	ulib.Syscall(b, libos.SysFutex)
	ulib.Exit(b, 0)
}

// pipeParentProg creates a pipe, spawns /bin/pipechild (which inherits
// fds 3/4), blocks reading the pipe, then reaps the child.
func pipeParentProg(b *asm.Builder) {
	b.Zero("fds", 16)
	b.Zero("buf", 16)
	b.String("cpath", "/bin/pipechild")
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.Pipe2(b, "fds") // rfd=3, wfd=4 in a fresh table
	ulib.SpawnPath(b, "cpath", 14, "", 0)
	b.MovRR(isa.R6, isa.R0) // child pid
	// read(3, buf, 8): parks until the child writes.
	b.MovRI(isa.R1, 3)
	b.LeaData(isa.R2, "buf")
	b.MovRI(isa.R3, 8)
	ulib.Syscall(b, libos.SysRead)
	ulib.Wait4(b, isa.R6)
	ulib.Exit(b, 0)
}

// pipeChildProg burns some cycles, then writes 8 bytes into the
// inherited pipe write end (fd 4).
func pipeChildProg(b *asm.Builder) {
	b.Bytes("msg", []byte("pingpong"))
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R7, 20000)
	b.Label("spin")
	b.SubI(isa.R7, 1)
	b.CmpI(isa.R7, 0)
	b.Jg("spin")
	b.MovRI(isa.R1, 4)
	b.LeaData(isa.R2, "msg")
	b.MovRI(isa.R3, 8)
	ulib.Syscall(b, libos.SysWrite)
	ulib.Exit(b, 0)
}

// cpuBoundProg spins long enough to cross several cycle slices.
func cpuBoundProg(b *asm.Builder) {
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R7, 300000)
	b.Label("spin")
	b.SubI(isa.R7, 1)
	b.CmpI(isa.R7, 0)
	b.Jg("spin")
	ulib.Exit(b, 0)
}

// TestOversubscribedSIPs is the M:N acceptance test: with a 4-hart pool,
// 64 concurrently live SIPs — CPU-bound, futex-blocked and pipe-blocked
// in equal measure — all run to completion. Under the old
// SIP-per-thread model this configuration failed at spawn #5 with
// ErrNoThreads, and any blocked SIP held a hart hostage.
func TestOversubscribedSIPs(t *testing.T) {
	const (
		harts      = 4
		futexSIPs  = 16
		pipePairs  = 16 // parent + child each
		cpuSIPs    = 16
		cycleSlice = 1 << 16 // small slices: force real multiplexing
	)
	sys, tc := bootSmall(t, 72, harts, cycleSlice, nil)
	defer sys.OS.Shutdown()

	for path, prog := range map[string]func(*asm.Builder){
		"/bin/futexwait": futexWaiterProg,
		"/bin/pipepar":   pipeParentProg,
		"/bin/pipechild": pipeChildProg,
		"/bin/cpu":       cpuBoundProg,
	} {
		if err := sys.Install(tc, path, path, buildProg(t, prog)); err != nil {
			t.Fatal(err)
		}
	}

	var procs []*libos.Proc
	outs := make([]*syncBuffer, futexSIPs)
	// Futex waiters first: they publish their futex address on stdout.
	for i := 0; i < futexSIPs; i++ {
		outs[i] = &syncBuffer{}
		p, err := sys.OS.Spawn("/bin/futexwait", nil, libos.SpawnOpt{Stdout: libos.NewWriterFile(outs[i])})
		if err != nil {
			t.Fatalf("futex spawn %d: %v", i, err)
		}
		procs = append(procs, p)
	}
	for i := 0; i < pipePairs; i++ {
		p, err := sys.OS.Spawn("/bin/pipepar", nil, libos.SpawnOpt{})
		if err != nil {
			t.Fatalf("pipe spawn %d: %v", i, err)
		}
		procs = append(procs, p)
	}
	for i := 0; i < cpuSIPs; i++ {
		p, err := sys.OS.Spawn("/bin/cpu", nil, libos.SpawnOpt{})
		if err != nil {
			t.Fatalf("cpu spawn %d: %v", i, err)
		}
		procs = append(procs, p)
	}

	// Wake every futex waiter. A wake can race the waiter's
	// registration, so retry until one is consumed.
	for i := 0; i < futexSIPs; i++ {
		var addr uint64
		deadline := time.Now().Add(30 * time.Second)
		for {
			if snap := outs[i].snapshot(); len(snap) >= 8 {
				addr = binary.LittleEndian.Uint64(snap)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("futex waiter %d never published its address", i)
			}
			time.Sleep(time.Millisecond)
		}
		for sys.Host.FutexWake(addr, 1) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("futex waiter %d never registered", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	for i, p := range procs {
		status := waitTimeout(t, p, 60*time.Second, fmt.Sprintf("proc %d (pid %d)", i, p.PID()))
		if status != 0 {
			t.Fatalf("proc %d (pid %d): status %d", i, p.PID(), status)
		}
	}

	snap := sys.OS.Sched().Snapshot()
	if snap.Parks == 0 {
		t.Fatal("no parks recorded: blocking syscalls still hold harts")
	}
	t.Logf("sched: tasks=%d slices=%d parks=%d steals=%d preempts=%d util=%.1f%%",
		snap.Tasks, snap.Slices, snap.Parks, snap.Steals, snap.Preempts, 100*snap.Utilization())
}

func waitTimeout(t *testing.T, p *libos.Proc, d time.Duration, what string) int {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- p.Wait() }()
	select {
	case st := <-done:
		return st
	case <-time.After(d):
		t.Fatalf("%s did not exit within %v", what, d)
		return -1
	}
}

// TestKillLatencyAtBlockBoundary: with an effectively unbounded cycle
// slice, killing a CPU-bound SIP must still take effect promptly — the
// preempt flag stops the interpreter at the next block boundary instead
// of waiting out the slice. Under the pre-preemption design this test
// would spin for 2^40 cycles.
func TestKillLatencyAtBlockBoundary(t *testing.T) {
	sys, tc := bootSmall(t, 4, 2, 1<<40, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.Label("forever")
		b.Jmp("forever")
	})
	if err := sys.Install(tc, "/bin/forever", "forever", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/forever", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	// Let it get onto a hart and into the loop.
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if err := sys.OS.Kill(p.PID(), libos.SIGTERM); err != nil {
		t.Fatal(err)
	}
	status := waitTimeout(t, p, 10*time.Second, "killed SIP")
	if status != 128+libos.SIGTERM {
		t.Fatalf("status = %d, want %d", status, 128+libos.SIGTERM)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("kill took %v with a 2^40-cycle slice", elapsed)
	}
}

// TestParentExitsBeforeChild: an orphaned child is reparented, finishes
// on its own, and leaves no zombie behind (nobody is left to reap it).
func TestParentExitsBeforeChild(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSmall(t, 4, 2, 0, &out)
	defer sys.OS.Shutdown()

	child := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.MovRI(isa.R7, 100000)
		b.Label("spin")
		b.SubI(isa.R7, 1)
		b.CmpI(isa.R7, 0)
		b.Jg("spin")
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/slowchild", "slowchild", child); err != nil {
		t.Fatal(err)
	}
	parent := buildProg(t, func(b *asm.Builder) {
		b.String("cpath", "/bin/slowchild")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.SpawnPath(b, "cpath", 14, "", 0)
		ulib.Exit(b, 0) // exit immediately, not waiting for the child
	})
	if err := sys.Install(tc, "/bin/deadbeat", "deadbeat", parent); err != nil {
		t.Fatal(err)
	}

	p, err := sys.OS.Spawn("/bin/deadbeat", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	parentPID := p.PID()
	childPID := parentPID + 1 // pids are serial; nothing else spawns here
	if status := p.Wait(); status != 0 {
		t.Fatalf("parent status = %d", status)
	}

	// The child must finish and be auto-reaped: its /proc entry
	// disappears instead of lingering as a zombie.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := sys.OS.VFS().Stat(fmt.Sprintf("/proc/%d/status", childPID))
		if errors.Is(err, fs.ErrNotExist) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned child %d still present (zombie leak): stat err = %v", childPID, err)
		}
		time.Sleep(time.Millisecond)
	}
	// The parent (spawned by the host, ppid 0) must not linger either.
	if _, err := sys.OS.VFS().Stat(fmt.Sprintf("/proc/%d/status", parentPID)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("exited parent %d still present: err = %v", parentPID, err)
	}
}

// TestDoubleWaitReturnsECHILD: the second wait4 on an already-reaped
// child fails with ECHILD.
func TestDoubleWaitReturnsECHILD(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSmall(t, 4, 2, 0, &out)
	defer sys.OS.Shutdown()

	child := buildProg(t, helloProgram("", 0))
	if err := sys.Install(tc, "/bin/quick", "quick", child); err != nil {
		t.Fatal(err)
	}
	parent := buildProg(t, func(b *asm.Builder) {
		b.String("cpath", "/bin/quick")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.SpawnPath(b, "cpath", 10, "", 0)
		b.MovRR(isa.R6, isa.R0)
		// First wait4 reaps the child and returns its pid.
		ulib.Wait4(b, isa.R6)
		b.Cmp(isa.R0, isa.R6)
		b.Jne("bad")
		// Second wait4 on the same pid: -ECHILD.
		ulib.Wait4(b, isa.R6)
		b.CmpI(isa.R0, -libos.ECHILD)
		b.Jne("bad")
		ulib.Exit(b, 0)
		b.Label("bad")
		b.Nop()
		ulib.Exit(b, 1)
	})
	if err := sys.Install(tc, "/bin/doublewait", "doublewait", parent); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/doublewait", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := waitTimeout(t, p, 30*time.Second, "doublewait"); status != 0 {
		t.Fatalf("status = %d, want 0", status)
	}
}

// TestWaitOnParkedChild: the parent parks in wait4 on a child that is
// itself parked in a futex wait; killing the child unblocks both, and
// the parent observes the child's termination status.
func TestWaitOnParkedChild(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSmall(t, 4, 2, 0, &out)
	defer sys.OS.Shutdown()

	child := buildProg(t, func(b *asm.Builder) {
		b.Zero("fut", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		// futex(WAIT, fut, 0): parks forever until killed.
		b.MovRI(isa.R1, libos.FutexWait)
		b.LeaData(isa.R2, "fut")
		b.MovRI(isa.R3, 0)
		ulib.Syscall(b, libos.SysFutex)
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/futforever", "futforever", child); err != nil {
		t.Fatal(err)
	}
	parent := buildProg(t, func(b *asm.Builder) {
		b.String("cpath", "/bin/futforever")
		b.Zero("status", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.SpawnPath(b, "cpath", 15, "", 0)
		b.MovRR(isa.R1, isa.R0)
		b.LeaData(isa.R2, "status")
		ulib.Syscall(b, libos.SysWait4)
		// Exit with the reaped child's status (128+SIGTERM = 143).
		b.LoadData(isa.R6, "status")
		ulib.ExitR(b, isa.R6)
	})
	if err := sys.Install(tc, "/bin/waiter", "waiter", parent); err != nil {
		t.Fatal(err)
	}

	p, err := sys.OS.Spawn("/bin/waiter", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	childPID := p.PID() + 1
	// Wait until the child exists and is parked deep in futex wait, then
	// kill it. Kill is safe regardless of the park state, so a fixed
	// short delay is enough to make the interesting interleaving
	// overwhelmingly likely without affecting correctness.
	deadline := time.Now().Add(30 * time.Second)
	for sys.OS.Kill(childPID, libos.SIGTERM) != nil {
		if time.Now().After(deadline) {
			t.Fatalf("child %d never appeared", childPID)
		}
		time.Sleep(time.Millisecond)
	}
	if status := waitTimeout(t, p, 30*time.Second, "waiter parent"); status != 128+libos.SIGTERM {
		t.Fatalf("parent status = %d, want %d (child's termination status)", status, 128+libos.SIGTERM)
	}
}
