package libos

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/ring"
	"repro/internal/timerwheel"
)

// fileKind discriminates open file descriptions.
type fileKind uint8

const (
	kindNode fileKind = iota // VFS node (regular file or device)
	kindPipeR
	kindPipeW
	kindSock     // connected socket (host Conn)
	kindListener // listening socket
	kindEpoll    // epoll interest set (readiness multiplexer)
)

// OpenFile is an open file description, shared between fds (dup) and
// across spawn (a child inherits its parent's table, sharing offsets —
// the cheap fd inheritance of §6).
type OpenFile struct {
	mu     sync.Mutex
	refs   int
	kind   fileKind
	flags  fs.OpenFlag
	node   fs.Node
	offset int64
	pipe   *pipeBuf
	conn   *hostos.Conn
	lis    *hostos.Listener
	port   uint16
	ep     *epollSet
	// nonblock is the O_NONBLOCK status flag (fcntl F_SETFL). Like the
	// rest of the description it is shared across dup and spawn
	// inheritance.
	nonblock atomic.Bool

	// Idle reaping (accepted sockets under Config.IdleTimeout):
	// lastActive is the UnixNano of the last data-plane I/O, reap the
	// wheel deadline that closes the connection when it idles out, and
	// reapStop latches teardown so a fire racing the close cannot
	// re-arm. reapTimeout is written once before the fd is installed
	// (happens-before via the FD table) and read-only after.
	lastActive  atomic.Int64
	reap        *timerwheel.Timer // guarded by mu
	reapStop    atomic.Bool
	reapTimeout time.Duration
}

func newNodeFile(n fs.Node, flags fs.OpenFlag) *OpenFile {
	of := &OpenFile{refs: 1, kind: kindNode, node: n, flags: flags}
	if flags&fs.OAppend != 0 {
		of.offset = n.Size()
	}
	return of
}

// Ref takes an additional reference on the open file description (exported
// for the baseline kernels, which share this fd layer).
func (of *OpenFile) Ref() { of.ref() }

// Unref drops a reference, closing the underlying object at zero.
func (of *OpenFile) Unref() { of.unref() }

// NewDiscardFile returns a description that discards writes and reads EOF.
func NewDiscardFile() *OpenFile {
	return newNodeFile(&discardNode{}, fs.ORdWr)
}

type discardNode struct{}

func (discardNode) ReadAt([]byte, int64) (int, error)      { return 0, io.EOF }
func (discardNode) WriteAt(p []byte, _ int64) (int, error) { return len(p), nil }
func (discardNode) Size() int64                            { return 0 }
func (discardNode) Close() error                           { return nil }

func (of *OpenFile) ref() {
	of.mu.Lock()
	of.refs++
	of.mu.Unlock()
}

func (of *OpenFile) unref() {
	of.mu.Lock()
	of.refs--
	last := of.refs == 0
	of.mu.Unlock()
	if !last {
		return
	}
	switch of.kind {
	case kindNode:
		_ = of.node.Close()
	case kindPipeR:
		of.pipe.closeRead()
	case kindPipeW:
		of.pipe.closeWrite()
	case kindSock:
		of.reapStop.Store(true)
		of.mu.Lock()
		reap := of.reap
		of.mu.Unlock()
		if reap != nil {
			reap.Cancel()
		}
		if of.conn != nil {
			of.conn.Close()
		}
	case kindListener:
		if of.lis != nil {
			of.lis.Close()
		}
	case kindEpoll:
		of.ep.close()
	}
}

// touch stamps the description as active (data-plane I/O happened);
// the idle reaper compares this against its deadline before closing.
// Gated on reapTimeout so un-reaped sockets pay nothing.
func (of *OpenFile) touch() {
	if of.reapTimeout > 0 {
		of.lastActive.Store(time.Now().UnixNano())
	}
}

// armIdleReap starts the wheel-driven idle reaper for an accepted
// socket: one wheel entry per connection, re-armed lazily. The fired
// callback does NOT close an active connection — it measures the real
// idle span and pushes the deadline out by what remains, so a busy
// connection costs one O(1) re-arm per timeout period rather than one
// per I/O (the kernel-timer trick that makes keep-alive scale).
func (of *OpenFile) armIdleReap(w *timerwheel.Wheel, d time.Duration) {
	of.reapTimeout = d
	of.lastActive.Store(time.Now().UnixNano())
	of.mu.Lock()
	of.reap = w.Arm(d, of.reapCheck)
	of.mu.Unlock()
}

// reapCheck runs on wheel expiry (outside the wheel lock): close the
// connection if it has truly idled out, otherwise re-arm for the
// remaining window. reapStop closes the fire-vs-close race — a stale
// fire after unref must not re-arm a dead description's timer.
func (of *OpenFile) reapCheck() {
	if of.reapStop.Load() {
		return
	}
	idle := time.Since(time.Unix(0, of.lastActive.Load()))
	of.mu.Lock()
	t, conn := of.reap, of.conn
	of.mu.Unlock()
	if t == nil || conn == nil {
		return
	}
	if idle < of.reapTimeout {
		t.Reset(of.reapTimeout - idle)
		return
	}
	// Idled out: close both directions. The guest's next read sees
	// EOF/HUP and its write sees EPIPE; parked waiters are woken by the
	// close's readiness broadcast.
	conn.Close()
	netStats.reaps.Add(1)
}

// SetListenBacklog implements sysdispatch.Backlogger: listen(2) plumbs
// the guest's backlog argument through to the host listener (clamped by
// hostos.BacklogCap). A no-op on descriptions that are not listeners
// yet — the guest must bind first, as our listen handler runs after
// sysBind has converted the socket.
func (of *OpenFile) SetListenBacklog(n int) {
	of.mu.Lock()
	lis := of.lis
	kind := of.kind
	of.mu.Unlock()
	if kind == kindListener && lis != nil {
		lis.SetBacklog(n)
	}
}

// Readiness reports the description's current level-triggered poll
// state, mapped to the user-visible Poll* bits.
func (of *OpenFile) Readiness() uint32 {
	switch of.kind {
	case kindNode:
		// Regular files and devices never block.
		return PollIn | PollOut
	case kindPipeR, kindPipeW:
		return of.pipe.readiness(of.kind == kindPipeR)
	case kindSock:
		of.mu.Lock()
		conn := of.conn
		of.mu.Unlock()
		if conn == nil {
			return PollNval
		}
		return mapReady(conn.Readiness())
	case kindListener:
		return mapReady(of.lis.Readiness())
	case kindEpoll:
		// Nested epoll is not supported; report NVAL so a poll over an
		// epoll fd fails fast instead of parking unwakeably.
		return PollNval
	}
	return 0
}

// SubscribeReady registers a persistent callback fired whenever the
// description's readiness may have changed for the requested events,
// returning a cancel function. Sockets subscribe per direction: an
// EPOLLIN-only watcher is not woken by the peer draining its send
// buffer. ok=false reports a description that cannot be waited on
// (regular files, which are always ready, epoll sets — nesting is not
// supported — and unconnected sockets).
func (of *OpenFile) SubscribeReady(fn func(), events uint32) (cancel func(), ok bool) {
	switch of.kind {
	case kindPipeR, kindPipeW:
		return of.pipe.subscribe(fn), true
	case kindSock:
		of.mu.Lock()
		conn := of.conn
		of.mu.Unlock()
		if conn == nil {
			return nil, false
		}
		read := events&(PollIn|PollHup) != 0
		write := events&(PollOut|PollErr) != 0
		if !read && !write {
			read, write = true, true
		}
		return conn.SubscribeDir(read, write, fn), true
	case kindListener:
		return of.lis.Subscribe(fn), true
	}
	return nil, false
}

// mapReady translates host-level readiness into the user ABI's bits.
func mapReady(r hostos.Ready) uint32 {
	var out uint32
	if r&hostos.ReadyIn != 0 {
		out |= PollIn
	}
	if r&hostos.ReadyOut != 0 {
		out |= PollOut
	}
	if r&hostos.ReadyHup != 0 {
		out |= PollHup
	}
	if r&hostos.ReadyErr != 0 {
		out |= PollErr
	}
	return out
}

// Read reads from the description, advancing the offset for seekable
// files and blocking for streams.
func (of *OpenFile) Read(p []byte) (int, error) {
	switch of.kind {
	case kindNode:
		of.mu.Lock()
		off := of.offset
		of.mu.Unlock()
		n, err := of.node.ReadAt(p, off)
		of.mu.Lock()
		of.offset = off + int64(n)
		of.mu.Unlock()
		if n == 0 && err == nil {
			return 0, io.EOF
		}
		return n, err
	case kindPipeR:
		return of.pipe.read(p)
	case kindSock:
		return of.conn.Read(p)
	}
	return 0, errors.New("libos: fd not readable")
}

// Write writes to the description.
func (of *OpenFile) Write(p []byte) (int, error) {
	switch of.kind {
	case kindNode:
		of.mu.Lock()
		off := of.offset
		of.mu.Unlock()
		n, err := of.node.WriteAt(p, off)
		of.mu.Lock()
		of.offset = off + int64(n)
		of.mu.Unlock()
		return n, err
	case kindPipeW:
		return of.pipe.write(p)
	case kindSock:
		return of.conn.Write(p)
	}
	return 0, errors.New("libos: fd not writable")
}

// Seek repositions a seekable description.
func (of *OpenFile) Seek(off int64, whence int) (int64, error) {
	if of.kind != kindNode {
		return 0, errors.New("libos: not seekable")
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	switch whence {
	case SeekSet:
		of.offset = off
	case SeekCur:
		of.offset += off
	case SeekEnd:
		of.offset = of.node.Size() + off
	default:
		return 0, errors.New("libos: bad whence")
	}
	if of.offset < 0 {
		of.offset = 0
	}
	return of.offset, nil
}

// consoleFile opens /dev/console for a SIP's default stdio.
func (o *Occlum) consoleFile() *OpenFile {
	n, err := o.vfs.Open("/dev/console", fs.ORdWr)
	if err != nil {
		n, _ = o.vfs.Open("/dev/null", fs.ORdWr)
	}
	return newNodeFile(n, fs.ORdWr)
}

// NewPipe creates a pipe pair in the LibOS — the SIP-to-SIP IPC channel
// that is a plain in-enclave memory copy, no encryption involved
// (Table 1).
func NewPipe() (r, w *OpenFile) {
	pb := newPipeBuf(64 << 10)
	r = &OpenFile{refs: 1, kind: kindPipeR, pipe: pb}
	w = &OpenFile{refs: 1, kind: kindPipeW, pipe: pb}
	return
}

// OpenNodeFile wraps a VFS node for host-side stdio plumbing in tests and
// benches.
func OpenNodeFile(n fs.Node, flags fs.OpenFlag) *OpenFile { return newNodeFile(n, flags) }

// NewWriterFile builds an open file description that appends every write
// to w — host-side plumbing for capturing a SIP's stdout in tests,
// examples and benchmarks.
func NewWriterFile(w io.Writer) *OpenFile {
	return newNodeFile(&writerNode{w: w}, fs.OWrOnly)
}

type writerNode struct {
	mu sync.Mutex
	w  io.Writer
}

func (n *writerNode) ReadAt([]byte, int64) (int, error) { return 0, io.EOF }
func (n *writerNode) WriteAt(p []byte, _ int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.w.Write(p)
}
func (n *writerNode) Size() int64  { return 0 }
func (n *writerNode) Close() error { return nil }

// NewSocketFile creates an unconnected socket description (shared with
// the baseline kernels).
func NewSocketFile() *OpenFile { return &OpenFile{refs: 1, kind: kindSock} }

// BindHost turns a socket into a listener on the host loopback network.
func (of *OpenFile) BindHost(h *hostos.Host, port uint16) error {
	if of.kind != kindSock {
		return errors.New("libos: not a socket")
	}
	lis, err := h.Listen(port)
	if err != nil {
		return err
	}
	of.mu.Lock()
	of.kind = kindListener
	of.lis = lis
	of.port = port
	of.mu.Unlock()
	return nil
}

// AcceptHost blocks for an inbound connection and wraps it as a new
// description.
func (of *OpenFile) AcceptHost() (*OpenFile, error) {
	if of.kind != kindListener {
		return nil, errors.New("libos: not a listener")
	}
	conn, err := of.lis.Accept()
	if err != nil {
		return nil, err
	}
	return &OpenFile{refs: 1, kind: kindSock, conn: conn}, nil
}

// ConnectHost dials a host loopback port.
func (of *OpenFile) ConnectHost(h *hostos.Host, port uint16) error {
	if of.kind != kindSock {
		return errors.New("libos: not a socket")
	}
	conn, err := h.Dial(port)
	if err != nil {
		return err
	}
	of.mu.Lock()
	of.conn = conn
	of.mu.Unlock()
	return nil
}

// pipeBuf is the shared ring behind a pipe. It serves two waiting
// styles at once: the baselines' goroutine-per-process kernels block on
// the condvar, while SIPs under the M:N scheduler use the try* calls,
// registering a one-shot wake callback instead of blocking a hart. Every
// state change broadcasts to both: woken parked SIPs retry and
// re-register if they lose the race, so the callback lists need no
// precise accounting (a stale callback is a spurious unpark, which the
// retry protocol absorbs).
//
// Storage is a fixed-capacity ring.Ring, and the ring's borrow API is
// surfaced through borrowOut/borrowIn: splice moves bytes between a
// pipe and a socket by peeking one ring and reserving in the other, and
// the vectored syscalls write guest loans straight into the ring — one
// copy, no staging buffer. Both run their callback under pb.mu, which
// extends the documented lock order: pb.mu → stream.mu (the callback
// calls Conn.TryRead/TryWrite) is taken by splice, and nothing anywhere
// takes stream.mu → pb.mu — streams know nothing about pipes.
type pipeBuf struct {
	mu       sync.Mutex
	cond     *sync.Cond
	rb       *ring.Ring
	rClosed  bool
	wClosed  bool
	rWaiters []func() // parked readers, woken by writes and closes
	wWaiters []func() // parked writers, woken by reads and closes
	// watch holds persistent readiness subscriptions (poll/epoll
	// interest); unlike the waiter lists they survive wakes and fire on
	// every state change until cancelled.
	watch   map[int]func()
	watchID int
}

func newPipeBuf(capacity int) *pipeBuf {
	pb := &pipeBuf{rb: ring.New(capacity)}
	pb.cond = sync.NewCond(&pb.mu)
	return pb
}

// wakeReaders/wakeWriters run under pb.mu; the callbacks only flip
// scheduler or epoll-set state (Unpark, epollSet.markReady), neither of
// which re-enters the pipe. The lock order pb.mu → ep.mu is safe for
// the same reason hostos documents for streams: epoll scans query
// readiness only AFTER dropping ep.mu (epollSet.popCandidates), so
// nothing ever takes pb.mu while holding ep.mu. Any future epoll-side
// change that calls into a pipe under ep.mu inverts this and deadlocks.
func (pb *pipeBuf) wakeReaders() {
	pb.cond.Broadcast()
	for _, w := range pb.rWaiters {
		w()
	}
	pb.rWaiters = nil
	for _, w := range pb.watch {
		w()
	}
}

func (pb *pipeBuf) wakeWriters() {
	pb.cond.Broadcast()
	for _, w := range pb.wWaiters {
		w()
	}
	pb.wWaiters = nil
	for _, w := range pb.watch {
		w()
	}
}

// subscribe registers a persistent readiness watcher.
func (pb *pipeBuf) subscribe(fn func()) (cancel func()) {
	pb.mu.Lock()
	if pb.watch == nil {
		pb.watch = make(map[int]func())
	}
	id := pb.watchID
	pb.watchID++
	pb.watch[id] = fn
	pb.mu.Unlock()
	return func() {
		pb.mu.Lock()
		delete(pb.watch, id)
		pb.mu.Unlock()
	}
}

// readiness computes the poll state of one pipe end.
func (pb *pipeBuf) readiness(readEnd bool) uint32 {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	var r uint32
	if readEnd {
		if pb.rb.Len() > 0 || pb.wClosed {
			r |= PollIn
		}
		if pb.wClosed {
			r |= PollHup
		}
		return r
	}
	if pb.rb.Free() > 0 || pb.rClosed {
		r |= PollOut
	}
	if pb.rClosed {
		r |= PollErr
	}
	return r
}

func (pb *pipeBuf) read(p []byte) (int, error) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	for pb.rb.Len() == 0 && !pb.wClosed {
		pb.cond.Wait()
	}
	if pb.rb.Len() == 0 {
		return 0, io.EOF
	}
	n := pb.rb.Read(p)
	pb.wakeWriters()
	return n, nil
}

// tryRead is the non-blocking read for parking callers. When the pipe is
// empty and writers remain, it registers wait and reports parked; the
// emptiness check and the registration share one critical section, so no
// write can slip between them unseen.
func (pb *pipeBuf) tryRead(p []byte, wait func()) (n int, eof, parked bool) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.rb.Len() == 0 {
		if pb.wClosed {
			return 0, true, false
		}
		if wait != nil {
			pb.rWaiters = append(pb.rWaiters, wait)
		}
		return 0, false, true
	}
	n = pb.rb.Read(p)
	pb.wakeWriters()
	return n, false, false
}

func (pb *pipeBuf) write(p []byte) (int, error) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	total := 0
	for len(p) > 0 {
		for pb.rb.Free() == 0 && !pb.rClosed {
			pb.cond.Wait()
		}
		if pb.rClosed {
			return total, errors.New("libos: broken pipe")
		}
		n := pb.rb.Write(p)
		p = p[n:]
		total += n
		pb.wakeReaders()
	}
	return total, nil
}

// tryWrite copies as much of p as fits into the ring. If anything is
// left over it registers wait and the caller parks, resuming from its
// recorded progress — so a large write drains in chunks without ever
// blocking a hart or duplicating bytes.
func (pb *pipeBuf) tryWrite(p []byte, wait func()) (n int, closed bool) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.rClosed {
		return 0, true
	}
	n = pb.rb.Write(p)
	if n > 0 {
		pb.wakeReaders()
	}
	if n < len(p) && wait != nil {
		pb.wWaiters = append(pb.wWaiters, wait)
	}
	return n, false
}

// borrowOut lends the pipe's queued bytes to sink without copying them
// out: sink is called (under pb.mu) with successive borrowed runs from
// the ring and returns how many bytes it took; taken bytes are
// consumed. It stops when the ring drains, sink stalls (takes less
// than a full run), or max bytes have moved. When the pipe is empty it
// reports eof (write end closed) or registers wait and reports parked
// (nil wait: pure probe, the O_NONBLOCK path). This is the pipe→socket
// splice primitive: sink feeds a Conn's ring, so no guest memory and no
// staging buffer ever sees the bytes.
func (pb *pipeBuf) borrowOut(max int, sink func([]byte) int, wait func()) (n int, eof, parked bool) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.rb.Len() == 0 {
		if pb.wClosed {
			return 0, true, false
		}
		if wait != nil {
			pb.rWaiters = append(pb.rWaiters, wait)
		}
		return 0, false, true
	}
	for n < max {
		run := pb.rb.Peek(max - n)
		if run == nil {
			break
		}
		took := sink(run)
		pb.rb.Consume(took)
		n += took
		if took < len(run) {
			break
		}
	}
	if n > 0 {
		pb.wakeWriters()
	}
	return n, false, false
}

// borrowIn lends the pipe's free space to source without staging:
// source is called (under pb.mu) with successive reserved runs and
// returns how many bytes it produced; produced bytes are committed. It
// stops when the ring fills, source stalls, or max bytes have moved.
// When the ring is full it registers wait and reports parked (nil
// wait: pure probe). closed reports a broken pipe (read end gone) —
// checked first, like tryWrite. This is both the socket→pipe splice
// primitive (source drains a Conn's ring) and the writev-to-pipe path
// (source copies from a guest loan — the one permitted copy).
func (pb *pipeBuf) borrowIn(max int, source func([]byte) int, wait func()) (n int, closed, parked bool) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.rClosed {
		return 0, true, false
	}
	if pb.rb.Free() == 0 {
		if wait != nil {
			pb.wWaiters = append(pb.wWaiters, wait)
		}
		return 0, false, true
	}
	for n < max {
		run := pb.rb.Reserve(max - n)
		if run == nil {
			break
		}
		got := source(run)
		pb.rb.Commit(got)
		n += got
		if got < len(run) {
			break
		}
	}
	if n > 0 {
		pb.wakeReaders()
	}
	return n, false, false
}

func (pb *pipeBuf) closeRead() {
	pb.mu.Lock()
	pb.rClosed = true
	pb.wakeReaders()
	pb.wakeWriters()
	pb.mu.Unlock()
}

func (pb *pipeBuf) closeWrite() {
	pb.mu.Lock()
	pb.wClosed = true
	pb.wakeReaders()
	pb.wakeWriters()
	pb.mu.Unlock()
}
