package libos_test

import (
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// Readiness edge-case tests: each drives a real SIP through the new
// poll/epoll/fcntl syscalls and reports failures through distinct exit
// codes, so a red test names the exact broken transition.

func dialSIP(t *testing.T, sys *core.System, port uint16) *hostos.Conn {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		conn, err := sys.Host.Dial(port)
		if err == nil {
			return conn
		}
		if time.Now().After(deadline) {
			t.Fatalf("port %d never started listening", port)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPollListenerPendingAccept: poll on a listening socket parks until
// a connection arrives, reports POLLIN, and the accept then succeeds
// without blocking.
func TestPollListenerPendingAccept(t *testing.T) {
	const port = 7710
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("pfd", 24)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		// pfd = {fd: R6, events: POLLIN, revents: 0}
		b.StoreData("pfd", isa.R6)
		b.LeaData(isa.R8, "pfd")
		b.MovRI(isa.R7, libos.PollIn)
		b.Store(isa.Mem(isa.R8, 8), isa.R7)
		// poll(pfd, 1, -1): parks until the host dials.
		ulib.Poll(b, "pfd", 1, -1)
		b.CmpI(isa.R0, 1)
		b.Jne("badret")
		b.LeaData(isa.R8, "pfd")
		b.Load(isa.R7, isa.Mem(isa.R8, 16))
		b.AndI(isa.R7, libos.PollIn)
		b.CmpI(isa.R7, 0)
		b.Je("badrev")
		// The promised accept must succeed immediately.
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		ulib.Exit(b, 0)
		b.Label("badret")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badrev")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 3)
	})
	if err := sys.Install(tc, "/bin/polllis", "polllis", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/polllis", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	if status := waitTimeout(t, p, 30*time.Second, "poll-listener SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
}

// TestEpollWaitRacesClose: a SIP parked in epoll_wait on a connection
// must be woken — with HUP readiness and a clean EOF — when the peer
// closes concurrently, whichever side wins the race.
func TestEpollWaitRacesClose(t *testing.T) {
	const port = 7711
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("evbuf", 4*16)
		b.Zero("buf", 64)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept) // parks until the host dials
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		b.MovRR(isa.R6, isa.R0) // conn fd
		ulib.EpCreate(b)
		b.MovRR(isa.R10, isa.R0)
		ulib.EpCtl(b, isa.R10, libos.EpCtlAdd, isa.R6, libos.PollIn)
		// Park in epoll_wait; the host's close must wake us.
		ulib.EpWait(b, isa.R10, "evbuf", 4, -1)
		b.CmpI(isa.R0, 1)
		b.Jne("badret")
		b.LeaData(isa.R8, "evbuf")
		b.Load(isa.R7, isa.Mem(isa.R8, 0)) // entry.fd
		b.Cmp(isa.R7, isa.R6)
		b.Jne("badfd")
		// The wake means EOF: recv must return 0, not block.
		ulib.RecvSym(b, isa.R6, "buf", 64)
		b.CmpI(isa.R0, 0)
		b.Jne("badeof")
		ulib.Exit(b, 0)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badret")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badfd")
		b.Nop()
		ulib.Exit(b, 3)
		b.Label("badeof")
		b.Nop()
		ulib.Exit(b, 4)
	})
	if err := sys.Install(tc, "/bin/epclose", "epclose", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/epclose", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	// Close immediately: races the SIP's epoll setup. Level-triggered
	// readiness makes either interleaving equivalent.
	conn.Close()
	if status := waitTimeout(t, p, 30*time.Second, "epoll-close SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
}

// TestEpollWakesOnPeerShutdownRD: POLLERR is reported regardless of the
// interest mask, and it lives on the write stream — so an EPOLLIN-only
// item must still be woken by the peer's pure shutdown(RD) (the close
// edge of the unsubscribed direction must not be filtered with its data
// edges).
func TestEpollWakesOnPeerShutdownRD(t *testing.T) {
	const port = 7717
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("evbuf", 4*16)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		b.MovRR(isa.R6, isa.R0)
		ulib.EpCreate(b)
		b.MovRR(isa.R10, isa.R0)
		ulib.EpCtl(b, isa.R10, libos.EpCtlAdd, isa.R6, libos.PollIn)
		// Parks; the peer will only shutdown(RD) — no data, no EOF.
		ulib.EpWait(b, isa.R10, "evbuf", 4, -1)
		b.CmpI(isa.R0, 1)
		b.Jne("badwait")
		b.LeaData(isa.R8, "evbuf")
		b.Load(isa.R7, isa.Mem(isa.R8, 8)) // entry.revents
		b.AndI(isa.R7, libos.PollErr)
		b.CmpI(isa.R7, 0)
		b.Je("badrev")
		ulib.Exit(b, 0)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badwait")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badrev")
		b.Nop()
		ulib.Exit(b, 3)
	})
	if err := sys.Install(tc, "/bin/epshutrd", "epshutrd", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/epshutrd", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	// Give the SIP a moment to park, then shut down only our read
	// direction; level-triggered verification makes either interleaving
	// equivalent, but the late close exercises the wakeup path.
	time.Sleep(10 * time.Millisecond)
	conn.CloseRead()
	if status := waitTimeout(t, p, 30*time.Second, "shutdown-RD SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
}

// TestLevelTriggeredRearm: after a partial read, epoll_wait must report
// the fd ready again with no new edge (level-triggered re-arm), and a
// zero-timeout wait after the full drain must report nothing.
func TestLevelTriggeredRearm(t *testing.T) {
	const (
		port  = 7712
		total = 64
		chunk = 16
	)
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("evbuf", 4*16)
		b.Zero("buf", chunk)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		b.MovRR(isa.R6, isa.R0)
		ulib.EpCreate(b)
		b.MovRR(isa.R10, isa.R0)
		ulib.EpCtl(b, isa.R10, libos.EpCtlAdd, isa.R6, libos.PollIn)
		// Read the 64 bytes in 16-byte nibbles; every iteration's
		// epoll_wait must see the leftover data without a fresh edge.
		b.MovRI(isa.R5, 0) // total received
		b.Label("ltloop")
		b.CmpI(isa.R5, total)
		b.Jge("drained")
		ulib.EpWait(b, isa.R10, "evbuf", 4, -1)
		b.CmpI(isa.R0, 1)
		b.Jne("badwait")
		ulib.RecvSym(b, isa.R6, "buf", chunk)
		b.CmpI(isa.R0, 0)
		b.Jle("badrecv")
		b.Add(isa.R5, isa.R0)
		b.Jmp("ltloop")
		b.Label("drained")
		// Fully drained: a zero-timeout wait is a pure probe and must
		// report nothing (and not park).
		ulib.EpWait(b, isa.R10, "evbuf", 4, 0)
		b.CmpI(isa.R0, 0)
		b.Jne("badprobe")
		ulib.Exit(b, 0)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badwait")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badrecv")
		b.Nop()
		ulib.Exit(b, 3)
		b.Label("badprobe")
		b.Nop()
		ulib.Exit(b, 4)
	})
	if err := sys.Install(tc, "/bin/ltrearm", "ltrearm", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/ltrearm", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	if _, err := conn.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	if status := waitTimeout(t, p, 30*time.Second, "level-triggered SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
}

// TestEpCtlModRetargetsDirection: epoll subscriptions are filtered by
// the interest mask, so EpCtlMod from EPOLLIN to EPOLLOUT must
// re-subscribe the write direction — with the stale read-only
// registration, the full→space edge when the peer drains would never
// wake the parked epoll_wait.
func TestEpCtlModRetargetsDirection(t *testing.T) {
	const port = 7716
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("evbuf", 4*16)
		b.Zero("blob", 64<<10)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		b.MovRR(isa.R6, isa.R0)
		// Fill the peer's 256 KB receive buffer with nonblocking sends.
		ulib.FcntlR(b, isa.R6, libos.FSetFl, libos.ONonblock)
		b.Label("fill")
		ulib.SendSym(b, isa.R6, "blob", 64<<10)
		b.CmpI(isa.R0, 0)
		b.Jge("fill") // until EAGAIN: buffer full, fd not writable
		// Watch for readability first, then retarget to writability.
		ulib.EpCreate(b)
		b.MovRR(isa.R10, isa.R0)
		ulib.EpCtl(b, isa.R10, libos.EpCtlAdd, isa.R6, libos.PollIn)
		ulib.EpCtl(b, isa.R10, libos.EpCtlMod, isa.R6, libos.PollOut)
		// Parks until the host drains; a lost write-side subscription
		// hangs here forever.
		ulib.EpWait(b, isa.R10, "evbuf", 4, -1)
		b.CmpI(isa.R0, 1)
		b.Jne("badwait")
		b.LeaData(isa.R8, "evbuf")
		b.Load(isa.R7, isa.Mem(isa.R8, 8)) // entry.revents
		b.AndI(isa.R7, libos.PollOut)
		b.CmpI(isa.R7, 0)
		b.Je("badrev")
		ulib.Exit(b, 0)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badwait")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badrev")
		b.Nop()
		ulib.Exit(b, 3)
	})
	if err := sys.Install(tc, "/bin/epmod", "epmod", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/epmod", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	// Drain until the SIP exits: the first reads make buffer space,
	// firing the write-direction edge the MOD must have subscribed.
	done := make(chan int, 1)
	go func() { done <- p.Wait() }()
	buf := make([]byte, 32<<10)
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case status := <-done:
			if status != 0 {
				t.Fatalf("SIP exit status = %d", status)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("SIP never woke: EpCtlMod lost the write-direction subscription")
		}
		conn.Read(buf)
		time.Sleep(time.Millisecond)
	}
}

// TestZeroTimeoutPollProbe: a zero-timeout poll is a pure readiness
// probe — 0 when nothing is ready (without parking), the ready count
// once data is buffered. Self-contained over a pipe.
func TestZeroTimeoutPollProbe(t *testing.T) {
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("fds", 16)
		b.Zero("pfd", 24)
		b.Bytes("msg", []byte("12345678"))
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Pipe2(b, "fds") // rfd=3, wfd=4 in a fresh table
		// pfd = {fd: 3, events: POLLIN}
		b.MovRI(isa.R7, 3)
		b.StoreData("pfd", isa.R7)
		b.LeaData(isa.R8, "pfd")
		b.MovRI(isa.R7, libos.PollIn)
		b.Store(isa.Mem(isa.R8, 8), isa.R7)
		// Empty pipe: probe reports nothing.
		ulib.Poll(b, "pfd", 1, 0)
		b.CmpI(isa.R0, 0)
		b.Jne("badempty")
		// write(4, msg, 8), then the probe reports POLLIN.
		b.MovRI(isa.R1, 4)
		b.LeaData(isa.R2, "msg")
		b.MovRI(isa.R3, 8)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Poll(b, "pfd", 1, 0)
		b.CmpI(isa.R0, 1)
		b.Jne("badready")
		b.LeaData(isa.R8, "pfd")
		b.Load(isa.R7, isa.Mem(isa.R8, 16))
		b.AndI(isa.R7, libos.PollIn)
		b.CmpI(isa.R7, 0)
		b.Je("badrev")
		ulib.Exit(b, 0)
		b.Label("badempty")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badready")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badrev")
		b.Nop()
		ulib.Exit(b, 3)
	})
	if err := sys.Install(tc, "/bin/pollprobe", "pollprobe", prog); err != nil {
		t.Fatal(err)
	}
	parks0 := sys.OS.Sched().Snapshot().Parks
	p, err := sys.OS.Spawn("/bin/pollprobe", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := waitTimeout(t, p, 30*time.Second, "poll-probe SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
	// Zero-timeout probes never park; the run is all straight-line code.
	if parks := sys.OS.Sched().Snapshot().Parks - parks0; parks != 0 {
		t.Fatalf("zero-timeout poll parked %d times", parks)
	}
}

// TestPollTimeoutExpires: a finite poll timeout parks the SIP, the host
// timer fires, and the retry returns 0 — the timed-wait leg of the
// parking protocol.
func TestPollTimeoutExpires(t *testing.T) {
	const port = 7715
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("pfd", 24)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.StoreData("pfd", isa.R6)
		b.LeaData(isa.R8, "pfd")
		b.MovRI(isa.R7, libos.PollIn)
		b.Store(isa.Mem(isa.R8, 8), isa.R7)
		// Nobody will ever dial: the 25 ms timeout must fire and poll
		// must answer 0.
		ulib.Poll(b, "pfd", 1, 25)
		b.CmpI(isa.R0, 0)
		b.Jne("bad")
		ulib.Exit(b, 0)
		b.Label("bad")
		b.Nop()
		ulib.Exit(b, 1)
	})
	if err := sys.Install(tc, "/bin/polltmo", "polltmo", prog); err != nil {
		t.Fatal(err)
	}
	parks0 := sys.OS.Sched().Snapshot().Parks
	p, err := sys.OS.Spawn("/bin/polltmo", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := waitTimeout(t, p, 30*time.Second, "poll-timeout SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
	if parks := sys.OS.Sched().Snapshot().Parks - parks0; parks == 0 {
		t.Fatal("timed poll did not park: it busy-waited on a hart")
	}
}

// TestNonblockRecvEAGAIN: fcntl(O_NONBLOCK) turns an empty-socket recv
// into an immediate EAGAIN, and F_GETFL reads the flag back.
func TestNonblockRecvEAGAIN(t *testing.T) {
	const port = 7713
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("buf", 16)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		b.MovRR(isa.R6, isa.R0)
		ulib.FcntlR(b, isa.R6, libos.FSetFl, libos.ONonblock)
		ulib.FcntlR(b, isa.R6, libos.FGetFl, 0)
		b.AndI(isa.R0, libos.ONonblock)
		b.CmpI(isa.R0, 0)
		b.Je("badgetfl")
		// Nothing buffered: recv must fail fast with EAGAIN.
		ulib.RecvSym(b, isa.R6, "buf", 16)
		b.CmpI(isa.R0, -libos.EAGAIN)
		b.Jne("badrecv")
		ulib.Exit(b, 0)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badgetfl")
		b.Nop()
		ulib.Exit(b, 2)
		b.Label("badrecv")
		b.Nop()
		ulib.Exit(b, 3)
	})
	if err := sys.Install(tc, "/bin/nbrecv", "nbrecv", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/nbrecv", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	if status := waitTimeout(t, p, 30*time.Second, "nonblock SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
}

// TestShutdownHalfClose: shutdown(WR) from inside the enclave flushes
// the response to the host-side peer (drain + EOF) while the SIP's read
// direction keeps working — the syscall face of the hostos half-close.
func TestShutdownHalfClose(t *testing.T) {
	const port = 7714
	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Bytes("msg", []byte("response"))
		b.Zero("buf", 16)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Socket(b)
		b.MovRR(isa.R6, isa.R0)
		ulib.Bind(b, isa.R6, port)
		ulib.ListenSock(b, isa.R6)
		b.MovRR(isa.R1, isa.R6)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("badacc")
		b.MovRR(isa.R6, isa.R0)
		ulib.SendSym(b, isa.R6, "msg", 8)
		ulib.Shutdown(b, isa.R6, libos.ShutWr)
		// Read direction still open: wait for the client's ack.
		ulib.RecvSym(b, isa.R6, "buf", 16)
		b.CmpI(isa.R0, 3)
		b.Jne("badack")
		ulib.Exit(b, 0)
		b.Label("badacc")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("badack")
		b.Nop()
		ulib.Exit(b, 2)
	})
	if err := sys.Install(tc, "/bin/shutwr", "shutwr", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/shutwr", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	buf := make([]byte, 16)
	got := 0
	for got < 8 {
		n, err := conn.Read(buf[got:])
		got += n
		if err != nil {
			break
		}
	}
	if got != 8 || string(buf[:8]) != "response" {
		t.Fatalf("read %q (%d bytes) before EOF, want \"response\"", buf[:got], got)
	}
	// Past the response: EOF, not a stuck read.
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("read after shutdown(WR) returned %d bytes, want EOF", n)
	}
	// Our direction is still open: ack back.
	if _, err := conn.Write([]byte("ack")); err != nil {
		t.Fatalf("write after peer shutdown(WR): %v", err)
	}
	if status := waitTimeout(t, p, 30*time.Second, "shutdown SIP"); status != 0 {
		t.Fatalf("SIP exit status = %d", status)
	}
}

// TestListenBacklogConnectStorm: the guest's listen() backlog argument
// must plumb through the syscall dispatcher to the hostos listener —
// the pre-fix kernel hard-coded 128 and silently ignored the argument.
// A SIP listens with a small backlog and never accepts; the host fills
// exactly backlog slots and the next dial is refused, at two sizes so a
// still-hard-coded default cannot pass by coincidence.
func TestListenBacklogConnectStorm(t *testing.T) {
	for _, tt := range []struct {
		port    uint16
		backlog int
	}{
		{7731, 4},
		{7733, 64},
	} {
		sys, tc := bootSmall(t, 4, 2, 0, nil)

		prog := buildProg(t, func(b *asm.Builder) {
			b.Entry("_start")
			ulib.Prologue(b)
			ulib.Socket(b)
			b.MovRR(isa.R6, isa.R0)
			ulib.Bind(b, isa.R6, int64(tt.port))
			ulib.ListenBacklog(b, isa.R6, int64(tt.backlog))
			// Park forever: accept on a second listener nobody dials.
			// The first listener's backlog fills while this SIP is
			// demonstrably not accepting.
			ulib.Socket(b)
			b.MovRR(isa.R7, isa.R0)
			ulib.Bind(b, isa.R7, int64(tt.port)+1)
			ulib.ListenSock(b, isa.R7)
			b.MovRR(isa.R1, isa.R7)
			ulib.Syscall(b, libos.SysAccept)
			ulib.Exit(b, 0)
		})
		if err := sys.Install(tc, "/bin/backlog", "backlog", prog); err != nil {
			t.Fatal(err)
		}
		p, err := sys.OS.Spawn("/bin/backlog", nil, libos.SpawnOpt{})
		if err != nil {
			t.Fatal(err)
		}

		// First dial retries until the listener exists; it and the
		// following backlog-1 dials occupy every queue slot.
		conns := []*hostos.Conn{dialSIP(t, sys, tt.port)}
		for i := 1; i < tt.backlog; i++ {
			conn, err := sys.Host.Dial(tt.port)
			if err != nil {
				t.Fatalf("backlog=%d: dial %d refused early: %v", tt.backlog, i, err)
			}
			conns = append(conns, conn)
		}
		// The storm overflow: one more dial must be refused, and must
		// keep being refused (nobody is draining the queue).
		for i := 0; i < 3; i++ {
			if _, err := sys.Host.Dial(tt.port); err == nil {
				t.Fatalf("backlog=%d: dial %d accepted beyond the backlog", tt.backlog, tt.backlog+i)
			}
		}
		for _, c := range conns {
			c.Close()
		}
		if err := sys.OS.Kill(p.PID(), libos.SIGKILL); err != nil {
			t.Fatal(err)
		}
		if status := waitTimeout(t, p, 30*time.Second, "backlog SIP"); status != 128+libos.SIGKILL {
			t.Fatalf("killed SIP status = %d, want %d", status, 128+libos.SIGKILL)
		}
		sys.OS.Shutdown()
	}
}
