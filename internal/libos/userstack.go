package libos

import (
	"encoding/binary"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vm"
)

// SetupUserStack writes the auxiliary-vector block at the top of the data
// region and initializes the CPU's SP, R10 and PC-independent state for a
// fresh process. It is shared between the Occlum loader and the baseline
// kernels so every system presents the identical process-start ABI.
//
// Returns the heap bounds carved between the static data and the stack.
func SetupUserStack(as *mem.Paged, cpu *vm.CPU, trampAddr, dataBase, dataSize, stackSize, minData uint64, argv []string) (heapBase, heapEnd uint64, err error) {
	stackTop := dataBase + dataSize
	heapBase = dataBase + (minData+15)/16*16
	heapEnd = stackTop - stackSize

	var strBytes []byte
	strOffs := make([]uint64, len(argv))
	for i, a := range argv {
		strOffs[i] = uint64(len(strBytes))
		strBytes = append(strBytes, a...)
		strBytes = append(strBytes, 0)
	}
	hdrLen := uint64(AuxArgv) + uint64(8*len(argv))
	blockLen := (hdrLen + uint64(len(strBytes)) + 15) / 16 * 16
	blockAddr := stackTop - blockLen
	strBase := blockAddr + hdrLen

	block := make([]byte, blockLen)
	binary.LittleEndian.PutUint64(block[AuxTrampoline:], trampAddr)
	binary.LittleEndian.PutUint64(block[AuxHeapBase:], heapBase)
	binary.LittleEndian.PutUint64(block[AuxHeapEnd:], heapEnd)
	binary.LittleEndian.PutUint64(block[AuxArgc:], uint64(len(argv)))
	for i := range argv {
		binary.LittleEndian.PutUint64(block[AuxArgv+8*i:], strBase+strOffs[i])
	}
	copy(block[hdrLen:], strBytes)
	if err := as.WriteDirect(blockAddr, block); err != nil {
		return 0, 0, err
	}
	cpu.Regs[isa.SP] = blockAddr &^ 15
	cpu.Regs[isa.R10] = blockAddr
	return heapBase, heapEnd, nil
}

// EncodeTrampoline returns the encoded syscall gate for a domain:
// cfi_label (with the domain ID) followed by trap.
func EncodeTrampoline(domainID uint32) []byte {
	var tramp []byte
	tramp, err := isaEncode(tramp, isa.Inst{Op: isa.OpCFILabel, DomainID: domainID})
	if err != nil {
		panic(err)
	}
	tramp, err = isaEncode(tramp, isa.Inst{Op: isa.OpTrap})
	if err != nil {
		panic(err)
	}
	return tramp
}

func isaEncode(dst []byte, in isa.Inst) ([]byte, error) { return isa.Encode(dst, in) }
