package libos

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fs"
	"repro/internal/isa"
	"repro/internal/mpx"
	"repro/internal/oelf"
)

// loadBinary reads, parses and signature-checks an OELF from the LibOS
// filesystem. The read decrypts through the encrypted FS — part of the
// real cost that makes Occlum's spawn scale with binary size (Fig 6a).
func (o *Occlum) loadBinary(path string) (*oelf.Binary, error) {
	f, err := o.vfs.Open(path, fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw := make([]byte, f.Size())
	if _, err := f.ReadAt(raw, 0); err != nil {
		return nil, err
	}
	bin, err := oelf.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	// Loader duty 1: only verifier-signed binaries may enter a domain.
	if err := o.cfg.VerifierKey.Verify(bin); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSigned, err)
	}
	return bin, nil
}

// trampolineLen is the injected syscall gate: cfi_label + trap.
const trampolineLen = isa.CFILabelLen + 1

// loadIntoDomain performs the program-loader work of §6: copy the image,
// rewrite cfi_labels, inject the trampoline, build the stack and auxv,
// and initialize the MPX bound registers.
//
// Layout: the code is placed at the *end* of the domain's code region so
// that the data region begins exactly codeSpan+guard after the code base,
// matching the layout the binary was linked (and verified) against. The
// trampoline lives at the start of the code region, far from user code.
func (o *Occlum) loadIntoDomain(d *Domain, bin *oelf.Binary, argv []string, p *Proc) error {
	img := &bin.Image
	codeSpan := img.CodeSpan()
	if codeSpan+trampolineLen+16 > d.CodeSize {
		return fmt.Errorf("%w: code span %d > domain code size %d", ErrTooBig, codeSpan, d.CodeSize)
	}
	if img.MinDataSize()+o.cfg.StackSize+4096 > d.DataSize {
		return fmt.Errorf("%w: data %d + stack > domain data size %d", ErrTooBig, img.MinDataSize(), d.DataSize)
	}
	if uint64(img.GuardSize) != 4096 {
		return fmt.Errorf("libos: unsupported guard size %d", img.GuardSize)
	}

	codeBase := d.CodeBase + d.CodeSize - codeSpan

	// Duty 2: rewrite the last 4 bytes of every cfi_label to this
	// domain's ID.
	code := append([]byte(nil), img.Code...)
	for _, off := range isa.FindCFIMagic(code) {
		binary.LittleEndian.PutUint32(code[off+4:], d.ID)
	}
	if err := o.enclave.WriteDirect(codeBase, code); err != nil {
		return err
	}

	// Duty 3: inject the trampoline — the only way out of the sandbox.
	if err := o.enclave.WriteDirect(d.CodeBase, EncodeTrampoline(d.ID)); err != nil {
		return err
	}

	// Data segment (BSS pages were zeroed when the domain was freed).
	if len(img.Data) > 0 {
		if err := o.enclave.WriteDirect(d.DataBase, img.Data); err != nil {
			return err
		}
	}

	// CPU state, stack and auxv.
	p.cpu.Reset()
	heapBase, heapEnd, err := SetupUserStack(o.enclave.Paged, p.cpu, d.CodeBase,
		d.DataBase, d.DataSize, o.cfg.StackSize, img.MinDataSize(), argv)
	if err != nil {
		return err
	}
	p.cpu.PC = codeBase + uint64(img.Entry)

	// Duty 4: initialize MPX bounds — BND0 confines memory accesses to
	// D; BND1 makes cfi_guard an equality test on this domain's label.
	p.cpu.Bnd.Set(isa.BND0, mpx.Bound{Lower: d.DataBase, Upper: d.DataBase + d.DataSize - 1})
	v := isa.CFILabelValue(d.ID)
	p.cpu.Bnd.Set(isa.BND1, mpx.Bound{Lower: v, Upper: v})

	p.heapBase, p.heapEnd, p.heapPtr = heapBase, heapEnd, heapBase
	p.tramp = d.CodeBase
	return nil
}

// isDomainLabel reports whether addr holds a cfi_label carrying the
// domain's ID — the check the LibOS performs on syscall return addresses
// and signal handlers.
func (o *Occlum) isDomainLabel(d *Domain, addr uint64) bool {
	b, err := o.enclave.ReadDirect(addr, isa.CFILabelLen)
	if err != nil {
		return false
	}
	for i, m := range isa.CFIMagic {
		if b[i] != m {
			return false
		}
	}
	return binary.LittleEndian.Uint32(b[4:]) == d.ID
}
