package libos_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// TestUserSignalHandler exercises sigaction + delivery + sigreturn: a SIP
// installs a handler for SIGUSR1, spins, and the handler writes a marker
// and exits.
func TestUserSignalHandler(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.String("msg", "caught!")
		b.Zero("hptr", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		// The handler address cannot be taken directly (no
		// address-of-label), so discover it the way a runtime would:
		// call a helper whose return address is the instruction after
		// the call — place the handler function right there.
		b.Call("after")
		// ← the return-site cfi_label of this call is the handler's
		// entry; "handler" begins immediately after the call.
		b.Label("handler")
		b.Nop()
		// write(1, msg, 7); exit(42)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "msg")
		b.MovRI(isa.R3, 7)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 42)

		// after: pops the return address (= handler address region)
		// and registers it, then spins until the signal arrives.
		b.Func("after")
		b.Load(isa.R6, isa.Mem(isa.SP, 0)) // return address = cfi_label before "handler"
		// sigaction(SIGUSR1, r6)
		b.MovRI(isa.R1, libos.SIGUSR1)
		b.MovRR(isa.R2, isa.R6)
		ulib.Syscall(b, libos.SysSigact)
		b.CmpI(isa.R0, 0)
		b.Jne("bad")
		b.Label("spin")
		b.MovRI(isa.R1, 0)
		ulib.Syscall(b, libos.SysYield)
		b.Jmp("spin")
		b.Label("bad")
		b.Nop()
		ulib.Exit(b, 9)
	})
	if err := sys.Install(tc, "/bin/sig", "sig", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/sig", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	// Give the SIP a moment to install the handler, then signal it.
	time.Sleep(20 * time.Millisecond)
	if err := sys.OS.Kill(p.PID(), libos.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 42 {
		t.Fatalf("status = %d, want 42 (handler exit)", status)
	}
	if out.String() != "caught!" {
		t.Fatalf("stdout = %q", out.String())
	}
}

// TestSigactionRejectsNonLabelHandler: a handler address that is not a
// cfi_label of the domain would be an arbitrary-jump primitive; the
// LibOS must refuse it.
func TestSigactionRejectsNonLabelHandler(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.MovRI(isa.R1, libos.SIGUSR1)
		b.MovRI(isa.R2, 0x10000) // not a cfi_label
		ulib.Syscall(b, libos.SysSigact)
		// Expect -EINVAL.
		b.CmpI(isa.R0, -libos.EINVAL)
		b.Je("ok")
		b.Nop()
		ulib.Exit(b, 1)
		b.Label("ok")
		b.Nop()
		ulib.Exit(b, 0)
	})
	if err := sys.Install(tc, "/bin/badsig", "badsig", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/badsig", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d: wild handler accepted", status)
	}
}

// TestDefaultSignalTerminates: SIGUSR1 with no handler kills the SIP.
func TestDefaultSignalTerminates(t *testing.T) {
	var out bytes.Buffer
	sys, tc := bootSys(t, &out)
	defer sys.OS.Shutdown()

	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		b.Label("spin")
		b.MovRI(isa.R1, 0)
		ulib.Syscall(b, libos.SysYield)
		b.Jmp("spin")
	})
	if err := sys.Install(tc, "/bin/spin2", "spin2", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/spin2", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.Kill(p.PID(), libos.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 128+libos.SIGUSR1 {
		t.Fatalf("status = %d", status)
	}
}
