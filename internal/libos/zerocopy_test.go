package libos_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// Zero-copy data-plane battery: every test drives a real SIP through
// the new readv/writev/sendfile/splice syscalls and checks the moved
// bytes against what the scalar read/write loops would have produced —
// same spans, same order, same partial-progress points. Distinct exit
// codes name the exact broken transition.

// span is one iovec entry, as an offset into the program's buffer
// symbol.
type span struct {
	off, n int
}

// randSpans places cnt non-overlapping spans at random offsets of a
// bufSize-byte buffer, in address order, with random gaps between them.
func randSpans(rng *rand.Rand, bufSize, maxTotal int) []span {
	cnt := 1 + rng.Intn(12)
	var spans []span
	off, total := 0, 0
	for i := 0; i < cnt && off < bufSize-1; i++ {
		off += rng.Intn(512) // gap
		n := 1 + rng.Intn(8<<10)
		if total+n > maxTotal {
			n = maxTotal - total
		}
		if n <= 0 || off+n > bufSize {
			break
		}
		spans = append(spans, span{off: off, n: n})
		off += n
		total += n
	}
	if len(spans) == 0 {
		spans = []span{{off: 0, n: 1 + rng.Intn(64)}}
	}
	return spans
}

func spanTotal(spans []span) int {
	t := 0
	for _, s := range spans {
		t += s.n
	}
	return t
}

// pat is the deterministic byte pattern both sides generate
// independently.
func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7 + (i>>8)*13)
	}
	return b
}

// fillSpans returns a bufSize buffer holding the pattern laid
// contiguously across the spans (so the gather of the spans equals
// pat(seed, total)), zero elsewhere.
func fillSpans(seed byte, bufSize int, spans []span) (buf, gathered []byte) {
	gathered = pat(seed, spanTotal(spans))
	buf = make([]byte, bufSize)
	k := 0
	for _, s := range spans {
		copy(buf[s.off:s.off+s.n], gathered[k:k+s.n])
		k += s.n
	}
	return buf, gathered
}

// emitIov emits code filling the iovec array symbol with the spans'
// runtime addresses. Clobbers R5, R8, R9.
func emitIov(b *asm.Builder, iovSym, bufSym string, spans []span) {
	for i, s := range spans {
		b.LeaData(isa.R5, bufSym)
		b.AddI(isa.R5, int32(s.off))
		ulib.IovSetReg(b, iovSym, int64(i), isa.R5, int64(s.n))
	}
}

// acceptOn emits socket/bind/listen/accept on port, leaving the
// connection fd in R7. Clobbers R0, R1, R6.
func acceptOn(b *asm.Builder, port int64, failLabel string) {
	ulib.Socket(b)
	b.MovRR(isa.R6, isa.R0)
	ulib.Bind(b, isa.R6, port)
	ulib.ListenSock(b, isa.R6)
	b.MovRR(isa.R1, isa.R6)
	ulib.Syscall(b, libos.SysAccept)
	b.CmpI(isa.R0, 0)
	b.Jl(failLabel)
	b.MovRR(isa.R7, isa.R0)
}

// readFull reads exactly n bytes from the host side of a conn.
func readFull(t *testing.T, conn *hostos.Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got := 0
	for got < n {
		rn, err := conn.Read(buf[got:])
		got += rn
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("host read: %v after %d/%d bytes", err, got, n)
		}
	}
	if got != n {
		t.Fatalf("host read %d bytes, want %d", got, n)
	}
	return buf
}

// TestWritevMatchesScalarRandomShapes runs randomized trials: for each
// iovec shape, one SIP gathers the spans with a single writev and a
// twin SIP writes the same spans with a scalar write loop; the host
// must receive byte-identical streams equal to the concatenated spans.
func TestWritevMatchesScalarRandomShapes(t *testing.T) {
	const basePort = 7801
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(40 + trial)))
		spans := randSpans(rng, 96<<10, 40<<10)
		buf, want := fillSpans(byte(trial+1), 96<<10, spans)
		total := spanTotal(spans)

		for variant, vectored := range map[string]bool{"writev": true, "scalar": false} {
			port := basePort + trial*2
			if !vectored {
				port++
			}
			sys, tc := bootSmall(t, 4, 2, 0, nil)
			prog := buildProg(t, func(b *asm.Builder) {
				b.Bytes("buf", buf)
				b.Zero("iov", 16*len(spans))
				b.Entry("_start")
				ulib.Prologue(b)
				acceptOn(b, int64(port), "fail")
				if vectored {
					emitIov(b, "iov", "buf", spans)
					ulib.Writev(b, isa.R7, "iov", int64(len(spans)))
					b.CmpI(isa.R0, int32(total))
					b.Jne("fail")
				} else {
					for _, s := range spans {
						b.MovRR(isa.R1, isa.R7)
						b.LeaData(isa.R2, "buf")
						b.AddI(isa.R2, int32(s.off))
						b.MovRI(isa.R3, int64(s.n))
						ulib.Syscall(b, libos.SysWrite)
						b.CmpI(isa.R0, int32(s.n))
						b.Jne("fail")
					}
				}
				ulib.Exit(b, 0)
				b.Label("fail")
				b.Nop()
				ulib.Exit(b, 1)
			})
			bin := fmt.Sprintf("/bin/wv%d%s", trial, variant)
			if err := sys.Install(tc, bin, "wv", prog); err != nil {
				t.Fatal(err)
			}
			p, err := sys.OS.Spawn(bin, nil, libos.SpawnOpt{})
			if err != nil {
				t.Fatal(err)
			}
			conn := dialSIP(t, sys, uint16(port))
			got := readFull(t, conn, total)
			if status := waitTimeout(t, p, 30*time.Second, variant+" SIP"); status != 0 {
				t.Fatalf("trial %d %s: exit status = %d", trial, variant, status)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d %s: received bytes differ from gathered spans", trial, variant)
			}
			conn.Close()
			sys.OS.Shutdown()
		}
	}
}

// TestReadvScatterMatchesSent: the SIP fills its own pipe with a
// pattern, scatters it across random iovec spans with one readv, then
// writes the whole buffer region back to the host — proving each span
// received exactly its slice of the stream and the gaps stayed
// untouched (what a scalar read loop over the same spans produces).
func TestReadvScatterMatchesSent(t *testing.T) {
	const port = 7821
	const bufSize = 64 << 10
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(90 + trial)))
		spans := randSpans(rng, bufSize, 32<<10)
		total := spanTotal(spans)
		src := pat(byte(0x30+trial), total)
		want, _ := fillSpans(byte(0x30+trial), bufSize, spans)

		sys, tc := bootSmall(t, 4, 2, 0, nil)
		prog := buildProg(t, func(b *asm.Builder) {
			b.Bytes("src", src)
			b.Zero("buf", bufSize)
			b.Zero("iov", 16*len(spans))
			b.Zero("pfds", 16)
			b.Entry("_start")
			ulib.Prologue(b)
			// pipe2; fill the pipe with the whole pattern (scalar).
			ulib.Pipe2(b, "pfds")
			b.LeaData(isa.R5, "pfds")
			b.Load(isa.R6, isa.Mem(isa.R5, 8)) // write fd
			b.MovRR(isa.R1, isa.R6)
			b.LeaData(isa.R2, "src")
			b.MovRI(isa.R3, int64(total))
			ulib.Syscall(b, libos.SysWrite)
			b.CmpI(isa.R0, int32(total))
			b.Jne("fail")
			// One readv scatters it across the spans.
			emitIov(b, "iov", "buf", spans)
			b.LeaData(isa.R5, "pfds")
			b.Load(isa.R7, isa.Mem(isa.R5, 0)) // read fd
			ulib.Readv(b, isa.R7, "iov", int64(len(spans)))
			b.CmpI(isa.R0, int32(total))
			b.Jne("fail")
			// Ship the whole buffer region to the host for inspection.
			acceptOn(b, port, "fail")
			b.MovRR(isa.R1, isa.R7)
			b.LeaData(isa.R2, "buf")
			b.MovRI(isa.R3, bufSize)
			ulib.Syscall(b, libos.SysWrite)
			b.CmpI(isa.R0, int32(bufSize))
			b.Jne("fail")
			ulib.Exit(b, 0)
			b.Label("fail")
			b.Nop()
			ulib.Exit(b, 1)
		})
		bin := fmt.Sprintf("/bin/rv%d", trial)
		if err := sys.Install(tc, bin, "rv", prog); err != nil {
			t.Fatal(err)
		}
		p, err := sys.OS.Spawn(bin, nil, libos.SpawnOpt{})
		if err != nil {
			t.Fatal(err)
		}
		conn := dialSIP(t, sys, port)
		got := readFull(t, conn, bufSize)
		if status := waitTimeout(t, p, 30*time.Second, "readv SIP"); status != 0 {
			t.Fatalf("trial %d: exit status = %d", trial, status)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: scatter placement differs from scalar model", trial)
		}
		conn.Close()
		sys.OS.Shutdown()
	}
}

// TestWritevNonblockPartialAndResume: an O_NONBLOCK writev against a
// stalled reader must accept exactly the stream's free space (the ring
// cap), then fail fast with EAGAIN; after clearing O_NONBLOCK the same
// writev parks and resumes through cursys.prog as the host drains,
// delivering every byte exactly once.
func TestWritevNonblockPartialAndResume(t *testing.T) {
	const dataPort, ctlPort = 7831, 7832
	total := hostos.StreamCap() + 44<<10 // forces a partial first call
	spans := []span{{0, 96 << 10}, {100 << 10, 96 << 10}, {200 << 10, total - 192<<10}}
	buf, want := fillSpans(0x5a, 320<<10, spans)

	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()
	prog := buildProg(t, func(b *asm.Builder) {
		b.Bytes("buf", buf)
		b.Zero("iov", 16*len(spans))
		b.String("go", "G")
		b.Entry("_start")
		ulib.Prologue(b)
		acceptOn(b, dataPort, "fail1")
		b.MovRR(isa.R4, isa.R7) // data conn
		acceptOn(b, ctlPort, "fail1")
		b.MovRR(isa.R6, isa.R7) // ctl conn
		b.MovRR(isa.R7, isa.R4)
		emitIov(b, "iov", "buf", spans)
		// Nonblock: first writev takes exactly the ring's free space.
		ulib.FcntlR(b, isa.R7, libos.FSetFl, libos.ONonblock)
		ulib.Writev(b, isa.R7, "iov", int64(len(spans)))
		b.CmpI(isa.R0, int32(hostos.StreamCap()))
		b.Jne("fail2")
		// Ring is full: a second writev must EAGAIN, not park.
		ulib.Writev(b, isa.R7, "iov", int64(len(spans)))
		b.CmpI(isa.R0, -libos.EAGAIN)
		b.Jne("fail3")
		// Tell the host it may start draining, then send the whole
		// iovec blocking — parks and resumes via cursys.prog.
		ulib.SendSym(b, isa.R6, "go", 1)
		ulib.FcntlR(b, isa.R7, libos.FSetFl, 0)
		ulib.Writev(b, isa.R7, "iov", int64(len(spans)))
		b.CmpI(isa.R0, int32(total))
		b.Jne("fail4")
		ulib.Exit(b, 0)
		for i, l := range []string{"fail1", "fail2", "fail3", "fail4"} {
			b.Label(l)
			b.Nop()
			ulib.Exit(b, int64(i+1))
		}
	})
	if err := sys.Install(tc, "/bin/wvnb", "wvnb", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/wvnb", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	data := dialSIP(t, sys, dataPort)
	defer data.Close()
	ctl := dialSIP(t, sys, ctlPort)
	defer ctl.Close()
	readFull(t, ctl, 1) // wait for "go"
	got := readFull(t, data, hostos.StreamCap()+total)
	if status := waitTimeout(t, p, 30*time.Second, "nonblock writev SIP"); status != 0 {
		t.Fatalf("exit status = %d", status)
	}
	if !bytes.Equal(got[:hostos.StreamCap()], want[:hostos.StreamCap()]) {
		t.Fatal("partial nonblock writev sent wrong prefix")
	}
	if !bytes.Equal(got[hostos.StreamCap():], want) {
		t.Fatal("blocking writev resume delivered wrong bytes")
	}
}

// TestWritevFaultMidIovec: a fault address in the middle of the array
// yields the bytes gathered before it; a fault in the first span yields
// EFAULT with nothing sent.
func TestWritevFaultMidIovec(t *testing.T) {
	const port = 7841
	const good = 5000
	payload := pat(0x77, good)

	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()
	prog := buildProg(t, func(b *asm.Builder) {
		b.Bytes("buf", payload)
		b.Zero("iov", 32)
		b.Entry("_start")
		ulib.Prologue(b)
		acceptOn(b, port, "fail1")
		// iov[0] = valid span, iov[1] = far outside the data region.
		b.LeaData(isa.R5, "buf")
		ulib.IovSetReg(b, "iov", 0, isa.R5, good)
		b.MovRI(isa.R5, 1<<40)
		ulib.IovSetReg(b, "iov", 1, isa.R5, 64)
		ulib.Writev(b, isa.R7, "iov", 2)
		b.CmpI(isa.R0, good)
		b.Jne("fail2")
		// Fault first: nothing to report but the fault itself.
		b.MovRI(isa.R5, 1<<40)
		ulib.IovSetReg(b, "iov", 0, isa.R5, 64)
		ulib.Writev(b, isa.R7, "iov", 2)
		b.CmpI(isa.R0, -libos.EFAULT)
		b.Jne("fail3")
		ulib.Exit(b, 0)
		for i, l := range []string{"fail1", "fail2", "fail3"} {
			b.Label(l)
			b.Nop()
			ulib.Exit(b, int64(i+1))
		}
	})
	if err := sys.Install(tc, "/bin/wvfault", "wvfault", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/wvfault", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	got := readFull(t, conn, good)
	if status := waitTimeout(t, p, 30*time.Second, "fault writev SIP"); status != 0 {
		t.Fatalf("exit status = %d", status)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("partial writev before the fault sent wrong bytes")
	}
}

// TestSplicePipeToSocketZeroCopy: pipe→socket forwarding through
// splice must move the bytes without a single staging copy — the
// -netstats bytes-copied ledger stays untouched across the forward.
func TestSplicePipeToSocketZeroCopy(t *testing.T) {
	const port = 7851
	const total = 48 << 10
	payload := pat(0x21, total)

	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()
	prog := buildProg(t, func(b *asm.Builder) {
		b.Bytes("src", payload)
		b.Zero("pfds", 16)
		b.Zero("goiov", 16)
		b.Zero("gobuf", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Pipe2(b, "pfds")
		b.LeaData(isa.R5, "pfds")
		b.Load(isa.R6, isa.Mem(isa.R5, 8)) // write fd
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "src")
		b.MovRI(isa.R3, total)
		ulib.Syscall(b, libos.SysWrite)
		b.CmpI(isa.R0, total)
		b.Jne("fail1")
		acceptOn(b, port, "fail1")
		// Wait for the host's go byte via readv so the control byte
		// lands on the lent ledger, keeping bytes-copied at exactly 0
		// for the measured window.
		b.LeaData(isa.R5, "gobuf")
		ulib.IovSetReg(b, "goiov", 0, isa.R5, 1)
		ulib.Readv(b, isa.R7, "goiov", 1)
		b.CmpI(isa.R0, 1)
		b.Jne("fail2")
		// Forward the pipe into the socket in one zero-copy splice.
		b.LeaData(isa.R5, "pfds")
		b.Load(isa.R6, isa.Mem(isa.R5, 0)) // read fd
		ulib.Splice(b, isa.R6, isa.R7, total)
		b.CmpI(isa.R0, total)
		b.Jne("fail3")
		ulib.Exit(b, 0)
		for i, l := range []string{"fail1", "fail2", "fail3"} {
			b.Label(l)
			b.Nop()
			ulib.Exit(b, int64(i+1))
		}
	})
	if err := sys.Install(tc, "/bin/splout", "splout", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/splout", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	before := libos.NetStats()
	if _, err := conn.Write([]byte("G")); err != nil {
		t.Fatal(err)
	}
	got := readFull(t, conn, total)
	if status := waitTimeout(t, p, 30*time.Second, "splice SIP"); status != 0 {
		t.Fatalf("exit status = %d", status)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("spliced bytes differ from the pipe contents")
	}
	d := libos.NetStats().Sub(before)
	if d.BytesCopied != 0 {
		t.Fatalf("splice window staged %d bytes through copies, want 0", d.BytesCopied)
	}
	if d.Splices == 0 || d.BytesLent < total {
		t.Fatalf("splice ledger: splices=%d lent=%d, want >=1 and >=%d", d.Splices, d.BytesLent, total)
	}
}

// TestSpliceSocketToPipeAndEOF: splice drains the socket into the pipe
// (EAGAIN under O_NONBLOCK while empty, 0 at peer EOF), and the pipe
// contents echo back byte-identical.
func TestSpliceSocketToPipeAndEOF(t *testing.T) {
	const port = 7861
	const total = 32 << 10
	payload := pat(0x44, total)

	sys, tc := bootSmall(t, 4, 2, 0, nil)
	defer sys.OS.Shutdown()
	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("pfds", 16)
		b.Zero("buf", total)
		b.String("rdy", "R")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Pipe2(b, "pfds")
		acceptOn(b, port, "fail1")
		// Empty socket + O_NONBLOCK: splice must EAGAIN, not park.
		ulib.FcntlR(b, isa.R7, libos.FSetFl, libos.ONonblock)
		b.LeaData(isa.R5, "pfds")
		b.Load(isa.R4, isa.Mem(isa.R5, 8)) // pipe write fd
		ulib.Splice(b, isa.R7, isa.R4, total)
		b.CmpI(isa.R0, -libos.EAGAIN)
		b.Jne("fail2")
		ulib.FcntlR(b, isa.R7, libos.FSetFl, 0)
		ulib.SendSym(b, isa.R7, "rdy", 1)
		// Drain the socket into the pipe until EOF; accumulate in R6.
		b.MovRI(isa.R6, 0)
		b.Label("drain")
		b.LeaData(isa.R5, "pfds")
		b.Load(isa.R4, isa.Mem(isa.R5, 8))
		ulib.Splice(b, isa.R7, isa.R4, total)
		b.CmpI(isa.R0, 0)
		b.Jl("fail3")
		b.Je("drained")
		b.Add(isa.R6, isa.R0)
		b.Jmp("drain")
		b.Label("drained")
		b.CmpI(isa.R6, total)
		b.Jne("fail4")
		// Echo the pipe contents back for verification.
		b.LeaData(isa.R5, "pfds")
		b.Load(isa.R4, isa.Mem(isa.R5, 0))
		b.MovRR(isa.R1, isa.R4)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, total)
		ulib.Syscall(b, libos.SysRead)
		b.CmpI(isa.R0, total)
		b.Jne("fail5")
		b.MovRR(isa.R1, isa.R7)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, total)
		ulib.Syscall(b, libos.SysSend)
		b.CmpI(isa.R0, total)
		b.Jne("fail6")
		ulib.Exit(b, 0)
		for i, l := range []string{"fail1", "fail2", "fail3", "fail4", "fail5", "fail6"} {
			b.Label(l)
			b.Nop()
			ulib.Exit(b, int64(i+1))
		}
	})
	if err := sys.Install(tc, "/bin/splin", "splin", prog); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/bin/splin", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	conn := dialSIP(t, sys, port)
	defer conn.Close()
	readFull(t, conn, 1) // SIP passed the EAGAIN probe
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite() // EOF ends the drain loop
	got := readFull(t, conn, total)
	if status := waitTimeout(t, p, 30*time.Second, "splice-in SIP"); status != 0 {
		t.Fatalf("exit status = %d", status)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("socket→pipe splice corrupted the stream")
	}
}

// TestSendfileImageToSocket: sendfile pumps an image-FS file to the
// host twice; both passes are byte-identical, the warm pass re-verifies
// zero Merkle blocks, and every payload byte rides the lent (borrowed
// page-cache) ledger — none through staging copies.
func TestSendfileImageToSocket(t *testing.T) {
	const port = 7871
	const size = 20000
	payload := pat(0x63, size)

	ib := fs.NewImageBuilder()
	if err := ib.AddFile("/app/big", payload); err != nil {
		t.Fatal(err)
	}
	blob, root, err := ib.Build()
	if err != nil {
		t.Fatal(err)
	}
	host := hostos.New()
	host.WriteFile("base.img", blob)
	var out bytes.Buffer
	os, tc := bootFromImage(t, host, &out, root)
	defer os.Shutdown()

	prog := func(b *asm.Builder) {
		b.String("path", "/app/big")
		b.Zero("goiov", 16)
		b.Zero("gobuf", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.OpenPath(b, "path", 8, libos.ORdOnly)
		b.CmpI(isa.R0, 0)
		b.Jl("fail1")
		b.MovRR(isa.R6, isa.R0)
		ulib.Socket(b)
		b.MovRR(isa.R5, isa.R0)
		ulib.Bind(b, isa.R5, port)
		ulib.ListenSock(b, isa.R5)
		b.MovRR(isa.R1, isa.R5)
		ulib.Syscall(b, libos.SysAccept)
		b.CmpI(isa.R0, 0)
		b.Jl("fail1")
		b.MovRR(isa.R7, isa.R0)
		// Cold pass: verifies the blocks on first touch.
		ulib.Sendfile(b, isa.R7, isa.R6, 0, size)
		b.CmpI(isa.R0, size)
		b.Jne("fail2")
		// Wait for the host's go byte (readv, to keep the copied
		// ledger at zero) so it can snapshot the verify counter
		// between the passes.
		b.LeaData(isa.R5, "gobuf")
		ulib.IovSetReg(b, "goiov", 0, isa.R5, 1)
		ulib.Readv(b, isa.R7, "goiov", 1)
		b.CmpI(isa.R0, 1)
		b.Jne("fail2")
		// Warm pass: same range, straight from the page cache.
		ulib.Sendfile(b, isa.R7, isa.R6, 0, size)
		b.CmpI(isa.R0, size)
		b.Jne("fail3")
		// Past EOF: sendfile reports 0, not an error.
		ulib.Sendfile(b, isa.R7, isa.R6, size, 4096)
		b.CmpI(isa.R0, 0)
		b.Jne("fail4")
		ulib.Exit(b, 0)
		for i, l := range []string{"fail1", "fail2", "fail3", "fail4"} {
			b.Label(l)
			b.Nop()
			ulib.Exit(b, int64(i+1))
		}
	}
	fsBefore := fs.Stats()
	netBefore := libos.NetStats()
	p, err := buildAndSpawn(t, os, tc, "/bin/sfd", prog)
	if err != nil {
		t.Fatal(err)
	}
	var conn *hostos.Conn
	deadline := time.Now().Add(30 * time.Second)
	for {
		conn, err = host.Dial(port)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sendfile SIP never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	defer conn.Close()
	cold := readFull(t, conn, size)
	warmBefore := fs.Stats()
	if _, err := conn.Write([]byte("G")); err != nil {
		t.Fatal(err)
	}
	warm := readFull(t, conn, size)
	if status := waitTimeout(t, p, 30*time.Second, "sendfile SIP"); status != 0 {
		t.Fatalf("exit status = %d", status)
	}
	if !bytes.Equal(cold, payload) || !bytes.Equal(warm, payload) {
		t.Fatal("sendfile delivered wrong bytes")
	}
	if cd := fs.Stats().Sub(fsBefore); cd.VerifiedBlocks == 0 {
		t.Fatal("cold sendfile pass verified no blocks — not reading through the image layer")
	}
	if wd := fs.Stats().Sub(warmBefore); wd.VerifiedBlocks != 0 {
		t.Fatalf("warm sendfile pass re-verified %d blocks, want 0", wd.VerifiedBlocks)
	}
	nd := libos.NetStats().Sub(netBefore)
	if nd.Sendfiles < 3 {
		t.Fatalf("sendfiles = %d, want >= 3", nd.Sendfiles)
	}
	if nd.BytesLent < 2*size {
		t.Fatalf("sendfile lent %d bytes, want >= %d (page-cache borrow path not taken)", nd.BytesLent, 2*size)
	}
	if nd.BytesCopied != 0 {
		t.Fatalf("sendfile staged %d bytes through copies, want 0", nd.BytesCopied)
	}
}
