package libos

// This file is the LibOS half of the zero-copy data plane: vectored
// read/write over guest-memory loans, sendfile from the ImageFS
// verified page cache, and splice between pipe and socket rings.
//
// Copy discipline (the numbers -netstats reports as bytes-lent vs
// bytes-copied):
//
//   - readv/writev lend the guest spans in place (mem.ViewBytes) and
//     move them with exactly one copy, guest memory ↔ ring/file. The
//     scalar read/write paths stage through a per-syscall temp buffer
//     and pay two.
//   - sendfile lends verified image-cache blocks straight into the
//     socket ring: zero guest-memory traffic, one in-enclave copy into
//     the ring. Non-image nodes fall back to a staging read.
//   - splice moves bytes ring-to-ring through the pipe's borrow API:
//     no guest memory, no staging buffer — bytes-copied stays 0.
//
// Loan lifetime: a loan never crosses a park. A parked syscall
// re-dispatches from scratch and re-takes its loans, so the only
// revocation window is within one dispatch attempt; CommitWrite still
// re-validates every write loan against the page-generation stamps, so
// a remap concurrent with the fill surfaces as EFAULT instead of
// publishing bytes under a dead mapping.

import (
	"encoding/binary"
	"io"

	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/mem"
	"repro/internal/sysdispatch"
)

// viewUserBytes lends [addr, addr+n) of the calling SIP's data region
// as a mem.View — the zero-copy replacement for readUserBytes'
// copy-out. The domain-region check is the same; page permissions are
// additionally enforced by the loan (the scalar path's ReadDirect is
// blind to them), so a span over unmapped guard pages faults here.
func (p *Proc) viewUserBytes(addr, n uint64, access mem.Access) (mem.View, bool) {
	if n > sysdispatch.MaxUserBuf || !p.inData(addr, n) {
		return mem.View{}, false
	}
	v, f := p.os.enclave.ViewBytes(addr, int(n), access)
	if f != nil {
		return mem.View{}, false
	}
	return v, true
}

type iovec struct {
	base, n uint64
}

// readIov unmarshals an iovec array (16-byte {base, len} entries) from
// guest memory, enforcing the spine's IovMax and MaxUserBuf caps on
// the count and the summed length. Span addresses are validated lazily
// at use, giving the Linux partial-progress semantics for a fault in
// the middle of the array.
func (p *Proc) readIov(ptr, cnt uint64) ([]iovec, int64) {
	if cnt > sysdispatch.IovMax {
		return nil, -EINVAL
	}
	if cnt == 0 {
		return nil, 0
	}
	raw, err := p.readUserBytes(ptr, cnt*sysdispatch.IovEntrySize)
	if err != nil {
		return nil, -EFAULT
	}
	iov := make([]iovec, cnt)
	var total uint64
	for i := range iov {
		e := raw[i*sysdispatch.IovEntrySize:]
		iov[i] = iovec{base: binary.LittleEndian.Uint64(e), n: binary.LittleEndian.Uint64(e[8:])}
		total += iov[i].n
		if iov[i].n > sysdispatch.MaxUserBuf || total > sysdispatch.MaxUserBuf {
			return nil, -EINVAL
		}
	}
	return iov, 0
}

func iovTotal(iov []iovec) int64 {
	var t int64
	for _, v := range iov {
		t += int64(v.n)
	}
	return t
}

// sysWritev is writev(fd, iovPtr, iovCnt): gather-write the iovec spans
// in order, lending each span from guest memory instead of staging it.
// Partial progress composes with the park/resume protocol exactly as
// sysWrite does — cursys.prog records bytes already queued, and every
// re-dispatch re-lends only the unsent remainder — and with O_NONBLOCK
// on sockets (partial count, or EAGAIN when nothing fit). A fault
// address in the middle of the array returns the bytes written before
// it, or EFAULT when it comes first.
func sysWritev(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	iov, e := p.readIov(a[1], a[2])
	if e != 0 {
		return sysdispatch.Ok(e)
	}
	if of.kind != kindSock && of.kind != kindPipeW && of.kind != kindNode {
		return sysdispatch.Errno(EBADF)
	}
	var conn = of.connLocked()
	if of.kind == kindSock && conn == nil {
		return sysdispatch.Errno(ENOTCONN)
	}
	cur := p.cursys
	total := iovTotal(iov)
	wait := p.unpark
	if of.kind == kindSock && of.nonblock.Load() {
		wait = nil
	}

	done := func(r sysdispatch.Result) sysdispatch.Result {
		netStats.writevs.Add(1)
		return r
	}
	skip := cur.prog
	for _, seg := range iov {
		if skip >= int64(seg.n) {
			skip -= int64(seg.n)
			continue
		}
		addr, n := seg.base+uint64(skip), seg.n-uint64(skip)
		skip = 0
		v, ok := p.viewUserBytes(addr, n, mem.AccessRead)
		if !ok {
			if cur.prog > 0 {
				return done(sysdispatch.Ok(cur.prog))
			}
			return sysdispatch.Errno(EFAULT)
		}
		var (
			wn                 int
			closed, wouldBlock bool
		)
		switch of.kind {
		case kindSock:
			wn, closed, wouldBlock = conn.TryWrite(v.B, wait)
			if wn > 0 {
				of.touch()
			}
		case kindPipeW:
			wn, closed = of.pipe.tryWrite(v.B, p.unpark)
			wouldBlock = wn < len(v.B)
		case kindNode:
			var werr error
			wn, werr = of.Write(v.B)
			closed = werr != nil && wn == 0
		}
		netStats.bytesLent.Add(uint64(wn))
		cur.prog += int64(wn)
		if closed {
			if cur.prog > 0 {
				return done(sysdispatch.Ok(cur.prog))
			}
			return sysdispatch.Errno(EPIPE)
		}
		if wouldBlock {
			if of.kind == kindPipeW {
				// Pipes always park; the waiter is already registered.
				return sysdispatch.ParkedResult
			}
			if wait == nil {
				if cur.prog > 0 {
					return done(sysdispatch.Ok(cur.prog))
				}
				netStats.eagains.Add(1)
				return sysdispatch.Errno(EAGAIN)
			}
			netStats.sendParks.Add(1)
			return sysdispatch.ParkedResult
		}
	}
	if cur.prog != total {
		// A node write came up short without erroring; report what went.
		return done(sysdispatch.Ok(cur.prog))
	}
	return done(sysdispatch.Ok(total))
}

// sysReadv is readv(fd, iovPtr, iovCnt): scatter-read into the iovec
// spans, lending each span writable and committing the fill through
// the loan protocol (a span remapped mid-fill fails EFAULT instead of
// landing bytes under the new mapping). Like scalar read it returns as
// soon as at least one byte arrived; it parks (or EAGAINs under
// O_NONBLOCK) only when nothing is available.
func sysReadv(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	of, ok := p.getFD(int(int64(a[0])))
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	iov, e := p.readIov(a[1], a[2])
	if e != 0 {
		return sysdispatch.Ok(e)
	}
	if of.kind != kindSock && of.kind != kindPipeR && of.kind != kindNode {
		return sysdispatch.Errno(EBADF)
	}
	conn := of.connLocked()
	if of.kind == kindSock && conn == nil {
		return sysdispatch.Errno(ENOTCONN)
	}
	nonblock := of.kind == kindSock && of.nonblock.Load()

	var total int64
	done := func() sysdispatch.Result {
		netStats.readvs.Add(1)
		return sysdispatch.Ok(total)
	}
	for _, seg := range iov {
		if seg.n == 0 {
			continue
		}
		v, ok := p.viewUserBytes(seg.base, seg.n, mem.AccessWrite)
		if !ok {
			if total > 0 {
				return done()
			}
			return sysdispatch.Errno(EFAULT)
		}
		// Only the first span may park: once bytes have landed, an
		// empty buffer means "return the short count", so later spans
		// probe with a nil wait.
		wait := p.unpark
		if nonblock || total > 0 {
			wait = nil
		}
		var (
			rn         int
			eof, stall bool
		)
		switch of.kind {
		case kindPipeR:
			rn, eof, stall = of.pipe.tryRead(v.B, wait)
		case kindSock:
			rn, eof, stall = conn.TryRead(v.B, wait)
			if rn > 0 {
				of.touch()
			}
		case kindNode:
			var rerr error
			rn, rerr = of.Read(v.B)
			if rerr != nil && rerr != io.EOF && rn == 0 {
				if total > 0 {
					return done()
				}
				return sysdispatch.Errno(EIO)
			}
			eof = rerr == io.EOF || rn < len(v.B)
		}
		if stall {
			if total > 0 {
				return done()
			}
			if nonblock {
				netStats.eagains.Add(1)
				return sysdispatch.Errno(EAGAIN)
			}
			if of.kind == kindSock {
				netStats.recvParks.Add(1)
			}
			return sysdispatch.ParkedResult
		}
		if rn > 0 && !v.CommitWrite(rn) {
			// The span was remapped while the fill was in flight; the
			// loan died, and so must the syscall's claim on it.
			return sysdispatch.Errno(EFAULT)
		}
		netStats.bytesLent.Add(uint64(rn))
		total += int64(rn)
		if eof || rn < len(v.B) {
			break
		}
	}
	return done()
}

// sysSendfile is sendfile(outfd, infd, off, count): pump file bytes to
// a socket without guest memory in the path. Image-backed nodes lend
// verified page-cache blocks directly into the socket ring (counted as
// bytes-lent; lazy Merkle verification is untouched — a warm file
// re-verifies nothing); other nodes stage through a bounded temp
// buffer (bytes-copied). Returns the short count when the socket
// backpressures, parks (or EAGAINs) only when nothing was sent.
func sysSendfile(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	oof, ok := p.getFD(int(int64(a[0])))
	if !ok || oof.kind != kindSock {
		return sysdispatch.Errno(EBADF)
	}
	inof, ok := p.getFD(int(int64(a[1])))
	if !ok || inof.kind != kindNode {
		return sysdispatch.Errno(EBADF)
	}
	off, count := int64(a[2]), int64(a[3])
	if off < 0 || count < 0 {
		return sysdispatch.Errno(EINVAL)
	}
	conn := oof.connLocked()
	if conn == nil {
		return sysdispatch.Errno(ENOTCONN)
	}
	wait := p.unpark
	if oof.nonblock.Load() {
		wait = nil
	}
	br, borrow := inof.node.(fs.BorrowReader)

	var sent int64
	var staging []byte
	for sent < count {
		var chunk []byte
		if borrow {
			b, err := br.ReadBorrow(off+sent, int(count-sent))
			if err != nil {
				if sent > 0 {
					break
				}
				return sysdispatch.Ok(errno(err))
			}
			chunk = b
		} else {
			if staging == nil {
				staging = make([]byte, min(64<<10, int(count)))
			}
			want := staging[:min(len(staging), int(count-sent))]
			rn, err := inof.node.ReadAt(want, off+sent)
			if err != nil && rn == 0 {
				if sent > 0 {
					break
				}
				return sysdispatch.Ok(errno(err))
			}
			chunk = want[:rn]
		}
		if len(chunk) == 0 {
			break // EOF
		}
		w := wait
		if sent > 0 {
			w = nil
		}
		wn, closed, wouldBlock := conn.TryWrite(chunk, w)
		if borrow {
			netStats.bytesLent.Add(uint64(wn))
		} else {
			netStats.bytesCopied.Add(uint64(wn))
		}
		if wn > 0 {
			oof.touch()
		}
		sent += int64(wn)
		if closed {
			if sent > 0 {
				break
			}
			return sysdispatch.Errno(EPIPE)
		}
		if wouldBlock {
			if sent > 0 {
				break
			}
			if wait == nil {
				netStats.eagains.Add(1)
				return sysdispatch.Errno(EAGAIN)
			}
			netStats.sendParks.Add(1)
			return sysdispatch.ParkedResult
		}
	}
	netStats.sendfiles.Add(1)
	return sysdispatch.Ok(sent)
}

// sysSplice is splice(fdIn, fdOut, count): move up to count bytes
// between a pipe and a socket with the bytes never entering guest
// memory — the pipe ring lends runs that are copied once into (or
// filled once from) the socket ring. It returns as soon as at least
// one byte moved; with nothing movable it parks on whichever side
// stalled (pipe-empty/socket-full for pipe→socket, and conversely), or
// returns EAGAIN when either description is O_NONBLOCK.
func sysSplice(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
	p := k.(*Proc)
	inof, ok := p.getFD(int(int64(a[0])))
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	outof, ok := p.getFD(int(int64(a[1])))
	if !ok {
		return sysdispatch.Errno(EBADF)
	}
	count := int64(a[2])
	if count < 0 {
		return sysdispatch.Errno(EINVAL)
	}
	if count == 0 {
		return sysdispatch.Ok(0)
	}
	wait := p.unpark
	if inof.nonblock.Load() || outof.nonblock.Load() {
		wait = nil
	}
	done := func(n int64) sysdispatch.Result {
		netStats.splices.Add(1)
		return sysdispatch.Ok(n)
	}

	switch {
	case inof.kind == kindPipeR && outof.kind == kindSock:
		conn := outof.connLocked()
		if conn == nil {
			return sysdispatch.Errno(ENOTCONN)
		}
		for {
			var sinkClosed bool
			moved, eof, parked := inof.pipe.borrowOut(int(count), func(run []byte) int {
				wn, closed, _ := conn.TryWrite(run, nil)
				if closed {
					sinkClosed = true
				}
				return wn
			}, wait)
			if moved > 0 {
				netStats.bytesLent.Add(uint64(moved))
				outof.touch()
				return done(int64(moved))
			}
			if eof {
				return done(0)
			}
			if parked {
				if wait == nil {
					netStats.eagains.Add(1)
					return sysdispatch.Errno(EAGAIN)
				}
				netStats.recvParks.Add(1)
				return sysdispatch.ParkedResult
			}
			if sinkClosed {
				return sysdispatch.Errno(EPIPE)
			}
			// Pipe has data but the socket ring is full: wait for the
			// peer to drain it (an empty TryWrite probes writability and
			// registers the waiter atomically with the fullness check).
			_, closed, wouldBlock := conn.TryWrite(nil, wait)
			if closed {
				return sysdispatch.Errno(EPIPE)
			}
			if wouldBlock {
				if wait == nil {
					netStats.eagains.Add(1)
					return sysdispatch.Errno(EAGAIN)
				}
				netStats.sendParks.Add(1)
				return sysdispatch.ParkedResult
			}
			// Space appeared between the two calls — retry the move.
		}
	case inof.kind == kindSock && outof.kind == kindPipeW:
		conn := inof.connLocked()
		if conn == nil {
			return sysdispatch.Errno(ENOTCONN)
		}
		for {
			var srcEOF bool
			moved, closed, parked := outof.pipe.borrowIn(int(count), func(run []byte) int {
				rn, eof, _ := conn.TryRead(run, nil)
				if eof {
					srcEOF = true
				}
				return rn
			}, wait)
			if closed {
				return sysdispatch.Errno(EPIPE)
			}
			if moved > 0 {
				netStats.bytesLent.Add(uint64(moved))
				inof.touch()
				return done(int64(moved))
			}
			if parked {
				// Pipe ring full.
				if wait == nil {
					netStats.eagains.Add(1)
					return sysdispatch.Errno(EAGAIN)
				}
				netStats.sendParks.Add(1)
				return sysdispatch.ParkedResult
			}
			if srcEOF {
				return done(0)
			}
			// Pipe has room but the socket is empty: wait for data.
			_, eof, wouldBlock := conn.TryRead(nil, wait)
			if eof {
				return done(0)
			}
			if wouldBlock {
				if wait == nil {
					netStats.eagains.Add(1)
					return sysdispatch.Errno(EAGAIN)
				}
				netStats.recvParks.Add(1)
				return sysdispatch.ParkedResult
			}
			// Data appeared between the two calls — retry the move.
		}
	}
	return sysdispatch.Errno(EINVAL)
}

// connLocked snapshots of.conn under of.mu (nil for non-sockets).
func (of *OpenFile) connLocked() *hostos.Conn {
	if of.kind != kindSock {
		return nil
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	return of.conn
}
