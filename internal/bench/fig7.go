package bench

import (
	"repro/internal/mmdsfi"
	"repro/internal/ripe"
	"repro/internal/workloads/specint"
)

// Fig7aSpecint measures MMDSFI's overhead on the twelve CPU kernels
// (paper: mean 36.6%). Cycle-count based, hence deterministic.
func Fig7aSpecint(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 7a — MMDSFI overhead on SPECint-style kernels",
		Columns: []string{"overhead"},
		Unit:    "%",
	}
	var sum float64
	for _, r := range specint.Suite {
		ov, err := specint.Overhead(r, s.SpecIters, mmdsfi.DefaultOptions())
		if err != nil {
			return nil, err
		}
		sum += ov
		t.Rows = append(t.Rows, Row{Label: r.Name, Values: []float64{100 * ov}})
	}
	t.Rows = append(t.Rows, Row{Label: "Mean", Values: []float64{100 * sum / float64(len(specint.Suite))}})
	return t, nil
}

// Fig7bBreakdown decomposes the overhead into control-transfer, store and
// load confinement, for the naive and the optimized instrumentation
// (paper: optimizations cut stores 10.1%→4.3% and loads 39.6%→25.5%).
func Fig7bBreakdown(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 7b — overhead breakdown (suite mean)",
		Columns: []string{"control", "stores", "loads", "total"},
		Unit:    "%",
	}
	configs := []struct {
		label string
		opt   bool
	}{
		{"Baseline (naive)", false},
		{"+ Optimizations", true},
	}
	for _, cfg := range configs {
		var control, stores, loads, total float64
		for _, r := range specint.Suite {
			c, err := specint.Overhead(r, s.SpecIters, mmdsfi.Options{ConfineControl: true, Optimize: cfg.opt})
			if err != nil {
				return nil, err
			}
			st, err := specint.Overhead(r, s.SpecIters, mmdsfi.Options{ConfineStores: true, Optimize: cfg.opt})
			if err != nil {
				return nil, err
			}
			ld, err := specint.Overhead(r, s.SpecIters, mmdsfi.Options{ConfineLoads: true, Optimize: cfg.opt})
			if err != nil {
				return nil, err
			}
			full, err := specint.Overhead(r, s.SpecIters, mmdsfi.Options{
				ConfineControl: true, ConfineStores: true, ConfineLoads: true, Optimize: cfg.opt})
			if err != nil {
				return nil, err
			}
			control += c
			stores += st
			loads += ld
			total += full
		}
		n := float64(len(specint.Suite))
		t.Rows = append(t.Rows, Row{
			Label:  cfg.label,
			Values: []float64{100 * control / n, 100 * stores / n, 100 * loads / n, 100 * total / n},
		})
	}
	return t, nil
}

// RIPETable reproduces §9.3: attack-success counts per class on both
// environments, with and without stack protection.
func RIPETable() (*Table, error) {
	t := &Table{
		Title:   "§9.3 — RIPE attack outcomes (succeeded / attempted)",
		Columns: []string{"code-inj", "rop", "ret-to-libc"},
		Unit:    "count",
	}
	for _, env := range []ripe.Env{ripe.EnvGraphene, ripe.EnvOcclum} {
		for _, sp := range []bool{false, true} {
			cc, _, err := ripe.RunCorpus(ripe.GenerateCorpus(sp), env)
			if err != nil {
				return nil, err
			}
			label := env.String() + " (no SP)"
			if sp {
				label = env.String() + " (SP)"
			}
			t.Rows = append(t.Rows, Row{
				Label: label,
				Values: []float64{
					float64(cc.Succeeded[ripe.TargetShellcode]),
					float64(cc.Succeeded[ripe.TargetGadget]),
					float64(cc.Succeeded[ripe.TargetLibc]),
				},
			})
		}
	}
	return t, nil
}
