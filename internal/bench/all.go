package bench

import (
	"fmt"
	"io"

	"repro/internal/fs"
	"repro/internal/libos"
	"repro/internal/sched"
	"repro/internal/vm"
)

// Experiment names accepted by Run.
var Experiments = []string{
	"fig5a", "fig5b", "fig5c",
	"fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b",
	"ripe", "table1", "c10k", "fsbench", "recovery", "ipcbench",
}

// VMStats, when true, makes Run report the OVM translation-cache
// counters (blocks decoded, hits, misses, flushes, chained
// transitions, threaded-dispatch instructions, superblocks formed,
// trace hits/exits and instructions retired inside traces, RAS hits,
// and indirect-jump inline-cache hits/misses) accumulated across
// every simulated hart during each experiment. Trace hits are counted
// separately from block hits, so the split between the two dispatch
// tiers is visible per experiment. Enabled by occlum-bench -vmstats.
var VMStats bool

// SchedStats, when true, makes Run report the M:N scheduler counters
// (parks, unparks, steals, preemptions, hart utilization) accumulated
// across every Occlum hart pool during each experiment. Enabled by
// occlum-bench -schedstats. The baselines run no scheduler, so their
// experiments contribute zeros.
var SchedStats bool

// NetStats, when true, makes Run report the readiness-path counters
// (recv/send/accept parks, poll and epoll_wait calls and parks, EAGAIN
// returns) plus the timer-wheel and backpressure counters (wheel
// arms/fires/cancels/cascades, idle-reaped connections, shed
// connections, suppressed stale timer wakes) accumulated across every
// LibOS instance during each experiment. Enabled by occlum-bench
// -netstats.
var NetStats bool

// FSStats, when true, makes Run report the filesystem counters (image
// blocks Merkle-verified, verified-cache hits, read-aheads, copy-ups,
// whiteouts, plus the self-healing store's scrubbed blocks and
// repaired/rebuilt shards) accumulated across every mounted filesystem
// during each experiment. Enabled by occlum-bench -fsstats.
var FSStats bool

// Run executes one named experiment at the given scale, printing its
// table to w.
func Run(name string, s Scale, w io.Writer) error {
	if VMStats {
		vm.ResetGlobalCacheStats()
	}
	before := sched.GlobalSnapshot()
	netBefore := libos.NetStats()
	fsBefore := fs.Stats()
	err := run(name, s, w)
	if err == nil && VMStats {
		fmt.Fprintf(w, "  [vm cache: %v]\n", vm.GlobalCacheStats())
	}
	if err == nil && SchedStats {
		d := sched.GlobalSnapshot().Sub(before)
		fmt.Fprintf(w, "  [sched: tasks=%d slices=%d parks=%d unparks=%d steals=%d preempts=%d (%d requested) yields=%d hart-util=%.1f%%]\n",
			d.Tasks, d.Slices, d.Parks, d.Unparks, d.Steals, d.Preempts, d.PreemptReqs, d.Yields, 100*d.Utilization())
	}
	if err == nil && NetStats {
		d := libos.NetStats().Sub(netBefore)
		fmt.Fprintf(w, "  [net: recv-parks=%d send-parks=%d accept-parks=%d polls=%d (%d parked) epwaits=%d (%d parked) eagains=%d writevs=%d readvs=%d sendfiles=%d splices=%d lent=%d copied=%d]\n",
			d.RecvParks, d.SendParks, d.AcceptParks, d.Polls, d.PollParks, d.EpWaits, d.EpWaitParks, d.EAgains,
			d.Writevs, d.Readvs, d.Sendfiles, d.Splices, d.BytesLent, d.BytesCopied)
		fmt.Fprintf(w, "  [net/timers: wheel-arms=%d fires=%d cancels=%d cascades=%d reaps=%d sheds=%d stale-wakes=%d]\n",
			d.WheelArms, d.WheelFires, d.WheelCancels, d.WheelCascades, d.Reaps, d.Sheds, d.StaleWakes)
	}
	if err == nil && FSStats {
		d := fs.Stats().Sub(fsBefore)
		fmt.Fprintf(w, "  [fs: verified=%d verify-hits=%d read-aheads=%d copy-ups=%d whiteouts=%d scrubbed=%d repaired=%d rebuilt=%d]\n",
			d.VerifiedBlocks, d.VerifyHits, d.ReadAheads, d.CopyUps, d.Whiteouts,
			d.ScrubbedBlocks, d.RepairedShards, d.RebuiltShards)
	}
	return err
}

func run(name string, s Scale, w io.Writer) error {
	var (
		t   *Table
		err error
	)
	switch name {
	case "fig5a":
		t, err = Fig5aFish(s)
	case "fig5b":
		t, err = Fig5bGCC(s)
	case "fig5c":
		t, err = Fig5cLighttpd(s)
	case "fig6a":
		t, err = Fig6aSpawn(s)
	case "fig6b":
		t, err = Fig6bPipe(s)
	case "fig6c":
		t, err = Fig6cdFileIO(s, false)
	case "fig6d":
		t, err = Fig6cdFileIO(s, true)
	case "fig7a":
		t, err = Fig7aSpecint(s)
	case "fig7b":
		t, err = Fig7bBreakdown(s)
	case "ripe":
		t, err = RIPETable()
	case "c10k":
		t, err = C10KTable(s)
	case "fsbench":
		t, err = FSBench(s)
	case "recovery":
		t, err = Recovery(s)
	case "ipcbench":
		t, err = IPCBench(s)
	case "table1":
		return Table1(s, w)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments)
	}
	if err != nil {
		return fmt.Errorf("bench: %s: %w", name, err)
	}
	t.Print(w)
	return nil
}

// RunAll executes every experiment.
func RunAll(s Scale, w io.Writer) error {
	for _, name := range Experiments {
		if err := Run(name, s, w); err != nil {
			return err
		}
	}
	return nil
}
