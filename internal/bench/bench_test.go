package bench

import (
	"repro/internal/fs"

	"bytes"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestShapeFig6aSpawn checks the paper's central result: Occlum spawn is
// orders of magnitude cheaper than Graphene-SGX spawn and scales with
// binary size, while Linux is flat-ish and Graphene is flat-and-huge.
func TestShapeFig6aSpawn(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape distorted by race instrumentation")
	}
	tab, err := Fig6aSpawn(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]float64{}
	for _, r := range tab.Rows {
		byLabel[r.Label] = r.Values
	}
	linux, occ, gra := byLabel["Linux"], byLabel["Occlum"], byLabel["Graphene-SGX"]
	if len(linux) != 3 || len(occ) != 3 || len(gra) != 3 {
		t.Fatalf("rows missing: %v", byLabel)
	}
	// The paper's headline: for small binaries Graphene pays the full
	// enclave-creation price while Occlum reuses a preallocated domain
	// (6,600× in the paper; the factor here depends on the configured
	// enclave size, but must be large).
	if gra[0] < occ[0]*10 {
		t.Errorf("small binary: Graphene %.3fms only %.1fx Occlum %.3fms — enclave cost missing",
			gra[0], gra[0]/occ[0], occ[0])
	}
	// Occlum's spawn grows with binary size (no demand paging in an
	// enclave), Figure 6a's second observation.
	if !(occ[2] > occ[0]*2) {
		t.Errorf("Occlum spawn not size-proportional: %v", occ)
	}
	// Graphene's spawn is dominated by the (size-independent) enclave
	// creation: the large binary costs at most a few times the small.
	if gra[2] > gra[0]*10 {
		t.Errorf("Graphene spawn unexpectedly size-dominated: %v", gra)
	}
	t.Logf("spawn ms: linux=%v occlum=%v graphene=%v", linux, occ, gra)
}

func TestShapeFig6bPipe(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape distorted by race instrumentation")
	}
	tab, err := Fig6bPipe(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]float64{}
	for _, r := range tab.Rows {
		byLabel[r.Label] = r.Values
	}
	occ, gra := byLabel["Occlum"], byLabel["Graphene-SGX"]
	last := len(occ) - 1
	// Occlum pipes (plain in-enclave copies) must beat Graphene pipes
	// (AES-GCM through untrusted memory) at large buffers.
	if occ[last] < gra[last]*1.5 {
		t.Errorf("Occlum pipe %.1f MB/s not clearly above Graphene %.1f MB/s", occ[last], gra[last])
	}
	t.Logf("pipe MB/s: %v", byLabel)
}

func TestShapeFig6cdFileIO(t *testing.T) {
	for _, write := range []bool{false, true} {
		tab, err := Fig6cdFileIO(Quick(), write)
		if err != nil {
			t.Fatal(err)
		}
		byLabel := map[string][]float64{}
		for _, r := range tab.Rows {
			byLabel[r.Label] = r.Values
		}
		linux, occ := byLabel["Linux"], byLabel["Occlum"]
		last := len(occ) - 1
		// Encryption makes Occlum slower than ext4, but within the
		// same order of magnitude (paper: 18-39% overhead).
		if occ[last] > linux[last] {
			t.Logf("write=%v: Occlum %.1f ≥ Linux %.1f MB/s (cache effects)", write, occ[last], linux[last])
		}
		if occ[last] < linux[last]/20 {
			t.Errorf("write=%v: Occlum %.1f MB/s more than 20x below Linux %.1f", write, occ[last], linux[last])
		}
	}
}

func TestShapeFig7a(t *testing.T) {
	s := Quick()
	s.SpecIters = 100
	tab, err := Fig7aSpecint(s)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, r := range tab.Rows {
		if r.Label == "Mean" {
			mean = r.Values[0]
		}
	}
	if mean < 10 || mean > 90 {
		t.Fatalf("mean overhead %.1f%% out of the paper's regime", mean)
	}
	t.Logf("mean MMDSFI overhead: %.1f%% (paper 36.6%%)", mean)
}

func TestRunAllQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Quick()
	// Shrink further for the smoke test.
	s.FishInput = 4 << 10
	s.GCCSources = []int{256, 4096}
	s.HTTPRequests = 16
	s.HTTPConcurrency = []int{2}
	s.PipeTotal = 256 << 10
	s.FileTotal = 256 << 10
	s.SpecIters = 50
	s.SpawnSizes = []SpawnBinary{{"helloworld", 0}, {"busybox", 64 << 10}, {"cc1", 512 << 10}}
	s.IPCTotal = 2 << 20

	var out bytes.Buffer
	if err := RunAll(s, &out); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, out.String())
	}
	for _, want := range []string{"Figure 5a", "Figure 6a", "Figure 7a", "RIPE", "Table 1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	t.Logf("\n%s", out.String())
}

// TestShapeIPCBench is the zero-copy data-plane CI smoke: the vectored
// lending path must beat the scalar copy path on both pipe and socket
// at every chunk size, and splice must at least match scalar. The
// splice zero-copy invariant (no payload byte staged while splice is
// the mover) is enforced inside IPCBench itself — any violation fails
// the experiment, not just this test.
func TestShapeIPCBench(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape distorted by race instrumentation")
	}
	tab, err := IPCBench(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]float64{}
	for _, r := range tab.Rows {
		byLabel[r.Label] = r.Values
	}
	chunks := Quick().IPCChunks
	for _, pair := range []struct {
		vec, sc string
		ratio   float64
	}{
		// The acceptance bar is ≥2x pipe throughput at 64 KiB+
		// (measured ~2.5-4x); the always-on smoke asserts 1.5x to
		// absorb CI jitter, and the OCCLUM_BENCH_REGRESS gate holds
		// the 2x line on medians. The socket path is noisier (the
		// host-side drain goroutine shares the clock), so its smoke
		// bar is just clearly-above-scalar.
		{"pipe writev", "pipe scalar", 1.5},
		{"sock writev", "sock scalar", 1.2},
	} {
		vec, sc := byLabel[pair.vec], byLabel[pair.sc]
		if len(vec) != len(chunks) || len(sc) != len(chunks) {
			t.Fatalf("rows missing: %v", byLabel)
		}
		for i, c := range chunks {
			if vec[i] < sc[i]*pair.ratio {
				t.Errorf("%s %.0f MB/s not ≥%.1fx %s %.0f MB/s at %d KiB",
					pair.vec, vec[i], pair.ratio, pair.sc, sc[i], c>>10)
			}
		}
	}
	spl, sc := byLabel["pipe→sock splice"], byLabel["pipe scalar"]
	for i, c := range chunks {
		if spl[i] < sc[i] {
			t.Errorf("splice %.0f MB/s below pipe scalar %.0f MB/s at %d KiB",
				spl[i], sc[i], c>>10)
		}
	}
	t.Logf("ipc MB/s: %v", byLabel)
}

// TestIPCBenchRegression holds the zero-copy data plane to the 2x
// acceptance line recorded in BENCH_PR8.json: the pipe writev-over-
// scalar speedup at 64 KiB and 1 MiB chunks must stay ≥2x on the median
// of 5 runs. Heavy and timing-sensitive, so it only runs when
// OCCLUM_BENCH_REGRESS=1 (the CI bench job sets it).
func TestIPCBenchRegression(t *testing.T) {
	if os.Getenv("OCCLUM_BENCH_REGRESS") == "" {
		t.Skip("set OCCLUM_BENCH_REGRESS=1 to run the bench smoke")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios are not meaningful under the race detector")
	}
	var ratios [][2]float64
	for run := 0; run < 5; run++ {
		tab, err := IPCBench(Quick())
		if err != nil {
			t.Fatal(err)
		}
		byLabel := map[string][]float64{}
		for _, r := range tab.Rows {
			byLabel[r.Label] = r.Values
		}
		vec, sc := byLabel["pipe writev"], byLabel["pipe scalar"]
		ratios = append(ratios, [2]float64{vec[1] / sc[1], vec[2] / sc[2]})
	}
	sort.Slice(ratios, func(i, j int) bool { return ratios[i][0] < ratios[j][0] })
	med := ratios[2]
	for i, label := range []string{"64KiB", "1MiB"} {
		if med[i] < 2.0 {
			t.Errorf("pipe writev/scalar at %s = %.2fx, want ≥ 2x (BENCH_PR8.json acceptance)",
				label, med[i])
		}
	}
	t.Logf("pipe writev/scalar medians: 64KiB %.2fx, 1MiB %.2fx", med[0], med[1])
}

// TestShapeFSBench checks fsbench's structural claims rather than raw
// wall-clock: every row produces a positive number, the cold image pass
// pays Merkle verification with read-ahead while the warm pass verifies
// nothing, and the upper layer sees the sequential write.
func TestShapeFSBench(t *testing.T) {
	before := fs.Stats()
	tab, err := FSBench(Quick())
	if err != nil {
		t.Fatal(err)
	}
	d := fs.Stats().Sub(before)
	for _, r := range tab.Rows {
		pos := false
		for _, v := range r.Values {
			if v > 0 {
				pos = true
			}
		}
		if !pos {
			t.Errorf("row %q has no positive measurement: %v", r.Label, r.Values)
		}
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("fsbench rows = %d, want 7", len(tab.Rows))
	}
	quick := Quick()
	wantBlocks := uint64(quick.FSBenchTotal / 4096)
	if d.VerifiedBlocks < wantBlocks {
		t.Errorf("verified %d blocks, want ≥ %d (the whole image file, cold)", d.VerifiedBlocks, wantBlocks)
	}
	if d.ReadAheads == 0 {
		t.Error("sequential image read triggered no read-ahead")
	}
	// The LibOS idle scrubber runs whenever the bench's harts have no SIP
	// to step — at minimum it verifies the Mkfs blocks right after boot —
	// and on an uncorrupted store it must repair nothing.
	if d.ScrubbedBlocks == 0 {
		t.Error("idle scrubber never ran during fsbench")
	}
	if d.RepairedShards != 0 || d.RebuiltShards != 0 {
		t.Errorf("healthy store healed shards: repaired=%d rebuilt=%d", d.RepairedShards, d.RebuiltShards)
	}
	t.Logf("fsbench stats: %+v", d)
}

// TestShapeRecovery checks the recovery experiment's structural claims:
// every row measures something, degraded reads and the rot scrub heal a
// meaningful number of shards, and the offline rebuild restores a full
// file's worth.
func TestShapeRecovery(t *testing.T) {
	before := fs.Stats()
	tab, err := Recovery(Quick())
	if err != nil {
		t.Fatal(err)
	}
	d := fs.Stats().Sub(before)
	byLabel := map[string][]float64{}
	for _, r := range tab.Rows {
		if r.Values[0] <= 0 {
			t.Errorf("row %q has no positive throughput: %v", r.Label, r.Values)
		}
		byLabel[r.Label] = r.Values
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("recovery rows = %d, want 6", len(tab.Rows))
	}
	blocks := Quick().FSBenchTotal / fs.BlockSize
	// Degraded reads reconstruct (and heal) one lost shard per block.
	if healed := byLabel["Degraded read + heal"][1]; healed < float64(blocks) {
		t.Errorf("degraded read healed %v shards, want ≥ %d (one per block)", healed, blocks)
	}
	// The offline rebuild restores one whole backing file: a shard per
	// block plus that file's slice of table, record and header.
	if rebuilt := byLabel["Rebuild lost file"][1]; rebuilt < float64(blocks) {
		t.Errorf("rebuild restored %v shards, want ≥ %d", rebuilt, blocks)
	}
	if byLabel["Scrub clean"][1] != 0 {
		t.Errorf("clean scrub healed %v shards", byLabel["Scrub clean"][1])
	}
	if byLabel["Scrub + heal rot"][1] == 0 {
		t.Error("rot scrub healed nothing")
	}
	if d.ScrubbedBlocks == 0 || d.RebuiltShards == 0 || d.RepairedShards == 0 {
		t.Errorf("counters did not move: %+v", d)
	}
	t.Logf("recovery stats: %+v\nrows: %v", d, byLabel)
}

// TestC10KRegression is the c10k shape gate: serving ten thousand open
// connections must stay in the same regime as serving 64, and churning
// 25% of the population per round must not blow up the steady
// connections' tail. Absolute req/s are machine-dependent, so the gate
// holds ratios on the median of 3 runs: PR 4 measured the 10k point at
// -33% of the 64-conn point and PR 10 at -42%..-35% with the wheel and
// shard work, so 0.40 is the falls-off-a-cliff line, and the churn
// row's p99 stays within 5x of the no-churn p99 (measured 2x). Heavy
// and timing-sensitive, so it only runs when OCCLUM_BENCH_REGRESS=1
// (the CI bench job sets it).
func TestC10KRegression(t *testing.T) {
	if os.Getenv("OCCLUM_BENCH_REGRESS") == "" {
		t.Skip("set OCCLUM_BENCH_REGRESS=1 to run the bench smoke")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios are not meaningful under the race detector")
	}
	var ratios, tails []float64
	for run := 0; run < 3; run++ {
		tab, err := C10KTable(Quick())
		if err != nil {
			t.Fatal(err)
		}
		byLabel := map[string][]float64{}
		for _, r := range tab.Rows {
			byLabel[r.Label] = r.Values
		}
		small, big, churn := byLabel["conns=64"], byLabel["conns=10240"], byLabel["conns=10240 +churn"]
		if small == nil || big == nil || churn == nil {
			t.Fatalf("rows missing: %v", byLabel)
		}
		for label, row := range byLabel {
			if row[3] != 0 {
				t.Fatalf("%s: %v failed requests", label, row[3])
			}
		}
		ratios = append(ratios, big[0]/small[0])
		tails = append(tails, churn[2]/big[2])
	}
	sort.Float64s(ratios)
	sort.Float64s(tails)
	if ratios[1] < 0.40 {
		t.Errorf("10k/64-conn throughput ratio median = %.2f, want ≥ 0.40", ratios[1])
	}
	if tails[1] > 5.0 {
		t.Errorf("churn/no-churn p99 ratio median = %.1fx at 10240 conns, want ≤ 5x", tails[1])
	}
	t.Logf("c10k gate: throughput ratio median %.2f, churn p99 ratio median %.1fx", ratios[1], tails[1])
}
