package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
	"repro/internal/workloads"
)

// buildTrivial builds a program that exits immediately, padded with
// static data to the requested binary size (Figure 6a's hello/busybox/cc1
// size ladder).
func buildTrivial(pad int) (*asm.Program, error) {
	b := asm.NewBuilder()
	if pad > 0 {
		b.Bytes("pad", make([]byte, pad))
	}
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.Exit(b, 0)
	return b.Finish()
}

// Fig6aSpawn measures process-creation latency for three binary sizes
// (paper: Occlum 97 µs → 63 ms scaling with size; Linux ≈ 170 µs flat;
// Graphene-SGX 0.64–0.89 s dominated by enclave creation).
func Fig6aSpawn(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 6a — process creation latency by binary size",
		Columns: make([]string, len(s.SpawnSizes)),
		Unit:    "ms",
	}
	for i, sb := range s.SpawnSizes {
		t.Columns[i] = sb.Name
	}
	kernels, err := workloads.AllKernels(s.kernelSpec())
	if err != nil {
		return nil, err
	}
	for _, k := range kernels {
		row := Row{Label: k.Name()}
		for _, sb := range s.SpawnSizes {
			prog, err := buildTrivial(sb.Pad)
			if err != nil {
				return nil, err
			}
			path := "/bin/" + sb.Name
			if err := k.InstallProgram(path, prog); err != nil {
				return nil, fmt.Errorf("%s %s: %w", k.Name(), sb.Name, err)
			}
			// Warm once (fills the native page cache, as the
			// paper's measurements do), then take the best of 3.
			if _, err := workloads.RunToCompletion(k, path, nil, nil); err != nil {
				return nil, err
			}
			best := time.Duration(1 << 62)
			for i := 0; i < 3; i++ {
				start := time.Now()
				status, err := workloads.RunToCompletion(k, path, nil, nil)
				if err != nil || status != 0 {
					return nil, fmt.Errorf("%s: status %d err %v", k.Name(), status, err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			row.Values = append(row.Values, ms(best))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// buildPipePump builds the Figure 6b measurement program: it creates a
// pipe, spawns a drain process, pumps total bytes through in chunks of
// the given size, and waits.
func buildPipePump(total, chunk int) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("pfds", 16)
	b.Zero("chunk", chunk)
	b.String("drain", "/bin/drain")
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.Pipe2(b, "pfds")
	// fd60 ← read end (drain's input), fd61 ← write end.
	b.LoadData(isa.R6, "pfds")
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, workloads.FilterIn)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	b.LeaData(isa.R6, "pfds")
	b.Load(isa.R6, isa.Mem(isa.R6, 8))
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, workloads.FilterOut)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	ulib.SpawnPath(b, "drain", 10, "", 0)
	b.MovRR(isa.R9, isa.R0) // drain pid
	// The parent no longer needs the read end.
	b.MovRI(isa.R1, workloads.FilterIn)
	ulib.Syscall(b, libos.SysClose)
	// Pump.
	b.MovRI(isa.R8, int64(total/chunk))
	b.Label("pump")
	b.MovRI(isa.R1, workloads.FilterOut)
	b.LeaData(isa.R2, "chunk")
	b.MovRI(isa.R3, int64(chunk))
	ulib.Syscall(b, libos.SysWrite)
	b.SubI(isa.R8, 1)
	b.CmpI(isa.R8, 0)
	b.Jg("pump")
	b.MovRI(isa.R1, workloads.FilterOut)
	ulib.Syscall(b, libos.SysClose)
	ulib.Wait4(b, isa.R9)
	ulib.Exit(b, 0)
	return b.Finish()
}

// buildDrain builds the pipe sink: close the inherited write end, then
// read fd60 to EOF.
func buildDrain() (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("buf", 4096)
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R1, workloads.FilterOut)
	ulib.Syscall(b, libos.SysClose)
	b.Label("loop")
	b.MovRI(isa.R1, workloads.FilterIn)
	b.LeaData(isa.R2, "buf")
	b.MovRI(isa.R3, 4096)
	ulib.Syscall(b, libos.SysRead)
	b.CmpI(isa.R0, 0)
	b.Jg("loop")
	ulib.Exit(b, 0)
	return b.Finish()
}

// Fig6bPipe measures pipe throughput across chunk sizes (paper: Occlum ≈
// Linux, both >3× Graphene-SGX whose pipes encrypt every message).
func Fig6bPipe(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 6b — pipe throughput by buffer size",
		Columns: make([]string, len(s.PipeBufs)),
		Unit:    "MB/s",
	}
	for i, bs := range s.PipeBufs {
		t.Columns[i] = fmt.Sprintf("%dB", bs)
	}
	kernels, err := workloads.AllKernels(s.kernelSpec())
	if err != nil {
		return nil, err
	}
	for _, k := range kernels {
		drain, err := buildDrain()
		if err != nil {
			return nil, err
		}
		if err := k.InstallProgram("/bin/drain", drain); err != nil {
			return nil, err
		}
		row := Row{Label: k.Name()}
		for bi, bs := range s.PipeBufs {
			pump, err := buildPipePump(s.PipeTotal, bs)
			if err != nil {
				return nil, err
			}
			path := fmt.Sprintf("/bin/pump%d", bi)
			if err := k.InstallProgram(path, pump); err != nil {
				return nil, err
			}
			start := time.Now()
			status, err := workloads.RunToCompletion(k, path, nil, io.Discard)
			if err != nil || status != 0 {
				return nil, fmt.Errorf("%s buf %d: status %d err %v", k.Name(), bs, status, err)
			}
			mbps := float64(s.PipeTotal) / (1 << 20) / time.Since(start).Seconds()
			row.Values = append(row.Values, mbps)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// buildFileIO builds the Figure 6c/6d measurement program: sequential
// writes (write=true) or reads over total bytes with the given buffer.
func buildFileIO(path string, total, buf int, write bool) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.String("path", path)
	b.Zero("buf", buf)
	b.Entry("_start")
	ulib.Prologue(b)
	flags := int64(libos.ORdOnly)
	if write {
		flags = libos.ORdWr | libos.OCreate | libos.OTrunc
	}
	ulib.OpenPath(b, "path", int64(len(path)), flags)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jl("fail")
	b.MovRI(isa.R8, int64(total/buf))
	b.Label("loop")
	b.MovRR(isa.R1, isa.R7)
	b.LeaData(isa.R2, "buf")
	b.MovRI(isa.R3, int64(buf))
	if write {
		ulib.Syscall(b, libos.SysWrite)
	} else {
		ulib.Syscall(b, libos.SysRead)
	}
	// Every transfer must move the full buffer (EOF or a read-only FS
	// shows up as a short or failed transfer → exit 1).
	b.CmpI(isa.R0, int32(buf))
	b.Jne("fail")
	b.SubI(isa.R8, 1)
	b.CmpI(isa.R8, 0)
	b.Jg("loop")
	ulib.Close(b, isa.R7)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}

// Fig6cdFileIO measures sequential file I/O throughput on Linux ext4 vs
// Occlum's encrypted FS (paper: Occlum 39% below ext4 on reads, 18% on
// writes; Graphene-SGX excluded — no writable FS). write selects 6d.
func Fig6cdFileIO(s Scale, write bool) (*Table, error) {
	name, fig := "reads", "6c"
	if write {
		name, fig = "writes", "6d"
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure %s — sequential file %s by buffer size", fig, name),
		Columns: make([]string, len(s.FileBufs)),
		Unit:    "MB/s",
	}
	for i, bs := range s.FileBufs {
		t.Columns[i] = fmt.Sprintf("%dB", bs)
	}
	spec := s.kernelSpec()
	occ, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		return nil, err
	}
	kernels := []workloads.Kernel{workloads.NewLinuxKernel(spec), occ}
	for _, k := range kernels {
		row := Row{Label: k.Name()}
		for bi, bs := range s.FileBufs {
			if bs > s.FileTotal {
				row.Values = append(row.Values, 0)
				continue
			}
			file := fmt.Sprintf("/data/io%d.bin", bi)
			// Pre-create (with content for the read case): this also
			// ensures /data exists on filesystems with real
			// directories.
			content := make([]byte, s.FileTotal)
			if write {
				content = nil
			}
			if err := k.WriteInput(file, content); err != nil {
				return nil, err
			}
			prog, err := buildFileIO(file, s.FileTotal, bs, write)
			if err != nil {
				return nil, err
			}
			path := fmt.Sprintf("/bin/io%v%d", write, bi)
			if err := k.InstallProgram(path, prog); err != nil {
				return nil, err
			}
			start := time.Now()
			status, err := workloads.RunToCompletion(k, path, nil, nil)
			if err != nil || status != 0 {
				return nil, fmt.Errorf("%s buf %d: status %d err %v", k.Name(), bs, status, err)
			}
			mbps := float64(s.FileTotal) / (1 << 20) / time.Since(start).Seconds()
			row.Values = append(row.Values, mbps)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
