//go:build race

package bench

// raceEnabled reports that this build is instrumented by the race
// detector. The wall-clock shape tests consult it: race instrumentation
// slows subsystems by different factors (crypto-heavy enclave
// measurement far more than syscall plumbing), so cross-system timing
// ratios lose the shape the tests assert while remaining meaningful in
// normal builds. Deterministic cycle-count experiments are unaffected
// and run under -race as usual.
const raceEnabled = true
