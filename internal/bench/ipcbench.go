package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
	"repro/internal/workloads"
)

// IPCBench measures the zero-copy data plane on the Occlum kernel:
// bytes/s through a pipe and through a loopback socket, moved by the
// scalar copy path, by the vectored lending path (a 4-span gather per
// chunk — the natural writev shape, where the scalar equivalent is four
// write calls), and by splice (pipe→socket without the payload ever
// entering guest-visible staging). The splice rows are self-checking:
// the experiment fails if any payload byte crosses the copied ledger
// while splice is the mover.
func IPCBench(s Scale) (*Table, error) {
	t := &Table{
		Title:   "ipcbench — zero-copy data plane (Occlum): scalar vs vectored vs splice",
		Columns: make([]string, len(s.IPCChunks)),
		Unit:    "MB/s",
	}
	for i, c := range s.IPCChunks {
		t.Columns[i] = fmt.Sprintf("%dKiB", c>>10)
	}
	k, err := workloads.NewOcclumKernel(s.kernelSpec())
	if err != nil {
		return nil, err
	}
	defer k.Sys.OS.Shutdown()

	// The pipe sinks: one per plumbing style so a vectored writer is
	// paired with a vectored reader (the row measures the whole path).
	for _, d := range []struct {
		path     string
		vectored bool
	}{{"/bin/ipcdrain-s", false}, {"/bin/ipcdrain-v", true}} {
		prog, err := buildIPCDrain(d.vectored)
		if err != nil {
			return nil, err
		}
		if err := k.InstallProgram(d.path, prog); err != nil {
			return nil, err
		}
	}

	type mode struct {
		label string
		kind  string // "pipe", "sock", "splice"
		vec   bool
	}
	modes := []mode{
		{"pipe scalar", "pipe", false},
		{"pipe writev", "pipe", true},
		{"sock scalar", "sock", false},
		{"sock writev", "sock", true},
		{"pipe→sock splice", "splice", false},
	}
	for mi, m := range modes {
		row := Row{Label: m.label}
		for ci, chunk := range s.IPCChunks {
			port := uint16(9500 + mi*len(s.IPCChunks) + ci)
			path := fmt.Sprintf("/bin/ipc%d-%d", mi, ci)
			var prog *asm.Program
			switch m.kind {
			case "pipe":
				drain := "/bin/ipcdrain-s"
				if m.vec {
					drain = "/bin/ipcdrain-v"
				}
				prog, err = buildIPCPipePump(s.IPCTotal, chunk, m.vec, drain)
			case "sock":
				prog, err = buildIPCSockPump(s.IPCTotal, chunk, port, m.vec)
			case "splice":
				fill, ferr := buildIPCFill(s.IPCTotal, chunk)
				if ferr != nil {
					return nil, ferr
				}
				fillPath := fmt.Sprintf("/bin/ipcfill%d", ci)
				if err := k.InstallProgram(fillPath, fill); err != nil {
					return nil, err
				}
				prog, err = buildIPCSplice(s.IPCTotal, chunk, port, fillPath)
			}
			if err != nil {
				return nil, err
			}
			if err := k.InstallProgram(path, prog); err != nil {
				return nil, err
			}
			var drained chan error
			if m.kind != "pipe" {
				drained = hostDrain(k, port, s.IPCTotal)
			}
			net0 := libos.NetStats()
			start := time.Now()
			status, rerr := workloads.RunToCompletion(k, path, nil, io.Discard)
			if rerr != nil || status != 0 {
				return nil, fmt.Errorf("ipcbench %s chunk %d: status %d err %v",
					m.label, chunk, status, rerr)
			}
			if drained != nil {
				if err := <-drained; err != nil {
					return nil, fmt.Errorf("ipcbench %s chunk %d: %w", m.label, chunk, err)
				}
			}
			elapsed := time.Since(start)
			if m.kind == "splice" {
				// The zero-copy invariant, enforced on every run: with
				// a vectored filler and a splice mover no payload byte
				// may be staged. (The copied ledger counts only data
				// bytes, so the control plane cannot perturb it.)
				d := libos.NetStats().Sub(net0)
				if d.Splices == 0 {
					return nil, fmt.Errorf("ipcbench splice chunk %d: no splice syscalls recorded", chunk)
				}
				if d.BytesCopied != 0 {
					return nil, fmt.Errorf("ipcbench splice chunk %d: %d bytes staged through the copy path, want 0",
						chunk, d.BytesCopied)
				}
			}
			row.Values = append(row.Values,
				float64(s.IPCTotal)/(1<<20)/elapsed.Seconds())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// hostDrain dials the SIP's listening port from the host side and reads
// exactly total bytes, reporting on the returned channel.
func hostDrain(k workloads.Kernel, port uint16, total int) chan error {
	ch := make(chan error, 1)
	go func() {
		// Generous deadline: under -race with the whole tree testing in
		// parallel, spawn→listen can take seconds. Success exits early.
		conn, err := k.Host().Dial(port)
		for deadline := time.Now().Add(60 * time.Second); err != nil && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
			conn, err = k.Host().Dial(port)
		}
		if err != nil {
			ch <- fmt.Errorf("dial %d: %w", port, err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 256<<10)
		got := 0
		for got < total {
			n, rerr := conn.Read(buf)
			got += n
			if rerr != nil {
				break
			}
		}
		if got < total {
			ch <- fmt.Errorf("drain %d: got %d of %d bytes", port, got, total)
			return
		}
		ch <- nil
	}()
	return ch
}

// emitGather fills iovec entries 0..3 of iovSym with the four quarters
// of the chunk buffer (clobbers R5, R8, R9).
func emitGather(b *asm.Builder, iovSym, bufSym string, chunk int) {
	span := chunk / 4
	for i := 0; i < 4; i++ {
		b.LeaData(isa.R5, bufSym)
		if off := i * span; off > 0 {
			b.AddI(isa.R5, int32(off))
		}
		ulib.IovSetReg(b, iovSym, int64(i), isa.R5, int64(span))
	}
}

// emitScalarQuarters emits four scalar writes covering the chunk buffer
// (the scalar equivalent of the 4-span gather), asserting each moves its
// full quarter. fd must already be in a register ≠ R1..R3.
func emitScalarQuarters(b *asm.Builder, fd isa.Reg, bufSym string, chunk int, sysno int64, failLabel string) {
	span := chunk / 4
	for i := 0; i < 4; i++ {
		b.MovRR(isa.R1, fd)
		b.LeaData(isa.R2, bufSym)
		if off := i * span; off > 0 {
			b.AddI(isa.R2, int32(off))
		}
		b.MovRI(isa.R3, int64(span))
		ulib.Syscall(b, sysno)
		b.CmpI(isa.R0, int32(span))
		b.Jne(failLabel)
	}
}

// buildIPCDrain builds the pipe sink: close the inherited write end,
// then read fd60 to EOF in 64 KiB transfers — through the staging read
// path, or through a single-span readv (a lent view: one copy fewer).
func buildIPCDrain(vectored bool) (*asm.Program, error) {
	const buf = 64 << 10
	b := asm.NewBuilder()
	b.Zero("buf", buf)
	if vectored {
		b.Zero("iov", 16)
	}
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R1, workloads.FilterOut)
	ulib.Syscall(b, libos.SysClose)
	if vectored {
		ulib.IovSetSym(b, "iov", 0, "buf", buf)
		b.MovRI(isa.R6, workloads.FilterIn)
	}
	b.Label("loop")
	if vectored {
		ulib.Readv(b, isa.R6, "iov", 1)
	} else {
		b.MovRI(isa.R1, workloads.FilterIn)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, buf)
		ulib.Syscall(b, libos.SysRead)
	}
	b.CmpI(isa.R0, 0)
	b.Jg("loop")
	ulib.Exit(b, 0)
	return b.Finish()
}

// buildIPCPipePump builds the pipe measurement program: create a pipe,
// spawn the matching drain, push total bytes in chunk-sized rounds —
// each round either one 4-span writev or four scalar writes — and wait.
func buildIPCPipePump(total, chunk int, vectored bool, drainPath string) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("pfds", 16)
	b.Zero("chunk", chunk)
	if vectored {
		b.Zero("iov", 64)
	}
	b.String("drain", drainPath)
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.Pipe2(b, "pfds")
	// fd60 ← read end (the drain's input), fd61 ← write end.
	b.LoadData(isa.R6, "pfds")
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, workloads.FilterIn)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	b.LeaData(isa.R6, "pfds")
	b.Load(isa.R6, isa.Mem(isa.R6, 8))
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, workloads.FilterOut)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	ulib.SpawnPath(b, "drain", int64(len(drainPath)), "", 0)
	b.MovRR(isa.R10, isa.R0) // drain pid
	b.MovRI(isa.R1, workloads.FilterIn)
	ulib.Syscall(b, libos.SysClose)
	if vectored {
		emitGather(b, "iov", "chunk", chunk)
	}
	b.MovRI(isa.R6, workloads.FilterOut)
	b.MovRI(isa.R7, int64(total))
	b.Label("pump")
	if vectored {
		ulib.Writev(b, isa.R6, "iov", 4)
		b.CmpI(isa.R0, int32(chunk))
		b.Jne("fail")
	} else {
		emitScalarQuarters(b, isa.R6, "chunk", chunk, libos.SysWrite, "fail")
	}
	b.SubI(isa.R7, int32(chunk))
	b.CmpI(isa.R7, 0)
	b.Jg("pump")
	b.MovRI(isa.R1, workloads.FilterOut)
	ulib.Syscall(b, libos.SysClose)
	ulib.Wait4(b, isa.R10)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}

// buildIPCSockPump builds the socket measurement program: listen on
// port, accept the host drain's connection, push total bytes in
// chunk-sized rounds (one writev or four scalar sends each), close.
func buildIPCSockPump(total, chunk int, port uint16, vectored bool) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("chunk", chunk)
	if vectored {
		b.Zero("iov", 64)
	}
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.Socket(b)
	b.MovRR(isa.R6, isa.R0)
	b.CmpI(isa.R6, 0)
	b.Jl("fail")
	ulib.Bind(b, isa.R6, int64(port))
	b.CmpI(isa.R0, 0)
	b.Jl("fail")
	ulib.ListenSock(b, isa.R6)
	b.MovRR(isa.R1, isa.R6)
	ulib.Syscall(b, libos.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jl("fail")
	if vectored {
		emitGather(b, "iov", "chunk", chunk)
	}
	b.MovRI(isa.R10, int64(total))
	b.Label("pump")
	if vectored {
		ulib.Writev(b, isa.R7, "iov", 4)
		b.CmpI(isa.R0, int32(chunk))
		b.Jne("fail")
	} else {
		emitScalarQuarters(b, isa.R7, "chunk", chunk, libos.SysSend, "fail")
	}
	b.SubI(isa.R10, int32(chunk))
	b.CmpI(isa.R10, 0)
	b.Jg("pump")
	ulib.Close(b, isa.R7)
	ulib.Close(b, isa.R6)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}

// buildIPCFill builds the splice feeder: close the inherited read end,
// writev total bytes into the pipe write end (lent, never staged), close
// it so the splicer sees EOF after the last byte.
func buildIPCFill(total, chunk int) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("chunk", chunk)
	b.Zero("iov", 64)
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R1, workloads.FilterIn)
	ulib.Syscall(b, libos.SysClose)
	emitGather(b, "iov", "chunk", chunk)
	b.MovRI(isa.R6, workloads.FilterOut)
	b.MovRI(isa.R7, int64(total))
	b.Label("pump")
	ulib.Writev(b, isa.R6, "iov", 4)
	b.CmpI(isa.R0, int32(chunk))
	b.Jne("fail")
	b.SubI(isa.R7, int32(chunk))
	b.CmpI(isa.R7, 0)
	b.Jg("pump")
	b.MovRI(isa.R1, workloads.FilterOut)
	ulib.Syscall(b, libos.SysClose)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}

// buildIPCSplice builds the splice mover: accept the host drain on
// port, create the pipe, spawn the feeder, then splice pipe→socket
// until total bytes have moved. The payload is produced by the feeder
// and consumed by the host; this process never maps a byte of it.
func buildIPCSplice(total, chunk int, port uint16, fillPath string) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("pfds", 16)
	b.String("fill", fillPath)
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.Socket(b)
	b.MovRR(isa.R6, isa.R0)
	b.CmpI(isa.R6, 0)
	b.Jl("fail")
	ulib.Bind(b, isa.R6, int64(port))
	b.CmpI(isa.R0, 0)
	b.Jl("fail")
	ulib.ListenSock(b, isa.R6)
	b.MovRR(isa.R1, isa.R6)
	ulib.Syscall(b, libos.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jl("fail")
	ulib.Close(b, isa.R6)
	ulib.Pipe2(b, "pfds")
	b.LoadData(isa.R6, "pfds")
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, workloads.FilterIn)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	b.LeaData(isa.R6, "pfds")
	b.Load(isa.R6, isa.Mem(isa.R6, 8))
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, workloads.FilterOut)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	ulib.SpawnPath(b, "fill", int64(len(fillPath)), "", 0)
	b.MovRR(isa.R10, isa.R0) // feeder pid
	b.MovRI(isa.R1, workloads.FilterOut)
	ulib.Syscall(b, libos.SysClose)
	b.MovRI(isa.R6, workloads.FilterIn)
	b.MovRI(isa.R5, int64(total))
	b.Label("pump")
	ulib.Splice(b, isa.R6, isa.R7, int64(chunk))
	b.CmpI(isa.R0, 0)
	b.Jle("fail") // EOF before total ⇒ the feeder under-delivered
	b.Sub(isa.R5, isa.R0)
	b.CmpI(isa.R5, 0)
	b.Jg("pump")
	ulib.Wait4(b, isa.R10)
	ulib.Close(b, isa.R7)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}
