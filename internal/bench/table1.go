package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/workloads"
)

// Table1 measures the three SIP-vs-EIP comparisons of the paper's
// Table 1 head to head: process creation (cheap vs expensive), IPC (cheap
// vs expensive) and the shared filesystem (writable vs read-only).
func Table1(s Scale, w io.Writer) error {
	spec := s.kernelSpec()
	occ, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		return err
	}
	gra := workloads.NewEIPKernel(spec)

	fmt.Fprintf(w, "\nTable 1 — SIPs (Occlum) vs EIPs (Graphene-SGX)\n")

	// Process creation.
	var spawnTimes [2]time.Duration
	for i, k := range []workloads.Kernel{occ, gra} {
		prog, err := buildTrivial(0)
		if err != nil {
			return err
		}
		if err := k.InstallProgram("/bin/t1", prog); err != nil {
			return err
		}
		if _, err := workloads.RunToCompletion(k, "/bin/t1", nil, nil); err != nil {
			return err
		}
		start := time.Now()
		if _, err := workloads.RunToCompletion(k, "/bin/t1", nil, nil); err != nil {
			return err
		}
		spawnTimes[i] = time.Since(start)
	}
	fmt.Fprintf(w, "  Process creation:  Occlum %v, Graphene-SGX %v (%.0fx)\n",
		spawnTimes[0], spawnTimes[1], float64(spawnTimes[1])/float64(spawnTimes[0]))

	// IPC throughput (4 KiB chunks).
	var ipc [2]float64
	for i, k := range []workloads.Kernel{occ, gra} {
		drain, err := buildDrain()
		if err != nil {
			return err
		}
		if err := k.InstallProgram("/bin/drain", drain); err != nil {
			return err
		}
		pump, err := buildPipePump(s.PipeTotal, 4096)
		if err != nil {
			return err
		}
		if err := k.InstallProgram("/bin/t1pump", pump); err != nil {
			return err
		}
		start := time.Now()
		status, err := workloads.RunToCompletion(k, "/bin/t1pump", nil, nil)
		if err != nil || status != 0 {
			return fmt.Errorf("%s: status %d err %v", k.Name(), status, err)
		}
		ipc[i] = float64(s.PipeTotal) / (1 << 20) / time.Since(start).Seconds()
	}
	fmt.Fprintf(w, "  IPC (pipe, 4KiB):  Occlum %.0f MB/s, Graphene-SGX %.0f MB/s (%.1fx)\n",
		ipc[0], ipc[1], ipc[0]/ipc[1])

	// Shared filesystem: attempt a runtime write on each. The parent
	// directory is prepared at image time on both (that much even the
	// read-only FS allows); the *runtime write* is what differs.
	_ = occ.WriteInput("/data/prepared", nil)
	_ = gra.WriteInput("/data/prepared", nil)
	writable := func(k workloads.Kernel) bool {
		prog, err := buildFileIO("/data/t1probe", 4096, 4096, true)
		if err != nil {
			return false
		}
		if err := k.InstallProgram("/bin/t1w", prog); err != nil {
			return false
		}
		status, err := workloads.RunToCompletion(k, "/bin/t1w", nil, nil)
		return err == nil && status == 0
	}
	occW, graW := writable(occ), writable(gra)
	fmt.Fprintf(w, "  Shared encrypted FS: Occlum writable=%v, Graphene-SGX writable=%v\n", occW, graW)
	if !occW || graW {
		return fmt.Errorf("bench: Table 1 FS property mismatch (occlum=%v graphene=%v)", occW, graW)
	}
	return nil
}
