package bench

import (
	"fmt"
	"time"

	"repro/internal/fs"
	"repro/internal/hostos"
)

// Recovery measures the self-healing storage layer on its own: the cost
// of the striped write and read paths, how fast reads run degraded (one
// backing file gone, every stripe reconstructed from parity and healed
// in passing), how fast an offline Repair rebuilds a lost backing file,
// and what a scrub pass costs when the store is clean versus when host
// bit-rot has to be found and rewritten. Shards-healed counts come from
// the filesystem stat counters, so -fsstats shows the same numbers.
func Recovery(s Scale) (*Table, error) {
	blocks := s.FSBenchTotal / fs.BlockSize
	if blocks < 8 {
		blocks = 8
	}
	data := make([]byte, fs.BlockSize)
	for i := range data {
		data[i] = byte(i * 31)
	}

	h := hostos.New()
	key := fs.KeyFromString("recovery-bench")
	store, err := fs.CreateStore(h, "rec.img", key, blocks)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "recovery — erasure-coded store: degraded reads, rebuild, scrub",
		Columns: []string{"MB/s", "shards healed"},
		Unit:    "per row",
	}
	mb := float64(blocks) * fs.BlockSize / (1 << 20)
	addRow := func(label string, d time.Duration, healed uint64) {
		t.Rows = append(t.Rows, Row{Label: label, Values: []float64{mb / d.Seconds(), float64(healed)}})
	}
	readAll := func() error {
		for i := 0; i < blocks; i++ {
			if _, err := store.ReadBlock(i); err != nil {
				return fmt.Errorf("recovery: read block %d: %w", i, err)
			}
		}
		return nil
	}

	// 1: striped write (k data + m parity shards per block) + commit.
	start := time.Now()
	for i := 0; i < blocks; i++ {
		if err := store.WriteBlock(i, data); err != nil {
			return nil, err
		}
	}
	if err := store.Flush(); err != nil {
		return nil, err
	}
	addRow("Striped write", time.Since(start), 0)

	// 2: intact read — decrypt + MAC, no reconstruction.
	start = time.Now()
	if err := readAll(); err != nil {
		return nil, err
	}
	addRow("Intact read", time.Since(start), 0)

	// 3: degraded read — one backing file deleted; every stripe decodes
	// from the surviving shards and heals the hole as it goes.
	lost := store.BackingFiles()[1]
	h.DropFiles(lost)
	before := fs.Stats()
	start = time.Now()
	if err := readAll(); err != nil {
		return nil, err
	}
	healed := fs.Stats().Sub(before).RepairedShards
	if healed == 0 {
		return nil, fmt.Errorf("recovery: degraded read healed nothing")
	}
	addRow("Degraded read + heal", time.Since(start), healed)

	// 4: offline rebuild of a lost backing file via Repair.
	h.DropFiles(store.BackingFiles()[3])
	before = fs.Stats()
	start = time.Now()
	rebuilt, err := store.Repair()
	if err != nil {
		return nil, err
	}
	if rebuilt == 0 {
		return nil, fmt.Errorf("recovery: repair rebuilt nothing")
	}
	addRow("Rebuild lost file", time.Since(start), fs.Stats().Sub(before).RebuiltShards)

	// 5: scrub over a clean store — pure verification cost.
	before = fs.Stats()
	start = time.Now()
	if _, err := store.Scrub(); err != nil {
		return nil, err
	}
	if r := fs.Stats().Sub(before).RepairedShards; r != 0 {
		return nil, fmt.Errorf("recovery: clean scrub repaired %d shards", r)
	}
	addRow("Scrub clean", time.Since(start), 0)

	// 6: scrub over a rotted store — bit flips across two backing files
	// (within the m=2 parity budget) found and rewritten. The clean pass
	// above latched the scrubber; a write unlatches it, the way any real
	// mutation would.
	if err := store.WriteBlock(0, data); err != nil {
		return nil, err
	}
	if err := store.Flush(); err != nil {
		return nil, err
	}
	ref := store.BackingFiles()[0]
	dataStart := h.FileSize(ref) - blocks*2048
	for _, name := range store.BackingFiles()[4:6] {
		h.CorruptFiles(name, dataStart, h.FileSize(name), blocks/2, 11)
	}
	before = fs.Stats()
	start = time.Now()
	if _, err := store.Scrub(); err != nil {
		return nil, err
	}
	healed = fs.Stats().Sub(before).RepairedShards
	if healed == 0 {
		return nil, fmt.Errorf("recovery: rot scrub healed nothing")
	}
	addRow("Scrub + heal rot", time.Since(start), healed)

	// The store must come out of all of this intact.
	if err := readAll(); err != nil {
		return nil, fmt.Errorf("recovery: store damaged by its own recovery: %w", err)
	}
	return t, nil
}
