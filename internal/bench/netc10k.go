package bench

import (
	"fmt"
	"time"

	"repro/internal/workloads"
)

// C10KTable measures the event-driven (epoll) HTTPD under a growing
// number of simultaneously open connections on a fixed 4-hart pool —
// the C10K configuration the thread-per-connection server structurally
// cannot reach (its concurrent service is capped at the hart count,
// since every in-flight connection owns a worker SIP's attention).
//
// Every connection is opened and held before the first request flows;
// throughput and tail latency per point show whether serving 10k
// connections costs more than serving 64 (the acceptance bar is staying
// within ~10%).
func C10KTable(s Scale) (*Table, error) {
	const (
		port    = 9400
		workers = 8
		harts   = 4
		// churnStride: each connection closes and redials every 4th
		// round — 25% of the population cycles through the full accept
		// path per round.
		churnStride = 4
	)
	t := &Table{
		Title:   fmt.Sprintf("C10K — event-driven HTTPD over %d harts, %d epoll workers", harts, workers),
		Columns: []string{"req/s", "p50 ms", "p99 ms", "failed", "churns"},
		Unit:    "per conns row",
	}
	spec := workloads.KernelSpec{
		Domains:        workers + 2,
		DomainCode:     1 << 20,
		DomainData:     4 << 20,
		EIPEnclaveSize: s.EIPEnclave,
		Harts:          harts,
		// A production-shaped server keeps an idle deadline on every
		// connection. The timeout never fires here (every connection
		// stays active), but each accept arms and each close cancels a
		// wheel entry — the c10k numbers include that bookkeeping, and
		// -netstats shows it moving.
		IdleTimeout: 60 * time.Second,
	}
	k, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		return nil, err
	}
	defer k.Sys.OS.Shutdown()

	master, err := workloads.InstallEventHTTPD(k, port, workers)
	if err != nil {
		return nil, err
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, conns := range s.C10KConns {
		// At least 4 rounds per row: a single burst never reaches
		// steady state, and throughput comparisons across rows need
		// sustained serving, not ramp effects.
		rounds := max(4, s.C10KRequests/conns)
		res := workloads.RunC10K(k, port, conns, rounds)
		if res.Failed > 0 {
			return nil, fmt.Errorf("c10k conns=%d: %d/%d failed requests",
				conns, res.Failed, res.Requests)
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("conns=%d", conns),
			Values: []float64{
				res.Throughput(),
				float64(res.P50.Microseconds()) / 1000,
				float64(res.P99.Microseconds()) / 1000,
				float64(res.Failed),
				0,
			},
		})
		// Churn rows at the 10k+ points: every connection re-dials once
		// per churnStride rounds, so the steady connections' tail
		// latency is measured while the accept/register/reap-arm path
		// stays hot — the configuration where per-fd-table and
		// timer-cancel contention would show.
		if conns < 10000 {
			continue
		}
		cres := workloads.RunC10KChurn(k, port, conns, rounds, churnStride)
		if cres.Failed > 0 {
			return nil, fmt.Errorf("c10k conns=%d churn: %d/%d failed requests",
				conns, cres.Failed, cres.Requests)
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("conns=%d +churn", conns),
			Values: []float64{
				cres.Throughput(),
				float64(cres.P50.Microseconds()) / 1000,
				float64(cres.P99.Microseconds()) / 1000,
				float64(cres.Failed),
				float64(cres.Churns),
			},
		})
	}
	workloads.StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		return nil, fmt.Errorf("c10k: master status %d", status)
	}
	return t, nil
}
