package bench

import (
	"fmt"

	"repro/internal/workloads"
)

// C10KTable measures the event-driven (epoll) HTTPD under a growing
// number of simultaneously open connections on a fixed 4-hart pool —
// the C10K configuration the thread-per-connection server structurally
// cannot reach (its concurrent service is capped at the hart count,
// since every in-flight connection owns a worker SIP's attention).
//
// Every connection is opened and held before the first request flows;
// throughput and tail latency per point show whether serving 10k
// connections costs more than serving 64 (the acceptance bar is staying
// within ~10%).
func C10KTable(s Scale) (*Table, error) {
	const (
		port    = 9400
		workers = 8
		harts   = 4
	)
	t := &Table{
		Title:   fmt.Sprintf("C10K — event-driven HTTPD over %d harts, %d epoll workers", harts, workers),
		Columns: []string{"req/s", "p50 ms", "p99 ms", "failed"},
		Unit:    "per conns row",
	}
	spec := workloads.KernelSpec{
		Domains:        workers + 2,
		DomainCode:     1 << 20,
		DomainData:     4 << 20,
		EIPEnclaveSize: s.EIPEnclave,
		Harts:          harts,
	}
	k, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		return nil, err
	}
	defer k.Sys.OS.Shutdown()

	master, err := workloads.InstallEventHTTPD(k, port, workers)
	if err != nil {
		return nil, err
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, conns := range s.C10KConns {
		// At least 4 rounds per row: a single burst never reaches
		// steady state, and throughput comparisons across rows need
		// sustained serving, not ramp effects.
		rounds := max(4, s.C10KRequests/conns)
		res := workloads.RunC10K(k, port, conns, rounds)
		if res.Failed > 0 {
			return nil, fmt.Errorf("c10k conns=%d: %d/%d failed requests",
				conns, res.Failed, res.Requests)
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("conns=%d", conns),
			Values: []float64{
				res.Throughput(),
				float64(res.P50.Microseconds()) / 1000,
				float64(res.P99.Microseconds()) / 1000,
				float64(res.Failed),
			},
		})
	}
	workloads.StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		return nil, fmt.Errorf("c10k: master status %d", status)
	}
	return t, nil
}
