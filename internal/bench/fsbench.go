package bench

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/fs"
	"repro/internal/workloads"
)

// FSBench measures the completed Occlum filesystem (§6): the writable
// encrypted layer (sequential/random read+write through real SIP
// syscalls), the integrity-verified image layer (cold first read paying
// Merkle verification + read-ahead vs. warm re-read from the verified
// page cache), and an open/stat metadata storm across both layers of
// the union root. Run with -fsstats to see the verify/copy-up/read-ahead
// counters behind the numbers.
func FSBench(s Scale) (*Table, error) {
	total, buf := s.FSBenchTotal, s.FSBenchBuf
	chunks := total / buf

	// Trusted base image: the bulk file for cold/warm reads plus small
	// files for the metadata storm's image half.
	ib := fs.NewImageBuilder()
	if err := ib.AddFile("/img/data.bin", make([]byte, total)); err != nil {
		return nil, err
	}
	metaPaths := []string{}
	for i := 0; i < 2; i++ {
		p := fmt.Sprintf("/img/meta/f%d", i)
		if err := ib.AddFile(p, []byte("image metadata target")); err != nil {
			return nil, err
		}
		metaPaths = append(metaPaths, p)
	}
	blob, root, err := ib.Build()
	if err != nil {
		return nil, err
	}

	spec := s.kernelSpec()
	spec.BaseImageBlob = blob
	spec.BaseImageRoot = root
	k, err := workloads.NewOcclumKernel(spec)
	if err != nil {
		return nil, err
	}
	defer k.Sys.OS.Shutdown()

	// Upper-layer metadata targets, so the storm crosses both layers.
	for i := 0; i < 2; i++ {
		p := fmt.Sprintf("/data/m%d", i)
		if err := k.WriteInput(p, []byte("upper metadata target")); err != nil {
			return nil, err
		}
		metaPaths = append(metaPaths, p)
	}

	t := &Table{
		Title:   "fsbench — union filesystem: encrypted upper, verified image lower",
		Columns: []string{"MB/s", "kops/s"},
		Unit:    "per row",
	}
	mbps := func(bytes int, d time.Duration) float64 {
		return float64(bytes) / (1 << 20) / d.Seconds()
	}
	runProg := func(name string, prog *asm.Program, perr error) (time.Duration, error) {
		if perr != nil {
			return 0, perr
		}
		path := "/bin/" + name
		if err := k.InstallProgram(path, prog); err != nil {
			return 0, err
		}
		start := time.Now()
		status, err := workloads.RunToCompletion(k, path, nil, nil)
		if err != nil || status != 0 {
			return 0, fmt.Errorf("fsbench %s: status %d err %v", name, status, err)
		}
		return time.Since(start), nil
	}

	// 1-2: sequential write then read on the encrypted upper layer.
	p, perr := workloads.BuildSeqFileIO("/data/out.bin", total, buf, true)
	d, err := runProg("seqw", p, perr)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "EncFS seq write", Values: []float64{mbps(total, d), 0}})
	p, perr = workloads.BuildSeqFileIO("/data/out.bin", total, buf, false)
	d, err = runProg("seqr", p, perr)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "EncFS seq read", Values: []float64{mbps(total, d), 0}})

	// 3-4: random access on the upper layer.
	p, perr = workloads.BuildRandFileIO("/data/out.bin", chunks, buf, s.FSRandOps, false)
	d, err = runProg("randr", p, perr)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "EncFS rand read", Values: []float64{mbps(s.FSRandOps*buf, d), 0}})
	p, perr = workloads.BuildRandFileIO("/data/out.bin", chunks, buf, s.FSRandOps, true)
	d, err = runProg("randw", p, perr)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "EncFS rand write", Values: []float64{mbps(s.FSRandOps*buf, d), 0}})

	// 5-6: the image layer, cold (Merkle verification + read-ahead on
	// every block) then warm (verified page cache).
	p, perr = workloads.BuildSeqFileIO("/img/data.bin", total, buf, false)
	if perr != nil {
		return nil, perr
	}
	if err := k.InstallProgram("/bin/imgr", p); err != nil {
		return nil, err
	}
	before := fs.Stats()
	start := time.Now()
	status, err := workloads.RunToCompletion(k, "/bin/imgr", nil, nil)
	if err != nil || status != 0 {
		return nil, fmt.Errorf("fsbench imgr cold: status %d err %v", status, err)
	}
	coldD := time.Since(start)
	coldStats := fs.Stats().Sub(before)
	if coldStats.VerifiedBlocks == 0 {
		return nil, fmt.Errorf("fsbench: cold image read verified nothing")
	}
	t.Rows = append(t.Rows, Row{Label: "Image cold read", Values: []float64{mbps(total, coldD), 0}})
	before = fs.Stats()
	start = time.Now()
	status, err = workloads.RunToCompletion(k, "/bin/imgr", nil, nil)
	if err != nil || status != 0 {
		return nil, fmt.Errorf("fsbench imgr warm: status %d err %v", status, err)
	}
	warmD := time.Since(start)
	if w := fs.Stats().Sub(before); w.VerifiedBlocks != 0 {
		// The warm-read cost model (verified page cache, no hashing) is
		// part of what this experiment demonstrates — a warm pass that
		// re-verifies is a regression, not a measurement.
		return nil, fmt.Errorf("fsbench: warm image read re-verified %d blocks", w.VerifiedBlocks)
	}
	t.Rows = append(t.Rows, Row{Label: "Image warm read", Values: []float64{mbps(total, warmD), 0}})

	// 7: metadata storm over both layers.
	ops := s.FSMetaRounds * len(metaPaths) * 2
	p, perr = workloads.BuildMetaStorm(metaPaths, s.FSMetaRounds)
	d, err = runProg("storm", p, perr)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "open/stat storm", Values: []float64{0, float64(ops) / d.Seconds() / 1000}})
	return t, nil
}
