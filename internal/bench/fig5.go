package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/workloads"
)

// Fig5aFish measures the Fish shell-pipeline execution time on the three
// systems (paper: Linux 1.4 ms, Occlum 19.5 ms, Graphene-SGX 9.5 s).
func Fig5aFish(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 5a — Fish shell pipeline execution time",
		Columns: []string{"time"},
		Unit:    "ms",
	}
	kernels, err := workloads.AllKernels(s.kernelSpec())
	if err != nil {
		return nil, err
	}
	for _, k := range kernels {
		driver, err := workloads.InstallFish(k, s.FishInput)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name(), err)
		}
		start := time.Now()
		status, err := workloads.RunToCompletion(k, driver, nil, io.Discard)
		if err != nil || status != 0 {
			return nil, fmt.Errorf("%s: status %d err %v", k.Name(), status, err)
		}
		t.Rows = append(t.Rows, Row{Label: k.Name(), Values: []float64{ms(time.Since(start))}})
	}
	return t, nil
}

// Fig5bGCC measures the compilation pipeline on three source sizes
// (paper: Occlum 3.6–9.2× slower than Linux, 3.8–42× faster than
// Graphene-SGX).
func Fig5bGCC(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 5b — GCC compilation time by source size",
		Columns: make([]string, len(s.GCCSources)),
		Unit:    "ms",
	}
	for i, sz := range s.GCCSources {
		t.Columns[i] = fmt.Sprintf("%dB src", sz)
	}
	kernels, err := workloads.AllKernels(s.kernelSpec())
	if err != nil {
		return nil, err
	}
	// Stage sizes scale with the chosen experiment scale; the cc1
	// stage carries the bulk of both compute and binary size.
	stages := []workloads.GCCStage{
		{Path: "/bin/cpp", Work: 2, Pad: 64 << 10},
		{Path: "/bin/cc1", Work: 10, Pad: int(min64i(int64(s.DomainData)/4, 8<<20))},
		{Path: "/bin/as", Work: 3, Pad: 128 << 10},
		{Path: "/bin/ld", Work: 2, Pad: 256 << 10},
	}
	for _, k := range kernels {
		row := Row{Label: k.Name()}
		for i, sz := range s.GCCSources {
			driver, err := workloads.InstallGCC(k, fmt.Sprintf("src%d", i), sz, stages)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", k.Name(), err)
			}
			start := time.Now()
			status, err := workloads.RunToCompletion(k, driver, nil, io.Discard)
			if err != nil || status != 0 {
				return nil, fmt.Errorf("%s src %d: status %d err %v", k.Name(), sz, status, err)
			}
			row.Values = append(row.Values, ms(time.Since(start)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5cLighttpd measures web-server throughput against concurrency
// (paper: both SGX systems peak within ~10% of Linux).
func Fig5cLighttpd(s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 5c — Lighttpd throughput vs concurrent clients",
		Columns: make([]string, len(s.HTTPConcurrency)),
		Unit:    "req/s",
	}
	for i, c := range s.HTTPConcurrency {
		t.Columns[i] = fmt.Sprintf("c=%d", c)
	}
	kernels, err := workloads.AllKernels(s.kernelSpec())
	if err != nil {
		return nil, err
	}
	const (
		basePort = 9000
		workers  = 2
	)
	for ki, k := range kernels {
		row := Row{Label: k.Name()}
		// One server instance serves every concurrency round: workers
		// run until StopHTTPD, so no respawn between rounds.
		port := uint16(basePort + ki)
		master, err := workloads.InstallHTTPD(k, port, workers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name(), err)
		}
		p, err := k.Spawn(master, nil, nil)
		if err != nil {
			return nil, err
		}
		for _, c := range s.HTTPConcurrency {
			res := workloads.RunHTTPBench(k, port, c, s.HTTPRequests)
			if res.Failed > 0 {
				return nil, fmt.Errorf("%s c=%d: %d failed requests", k.Name(), c, res.Failed)
			}
			row.Values = append(row.Values, res.Throughput())
		}
		workloads.StopHTTPD(k, port, workers)
		if status := p.Wait(); status != 0 {
			return nil, fmt.Errorf("%s: master status %d", k.Name(), status)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func min64i(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
