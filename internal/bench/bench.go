// Package bench regenerates every table and figure of the paper's
// evaluation (§9): the Fish/GCC/Lighttpd application benchmarks
// (Figure 5), the process-creation/pipe/file-I/O system-call benchmarks
// (Figure 6), the MMDSFI SPECint overheads and their breakdown
// (Figure 7), the RIPE security table (§9.3) and the SIP-vs-EIP
// comparison (Table 1).
//
// Absolute numbers differ from the paper (the substrate is an interpreter
// rather than an i7 with SGX silicon); the reproduction target is the
// shape: who wins, by roughly what factor, and where crossovers fall.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/workloads"
)

// Scale selects experiment sizes.
type Scale struct {
	// FishInput is the fish pipeline input size in bytes.
	FishInput int
	// GCCSources are the three source sizes of Figure 5b.
	GCCSources []int
	// HTTPRequests per concurrency point; HTTPConcurrency lists the
	// client counts of Figure 5c.
	HTTPRequests    int
	HTTPConcurrency []int
	// SpawnSizes are the binary data paddings of Figure 6a.
	SpawnSizes []SpawnBinary
	// PipeTotal bytes moved per pipe measurement; PipeBufs lists the
	// chunk sizes of Figure 6b.
	PipeTotal int
	PipeBufs  []int
	// FileTotal bytes per file I/O measurement; FileBufs lists the
	// buffer sizes of Figures 6c/6d.
	FileTotal int
	FileBufs  []int
	// SpecIters is the per-kernel iteration count of Figure 7.
	SpecIters int
	// C10KConns lists the concurrent-connection points of the C10K
	// table; C10KRequests is the total request budget per point (split
	// across connections, at least one round each).
	C10KConns    []int
	C10KRequests int
	// FSBenchTotal bytes move per fsbench sequential measurement in
	// FSBenchBuf chunks (total/buf must be a power of two for the
	// random-access rows); FSRandOps random-chunk operations;
	// FSMetaRounds rounds of the open/stat metadata storm.
	FSBenchTotal int
	FSBenchBuf   int
	FSRandOps    int
	FSMetaRounds int
	// IPCTotal bytes move per ipcbench measurement; IPCChunks lists the
	// per-round transfer sizes (each round is one 4-span writev, four
	// scalar writes, or splice calls until the chunk has moved).
	IPCTotal  int
	IPCChunks []int
	// EIPEnclave is the Graphene-SGX per-process enclave size.
	EIPEnclave uint64
	// OcclumDomains/DomainData size the Occlum enclave.
	OcclumDomains int
	DomainData    uint64
}

// SpawnBinary names one Figure 6a binary.
type SpawnBinary struct {
	Name string
	Pad  int
}

// Quick returns a scale suitable for CI and `go test -bench`.
func Quick() Scale {
	return Scale{
		FishInput:       16 << 10,
		GCCSources:      []int{256, 16 << 10, 160 << 10},
		HTTPRequests:    256,
		HTTPConcurrency: []int{1, 4, 16},
		SpawnSizes: []SpawnBinary{
			{"helloworld", 0},
			{"busybox", 400 << 10},
			{"cc1", 4 << 20},
		},
		PipeTotal:     1 << 20,
		PipeBufs:      []int{16, 256, 4096},
		FileTotal:     1 << 20,
		FileBufs:      []int{64, 1024, 16384},
		SpecIters:     300,
		C10KConns:     []int{64, 1024, 10240},
		C10KRequests:  4096,
		FSBenchTotal:  1 << 20,
		FSBenchBuf:    4096,
		FSRandOps:     256,
		FSMetaRounds:  150,
		IPCTotal:      16 << 20,
		IPCChunks:     []int{1 << 10, 64 << 10, 1 << 20},
		EIPEnclave:    32 << 20,
		OcclumDomains: 8,
		DomainData:    16 << 20,
	}
}

// Full returns the paper-shaped scale (minutes of wall time).
func Full() Scale {
	return Scale{
		FishInput:       64 << 10,
		GCCSources:      []int{200, 150 << 10, 1500 << 10},
		HTTPRequests:    512,
		HTTPConcurrency: []int{1, 2, 4, 8, 16, 32, 64, 128},
		SpawnSizes: []SpawnBinary{
			{"helloworld", 0},
			{"busybox", 400 << 10},
			{"cc1", 14 << 20},
		},
		PipeTotal:     8 << 20,
		PipeBufs:      []int{16, 64, 256, 1024, 4096},
		FileTotal:     4 << 20,
		FileBufs:      []int{4, 16, 64, 256, 1024, 4096, 16384},
		SpecIters:     2000,
		C10KConns:     []int{64, 1024, 10240, 102400},
		C10KRequests:  20480,
		FSBenchTotal:  8 << 20,
		FSBenchBuf:    4096,
		FSRandOps:     2048,
		FSMetaRounds:  1000,
		IPCTotal:      32 << 20,
		IPCChunks:     []int{1 << 10, 64 << 10, 1 << 20},
		EIPEnclave:    64 << 20,
		OcclumDomains: 8,
		DomainData:    32 << 20,
	}
}

func (s Scale) kernelSpec() workloads.KernelSpec {
	return workloads.KernelSpec{
		Domains:        s.OcclumDomains,
		DomainCode:     1 << 20,
		DomainData:     s.DomainData,
		EIPEnclaveSize: s.EIPEnclave,
	}
}

// Row is one labeled series of measurements.
type Row struct {
	Label  string
	Values []float64
}

// Table is one figure's worth of results.
type Table struct {
	Title   string
	Columns []string
	Unit    string
	Rows    []Row
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	fmt.Fprintf(w, "%-22s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintf(w, "  [%s]\n", t.Unit)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-22s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%14s", formatVal(v))
		}
		fmt.Fprintln(w)
	}
}

func formatVal(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1000000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
