// Package oelf defines the OELF binary container: the on-disk format the
// Occlum toolchain emits, the Occlum verifier checks and signs, and the
// Occlum LibOS loads into MMDSFI domains.
//
// An OELF file carries a linked code segment, an initialized data segment,
// the layout facts the verifier's range analysis needs (guard size, BSS
// size), and — once verified — an HMAC signature from the verifier. The
// LibOS refuses to load unsigned binaries, which is how the (large,
// untrusted) toolchain stays out of the TCB while the (small, trusted)
// verifier guards the enclave.
package oelf

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/asm"
)

// Magic identifies an OELF file.
var Magic = [4]byte{'O', 'E', 'L', 'F'}

// Version is the format version.
const Version = 1

// Format errors.
var (
	// ErrBadFormat reports a malformed OELF file.
	ErrBadFormat = errors.New("oelf: malformed binary")
	// ErrBadSignature reports a missing or invalid verifier signature.
	ErrBadSignature = errors.New("oelf: verifier signature invalid")
)

// Binary is a parsed OELF file: a linked image plus the verifier
// signature.
type Binary struct {
	// Image is the linked code/data image.
	Image asm.Image
	// Name is an informational binary name (not covered by the
	// signature's security argument, but bound into the digest).
	Name string
	// Sig is the verifier's HMAC-SHA256 signature over Digest, or empty
	// for an unverified binary.
	Sig []byte
}

// FromImage wraps a linked image into an unsigned binary.
func FromImage(name string, img *asm.Image) *Binary {
	return &Binary{Image: *img, Name: name}
}

// Size returns the total encoded size, a stand-in for on-disk binary size
// (used by the spawn benchmarks, where load time scales with binary size).
func (b *Binary) Size() int {
	return len(b.marshalBody()) + len(b.Sig) + 16
}

// Digest computes the SHA-256 digest of everything the signature covers:
// the name, geometry and full code/data contents.
func (b *Binary) Digest() [32]byte {
	return sha256.Sum256(b.marshalBody())
}

func (b *Binary) marshalBody() []byte {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	var hdr [36]byte
	binary.LittleEndian.PutUint32(hdr[0:], Version)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.Name)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.Image.Code)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(b.Image.Data)))
	binary.LittleEndian.PutUint32(hdr[16:], b.Image.BSS)
	binary.LittleEndian.PutUint32(hdr[20:], b.Image.Entry)
	binary.LittleEndian.PutUint32(hdr[24:], b.Image.GuardSize)
	binary.LittleEndian.PutUint32(hdr[28:], 0) // reserved
	binary.LittleEndian.PutUint32(hdr[32:], 0) // reserved
	buf.Write(hdr[:])
	buf.WriteString(b.Name)
	buf.Write(b.Image.Code)
	buf.Write(b.Image.Data)
	return buf.Bytes()
}

// Marshal encodes the binary, including the signature (if any).
func (b *Binary) Marshal() []byte {
	body := b.marshalBody()
	out := make([]byte, 0, len(body)+4+len(b.Sig))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Sig)))
	out = append(out, b.Sig...)
	return out
}

// Unmarshal parses an encoded binary.
func Unmarshal(data []byte) (*Binary, error) {
	if len(data) < 40 || !bytes.Equal(data[:4], Magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	h := data[4:]
	ver := binary.LittleEndian.Uint32(h[0:])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, ver)
	}
	nameLen := int(binary.LittleEndian.Uint32(h[4:]))
	codeLen := int(binary.LittleEndian.Uint32(h[8:]))
	dataLen := int(binary.LittleEndian.Uint32(h[12:]))
	bss := binary.LittleEndian.Uint32(h[16:])
	entry := binary.LittleEndian.Uint32(h[20:])
	guard := binary.LittleEndian.Uint32(h[24:])
	off := 4 + 36
	need := off + nameLen + codeLen + dataLen + 4
	if len(data) < need || nameLen < 0 || codeLen < 0 || dataLen < 0 {
		return nil, fmt.Errorf("%w: truncated", ErrBadFormat)
	}
	b := &Binary{
		Name: string(data[off : off+nameLen]),
		Image: asm.Image{
			Code:      append([]byte(nil), data[off+nameLen:off+nameLen+codeLen]...),
			Data:      append([]byte(nil), data[off+nameLen+codeLen:off+nameLen+codeLen+dataLen]...),
			BSS:       bss,
			Entry:     entry,
			GuardSize: guard,
		},
	}
	sigOff := off + nameLen + codeLen + dataLen
	sigLen := int(binary.LittleEndian.Uint32(data[sigOff:]))
	if sigLen > 0 {
		if len(data) < sigOff+4+sigLen {
			return nil, fmt.Errorf("%w: truncated signature", ErrBadFormat)
		}
		b.Sig = append([]byte(nil), data[sigOff+4:sigOff+4+sigLen]...)
	}
	if uint32(entry) > uint32(codeLen) {
		return nil, fmt.Errorf("%w: entry %#x beyond code", ErrBadFormat, entry)
	}
	return b, nil
}

// SigningKey is the verifier's signing key, shared with the LibOS so the
// loader can check that a binary passed verification. (In a deployment
// this would be provisioned into the enclave; here it is part of the
// simulated platform.)
type SigningKey [32]byte

// NewSigningKey derives a deterministic key from a seed string.
func NewSigningKey(seed string) SigningKey {
	return SigningKey(sha256.Sum256([]byte("oelf-signing:" + seed)))
}

// Sign attaches the verifier signature to b.
func (k SigningKey) Sign(b *Binary) {
	d := b.Digest()
	mac := hmac.New(sha256.New, k[:])
	mac.Write(d[:])
	b.Sig = mac.Sum(nil)
}

// Verify checks the verifier signature on b.
func (k SigningKey) Verify(b *Binary) error {
	if len(b.Sig) == 0 {
		return fmt.Errorf("%w: unsigned", ErrBadSignature)
	}
	d := b.Digest()
	mac := hmac.New(sha256.New, k[:])
	mac.Write(d[:])
	if !hmac.Equal(mac.Sum(nil), b.Sig) {
		return ErrBadSignature
	}
	return nil
}
