package oelf

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
)

func sample() *Binary {
	return FromImage("hello", &asm.Image{
		Code:      []byte{1, 2, 3, 4, 5},
		Data:      []byte{9, 8, 7},
		BSS:       128,
		Entry:     0,
		GuardSize: 4096,
	})
}

func TestMarshalRoundTrip(t *testing.T) {
	b := sample()
	k := NewSigningKey("test")
	k.Sign(b)
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || got.Image.BSS != b.Image.BSS ||
		got.Image.Entry != b.Image.Entry || got.Image.GuardSize != b.Image.GuardSize {
		t.Fatalf("header mismatch: %+v", got)
	}
	if string(got.Image.Code) != string(b.Image.Code) || string(got.Image.Data) != string(b.Image.Data) {
		t.Fatal("segment mismatch")
	}
	if err := k.Verify(got); err != nil {
		t.Fatalf("signature should survive round trip: %v", err)
	}
}

func TestSignatureTamperDetection(t *testing.T) {
	k := NewSigningKey("test")

	b := sample()
	if err := k.Verify(b); err == nil {
		t.Fatal("unsigned binary must not verify")
	}
	k.Sign(b)
	if err := k.Verify(b); err != nil {
		t.Fatal(err)
	}

	// Code tampering after signing is detected.
	b.Image.Code[0] ^= 1
	if err := k.Verify(b); err == nil {
		t.Fatal("tampered code must not verify")
	}
	b.Image.Code[0] ^= 1

	// Geometry tampering is detected (a wrong guard size would break
	// the range-analysis soundness argument).
	b.Image.GuardSize = 16
	if err := k.Verify(b); err == nil {
		t.Fatal("tampered guard size must not verify")
	}

	// A different key does not verify.
	k2 := NewSigningKey("other")
	b = sample()
	k.Sign(b)
	if err := k2.Verify(b); err == nil {
		t.Fatal("wrong key must not verify")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XELF" + string(make([]byte, 100))),
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: should fail", i)
		}
	}
	// Entry beyond code.
	b := sample()
	b.Image.Entry = 99
	if _, err := Unmarshal(b.Marshal()); err == nil {
		t.Fatal("entry beyond code should fail")
	}
}

func TestUnmarshalQuickNoPanic(t *testing.T) {
	// Property: arbitrary bytes never panic the parser.
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeReflectsContents(t *testing.T) {
	small := sample()
	big := sample()
	big.Image.Code = make([]byte, 100000)
	if big.Size() <= small.Size() {
		t.Fatal("size should grow with code")
	}
}
