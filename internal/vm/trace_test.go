package vm

// Directed tests for the trace tier: superblock formation shape, the
// guard-predicate algebra (pinned to the reference isa.Op.EvalCond
// semantics), the -vmstats counter plumbing, invalidation against
// page remaps, and prompt preemption delivery.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// hotLoopImage is the canonical promotable program: a self-looping
// 4-instruction body run trips times, then a trap.
func hotLoopImage(t *testing.T, trips int64) *asm.Image {
	return build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, 1)
		b.Label("loop")
		b.Add(isa.R0, isa.R2)
		b.AddI(isa.R2, 1)
		b.CmpI(isa.R2, int32(trips))
		b.Jle("loop")
		b.Trap()
	})
}

func TestTraceFormationShape(t *testing.T) {
	if !TracesEnabled {
		t.Skip("traces disabled")
	}
	c := loadImage(t, hotLoopImage(t, 1000), 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	// Find the promoted anchor and check the superblock invariants.
	var tr *trace
	for _, b := range c.blocks {
		if b.trace != nil {
			tr = b.trace
			break
		}
	}
	if tr == nil {
		t.Fatal("hot loop never promoted a superblock")
	}
	if tr.nblocks < 2 {
		t.Fatalf("nblocks = %d, want >= 2 (a superblock spans a seam)", tr.nblocks)
	}
	if tr.ninsts == 0 || tr.ninsts > maxTraceInsts {
		t.Fatalf("ninsts = %d, want in (0, %d]", tr.ninsts, maxTraceInsts)
	}
	if len(tr.ops) != len(tr.cum) {
		t.Fatalf("len(ops) = %d != len(cum) = %d", len(tr.ops), len(tr.cum))
	}
	// cum must be strictly increasing and end exactly at ninsts: that
	// is what makes the cycle accounting bit-exact at every slot.
	prev := uint64(0)
	for j, n := range tr.cum {
		if n <= prev {
			t.Fatalf("cum[%d] = %d not strictly increasing (prev %d)", j, n, prev)
		}
		prev = n
	}
	if prev != tr.ninsts {
		t.Fatalf("cum ends at %d, ninsts = %d", prev, tr.ninsts)
	}
	if len(tr.spans) == 0 {
		t.Fatal("no component spans recorded: invalidation cannot work")
	}
	for _, sp := range tr.spans {
		if !c.Mem.Contains(sp.Addr, sp.N) {
			t.Fatalf("span %+v outside memory", sp)
		}
	}
	s := c.CacheStats()
	if s.Traces == 0 || s.TraceHits == 0 || s.TraceInsts == 0 {
		t.Fatalf("stats = %v: want traces, trace hits and trace insts", s)
	}
	// A 4-inst loop unrolled into a 64-inst window retires ~16
	// iterations per entry: the trace tier must carry the bulk of the
	// program.
	if s.TraceInsts < uint64(c.Cycles)/2 {
		t.Fatalf("trace insts %d < half of %d cycles: trace tier not engaged", s.TraceInsts, c.Cycles)
	}
	// The loop exit mispredicts the final back edge: at least one side
	// exit must have been taken.
	if s.TraceExits == 0 {
		t.Fatalf("stats = %v: loop exit should side-exit at least once", s)
	}
}

// TestGuardPredsMatchEvalCond pins the guard-predicate algebra — and
// every compiled guard closure — to the reference isa.Op.EvalCond
// semantics over randomized compare operands, including the negated
// (fall-through-predicted) variants and the dead-flag guards' exit-path
// flag materialization.
func TestGuardPredsMatchEvalCond(t *testing.T) {
	branches := []isa.Op{isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJae}
	r := rand.New(rand.NewSource(42))
	operand := func() uint64 {
		switch r.Intn(4) {
		case 0:
			return uint64(r.Intn(8))
		case 1:
			return ^uint64(0) - uint64(r.Intn(8)) // near-overflow negatives
		case 2:
			return 1 << 63 // sign boundary
		default:
			return r.Uint64()
		}
	}
	m := mem.NewPaged(0x1000, mem.PageSize)
	const exitPC = 0xdead0
	for _, op := range branches {
		p := branchPred(op)
		np := negPred(p)
		for trial := 0; trial < 200; trial++ {
			a, v := operand(), operand()
			zf, lts, ltu := a == v, int64(a) < int64(v), a < v
			want := op.EvalCond(zf, lts, ltu)
			if got := predHoldsCmp(p, a, v); got != want {
				t.Fatalf("%v: predHoldsCmp(%v, %#x, %#x) = %v, EvalCond = %v", op, p, a, v, got, want)
			}
			if got := predHoldsCmp(np, a, v); got == want {
				t.Fatalf("%v: negPred(%v) not a complement at (%#x, %#x)", op, p, a, v)
			}

			// flagGuard: continues iff the predicate holds over flags
			// set by the architectural compare.
			c := New(m)
			c.setCmp(a, v)
			if stopped := flagGuard(p, exitPC)(c); stopped == want {
				t.Fatalf("%v: flagGuard(%v) stopped=%v with pred=%v", op, p, stopped, want)
			} else if stopped {
				if c.stop.Reason != stopSideExit || c.PC != exitPC {
					t.Fatalf("%v: side exit stop=%v pc=%#x", op, c.stop, c.PC)
				}
			}

			// Fused guards, RI and RR, live and dead flags: same
			// continue/exit decision, and flags must be architectural
			// (matching setCmp) whenever they can be observed — always
			// for live, on the exit path for dead.
			for _, live := range []bool{true, false} {
				for _, ri := range []bool{true, false} {
					c := New(m)
					c.Regs[isa.R3], c.Regs[isa.R4] = a, v
					var g handler
					if ri {
						g = fusedGuardRI(p, isa.R3, v, live, exitPC)
					} else {
						g = fusedGuardRR(p, isa.R3, isa.R4, live, exitPC)
					}
					stopped := g(c)
					if stopped == want {
						t.Fatalf("%v: fused(ri=%v live=%v) stopped=%v with pred=%v", op, ri, live, stopped, want)
					}
					if stopped && (c.stop.Reason != stopSideExit || c.PC != exitPC) {
						t.Fatalf("%v: fused side exit stop=%v pc=%#x", op, c.stop, c.PC)
					}
					if live || stopped {
						if c.ZF != zf || c.LTS != lts || c.LTU != ltu {
							t.Fatalf("%v: fused(ri=%v live=%v stopped=%v) flags %v/%v/%v, want %v/%v/%v",
								op, ri, live, stopped, c.ZF, c.LTS, c.LTU, zf, lts, ltu)
						}
					}
				}
			}
		}
	}
}

// TestShapeVMStats pins the counter shape -vmstats reports: the trace
// tier's counters (traces, trace-hits, trace-exits, trace-insts,
// ras-hits, ic-hits, ic-misses) must be distinguished from the block
// tier's, move under the workloads that exercise them, and all appear
// in the CacheStats string and the global aggregation.
func TestShapeVMStats(t *testing.T) {
	if !TracesEnabled {
		t.Skip("traces disabled")
	}
	ResetGlobalCacheStats()

	// Hot loop: trace promotion, hits, insts, side exits.
	c := loadImage(t, hotLoopImage(t, 500), 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	s := c.CacheStats()
	if s.Traces == 0 || s.TraceHits == 0 || s.TraceExits == 0 || s.TraceInsts == 0 {
		t.Fatalf("hot loop stats = %v: trace counters did not move", s)
	}

	// Call/ret loop: return-address-stack hits.
	c2 := loadImage(t, build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 300)
		b.Label("loop")
		b.Call("fn")
		b.Jcc(isa.OpLoop, "loop")
		b.Trap()
		b.Func("fn")
		b.AddI(isa.R0, 1)
		b.Ret()
	}), 4096)
	if st := c2.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if s2 := c2.CacheStats(); s2.RASHits == 0 {
		t.Fatalf("call/ret stats = %v: RAS never hit", s2)
	}

	// Monomorphic indirect jump: inline-cache hits (first resolution is
	// a miss, the rest hit).
	mono, _, _ := diffImage(t, 0, false, func(r *rand.Rand, b *asm.Builder) {
		jumpTableProgram(rand.New(rand.NewSource(0)), b) // seed 0: ntargets == 1, monomorphic dispatch
	})
	c3 := mono()
	if st := c3.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	s3 := c3.CacheStats()
	if s3.ICHits == 0 || s3.ICMisses == 0 {
		t.Fatalf("indirect stats = %v: want inline-cache hits and misses", s3)
	}

	// String shape: every counter -vmstats prints, with these values.
	str := s.String()
	for _, want := range []string{
		fmt.Sprintf("traces=%d", s.Traces),
		fmt.Sprintf("trace-hits=%d", s.TraceHits),
		fmt.Sprintf("trace-exits=%d", s.TraceExits),
		fmt.Sprintf("trace-insts=%d", s.TraceInsts),
		fmt.Sprintf("ras-hits=%d", s.RASHits),
		fmt.Sprintf("ic-hits=%d", s.ICHits),
		fmt.Sprintf("ic-misses=%d", s.ICMisses),
		fmt.Sprintf("blocks=%d", s.Blocks),
		fmt.Sprintf("threaded=%d", s.Threaded),
		"hit-rate=",
	} {
		if !strings.Contains(str, want) {
			t.Errorf("CacheStats string %q missing %q", str, want)
		}
	}

	// Global aggregation (what -vmstats actually prints) must have
	// absorbed all three CPUs' counters at their Run returns.
	g := GlobalCacheStats()
	if g.Traces < s.Traces || g.TraceHits < s.TraceHits || g.RASHits == 0 || g.ICHits == 0 || g.ICMisses == 0 {
		t.Fatalf("global stats = %v: per-CPU counters not aggregated", g)
	}
}

// TestTraceSeverOnRemap promotes a superblock, then remaps the code
// pages (a LibOS loader rotating a pool slot — the generation stamp,
// not the contents, is the signal): the next entry must sever the
// trace, retranslate, and still produce the architectural result.
func TestTraceSeverOnRemap(t *testing.T) {
	if !TracesEnabled {
		t.Skip("traces disabled")
	}
	img := hotLoopImage(t, 1000)
	c := loadImage(t, img, 4096)
	st := c.Run(3000) // warm: well past promotion, mid-loop
	if st.Reason != StopCycles {
		t.Fatalf("stop = %v", st)
	}
	if s := c.CacheStats(); s.Traces == 0 {
		t.Fatalf("stats = %v: not promoted before remap", s)
	}
	flushesBefore := c.CacheStats().Flushes
	if err := c.Mem.Map(c.Mem.Base(), img.CodeSpan(), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 1000*1001/2 {
		t.Fatalf("r0 = %d, want %d (stale superblock executed?)", c.Regs[isa.R0], 1000*1001/2)
	}
	if s := c.CacheStats(); s.Flushes == flushesBefore {
		t.Fatalf("stats = %v: remap severed nothing", s)
	}
}

// TestTraceSMCBoundedStaleness pins the trace tier's self-modification
// visibility contract: a store into the currently executing superblock
// takes effect at the next trace boundary — within one unrolled window
// (maxTraceInsts), a strictly bounded relaxation of the block tier's
// next-block-boundary rule (DESIGN.md documents it; real hardware asks
// for a serializing jump after SMC for the same reason). The patch
// must never be lost and never take more than one window to land.
func TestTraceSMCBoundedStaleness(t *testing.T) {
	if !TracesEnabled {
		t.Skip("traces disabled")
	}
	const trips = 600
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Call("getpc")
		b.AddI(isa.R6, 11) // r6 = "loop": the movri below
		b.Jmp("loop")
		b.Label("loop")
		b.MovRI(isa.R3, 1) // imm low byte at r6+2: patched to 3 below
		b.Add(isa.R0, isa.R3)
		b.MovRR(isa.R7, isa.R8)
		b.CmpI(isa.R7, 300)
		b.Jne("nopatch")
		b.MovRI(isa.R5, 3)
		b.StoreB(isa.Mem(isa.R6, 2), isa.R5) // patch inside own loop
		b.Label("nopatch")
		b.AddI(isa.R8, 1)
		b.CmpI(isa.R8, trips)
		b.Jl("loop")
		b.Trap()
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImageRWX(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	// Iterations 0..300 add 1 (the patch lands during iteration 300);
	// after at most maxTraceInsts further instructions — one unrolled
	// window — every iteration adds 3. R0 = 301 + 299*3 if the patch is
	// seen immediately on re-entry; allow up to a window of stale adds.
	exact := uint64(301 + (trips-301)*3)
	staleIters := uint64(maxTraceInsts) // coarse: >= window / loop length
	min, max := exact-2*staleIters, exact
	if c.Regs[isa.R0] < min || c.Regs[isa.R0] > max {
		t.Fatalf("r0 = %d, want within [%d, %d]: SMC visibility window violated", c.Regs[isa.R0], min, max)
	}
	if s := c.CacheStats(); s.Traces == 0 || s.Flushes == 0 {
		t.Fatalf("stats = %v: want a promoted trace severed by the SMC store", s)
	}
}

// TestTracePreemptPrompt: a preemption request latched against a CPU
// flying through a promoted self-loop must be honored within one trace
// window, not absorbed by the okGen revalidation.
func TestTracePreemptPrompt(t *testing.T) {
	c := loadImage(t, hotLoopImage(t, 1<<30), 4096) // effectively endless
	if st := c.Run(2000); st.Reason != StopCycles {
		t.Fatalf("warmup stop = %v", st)
	}
	if TracesEnabled {
		if s := c.CacheStats(); s.Traces == 0 {
			t.Fatalf("stats = %v: loop not promoted after warmup", s)
		}
	}
	for i := 0; i < 100; i++ {
		before := c.Cycles
		c.RequestPreempt()
		st := c.Run(0)
		if st.Reason != StopPreempt {
			t.Fatalf("iter %d: stop = %v, want preempt", i, st)
		}
		if st.PC != c.PC {
			t.Fatalf("iter %d: stop PC %#x != cpu PC %#x", i, st.PC, c.PC)
		}
		if got := c.Cycles - before; got > maxTraceInsts {
			t.Fatalf("iter %d: preempt took %d cycles, want <= %d (one trace window)", i, got, maxTraceInsts)
		}
		// Run a stretch between requests so traces re-enter their fast
		// path before the next preemption.
		if st := c.Run(500); st.Reason != StopCycles {
			t.Fatalf("iter %d: stop = %v", i, st)
		}
	}
}

// TestTraceDisabledMatches: with TracesEnabled off, no superblock forms
// and the program result is identical — the A/B knob the benchmarks
// rely on must be behavior-neutral.
func TestTraceDisabledMatches(t *testing.T) {
	run := func(on bool) (uint64, CacheStats) {
		old := TracesEnabled
		TracesEnabled = on
		defer func() { TracesEnabled = old }()
		c := loadImage(t, hotLoopImage(t, 800), 4096)
		if st := c.Run(0); st.Reason != StopTrap {
			t.Fatalf("stop = %v", st)
		}
		return c.Regs[isa.R0], c.CacheStats()
	}
	rOn, sOn := run(true)
	rOff, sOff := run(false)
	if rOn != rOff {
		t.Fatalf("results differ: traces on %d, off %d", rOn, rOff)
	}
	if sOn.Traces == 0 {
		t.Fatalf("stats on = %v: want a promoted trace", sOn)
	}
	if sOff.Traces != 0 || sOff.TraceHits != 0 || sOff.TraceInsts != 0 {
		t.Fatalf("stats off = %v: trace tier ran while disabled", sOff)
	}
}
