package vm

import (
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
)

// TestRequestPreemptStopsAtBlockBoundary: a hart spinning in a tight
// loop with no cycle budget must stop with StopPreempt soon after an
// asynchronous preemption request — the mechanism prompt signal
// delivery and M:N scheduling are built on.
func TestRequestPreemptStopsAtBlockBoundary(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Label("spin")
		b.Jmp("spin")
	})
	c := loadImage(t, img, 4096)
	done := make(chan Stop, 1)
	go func() { done <- c.Run(0) }()
	time.Sleep(5 * time.Millisecond)
	c.RequestPreempt()
	select {
	case st := <-done:
		if st.Reason != StopPreempt {
			t.Fatalf("stop = %v, want StopPreempt", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("preemption request not honored")
	}
	// The request is consumed: resuming runs again instead of stopping
	// immediately (drive it with a budget this time).
	st := c.Run(100)
	if st.Reason != StopCycles {
		t.Fatalf("after preempt consumed: stop = %v, want StopCycles", st)
	}
}

// TestPreemptLatchedBeforeRun: a request that lands while the hart is
// descheduled is honored on the next Run, before any block executes —
// and Run with a budget exits exactly at a block boundary (PC stays
// consistent, so execution can resume).
func TestPreemptLatchedBeforeRun(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Label("spin")
		b.AddI(isa.R1, 1)
		b.Jmp("spin")
	})
	c := loadImage(t, img, 4096)
	c.RequestPreempt()
	st := c.Run(1 << 20)
	if st.Reason != StopPreempt {
		t.Fatalf("stop = %v, want StopPreempt", st)
	}
	if c.Cycles != 0 {
		t.Fatalf("preempt-before-run retired %d cycles, want 0", c.Cycles)
	}
	// Resume and verify the loop actually runs: budget-bounded.
	st = c.Run(1000)
	if st.Reason != StopCycles || c.Cycles != 1000 {
		t.Fatalf("resume: stop = %v after %d cycles", st, c.Cycles)
	}
	if c.Regs[isa.R1] == 0 {
		t.Fatal("loop made no progress after preemption")
	}
}
