//go:build race

package vm

// raceEnabled reports that this build is instrumented by the race
// detector. Wall-clock assertions (the trace-speedup bench smoke)
// consult it: instrumentation skews the trace-on/off ratio because the
// two dispatch paths have different memory-access densities, so the
// ratio loses meaning while every deterministic cycle-count test keeps
// running under -race as usual.
const raceEnabled = true
