package vm

// Threaded dispatch: at translate time every decoded instruction is
// specialized into a handler closure with its operands (registers,
// immediates, precomputed branch targets and effective-address shapes)
// captured, so the cached execution path pays one indirect call per
// instruction instead of re-walking the ~60-case exec switch and
// re-reading operand fields. Step keeps the switch as the bit-exact
// slow path; the randomized differential tests hold the two paths to
// state-for-state equality.
//
// Inside a block, PC and the cycle counter are dead state: the
// dispatch loops in run and runNoBudget (vm.go) batch Cycles and
// materialize PC only at block exit, so plain fall-through handlers
// touch neither. The invariants that make the architectural state
// exact at every observation point:
//
//   - control-transfer handlers set PC themselves (they are always the
//     last instruction of a block);
//   - stopping handlers restore PC before raising (pageFaultPC etc.
//     leave PC at the faulting instruction, halted at its successor,
//     matching exec);
//   - the dispatch loops add the retired-instruction count (including
//     a stopping instruction) to Cycles on every exit path.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

// handler executes one specialized instruction. It reports true when
// the hart stopped (c.stop holds the reason), exactly like exec.
type handler func(c *CPU) bool

// compilerFunc specializes one decoded instruction located at pc with
// successor address next into a handler.
type compilerFunc func(in *isa.Inst, pc, next uint64) handler

// compilers is the handler table, keyed by opcode. It is total over
// valid opcodes (enforced by TestCompilersCoverOpSpace); translate only
// sees instructions that already decoded, so a nil entry is a
// programming error, not a runtime condition.
var compilers [isa.NumOps]compilerFunc

// compile specializes in into a handler.
func compile(in *isa.Inst, pc, next uint64) handler {
	f := compilers[in.Op]
	if f == nil {
		panic(fmt.Sprintf("vm: opcode %v has no handler compiler", in.Op))
	}
	return f(in, pc, next)
}

// fuseCmpBranch macro-fuses a compare + conditional-branch pair — the
// tail of most loop blocks — into one handler: one dispatch instead of
// two, with the branch decided on the just-computed comparison instead
// of a round trip through the stored flags. The flags are still set
// (they are architectural state), and both instructions are stop-free,
// which is what lets the run loop substitute the fused tail only for
// whole-block execution. Returns nil when the pair has no fused form.
// Every fused closure is checked against its unfused handler pair over
// an operand grid by TestFusedCmpBranchMatchesUnfused.
func fuseCmpBranch(cmp, br *isa.Inst, brNext uint64) handler {
	target, next := brNext+uint64(br.Imm), brNext
	switch cmp.Op {
	case isa.OpCmpRI:
		r1, v := cmp.R1&15, uint64(cmp.Imm)
		switch br.Op {
		case isa.OpJe:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a == v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJne:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a != v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJl:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) < int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJle:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) <= int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJg:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) > int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJge:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) >= int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJb:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a < v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJae:
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a >= v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		}
	case isa.OpCmpRR:
		r1, r2 := cmp.R1&15, cmp.R2&15
		switch br.Op {
		case isa.OpJe:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a == v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJne:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a != v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJl:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) < int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJle:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) <= int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJg:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) > int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJge:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) >= int64(v) {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJb:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a < v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		case isa.OpJae:
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a >= v {
					c.PC = target
				} else {
					c.PC = next
				}
				return false
			}
		}
	}
	return nil
}

// Stop raisers for compiled handlers: like the exec raisers, but they
// also restore PC (dead inside a block) to its architecturally exact
// value first.

func (c *CPU) pageFaultPC(f *mem.Fault, pc uint64) bool {
	c.PC = pc
	return c.pageFault(f, pc)
}

func (c *CPU) boundFaultPC(pc uint64) bool {
	c.PC = pc
	return c.boundFault(pc)
}

func (c *CPU) invalidPC(pc uint64) bool {
	c.PC = pc
	return c.invalid(pc)
}

func (c *CPU) divideFaultPC(pc uint64) bool {
	c.PC = pc
	c.stop = Stop{Reason: StopException, Exc: ExcDivide, PC: pc}
	return true
}

// compileEA specializes effective-address computation for the
// memory-operand shapes of Figure 4: absolute and PC-relative operands
// fold to constants at translate time, the common base+disp form reads
// one register, and indexed forms fall back to the general ea.
func compileEA(m isa.MemRef, next uint64) func(c *CPU) uint64 {
	if !m.HasIndex() {
		switch {
		case m.IsAbs():
			a := uint64(int64(m.Disp))
			return func(*CPU) uint64 { return a }
		case m.IsPCRel():
			a := next + uint64(int64(m.Disp))
			return func(*CPU) uint64 { return a }
		default:
			base, d := m.Base&15, uint64(int64(m.Disp))
			return func(c *CPU) uint64 { return c.Regs[base] + d }
		}
	}
	mm := m
	return func(c *CPU) uint64 { return c.ea(mm, next) }
}

func init() {
	compilers[isa.OpMovRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := in.R1&15, uint64(in.Imm)
		return func(c *CPU) bool { c.Regs[r1] = v; return false }
	}
	compilers[isa.OpMovRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := in.R1&15, in.R2&15
		return func(c *CPU) bool { c.Regs[r1] = c.Regs[r2]; return false }
	}

	loadOf := func(size int) compilerFunc {
		return func(in *isa.Inst, pc, next uint64) handler {
			r1 := in.R1 & 15
			// The hot shape [base+disp] skips even the ea closure.
			if m := in.Mem; !m.HasIndex() && !m.IsAbs() && !m.IsPCRel() {
				base, d := m.Base&15, uint64(int64(m.Disp))
				return func(c *CPU) bool {
					v, f := c.Mem.Load(c.Regs[base]+d, size)
					if f != nil {
						return c.pageFaultPC(f, pc)
					}
					c.Regs[r1] = v
					return false
				}
			}
			ea := compileEA(in.Mem, next)
			return func(c *CPU) bool {
				v, f := c.Mem.Load(ea(c), size)
				if f != nil {
					return c.pageFaultPC(f, pc)
				}
				c.Regs[r1] = v
				return false
			}
		}
	}
	compilers[isa.OpLoad] = loadOf(8)
	compilers[isa.OpLoadB] = loadOf(1)

	storeOf := func(size int) compilerFunc {
		return func(in *isa.Inst, pc, next uint64) handler {
			r1 := in.R1 & 15
			if m := in.Mem; !m.HasIndex() && !m.IsAbs() && !m.IsPCRel() {
				base, d := m.Base&15, uint64(int64(m.Disp))
				return func(c *CPU) bool {
					if f := c.Mem.Store(c.Regs[base]+d, size, c.Regs[r1]); f != nil {
						return c.pageFaultPC(f, pc)
					}
					return false
				}
			}
			ea := compileEA(in.Mem, next)
			return func(c *CPU) bool {
				if f := c.Mem.Store(ea(c), size, c.Regs[r1]); f != nil {
					return c.pageFaultPC(f, pc)
				}
				return false
			}
		}
	}
	compilers[isa.OpStore] = storeOf(8)
	compilers[isa.OpStoreB] = storeOf(1)

	compilers[isa.OpLea] = func(in *isa.Inst, pc, next uint64) handler {
		r1, ea := in.R1&15, compileEA(in.Mem, next)
		return func(c *CPU) bool { c.Regs[r1] = ea(c); return false }
	}
	compilers[isa.OpPush] = func(in *isa.Inst, pc, next uint64) handler {
		r1 := in.R1 & 15
		return func(c *CPU) bool {
			if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, c.Regs[r1]); f != nil {
				return c.pageFaultPC(f, pc)
			}
			c.Regs[isa.SP] -= 8
			return false
		}
	}
	compilers[isa.OpPushI] = func(in *isa.Inst, pc, next uint64) handler {
		v := uint64(in.Imm)
		return func(c *CPU) bool {
			if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, v); f != nil {
				return c.pageFaultPC(f, pc)
			}
			c.Regs[isa.SP] -= 8
			return false
		}
	}
	compilers[isa.OpPop] = func(in *isa.Inst, pc, next uint64) handler {
		r1 := in.R1 & 15
		return func(c *CPU) bool {
			v, f := c.Mem.Load(c.Regs[isa.SP], 8)
			if f != nil {
				return c.pageFaultPC(f, pc)
			}
			c.Regs[isa.SP] += 8
			c.Regs[r1] = v
			return false
		}
	}

	// ALU register-register forms, written out per op: one closure, no
	// inner operator call.
	rr := func(in *isa.Inst) (isa.Reg, isa.Reg) { return in.R1 & 15, in.R2 & 15 }
	compilers[isa.OpAddRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] += c.Regs[r2]; return false }
	}
	compilers[isa.OpSubRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] -= c.Regs[r2]; return false }
	}
	compilers[isa.OpMulRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] *= c.Regs[r2]; return false }
	}
	compilers[isa.OpAndRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] &= c.Regs[r2]; return false }
	}
	compilers[isa.OpOrRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] |= c.Regs[r2]; return false }
	}
	compilers[isa.OpXorRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] ^= c.Regs[r2]; return false }
	}
	compilers[isa.OpShlRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] <<= c.Regs[r2] & 63; return false }
	}
	compilers[isa.OpShrRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.Regs[r1] >>= c.Regs[r2] & 63; return false }
	}

	divMod := func(div bool) compilerFunc {
		return func(in *isa.Inst, pc, next uint64) handler {
			r1, r2 := in.R1&15, in.R2&15
			return func(c *CPU) bool {
				d := int64(c.Regs[r2])
				if d == 0 {
					return c.divideFaultPC(pc)
				}
				if div {
					c.Regs[r1] = uint64(int64(c.Regs[r1]) / d)
				} else {
					c.Regs[r1] = uint64(int64(c.Regs[r1]) % d)
				}
				return false
			}
		}
	}
	compilers[isa.OpDivRR] = divMod(true)
	compilers[isa.OpModRR] = divMod(false)

	compilers[isa.OpCmpRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.setCmp(c.Regs[r1], c.Regs[r2]); return false }
	}
	compilers[isa.OpTestRR] = func(in *isa.Inst, pc, next uint64) handler {
		r1, r2 := rr(in)
		return func(c *CPU) bool { c.setTest(c.Regs[r1] & c.Regs[r2]); return false }
	}

	// ALU register-immediate forms.
	ri := func(in *isa.Inst) (isa.Reg, uint64) { return in.R1 & 15, uint64(in.Imm) }
	compilers[isa.OpAddRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.Regs[r1] += v; return false }
	}
	compilers[isa.OpSubRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.Regs[r1] -= v; return false }
	}
	compilers[isa.OpMulRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.Regs[r1] *= v; return false }
	}
	compilers[isa.OpAndRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.Regs[r1] &= v; return false }
	}
	compilers[isa.OpOrRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.Regs[r1] |= v; return false }
	}
	compilers[isa.OpXorRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.Regs[r1] ^= v; return false }
	}
	compilers[isa.OpShlRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		s := v & 63
		return func(c *CPU) bool { c.Regs[r1] <<= s; return false }
	}
	compilers[isa.OpShrRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		s := v & 63
		return func(c *CPU) bool { c.Regs[r1] >>= s; return false }
	}
	compilers[isa.OpCmpRI] = func(in *isa.Inst, pc, next uint64) handler {
		r1, v := ri(in)
		return func(c *CPU) bool { c.setCmp(c.Regs[r1], v); return false }
	}
	compilers[isa.OpNeg] = func(in *isa.Inst, pc, next uint64) handler {
		r1 := in.R1 & 15
		return func(c *CPU) bool { c.Regs[r1] = -c.Regs[r1]; return false }
	}
	compilers[isa.OpNot] = func(in *isa.Inst, pc, next uint64) handler {
		r1 := in.R1 & 15
		return func(c *CPU) bool { c.Regs[r1] = ^c.Regs[r1]; return false }
	}

	// Direct branches: the target folds to a constant at translate
	// time. Each condition gets its own closure reading the flags
	// directly — deliberately not calling isa.Op.EvalCond on the hot
	// path — and TestCompiledBranchesMatchEvalCond exhaustively pins
	// every closure to that reference definition.
	compilers[isa.OpJmp] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool { c.PC = target; return false }
	}
	compilers[isa.OpJe] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if c.ZF {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJne] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if !c.ZF {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJl] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if c.LTS {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJle] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if c.LTS || c.ZF {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJg] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if !c.LTS && !c.ZF {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJge] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if !c.LTS {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJb] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if c.LTU {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpJae] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			if !c.LTU {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpLoop] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		return func(c *CPU) bool {
			c.Regs[isa.R1]--
			if c.Regs[isa.R1] != 0 {
				c.PC = target
			} else {
				c.PC = next
			}
			return false
		}
	}
	compilers[isa.OpCall] = func(in *isa.Inst, pc, next uint64) handler {
		target := next + uint64(in.Imm)
		// Each compiled call site carries its own RAS cache slot for the
		// return-target translation (trace.go).
		site := &retSite{}
		return func(c *CPU) bool {
			if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
				return c.pageFaultPC(f, pc)
			}
			c.Regs[isa.SP] -= 8
			c.rasPush(next, site)
			c.PC = target
			return false
		}
	}
	compilers[isa.OpJmpR] = func(in *isa.Inst, pc, next uint64) handler {
		r1 := in.R1 & 15
		return func(c *CPU) bool { c.PC = c.Regs[r1]; return false }
	}
	compilers[isa.OpCallR] = func(in *isa.Inst, pc, next uint64) handler {
		r1 := in.R1 & 15
		site := &retSite{}
		return func(c *CPU) bool {
			if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
				return c.pageFaultPC(f, pc)
			}
			c.Regs[isa.SP] -= 8
			c.rasPush(next, site)
			c.PC = c.Regs[r1]
			return false
		}
	}
	jmpCallM := func(call bool) compilerFunc {
		return func(in *isa.Inst, pc, next uint64) handler {
			ea := compileEA(in.Mem, next)
			site := &retSite{}
			return func(c *CPU) bool {
				target, f := c.Mem.Load(ea(c), 8)
				if f != nil {
					return c.pageFaultPC(f, pc)
				}
				if call {
					if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
						return c.pageFaultPC(f, pc)
					}
					c.Regs[isa.SP] -= 8
					c.rasPush(next, site)
				}
				c.PC = target
				return false
			}
		}
	}
	compilers[isa.OpJmpM] = jmpCallM(false)
	compilers[isa.OpCallM] = jmpCallM(true)

	ret := func(in *isa.Inst, pc, next uint64) handler {
		pop := 8 + uint64(in.Imm)
		return func(c *CPU) bool {
			target, f := c.Mem.Load(c.Regs[isa.SP], 8)
			if f != nil {
				return c.pageFaultPC(f, pc)
			}
			c.Regs[isa.SP] += pop
			c.PC = target
			return false
		}
	}
	compilers[isa.OpRet] = ret
	compilers[isa.OpRetI] = ret

	compilers[isa.OpBndCL] = func(in *isa.Inst, pc, next uint64) handler {
		bnd, r1 := in.Bnd, in.R1&15
		return func(c *CPU) bool {
			if !c.Bnd.CheckLower(bnd, c.Regs[r1]) {
				return c.boundFaultPC(pc)
			}
			return false
		}
	}
	compilers[isa.OpBndCU] = func(in *isa.Inst, pc, next uint64) handler {
		bnd, r1 := in.Bnd, in.R1&15
		return func(c *CPU) bool {
			if !c.Bnd.CheckUpper(bnd, c.Regs[r1]) {
				return c.boundFaultPC(pc)
			}
			return false
		}
	}
	compilers[isa.OpBndCLM] = func(in *isa.Inst, pc, next uint64) handler {
		bnd, ea := in.Bnd, compileEA(in.Mem, next)
		return func(c *CPU) bool {
			if !c.Bnd.CheckLower(bnd, ea(c)) {
				return c.boundFaultPC(pc)
			}
			return false
		}
	}
	compilers[isa.OpBndCUM] = func(in *isa.Inst, pc, next uint64) handler {
		bnd, ea := in.Bnd, compileEA(in.Mem, next)
		return func(c *CPU) bool {
			if !c.Bnd.CheckUpper(bnd, ea(c)) {
				return c.boundFaultPC(pc)
			}
			return false
		}
	}
	compilers[isa.OpBndMk] = func(in *isa.Inst, pc, next uint64) handler {
		bnd, ea := in.Bnd, compileEA(in.Mem, next)
		base, hasBase := in.Mem.Base, in.Mem.Base.Valid()
		return func(c *CPU) bool {
			var lo uint64
			if hasBase {
				lo = c.Regs[base]
			}
			c.Bnd.Set(bnd, mpx.Bound{Lower: lo, Upper: ea(c)})
			return false
		}
	}
	compilers[isa.OpBndMov] = func(in *isa.Inst, pc, next uint64) handler {
		bnd, bnd2 := in.Bnd, in.Bnd2
		return func(c *CPU) bool {
			c.Bnd.Set(bnd, c.Bnd.Get(bnd2))
			return false
		}
	}

	nop := func(in *isa.Inst, pc, next uint64) handler {
		return func(c *CPU) bool { return false }
	}
	compilers[isa.OpCFILabel] = nop
	compilers[isa.OpNop] = nop

	halted := func(reason StopReason) compilerFunc {
		return func(in *isa.Inst, pc, next uint64) handler {
			return func(c *CPU) bool { return c.halted(reason, next) }
		}
	}
	compilers[isa.OpHalt] = halted(StopHalt)
	compilers[isa.OpTrap] = halted(StopTrap)
	compilers[isa.OpEExit] = halted(StopEExit)

	invalid := func(in *isa.Inst, pc, next uint64) handler {
		return func(c *CPU) bool { return c.invalidPC(pc) }
	}
	compilers[isa.OpEAccept] = invalid
	compilers[isa.OpEModPE] = invalid

	compilers[isa.OpXRstor] = func(in *isa.Inst, pc, next uint64) handler {
		return func(c *CPU) bool {
			for b := isa.BndReg(0); b < isa.NumBndRegs; b++ {
				c.Bnd.Set(b, mpx.Bound{Lower: 0, Upper: ^uint64(0)})
			}
			return false
		}
	}
	compilers[isa.OpWrFSBase] = nop
	compilers[isa.OpWrGSBase] = nop

	compilers[isa.OpVScatter] = func(in *isa.Inst, pc, next uint64) handler {
		r1, ea := in.R1&15, compileEA(in.Mem, next)
		return func(c *CPU) bool {
			a := ea(c)
			if f := c.Mem.Store(a, 8, c.Regs[r1]); f != nil {
				return c.pageFaultPC(f, pc)
			}
			if f := c.Mem.Store(a+128, 8, c.Regs[r1]); f != nil {
				return c.pageFaultPC(f, pc)
			}
			return false
		}
	}
}
