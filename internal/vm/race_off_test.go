//go:build !race

package vm

// raceEnabled is false in normal builds; see race_on_test.go.
const raceEnabled = false
