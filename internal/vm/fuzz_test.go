package vm

// FuzzTraceInvalidation interleaves execution with stores into
// executable pages, whole-range remaps, and preemption requests, and
// asserts that no stale superblock (or block) ever executes: a fuzzed
// action script drives a fast CPU and a Step reference in lockstep,
// with every mutation applied identically to both memories at a common
// architectural boundary. Any trace that survives an invalidation it
// should not have — or any cycle-accounting drift across side exits,
// severs, and preemptions — shows up as state divergence.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Magic immediates locate the two patch sites in the encoded image:
// their little-endian bytes appear verbatim in the instruction stream.
const (
	fuzzMagicA = 0x1112131415161718 // inside the hot loop
	fuzzMagicB = 0x2122232425262728 // inside the called helper
)

// fuzzTraceProgram is the victim: a hot self-loop (promotes fast)
// calling a helper on every iteration, both carrying a patchable
// immediate that feeds the accumulator — executing even one iteration
// from a stale translation desynchronizes R0 against the reference.
func fuzzTraceProgram(r *rand.Rand, b *asm.Builder) {
	b.Entry("_start")
	b.MovRI(isa.R8, 0)
	b.Label("loop")
	b.MovRI(isa.R3, fuzzMagicA)
	b.Add(isa.R0, isa.R3)
	b.Call("fn")
	b.AddI(isa.R8, 1)
	b.CmpI(isa.R8, 4000)
	b.Jl("loop")
	b.Trap()
	b.Func("fn")
	b.MovRI(isa.R4, fuzzMagicB)
	b.Add(isa.R0, isa.R4)
	b.Ret()
}

func le64(v uint64) []byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b[:]
}

func FuzzTraceInvalidation(f *testing.F) {
	f.Add([]byte{0, 255, 0, 255, 0, 255, 0, 255})                        // promote, run hot
	f.Add([]byte{0, 255, 0, 255, 2, 0x37, 0, 255, 2, 0x81, 0, 255})      // promote, patch, run, patch, run
	f.Add([]byte{0, 255, 3, 0, 0, 255, 3, 1, 0, 255})                    // promote, remap, run
	f.Add([]byte{0, 200, 4, 0, 0, 200, 2, 9, 4, 0, 0, 255})              // preempt + patch mix
	f.Add([]byte{2, 1, 2, 2, 2, 3, 0, 255, 3, 0, 2, 4, 0, 255, 4, 0})    // patch storm before warmup
	f.Add([]byte{0, 10, 2, 0xff, 0, 10, 2, 0, 0, 10, 2, 7, 0, 10, 3, 2}) // tiny slices, churn
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		img := build(t, func(b *asm.Builder) { fuzzTraceProgram(nil, b) })
		siteA := bytes.Index(img.Code, le64(fuzzMagicA))
		siteB := bytes.Index(img.Code, le64(fuzzMagicB))
		if siteA < 0 || siteB < 0 {
			t.Fatal("magic immediates not found in encoded image")
		}
		mk, db, ds := diffImage(t, 0, true, fuzzTraceProgram)
		fast, slow := mk(), mk()
		base := fast.Mem.Base()
		code := append([]byte(nil), img.Code...)

		compare := func(tag string) {
			t.Helper()
			if fast.Regs != slow.Regs || fast.PC != slow.PC || fast.Cycles != slow.Cycles ||
				fast.ZF != slow.ZF || fast.LTS != slow.LTS || fast.LTU != slow.LTU {
				t.Fatalf("%s: stale translation executed: fast pc=%#x cycles=%d regs=%v, step pc=%#x cycles=%d regs=%v",
					tag, fast.PC, fast.Cycles, fast.Regs, slow.PC, slow.Cycles, slow.Regs)
			}
		}
		// sync steps the reference to the fast CPU's retired count; a
		// true return means the program finished.
		sync := func() (Stop, bool) {
			for slow.Cycles < fast.Cycles {
				if st, d := slow.Step(); d {
					return st, true
				}
			}
			return Stop{}, false
		}
		finish := func(stFast Stop) {
			t.Helper()
			stSlow, d := sync()
			if !d {
				var dd bool
				if stSlow, dd = slow.Step(); !dd {
					t.Fatalf("Run stopped (%v) but Step continues", stFast)
				}
			}
			diffStops(t, 0, stFast, stSlow)
			diffCompareAt(t, 0, fast, slow, db, ds)
		}

		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], script[i+1]
			switch op % 5 {
			case 0, 1: // advance both CPUs by a fuzzed budget
				st := fast.Run(uint64(1 + int(arg)*8))
				if st.Reason != StopCycles {
					finish(st)
					return
				}
				if _, d := sync(); d {
					t.Fatalf("Step finished before Run at cycle %d", slow.Cycles)
				}
				compare("advance")
			case 2: // patch one byte of a magic immediate, both memories
				site := siteA
				if arg&1 != 0 {
					site = siteB
				}
				off := site + int(arg>>1)%8
				code[off] = arg
				for _, c := range []*CPU{fast, slow} {
					if err := c.Mem.WriteDirect(base+uint64(off), []byte{arg}); err != nil {
						t.Fatal(err)
					}
				}
			case 3: // remap the whole code range and rewrite it wholesale
				for _, c := range []*CPU{fast, slow} {
					if err := c.Mem.Map(base, img.CodeSpan(), mem.PermRWX); err != nil {
						t.Fatal(err)
					}
					if err := c.Mem.WriteDirect(base, code); err != nil {
						t.Fatal(err)
					}
				}
			case 4: // preempt the fast CPU mid-flight
				fast.RequestPreempt()
				st := fast.Run(0)
				if st.Reason != StopPreempt {
					finish(st)
					return
				}
				if _, d := sync(); d {
					t.Fatalf("Step finished before preempted Run")
				}
				compare("preempt")
			}
		}
		// Script exhausted: drive both to a final common boundary.
		if st := fast.Run(512); st.Reason != StopCycles {
			finish(st)
			return
		}
		if _, d := sync(); d {
			t.Fatalf("Step finished before Run at final boundary")
		}
		compare("final")
		diffCompareAt(t, 0, fast, slow, db, ds)
	})
}
