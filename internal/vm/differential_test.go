package vm

// Randomized differential testing: the chained + threaded Run fast
// path must match the Step slow path state-for-state on random
// programs drawn from the full opcode space — including programs whose
// branches land mid-instruction and decode garbage, whose memory
// operands fault, and whose execution is sliced by arbitrary cycle
// budgets (exercising the budget-clipped, non-fused dispatch path).

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

const (
	diffBase     = 0x200000
	diffCodePgs  = 2
	diffDataPgs  = 4
	diffDataBase = diffBase + (diffCodePgs+1)*mem.PageSize // one guard page
	diffDataSize = diffDataPgs * mem.PageSize
)

// diffProgram builds a random program image and a constructor for
// identically-initialized CPUs over fresh memory.
func diffProgram(t *testing.T, seed int64) func() *CPU {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var code []byte
	for n := 20 + r.Intn(180); n > 0; n-- {
		in := isa.RandomInst(r)
		var err error
		if code, err = isa.Encode(code, in); err != nil {
			t.Fatalf("seed %d: %v: %v", seed, in, err)
		}
		if len(code) > diffCodePgs*mem.PageSize {
			break
		}
	}
	// Register/bound seeds, fixed per program so both CPUs start equal.
	regs := [isa.NumRegs]uint64{}
	for i := range regs {
		switch r.Intn(3) {
		case 0: // plausible data pointer
			regs[i] = diffDataBase + uint64(r.Intn(diffDataSize-16))
		case 1: // small scalar
			regs[i] = uint64(r.Intn(512))
		default: // wild
			regs[i] = r.Uint64()
		}
	}
	regs[isa.SP] = diffDataBase + diffDataSize - 8*uint64(1+r.Intn(16))
	var bounds [isa.NumBndRegs]mpx.Bound
	for i := range bounds {
		lo := r.Uint64() % (2 * diffDataBase)
		bounds[i] = mpx.Bound{Lower: lo, Upper: lo + uint64(r.Intn(1<<20))}
	}
	return func() *CPU {
		m := mem.NewPaged(diffBase, (diffCodePgs+1+diffDataPgs+1)*mem.PageSize)
		if err := m.Map(diffBase, diffCodePgs*mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteDirect(diffBase, code); err != nil {
			t.Fatal(err)
		}
		if err := m.Map(diffDataBase, diffDataSize, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		c := New(m)
		c.PC = diffBase
		c.Regs = regs
		for i, b := range bounds {
			c.Bnd.Set(isa.BndReg(i), b)
		}
		return c
	}
}

// diffCompare fails the test unless the two CPUs have identical
// architectural state (registers, PC, flags, cycles, bounds, and the
// full data region).
func diffCompare(t *testing.T, seed int64, fast, slow *CPU) {
	t.Helper()
	if fast.Regs != slow.Regs || fast.PC != slow.PC || fast.Cycles != slow.Cycles {
		t.Fatalf("seed %d: state differs:\nrun:  pc=%#x cycles=%d regs=%v\nstep: pc=%#x cycles=%d regs=%v",
			seed, fast.PC, fast.Cycles, fast.Regs, slow.PC, slow.Cycles, slow.Regs)
	}
	if fast.ZF != slow.ZF || fast.LTS != slow.LTS || fast.LTU != slow.LTU {
		t.Fatalf("seed %d: flags differ", seed)
	}
	if fast.Bnd != slow.Bnd {
		t.Fatalf("seed %d: bound registers differ: %v vs %v", seed, fast.Bnd, slow.Bnd)
	}
	fd, _ := fast.Mem.ReadDirect(diffDataBase, diffDataSize)
	sd, _ := slow.Mem.ReadDirect(diffDataBase, diffDataSize)
	for i := range fd {
		if fd[i] != sd[i] {
			t.Fatalf("seed %d: data memory differs at +%#x: %#x vs %#x", seed, i, fd[i], sd[i])
		}
	}
}

// diffStops fails the test unless the two stops describe the same
// architectural event (Fault is compared by value, not pointer).
func diffStops(t *testing.T, seed int64, stFast, stSlow Stop) {
	t.Helper()
	same := stFast.Reason == stSlow.Reason && stFast.Exc == stSlow.Exc && stFast.PC == stSlow.PC
	if same {
		switch {
		case stFast.Fault == nil && stSlow.Fault == nil:
		case stFast.Fault != nil && stSlow.Fault != nil:
			same = *stFast.Fault == *stSlow.Fault
		default:
			same = false
		}
	}
	if !same {
		t.Fatalf("seed %d: stops differ: run=%v step=%v", seed, stFast, stSlow)
	}
}

func TestRandomizedStepMatchesRun(t *testing.T) {
	const (
		numSeeds  = 300
		maxCycles = 4000
	)
	for seed := int64(0); seed < numSeeds; seed++ {
		newCPU := diffProgram(t, seed)
		fast, slow := newCPU(), newCPU()
		r := rand.New(rand.NewSource(^seed))

		// Drive the fast CPU with random budget slices (clipping blocks
		// at arbitrary points); treat the first non-budget stop as the
		// end of the program. A budget cap bounds runaway loops — the
		// comparison below is valid at any common cycle count.
		var stFast Stop
		done := false
		for !done && fast.Cycles < maxCycles {
			st := fast.Run(uint64(1 + r.Intn(97)))
			if st.Reason != StopCycles {
				stFast, done = st, true
			}
		}

		// Step the slow CPU to the same retired-instruction count.
		var stSlow Stop
		sdone := false
		for !sdone && slow.Cycles < fast.Cycles {
			if st, d := slow.Step(); d {
				stSlow, sdone = st, true
			}
		}
		if done && !sdone {
			// The fast stop did not retire an instruction (a fetch
			// fault): the very next Step must raise the same stop.
			st, d := slow.Step()
			if !d {
				t.Fatalf("seed %d: Run stopped (%v) but Step continues", seed, stFast)
			}
			stSlow, sdone = st, true
		}
		if done != sdone {
			t.Fatalf("seed %d: Run done=%v (%v) but Step done=%v (%v)", seed, done, stFast, sdone, stSlow)
		}
		if done {
			diffStops(t, seed, stFast, stSlow)
		}
		diffCompare(t, seed, fast, slow)
	}
}

// TestRandomizedRunToCompletion re-runs a subset of seeds with no
// budget at all (the runNoBudget loop with fused tails) against Step,
// stopping runaway programs by injecting a halt... they cannot be
// stopped externally, so instead compare only programs that stop on
// their own within the cycle cap under the budgeted loop first.
func TestRandomizedRunToCompletion(t *testing.T) {
	const (
		numSeeds  = 300
		maxCycles = 4000
	)
	for seed := int64(0); seed < numSeeds; seed++ {
		newCPU := diffProgram(t, seed)
		// Probe with a bounded run: only programs that terminate by
		// themselves can be compared under Run(0).
		probe := newCPU()
		if st := probe.Run(maxCycles); st.Reason == StopCycles {
			continue
		}
		fast, slow := newCPU(), newCPU()
		stFast := fast.Run(0)
		// Bound the Step loop at the probe's cycle cap: if a dispatch
		// divergence made Run(0) terminate but Step loop forever, the
		// test must fail naming the seed, not hang.
		var stSlow Stop
		sdone := false
		for slow.Cycles <= maxCycles {
			if st, d := slow.Step(); d {
				stSlow, sdone = st, true
				break
			}
		}
		if !sdone {
			t.Fatalf("seed %d: Run(0) stopped (%v) but Step exceeded %d cycles", seed, stFast, maxCycles)
		}
		diffStops(t, seed, stFast, stSlow)
		diffCompare(t, seed, fast, slow)
	}
}
