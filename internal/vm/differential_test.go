package vm

// Randomized differential testing: the chained + threaded Run fast
// path must match the Step slow path state-for-state on random
// programs drawn from the full opcode space — including programs whose
// branches land mid-instruction and decode garbage, whose memory
// operands fault, and whose execution is sliced by arbitrary cycle
// budgets (exercising the budget-clipped, non-fused dispatch path).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

const (
	diffBase     = 0x200000
	diffCodePgs  = 2
	diffDataPgs  = 4
	diffDataBase = diffBase + (diffCodePgs+1)*mem.PageSize // one guard page
	diffDataSize = diffDataPgs * mem.PageSize
)

// diffProgram builds a random program image and a constructor for
// identically-initialized CPUs over fresh memory.
func diffProgram(t *testing.T, seed int64) func() *CPU {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	var code []byte
	for n := 20 + r.Intn(180); n > 0; n-- {
		in := isa.RandomInst(r)
		var err error
		if code, err = isa.Encode(code, in); err != nil {
			t.Fatalf("seed %d: %v: %v", seed, in, err)
		}
		if len(code) > diffCodePgs*mem.PageSize {
			break
		}
	}
	// Register/bound seeds, fixed per program so both CPUs start equal.
	regs := [isa.NumRegs]uint64{}
	for i := range regs {
		switch r.Intn(3) {
		case 0: // plausible data pointer
			regs[i] = diffDataBase + uint64(r.Intn(diffDataSize-16))
		case 1: // small scalar
			regs[i] = uint64(r.Intn(512))
		default: // wild
			regs[i] = r.Uint64()
		}
	}
	regs[isa.SP] = diffDataBase + diffDataSize - 8*uint64(1+r.Intn(16))
	var bounds [isa.NumBndRegs]mpx.Bound
	for i := range bounds {
		lo := r.Uint64() % (2 * diffDataBase)
		bounds[i] = mpx.Bound{Lower: lo, Upper: lo + uint64(r.Intn(1<<20))}
	}
	return func() *CPU {
		m := mem.NewPaged(diffBase, (diffCodePgs+1+diffDataPgs+1)*mem.PageSize)
		if err := m.Map(diffBase, diffCodePgs*mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteDirect(diffBase, code); err != nil {
			t.Fatal(err)
		}
		if err := m.Map(diffDataBase, diffDataSize, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		c := New(m)
		c.PC = diffBase
		c.Regs = regs
		for i, b := range bounds {
			c.Bnd.Set(isa.BndReg(i), b)
		}
		return c
	}
}

// diffCompare fails the test unless the two CPUs have identical
// architectural state (registers, PC, flags, cycles, bounds, and the
// full data region).
func diffCompare(t *testing.T, seed int64, fast, slow *CPU) {
	t.Helper()
	diffCompareAt(t, seed, fast, slow, diffDataBase, diffDataSize)
}

// diffCompareAt is diffCompare over an arbitrary data region, for
// programs not laid out at the diffBase constants (the asm-built trace
// battery below).
func diffCompareAt(t *testing.T, seed int64, fast, slow *CPU, dataBase uint64, dataSize int) {
	t.Helper()
	if fast.Regs != slow.Regs || fast.PC != slow.PC || fast.Cycles != slow.Cycles {
		t.Fatalf("seed %d: state differs:\nrun:  pc=%#x cycles=%d regs=%v\nstep: pc=%#x cycles=%d regs=%v",
			seed, fast.PC, fast.Cycles, fast.Regs, slow.PC, slow.Cycles, slow.Regs)
	}
	if fast.ZF != slow.ZF || fast.LTS != slow.LTS || fast.LTU != slow.LTU {
		t.Fatalf("seed %d: flags differ", seed)
	}
	if fast.Bnd != slow.Bnd {
		t.Fatalf("seed %d: bound registers differ: %v vs %v", seed, fast.Bnd, slow.Bnd)
	}
	fd, _ := fast.Mem.ReadDirect(dataBase, dataSize)
	sd, _ := slow.Mem.ReadDirect(dataBase, dataSize)
	for i := range fd {
		if fd[i] != sd[i] {
			t.Fatalf("seed %d: data memory differs at +%#x: %#x vs %#x", seed, i, fd[i], sd[i])
		}
	}
}

// diffStops fails the test unless the two stops describe the same
// architectural event (Fault is compared by value, not pointer).
func diffStops(t *testing.T, seed int64, stFast, stSlow Stop) {
	t.Helper()
	same := stFast.Reason == stSlow.Reason && stFast.Exc == stSlow.Exc && stFast.PC == stSlow.PC
	if same {
		switch {
		case stFast.Fault == nil && stSlow.Fault == nil:
		case stFast.Fault != nil && stSlow.Fault != nil:
			same = *stFast.Fault == *stSlow.Fault
		default:
			same = false
		}
	}
	if !same {
		t.Fatalf("seed %d: stops differ: run=%v step=%v", seed, stFast, stSlow)
	}
}

func TestRandomizedStepMatchesRun(t *testing.T) {
	const (
		numSeeds  = 300
		maxCycles = 4000
	)
	for seed := int64(0); seed < numSeeds; seed++ {
		newCPU := diffProgram(t, seed)
		fast, slow := newCPU(), newCPU()
		r := rand.New(rand.NewSource(^seed))

		// Drive the fast CPU with random budget slices (clipping blocks
		// at arbitrary points); treat the first non-budget stop as the
		// end of the program. A budget cap bounds runaway loops — the
		// comparison below is valid at any common cycle count.
		var stFast Stop
		done := false
		for !done && fast.Cycles < maxCycles {
			st := fast.Run(uint64(1 + r.Intn(97)))
			if st.Reason != StopCycles {
				stFast, done = st, true
			}
		}

		// Step the slow CPU to the same retired-instruction count.
		var stSlow Stop
		sdone := false
		for !sdone && slow.Cycles < fast.Cycles {
			if st, d := slow.Step(); d {
				stSlow, sdone = st, true
			}
		}
		if done && !sdone {
			// The fast stop did not retire an instruction (a fetch
			// fault): the very next Step must raise the same stop.
			st, d := slow.Step()
			if !d {
				t.Fatalf("seed %d: Run stopped (%v) but Step continues", seed, stFast)
			}
			stSlow, sdone = st, true
		}
		if done != sdone {
			t.Fatalf("seed %d: Run done=%v (%v) but Step done=%v (%v)", seed, done, stFast, sdone, stSlow)
		}
		if done {
			diffStops(t, seed, stFast, stSlow)
		}
		diffCompare(t, seed, fast, slow)
	}
}

// TestRandomizedRunToCompletion re-runs a subset of seeds with no
// budget at all (the runNoBudget loop with fused tails) against Step,
// stopping runaway programs by injecting a halt... they cannot be
// stopped externally, so instead compare only programs that stop on
// their own within the cycle cap under the budgeted loop first.
func TestRandomizedRunToCompletion(t *testing.T) {
	const (
		numSeeds  = 300
		maxCycles = 4000
	)
	for seed := int64(0); seed < numSeeds; seed++ {
		newCPU := diffProgram(t, seed)
		// Probe with a bounded run: only programs that terminate by
		// themselves can be compared under Run(0).
		probe := newCPU()
		if st := probe.Run(maxCycles); st.Reason == StopCycles {
			continue
		}
		fast, slow := newCPU(), newCPU()
		stFast := fast.Run(0)
		// Bound the Step loop at the probe's cycle cap: if a dispatch
		// divergence made Run(0) terminate but Step loop forever, the
		// test must fail naming the seed, not hang.
		var stSlow Stop
		sdone := false
		for slow.Cycles <= maxCycles {
			if st, d := slow.Step(); d {
				stSlow, sdone = st, true
				break
			}
		}
		if !sdone {
			t.Fatalf("seed %d: Run(0) stopped (%v) but Step exceeded %d cycles", seed, stFast, maxCycles)
		}
		diffStops(t, seed, stFast, stSlow)
		diffCompare(t, seed, fast, slow)
	}
}

// ---------------------------------------------------------------------
// Trace-aware battery: structured random programs shaped so the trace
// tier actually engages (hot loops well past traceHotThreshold, jump
// tables behind indirect jumps, call/ret towers deeper than the RAS,
// self-modifying stores into promoted traces), all held bit-exact —
// registers, flags, memory, and cycle counts — against the Step
// reference, under both budget slices and free runs, and across
// mid-run preemption.
// ---------------------------------------------------------------------

// diffImage builds a random program with gen and returns a constructor
// for identically-initialized CPUs plus the data region to compare.
// rwx remaps the code writable (the loader-pool shape the SMC programs
// need).
func diffImage(t *testing.T, seed int64, rwx bool, gen func(r *rand.Rand, b *asm.Builder)) (mk func() *CPU, dataBase uint64, dataSize int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	img := build(t, func(b *asm.Builder) { gen(r, b) })
	const base, stack = 0x100000, 4096
	ds := (img.MinDataSize() + stack + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	mk = func() *CPU {
		c := loadImage(t, img, stack)
		if rwx {
			if err := c.Mem.Map(c.Mem.Base(), img.CodeSpan(), mem.PermRWX); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return mk, base + img.DataStart(), int(ds)
}

const diffTraceMaxCycles = 200000

// diffDriveSliced drives fast under random budget slices and the Step
// reference to every slice boundary, holding the boundary states equal
// along the way (a final-state-only comparison would let compensating
// mid-run errors cancel), then compares stops and the full state.
func diffDriveSliced(t *testing.T, seed int64, mk func() *CPU, dataBase uint64, dataSize int) {
	t.Helper()
	fast, slow := mk(), mk()
	r := rand.New(rand.NewSource(^seed))
	var stFast, stSlow Stop
	done, sdone := false, false
	for !done && fast.Cycles < diffTraceMaxCycles {
		st := fast.Run(uint64(1 + r.Intn(197)))
		if st.Reason != StopCycles {
			stFast, done = st, true
		}
		for !sdone && slow.Cycles < fast.Cycles {
			if st, d := slow.Step(); d {
				stSlow, sdone = st, true
			}
		}
		if !done && !sdone {
			if fast.Cycles != slow.Cycles || fast.Regs != slow.Regs || fast.PC != slow.PC ||
				fast.ZF != slow.ZF || fast.LTS != slow.LTS || fast.LTU != slow.LTU {
				t.Fatalf("seed %d: boundary state diverged at cycle %d (step at %d)",
					seed, fast.Cycles, slow.Cycles)
			}
		}
	}
	if !done {
		t.Fatalf("seed %d: program exceeded %d cycles", seed, diffTraceMaxCycles)
	}
	if !sdone {
		// The fast stop did not retire an instruction: the very next
		// Step must raise the same stop.
		st, d := slow.Step()
		if !d {
			t.Fatalf("seed %d: Run stopped (%v) but Step continues", seed, stFast)
		}
		stSlow = st
	}
	diffStops(t, seed, stFast, stSlow)
	diffCompareAt(t, seed, fast, slow, dataBase, dataSize)
}

// diffDriveFull drives fast with no budget (the fused runNoBudget loop,
// where traces chain freely) against a bounded Step loop.
func diffDriveFull(t *testing.T, seed int64, mk func() *CPU, dataBase uint64, dataSize int) {
	t.Helper()
	fast, slow := mk(), mk()
	stFast := fast.Run(0)
	var stSlow Stop
	sdone := false
	for !sdone && slow.Cycles <= diffTraceMaxCycles {
		if st, d := slow.Step(); d {
			stSlow, sdone = st, true
		}
	}
	if !sdone {
		t.Fatalf("seed %d: Run(0) stopped (%v) but Step exceeded %d cycles", seed, stFast, diffTraceMaxCycles)
	}
	diffStops(t, seed, stFast, stSlow)
	diffCompareAt(t, seed, fast, slow, dataBase, dataSize)
}

// traceProgram is the workhorse generator: a hot loop (trip count well
// above traceHotThreshold) whose body mixes straight-line ALU work,
// data-dependent forward branches (side exits in both directions),
// bounded memory traffic, and calls into a small helper tower.
// Construction guarantees termination: body registers never include
// the loop counter, intra-body branches only go forward, and helper i
// calls only helper i+1.
func traceProgram(r *rand.Rand, b *asm.Builder) {
	bodyRegs := [...]isa.Reg{isa.R0, isa.R2, isa.R3, isa.R4, isa.R5}
	reg := func() isa.Reg { return bodyRegs[r.Intn(len(bodyRegs))] }
	rr := []isa.Op{isa.OpAddRR, isa.OpSubRR, isa.OpXorRR, isa.OpAndRR, isa.OpOrRR, isa.OpMulRR}
	alu := func() {
		switch r.Intn(8) {
		case 0:
			b.MovRI(reg(), int64(r.Uint32()))
		case 1:
			b.Alu(rr[r.Intn(len(rr))], reg(), reg())
		case 2:
			b.AddI(reg(), int32(r.Intn(1<<12)))
		case 3:
			b.SubI(reg(), int32(r.Intn(1<<12)))
		case 4:
			b.XorI(reg(), int32(r.Intn(1<<16)))
		case 5:
			b.ShlI(reg(), int32(r.Intn(8)))
		case 6:
			b.ShrI(reg(), int32(r.Intn(8)))
		default:
			b.MovRR(reg(), reg())
		}
	}
	memOp := func() {
		off := int32(8 * r.Intn(63))
		if r.Intn(2) == 0 {
			b.Store(isa.Mem(isa.R9, off), reg())
		} else {
			b.Load(reg(), isa.Mem(isa.R9, off))
		}
	}
	conds := []isa.Op{isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJae}

	nhelp := r.Intn(3)
	trips := 80 + r.Intn(140)
	loopStyle := r.Intn(2) // cmp+jl counter vs the register loop op

	b.Entry("_start")
	for _, rg := range bodyRegs {
		b.MovRI(rg, int64(r.Uint32()))
	}
	b.LeaData(isa.R9, "arr")
	if loopStyle == 0 {
		b.MovRI(isa.R8, 0)
	} else {
		b.MovRI(isa.R1, int64(trips))
	}
	b.Label("loop")
	nseg := 2 + r.Intn(3)
	for s := 0; s < nseg; s++ {
		b.Label(fmt.Sprintf("seg%d", s))
		for k := 1 + r.Intn(4); k > 0; k-- {
			switch r.Intn(5) {
			case 0:
				memOp()
			case 1:
				if nhelp > 0 {
					b.Call(fmt.Sprintf("h%d", r.Intn(nhelp)))
				} else {
					alu()
				}
			default:
				alu()
			}
		}
		if s+1 < nseg && r.Intn(2) == 0 {
			if r.Intn(2) == 0 {
				b.CmpI(reg(), int32(r.Intn(1<<12)))
			} else {
				b.Cmp(reg(), reg())
			}
			b.Jcc(conds[r.Intn(len(conds))], fmt.Sprintf("seg%d", s+1+r.Intn(nseg-s-1)))
		}
	}
	if loopStyle == 0 {
		b.AddI(isa.R8, 1)
		b.CmpI(isa.R8, int32(trips))
		b.Jl("loop")
	} else {
		b.Jcc(isa.OpLoop, "loop")
	}
	b.Trap()
	for h := 0; h < nhelp; h++ {
		b.Func(fmt.Sprintf("h%d", h))
		for k := 1 + r.Intn(4); k > 0; k-- {
			alu()
		}
		if h+1 < nhelp && r.Intn(2) == 0 {
			b.Call(fmt.Sprintf("h%d", h+1))
		}
		b.Ret()
	}
	b.Zero("arr", 512)
}

func TestTraceDifferentialHotLoops(t *testing.T) {
	const numSeeds = 50
	for seed := int64(0); seed < numSeeds; seed++ {
		mk, db, ds := diffImage(t, seed, false, traceProgram)
		diffDriveSliced(t, seed, mk, db, ds)
		diffDriveFull(t, seed, mk, db, ds)
	}
}

// jumpTableProgram dispatches a hot loop through a jump table built at
// runtime (the getpc idiom), exercising the indirect-exit inline cache:
// a single target stays monomorphic (hits), alternating targets thrash
// it (misses) — both must be invisible architecturally.
func jumpTableProgram(r *rand.Rand, b *asm.Builder) {
	ntargets := 1 << r.Intn(3) // 1, 2, or 4
	trips := 80 + r.Intn(140)
	b.Entry("_start")
	b.LeaData(isa.R9, "table")
	for i := 0; i < ntargets; i++ {
		ti, si := fmt.Sprintf("t%d", i), fmt.Sprintf("s%d", i)
		b.Call("getpc")    // r6 = address of the addi below
		b.AddI(isa.R6, 11) // skip the addi (6 bytes) and the jmp (5): r6 = ti
		b.Jmp(si)
		b.Label(ti)
		for k := 1 + r.Intn(3); k > 0; k-- {
			b.AddI([]isa.Reg{isa.R2, isa.R3, isa.R4, isa.R5}[r.Intn(4)], int32(1+r.Intn(100)))
		}
		b.Jmp("back")
		b.Label(si)
		b.Store(isa.Mem(isa.R9, int32(8*i)), isa.R6)
	}
	b.MovRI(isa.R8, 0)
	b.Label("loop")
	b.MovRR(isa.R7, isa.R8)
	b.AndI(isa.R7, int32(ntargets-1))
	b.ShlI(isa.R7, 3)
	b.Add(isa.R7, isa.R9)
	b.Load(isa.R7, isa.Mem(isa.R7, 0))
	b.JmpR(isa.R7)
	b.Label("back")
	b.AddI(isa.R8, 1)
	b.CmpI(isa.R8, int32(trips))
	b.Jl("loop")
	b.Trap()
	b.Func("getpc")
	b.Load(isa.R6, isa.Mem(isa.SP, 0))
	b.Ret()
	b.Zero("table", 8*4)
}

func TestTraceDifferentialJumpTables(t *testing.T) {
	const numSeeds = 30
	for seed := int64(0); seed < numSeeds; seed++ {
		mk, db, ds := diffImage(t, seed, false, jumpTableProgram)
		diffDriveSliced(t, seed, mk, db, ds)
		diffDriveFull(t, seed, mk, db, ds)
	}
}

// callTowerProgram recurses deeper than the return-address stack from
// inside a hot loop: the RAS wraps every descent, so ret transitions
// mix hits, cold misses, and overwritten entries.
func callTowerProgram(r *rand.Rand, b *asm.Builder) {
	depth := rasSize + 8 + r.Intn(60)
	trips := 70 + r.Intn(40)
	b.Entry("_start")
	b.MovRI(isa.R0, 0)
	b.MovRI(isa.R8, 0)
	b.Label("loop")
	b.MovRI(isa.R7, int64(depth))
	b.Call("f")
	b.AddI(isa.R8, 1)
	b.CmpI(isa.R8, int32(trips))
	b.Jl("loop")
	b.Trap()
	b.Func("f")
	b.CmpI(isa.R7, 0)
	b.Je("out")
	b.SubI(isa.R7, 1)
	b.AddI(isa.R0, int32(1+r.Intn(16)))
	b.Call("f")
	b.AddI(isa.R0, int32(1+r.Intn(16))) // unwind-side work
	b.Label("out")
	b.Ret()
}

func TestTraceDifferentialCallTowers(t *testing.T) {
	const numSeeds = 20
	for seed := int64(0); seed < numSeeds; seed++ {
		mk, db, ds := diffImage(t, seed, false, callTowerProgram)
		diffDriveSliced(t, seed, mk, db, ds)
		diffDriveFull(t, seed, mk, db, ds)
	}
}

// retMispredictProgram hijacks every fourth return by overwriting the
// return address on the stack (longjmp-shaped control flow): the RAS
// prediction and any in-trace ret guard must side-exit to where the
// return really went, with SP and flags exactly architectural.
func retMispredictProgram(r *rand.Rand, b *asm.Builder) {
	trips := 100 + r.Intn(100)
	b.Entry("_start")
	b.Call("getpc")
	b.AddI(isa.R6, 11) // r6 = "alt", the hijacked return target
	b.Jmp("begin")
	b.AddI(isa.R2, 7) // alt
	b.Jmp("cont")
	b.Label("begin")
	b.MovRI(isa.R8, 0)
	b.Label("loop")
	b.Call("g")
	b.AddI(isa.R3, 1) // architectural return site
	b.Label("cont")
	b.AddI(isa.R8, 1)
	b.CmpI(isa.R8, int32(trips))
	b.Jl("loop")
	b.Trap()
	b.Func("g")
	b.MovRR(isa.R7, isa.R8)
	b.AndI(isa.R7, 3)
	b.CmpI(isa.R7, 0)
	b.Jne("gout")
	b.Store(isa.Mem(isa.SP, 0), isa.R6) // redirect this return to alt
	b.Label("gout")
	b.AddI(isa.R4, 1)
	b.Ret()
	b.Func("getpc")
	b.Load(isa.R6, isa.Mem(isa.SP, 0))
	b.Ret()
}

func TestTraceDifferentialRetMispredict(t *testing.T) {
	const numSeeds = 20
	for seed := int64(0); seed < numSeeds; seed++ {
		mk, db, ds := diffImage(t, seed, false, retMispredictProgram)
		diffDriveSliced(t, seed, mk, db, ds)
		diffDriveFull(t, seed, mk, db, ds)
	}
}

// smcCalleeProgram stores into code under a promoted trace: a hot loop
// (which promotes — its own pages are never written) patches the
// immediate of a function on a different code page every iteration and
// calls it register-indirectly. Both tiers observe the patch at the
// callee's next entry, so the run stays bit-exact against Step while
// the invalidation machinery (page stamps, sever, retranslate) grinds
// underneath.
func smcCalleeProgram(r *rand.Rand, b *asm.Builder) {
	trips := 150 + r.Intn(100)
	b.Entry("_start")
	b.Jmp("computef")
	b.Label("main")
	b.MovRI(isa.R8, 0)
	b.MovRI(isa.R4, 0)
	b.Label("loop")
	b.MovRR(isa.R3, isa.R8)
	b.AndI(isa.R3, 0xff)
	b.StoreB(isa.Mem(isa.R6, 2), isa.R3) // patch f's movri imm low byte
	b.MovRR(isa.R7, isa.R6)
	b.CallR(isa.R7)
	b.Add(isa.R4, isa.R0)
	b.AddI(isa.R8, 1)
	b.CmpI(isa.R8, int32(trips))
	b.Jl("loop")
	b.Trap()
	// Pad the patched function onto its own page so the patch stores
	// never stamp the hot loop's page (which must stay promoted).
	for i := 0; i < 4200; i++ {
		b.Nop()
	}
	b.Label("computef")
	b.Call("getpc")
	b.AddI(isa.R6, 11) // r6 = "f"
	b.Jmp("main")
	b.Func("f")
	b.MovRI(isa.R0, 1)
	b.Ret()
	b.Func("getpc")
	b.Load(isa.R6, isa.Mem(isa.SP, 0))
	b.Ret()
}

func TestTraceDifferentialSMCCallee(t *testing.T) {
	const numSeeds = 8
	for seed := int64(0); seed < numSeeds; seed++ {
		mk, db, ds := diffImage(t, seed, true, smcCalleeProgram)
		diffDriveSliced(t, seed, mk, db, ds)
		diffDriveFull(t, seed, mk, db, ds)
	}
	// The program must actually have exercised the trace tier and its
	// invalidation path, or the battery proves nothing.
	if !TracesEnabled {
		return
	}
	mk, _, _ := diffImage(t, 0, true, smcCalleeProgram)
	c := mk()
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if s := c.CacheStats(); s.Traces == 0 || s.Flushes == 0 {
		t.Fatalf("stats = %v: want promoted traces and SMC flushes", s)
	}
}

// TestTraceDifferentialHostPatch patches the body of a promoted trace
// through the trusted WriteDirect interface at a run boundary — both
// memories identically — and requires the resumed runs to stay
// bit-exact: the fast CPU must sever the stale superblock, never
// executing patched-over code.
func TestTraceDifferentialHostPatch(t *testing.T) {
	gen := func(r *rand.Rand, b *asm.Builder) {
		b.Entry("_start")
		b.Call("getpc")
		b.AddI(isa.R6, 11) // r6 = "loop"
		b.Jmp("loop")
		b.Label("loop")
		b.MovRI(isa.R3, 5) // imm low byte at r6+2: the patch site
		b.Add(isa.R0, isa.R3)
		b.AddI(isa.R8, 1)
		b.CmpI(isa.R8, 300)
		b.Jl("loop")
		b.Trap()
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	}
	for seed := int64(0); seed < 10; seed++ {
		mk, db, ds := diffImage(t, seed, false, gen)
		fast, slow := mk(), mk()
		r := rand.New(rand.NewSource(seed))
		patchAt := uint64(800 + r.Intn(600)) // after promotion at threshold 64
		patched := false
		var stFast, stSlow Stop
		done, sdone := false, false
		for !done && fast.Cycles < diffTraceMaxCycles {
			st := fast.Run(uint64(1 + r.Intn(97)))
			if st.Reason != StopCycles {
				stFast, done = st, true
			}
			for !sdone && slow.Cycles < fast.Cycles {
				if st, d := slow.Step(); d {
					stSlow, sdone = st, true
				}
			}
			if !patched && fast.Cycles >= patchAt && !done && !sdone {
				// Both CPUs are parked at the same boundary: rewrite the
				// movri immediate in both memories.
				if fast.Regs != slow.Regs {
					t.Fatalf("seed %d: boundary diverged before patch", seed)
				}
				site := fast.Regs[isa.R6] + 2
				for _, c := range []*CPU{fast, slow} {
					if err := c.Mem.WriteDirect(site, []byte{9}); err != nil {
						t.Fatal(err)
					}
				}
				patched = true
			}
		}
		if !done {
			t.Fatalf("seed %d: program exceeded %d cycles", seed, diffTraceMaxCycles)
		}
		if !sdone {
			st, d := slow.Step()
			if !d {
				t.Fatalf("seed %d: Run stopped (%v) but Step continues", seed, stFast)
			}
			stSlow = st
		}
		if !patched {
			t.Fatalf("seed %d: patch point %d never reached", seed, patchAt)
		}
		diffStops(t, seed, stFast, stSlow)
		diffCompareAt(t, seed, fast, slow, db, ds)
		if TracesEnabled {
			if s := fast.CacheStats(); s.Traces == 0 {
				t.Fatalf("seed %d: stats = %v: loop never promoted", seed, s)
			}
		}
	}
}

// TestTraceDifferentialPreempt latches a preemption request against a
// warmed-up trace loop and requires delivery at the next trace exit —
// promptly, with the stop state bit-exact against a Step reference
// driven to the same retired-instruction count — then resumes both to
// completion.
func TestTraceDifferentialPreempt(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		mk, db, ds := diffImage(t, seed, false, traceProgram)
		fast, slow := mk(), mk()
		syncSlow := func() (Stop, bool) {
			for slow.Cycles < fast.Cycles {
				if st, d := slow.Step(); d {
					return st, true
				}
			}
			return Stop{}, false
		}
		// Warm up far enough that the hot path is promoted.
		warm := fast.Run(2000)
		if warm.Reason != StopCycles {
			continue // program finished cold; nothing to preempt
		}
		preempts := 0
		var stFast Stop
		finished := false
		for !finished {
			fast.RequestPreempt()
			st := fast.Run(0)
			if st.Reason != StopPreempt {
				stFast, finished = st, true
				break
			}
			preempts++
			if st.PC != fast.PC {
				t.Fatalf("seed %d: preempt stop PC %#x != cpu PC %#x", seed, st.PC, fast.PC)
			}
			if _, d := syncSlow(); d {
				t.Fatalf("seed %d: Step finished before preempted Run", seed)
			}
			diffCompareAt(t, seed, fast, slow, db, ds)
			// Make forward progress between preemptions.
			if st := fast.Run(256 + uint64(seed)*37); st.Reason != StopCycles {
				stFast, finished = st, true
			}
			if preempts > 64 {
				break
			}
		}
		if !finished { // capped the preempt loop: run free to the end
			stFast = fast.Run(0)
		}
		stSlow, d := syncSlow()
		if !d {
			if st, dd := slow.Step(); dd {
				stSlow, d = st, true
			}
		}
		if !d {
			t.Fatalf("seed %d: Run stopped (%v) but Step continues", seed, stFast)
		}
		diffStops(t, seed, stFast, stSlow)
		diffCompareAt(t, seed, fast, slow, db, ds)
		if preempts == 0 {
			t.Fatalf("seed %d: no preemption was ever delivered", seed)
		}
	}
}

// TestTraceDifferentialAsyncPreempt fires preemption requests from
// another goroutine while the hart runs free — the shape the scheduler
// uses — and checks every delivery point against the Step reference.
// Under -race this also proves the preempt path is data-race-free
// against trace execution.
func TestTraceDifferentialAsyncPreempt(t *testing.T) {
	mk, db, ds := diffImage(t, 3, false, traceProgram)
	fast, slow := mk(), mk()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fast.RequestPreempt()
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	var stFast Stop
	preempts := 0
	for {
		st := fast.Run(0)
		if st.Reason != StopPreempt {
			stFast = st
			break
		}
		preempts++
		if preempts > 1_000_000 {
			t.Fatal("preempt livelock: Run never completes")
		}
	}
	close(stop)
	wg.Wait()
	var stSlow Stop
	sdone := false
	for !sdone && slow.Cycles <= diffTraceMaxCycles {
		if st, d := slow.Step(); d {
			stSlow, sdone = st, true
		}
	}
	if !sdone {
		t.Fatalf("Run stopped (%v) but Step exceeded %d cycles", stFast, diffTraceMaxCycles)
	}
	diffStops(t, 3, stFast, stSlow)
	diffCompareAt(t, 3, fast, slow, db, ds)
	t.Logf("async preemptions delivered: %d", preempts)
}
