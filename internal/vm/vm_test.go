package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

// loadImage maps a linked image into fresh memory the way a loader would:
// code RX (made RWX to mirror SGX LibOS pools where noted), a guard gap,
// data+bss+stack RW, and a trailing guard page. It returns a CPU ready to
// run at the entry point with SP at the top of the stack.
func loadImage(t *testing.T, img *asm.Image, stack uint64) *CPU {
	t.Helper()
	const base = 0x100000
	dataSize := (img.MinDataSize() + stack + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	total := img.DataStart() + dataSize + uint64(img.GuardSize)
	m := mem.NewPaged(base, total+mem.PageSize)
	if err := m.Map(base, img.CodeSpan(), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(base, img.Code); err != nil {
		t.Fatal(err)
	}
	dbase := base + img.DataStart()
	if err := m.Map(dbase, dataSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(dbase, img.Data); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.PC = base + uint64(img.Entry)
	c.Regs[isa.SP] = dbase + dataSize // top of stack
	return c
}

func build(t *testing.T, f func(b *asm.Builder)) *asm.Image {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 into R0.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, 1)
		b.Label("loop")
		b.Add(isa.R0, isa.R2)
		b.AddI(isa.R2, 1)
		b.CmpI(isa.R2, 100)
		b.Jle("loop")
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 5050 {
		t.Fatalf("sum = %d, want 5050", c.Regs[isa.R0])
	}
}

func TestMemoryAndDataSymbols(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 0xCAFE)
		b.Store(isa.Mem(isa.R1, 8), isa.R2)
		b.Load(isa.R3, isa.Mem(isa.R1, 8))
		b.MovRI(isa.R4, 0x41)
		b.StoreB(isa.Mem(isa.R1, 0), isa.R4)
		b.LoadB(isa.R5, isa.Mem(isa.R1, 0))
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 0xCAFE || c.Regs[isa.R5] != 0x41 {
		t.Fatalf("r3=%#x r5=%#x", c.Regs[isa.R3], c.Regs[isa.R5])
	}
}

func TestCallRet(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 20)
		b.MovRI(isa.R2, 22)
		b.Call("addfn")
		b.Trap()
		b.Func("addfn")
		b.MovRR(isa.R0, isa.R1)
		b.Add(isa.R0, isa.R2)
		b.Ret()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.Regs[isa.R0])
	}
}

func TestIndirectCall(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 7)
		// Compute the function address as entry + known offsets is
		// fragile; instead call via a pushed return-style pointer:
		// lea of a label is not exposed, so use call/ret plumbing.
		b.Call("getpc") // r6 = address after this call
		// r6 now points at the addi below; skip it (6 bytes) and the
		// 5-byte jmp to reach "target".
		b.AddI(isa.R6, 11)
		b.Jmp("do")
		b.Label("target")
		b.MovRI(isa.R0, 42)
		b.Trap()
		b.Label("do")
		b.JmpR(isa.R6)
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.Regs[isa.R0])
	}
}

func TestPushPop(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 11)
		b.MovRI(isa.R2, 22)
		b.Push(isa.R1)
		b.Push(isa.R2)
		b.Pop(isa.R3)
		b.Pop(isa.R4)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	sp0 := uint64(0)
	c2 := c // capture initial sp after load
	sp0 = c2.Regs[isa.SP]
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 22 || c.Regs[isa.R4] != 11 {
		t.Fatalf("r3=%d r4=%d", c.Regs[isa.R3], c.Regs[isa.R4])
	}
	if c.Regs[isa.SP] != sp0 {
		t.Fatalf("sp not balanced: %#x vs %#x", c.Regs[isa.SP], sp0)
	}
}

func TestGuardRegionFaults(t *testing.T) {
	// A store into the code/data gap (guard region) must raise #PF on
	// an unmapped page — the MMDSFI guard-region mechanism.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 16))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.SubI(isa.R1, 2048) // into the guard gap
		b.Store(isa.Mem(isa.R1, 0), isa.R1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage || st.Fault == nil || !st.Fault.Unmapped {
		t.Fatalf("stop = %v, want unmapped #PF", st)
	}
}

func TestNXDataFetchFaults(t *testing.T) {
	// Jumping into the data region must fault: data pages are RW, not X.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", []byte{byte(isa.OpNop), byte(isa.OpNop)})
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.JmpR(isa.R1)
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage {
		t.Fatalf("stop = %v, want #PF", st)
	}
	if st.Fault.Access != mem.AccessExec {
		t.Fatalf("fault access = %v, want exec", st.Fault.Access)
	}
}

func TestBoundCheckRaisesBR(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 0x5000)
		b.I(isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND0, R1: isa.R1})
		b.I(isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND0, R1: isa.R1})
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0x4000, Upper: 0x4FFF})
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcBound {
		t.Fatalf("stop = %v, want #BR", st)
	}

	// In range: passes.
	c2 := loadImage(t, img, 4096)
	c2.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0x4000, Upper: 0x5FFF})
	if st := c2.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v, want trap", st)
	}
}

func TestDivideByZero(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 10)
		b.MovRI(isa.R2, 0)
		b.Div(isa.R1, isa.R2)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopException || st.Exc != ExcDivide {
		t.Fatalf("stop = %v, want #DE", st)
	}
}

func TestCycleBudget(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Label("spin")
		b.Jmp("spin")
	})
	c := loadImage(t, img, 4096)
	st := c.Run(1000)
	if st.Reason != StopCycles {
		t.Fatalf("stop = %v, want cycle budget", st)
	}
	if c.Cycles != 1000 {
		t.Fatalf("cycles = %d, want 1000", c.Cycles)
	}
}

func TestXRstorDisablesMPX(t *testing.T) {
	// The reason Stage 2 rejects xrstor: it makes every bound check pass.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.I(isa.Inst{Op: isa.OpXRstor})
		b.MovRI(isa.R1, 0xFFFF_FFFF)
		b.I(isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND0, R1: isa.R1})
		b.I(isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND0, R1: isa.R1})
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: 1, Upper: 2})
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v: xrstor should have widened bounds", st)
	}
}

func TestCFILabelIsNoOp(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 5)
		b.I(isa.Inst{Op: isa.OpCFILabel, DomainID: 9})
		b.AddI(isa.R1, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R1] != 6 {
		t.Fatalf("r1 = %d", c.Regs[isa.R1])
	}
}

func TestTrapResume(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
		b.MovRI(isa.R0, 2)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 1 {
		t.Fatalf("first stop = %v r0=%d", st, c.Regs[isa.R0])
	}
	// Resuming continues after the trap.
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 2 {
		t.Fatalf("second stop = %v r0=%d", st, c.Regs[isa.R0])
	}
}

func TestICacheInvalidatedOnTrustedWrite(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	// Trusted rewrite of the movri immediate (like the loader patching
	// cfi_label domain IDs) must take effect on re-execution.
	base := c.Mem.Base()
	if err := c.Mem.WriteDirect(base+2, []byte{7}); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 7 {
		t.Fatalf("r0 = %d, want 7 (icache must be invalidated)", c.Regs[isa.R0])
	}
}

func TestRunawayPCFaults(t *testing.T) {
	// Falling off the end of code hits the zero padding of the last
	// code page (#UD on the zero opcode) or, past that, the unmapped
	// guard gap (#PF). Either way the runaway hart stops.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Nop()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || (st.Exc != ExcPage && st.Exc != ExcInvalid) {
		t.Fatalf("stop = %v, want #PF or #UD", st)
	}
}

// loadImageRWX is loadImage with the code region remapped writable, the
// shape of a LibOS loader pool where code is patched in place.
func loadImageRWX(t *testing.T, img *asm.Image, stack uint64) *CPU {
	t.Helper()
	c := loadImage(t, img, stack)
	if err := c.Mem.Map(c.Mem.Base(), img.CodeSpan(), mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSelfModifyingCodeFlushesBlocks(t *testing.T) {
	// A program that patches the immediate of its own movri through an
	// untrusted store to a writable+executable page, then loops back
	// over the patched instruction. The translated block for the loop
	// body must be re-decoded at the next block boundary, so the second
	// pass sees the new immediate.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Call("getpc") // r6 = address of "patch"
		b.Label("patch")
		b.MovRI(isa.R0, 1) // imm64 low byte at patch+2
		b.MovRI(isa.R2, 9)
		b.StoreB(isa.Mem(isa.R6, 2), isa.R2) // movri r0, 1 -> movri r0, 9
		b.AddI(isa.R5, 1)
		b.CmpI(isa.R5, 2)
		b.Jl("patch")
		b.Trap()
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImageRWX(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 9 {
		t.Fatalf("r0 = %d, want 9 (stale translated block executed)", c.Regs[isa.R0])
	}
	if s := c.CacheStats(); s.Flushes == 0 {
		t.Fatalf("stats = %v: self-modifying store flushed no blocks", s)
	}
}

func TestStoreToCodePageFlushesBlocks(t *testing.T) {
	// Same invalidation path, driven from outside the program: after a
	// warm run, an untrusted store into the (writable+executable) code
	// page rewrites an immediate; re-execution must see it.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImageRWX(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	base := c.Mem.Base()
	if f := c.Mem.Store(base+uint64(img.Entry)+2, 1, 7); f != nil {
		t.Fatal(f)
	}
	c.PC = base + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 7 {
		t.Fatalf("r0 = %d, want 7 (block not invalidated by code-page store)", c.Regs[isa.R0])
	}
}

func TestMapOverCodeFlushesBlocks(t *testing.T) {
	// Remapping the code region non-executable (the teardown half of an
	// mmap-over-code) must invalidate translated blocks: re-running from
	// the entry raises an exec #PF instead of executing stale decodes.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	base := c.Mem.Base()
	if err := c.Mem.Map(base, img.CodeSpan(), mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(img.Entry)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage || st.Fault == nil || st.Fault.Access != mem.AccessExec {
		t.Fatalf("stop = %v, want exec #PF (stale block executed from non-executable page)", st)
	}
}

func TestMmapOverCodeRunsNewCode(t *testing.T) {
	// The full mmap-over-code sequence: remap the code range and write a
	// different program at the same addresses. The old translation must
	// not survive.
	oldImg := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	newImg := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 2)
		b.MovRI(isa.R1, 40)
		b.AddI(isa.R1, 2)
		b.Trap()
	})
	c := loadImage(t, oldImg, 4096)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 1 {
		t.Fatalf("old program: stop=%v r0=%d", st, c.Regs[isa.R0])
	}
	base := c.Mem.Base()
	if err := c.Mem.Map(base, newImg.CodeSpan(), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := c.Mem.WriteDirect(base, newImg.Code); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(newImg.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("new program: stop = %v", st)
	}
	if c.Regs[isa.R0] != 2 || c.Regs[isa.R1] != 42 {
		t.Fatalf("r0=%d r1=%d, want 2 and 42 (stale translation ran)", c.Regs[isa.R0], c.Regs[isa.R1])
	}
}

func TestDataStoresDoNotFlushBlocks(t *testing.T) {
	// Stores to plain data pages must not invalidate translated code:
	// a warm re-run of a store-heavy program is served entirely from
	// the block cache.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 0x77)
		b.Store(isa.Mem(isa.R1, 0), isa.R2)
		b.Store(isa.Mem(isa.R1, 8), isa.R2)
		b.Push(isa.R2)
		b.Pop(isa.R3)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	entry := c.Mem.Base() + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	warm := c.CacheStats()
	c.PC = entry
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	s := c.CacheStats()
	if s.Flushes != warm.Flushes {
		t.Fatalf("data stores flushed blocks: %v -> %v", warm, s)
	}
	if s.Misses != warm.Misses {
		t.Fatalf("warm re-run missed the cache: %v -> %v", warm, s)
	}
	if s.Hits <= warm.Hits {
		t.Fatalf("warm re-run recorded no hits: %v -> %v", warm, s)
	}
}

func TestTrustedDataWriteDoesNotFlushBlocks(t *testing.T) {
	// A trusted WriteDirect into a data page (the LibOS copying a
	// syscall result into user memory) must not flush code blocks —
	// and the program must still observe the new data, since data reads
	// are never cached.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", []byte{1, 0, 0, 0, 0, 0, 0, 0})
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.Load(isa.R3, isa.Mem(isa.R1, 0))
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	entry := c.Mem.Base() + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R3] != 1 {
		t.Fatalf("stop=%v r3=%d", st, c.Regs[isa.R3])
	}
	warm := c.CacheStats()
	// Locate buf: the program left its address in r1.
	if err := c.Mem.WriteDirect(c.Regs[isa.R1], []byte{9}); err != nil {
		t.Fatal(err)
	}
	c.PC = entry
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 9 {
		t.Fatalf("r3 = %d, want 9", c.Regs[isa.R3])
	}
	s := c.CacheStats()
	if s.Flushes != warm.Flushes || s.Misses != warm.Misses {
		t.Fatalf("trusted data write disturbed code blocks: %v -> %v", warm, s)
	}
}

func TestCycleBudgetMidBlock(t *testing.T) {
	// A budget that lands in the middle of a translated block must stop
	// exactly there and resume exactly there.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		for i := 0; i < 10; i++ {
			b.AddI(isa.R0, 1)
		}
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(3)
	if st.Reason != StopCycles {
		t.Fatalf("stop = %v, want cycle budget", st)
	}
	if c.Cycles != 3 || c.Regs[isa.R0] != 3 {
		t.Fatalf("cycles=%d r0=%d, want 3 and 3", c.Cycles, c.Regs[isa.R0])
	}
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Cycles != 11 || c.Regs[isa.R0] != 10 {
		t.Fatalf("cycles=%d r0=%d, want 11 and 10", c.Cycles, c.Regs[isa.R0])
	}
}

func TestStepMatchesRun(t *testing.T) {
	// Differential check: the translated-block fast path and the Step
	// slow path must produce identical architectural state.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, 1)
		b.Label("loop")
		b.Add(isa.R0, isa.R2)
		b.AddI(isa.R2, 3)
		b.Call("touch")
		b.CmpI(isa.R2, 40)
		b.Jle("loop")
		b.Trap()
		b.Func("touch")
		b.LeaData(isa.R1, "buf")
		b.Store(isa.Mem(isa.R1, 16), isa.R0)
		b.Load(isa.R3, isa.Mem(isa.R1, 16))
		b.Ret()
	})
	fast := loadImage(t, img, 4096)
	slow := loadImage(t, img, 4096)

	stFast := fast.Run(0)
	var stSlow Stop
	for {
		st, done := slow.Step()
		if done {
			stSlow = st
			break
		}
	}
	if stFast != stSlow {
		t.Fatalf("stops differ: run=%v step=%v", stFast, stSlow)
	}
	if fast.Regs != slow.Regs || fast.PC != slow.PC || fast.Cycles != slow.Cycles {
		t.Fatalf("state differs:\nrun:  regs=%v pc=%#x cycles=%d\nstep: regs=%v pc=%#x cycles=%d",
			fast.Regs, fast.PC, fast.Cycles, slow.Regs, slow.PC, slow.Cycles)
	}
	if fast.ZF != slow.ZF || fast.LTS != slow.LTS || fast.LTU != slow.LTU {
		t.Fatal("flags differ between Run and Step execution")
	}
}

func TestCacheStatsAccumulate(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 50)
		b.Label("spin")
		b.Jcc(isa.OpLoop, "spin")
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	s := c.CacheStats()
	if s.Blocks == 0 || s.Misses == 0 {
		t.Fatalf("stats = %v: expected decoded blocks", s)
	}
	// The 50-iteration loop re-enters its block: hits must dominate.
	if s.Hits < 40 {
		t.Fatalf("stats = %v: loop not served from cache", s)
	}
}

func BenchmarkInterpreterThroughput(b *testing.B) {
	bb := asm.NewBuilder()
	bb.Entry("_start")
	bb.MovRI(isa.R0, 0)
	bb.MovRI(isa.R2, 1)
	bb.Label("loop")
	bb.Add(isa.R0, isa.R2)
	bb.AddI(isa.R2, 1)
	bb.CmpI(isa.R2, 1000000)
	bb.Jle("loop")
	bb.Trap()
	p, err := bb.Finish()
	if err != nil {
		b.Fatal(err)
	}
	img, err := asm.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	const base = 0x100000
	dataSize := uint64(2 * mem.PageSize)
	m := mem.NewPaged(base, img.DataStart()+dataSize+mem.PageSize)
	_ = m.Map(base, img.CodeSpan(), mem.PermRX)
	_ = m.WriteDirect(base, img.Code)
	_ = m.Map(base+img.DataStart(), dataSize, mem.PermRW)
	c := New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.PC = base + uint64(img.Entry)
		c.Regs[isa.SP] = base + img.DataStart() + dataSize
		if st := c.Run(0); st.Reason != StopTrap {
			b.Fatalf("stop = %v", st)
		}
	}
	b.ReportMetric(float64(c.Cycles), "cycles/op")
}
