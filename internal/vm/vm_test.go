package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

// loadImage maps a linked image into fresh memory the way a loader would:
// code RX (made RWX to mirror SGX LibOS pools where noted), a guard gap,
// data+bss+stack RW, and a trailing guard page. It returns a CPU ready to
// run at the entry point with SP at the top of the stack.
func loadImage(t *testing.T, img *asm.Image, stack uint64) *CPU {
	t.Helper()
	const base = 0x100000
	dataSize := (img.MinDataSize() + stack + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	total := img.DataStart() + dataSize + uint64(img.GuardSize)
	m := mem.NewPaged(base, total+mem.PageSize)
	if err := m.Map(base, img.CodeSpan(), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(base, img.Code); err != nil {
		t.Fatal(err)
	}
	dbase := base + img.DataStart()
	if err := m.Map(dbase, dataSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(dbase, img.Data); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.PC = base + uint64(img.Entry)
	c.Regs[isa.SP] = dbase + dataSize // top of stack
	return c
}

func build(t *testing.T, f func(b *asm.Builder)) *asm.Image {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 into R0.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, 1)
		b.Label("loop")
		b.Add(isa.R0, isa.R2)
		b.AddI(isa.R2, 1)
		b.CmpI(isa.R2, 100)
		b.Jle("loop")
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 5050 {
		t.Fatalf("sum = %d, want 5050", c.Regs[isa.R0])
	}
}

func TestMemoryAndDataSymbols(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 0xCAFE)
		b.Store(isa.Mem(isa.R1, 8), isa.R2)
		b.Load(isa.R3, isa.Mem(isa.R1, 8))
		b.MovRI(isa.R4, 0x41)
		b.StoreB(isa.Mem(isa.R1, 0), isa.R4)
		b.LoadB(isa.R5, isa.Mem(isa.R1, 0))
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 0xCAFE || c.Regs[isa.R5] != 0x41 {
		t.Fatalf("r3=%#x r5=%#x", c.Regs[isa.R3], c.Regs[isa.R5])
	}
}

func TestCallRet(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 20)
		b.MovRI(isa.R2, 22)
		b.Call("addfn")
		b.Trap()
		b.Func("addfn")
		b.MovRR(isa.R0, isa.R1)
		b.Add(isa.R0, isa.R2)
		b.Ret()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.Regs[isa.R0])
	}
}

func TestIndirectCall(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 7)
		// Compute the function address as entry + known offsets is
		// fragile; instead call via a pushed return-style pointer:
		// lea of a label is not exposed, so use call/ret plumbing.
		b.Call("getpc") // r6 = address after this call
		// r6 now points at the addi below; skip it (6 bytes) and the
		// 5-byte jmp to reach "target".
		b.AddI(isa.R6, 11)
		b.Jmp("do")
		b.Label("target")
		b.MovRI(isa.R0, 42)
		b.Trap()
		b.Label("do")
		b.JmpR(isa.R6)
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.Regs[isa.R0])
	}
}

func TestPushPop(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 11)
		b.MovRI(isa.R2, 22)
		b.Push(isa.R1)
		b.Push(isa.R2)
		b.Pop(isa.R3)
		b.Pop(isa.R4)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	sp0 := uint64(0)
	c2 := c // capture initial sp after load
	sp0 = c2.Regs[isa.SP]
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 22 || c.Regs[isa.R4] != 11 {
		t.Fatalf("r3=%d r4=%d", c.Regs[isa.R3], c.Regs[isa.R4])
	}
	if c.Regs[isa.SP] != sp0 {
		t.Fatalf("sp not balanced: %#x vs %#x", c.Regs[isa.SP], sp0)
	}
}

func TestGuardRegionFaults(t *testing.T) {
	// A store into the code/data gap (guard region) must raise #PF on
	// an unmapped page — the MMDSFI guard-region mechanism.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 16))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.SubI(isa.R1, 2048) // into the guard gap
		b.Store(isa.Mem(isa.R1, 0), isa.R1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage || st.Fault == nil || !st.Fault.Unmapped {
		t.Fatalf("stop = %v, want unmapped #PF", st)
	}
}

func TestNXDataFetchFaults(t *testing.T) {
	// Jumping into the data region must fault: data pages are RW, not X.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", []byte{byte(isa.OpNop), byte(isa.OpNop)})
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.JmpR(isa.R1)
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage {
		t.Fatalf("stop = %v, want #PF", st)
	}
	if st.Fault.Access != mem.AccessExec {
		t.Fatalf("fault access = %v, want exec", st.Fault.Access)
	}
}

func TestBoundCheckRaisesBR(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 0x5000)
		b.I(isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND0, R1: isa.R1})
		b.I(isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND0, R1: isa.R1})
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0x4000, Upper: 0x4FFF})
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcBound {
		t.Fatalf("stop = %v, want #BR", st)
	}

	// In range: passes.
	c2 := loadImage(t, img, 4096)
	c2.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0x4000, Upper: 0x5FFF})
	if st := c2.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v, want trap", st)
	}
}

func TestDivideByZero(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 10)
		b.MovRI(isa.R2, 0)
		b.Div(isa.R1, isa.R2)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopException || st.Exc != ExcDivide {
		t.Fatalf("stop = %v, want #DE", st)
	}
}

func TestCycleBudget(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Label("spin")
		b.Jmp("spin")
	})
	c := loadImage(t, img, 4096)
	st := c.Run(1000)
	if st.Reason != StopCycles {
		t.Fatalf("stop = %v, want cycle budget", st)
	}
	if c.Cycles != 1000 {
		t.Fatalf("cycles = %d, want 1000", c.Cycles)
	}
}

func TestXRstorDisablesMPX(t *testing.T) {
	// The reason Stage 2 rejects xrstor: it makes every bound check pass.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.I(isa.Inst{Op: isa.OpXRstor})
		b.MovRI(isa.R1, 0xFFFF_FFFF)
		b.I(isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND0, R1: isa.R1})
		b.I(isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND0, R1: isa.R1})
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: 1, Upper: 2})
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v: xrstor should have widened bounds", st)
	}
}

func TestCFILabelIsNoOp(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 5)
		b.I(isa.Inst{Op: isa.OpCFILabel, DomainID: 9})
		b.AddI(isa.R1, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R1] != 6 {
		t.Fatalf("r1 = %d", c.Regs[isa.R1])
	}
}

func TestTrapResume(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
		b.MovRI(isa.R0, 2)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 1 {
		t.Fatalf("first stop = %v r0=%d", st, c.Regs[isa.R0])
	}
	// Resuming continues after the trap.
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 2 {
		t.Fatalf("second stop = %v r0=%d", st, c.Regs[isa.R0])
	}
}

func TestICacheInvalidatedOnTrustedWrite(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	// Trusted rewrite of the movri immediate (like the loader patching
	// cfi_label domain IDs) must take effect on re-execution.
	base := c.Mem.Base()
	if err := c.Mem.WriteDirect(base+2, []byte{7}); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 7 {
		t.Fatalf("r0 = %d, want 7 (icache must be invalidated)", c.Regs[isa.R0])
	}
}

func TestRunawayPCFaults(t *testing.T) {
	// Falling off the end of code hits the zero padding of the last
	// code page (#UD on the zero opcode) or, past that, the unmapped
	// guard gap (#PF). Either way the runaway hart stops.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Nop()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || (st.Exc != ExcPage && st.Exc != ExcInvalid) {
		t.Fatalf("stop = %v, want #PF or #UD", st)
	}
}

func BenchmarkInterpreterThroughput(b *testing.B) {
	bb := asm.NewBuilder()
	bb.Entry("_start")
	bb.MovRI(isa.R0, 0)
	bb.MovRI(isa.R2, 1)
	bb.Label("loop")
	bb.Add(isa.R0, isa.R2)
	bb.AddI(isa.R2, 1)
	bb.CmpI(isa.R2, 1000000)
	bb.Jle("loop")
	bb.Trap()
	p, err := bb.Finish()
	if err != nil {
		b.Fatal(err)
	}
	img, err := asm.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	const base = 0x100000
	dataSize := uint64(2 * mem.PageSize)
	m := mem.NewPaged(base, img.DataStart()+dataSize+mem.PageSize)
	_ = m.Map(base, img.CodeSpan(), mem.PermRX)
	_ = m.WriteDirect(base, img.Code)
	_ = m.Map(base+img.DataStart(), dataSize, mem.PermRW)
	c := New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.PC = base + uint64(img.Entry)
		c.Regs[isa.SP] = base + img.DataStart() + dataSize
		if st := c.Run(0); st.Reason != StopTrap {
			b.Fatalf("stop = %v", st)
		}
	}
	b.ReportMetric(float64(c.Cycles), "cycles/op")
}
