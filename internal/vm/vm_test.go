package vm

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

// loadImage maps a linked image into fresh memory the way a loader would:
// code RX (made RWX to mirror SGX LibOS pools where noted), a guard gap,
// data+bss+stack RW, and a trailing guard page. It returns a CPU ready to
// run at the entry point with SP at the top of the stack.
func loadImage(t testing.TB, img *asm.Image, stack uint64) *CPU {
	t.Helper()
	const base = 0x100000
	dataSize := (img.MinDataSize() + stack + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	total := img.DataStart() + dataSize + uint64(img.GuardSize)
	m := mem.NewPaged(base, total+mem.PageSize)
	if err := m.Map(base, img.CodeSpan(), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(base, img.Code); err != nil {
		t.Fatal(err)
	}
	dbase := base + img.DataStart()
	if err := m.Map(dbase, dataSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(dbase, img.Data); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.PC = base + uint64(img.Entry)
	c.Regs[isa.SP] = dbase + dataSize // top of stack
	return c
}

func build(t testing.TB, f func(b *asm.Builder)) *asm.Image {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 into R0.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, 1)
		b.Label("loop")
		b.Add(isa.R0, isa.R2)
		b.AddI(isa.R2, 1)
		b.CmpI(isa.R2, 100)
		b.Jle("loop")
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 5050 {
		t.Fatalf("sum = %d, want 5050", c.Regs[isa.R0])
	}
}

func TestMemoryAndDataSymbols(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 0xCAFE)
		b.Store(isa.Mem(isa.R1, 8), isa.R2)
		b.Load(isa.R3, isa.Mem(isa.R1, 8))
		b.MovRI(isa.R4, 0x41)
		b.StoreB(isa.Mem(isa.R1, 0), isa.R4)
		b.LoadB(isa.R5, isa.Mem(isa.R1, 0))
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 0xCAFE || c.Regs[isa.R5] != 0x41 {
		t.Fatalf("r3=%#x r5=%#x", c.Regs[isa.R3], c.Regs[isa.R5])
	}
}

func TestCallRet(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 20)
		b.MovRI(isa.R2, 22)
		b.Call("addfn")
		b.Trap()
		b.Func("addfn")
		b.MovRR(isa.R0, isa.R1)
		b.Add(isa.R0, isa.R2)
		b.Ret()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.Regs[isa.R0])
	}
}

func TestIndirectCall(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 7)
		// Compute the function address as entry + known offsets is
		// fragile; instead call via a pushed return-style pointer:
		// lea of a label is not exposed, so use call/ret plumbing.
		b.Call("getpc") // r6 = address after this call
		// r6 now points at the addi below; skip it (6 bytes) and the
		// 5-byte jmp to reach "target".
		b.AddI(isa.R6, 11)
		b.Jmp("do")
		b.Label("target")
		b.MovRI(isa.R0, 42)
		b.Trap()
		b.Label("do")
		b.JmpR(isa.R6)
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.Regs[isa.R0])
	}
}

func TestPushPop(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 11)
		b.MovRI(isa.R2, 22)
		b.Push(isa.R1)
		b.Push(isa.R2)
		b.Pop(isa.R3)
		b.Pop(isa.R4)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	sp0 := uint64(0)
	c2 := c // capture initial sp after load
	sp0 = c2.Regs[isa.SP]
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 22 || c.Regs[isa.R4] != 11 {
		t.Fatalf("r3=%d r4=%d", c.Regs[isa.R3], c.Regs[isa.R4])
	}
	if c.Regs[isa.SP] != sp0 {
		t.Fatalf("sp not balanced: %#x vs %#x", c.Regs[isa.SP], sp0)
	}
}

func TestGuardRegionFaults(t *testing.T) {
	// A store into the code/data gap (guard region) must raise #PF on
	// an unmapped page — the MMDSFI guard-region mechanism.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 16))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.SubI(isa.R1, 2048) // into the guard gap
		b.Store(isa.Mem(isa.R1, 0), isa.R1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage || st.Fault == nil || !st.Fault.Unmapped {
		t.Fatalf("stop = %v, want unmapped #PF", st)
	}
}

func TestNXDataFetchFaults(t *testing.T) {
	// Jumping into the data region must fault: data pages are RW, not X.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", []byte{byte(isa.OpNop), byte(isa.OpNop)})
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.JmpR(isa.R1)
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage {
		t.Fatalf("stop = %v, want #PF", st)
	}
	if st.Fault.Access != mem.AccessExec {
		t.Fatalf("fault access = %v, want exec", st.Fault.Access)
	}
}

func TestBoundCheckRaisesBR(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 0x5000)
		b.I(isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND0, R1: isa.R1})
		b.I(isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND0, R1: isa.R1})
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0x4000, Upper: 0x4FFF})
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcBound {
		t.Fatalf("stop = %v, want #BR", st)
	}

	// In range: passes.
	c2 := loadImage(t, img, 4096)
	c2.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0x4000, Upper: 0x5FFF})
	if st := c2.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v, want trap", st)
	}
}

func TestDivideByZero(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 10)
		b.MovRI(isa.R2, 0)
		b.Div(isa.R1, isa.R2)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopException || st.Exc != ExcDivide {
		t.Fatalf("stop = %v, want #DE", st)
	}
}

func TestCycleBudget(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Label("spin")
		b.Jmp("spin")
	})
	c := loadImage(t, img, 4096)
	st := c.Run(1000)
	if st.Reason != StopCycles {
		t.Fatalf("stop = %v, want cycle budget", st)
	}
	if c.Cycles != 1000 {
		t.Fatalf("cycles = %d, want 1000", c.Cycles)
	}
}

func TestXRstorDisablesMPX(t *testing.T) {
	// The reason Stage 2 rejects xrstor: it makes every bound check pass.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.I(isa.Inst{Op: isa.OpXRstor})
		b.MovRI(isa.R1, 0xFFFF_FFFF)
		b.I(isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND0, R1: isa.R1})
		b.I(isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND0, R1: isa.R1})
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: 1, Upper: 2})
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v: xrstor should have widened bounds", st)
	}
}

func TestCFILabelIsNoOp(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 5)
		b.I(isa.Inst{Op: isa.OpCFILabel, DomainID: 9})
		b.AddI(isa.R1, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R1] != 6 {
		t.Fatalf("r1 = %d", c.Regs[isa.R1])
	}
}

func TestTrapResume(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
		b.MovRI(isa.R0, 2)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 1 {
		t.Fatalf("first stop = %v r0=%d", st, c.Regs[isa.R0])
	}
	// Resuming continues after the trap.
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 2 {
		t.Fatalf("second stop = %v r0=%d", st, c.Regs[isa.R0])
	}
}

func TestICacheInvalidatedOnTrustedWrite(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	// Trusted rewrite of the movri immediate (like the loader patching
	// cfi_label domain IDs) must take effect on re-execution.
	base := c.Mem.Base()
	if err := c.Mem.WriteDirect(base+2, []byte{7}); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 7 {
		t.Fatalf("r0 = %d, want 7 (icache must be invalidated)", c.Regs[isa.R0])
	}
}

func TestRunawayPCFaults(t *testing.T) {
	// Falling off the end of code hits the zero padding of the last
	// code page (#UD on the zero opcode) or, past that, the unmapped
	// guard gap (#PF). Either way the runaway hart stops.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Nop()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(0)
	if st.Reason != StopException || (st.Exc != ExcPage && st.Exc != ExcInvalid) {
		t.Fatalf("stop = %v, want #PF or #UD", st)
	}
}

// loadImageRWX is loadImage with the code region remapped writable, the
// shape of a LibOS loader pool where code is patched in place.
func loadImageRWX(t *testing.T, img *asm.Image, stack uint64) *CPU {
	t.Helper()
	c := loadImage(t, img, stack)
	if err := c.Mem.Map(c.Mem.Base(), img.CodeSpan(), mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSelfModifyingCodeFlushesBlocks(t *testing.T) {
	// A program that patches the immediate of its own movri through an
	// untrusted store to a writable+executable page, then loops back
	// over the patched instruction. The translated block for the loop
	// body must be re-decoded at the next block boundary, so the second
	// pass sees the new immediate.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Call("getpc") // r6 = address of "patch"
		b.Label("patch")
		b.MovRI(isa.R0, 1) // imm64 low byte at patch+2
		b.MovRI(isa.R2, 9)
		b.StoreB(isa.Mem(isa.R6, 2), isa.R2) // movri r0, 1 -> movri r0, 9
		b.AddI(isa.R5, 1)
		b.CmpI(isa.R5, 2)
		b.Jl("patch")
		b.Trap()
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImageRWX(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 9 {
		t.Fatalf("r0 = %d, want 9 (stale translated block executed)", c.Regs[isa.R0])
	}
	if s := c.CacheStats(); s.Flushes == 0 {
		t.Fatalf("stats = %v: self-modifying store flushed no blocks", s)
	}
}

func TestStoreToCodePageFlushesBlocks(t *testing.T) {
	// Same invalidation path, driven from outside the program: after a
	// warm run, an untrusted store into the (writable+executable) code
	// page rewrites an immediate; re-execution must see it.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImageRWX(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	base := c.Mem.Base()
	if f := c.Mem.Store(base+uint64(img.Entry)+2, 1, 7); f != nil {
		t.Fatal(f)
	}
	c.PC = base + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 7 {
		t.Fatalf("r0 = %d, want 7 (block not invalidated by code-page store)", c.Regs[isa.R0])
	}
}

func TestMapOverCodeFlushesBlocks(t *testing.T) {
	// Remapping the code region non-executable (the teardown half of an
	// mmap-over-code) must invalidate translated blocks: re-running from
	// the entry raises an exec #PF instead of executing stale decodes.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	base := c.Mem.Base()
	if err := c.Mem.Map(base, img.CodeSpan(), mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(img.Entry)
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage || st.Fault == nil || st.Fault.Access != mem.AccessExec {
		t.Fatalf("stop = %v, want exec #PF (stale block executed from non-executable page)", st)
	}
}

func TestMmapOverCodeRunsNewCode(t *testing.T) {
	// The full mmap-over-code sequence: remap the code range and write a
	// different program at the same addresses. The old translation must
	// not survive.
	oldImg := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 1)
		b.Trap()
	})
	newImg := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R0, 2)
		b.MovRI(isa.R1, 40)
		b.AddI(isa.R1, 2)
		b.Trap()
	})
	c := loadImage(t, oldImg, 4096)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 1 {
		t.Fatalf("old program: stop=%v r0=%d", st, c.Regs[isa.R0])
	}
	base := c.Mem.Base()
	if err := c.Mem.Map(base, newImg.CodeSpan(), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := c.Mem.WriteDirect(base, newImg.Code); err != nil {
		t.Fatal(err)
	}
	c.PC = base + uint64(newImg.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("new program: stop = %v", st)
	}
	if c.Regs[isa.R0] != 2 || c.Regs[isa.R1] != 42 {
		t.Fatalf("r0=%d r1=%d, want 2 and 42 (stale translation ran)", c.Regs[isa.R0], c.Regs[isa.R1])
	}
}

func TestDataStoresDoNotFlushBlocks(t *testing.T) {
	// Stores to plain data pages must not invalidate translated code:
	// a warm re-run of a store-heavy program is served entirely from
	// the block cache.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 0x77)
		b.Store(isa.Mem(isa.R1, 0), isa.R2)
		b.Store(isa.Mem(isa.R1, 8), isa.R2)
		b.Push(isa.R2)
		b.Pop(isa.R3)
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	entry := c.Mem.Base() + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	warm := c.CacheStats()
	c.PC = entry
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	s := c.CacheStats()
	if s.Flushes != warm.Flushes {
		t.Fatalf("data stores flushed blocks: %v -> %v", warm, s)
	}
	if s.Misses != warm.Misses {
		t.Fatalf("warm re-run missed the cache: %v -> %v", warm, s)
	}
	if s.Hits <= warm.Hits {
		t.Fatalf("warm re-run recorded no hits: %v -> %v", warm, s)
	}
}

func TestTrustedDataWriteDoesNotFlushBlocks(t *testing.T) {
	// A trusted WriteDirect into a data page (the LibOS copying a
	// syscall result into user memory) must not flush code blocks —
	// and the program must still observe the new data, since data reads
	// are never cached.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", []byte{1, 0, 0, 0, 0, 0, 0, 0})
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.Load(isa.R3, isa.Mem(isa.R1, 0))
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	entry := c.Mem.Base() + uint64(img.Entry)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R3] != 1 {
		t.Fatalf("stop=%v r3=%d", st, c.Regs[isa.R3])
	}
	warm := c.CacheStats()
	// Locate buf: the program left its address in r1.
	if err := c.Mem.WriteDirect(c.Regs[isa.R1], []byte{9}); err != nil {
		t.Fatal(err)
	}
	c.PC = entry
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R3] != 9 {
		t.Fatalf("r3 = %d, want 9", c.Regs[isa.R3])
	}
	s := c.CacheStats()
	if s.Flushes != warm.Flushes || s.Misses != warm.Misses {
		t.Fatalf("trusted data write disturbed code blocks: %v -> %v", warm, s)
	}
}

func TestCycleBudgetMidBlock(t *testing.T) {
	// A budget that lands in the middle of a translated block must stop
	// exactly there and resume exactly there.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		for i := 0; i < 10; i++ {
			b.AddI(isa.R0, 1)
		}
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	st := c.Run(3)
	if st.Reason != StopCycles {
		t.Fatalf("stop = %v, want cycle budget", st)
	}
	if c.Cycles != 3 || c.Regs[isa.R0] != 3 {
		t.Fatalf("cycles=%d r0=%d, want 3 and 3", c.Cycles, c.Regs[isa.R0])
	}
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Cycles != 11 || c.Regs[isa.R0] != 10 {
		t.Fatalf("cycles=%d r0=%d, want 11 and 10", c.Cycles, c.Regs[isa.R0])
	}
}

func TestStepMatchesRun(t *testing.T) {
	// Differential check: the translated-block fast path and the Step
	// slow path must produce identical architectural state.
	img := build(t, func(b *asm.Builder) {
		b.Bytes("buf", make([]byte, 64))
		b.Entry("_start")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, 1)
		b.Label("loop")
		b.Add(isa.R0, isa.R2)
		b.AddI(isa.R2, 3)
		b.Call("touch")
		b.CmpI(isa.R2, 40)
		b.Jle("loop")
		b.Trap()
		b.Func("touch")
		b.LeaData(isa.R1, "buf")
		b.Store(isa.Mem(isa.R1, 16), isa.R0)
		b.Load(isa.R3, isa.Mem(isa.R1, 16))
		b.Ret()
	})
	fast := loadImage(t, img, 4096)
	slow := loadImage(t, img, 4096)

	stFast := fast.Run(0)
	var stSlow Stop
	for {
		st, done := slow.Step()
		if done {
			stSlow = st
			break
		}
	}
	if stFast != stSlow {
		t.Fatalf("stops differ: run=%v step=%v", stFast, stSlow)
	}
	if fast.Regs != slow.Regs || fast.PC != slow.PC || fast.Cycles != slow.Cycles {
		t.Fatalf("state differs:\nrun:  regs=%v pc=%#x cycles=%d\nstep: regs=%v pc=%#x cycles=%d",
			fast.Regs, fast.PC, fast.Cycles, slow.Regs, slow.PC, slow.Cycles)
	}
	if fast.ZF != slow.ZF || fast.LTS != slow.LTS || fast.LTU != slow.LTU {
		t.Fatal("flags differ between Run and Step execution")
	}
}

func TestCacheStatsAccumulate(t *testing.T) {
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 50)
		b.Label("spin")
		b.Jcc(isa.OpLoop, "spin")
		b.Trap()
	})
	c := loadImage(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	s := c.CacheStats()
	if s.Blocks == 0 || s.Misses == 0 {
		t.Fatalf("stats = %v: expected decoded blocks", s)
	}
	// The 50-iteration loop re-enters its block through its own chain
	// pointer: chained transitions must dominate, with no extra map
	// traffic.
	if s.Hits+s.Chains < 40 {
		t.Fatalf("stats = %v: loop not served from cache", s)
	}
	if s.Chains < 40 {
		t.Fatalf("stats = %v: loop not chained block-to-block", s)
	}
	// Every retired instruction of this program went through the
	// threaded handlers (no Step fallback was ever needed).
	if s.Threaded != c.Cycles {
		t.Fatalf("threaded=%d cycles=%d: instructions escaped the fast path", s.Threaded, c.Cycles)
	}
}

func BenchmarkInterpreterThroughput(b *testing.B) {
	bb := asm.NewBuilder()
	bb.Entry("_start")
	bb.MovRI(isa.R0, 0)
	bb.MovRI(isa.R2, 1)
	bb.Label("loop")
	bb.Add(isa.R0, isa.R2)
	bb.AddI(isa.R2, 1)
	bb.CmpI(isa.R2, 1000000)
	bb.Jle("loop")
	bb.Trap()
	p, err := bb.Finish()
	if err != nil {
		b.Fatal(err)
	}
	img, err := asm.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	const base = 0x100000
	dataSize := uint64(2 * mem.PageSize)
	m := mem.NewPaged(base, img.DataStart()+dataSize+mem.PageSize)
	_ = m.Map(base, img.CodeSpan(), mem.PermRX)
	_ = m.WriteDirect(base, img.Code)
	_ = m.Map(base+img.DataStart(), dataSize, mem.PermRW)
	c := New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.PC = base + uint64(img.Entry)
		c.Regs[isa.SP] = base + img.DataStart() + dataSize
		if st := c.Run(0); st.Reason != StopTrap {
			b.Fatalf("stop = %v", st)
		}
	}
	b.ReportMetric(float64(c.Cycles), "cycles/op")
}

// TestCompilersCoverOpSpace: every valid opcode must have a handler
// compiler (compile panics on a missing table entry).
func TestCompilersCoverOpSpace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for op := isa.OpInvalid + 1; op < isa.Op(isa.NumOps); op++ {
		in := isa.RandomInstOp(r, op)
		if h := compile(&in, 0x1000, 0x1000+uint64(in.Len())); h == nil {
			t.Errorf("%s: nil handler", op)
		}
	}
}

// chainImage lays out two single blocks on two different code pages,
// A = jmp B (so A chains to B) and B = movri r0, imm; trap. Keeping
// them on separate pages means an invalidation of B leaves A valid —
// the scenario where only the *chained successor* is stale.
func chainImage(t *testing.T, perm mem.Perm) (*CPU, uint64, uint64) {
	t.Helper()
	const base = 0x100000
	m := mem.NewPaged(base, 4*mem.PageSize)
	if err := m.Map(base, 2*mem.PageSize, perm); err != nil {
		t.Fatal(err)
	}
	// Block A at base: jmp +(PageSize-5) -> lands at base+PageSize.
	codeA, err := isa.Encode(nil, isa.Inst{Op: isa.OpJmp, Imm: mem.PageSize - 5})
	if err != nil {
		t.Fatal(err)
	}
	// Block B at base+PageSize: movri r0, 1; trap.
	codeB, err := isa.Encode(nil, isa.Inst{Op: isa.OpMovRI, R1: isa.R0, Imm: 1})
	if err != nil {
		t.Fatal(err)
	}
	codeB, err = isa.Encode(codeB, isa.Inst{Op: isa.OpTrap})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(base, codeA); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(base+mem.PageSize, codeB); err != nil {
		t.Fatal(err)
	}
	c := New(m)
	c.PC = base
	return c, base, base + mem.PageSize
}

func TestChainedSuccessorInvalidatedBySMC(t *testing.T) {
	// Warm run establishes the chain A->B; an untrusted store then
	// rewrites B's immediate (self-modifying code through a W+X page).
	// Re-running A must NOT follow the chain into the stale B: the
	// chained transition revalidates B's span and re-translates.
	c, entry, bAddr := chainImage(t, mem.PermRWX)
	if st := c.Run(0); st.Reason != StopTrap || c.Regs[isa.R0] != 1 {
		t.Fatalf("warm run: stop=%v r0=%d", st, c.Regs[isa.R0])
	}
	warm := c.CacheStats()
	if f := c.Mem.Store(bAddr+2, 1, 9); f != nil { // movri imm low byte
		t.Fatal(f)
	}
	c.PC = entry
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 9 {
		t.Fatalf("r0 = %d, want 9: chained successor executed stale", c.Regs[isa.R0])
	}
	s := c.CacheStats()
	if s.Flushes != warm.Flushes+1 {
		t.Fatalf("flushes %d -> %d, want exactly one (B)", warm.Flushes, s.Flushes)
	}
	// A itself stayed valid (different page): served as a hit, not
	// re-translated.
	if s.Blocks != warm.Blocks+1 {
		t.Fatalf("blocks %d -> %d, want exactly one re-translation (B)", warm.Blocks, s.Blocks)
	}
}

func TestChainedSuccessorSeveredByMapOverCode(t *testing.T) {
	// The teardown half of mmap-over-code, applied to the *chained*
	// successor's page only: following the chain out of the still-valid
	// A must fault on B's now non-executable page, not run stale code.
	c, entry, bAddr := chainImage(t, mem.PermRX)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("warm run: stop = %v", st)
	}
	if err := c.Mem.Map(bAddr, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c.PC = entry
	st := c.Run(0)
	if st.Reason != StopException || st.Exc != ExcPage || st.Fault == nil ||
		st.Fault.Access != mem.AccessExec || st.PC != bAddr {
		t.Fatalf("stop = %v, want exec #PF at %#x (stale chained block ran)", st, bAddr)
	}
}

func TestChainedLoopSeesPatchedCode(t *testing.T) {
	// In-loop SMC across a chain: every iteration, block A patches the
	// movri immediate inside block B (its direct-branch successor) to
	// the iteration counter, so a stale chained B is observable
	// immediately. asm-built, all on one RWX region.
	img := build(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.Call("getpc") // r6 = address of "loop"
		b.Label("loop") // block A: patch B, then jump to it
		b.AddI(isa.R5, 1)
		b.MovRR(isa.R2, isa.R5)
		// B's movri starts 23 bytes after "loop" (addi 6 + mov 3 +
		// storeb 9 + jmp 5); its imm64 low byte is 2 further in.
		b.StoreB(isa.Mem(isa.R6, 25), isa.R2)
		b.Jmp("target")
		b.Label("target")  // block B
		b.MovRI(isa.R0, 0) // imm patched to 1, 2, 3
		b.CmpI(isa.R5, 3)
		b.Jl("loop")
		b.Trap()
		b.Func("getpc")
		b.Load(isa.R6, isa.Mem(isa.SP, 0))
		b.Ret()
	})
	c := loadImageRWX(t, img, 4096)
	if st := c.Run(0); st.Reason != StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if c.Regs[isa.R0] != 3 {
		t.Fatalf("r0 = %d, want 3 (stale chained block executed)", c.Regs[isa.R0])
	}
	if s := c.CacheStats(); s.Flushes == 0 {
		t.Fatalf("stats = %v: in-loop SMC flushed nothing", s)
	}
}

// condOps are the eight flag-based conditional branches.
var condOps = []isa.Op{isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJae}

// TestCompiledBranchesMatchEvalCond exhaustively pins every compiled
// conditional-branch handler to the reference semantics in
// isa.Op.EvalCond, over all flag combinations. The handlers inline
// their conditions for speed; this test is what keeps them from
// drifting.
func TestCompiledBranchesMatchEvalCond(t *testing.T) {
	const pc, next, disp = 0x1000, 0x1005, 0x40
	for _, op := range condOps {
		in := isa.Inst{Op: op, Imm: disp}
		h := compile(&in, pc, next)
		for _, zf := range []bool{false, true} {
			for _, lts := range []bool{false, true} {
				for _, ltu := range []bool{false, true} {
					c := New(mem.NewPaged(0, mem.PageSize))
					c.ZF, c.LTS, c.LTU = zf, lts, ltu
					if h(c) {
						t.Fatalf("%s: branch handler stopped the hart", op)
					}
					want := uint64(next)
					if op.EvalCond(zf, lts, ltu) {
						want = next + disp
					}
					if c.PC != want {
						t.Errorf("%s(zf=%v lts=%v ltu=%v): pc=%#x want %#x", op, zf, lts, ltu, c.PC, want)
					}
				}
			}
		}
	}
}

// TestFusedCmpBranchMatchesUnfused checks every fused compare+branch
// closure against executing its two unfused handlers, over a grid of
// operand values covering signed/unsigned boundaries: identical PC and
// identical resulting flags.
func TestFusedCmpBranchMatchesUnfused(t *testing.T) {
	const cmpPC, cmpNext, brNext, disp = 0x1000, 0x1006, 0x100B, 0x40
	vals := []uint64{0, 1, 2, 127, 128, 1<<31 - 1, 1 << 31, 1<<63 - 1, 1 << 63, ^uint64(0), ^uint64(0) - 1}
	for _, cmpOp := range []isa.Op{isa.OpCmpRI, isa.OpCmpRR} {
		for _, br := range condOps {
			brIn := isa.Inst{Op: br, Imm: disp}
			for _, a := range vals {
				for _, bv := range vals {
					cmpIn := isa.Inst{Op: cmpOp, R1: isa.R2}
					if cmpOp == isa.OpCmpRI {
						cmpIn.Imm = int64(bv)
					} else {
						cmpIn.R2 = isa.R3
					}
					fused := fuseCmpBranch(&cmpIn, &brIn, brNext)
					if fused == nil {
						t.Fatalf("%s+%s: no fused form", cmpOp, br)
					}
					newCPU := func() *CPU {
						c := New(mem.NewPaged(0, mem.PageSize))
						c.Regs[isa.R2], c.Regs[isa.R3] = a, bv
						return c
					}
					fc, uc := newCPU(), newCPU()
					if fused(fc) {
						t.Fatalf("%s+%s: fused handler stopped the hart", cmpOp, br)
					}
					hc := compile(&cmpIn, cmpPC, cmpNext)
					hb := compile(&brIn, cmpNext, brNext)
					if hc(uc) || hb(uc) {
						t.Fatalf("%s+%s: unfused handlers stopped the hart", cmpOp, br)
					}
					if fc.PC != uc.PC {
						t.Errorf("%s+%s a=%#x b=%#x: pc %#x vs %#x", cmpOp, br, a, bv, fc.PC, uc.PC)
					}
					if fc.ZF != uc.ZF || fc.LTS != uc.LTS || fc.LTU != uc.LTU {
						t.Errorf("%s+%s a=%#x b=%#x: flags differ", cmpOp, br, a, bv)
					}
				}
			}
		}
	}
	// Pairs without a fused form stay unfused.
	for _, pair := range [][2]isa.Inst{
		{{Op: isa.OpTestRR, R1: isa.R2, R2: isa.R3}, {Op: isa.OpJe, Imm: disp}},
		{{Op: isa.OpCmpRI, R1: isa.R2, Imm: 1}, {Op: isa.OpLoop, Imm: disp}},
		{{Op: isa.OpAddRR, R1: isa.R2, R2: isa.R3}, {Op: isa.OpJe, Imm: disp}},
	} {
		cmpIn, brIn := pair[0], pair[1]
		if fuseCmpBranch(&cmpIn, &brIn, brNext) != nil {
			t.Errorf("%s+%s: unexpectedly fused", cmpIn.Op, brIn.Op)
		}
	}
}
