package vm

// Trace-level superblocks: the top rung of the DBT optimization ladder
// (ROADMAP item 1), above block chaining and threaded dispatch.
//
// Per-block profile counters (block.heat) promote hot chains into
// superblocks — single translation units spanning multiple basic blocks.
// The chain is discovered from the lazily materialized successor
// pointers left by block chaining (a non-nil fallNext/takenNext is a
// one-bit execution history of the warm-up), and loop back edges keep
// appending components up to the instruction cap: natural unrolling.
//
// Inside a trace, every interior block seam is compiled into a guard:
// the branch condition is evaluated, and execution either continues
// (predicted direction — with no PC write, since PC materialization is
// batched to trace exits) or side-exits back to the block cache with PC
// and flags exactly architectural. Two cross-block optimizations run
// over each trace, justified by the isa flag-liveness contract
// (internal/isa/flags.go):
//
//   - macro-fusion of cmp + conditional-branch pairs at seams, with the
//     comparison re-derived from the registers;
//   - dead flag-computation elimination: a flag write whose value is
//     overwritten before any reader, any stop-capable instruction, and
//     any possible trace exit is elided (the slot stays — cycle
//     accounting is by slot index — but does no work).
//
// Invalidation composes with the page-generation scheme of mem.Paged:
// a trace records one mem.Span per component block and is valid while
// mem.SpansCurrent holds, memoized against the global generation under
// the same quiescence protocol as blockValid. Any flush that stamps a
// page under the trace severs it at the next entry check, and
// RequestPreempt's generation bump forces the entry check off its fast
// path, so a preemption lands at the next trace exit.
//
// For indirect exits the trace tier adds two predictors: a return-
// address stack (compiled calls push the return PC plus a per-call-site
// block-cache slot; ret transitions pop it) and a per-block monomorphic
// inline cache for register/memory-indirect targets. Both are pure
// prediction — every hit is revalidated against the generation scheme
// before it executes, so architectural state never depends on them.

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Trace-tier tuning.
const (
	// traceHotThreshold is the number of block-tier executions before a
	// block is promoted to anchor a superblock. It must exceed the
	// iteration counts of the directed SMC tests (which patch code and
	// expect next-block-boundary visibility at the block tier) and be
	// small enough that real hot loops promote almost immediately.
	traceHotThreshold = 64
	// maxTraceInsts caps the instructions compiled into one superblock —
	// the same bound as maxBlockInsts, so a trace's worst-case preempt
	// latency matches a worst-case basic block's.
	maxTraceInsts = 64
)

// TracesEnabled gates hot-path superblock formation. It is read only on
// the (cold) promotion path, so flipping it between runs gives an
// in-process A/B of the trace tier over identical block-tier code — the
// basis of the BENCH_PR6.json methodology and the CI regression smoke.
// Existing traces are not torn down when it is cleared.
var TracesEnabled = true

// stopSideExit is the private stop sentinel a seam guard leaves in
// c.stop when trace execution departs the predicted path: the trace
// dispatch loop converts it into a resume at c.PC instead of returning
// it. It never escapes Run.
const stopSideExit StopReason = 0xFF

// trace is one superblock: a single translation unit covering the hot
// chain of basic blocks anchored at a promoted block.
type trace struct {
	// anchor is the PC of the head block — the only entry point.
	anchor uint64
	// ops are the compiled slots, in program order. A slot usually
	// covers one instruction, but elided work — jmp seams, dead flag
	// writes, the cmp half of a fused guard — is folded into the NEXT
	// emitted slot instead of burning a dispatch, so a slot may cover
	// several instructions.
	ops []handler
	// cum[j] is the total instruction count through slot j: when slot j
	// stops or side-exits, exactly cum[j] instructions of the trace have
	// retired (folded work precedes its covering slot in program order
	// and is unobservable — that is what made it foldable), so the cycle
	// accounting stays bit-exact at every stop.
	cum []uint64
	// ninsts is the total instruction count of the trace (== cum of the
	// last slot): what a full completion retires, and the bound the
	// budgeted loop checks before entering.
	ninsts uint64
	// spans are the component blocks' code ranges with their decode
	// generations, deduplicated. The trace is valid while every span is
	// current (mem.SpansCurrent): invalidation composes with the page-
	// generation scheme exactly as for single blocks.
	spans []mem.Span
	// okGen memoizes the global generation at which the spans were last
	// validated under quiescence, making revalidation one atomic load.
	okGen uint64
	// lastSetsPC / exitPC: as for block — the final slot either writes
	// PC itself or the dispatch loop materializes exitPC when the whole
	// trace retires.
	lastSetsPC bool
	exitPC     uint64
	// tail is the final component block: its exit metadata (chain
	// pointers, RAS, inline cache) steers the transition when the whole
	// trace retires somewhere other than back to the anchor.
	tail *block
	// nblocks counts the component blocks, unroll repeats included.
	nblocks int
}

// runTrace executes t to completion or a side exit. It returns
// (stop, true) when the hart stopped; (Stop{}, false) when execution
// continues at c.PC (trace completed or side-exited). The caller has
// already validated the trace and counted the entry.
func (c *CPU) runTrace(t *trace) (Stop, bool) {
	for j, h := range t.ops {
		if h(c) {
			// The stopping slot retired, along with everything folded
			// into it: cum gives the exact instruction count.
			n := t.cum[j]
			c.Cycles += n
			c.stats.Threaded += n
			c.stats.TraceInsts += n
			if c.stop.Reason == stopSideExit {
				c.stats.TraceExits++
				return Stop{}, false
			}
			return c.stop, true
		}
	}
	n := t.ninsts
	c.Cycles += n
	c.stats.Threaded += n
	c.stats.TraceInsts += n
	if !t.lastSetsPC {
		c.PC = t.exitPC
	}
	return Stop{}, false
}

// traceValid reports whether t's component spans are all current,
// advancing the okGen memo under the same quiescence protocol as
// blockValid. A false result means a page under the trace was remapped
// or rewritten: the caller severs the trace and the anchor re-heats at
// the block tier.
func (c *CPU) traceValid(t *trace) bool {
	g := c.Mem.Generation()
	if g == t.okGen {
		return true
	}
	quiet := c.Mem.Quiescent()
	if !c.Mem.SpansCurrent(t.spans) {
		return false
	}
	if quiet {
		t.okGen = g
	}
	return true
}

// severTrace drops b's superblock: the anchor re-enters the block tier
// and re-heats, rebuilding a fresh trace over the re-translated blocks
// once the path is hot again.
func (c *CPU) severTrace(b *block) {
	b.trace, b.heat = nil, 0
	c.stats.Flushes++
}

// traceExit resolves the next block after a completed superblock whose
// exit did not return to the anchor, using the tail component's exit
// metadata: chained direct successors, the RAS for returns, the inline
// cache for indirect transfers. Returns nil when pc has no translation
// (the caller falls back to Step).
func (c *CPU) traceExit(t *trace, pc uint64) *block {
	tb := t.tail
	switch {
	case tb.hasTaken && pc == tb.takenPC:
		return c.chainVia(&tb.takenNext, pc)
	case tb.hasFall && pc == tb.fallPC:
		return c.chainVia(&tb.fallNext, pc)
	default:
		return c.indirect(tb, pc)
	}
}

// promote attempts to form a superblock anchored at b, reporting
// whether one now exists. On failure the heat resets: chain pointers
// may materialize a longer hot path later, and the next threshold
// crossing retries.
func (c *CPU) promote(b *block) bool {
	if !TracesEnabled {
		b.heat = 0
		return false
	}
	t := c.buildTrace(b)
	if t == nil {
		b.heat = 0
		return false
	}
	b.trace = t
	c.stats.Traces++
	return true
}

// traceSuccessor picks the block a trace extends through after b: the
// materialized chain pointer of the predicted direction, revalidated.
// Returns (nil, false) when the block exits indirectly, stops, or no
// successor has materialized.
func (c *CPU) traceSuccessor(b *block) (*block, bool) {
	ft, tt := b.fallNext, b.takenNext
	if ft != nil && !c.blockValid(ft) {
		ft = nil
	}
	if tt != nil && !c.blockValid(tt) {
		tt = nil
	}
	switch {
	case tt != nil && ft == nil:
		return tt, true
	case ft != nil && tt == nil:
		return ft, false
	case tt != nil && ft != nil:
		// Both directions have run. Prefer the loop-closing back edge —
		// the shape trace formation exists for — else fall through.
		if b.takenPC <= b.start {
			return tt, true
		}
		return ft, false
	}
	return nil, false
}

// seamInfo describes the predicted edge out of a non-final component.
type seamInfo struct {
	taken bool   // for branches: the predicted direction is the taken edge
	ret   bool   // the seam is a return followed through to its call site
	retPC uint64 // for ret seams: the predicted return address
}

// tslot is one instruction slot during trace compilation.
type tslot struct {
	in       *isa.Inst
	pc, next uint64
	base     handler // the component block's own compiled handler
	seam     bool    // terminator of a non-final component (transformed)
	taken    bool    // for seam branches: predicted direction is the taken edge
	ret      bool    // ret seam: continue into the predicted return site
	retPC    uint64
}

// buildTrace compiles the superblock anchored at head, or returns nil
// when there is no profitable chain (no materialized successor, or a
// component went stale mid-build).
func (c *CPU) buildTrace(head *block) *trace {
	// Memo protocol, as in blockValid: generation before quiescence
	// before the span checks, so okGen may be set to g only when no
	// stamp was in flight.
	g := c.Mem.Generation()
	quiet := c.Mem.Quiescent()

	// Phase 1: collect the hot chain. Back edges (to the anchor or any
	// earlier component) keep appending — natural loop unrolling up to
	// the instruction cap. Calls and returns thread through: a call seam
	// pushes its return address on a static stack, and a ret whose
	// matching call is in the trace continues into the return site (the
	// compiled ret guard verifies the actual return address at runtime,
	// so mismatched call stacks just side-exit).
	var comps []*block
	var seams []seamInfo
	var callRets []uint64
	n := 0
	for cur := head; cur != nil && n+len(cur.insts) <= maxTraceInsts; {
		if c.Mem.GenerationOf(cur.start, int(cur.size)) > cur.gen {
			return nil // stale component: nothing to build on
		}
		comps = append(comps, cur)
		n += len(cur.insts)
		last := len(cur.insts) - 1
		term := cur.insts[last].Op
		var si seamInfo
		var next *block
		switch {
		case term == isa.OpRet || term == isa.OpRetI:
			if len(callRets) > 0 {
				retPC := callRets[len(callRets)-1]
				callRets = callRets[:len(callRets)-1]
				if nb, ok := c.blocks[retPC]; ok && c.blockValid(nb) {
					si, next = seamInfo{ret: true, retPC: retPC}, nb
				}
			}
		default:
			if term == isa.OpCall {
				callRets = append(callRets, cur.nexts[last])
			}
			var taken bool
			next, taken = c.traceSuccessor(cur)
			if next != nil {
				// Defensive: a chain pointer always starts at its
				// edge's target PC; a mismatch means the metadata
				// cannot be trusted.
				want := cur.fallPC
				if taken {
					want = cur.takenPC
				}
				if next.start != want {
					return nil
				}
			}
			si.taken = taken
		}
		seams = append(seams, si)
		cur = next
	}
	if len(comps) < 2 {
		return nil // a superblock must span at least one seam
	}

	// Phase 2: flatten the components into per-instruction slots.
	slots := make([]tslot, 0, n)
	for ci, cb := range comps {
		final := ci == len(comps)-1
		ipc := cb.start
		for k := range cb.insts {
			s := tslot{in: &cb.insts[k], pc: ipc, next: cb.nexts[k], base: cb.ops[k]}
			if !final && k == len(cb.insts)-1 && s.in.Op.EndsBlock() {
				s.seam = true
				s.taken, s.ret, s.retPC = seams[ci].taken, seams[ci].ret, seams[ci].retPC
			}
			slots = append(slots, s)
			ipc = cb.nexts[k]
		}
	}
	ns := len(slots)

	// Phase 3a: macro-fusion marking. A cmp immediately before a
	// flag-reading seam guard — or before the final terminator — fuses
	// into the branch slot; the cmp slot becomes a counted no-op, so the
	// slot count still equals the instruction count.
	fused := make([]bool, ns)
	var finalFused handler
	for i := 1; i < ns; i++ {
		br, cmp := slots[i].in, slots[i-1].in
		if !br.Op.ReadsFlags() || slots[i-1].seam {
			continue
		}
		if cmp.Op != isa.OpCmpRI && cmp.Op != isa.OpCmpRR {
			continue
		}
		if slots[i].seam {
			fused[i] = true
		} else if i == ns-1 {
			// Final pair: reuse the block tier's fused full branch (it
			// sets flags and PC on both paths).
			if f := fuseCmpBranch(cmp, br, slots[i].next); f != nil {
				fused[i], finalFused = true, f
			}
		}
	}

	// Phase 3b: dead flag-computation elimination — backward liveness.
	// "live" means the current flag values may be observed downstream:
	// by a reader, by a stop-capable instruction exposing architectural
	// state, by a possible side exit, or by the trace ending.
	liveAfter := make([]bool, ns)
	live := true // the trace end exposes state
	for i := ns - 1; i >= 0; i-- {
		liveAfter[i] = live
		op := slots[i].in.Op
		switch {
		case fused[i]:
			// A fused guard re-derives its comparison from the
			// registers (reads no flags) and architecturally overwrites
			// the flags — on a side exit it materializes its own — so
			// prior flag values die here.
			live = false
		case op.ReadsFlags() || op.CanStop():
			live = true
		case slots[i].seam && op.IsCondBranch():
			live = true // a loop guard's side exit exposes the flags
		case op.WritesFlags():
			live = false
		}
	}

	// Phase 4: emit slots. Elided work — jmp seams, dead flag writes,
	// the cmp half of a fused guard — is FOLDED into the next emitted
	// slot (pending → cum) instead of occupying a dispatch of its own.
	ops := make([]handler, 0, ns)
	cum := make([]uint64, 0, ns)
	total, pending := uint64(0), uint64(0)
	emit := func(h handler) {
		total += pending + 1
		pending = 0
		ops = append(ops, h)
		cum = append(cum, total)
	}
	for i := range slots {
		s := &slots[i]
		switch {
		case fused[i] && s.seam:
			emit(fusedSeamGuard(slots[i-1].in, s.in, s.taken, liveAfter[i], s.next))
		case fused[i]:
			emit(finalFused)
		case i+1 < ns && fused[i+1]:
			pending++ // the fused branch does this cmp's work
		case s.seam:
			switch {
			case s.in.Op == isa.OpJmp:
				pending++ // PC materialization batched to exits
			case s.in.Op == isa.OpCall:
				emit(traceCall(s.in, s.pc, s.next))
			case s.ret:
				emit(traceRet(s.in, s.pc, s.retPC))
			case s.in.Op.IsCondBranch():
				emit(seamGuard(s.in, s.taken, s.next))
			default:
				return nil // unreachable: phase 1 chains direct exits and rets only
			}
		case s.in.Op.WritesFlags() && !liveAfter[i]:
			pending++ // dead flag computation
		default:
			emit(s.base)
		}
	}
	// The final instruction always emits (it is never a seam, never the
	// cmp of a fused pair, and liveAfter is true at the trace end), so
	// nothing stays pending.
	if pending != 0 || total != uint64(ns) {
		return nil
	}

	// Component spans, deduplicated (unrolled repeats share one span).
	var spans []mem.Span
	for _, cb := range comps {
		dup := false
		for _, sp := range spans {
			if sp.Addr == cb.start && sp.N == int(cb.size) {
				dup = true
				break
			}
		}
		if !dup {
			spans = append(spans, mem.Span{Addr: cb.start, N: int(cb.size), Gen: cb.gen})
		}
	}

	tail := comps[len(comps)-1]
	t := &trace{
		anchor:     head.start,
		ops:        ops,
		cum:        cum,
		ninsts:     total,
		spans:      spans,
		lastSetsPC: tail.lastSetsPC,
		exitPC:     tail.nexts[len(tail.nexts)-1],
		tail:       tail,
		nblocks:    len(comps),
	}
	if quiet {
		t.okGen = g
	} else {
		// A stamp was in flight: the memo may not be established yet.
		// This sentinel can never equal a real generation, so the first
		// entries revalidate until a quiescent check lands.
		t.okGen = ^uint64(0)
	}
	return t
}

// sideExit leaves the trace at pc. The dispatch loop sees the private
// sentinel and converts the "stop" into a resume through the block
// cache. Flags must already be architectural — guards materialize their
// comparison before exiting.
func (c *CPU) sideExit(pc uint64) bool {
	c.PC = pc
	c.stop = Stop{Reason: stopSideExit, PC: pc}
	return true
}

// guardPred is the canonical predicate a guard CONTINUES on. Each flag
// branch maps to the predicate under which it is taken (branchPred),
// and the set is closed under negation (negPred), so predicting the
// not-taken direction just flips to the complement — every guard body
// is a single positive comparison, fully inlined in its closure (a
// nested predicate call per slot would cost as much as the dispatch the
// guard exists to save).
type guardPred uint8

const (
	pEQ  guardPred = iota // a == v      | ZF
	pNE                   // a != v      | !ZF
	pLTs                  // a <s v      | LTS
	pLEs                  // a <=s v     | LTS || ZF
	pGTs                  // a >s v      | !LTS && !ZF
	pGEs                  // a >=s v     | !LTS
	pLTu                  // a <u v      | LTU
	pGEu                  // a >=u v     | !LTU
)

// branchPred maps a flag branch to the predicate under which it is
// taken. Pinned to the reference isa.Op.EvalCond semantics by
// TestGuardPredsMatchEvalCond.
func branchPred(op isa.Op) guardPred {
	switch op {
	case isa.OpJe:
		return pEQ
	case isa.OpJne:
		return pNE
	case isa.OpJl:
		return pLTs
	case isa.OpJle:
		return pLEs
	case isa.OpJg:
		return pGTs
	case isa.OpJge:
		return pGEs
	case isa.OpJb:
		return pLTu
	case isa.OpJae:
		return pGEu
	}
	panic("vm: not a flag branch: " + op.String())
}

func negPred(p guardPred) guardPred {
	switch p {
	case pEQ:
		return pNE
	case pNE:
		return pEQ
	case pLTs:
		return pGEs
	case pLEs:
		return pGTs
	case pGTs:
		return pLEs
	case pGEs:
		return pLTs
	case pLTu:
		return pGEu
	}
	return pLTu // pGEu
}

// predHoldsCmp evaluates p over compare operands — the reference the
// guard closures are tested against (and the slow path for nothing: it
// is never called from compiled code).
func predHoldsCmp(p guardPred, a, v uint64) bool {
	switch p {
	case pEQ:
		return a == v
	case pNE:
		return a != v
	case pLTs:
		return int64(a) < int64(v)
	case pLEs:
		return int64(a) <= int64(v)
	case pGTs:
		return int64(a) > int64(v)
	case pGEs:
		return int64(a) >= int64(v)
	case pLTu:
		return a < v
	}
	return a >= v // pGEu
}

// seamGuard compiles a conditional branch at an interior block seam:
// execution continues (no PC write — batched to the exit) on the
// predicted direction and side-exits to the other target otherwise.
// The flags were set earlier (a dead pair would have been fused), so
// the guard branches on them directly.
func seamGuard(in *isa.Inst, taken bool, next uint64) handler {
	target := next + uint64(in.Imm)
	if in.Op == isa.OpLoop {
		if taken {
			return func(c *CPU) bool {
				c.Regs[isa.R1]--
				if c.Regs[isa.R1] != 0 {
					return false
				}
				return c.sideExit(next)
			}
		}
		return func(c *CPU) bool {
			c.Regs[isa.R1]--
			if c.Regs[isa.R1] == 0 {
				return false
			}
			return c.sideExit(target)
		}
	}
	p, exitPC := branchPred(in.Op), next
	if !taken {
		p, exitPC = negPred(p), target
	}
	return flagGuard(p, exitPC)
}

// flagGuard returns the closure continuing iff p holds over the current
// flags, side-exiting to exitPC otherwise.
func flagGuard(p guardPred, exitPC uint64) handler {
	switch p {
	case pEQ:
		return func(c *CPU) bool {
			if c.ZF {
				return false
			}
			return c.sideExit(exitPC)
		}
	case pNE:
		return func(c *CPU) bool {
			if !c.ZF {
				return false
			}
			return c.sideExit(exitPC)
		}
	case pLTs:
		return func(c *CPU) bool {
			if c.LTS {
				return false
			}
			return c.sideExit(exitPC)
		}
	case pLEs:
		return func(c *CPU) bool {
			if c.LTS || c.ZF {
				return false
			}
			return c.sideExit(exitPC)
		}
	case pGTs:
		return func(c *CPU) bool {
			if !c.LTS && !c.ZF {
				return false
			}
			return c.sideExit(exitPC)
		}
	case pGEs:
		return func(c *CPU) bool {
			if !c.LTS {
				return false
			}
			return c.sideExit(exitPC)
		}
	case pLTu:
		return func(c *CPU) bool {
			if c.LTU {
				return false
			}
			return c.sideExit(exitPC)
		}
	}
	return func(c *CPU) bool { // pGEu
		if !c.LTU {
			return false
		}
		return c.sideExit(exitPC)
	}
}

// fusedSeamGuard macro-fuses a cmp + conditional-branch pair at an
// interior seam. On the predicted path it writes neither PC (batched)
// nor — when the flags are dead — the flags; a side exit materializes
// the comparison first, so the architectural state is exact the moment
// the trace is left.
func fusedSeamGuard(cmp, br *isa.Inst, taken, flagsLive bool, next uint64) handler {
	p, exitPC := branchPred(br.Op), next
	if !taken {
		p, exitPC = negPred(p), next+uint64(br.Imm)
	}
	if cmp.Op == isa.OpCmpRI {
		return fusedGuardRI(p, cmp.R1&15, uint64(cmp.Imm), flagsLive, exitPC)
	}
	return fusedGuardRR(p, cmp.R1&15, cmp.R2&15, flagsLive, exitPC)
}

// fusedGuardRI builds the cmp-immediate fused guard for predicate p.
// One specialized closure per (predicate, liveness): the comparison is
// inline, and a dead-flag guard touches the flags only on the exit
// path. Held to predHoldsCmp (and through it to isa.Op.EvalCond) by
// TestGuardPredsMatchEvalCond and the differential battery.
func fusedGuardRI(p guardPred, r1 isa.Reg, v uint64, live bool, exitPC uint64) handler {
	switch p {
	case pEQ:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a == v {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if a == v {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pNE:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a != v {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if a != v {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pLTs:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) < int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if int64(a) < int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pLEs:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) <= int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if int64(a) <= int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pGTs:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) > int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if int64(a) > int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pGEs:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if int64(a) >= int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if int64(a) >= int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pLTu:
		if live {
			return func(c *CPU) bool {
				a := c.Regs[r1]
				c.setCmp(a, v)
				if a < v {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a := c.Regs[r1]
			if a < v {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	}
	if live { // pGEu
		return func(c *CPU) bool {
			a := c.Regs[r1]
			c.setCmp(a, v)
			if a >= v {
				return false
			}
			return c.sideExit(exitPC)
		}
	}
	return func(c *CPU) bool {
		a := c.Regs[r1]
		if a >= v {
			return false
		}
		c.setCmp(a, v)
		return c.sideExit(exitPC)
	}
}

// fusedGuardRR is fusedGuardRI with the right operand read from a
// register at each execution.
func fusedGuardRR(p guardPred, r1, r2 isa.Reg, live bool, exitPC uint64) handler {
	switch p {
	case pEQ:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a == v {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if a == v {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pNE:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a != v {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if a != v {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pLTs:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) < int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if int64(a) < int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pLEs:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) <= int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if int64(a) <= int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pGTs:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) > int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if int64(a) > int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pGEs:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if int64(a) >= int64(v) {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if int64(a) >= int64(v) {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	case pLTu:
		if live {
			return func(c *CPU) bool {
				a, v := c.Regs[r1], c.Regs[r2]
				c.setCmp(a, v)
				if a < v {
					return false
				}
				return c.sideExit(exitPC)
			}
		}
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			if a < v {
				return false
			}
			c.setCmp(a, v)
			return c.sideExit(exitPC)
		}
	}
	if live { // pGEu
		return func(c *CPU) bool {
			a, v := c.Regs[r1], c.Regs[r2]
			c.setCmp(a, v)
			if a >= v {
				return false
			}
			return c.sideExit(exitPC)
		}
	}
	return func(c *CPU) bool {
		a, v := c.Regs[r1], c.Regs[r2]
		if a >= v {
			return false
		}
		c.setCmp(a, v)
		return c.sideExit(exitPC)
	}
}

// traceCall compiles a direct call at an interior seam: the return
// address is pushed (architectural) and the RAS primed, but PC is not
// written — the trace continues straight into the callee.
func traceCall(in *isa.Inst, pc, next uint64) handler {
	site := &retSite{}
	return func(c *CPU) bool {
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
			return c.pageFaultPC(f, pc)
		}
		c.Regs[isa.SP] -= 8
		c.rasPush(next, site)
		return false
	}
}

// traceRet compiles a return whose matching call is earlier in the same
// trace: the return target is loaded (architecturally, faults and all)
// and checked against the statically predicted return site; a matching
// return continues straight into the return-site slots, anything else —
// a mismatched call stack — side-exits to wherever the return really
// went, with SP already popped (the ret retired either way).
func traceRet(in *isa.Inst, pc, predicted uint64) handler {
	pop := 8 + uint64(in.Imm)
	return func(c *CPU) bool {
		target, f := c.Mem.Load(c.Regs[isa.SP], 8)
		if f != nil {
			return c.pageFaultPC(f, pc)
		}
		c.Regs[isa.SP] += pop
		if target == predicted {
			return false
		}
		return c.sideExit(target)
	}
}

// Return-address stack: a fixed-depth predictor for ret transitions.
// Compiled call handlers push the return PC together with a per-call-
// site cache slot (filled lazily at the first ret-side miss); the ret
// transition pops and, when the prediction holds, skips the block-cache
// map entirely. Pure prediction: every hit is revalidated (epoch +
// generation) before use.
const rasSize = 64

// retSite is a call site's cached return-target translation, epoch-
// guarded so an overflow flush cannot keep a discarded cluster alive
// through RAS references.
type retSite struct {
	blk   *block
	epoch uint64
}

type rasEntry struct {
	retPC uint64
	site  *retSite
}

func (c *CPU) rasPush(retPC uint64, site *retSite) {
	c.ras[c.rasPos&(rasSize-1)] = rasEntry{retPC: retPC, site: site}
	c.rasPos++
	if c.rasDepth < rasSize {
		c.rasDepth++
	}
}

// rasConsult pops the RAS at a ret transition to pc. It returns the
// predicted block when the prediction is current, else nil plus the
// call site's cache slot for the caller to refill after its map lookup.
// A mispredicted entry (longjmp-style control flow) is consumed.
func (c *CPU) rasConsult(pc uint64) (*block, *retSite) {
	if c.rasDepth == 0 {
		return nil, nil
	}
	c.rasDepth--
	c.rasPos--
	e := c.ras[c.rasPos&(rasSize-1)]
	if e.retPC != pc {
		return nil, nil
	}
	s := e.site
	if s.epoch == c.epoch {
		if nb := s.blk; nb != nil && c.blockValid(nb) {
			c.stats.RASHits++
			return nb, s
		}
	}
	return nil, s
}

// indirect resolves a transition with no chained successor — returns,
// register/memory-indirect transfers, or a direct exit whose target
// diverged — through the predictors before the cache map. Returns nil
// when pc has no translation.
func (c *CPU) indirect(b *block, pc uint64) *block {
	if b.exitRet {
		nb, site := c.rasConsult(pc)
		if nb != nil {
			return nb
		}
		nb = c.lookup(pc)
		if nb != nil && site != nil {
			*site = retSite{blk: nb, epoch: c.epoch}
		}
		return nb
	}
	if b.exitIndirect {
		if nb := b.icNext; nb != nil && pc == b.icPC && b.icEpoch == c.epoch && c.blockValid(nb) {
			c.stats.ICHits++
			return nb
		}
		c.stats.ICMisses++
		nb := c.lookup(pc)
		if nb != nil {
			b.icPC, b.icNext, b.icEpoch = pc, nb, c.epoch
		}
		return nb
	}
	return c.lookup(pc)
}
