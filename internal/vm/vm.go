// Package vm implements the OVM virtual CPU: an interpreter that executes
// encoded OVM instructions (internal/isa) over permission-checked paged
// memory (internal/mem).
//
// The CPU plays the role of the hardware in the Occlum paper's security
// argument. It enforces exactly what real hardware enforces — page
// permissions (guard regions fault, data pages are not executable) and MPX
// bound checks (#BR) — and nothing more. All sandboxing beyond that comes
// from the MMDSFI instrumentation in the code it runs, which is the point
// of the paper.
//
// The CPU counts retired instructions as "cycles". Because MMDSFI's
// instrumentation inserts extra instructions, the SPECint-style overhead
// figures (paper Figure 7) fall out of cycle counts deterministically.
//
// # Translation cache
//
// Run executes through a basic-block translation cache: the first time
// execution reaches a PC, the straight-line run of instructions starting
// there is decoded once — up to the first control transfer, trap, or
// privileged stop (isa.Op.EndsBlock), or a length cap — and stored with
// precomputed successor PCs. Subsequent visits execute the whole
// pre-decoded block in a tight loop, paying one cache lookup per block
// instead of one per instruction, exactly like a mini-JIT without code
// generation.
//
// On top of the cache sits the classic DBT optimization ladder:
// threaded dispatch (each instruction is specialized at translate time
// into a per-op handler closure — one indirect call on the cached path
// instead of the exec switch, with the compare+branch block tail
// macro-fused; see compile.go) and block chaining (each block lazily
// caches pointers to its fall-through and direct-branch successor
// blocks, so hot loops run block-to-block without re-entering the
// cache map; every chained transition revalidates the target's
// generation, severing links to flushed translations).
//
// Blocks are invalidated through the page-granular generation counters of
// mem.Paged: each block snapshots the global generation before decoding
// and is re-decoded once any page it spans carries a later stamp (any
// remap or rewrite, including one racing the decode itself — mutators
// write bytes before stamping, see block.gen). Stores to plain data pages
// leave code generations untouched,
// so data traffic never flushes translated code; a store through a
// writable+executable mapping (self-modifying code) invalidates exactly
// the pages written, taking effect at the next block boundary — the same
// granularity at which real hardware requires a serializing control
// transfer after code modification.
//
// Step remains the uncached single-instruction slow path, used by Run to
// materialize fetch faults and kept as the precise-execution API for the
// verifier and tests.
package vm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

// Exception enumerates the hardware exceptions the CPU can raise.
type Exception uint8

// Exceptions.
const (
	ExcNone    Exception = iota
	ExcPage              // #PF: unmapped page or permission violation
	ExcBound             // #BR: MPX bound check failed
	ExcDivide            // #DE: divide by zero
	ExcInvalid           // #UD: undefined or malformed instruction
)

func (e Exception) String() string {
	switch e {
	case ExcNone:
		return "none"
	case ExcPage:
		return "#PF"
	case ExcBound:
		return "#BR"
	case ExcDivide:
		return "#DE"
	case ExcInvalid:
		return "#UD"
	}
	return "#?"
}

// StopReason says why Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopTrap      StopReason = iota // executed trap (the LibOS syscall gate)
	StopException                   // raised a hardware exception (AEX)
	StopHalt                        // executed halt
	StopEExit                       // executed eexit (left the enclave)
	StopCycles                      // reached the cycle budget
	StopPreempt                     // honored an asynchronous preemption request
)

func (r StopReason) String() string {
	switch r {
	case StopTrap:
		return "trap"
	case StopException:
		return "exception"
	case StopHalt:
		return "halt"
	case StopEExit:
		return "eexit"
	case StopCycles:
		return "cycle-budget"
	case StopPreempt:
		return "preempt"
	}
	return "stop?"
}

// Stop describes why and where execution stopped.
type Stop struct {
	Reason StopReason
	// Exc is the exception kind when Reason == StopException.
	Exc Exception
	// Fault carries page-fault details when Exc == ExcPage.
	Fault *mem.Fault
	// PC is the program counter at the stop: the address *after* a
	// trap/halt/eexit, or the address *of* the faulting instruction
	// for exceptions.
	PC uint64
}

// String renders the stop for diagnostics.
func (s Stop) String() string {
	if s.Reason == StopException {
		if s.Fault != nil {
			return fmt.Sprintf("%s %s at pc=%#x (%v)", s.Reason, s.Exc, s.PC, s.Fault)
		}
		return fmt.Sprintf("%s %s at pc=%#x", s.Reason, s.Exc, s.PC)
	}
	return fmt.Sprintf("%s at pc=%#x", s.Reason, s.PC)
}

// Translation-cache tuning.
const (
	// maxBlockInsts caps the instructions decoded into one basic block.
	// MMDSFI-instrumented straight-line runs are short (guards every few
	// instructions are still straight-line; branches end blocks), so the
	// cap exists only to bound decode-ahead past data mistaken for code.
	maxBlockInsts = 64
	// maxBlocks caps the cached blocks per CPU before the whole cache is
	// discarded — a memory bound for pathological code, not a hot path.
	maxBlocks = 1 << 14
)

// block is one translated basic block: the decoded straight-line
// instruction run starting at start, ending with the first terminator
// (isa.Op.EndsBlock) or at the maxBlockInsts cap.
type block struct {
	start uint64 // PC of insts[0]
	size  uint64 // total encoded length in bytes
	// gen is Mem.Generation() sampled BEFORE decoding. Because every
	// memory mutator writes bytes before stamping, any mutation whose
	// new bytes this block could have missed stamps its pages with a
	// value strictly above this snapshot — so the block is valid while
	// GenerationOf(start, size) <= gen, even against mutations racing
	// the decode itself.
	gen   uint64
	insts []isa.Inst
	// nexts[i] is the address of the instruction after insts[i]: the
	// fall-through PC, and the base for PC-relative operands.
	nexts []uint64
	// ops[i] is the threaded-dispatch handler for insts[i]: the
	// instruction specialized at translate time into a closure over its
	// operands, so the cached path pays one indirect call instead of
	// the exec switch (see compile.go).
	ops []handler
	// fastOps is the dispatch array for whole-block execution: ops,
	// except that a compare + conditional-branch tail is macro-fused
	// into one handler (one dispatch instead of two, and the branch
	// decision rides on the just-computed flags). Both fused ops are
	// stop-free, so only the unclipped path may use fastOps; a
	// budget-clipped prefix executes ops and stays exact.
	fastOps []handler
	// lastSetsPC records that the final instruction is a control
	// transfer whose handler writes PC itself; otherwise the run loop
	// materializes the fall-through PC when the whole block retires.
	lastSetsPC bool

	// okGen is the global generation at which this block was last
	// known valid. When Generation() still equals it, no mutation of
	// any kind has happened since, so revalidation is one atomic load;
	// otherwise the span's pages are re-checked against gen.
	okGen uint64

	// Block chaining: the static successors of the block, so hot paths
	// run block-to-block without re-entering the cache map. fallPC is
	// the fall-through successor (cond branch not taken, or a block cut
	// at the decode cap); takenPC is the direct-branch target. The
	// *block pointers lazily cache the translated successors; every
	// chained transition revalidates the target's generation, so a
	// severed (flushed) successor can never execute stale — the pointer
	// is then relinked to the fresh translation.
	fallPC, takenPC     uint64
	hasFall, hasTaken   bool
	fallNext, takenNext *block

	// Trace tier (trace.go). heat counts block-tier executions; at
	// traceHotThreshold the block tries to promote the hot chain through
	// it into a superblock, stored in trace and entered whenever
	// execution reaches this block. Severing the trace (invalidation)
	// resets heat, so the anchor re-heats over fresh translations.
	heat  uint32
	trace *trace

	// Exit classification for the indirect predictors: a ret exit
	// consults the return-address stack, a register/memory-indirect exit
	// the inline cache below.
	exitRet, exitIndirect bool

	// Monomorphic inline cache: the last indirect target taken from this
	// block and its translation, epoch-guarded (CPU.epoch) so an
	// overflow flush cannot keep a discarded cluster reachable.
	icPC    uint64
	icNext  *block
	icEpoch uint64
}

// CacheStats counts translation-cache events. All counters are
// cumulative; the hit rate over all block transitions is
// (Hits + Chains) / (Hits + Misses + Chains).
type CacheStats struct {
	// Blocks is the number of basic blocks decoded (translated).
	Blocks uint64
	// Hits counts block lookups served from the cache.
	Hits uint64
	// Misses counts block lookups that had to decode.
	Misses uint64
	// Flushes counts blocks discarded because the memory generation of
	// their span changed (remap or code rewrite) or the cache overflowed.
	Flushes uint64
	// Chains counts block transitions served by chained successor
	// pointers — fall-through or direct-branch targets reached without
	// re-entering the cache map. Indirect transfers (jmpr/ret) and
	// first visits still go through Hits/Misses.
	Chains uint64
	// Threaded counts instructions retired through compiled per-op
	// handlers (the threaded-dispatch fast path) — whether dispatched
	// from a block or from inside a superblock. Instructions executed
	// by the Step switch account for the rest of CPU.Cycles.
	Threaded uint64

	// Trace tier (trace.go). Traces counts superblocks formed; TraceHits
	// counts entries into a valid superblock (distinct from Hits/Chains,
	// which count block-tier transitions only); TraceExits counts side
	// exits off a predicted path; TraceInsts counts instructions retired
	// inside superblocks (a subset of Threaded).
	Traces     uint64
	TraceHits  uint64
	TraceExits uint64
	TraceInsts uint64
	// RASHits counts ret transitions resolved by the return-address
	// stack; ICHits/ICMisses count indirect transitions probed against
	// the per-block inline cache.
	RASHits  uint64
	ICHits   uint64
	ICMisses uint64
}

// String renders the counters in one line.
func (s CacheStats) String() string {
	rate := 0.0
	if n := s.Hits + s.Misses + s.Chains; n > 0 {
		rate = 100 * float64(s.Hits+s.Chains) / float64(n)
	}
	return fmt.Sprintf("blocks=%d hits=%d misses=%d flushes=%d chains=%d threaded=%d traces=%d trace-hits=%d trace-exits=%d trace-insts=%d ras-hits=%d ic-hits=%d ic-misses=%d hit-rate=%.2f%%",
		s.Blocks, s.Hits, s.Misses, s.Flushes, s.Chains, s.Threaded,
		s.Traces, s.TraceHits, s.TraceExits, s.TraceInsts,
		s.RASHits, s.ICHits, s.ICMisses, rate)
}

func (s CacheStats) sub(o CacheStats) CacheStats {
	return CacheStats{
		Blocks:     s.Blocks - o.Blocks,
		Hits:       s.Hits - o.Hits,
		Misses:     s.Misses - o.Misses,
		Flushes:    s.Flushes - o.Flushes,
		Chains:     s.Chains - o.Chains,
		Threaded:   s.Threaded - o.Threaded,
		Traces:     s.Traces - o.Traces,
		TraceHits:  s.TraceHits - o.TraceHits,
		TraceExits: s.TraceExits - o.TraceExits,
		TraceInsts: s.TraceInsts - o.TraceInsts,
		RASHits:    s.RASHits - o.RASHits,
		ICHits:     s.ICHits - o.ICHits,
		ICMisses:   s.ICMisses - o.ICMisses,
	}
}

// globalStats aggregates cache counters across every CPU in the process,
// so benchmark drivers can report totals without owning the CPUs (each
// simulated kernel creates its own harts internally).
var globalStats struct {
	blocks, hits, misses, flushes, chains, threaded atomic.Uint64
	traces, traceHits, traceExits, traceInsts       atomic.Uint64
	rasHits, icHits, icMisses                       atomic.Uint64
}

// GlobalCacheStats returns the process-wide translation-cache totals,
// accumulated from every CPU at each Run return.
func GlobalCacheStats() CacheStats {
	return CacheStats{
		Blocks:     globalStats.blocks.Load(),
		Hits:       globalStats.hits.Load(),
		Misses:     globalStats.misses.Load(),
		Flushes:    globalStats.flushes.Load(),
		Chains:     globalStats.chains.Load(),
		Threaded:   globalStats.threaded.Load(),
		Traces:     globalStats.traces.Load(),
		TraceHits:  globalStats.traceHits.Load(),
		TraceExits: globalStats.traceExits.Load(),
		TraceInsts: globalStats.traceInsts.Load(),
		RASHits:    globalStats.rasHits.Load(),
		ICHits:     globalStats.icHits.Load(),
		ICMisses:   globalStats.icMisses.Load(),
	}
}

// ResetGlobalCacheStats zeroes the process-wide totals (between
// benchmark experiments).
func ResetGlobalCacheStats() {
	globalStats.blocks.Store(0)
	globalStats.hits.Store(0)
	globalStats.misses.Store(0)
	globalStats.flushes.Store(0)
	globalStats.chains.Store(0)
	globalStats.threaded.Store(0)
	globalStats.traces.Store(0)
	globalStats.traceHits.Store(0)
	globalStats.traceExits.Store(0)
	globalStats.traceInsts.Store(0)
	globalStats.rasHits.Store(0)
	globalStats.icHits.Store(0)
	globalStats.icMisses.Store(0)
}

// CPU is one OVM hart. It is not safe for concurrent use; each SGX thread
// (and hence each Occlum SIP) owns one CPU.
type CPU struct {
	// Mem is the memory the hart executes over (an enclave's ELRANGE,
	// or a plain address space for the native baseline).
	Mem *mem.Paged
	// Regs are the general-purpose registers.
	Regs [isa.NumRegs]uint64
	// PC is the program counter.
	PC uint64
	// ZF, LTS, LTU are the comparison flags: equal, signed-less and
	// unsigned-less, set by cmp/test.
	ZF, LTS, LTU bool
	// Bnd is the MPX bound register file.
	Bnd mpx.File
	// Cycles counts retired instructions.
	Cycles uint64

	// preempt is the asynchronous interrupt request line: the only CPU
	// field another goroutine may touch while the hart runs. The run
	// loops poll it at block boundaries (where architectural state is
	// consistent), so a preemption lands within one basic block instead
	// of waiting out the full cycle budget — the hook the LibOS uses
	// for prompt signal delivery and the M:N scheduler for early
	// yields. Polling is free on the hot path: RequestPreempt also
	// bumps the global memory generation, so the chained fast check
	// (one Generation() load per block, already there) fails once and
	// execution falls into the slow transition branches, which are
	// where the poll lives.
	preempt atomic.Bool

	blocks    map[uint64]*block
	stats     CacheStats
	published CacheStats // portion of stats already added to the globals
	stop      Stop       // set by exec when it stops the hart

	// Return-address stack (trace.go): a circular predictor stack pushed
	// by compiled call handlers and popped at ret transitions. Pure
	// prediction — never consulted without revalidation.
	ras      [rasSize]rasEntry
	rasPos   uint64
	rasDepth int
	// epoch invalidates every retSite and inline-cache entry wholesale
	// when the overflow flush discards the block map: cached *block
	// references from an older epoch are never followed.
	epoch uint64
}

// New creates a CPU over m with zeroed state.
func New(m *mem.Paged) *CPU {
	return &CPU{Mem: m, blocks: make(map[uint64]*block)}
}

// Reset clears registers, flags and cycle count (but not the translation
// cache, which is keyed to memory generations).
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint64{}
	c.PC, c.Cycles = 0, 0
	c.ZF, c.LTS, c.LTU = false, false, false
	c.Bnd = mpx.File{}
}

// CacheStats returns this CPU's cumulative translation-cache counters.
func (c *CPU) CacheStats() CacheStats { return c.stats }

// RequestPreempt asks the hart to stop at the next block boundary with
// StopPreempt. Safe to call from any goroutine; the request is latched
// until the next Run consumes it. The generation bump is what makes the
// request visible to a hart flying along chained blocks: its next
// fast-path check (Generation() == okGen) fails, it drops into the slow
// transition branch, and the poll there takes the latch. Ordering: the
// latch is stored before the bump, and Go atomics are sequentially
// consistent, so any hart that observes the bump also observes the
// latch.
func (c *CPU) RequestPreempt() {
	c.preempt.Store(true)
	c.Mem.BumpGeneration()
}

// takePreempt consumes a pending preemption request. Called on the slow
// transition paths only (lookup and failed chain checks) — which a
// pending request forces within one block, via the generation bump.
func (c *CPU) takePreempt() bool {
	if c.preempt.Load() {
		c.preempt.Store(false)
		return true
	}
	return false
}

// publishStats adds the counter deltas since the last publish to the
// process-wide totals. Called once per Run return, so the atomics stay
// off the per-instruction and per-block paths.
func (c *CPU) publishStats() {
	d := c.stats.sub(c.published)
	if d == (CacheStats{}) {
		return
	}
	globalStats.blocks.Add(d.Blocks)
	globalStats.hits.Add(d.Hits)
	globalStats.misses.Add(d.Misses)
	globalStats.flushes.Add(d.Flushes)
	globalStats.chains.Add(d.Chains)
	globalStats.threaded.Add(d.Threaded)
	globalStats.traces.Add(d.Traces)
	globalStats.traceHits.Add(d.TraceHits)
	globalStats.traceExits.Add(d.TraceExits)
	globalStats.traceInsts.Add(d.TraceInsts)
	globalStats.rasHits.Add(d.RASHits)
	globalStats.icHits.Add(d.ICHits)
	globalStats.icMisses.Add(d.ICMisses)
	c.published = c.stats
}

// fetch decodes the single instruction at addr, applying the
// execute-permission check to every byte fetched.
func (c *CPU) fetch(addr uint64) (isa.Inst, int, *mem.Fault, error) {
	// Peek the opcode byte to learn the length, then fetch the whole
	// instruction with the execute-permission check.
	b, f := c.Mem.Fetch(addr, 1)
	if f != nil {
		return isa.Inst{}, 0, f, nil
	}
	op := isa.Op(b[0])
	if !op.Valid() {
		return isa.Inst{}, 0, nil, isa.ErrBadInst
	}
	n := isa.EncodedLen(op)
	view, f := c.Mem.Fetch(addr, n)
	if f != nil {
		return isa.Inst{}, 0, f, nil
	}
	in, n, err := isa.Decode(view, 0)
	if err != nil {
		return isa.Inst{}, 0, nil, err
	}
	return in, n, nil, nil
}

// chainVia resolves a chained transition to pc through the given
// successor link after the inline fast check (link valid and nothing
// mutated globally) has failed: it revalidates the linked block
// against its span generations, or relinks through the cache map —
// which severs links to flushed translations. Returns nil when pc has
// no translation (the caller falls back to Step). This is the single
// copy of the validate-or-relink protocol; only the two-line fast
// check is inlined at the call sites in run and runNoBudget, where a
// helper call per block transition is measurable.
func (c *CPU) chainVia(link **block, pc uint64) *block {
	if nb := *link; nb != nil && c.blockValid(nb) {
		c.stats.Chains++
		return nb
	}
	*link = c.lookup(pc)
	return *link
}

// blockValid reports whether b's decode is still current. The global
// generation is the fast filter: if nothing anywhere has mutated since
// the last validation, no page stamp can have moved and one atomic load
// suffices. Otherwise the block's span is re-checked page by page and,
// on success, the validation point advances — but only when no stamp
// was in flight (mem.Quiescent sampled BEFORE the span check). A span
// check concurrent with a stamp may transiently miss it, which a
// per-visit check absorbs at the next block boundary; a memo must not,
// or the mutation would stay hidden until an unrelated generation
// bump. Mutations starting after the quiescence sample advance the
// global generation past g, so they defeat the g == okGen fast path on
// their own.
func (c *CPU) blockValid(b *block) bool {
	g := c.Mem.Generation()
	if g == b.okGen {
		return true
	}
	quiet := c.Mem.Quiescent()
	if c.Mem.GenerationOf(b.start, int(b.size)) <= b.gen {
		if quiet {
			b.okGen = g
		}
		return true
	}
	return false
}

// lookup returns a valid translated block starting at pc, translating or
// re-translating as needed. It returns nil when the first fetch at pc
// faults or decodes to garbage; the caller takes the Step slow path to
// materialize the exception.
func (c *CPU) lookup(pc uint64) *block {
	if b, ok := c.blocks[pc]; ok {
		if c.blockValid(b) {
			c.stats.Hits++
			return b
		}
		delete(c.blocks, pc)
		c.stats.Flushes++
	}
	c.stats.Misses++
	return c.translate(pc)
}

// translate decodes the basic block starting at pc, compiles its
// instructions into threaded handlers, and caches it.
func (c *CPU) translate(pc uint64) *block {
	// The generation snapshot must precede the byte fetches: see the
	// block.gen comment for the ordering argument.
	b := &block{start: pc, gen: c.Mem.Generation()}
	b.okGen = b.gen
	addr := pc
	for len(b.insts) < maxBlockInsts {
		in, n, fault, err := c.fetch(addr)
		if fault != nil || err != nil {
			// The block ends before the undecodable instruction; if
			// execution falls through to it, the next lookup fails and
			// Step raises the exception.
			break
		}
		addr += uint64(n)
		b.insts = append(b.insts, in)
		b.nexts = append(b.nexts, addr)
		if in.Op.EndsBlock() {
			break
		}
	}
	if len(b.insts) == 0 {
		return nil
	}
	b.size = addr - pc
	// Threaded dispatch: specialize every instruction into its per-op
	// handler closure (after the decode loop, so the insts slice no
	// longer moves).
	b.ops = make([]handler, len(b.insts))
	ipc := pc
	for i := range b.insts {
		b.ops[i] = compile(&b.insts[i], ipc, b.nexts[i])
		ipc = b.nexts[i]
	}
	b.fastOps = b.ops
	if k := len(b.insts) - 2; k >= 0 {
		if f := fuseCmpBranch(&b.insts[k], &b.insts[k+1], b.nexts[k+1]); f != nil {
			b.fastOps = append(append(make([]handler, 0, k+1), b.ops[:k]...), f)
		}
	}
	// Chain metadata: the static successors control can reach when the
	// whole block retires.
	last := &b.insts[len(b.insts)-1]
	b.lastSetsPC = last.Op.IsControlTransfer()
	switch {
	case !last.Op.EndsBlock():
		// Cut at the decode cap (or before an undecodable
		// instruction): control always falls through.
		b.hasFall, b.fallPC = true, addr
	case last.Op.IsDirectBranch():
		b.hasTaken, b.takenPC = true, addr+uint64(last.Imm)
		if last.Op.IsCondBranch() {
			b.hasFall, b.fallPC = true, addr
		}
	case last.Op == isa.OpRet || last.Op == isa.OpRetI:
		b.exitRet = true
	case last.Op == isa.OpJmpR || last.Op == isa.OpCallR ||
		last.Op == isa.OpJmpM || last.Op == isa.OpCallM:
		b.exitIndirect = true
	}
	// Indirect transfers and returns go through the RAS / inline-cache
	// predictors (trace.go) and then lookup; stop instructions have no
	// successor at all.
	if len(c.blocks) >= maxBlocks {
		// Sever every chain pointer and trace along with the map: a
		// discarded cluster that stayed generation-valid could otherwise
		// keep executing (and keep itself alive) through its own links,
		// defeating the memory bound this flush exists to enforce. The
		// epoch bump does the same for the RAS call-site slots and
		// inline caches, which hold *block references outside the map.
		// The block the run loop currently holds relinks through lookup
		// on its next transition.
		for _, ob := range c.blocks {
			ob.fallNext, ob.takenNext = nil, nil
			ob.trace, ob.icNext = nil, nil
		}
		c.stats.Flushes += uint64(len(c.blocks))
		clear(c.blocks)
		c.epoch++
	}
	c.blocks[pc] = b
	c.stats.Blocks++
	return b
}

// Run executes instructions until a trap, halt, eexit, exception, or until
// maxCycles more instructions have retired (0 means no budget). It returns
// the reason for stopping. After StopTrap the PC addresses the instruction
// after the trap, so resuming continues past it.
func (c *CPU) Run(maxCycles uint64) Stop {
	var st Stop
	if maxCycles == 0 {
		st = c.runNoBudget()
	} else {
		st = c.run(maxCycles)
	}
	c.publishStats()
	return st
}

// runNoBudget is the cached execution loop without a cycle budget
// (maxCycles == 0) — the common case: harts run until the next
// trap/exception. It is run with the budget arithmetic and clip logic
// stripped from the per-block path (worth ~5% on hot loops); the two
// loops are kept in lockstep, and the randomized differential tests
// drive both (random budgets there, Run(0) here) against Step.
func (c *CPU) runNoBudget() Stop {
	var b *block
	if c.takePreempt() {
		return Stop{Reason: StopPreempt, PC: c.PC}
	}
	for {
		if b == nil {
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: c.PC}
			}
			b = c.lookup(c.PC)
			if b == nil {
				if stop, done := c.Step(); done {
					return stop
				}
				continue
			}
		}
		// Trace tier: a promoted block enters its superblock. The fast
		// check is one atomic load (the okGen memo); the slow path polls
		// preemption BEFORE revalidating, because revalidation advances
		// the memo and would otherwise absorb the generation bump that
		// RequestPreempt relies on to get the hart off its fast paths.
		if t := b.trace; t != nil {
			if c.Mem.Generation() != t.okGen {
				if c.takePreempt() {
					return Stop{Reason: StopPreempt, PC: c.PC}
				}
				if !c.traceValid(t) {
					// Some page under the trace moved; b itself may be
					// stale too, so relink through the map.
					c.severTrace(b)
					b = nil
					continue
				}
			}
			c.stats.TraceHits++
			if st, done := c.runTrace(t); done {
				return st
			}
			pc := c.PC
			if pc == t.anchor {
				// Hot self-loop: re-enter through the fast check with no
				// map traffic. A pending preemption bumped the
				// generation, so it cannot spin here.
				continue
			}
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			b = c.traceExit(t, pc)
			if b == nil {
				if stop, done := c.Step(); done {
					return stop
				}
			}
			continue
		} else if b.heat++; b.heat == traceHotThreshold && c.promote(b) {
			continue
		}
		ops := b.fastOps
		for i := 0; i < len(ops); i++ {
			if ops[i](c) {
				c.Cycles += uint64(i + 1)
				c.stats.Threaded += uint64(i + 1)
				return c.stop
			}
		}
		n := len(b.insts)
		c.Cycles += uint64(n)
		c.stats.Threaded += uint64(n)
		if !b.lastSetsPC {
			c.PC = b.nexts[n-1]
		}
		// Block chaining: the inline check covers the hot case (linked
		// successor, no mutation anywhere since its last validation —
		// one atomic load); chainVia holds the shared validate-or-
		// relink slow path. Indirect targets take the map. A pending
		// preemption bumps the generation, so it lands in these slow
		// branches — the poll costs the chained fast path nothing.
		pc := c.PC
		switch {
		case b.hasTaken && pc == b.takenPC:
			if nb := b.takenNext; nb != nil && c.Mem.Generation() == nb.okGen {
				c.stats.Chains++
				b = nb
				continue
			}
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			b = c.chainVia(&b.takenNext, pc)
		case b.hasFall && pc == b.fallPC:
			if nb := b.fallNext; nb != nil && c.Mem.Generation() == nb.okGen {
				c.stats.Chains++
				b = nb
				continue
			}
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			b = c.chainVia(&b.fallNext, pc)
		default:
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			// Returns and indirect transfers probe the RAS / inline
			// cache before the map (trace.go).
			b = c.indirect(b, pc)
		}
		if b == nil {
			if stop, done := c.Step(); done {
				return stop
			}
		}
	}
}

// run is the cached execution loop with a cycle budget: threaded
// dispatch inside blocks, chained transitions between them. The
// block-execution loop is inlined here (rather than a runBlock helper)
// because its per-block overhead is on the critical path of every hot
// loop.
//
// PC and Cycles are dead state inside a block: handlers only write PC
// when they transfer control or stop (see compile.go), so the loop
// batches the cycle count and materializes the fall-through PC at block
// exit — architectural state is exact at every point a caller can
// observe it.
func (c *CPU) run(maxCycles uint64) Stop {
	budget := maxCycles // Run routes maxCycles == 0 to runNoBudget
	var b *block
	if c.takePreempt() {
		return Stop{Reason: StopPreempt, PC: c.PC}
	}
	for budget > 0 {
		if b == nil {
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: c.PC}
			}
			b = c.lookup(c.PC)
			if b == nil {
				budget--
				if stop, done := c.Step(); done {
					return stop
				}
				continue
			}
		}
		// Trace tier, as in runNoBudget — but a superblock is entered
		// only when it fits the remaining budget whole, so a clipped
		// prefix always runs at the block tier and Run(maxCycles)
		// semantics stay exact. The retired count is taken as the Cycles
		// delta (a side exit retires only a prefix of the slots).
		if t := b.trace; t != nil && t.ninsts <= budget {
			if c.Mem.Generation() != t.okGen {
				if c.takePreempt() {
					return Stop{Reason: StopPreempt, PC: c.PC}
				}
				if !c.traceValid(t) {
					c.severTrace(b)
					b = nil
					continue
				}
			}
			c.stats.TraceHits++
			c0 := c.Cycles
			if st, done := c.runTrace(t); done {
				return st
			}
			budget -= c.Cycles - c0
			pc := c.PC
			if pc == t.anchor {
				continue // the loop head re-checks the budget
			}
			if budget == 0 {
				break
			}
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			b = c.traceExit(t, pc)
			if b == nil {
				budget--
				if stop, done := c.Step(); done {
					return stop
				}
			}
			continue
		} else if b.trace == nil {
			if b.heat++; b.heat == traceHotThreshold && c.promote(b) {
				continue
			}
		}
		// Execute the block, clipped to the remaining budget. Only the
		// final instruction of a block can redirect control, so a
		// clipped prefix always falls through and leaves PC at the next
		// unexecuted instruction — Run(maxCycles) semantics are exact.
		n := len(b.insts)
		clipped := uint64(n) > budget
		var ops []handler
		if clipped {
			n = int(budget)
			ops = b.ops[:n] // never the fused array: exact clipping
		} else {
			ops = b.fastOps
		}
		// A fused tail sits in the last slot and cannot stop, so the
		// slot index i of any stop equals its instruction index.
		for i := 0; i < len(ops); i++ {
			if ops[i](c) {
				// The stopping instruction retired (exec counts it
				// too), and its handler restored PC.
				c.Cycles += uint64(i + 1)
				c.stats.Threaded += uint64(i + 1)
				return c.stop
			}
		}
		c.Cycles += uint64(n)
		c.stats.Threaded += uint64(n)
		budget -= uint64(n)
		if clipped || !b.lastSetsPC {
			// A clipped prefix, or a block ending in a plain
			// instruction, falls through to the next unexecuted
			// address.
			c.PC = b.nexts[n-1]
		}
		if clipped {
			break
		}
		if budget == 0 {
			// Exactly exhausted at a block boundary: don't validate,
			// translate, or count a transition that will not execute.
			break
		}
		// Block chaining, as in runNoBudget — including the preempt
		// poll on the slow transition branches.
		pc := c.PC
		switch {
		case b.hasTaken && pc == b.takenPC:
			if nb := b.takenNext; nb != nil && c.Mem.Generation() == nb.okGen {
				c.stats.Chains++
				b = nb
				continue
			}
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			b = c.chainVia(&b.takenNext, pc)
		case b.hasFall && pc == b.fallPC:
			if nb := b.fallNext; nb != nil && c.Mem.Generation() == nb.okGen {
				c.stats.Chains++
				b = nb
				continue
			}
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			b = c.chainVia(&b.fallNext, pc)
		default:
			if c.takePreempt() {
				return Stop{Reason: StopPreempt, PC: pc}
			}
			// Returns and indirect transfers probe the RAS / inline
			// cache before the map (trace.go).
			b = c.indirect(b, pc)
		}
		if b == nil && budget > 0 {
			budget--
			if stop, done := c.Step(); done {
				return stop
			}
		}
	}
	return Stop{Reason: StopCycles, PC: c.PC}
}

// Step executes a single instruction at PC, bypassing the translation
// cache: the precise slow path used by Run to materialize fetch faults
// and kept as the single-instruction API for the verifier and tests.
// done is false when execution should simply continue with the next
// instruction.
func (c *CPU) Step() (Stop, bool) {
	pc := c.PC
	in, n, fault, err := c.fetch(pc)
	if fault != nil {
		return Stop{Reason: StopException, Exc: ExcPage, Fault: fault, PC: pc}, true
	}
	if err != nil {
		return Stop{Reason: StopException, Exc: ExcInvalid, PC: pc}, true
	}
	if c.exec(&in, pc, pc+uint64(n)) {
		return c.stop, true
	}
	return Stop{}, false
}

// ea computes the effective address of a memory operand given the address
// of the next instruction (for PC-relative operands). An absent base
// contributes zero: the encoding permits index-without-base operands
// (x86 SIB does too), and indexing Regs with RegNone would crash the
// whole process on an operand hostile code can construct (found by the
// randomized differential test).
func (c *CPU) ea(m isa.MemRef, next uint64) uint64 {
	var a uint64
	switch {
	case m.IsPCRel():
		a = next
	case m.Base.Valid():
		a = c.Regs[m.Base]
	}
	if m.HasIndex() {
		a += c.Regs[m.Index] * uint64(m.Scale)
	}
	return a + uint64(int64(m.Disp))
}

// Exception raisers for exec: they fill c.stop and report "stopped" so
// the hot path never copies a Stop struct for instructions that retire
// normally.

func (c *CPU) pageFault(f *mem.Fault, pc uint64) bool {
	c.stop = Stop{Reason: StopException, Exc: ExcPage, Fault: f, PC: pc}
	return true
}

func (c *CPU) boundFault(pc uint64) bool {
	c.stop = Stop{Reason: StopException, Exc: ExcBound, PC: pc}
	return true
}

func (c *CPU) halted(reason StopReason, next uint64) bool {
	c.PC = next
	c.stop = Stop{Reason: reason, PC: next}
	return true
}

func (c *CPU) invalid(pc uint64) bool {
	c.stop = Stop{Reason: StopException, Exc: ExcInvalid, PC: pc}
	return true
}

// exec executes one decoded instruction located at pc whose successor is
// next. It reports true when the hart stopped, with the reason in c.stop;
// on fall-through it advances PC to next and reports false.
func (c *CPU) exec(in *isa.Inst, pc, next uint64) bool {
	c.Cycles++

	switch in.Op {
	case isa.OpMovRI:
		c.Regs[in.R1] = uint64(in.Imm)
	case isa.OpMovRR:
		c.Regs[in.R1] = c.Regs[in.R2]
	case isa.OpLoad, isa.OpLoadB:
		size := 8
		if in.Op == isa.OpLoadB {
			size = 1
		}
		v, f := c.Mem.Load(c.ea(in.Mem, next), size)
		if f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[in.R1] = v
	case isa.OpStore, isa.OpStoreB:
		size := 8
		if in.Op == isa.OpStoreB {
			size = 1
		}
		if f := c.Mem.Store(c.ea(in.Mem, next), size, c.Regs[in.R1]); f != nil {
			return c.pageFault(f, pc)
		}
	case isa.OpLea:
		c.Regs[in.R1] = c.ea(in.Mem, next)
	case isa.OpPush:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, c.Regs[in.R1]); f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[isa.SP] -= 8
	case isa.OpPushI:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, uint64(in.Imm)); f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[isa.SP] -= 8
	case isa.OpPop:
		v, f := c.Mem.Load(c.Regs[isa.SP], 8)
		if f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[isa.SP] += 8
		c.Regs[in.R1] = v

	case isa.OpAddRR:
		c.Regs[in.R1] += c.Regs[in.R2]
	case isa.OpSubRR:
		c.Regs[in.R1] -= c.Regs[in.R2]
	case isa.OpMulRR:
		c.Regs[in.R1] *= c.Regs[in.R2]
	case isa.OpDivRR, isa.OpModRR:
		d := int64(c.Regs[in.R2])
		if d == 0 {
			c.stop = Stop{Reason: StopException, Exc: ExcDivide, PC: pc}
			return true
		}
		if in.Op == isa.OpDivRR {
			c.Regs[in.R1] = uint64(int64(c.Regs[in.R1]) / d)
		} else {
			c.Regs[in.R1] = uint64(int64(c.Regs[in.R1]) % d)
		}
	case isa.OpAndRR:
		c.Regs[in.R1] &= c.Regs[in.R2]
	case isa.OpOrRR:
		c.Regs[in.R1] |= c.Regs[in.R2]
	case isa.OpXorRR:
		c.Regs[in.R1] ^= c.Regs[in.R2]
	case isa.OpShlRR:
		c.Regs[in.R1] <<= c.Regs[in.R2] & 63
	case isa.OpShrRR:
		c.Regs[in.R1] >>= c.Regs[in.R2] & 63
	case isa.OpCmpRR:
		c.setCmp(c.Regs[in.R1], c.Regs[in.R2])
	case isa.OpTestRR:
		c.setTest(c.Regs[in.R1] & c.Regs[in.R2])

	case isa.OpAddRI:
		c.Regs[in.R1] += uint64(in.Imm)
	case isa.OpSubRI:
		c.Regs[in.R1] -= uint64(in.Imm)
	case isa.OpMulRI:
		c.Regs[in.R1] *= uint64(in.Imm)
	case isa.OpAndRI:
		c.Regs[in.R1] &= uint64(in.Imm)
	case isa.OpOrRI:
		c.Regs[in.R1] |= uint64(in.Imm)
	case isa.OpXorRI:
		c.Regs[in.R1] ^= uint64(in.Imm)
	case isa.OpShlRI:
		c.Regs[in.R1] <<= uint64(in.Imm) & 63
	case isa.OpShrRI:
		c.Regs[in.R1] >>= uint64(in.Imm) & 63
	case isa.OpCmpRI:
		c.setCmp(c.Regs[in.R1], uint64(in.Imm))
	case isa.OpNeg:
		c.Regs[in.R1] = -c.Regs[in.R1]
	case isa.OpNot:
		c.Regs[in.R1] = ^c.Regs[in.R1]

	case isa.OpJmp:
		c.PC = next + uint64(in.Imm)
		return false
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJae:
		if c.cond(in.Op) {
			c.PC = next + uint64(in.Imm)
			return false
		}
	case isa.OpLoop:
		c.Regs[isa.R1]--
		if c.Regs[isa.R1] != 0 {
			c.PC = next + uint64(in.Imm)
			return false
		}
	case isa.OpCall:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[isa.SP] -= 8
		c.PC = next + uint64(in.Imm)
		return false
	case isa.OpJmpR:
		c.PC = c.Regs[in.R1]
		return false
	case isa.OpCallR:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[isa.SP] -= 8
		c.PC = c.Regs[in.R1]
		return false
	case isa.OpJmpM, isa.OpCallM:
		target, f := c.Mem.Load(c.ea(in.Mem, next), 8)
		if f != nil {
			return c.pageFault(f, pc)
		}
		if in.Op == isa.OpCallM {
			if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
				return c.pageFault(f, pc)
			}
			c.Regs[isa.SP] -= 8
		}
		c.PC = target
		return false
	case isa.OpRet, isa.OpRetI:
		target, f := c.Mem.Load(c.Regs[isa.SP], 8)
		if f != nil {
			return c.pageFault(f, pc)
		}
		c.Regs[isa.SP] += 8 + uint64(in.Imm)
		c.PC = target
		return false

	case isa.OpBndCL:
		if !c.Bnd.CheckLower(in.Bnd, c.Regs[in.R1]) {
			return c.boundFault(pc)
		}
	case isa.OpBndCU:
		if !c.Bnd.CheckUpper(in.Bnd, c.Regs[in.R1]) {
			return c.boundFault(pc)
		}
	case isa.OpBndCLM:
		if !c.Bnd.CheckLower(in.Bnd, c.ea(in.Mem, next)) {
			return c.boundFault(pc)
		}
	case isa.OpBndCUM:
		if !c.Bnd.CheckUpper(in.Bnd, c.ea(in.Mem, next)) {
			return c.boundFault(pc)
		}
	case isa.OpBndMk:
		// bndmk: lower = base register, upper = effective address.
		var lo uint64
		if in.Mem.Base.Valid() {
			lo = c.Regs[in.Mem.Base]
		}
		c.Bnd.Set(in.Bnd, mpx.Bound{Lower: lo, Upper: c.ea(in.Mem, next)})
	case isa.OpBndMov:
		c.Bnd.Set(in.Bnd, c.Bnd.Get(in.Bnd2))

	case isa.OpCFILabel, isa.OpNop:
		// no-ops
	case isa.OpHalt:
		return c.halted(StopHalt, next)
	case isa.OpTrap:
		return c.halted(StopTrap, next)
	case isa.OpEExit:
		return c.halted(StopEExit, next)
	case isa.OpEAccept, isa.OpEModPE:
		// SGX 1.0: these SGX 2.0 instructions are undefined.
		return c.invalid(pc)
	case isa.OpXRstor:
		// Restoring extended state can silently disable MPX: all bound
		// registers become permissive. This is exactly why Stage 2 of
		// the verifier must reject it.
		for b := isa.BndReg(0); b < isa.NumBndRegs; b++ {
			c.Bnd.Set(b, mpx.Bound{Lower: 0, Upper: ^uint64(0)})
		}
	case isa.OpWrFSBase, isa.OpWrGSBase:
		// Segment bases are not modeled; the instructions are rejected
		// by the verifier and behave as no-ops here.
	case isa.OpVScatter:
		// A vector scatter writes multiple non-contiguous locations
		// from one instruction — the reason Stage 4 rejects it.
		a := c.ea(in.Mem, next)
		if f := c.Mem.Store(a, 8, c.Regs[in.R1]); f != nil {
			return c.pageFault(f, pc)
		}
		if f := c.Mem.Store(a+128, 8, c.Regs[in.R1]); f != nil {
			return c.pageFault(f, pc)
		}
	default:
		return c.invalid(pc)
	}

	c.PC = next
	return false
}

func (c *CPU) setCmp(a, b uint64) {
	c.ZF = a == b
	c.LTS = int64(a) < int64(b)
	c.LTU = a < b
}

func (c *CPU) setTest(v uint64) {
	c.ZF = v == 0
	c.LTS = int64(v) < 0
	c.LTU = false
}

// cond evaluates a conditional branch against the flags, deferring to
// the reference definition in isa.Op.EvalCond. The compiled branch
// handlers inline their conditions instead (one fewer switch on the
// hot path); TestCompiledBranchesMatchEvalCond holds them to the same
// semantics exhaustively.
func (c *CPU) cond(op isa.Op) bool {
	return op.EvalCond(c.ZF, c.LTS, c.LTU)
}
