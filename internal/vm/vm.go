// Package vm implements the OVM virtual CPU: an interpreter that executes
// encoded OVM instructions (internal/isa) over permission-checked paged
// memory (internal/mem).
//
// The CPU plays the role of the hardware in the Occlum paper's security
// argument. It enforces exactly what real hardware enforces — page
// permissions (guard regions fault, data pages are not executable) and MPX
// bound checks (#BR) — and nothing more. All sandboxing beyond that comes
// from the MMDSFI instrumentation in the code it runs, which is the point
// of the paper.
//
// The CPU counts retired instructions as "cycles". Because MMDSFI's
// instrumentation inserts extra instructions, the SPECint-style overhead
// figures (paper Figure 7) fall out of cycle counts deterministically.
package vm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
)

// Exception enumerates the hardware exceptions the CPU can raise.
type Exception uint8

// Exceptions.
const (
	ExcNone    Exception = iota
	ExcPage              // #PF: unmapped page or permission violation
	ExcBound             // #BR: MPX bound check failed
	ExcDivide            // #DE: divide by zero
	ExcInvalid           // #UD: undefined or malformed instruction
)

func (e Exception) String() string {
	switch e {
	case ExcNone:
		return "none"
	case ExcPage:
		return "#PF"
	case ExcBound:
		return "#BR"
	case ExcDivide:
		return "#DE"
	case ExcInvalid:
		return "#UD"
	}
	return "#?"
}

// StopReason says why Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopTrap      StopReason = iota // executed trap (the LibOS syscall gate)
	StopException                   // raised a hardware exception (AEX)
	StopHalt                        // executed halt
	StopEExit                       // executed eexit (left the enclave)
	StopCycles                      // reached the cycle budget
)

func (r StopReason) String() string {
	switch r {
	case StopTrap:
		return "trap"
	case StopException:
		return "exception"
	case StopHalt:
		return "halt"
	case StopEExit:
		return "eexit"
	case StopCycles:
		return "cycle-budget"
	}
	return "stop?"
}

// Stop describes why and where execution stopped.
type Stop struct {
	Reason StopReason
	// Exc is the exception kind when Reason == StopException.
	Exc Exception
	// Fault carries page-fault details when Exc == ExcPage.
	Fault *mem.Fault
	// PC is the program counter at the stop: the address *after* a
	// trap/halt/eexit, or the address *of* the faulting instruction
	// for exceptions.
	PC uint64
}

// String renders the stop for diagnostics.
func (s Stop) String() string {
	if s.Reason == StopException {
		if s.Fault != nil {
			return fmt.Sprintf("%s %s at pc=%#x (%v)", s.Reason, s.Exc, s.PC, s.Fault)
		}
		return fmt.Sprintf("%s %s at pc=%#x", s.Reason, s.Exc, s.PC)
	}
	return fmt.Sprintf("%s at pc=%#x", s.Reason, s.PC)
}

type icacheEntry struct {
	inst isa.Inst
	len  int
}

// CPU is one OVM hart. It is not safe for concurrent use; each SGX thread
// (and hence each Occlum SIP) owns one CPU.
type CPU struct {
	// Mem is the memory the hart executes over (an enclave's ELRANGE,
	// or a plain address space for the native baseline).
	Mem *mem.Paged
	// Regs are the general-purpose registers.
	Regs [isa.NumRegs]uint64
	// PC is the program counter.
	PC uint64
	// ZF, LTS, LTU are the comparison flags: equal, signed-less and
	// unsigned-less, set by cmp/test.
	ZF, LTS, LTU bool
	// Bnd is the MPX bound register file.
	Bnd mpx.File
	// Cycles counts retired instructions.
	Cycles uint64

	icache map[uint64]icacheEntry
	icgen  uint64
}

// New creates a CPU over m with zeroed state.
func New(m *mem.Paged) *CPU {
	return &CPU{Mem: m, icache: make(map[uint64]icacheEntry)}
}

// Reset clears registers, flags and cycle count (but not the icache, which
// is keyed to memory generation).
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint64{}
	c.PC, c.Cycles = 0, 0
	c.ZF, c.LTS, c.LTU = false, false, false
	c.Bnd = mpx.File{}
}

func (c *CPU) fetch(addr uint64) (isa.Inst, int, *mem.Fault, error) {
	if g := c.Mem.Generation(); g != c.icgen {
		clear(c.icache)
		c.icgen = g
	}
	if e, ok := c.icache[addr]; ok {
		return e.inst, e.len, nil, nil
	}
	// Peek the opcode byte to learn the length, then fetch the whole
	// instruction with the execute-permission check.
	b, f := c.Mem.Fetch(addr, 1)
	if f != nil {
		return isa.Inst{}, 0, f, nil
	}
	op := isa.Op(b[0])
	if !op.Valid() {
		return isa.Inst{}, 0, nil, isa.ErrBadInst
	}
	n := isa.EncodedLen(op)
	view, f := c.Mem.Fetch(addr, n)
	if f != nil {
		return isa.Inst{}, 0, f, nil
	}
	in, n, err := isa.Decode(view, 0)
	if err != nil {
		return isa.Inst{}, 0, nil, err
	}
	c.icache[addr] = icacheEntry{inst: in, len: n}
	return in, n, nil, nil
}

// ea computes the effective address of a memory operand given the address
// of the next instruction (for PC-relative operands).
func (c *CPU) ea(m isa.MemRef, next uint64) uint64 {
	var a uint64
	switch {
	case m.IsAbs():
	case m.IsPCRel():
		a = next
	default:
		a = c.Regs[m.Base]
	}
	if m.HasIndex() {
		a += c.Regs[m.Index] * uint64(m.Scale)
	}
	return a + uint64(int64(m.Disp))
}

// Run executes instructions until a trap, halt, eexit, exception, or until
// maxCycles more instructions have retired (0 means no budget). It returns
// the reason for stopping. After StopTrap the PC addresses the instruction
// after the trap, so resuming continues past it.
func (c *CPU) Run(maxCycles uint64) Stop {
	budget := ^uint64(0)
	if maxCycles > 0 {
		budget = maxCycles
	}
	for budget > 0 {
		budget--
		stop, done := c.Step()
		if done {
			return stop
		}
	}
	return Stop{Reason: StopCycles, PC: c.PC}
}

// Step executes a single instruction. done is false when execution should
// simply continue with the next instruction.
func (c *CPU) Step() (Stop, bool) {
	pc := c.PC
	in, n, fault, err := c.fetch(pc)
	if fault != nil {
		return Stop{Reason: StopException, Exc: ExcPage, Fault: fault, PC: pc}, true
	}
	if err != nil {
		return Stop{Reason: StopException, Exc: ExcInvalid, PC: pc}, true
	}
	next := pc + uint64(n)
	c.Cycles++

	// Helpers that raise exceptions at this pc.
	pf := func(f *mem.Fault) (Stop, bool) {
		return Stop{Reason: StopException, Exc: ExcPage, Fault: f, PC: pc}, true
	}
	br := func() (Stop, bool) {
		return Stop{Reason: StopException, Exc: ExcBound, PC: pc}, true
	}

	switch in.Op {
	case isa.OpMovRI:
		c.Regs[in.R1] = uint64(in.Imm)
	case isa.OpMovRR:
		c.Regs[in.R1] = c.Regs[in.R2]
	case isa.OpLoad, isa.OpLoadB:
		size := 8
		if in.Op == isa.OpLoadB {
			size = 1
		}
		v, f := c.Mem.Load(c.ea(in.Mem, next), size)
		if f != nil {
			return pf(f)
		}
		c.Regs[in.R1] = v
	case isa.OpStore, isa.OpStoreB:
		size := 8
		if in.Op == isa.OpStoreB {
			size = 1
		}
		if f := c.Mem.Store(c.ea(in.Mem, next), size, c.Regs[in.R1]); f != nil {
			return pf(f)
		}
	case isa.OpLea:
		c.Regs[in.R1] = c.ea(in.Mem, next)
	case isa.OpPush:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, c.Regs[in.R1]); f != nil {
			return pf(f)
		}
		c.Regs[isa.SP] -= 8
	case isa.OpPushI:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, uint64(in.Imm)); f != nil {
			return pf(f)
		}
		c.Regs[isa.SP] -= 8
	case isa.OpPop:
		v, f := c.Mem.Load(c.Regs[isa.SP], 8)
		if f != nil {
			return pf(f)
		}
		c.Regs[isa.SP] += 8
		c.Regs[in.R1] = v

	case isa.OpAddRR:
		c.Regs[in.R1] += c.Regs[in.R2]
	case isa.OpSubRR:
		c.Regs[in.R1] -= c.Regs[in.R2]
	case isa.OpMulRR:
		c.Regs[in.R1] *= c.Regs[in.R2]
	case isa.OpDivRR, isa.OpModRR:
		d := int64(c.Regs[in.R2])
		if d == 0 {
			return Stop{Reason: StopException, Exc: ExcDivide, PC: pc}, true
		}
		if in.Op == isa.OpDivRR {
			c.Regs[in.R1] = uint64(int64(c.Regs[in.R1]) / d)
		} else {
			c.Regs[in.R1] = uint64(int64(c.Regs[in.R1]) % d)
		}
	case isa.OpAndRR:
		c.Regs[in.R1] &= c.Regs[in.R2]
	case isa.OpOrRR:
		c.Regs[in.R1] |= c.Regs[in.R2]
	case isa.OpXorRR:
		c.Regs[in.R1] ^= c.Regs[in.R2]
	case isa.OpShlRR:
		c.Regs[in.R1] <<= c.Regs[in.R2] & 63
	case isa.OpShrRR:
		c.Regs[in.R1] >>= c.Regs[in.R2] & 63
	case isa.OpCmpRR:
		c.setCmp(c.Regs[in.R1], c.Regs[in.R2])
	case isa.OpTestRR:
		c.setTest(c.Regs[in.R1] & c.Regs[in.R2])

	case isa.OpAddRI:
		c.Regs[in.R1] += uint64(in.Imm)
	case isa.OpSubRI:
		c.Regs[in.R1] -= uint64(in.Imm)
	case isa.OpMulRI:
		c.Regs[in.R1] *= uint64(in.Imm)
	case isa.OpAndRI:
		c.Regs[in.R1] &= uint64(in.Imm)
	case isa.OpOrRI:
		c.Regs[in.R1] |= uint64(in.Imm)
	case isa.OpXorRI:
		c.Regs[in.R1] ^= uint64(in.Imm)
	case isa.OpShlRI:
		c.Regs[in.R1] <<= uint64(in.Imm) & 63
	case isa.OpShrRI:
		c.Regs[in.R1] >>= uint64(in.Imm) & 63
	case isa.OpCmpRI:
		c.setCmp(c.Regs[in.R1], uint64(in.Imm))
	case isa.OpNeg:
		c.Regs[in.R1] = -c.Regs[in.R1]
	case isa.OpNot:
		c.Regs[in.R1] = ^c.Regs[in.R1]

	case isa.OpJmp:
		c.PC = next + uint64(in.Imm)
		return Stop{}, false
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJae:
		if c.cond(in.Op) {
			c.PC = next + uint64(in.Imm)
			return Stop{}, false
		}
	case isa.OpLoop:
		c.Regs[isa.R1]--
		if c.Regs[isa.R1] != 0 {
			c.PC = next + uint64(in.Imm)
			return Stop{}, false
		}
	case isa.OpCall:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
			return pf(f)
		}
		c.Regs[isa.SP] -= 8
		c.PC = next + uint64(in.Imm)
		return Stop{}, false
	case isa.OpJmpR:
		c.PC = c.Regs[in.R1]
		return Stop{}, false
	case isa.OpCallR:
		if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
			return pf(f)
		}
		c.Regs[isa.SP] -= 8
		c.PC = c.Regs[in.R1]
		return Stop{}, false
	case isa.OpJmpM, isa.OpCallM:
		target, f := c.Mem.Load(c.ea(in.Mem, next), 8)
		if f != nil {
			return pf(f)
		}
		if in.Op == isa.OpCallM {
			if f := c.Mem.Store(c.Regs[isa.SP]-8, 8, next); f != nil {
				return pf(f)
			}
			c.Regs[isa.SP] -= 8
		}
		c.PC = target
		return Stop{}, false
	case isa.OpRet, isa.OpRetI:
		target, f := c.Mem.Load(c.Regs[isa.SP], 8)
		if f != nil {
			return pf(f)
		}
		c.Regs[isa.SP] += 8 + uint64(in.Imm)
		c.PC = target
		return Stop{}, false

	case isa.OpBndCL:
		if !c.Bnd.CheckLower(in.Bnd, c.Regs[in.R1]) {
			return br()
		}
	case isa.OpBndCU:
		if !c.Bnd.CheckUpper(in.Bnd, c.Regs[in.R1]) {
			return br()
		}
	case isa.OpBndCLM:
		if !c.Bnd.CheckLower(in.Bnd, c.ea(in.Mem, next)) {
			return br()
		}
	case isa.OpBndCUM:
		if !c.Bnd.CheckUpper(in.Bnd, c.ea(in.Mem, next)) {
			return br()
		}
	case isa.OpBndMk:
		// bndmk: lower = base register, upper = effective address.
		var lo uint64
		if in.Mem.Base.Valid() {
			lo = c.Regs[in.Mem.Base]
		}
		c.Bnd.Set(in.Bnd, mpx.Bound{Lower: lo, Upper: c.ea(in.Mem, next)})
	case isa.OpBndMov:
		c.Bnd.Set(in.Bnd, c.Bnd.Get(in.Bnd2))

	case isa.OpCFILabel, isa.OpNop:
		// no-ops
	case isa.OpHalt:
		c.PC = next
		return Stop{Reason: StopHalt, PC: next}, true
	case isa.OpTrap:
		c.PC = next
		return Stop{Reason: StopTrap, PC: next}, true
	case isa.OpEExit:
		c.PC = next
		return Stop{Reason: StopEExit, PC: next}, true
	case isa.OpEAccept, isa.OpEModPE:
		// SGX 1.0: these SGX 2.0 instructions are undefined.
		return Stop{Reason: StopException, Exc: ExcInvalid, PC: pc}, true
	case isa.OpXRstor:
		// Restoring extended state can silently disable MPX: all bound
		// registers become permissive. This is exactly why Stage 2 of
		// the verifier must reject it.
		for b := isa.BndReg(0); b < isa.NumBndRegs; b++ {
			c.Bnd.Set(b, mpx.Bound{Lower: 0, Upper: ^uint64(0)})
		}
	case isa.OpWrFSBase, isa.OpWrGSBase:
		// Segment bases are not modeled; the instructions are rejected
		// by the verifier and behave as no-ops here.
	case isa.OpVScatter:
		// A vector scatter writes multiple non-contiguous locations
		// from one instruction — the reason Stage 4 rejects it.
		a := c.ea(in.Mem, next)
		if f := c.Mem.Store(a, 8, c.Regs[in.R1]); f != nil {
			return pf(f)
		}
		if f := c.Mem.Store(a+128, 8, c.Regs[in.R1]); f != nil {
			return pf(f)
		}
	default:
		return Stop{Reason: StopException, Exc: ExcInvalid, PC: pc}, true
	}

	c.PC = next
	return Stop{}, false
}

func (c *CPU) setCmp(a, b uint64) {
	c.ZF = a == b
	c.LTS = int64(a) < int64(b)
	c.LTU = a < b
}

func (c *CPU) setTest(v uint64) {
	c.ZF = v == 0
	c.LTS = int64(v) < 0
	c.LTU = false
}

func (c *CPU) cond(op isa.Op) bool {
	switch op {
	case isa.OpJe:
		return c.ZF
	case isa.OpJne:
		return !c.ZF
	case isa.OpJl:
		return c.LTS
	case isa.OpJle:
		return c.LTS || c.ZF
	case isa.OpJg:
		return !c.LTS && !c.ZF
	case isa.OpJge:
		return !c.LTS
	case isa.OpJb:
		return c.LTU
	case isa.OpJae:
		return !c.LTU
	}
	return false
}
