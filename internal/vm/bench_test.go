package vm

// Interpreter microbenchmarks for the DBT optimization ladder: block
// chaining, threaded dispatch and single-page memory fast paths. Each
// benchmark runs a small program to completion per iteration and reports
// ns/inst (wall time divided by retired instructions) so results are
// comparable across programs of different lengths. Before/after numbers
// are recorded in BENCH_PR2.json and EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// runToTrap drives one warm CPU through the program once per benchmark
// iteration and reports ns/inst.
func runToTrap(b *testing.B, img *asm.Image) {
	c := loadImage(b, img, 4096)
	entry := c.PC
	sp := c.Regs[isa.SP]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.PC = entry
		c.Regs[isa.SP] = sp
		if st := c.Run(0); st.Reason != StopTrap {
			b.Fatalf("stop = %v", st)
		}
	}
	b.StopTimer()
	if c.Cycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(c.Cycles)/float64(b.N), "ns/inst")
	}
}

// BenchmarkHotLoop is the headline microbenchmark: a single-block
// arithmetic loop that chains to itself, the best case for block
// chaining + threaded dispatch (no memory traffic).
func BenchmarkHotLoop(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Entry("_start")
		bb.MovRI(isa.R0, 0)
		bb.MovRI(isa.R2, 1)
		bb.Label("loop")
		bb.Add(isa.R0, isa.R2)
		bb.AddI(isa.R2, 1)
		bb.CmpI(isa.R2, 1<<20)
		bb.Jle("loop")
		bb.Trap()
	})
	runToTrap(b, img)
}

// BenchmarkMemoryLoop stresses the single-page Load/Store fast paths:
// every iteration does two loads and two stores inside one page.
func BenchmarkMemoryLoop(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Bytes("buf", make([]byte, 64))
		bb.Entry("_start")
		bb.LeaData(isa.R1, "buf")
		bb.MovRI(isa.R2, 0)
		bb.Label("loop")
		bb.Store(isa.Mem(isa.R1, 0), isa.R2)
		bb.Load(isa.R3, isa.Mem(isa.R1, 0))
		bb.Store(isa.Mem(isa.R1, 8), isa.R3)
		bb.Load(isa.R4, isa.Mem(isa.R1, 8))
		bb.AddI(isa.R2, 1)
		bb.CmpI(isa.R2, 1<<18)
		bb.Jle("loop")
		bb.Trap()
	})
	runToTrap(b, img)
}

// BenchmarkCallRet alternates direct calls (chainable) with returns
// (indirect: falls back to the block-cache lookup), plus the implicit
// stack stores/loads of call/ret.
func BenchmarkCallRet(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Entry("_start")
		bb.MovRI(isa.R1, 1<<18)
		bb.Label("loop")
		bb.Call("fn")
		bb.Jcc(isa.OpLoop, "loop")
		bb.Trap()
		bb.Func("fn")
		bb.AddI(isa.R0, 1)
		bb.Ret()
	})
	runToTrap(b, img)
}

// BenchmarkMultiBlockLoop runs a loop body split into several basic
// blocks by conditional branches (one never taken, one always taken):
// the chain-heavy shape of MMDSFI-instrumented code, where guards
// break straight-line runs every few instructions.
func BenchmarkMultiBlockLoop(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Entry("_start")
		bb.MovRI(isa.R1, 1<<18)
		bb.Label("loop")
		bb.AddI(isa.R0, 1)
		bb.CmpI(isa.R0, 0)
		bb.Je("dead") // never taken: falls through (chained)
		bb.AddI(isa.R3, 2)
		bb.CmpI(isa.R0, 0)
		bb.Jne("skip") // always taken (chained)
		bb.AddI(isa.R4, 5)
		bb.Label("skip")
		bb.Jcc(isa.OpLoop, "loop")
		bb.Trap()
		bb.Label("dead")
		bb.Trap()
	})
	runToTrap(b, img)
}
