package vm

// Interpreter microbenchmarks for the DBT optimization ladder: block
// chaining, threaded dispatch and single-page memory fast paths. Each
// benchmark runs a small program to completion per iteration and reports
// ns/inst (wall time divided by retired instructions) so results are
// comparable across programs of different lengths. Before/after numbers
// are recorded in BENCH_PR2.json and EXPERIMENTS.md.

import (
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
)

// runToTrap drives one warm CPU through the program once per benchmark
// iteration and reports ns/inst.
func runToTrap(b *testing.B, img *asm.Image) {
	c := loadImage(b, img, 4096)
	entry := c.PC
	sp := c.Regs[isa.SP]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.PC = entry
		c.Regs[isa.SP] = sp
		if st := c.Run(0); st.Reason != StopTrap {
			b.Fatalf("stop = %v", st)
		}
	}
	b.StopTimer()
	if c.Cycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(c.Cycles)/float64(b.N), "ns/inst")
	}
}

// BenchmarkHotLoop is the headline microbenchmark: a single-block
// arithmetic loop that chains to itself, the best case for block
// chaining + threaded dispatch (no memory traffic).
func BenchmarkHotLoop(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Entry("_start")
		bb.MovRI(isa.R0, 0)
		bb.MovRI(isa.R2, 1)
		bb.Label("loop")
		bb.Add(isa.R0, isa.R2)
		bb.AddI(isa.R2, 1)
		bb.CmpI(isa.R2, 1<<20)
		bb.Jle("loop")
		bb.Trap()
	})
	runToTrap(b, img)
}

// BenchmarkMemoryLoop stresses the single-page Load/Store fast paths:
// every iteration does two loads and two stores inside one page.
func BenchmarkMemoryLoop(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Bytes("buf", make([]byte, 64))
		bb.Entry("_start")
		bb.LeaData(isa.R1, "buf")
		bb.MovRI(isa.R2, 0)
		bb.Label("loop")
		bb.Store(isa.Mem(isa.R1, 0), isa.R2)
		bb.Load(isa.R3, isa.Mem(isa.R1, 0))
		bb.Store(isa.Mem(isa.R1, 8), isa.R3)
		bb.Load(isa.R4, isa.Mem(isa.R1, 8))
		bb.AddI(isa.R2, 1)
		bb.CmpI(isa.R2, 1<<18)
		bb.Jle("loop")
		bb.Trap()
	})
	runToTrap(b, img)
}

// BenchmarkCallRet alternates direct calls (chainable) with returns
// (indirect: falls back to the block-cache lookup), plus the implicit
// stack stores/loads of call/ret.
func BenchmarkCallRet(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Entry("_start")
		bb.MovRI(isa.R1, 1<<18)
		bb.Label("loop")
		bb.Call("fn")
		bb.Jcc(isa.OpLoop, "loop")
		bb.Trap()
		bb.Func("fn")
		bb.AddI(isa.R0, 1)
		bb.Ret()
	})
	runToTrap(b, img)
}

// BenchmarkMultiBlockLoop runs a loop body split into several basic
// blocks by conditional branches (one never taken, one always taken):
// the chain-heavy shape of MMDSFI-instrumented code, where guards
// break straight-line runs every few instructions.
func BenchmarkMultiBlockLoop(b *testing.B) {
	img := build(b, func(bb *asm.Builder) {
		bb.Entry("_start")
		bb.MovRI(isa.R1, 1<<18)
		bb.Label("loop")
		bb.AddI(isa.R0, 1)
		bb.CmpI(isa.R0, 0)
		bb.Je("dead") // never taken: falls through (chained)
		bb.AddI(isa.R3, 2)
		bb.CmpI(isa.R0, 0)
		bb.Jne("skip") // always taken (chained)
		bb.AddI(isa.R4, 5)
		bb.Label("skip")
		bb.Jcc(isa.OpLoop, "loop")
		bb.Trap()
		bb.Label("dead")
		bb.Trap()
	})
	runToTrap(b, img)
}

// ---------------------------------------------------------------------
// Trace-tier A/B: the same microbenchmarks with superblock formation
// disabled, so BENCH_PR6.json can record interleaved trace-off /
// trace-on medians from one binary (the PR2 methodology; TracesEnabled
// is read only on the cold promotion path, so flipping it is free).
// ---------------------------------------------------------------------

// benchTraces runs f with superblock formation forced on or off.
func benchTraces(b *testing.B, on bool, f func(*testing.B)) {
	old := TracesEnabled
	TracesEnabled = on
	defer func() { TracesEnabled = old }()
	f(b)
}

func BenchmarkHotLoopNoTraces(b *testing.B)        { benchTraces(b, false, BenchmarkHotLoop) }
func BenchmarkMemoryLoopNoTraces(b *testing.B)     { benchTraces(b, false, BenchmarkMemoryLoop) }
func BenchmarkCallRetNoTraces(b *testing.B)        { benchTraces(b, false, BenchmarkCallRet) }
func BenchmarkMultiBlockLoopNoTraces(b *testing.B) { benchTraces(b, false, BenchmarkMultiBlockLoop) }

// TestTraceSpeedupRegression is the CI bench smoke: it measures the
// trace-on / trace-off speedup of the hot microbenchmarks with
// interleaved runs (machine-speed-independent, unlike absolute ns/inst)
// and fails if either drops more than 20% below the speedup recorded in
// BENCH_PR6.json. Heavy and timing-sensitive, so it only runs when
// OCCLUM_BENCH_REGRESS=1 (the CI bench job sets it) and never under the
// race detector.
func TestTraceSpeedupRegression(t *testing.T) {
	if os.Getenv("OCCLUM_BENCH_REGRESS") == "" {
		t.Skip("set OCCLUM_BENCH_REGRESS=1 to run the bench smoke")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios are not meaningful under the race detector")
	}
	// Committed baselines from BENCH_PR6.json, with the 20% regression
	// margin already applied.
	baseline := map[string]float64{
		"hotloop":   1.50 * 0.8,
		"callret":   1.87 * 0.8,
		"multiloop": 1.88 * 0.8,
	}
	imgs := map[string]*asm.Image{
		"hotloop": build(t, func(bb *asm.Builder) {
			bb.Entry("_start")
			bb.MovRI(isa.R0, 0)
			bb.MovRI(isa.R2, 1)
			bb.Label("loop")
			bb.Add(isa.R0, isa.R2)
			bb.AddI(isa.R2, 1)
			bb.CmpI(isa.R2, 1<<18)
			bb.Jle("loop")
			bb.Trap()
		}),
		"callret": build(t, func(bb *asm.Builder) {
			bb.Entry("_start")
			bb.MovRI(isa.R1, 1<<16)
			bb.Label("loop")
			bb.Call("fn")
			bb.Jcc(isa.OpLoop, "loop")
			bb.Trap()
			bb.Func("fn")
			bb.AddI(isa.R0, 1)
			bb.Ret()
		}),
		"multiloop": build(t, func(bb *asm.Builder) {
			bb.Entry("_start")
			bb.MovRI(isa.R1, 1<<16)
			bb.Label("loop")
			bb.AddI(isa.R0, 1)
			bb.CmpI(isa.R0, 0)
			bb.Je("dead")
			bb.AddI(isa.R3, 2)
			bb.CmpI(isa.R0, 0)
			bb.Jne("skip")
			bb.AddI(isa.R4, 5)
			bb.Label("skip")
			bb.Jcc(isa.OpLoop, "loop")
			bb.Trap()
			bb.Label("dead")
			bb.Trap()
		}),
	}
	measure := func(img *asm.Image, on bool) float64 {
		old := TracesEnabled
		TracesEnabled = on
		defer func() { TracesEnabled = old }()
		c := loadImage(t, img, 4096)
		entry, sp := c.PC, c.Regs[isa.SP]
		run := func() time.Duration {
			c.Reset()
			c.PC, c.Regs[isa.SP] = entry, sp
			t0 := time.Now()
			if st := c.Run(0); st.Reason != StopTrap {
				t.Fatalf("stop = %v", st)
			}
			return time.Since(t0)
		}
		run() // warm the caches past the promotion threshold
		best := run()
		for i := 0; i < 4; i++ {
			if d := run(); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds())
	}
	for name, img := range imgs {
		// Interleave the A and B sides and keep the best of several
		// rounds of each: minimums are the noise-robust statistic for
		// a single-threaded CPU-bound loop.
		off, on := math.MaxFloat64, math.MaxFloat64
		for round := 0; round < 3; round++ {
			if d := measure(img, false); d < off {
				off = d
			}
			if d := measure(img, true); d < on {
				on = d
			}
		}
		speedup := off / on
		t.Logf("%s: trace speedup %.2fx (floor %.2fx)", name, speedup, baseline[name])
		if speedup < baseline[name] {
			t.Errorf("%s: trace speedup %.2fx regressed below %.2fx", name, speedup, baseline[name])
		}
	}
}
