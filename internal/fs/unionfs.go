package fs

import (
	"errors"
	"fmt"
	"path"
	"strings"
	"sync"
)

// UnionFS completes Occlum's filesystem picture (§6): the writable
// encrypted EncFS layered over the integrity-verified read-only image.
// Reads fall through to the lowest layer holding the path; the first
// write to an image file copies it up into the writable layer; unlink of
// an image path leaves a whiteout marker so the name stays dead across
// remounts. SIPs see one ordinary tree — the VFS dispatches to the union
// exactly like to any other mounted filesystem.
//
// Whiteout convention (overlayfs-style, adapted to a filesystem without
// xattrs): a zero-length upper file ".wh.<name>" hides <name> in the
// lower layer; an upper directory containing ".wh..wh..opq" is opaque
// (its lower counterpart does not show through). Names beginning with
// ".wh." are reserved and cannot be created or addressed through the
// union.

// ErrReservedName reports a path component using the whiteout prefix.
var ErrReservedName = errors.New("fs: name reserved by the union layer")

const (
	whPrefix     = ".wh."
	opaqueMarker = ".wh..wh..opq"
)

// UnionFS is a two-layer union mount.
type UnionFS struct {
	// mu serializes compound operations (copy-up, whiteout transitions,
	// rename). Plain reads only take the underlying filesystems' locks.
	mu    sync.Mutex
	upper FileSystem
	lower FileSystem

	// copiedUp remembers image paths already copied up in this mount, so
	// lazily-copying handles can notice and switch layers.
	copiedUp map[string]bool
	// deadGen counts unlinks per path. A lazily-copying handle captures
	// the generation at open; once they differ, the handle's name has
	// been deleted (possibly re-created as an unrelated file) and its
	// deferred copy-up must neither resurrect the old name nor write
	// into the new object.
	deadGen map[string]uint64
}

var _ FileSystem = (*UnionFS)(nil)
var _ Renamer = (*UnionFS)(nil)

// NewUnionFS layers the writable upper filesystem over the read-only
// lower one.
func NewUnionFS(upper, lower FileSystem) *UnionFS {
	return &UnionFS{
		upper: upper, lower: lower,
		copiedUp: make(map[string]bool),
		deadGen:  make(map[string]uint64),
	}
}

func whiteoutPath(p string) string {
	dir, base := path.Split(path.Clean("/" + p))
	return path.Join(dir, whPrefix+base)
}

func reservedName(p string) bool {
	for _, c := range splitPath(p) {
		if strings.HasPrefix(c, whPrefix) {
			return true
		}
	}
	return false
}

// absent reports whether a Stat error means "no such entry" (as opposed
// to an integrity failure, which must surface as itself — treating a
// corrupt layer as empty would fail open).
func absent(err error) bool {
	return errors.Is(err, ErrNotExist) || errors.Is(err, ErrNotDir)
}

func (u *UnionFS) hasWhiteout(p string) (bool, error) {
	_, err := u.upper.Stat(whiteoutPath(p))
	if err == nil {
		return true, nil
	}
	if absent(err) {
		return false, nil
	}
	return false, err
}

func (u *UnionFS) isOpaque(dir string) (bool, error) {
	_, err := u.upper.Stat(path.Join(path.Clean("/"+dir), opaqueMarker))
	if err == nil {
		return true, nil
	}
	if absent(err) {
		return false, nil
	}
	return false, err
}

// loc describes where a union path lives.
type loc struct {
	upOK bool
	upFi FileInfo
	// loOK means the lower entry is visible: present, not whited out,
	// not shadowed by an upper file, and under no opaque upper dir.
	loOK bool
	loFi FileInfo
	// loPresent means the lower entry exists beneath a live lower chain
	// even if an upper file or opaque dir currently shadows it — the
	// cases where removing the upper entry would resurrect it, so
	// unlink/rename must leave a whiteout.
	loPresent bool
}

func (l loc) exists() bool { return l.upOK || l.loOK }

func (l loc) fi() FileInfo {
	if l.upOK {
		return l.upFi
	}
	return l.loFi
}

func (l loc) isDir() bool { return l.fi().IsDir }

// locate walks p component by component, tracking whether the lower
// layer is still alive at each step (an upper regular file or an opaque
// upper directory kills the lower subtree; a whiteout kills one name).
func (u *UnionFS) locate(p string) (loc, error) {
	p = path.Clean("/" + p)
	if reservedName(p) {
		return loc{}, fmt.Errorf("%w: %s", ErrReservedName, p)
	}
	cur := "/"
	l := loc{}
	if fi, err := u.upper.Stat("/"); err == nil {
		l.upOK, l.upFi = true, fi
	} else if !absent(err) {
		return loc{}, err // fail closed on upper-root corruption
	}
	if fi, err := u.lower.Stat("/"); err == nil {
		opq, oerr := u.isOpaque("/")
		if oerr != nil {
			return loc{}, oerr
		}
		if !opq {
			l.loOK, l.loPresent, l.loFi = true, true, fi
		}
	} else if !absent(err) {
		return loc{}, err // fail closed on lower-root corruption
	}
	for _, comp := range splitPath(p) {
		// The parent must be a directory in at least one live layer.
		if !l.exists() {
			return loc{}, fmt.Errorf("%w: %s", ErrNotExist, cur)
		}
		if !l.isDir() {
			return loc{}, fmt.Errorf("%w: %s", ErrNotDir, cur)
		}
		parentUpDir := l.upOK && l.upFi.IsDir
		parentLoDir := l.loOK && l.loFi.IsDir
		cur = path.Join(cur, comp)
		next := loc{}
		if parentUpDir {
			fi, err := u.upper.Stat(cur)
			switch {
			case err == nil:
				next.upOK, next.upFi = true, fi
			case absent(err):
				// genuinely absent above
			default:
				// A corrupt upper layer must not fall back to stale
				// lower content (an undetected rollback of user data).
				return loc{}, err
			}
		}
		if parentLoDir {
			whited := false
			if parentUpDir {
				var werr error
				whited, werr = u.hasWhiteout(cur)
				if werr != nil {
					return loc{}, werr
				}
			}
			if !whited {
				fi, err := u.lower.Stat(cur)
				switch {
				case err == nil:
					next.loOK, next.loPresent, next.loFi = true, true, fi
				case absent(err):
					// genuinely absent below
				default:
					// Integrity failures (ErrCorrupt) must surface as
					// themselves, not masquerade as a missing path.
					return loc{}, err
				}
			}
		}
		// An upper file shadows the lower subtree; an opaque upper dir
		// hides the lower counterpart's contents (the dir itself stays
		// merged for Stat, but children resolve upper-only). Either way
		// the lower entry is still *present*: unlinking the upper entry
		// alone would resurrect it. The opaque probe (an upper Stat)
		// only runs when there is a lower counterpart to hide.
		if next.upOK && next.loOK {
			shadow := !next.upFi.IsDir
			if !shadow {
				var oerr error
				shadow, oerr = u.isOpaque(cur)
				if oerr != nil {
					return loc{}, oerr
				}
			}
			if shadow {
				next.loOK = false
			}
		}
		l = next
	}
	if !l.exists() {
		return l, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return l, nil
}

// ensureUpperDirsLocked materializes the directory chain of dir in the
// upper layer (each missing component must be a visible lower
// directory). Caller holds u.mu.
func (u *UnionFS) ensureUpperDirsLocked(dir string) error {
	dir = path.Clean("/" + dir)
	if dir == "/" {
		return nil
	}
	comps := splitPath(dir)
	cur := ""
	for _, c := range comps {
		cur = cur + "/" + c
		if fi, err := u.upper.Stat(cur); err == nil {
			if !fi.IsDir {
				return fmt.Errorf("%w: %s", ErrNotDir, cur)
			}
			continue
		}
		if err := u.upper.Mkdir(cur); err != nil {
			return err
		}
	}
	return nil
}

func (u *UnionFS) setWhiteoutLocked(p string) error {
	if err := u.ensureUpperDirsLocked(path.Dir(path.Clean("/" + p))); err != nil {
		return err
	}
	n, err := u.upper.Open(whiteoutPath(p), OCreate|OWrOnly)
	if err != nil {
		return err
	}
	n.Close()
	fsStats.whiteouts.Add(1)
	return nil
}

// copyUpLocked copies the lower file at p into the upper layer,
// returning an upper node open with the given flags. Caller holds u.mu.
func (u *UnionFS) copyUpLocked(p string, flags OpenFlag, copyData bool) (Node, error) {
	if _, err := u.upper.Stat(p); err == nil {
		// Someone else copied up between the check and now. OTrunc must
		// survive the reopen — a concurrent truncating open still has
		// to truncate; only the create flag is spent.
		return u.upper.Open(p, flags&^OCreate)
	}
	if wh, err := u.hasWhiteout(p); err != nil {
		return nil, err
	} else if wh {
		// The path was unlinked after this handle was opened: copying up
		// now would re-publish the deleted name in the namespace. The
		// handle's reads keep working on the (immutable) lower node;
		// writes through a dead name fail.
		return nil, fmt.Errorf("%w: %s unlinked since open", ErrNotExist, p)
	}
	if err := u.ensureUpperDirsLocked(path.Dir(path.Clean("/" + p))); err != nil {
		return nil, err
	}
	un, err := u.upper.Open(p, flags|OCreate)
	if err != nil {
		return nil, err
	}
	if copyData {
		ln, err := u.lower.Open(p, ORdOnly)
		if err != nil {
			un.Close()
			return nil, err
		}
		defer ln.Close()
		buf := make([]byte, 64*1024)
		for off := int64(0); off < ln.Size(); {
			n, err := ln.ReadAt(buf, off)
			if n > 0 {
				if _, werr := un.WriteAt(buf[:n], off); werr != nil {
					un.Close()
					return nil, werr
				}
				off += int64(n)
			}
			if err != nil {
				un.Close()
				return nil, err
			}
			if n == 0 {
				break
			}
		}
	}
	u.copiedUp[path.Clean("/"+p)] = true
	fsStats.copyUps.Add(1)
	return un, nil
}

// unionNode defers copy-up until the first write: read-heavy handles
// opened read-write never pay the copy.
type unionNode struct {
	u     *UnionFS
	path  string
	flags OpenFlag
	gen   uint64 // deadGen at open: a later bump means the name died

	mu     sync.Mutex
	cur    Node
	copied bool
}

var _ Node = (*unionNode)(nil)

// refresh switches to the upper layer if another handle copied the file
// up since this one was opened. It reports whether the handle's name
// has been unlinked (stale): a stale handle keeps reading the immutable
// lower content but must never attach to whatever now occupies the
// name. Caller holds n.mu.
func (n *unionNode) refresh() (stale bool) {
	if n.copied {
		return false
	}
	n.u.mu.Lock()
	stale = n.u.deadGen[n.path] != n.gen
	was := !stale && n.u.copiedUp[n.path]
	n.u.mu.Unlock()
	if was {
		if un, err := n.u.upper.Open(n.path, n.flags&^(OCreate|OTrunc)); err == nil {
			n.cur.Close()
			n.cur = un
			n.copied = true
		}
	}
	return stale
}

func (n *unionNode) ReadAt(p []byte, off int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refresh()
	return n.cur.ReadAt(p, off)
}

func (n *unionNode) WriteAt(p []byte, off int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.refresh() {
		return 0, fmt.Errorf("%w: %s unlinked since open", ErrNotExist, n.path)
	}
	if !n.copied {
		n.u.mu.Lock()
		un, err := n.u.copyUpLocked(n.path, n.flags, true)
		n.u.mu.Unlock()
		if err != nil {
			return 0, err
		}
		n.cur.Close()
		n.cur = un
		n.copied = true
	}
	return n.cur.WriteAt(p, off)
}

func (n *unionNode) Size() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refresh()
	return n.cur.Size()
}

func (n *unionNode) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cur.Close()
}

// Open resolves p across both layers. Writable opens of lower-only
// files return a lazily-copying node (OTrunc skips the data copy);
// creates land in the upper layer, clearing any whiteout.
func (u *UnionFS) Open(p string, flags OpenFlag) (Node, error) {
	p = path.Clean("/" + p)
	l, err := u.locate(p)
	if err != nil {
		if !errors.Is(err, ErrNotExist) || flags&OCreate == 0 {
			return nil, err
		}
		// Create: the parent must exist and be a directory.
		u.mu.Lock()
		defer u.mu.Unlock()
		pl, perr := u.locate(path.Dir(p))
		if perr != nil {
			return nil, perr
		}
		if !pl.isDir() {
			return nil, ErrNotDir
		}
		if err := u.ensureUpperDirsLocked(path.Dir(p)); err != nil {
			return nil, err
		}
		// Create first, clear the whiteout after: if the create fails
		// (e.g. upper layer full), the whiteout must keep hiding the
		// deleted lower entry. The transient both-exist state is benign
		// — the upper entry shadows the name either way.
		n, err := u.upper.Open(p, flags)
		if err != nil {
			return nil, err
		}
		u.upper.Unlink(whiteoutPath(p)) // ignore error: may not exist
		return n, nil
	}
	if l.upOK {
		return u.upper.Open(p, flags)
	}
	// Lower only. The read-only layer rejects OCreate/OTrunc outright,
	// but open(2) with O_CREAT on an existing file is an ordinary open —
	// strip the flag before delegating.
	if l.loFi.IsDir {
		if flags.Writable() {
			return nil, ErrIsDir
		}
		return u.lower.Open(p, flags&^OCreate)
	}
	if !flags.Writable() && flags&OTrunc == 0 {
		return u.lower.Open(p, flags&^OCreate)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if flags&OTrunc != 0 {
		// Truncating open (EncFS truncates even on read-only handles, so
		// the union must too): the lower content is dead, no copy needed.
		return u.copyUpLocked(p, flags, false)
	}
	ln, err := u.lower.Open(p, ORdOnly)
	if err != nil {
		return nil, err
	}
	return &unionNode{u: u, path: p, flags: flags, gen: u.deadGen[p], cur: ln}, nil
}

// Mkdir creates a directory in the upper layer. Re-creating a name
// whited out over a lower directory makes the new directory opaque, so
// the old lower contents do not resurface.
func (u *UnionFS) Mkdir(p string) error {
	p = path.Clean("/" + p)
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, err := u.locate(p); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, p)
	} else if !errors.Is(err, ErrNotExist) {
		return err
	}
	pl, err := u.locate(path.Dir(p))
	if err != nil {
		return err
	}
	if !pl.isDir() {
		return ErrNotDir
	}
	if err := u.ensureUpperDirsLocked(path.Dir(p)); err != nil {
		return err
	}
	// Order matters for failure atomicity: the directory (and, when a
	// hidden lower dir exists, its opacity marker) must be in place
	// before the whiteout goes away, or a failure mid-sequence would
	// resurrect the deleted lower contents.
	wasWhiteout, err := u.hasWhiteout(p)
	if err != nil {
		return err
	}
	if err := u.upper.Mkdir(p); err != nil {
		return err
	}
	if wasWhiteout {
		if _, lerr := u.lower.Stat(p); lerr == nil {
			n, err := u.upper.Open(path.Join(p, opaqueMarker), OCreate|OWrOnly)
			if err != nil {
				return err
			}
			n.Close()
		}
		if err := u.upper.Unlink(whiteoutPath(p)); err != nil {
			return err
		}
	}
	return nil
}

// readDirLocked merges both layers' listings of a located directory.
func (u *UnionFS) readDirLocked(p string, l loc) ([]FileInfo, error) {
	var out []FileInfo
	seen := map[string]bool{}
	if l.upOK {
		ents, err := u.upper.ReadDir(p)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name, whPrefix) {
				continue
			}
			out = append(out, e)
			seen[e.Name] = true
		}
	}
	if l.loOK && l.loFi.IsDir {
		opq := false
		if l.upOK {
			var err error
			opq, err = u.isOpaque(p)
			if err != nil {
				return nil, err
			}
		}
		if !opq {
			ents, err := u.lower.ReadDir(p)
			if err != nil {
				return nil, err
			}
			for _, e := range ents {
				if seen[e.Name] {
					continue
				}
				if l.upOK {
					wh, err := u.hasWhiteout(path.Join(p, e.Name))
					if err != nil {
						return nil, err
					}
					if wh {
						continue
					}
				}
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// ReadDir lists the merged directory.
func (u *UnionFS) ReadDir(p string) ([]FileInfo, error) {
	p = path.Clean("/" + p)
	l, err := u.locate(p)
	if err != nil {
		return nil, err
	}
	if !l.isDir() {
		return nil, ErrNotDir
	}
	return u.readDirLocked(p, l)
}

// Stat describes the union view of p.
func (u *UnionFS) Stat(p string) (FileInfo, error) {
	l, err := u.locate(p)
	if err != nil {
		return FileInfo{}, err
	}
	return l.fi(), nil
}

// Unlink removes a file or empty directory from the union: upper
// entries are really deleted, lower entries get a whiteout.
func (u *UnionFS) Unlink(p string) error {
	p = path.Clean("/" + p)
	u.mu.Lock()
	defer u.mu.Unlock()
	l, err := u.locate(p)
	if err != nil {
		return err
	}
	if l.isDir() {
		ents, err := u.readDirLocked(p, l)
		if err != nil {
			return err
		}
		if len(ents) != 0 {
			return ErrNotEmpty
		}
	}
	// Whiteout before the upper deletion: if the whiteout creation
	// fails, nothing has been removed yet (the entry stays visible via
	// the upper layer, and the lower stays shadowed/merged); deleting
	// the upper copy first and then failing the whiteout would silently
	// roll the name back to stale image content.
	if l.loPresent {
		if err := u.setWhiteoutLocked(p); err != nil {
			return err
		}
	}
	if l.upOK {
		if l.upFi.IsDir {
			// Sweep markers so the upper unlink sees an empty dir.
			upEnts, err := u.upper.ReadDir(p)
			if err != nil {
				return err
			}
			for _, e := range upEnts {
				if err := u.upper.Unlink(path.Join(p, e.Name)); err != nil {
					return err
				}
			}
		}
		if err := u.upper.Unlink(p); err != nil {
			return err
		}
	}
	delete(u.copiedUp, p)
	u.deadGen[p]++
	return nil
}

// Rename moves old to new within the union. Lower-only files are copied
// up first; merged or lower directories cannot be renamed (the image is
// immutable), only directories living purely in the upper layer can.
func (u *UnionFS) Rename(oldp, newp string) error {
	oldp, newp = path.Clean("/"+oldp), path.Clean("/"+newp)
	u.mu.Lock()
	defer u.mu.Unlock()
	ol, err := u.locate(oldp)
	if err != nil {
		return err
	}
	if oldp == newp {
		return nil
	}
	if oldp == "/" || newp == "/" || strings.HasPrefix(newp, oldp+"/") {
		return fmt.Errorf("%w: rename into own subtree", ErrInvalid)
	}
	pl, err := u.locate(path.Dir(newp))
	if err != nil {
		return err
	}
	if !pl.isDir() {
		return ErrNotDir
	}
	nl, nerr := u.locate(newp)
	if nerr == nil {
		// Overwrite semantics as in rename(2).
		if nl.isDir() != ol.isDir() {
			if nl.isDir() {
				return ErrIsDir
			}
			return ErrNotDir
		}
	} else if !errors.Is(nerr, ErrNotExist) {
		return nerr
	}

	if ol.isDir() {
		// Target conflicts (ErrNotEmpty) are reported before the
		// union-specific immutability restriction, matching EncFS's
		// check order so the differential oracle holds for both.
		if nerr == nil {
			ents, err := u.readDirLocked(newp, nl)
			if err != nil {
				return err
			}
			if len(ents) != 0 {
				return ErrNotEmpty
			}
		}
		if ol.loOK {
			return fmt.Errorf("%w: directory lives in the image layer", ErrReadOnly)
		}
		// An opaque upper dir over a (hidden) lower dir can move: its
		// opacity marker travels with it, and the old name gets a
		// whiteout below.
		if nerr == nil {
			if err := u.unlinkLocated(newp, nl); err != nil {
				return err
			}
		}
		if err := u.ensureUpperDirsLocked(path.Dir(newp)); err != nil {
			return err
		}
		r, ok := u.upper.(Renamer)
		if !ok {
			return ErrReadOnly
		}
		if err := r.Rename(oldp, newp); err != nil {
			return err
		}
		if _, lerr := u.lower.Stat(newp); lerr == nil {
			// Without the opacity marker the image's children of newp
			// would merge into the moved directory — a failure here must
			// fail the rename (the whiteout below stays, keeping the
			// lower dir hidden at the target name).
			n, err := u.upper.Open(path.Join(newp, opaqueMarker), OCreate|OWrOnly)
			if err != nil {
				return err
			}
			n.Close()
		}
		// Only now retire the target's whiteout: a failed rename above
		// must leave a previously deleted lower entry hidden.
		u.upper.Unlink(whiteoutPath(newp))
		u.deadGen[oldp]++
		if ol.loPresent {
			return u.setWhiteoutLocked(oldp)
		}
		return nil
	}

	// File source: materialize in upper under the old name if needed,
	// then rename within the upper layer.
	if !ol.upOK {
		n, err := u.copyUpLocked(oldp, ORdWr, true)
		if err != nil {
			return err
		}
		n.Close()
		ol.upOK = true
	}
	if nerr == nil {
		if err := u.unlinkLocated(newp, nl); err != nil {
			return err
		}
	}
	if err := u.ensureUpperDirsLocked(path.Dir(newp)); err != nil {
		return err
	}
	r, ok := u.upper.(Renamer)
	if !ok {
		return ErrReadOnly
	}
	if err := r.Rename(oldp, newp); err != nil {
		return err
	}
	// Only now retire the target's whiteout (see the dir branch).
	u.upper.Unlink(whiteoutPath(newp))
	delete(u.copiedUp, oldp)
	u.copiedUp[newp] = true
	// The old name is gone (and the new name is a different object from
	// any pre-rename lazy handle's point of view).
	u.deadGen[oldp]++
	if ol.loPresent {
		return u.setWhiteoutLocked(oldp)
	}
	return nil
}

// unlinkLocated removes an already-located entry (rename-overwrite
// path). Whiteout first, like Unlink: failing halfway must never leave
// the name resolving to stale lower content. Caller holds u.mu.
func (u *UnionFS) unlinkLocated(p string, l loc) error {
	if l.loPresent {
		if err := u.setWhiteoutLocked(p); err != nil {
			return err
		}
	}
	if l.upOK {
		if l.upFi.IsDir {
			upEnts, err := u.upper.ReadDir(p)
			if err != nil {
				return err
			}
			for _, e := range upEnts {
				if err := u.upper.Unlink(path.Join(p, e.Name)); err != nil {
					return err
				}
			}
		}
		if err := u.upper.Unlink(p); err != nil {
			return err
		}
	}
	delete(u.copiedUp, p)
	u.deadGen[p]++
	return nil
}
