package fs

import "fmt"

// This file implements the Reed–Solomon erasure code beneath the
// BlockStore's striped layout (pfs.go): GF(2^8) arithmetic and a
// systematic encoding matrix, so each stripe of k data shards gains m
// parity shards and survives the loss of any m of the k+m.
//
// The code is the *durability* layer only. It reconstructs bytes; it
// never authenticates them. Every reconstructed stripe is re-verified
// against the MAC table before a single byte leaves the BlockStore, so
// parity can repair accidental corruption but cannot launder tampered
// data into "recovered" data.

// GF(2^8) with the AES-standard reduction polynomial x^8+x^4+x^3+x+1
// (0x11D with the implicit x^8).
const gfPoly = 0x11D

var (
	gfExp [512]byte // gfExp[i] = g^i, doubled so products skip a mod 255
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("fs: rs: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// mulAddSlice: dst[i] ^= c * src[i] — the inner loop of encode/decode, via
// a per-coefficient 256-entry product table.
func mulAddSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(gfLog[c])
	var table [256]byte
	for x := 1; x < 256; x++ {
		table[x] = gfExp[logC+int(gfLog[x])]
	}
	for i, s := range src {
		dst[i] ^= table[s]
	}
}

// rsCode is one (k data + m parity) erasure code instance.
type rsCode struct {
	k, m int
	// mat is the (k+m)×k systematic encoding matrix: the top k rows are
	// the identity (data shards pass through), the bottom m rows
	// generate parity. Derived from a Vandermonde matrix V by
	// normalizing with V_top⁻¹, which preserves the MDS property: every
	// k×k submatrix stays invertible, so ANY k surviving shards
	// reconstruct the stripe.
	mat [][]byte
}

func newRS(k, m int) (*rsCode, error) {
	if k < 1 || m < 1 || k+m > 255 {
		return nil, fmt.Errorf("fs: rs: bad geometry k=%d m=%d", k, m)
	}
	// Vandermonde rows over distinct points g^0..g^(k+m-1).
	v := make([][]byte, k+m)
	for i := range v {
		v[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			v[i][j] = gfPow(gfExp[i], j)
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = append([]byte(nil), v[i][:k]...)
	}
	inv, err := gfMatInvert(top)
	if err != nil {
		return nil, err
	}
	mat := gfMatMul(v, inv)
	return &rsCode{k: k, m: m, mat: mat}, nil
}

func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(int(gfLog[a])*n)%255]
}

// gfMatMul returns a×b for a (r×n) and b (n×n).
func gfMatMul(a, b [][]byte) [][]byte {
	r, n := len(a), len(b)
	out := make([][]byte, r)
	for i := 0; i < r; i++ {
		out[i] = make([]byte, n)
		for j := 0; j < n; j++ {
			var acc byte
			for t := 0; t < n; t++ {
				acc ^= gfMul(a[i][t], b[t][j])
			}
			out[i][j] = acc
		}
	}
	return out
}

// gfMatInvert inverts a square matrix by Gauss–Jordan elimination.
func gfMatInvert(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augment [m | I].
	work := make([][]byte, n)
	for i := range work {
		work[i] = make([]byte, 2*n)
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("fs: rs: singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		// Normalize the pivot row.
		if inv := gfInv(work[col][col]); inv != 1 {
			for j := 0; j < 2*n; j++ {
				work[col][j] = gfMul(work[col][j], inv)
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			c := work[r][col]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= gfMul(c, work[col][j])
			}
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = append([]byte(nil), work[i][n:]...)
	}
	return out, nil
}

// encode fills the m parity shards from the k data shards. shards must
// hold k+m equal-length slices; the first k are inputs, the last m are
// overwritten.
func (c *rsCode) encode(shards [][]byte) {
	for p := 0; p < c.m; p++ {
		out := shards[c.k+p]
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.k; d++ {
			mulAddSlice(c.mat[c.k+p][d], shards[d], out)
		}
	}
}

// reconstruct rebuilds every shard whose present flag is false, from
// any k present shards. shards[i] may be nil when !present[i]; all
// present shards must share one length. On success every slot of
// shards is populated and internally consistent (parity re-encoded
// from the reconstructed data).
func (c *rsCode) reconstruct(shards [][]byte, present []bool) error {
	nPresent := 0
	size := 0
	for i, ok := range present {
		if ok {
			nPresent++
			size = len(shards[i])
		}
	}
	if nPresent < c.k {
		return fmt.Errorf("fs: rs: only %d of %d shards present, need %d", nPresent, c.k+c.m, c.k)
	}

	// Select the first k present shards and the matching rows of the
	// encoding matrix; invert to get data back.
	rows := make([][]byte, 0, c.k)
	sub := make([][]byte, 0, c.k)
	for i := 0; i < c.k+c.m && len(rows) < c.k; i++ {
		if present[i] {
			rows = append(rows, shards[i])
			sub = append(sub, append([]byte(nil), c.mat[i]...))
		}
	}
	dec, err := gfMatInvert(sub)
	if err != nil {
		return err // cannot happen for an MDS matrix; defensive
	}
	// Rebuild missing data shards.
	for d := 0; d < c.k; d++ {
		if present[d] {
			continue
		}
		out := make([]byte, size)
		for t := 0; t < c.k; t++ {
			mulAddSlice(dec[d][t], rows[t], out)
		}
		shards[d] = out
	}
	// Rebuild missing parity from the (now complete) data shards.
	for p := 0; p < c.m; p++ {
		if present[c.k+p] {
			continue
		}
		out := make([]byte, size)
		for d := 0; d < c.k; d++ {
			mulAddSlice(c.mat[c.k+p][d], shards[d], out)
		}
		shards[c.k+p] = out
	}
	return nil
}
