package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path"
	"strings"
)

// Regular is an open file on the encrypted filesystem. Offsets live in the
// LibOS open-file descriptions; Regular is stateless position-wise.
type Regular struct {
	fs    *EncFS
	ino   int
	flags OpenFlag
	name  string
}

var _ Node = (*Regular)(nil)

// Open opens (and with OCreate, creates) a file.
func (fs *EncFS) Open(p string, flags OpenFlag) (Node, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(p)
	if err != nil {
		if flags&OCreate == 0 {
			return nil, err
		}
		dir, name, perr := fs.resolveParent(p)
		if perr != nil {
			return nil, perr
		}
		ino, err = fs.allocInode()
		if err != nil {
			return nil, err
		}
		in := inode{mode: modeFile, nlink: 1}
		if err := fs.writeInode(ino, &in); err != nil {
			return nil, err
		}
		if err := fs.addEntry(dir, name, ino); err != nil {
			return nil, err
		}
	} else {
		in, err := fs.readInode(ino)
		if err != nil {
			return nil, err
		}
		if in.mode == modeDir {
			if flags.Writable() {
				return nil, ErrIsDir
			}
		}
		if flags&OTrunc != 0 && in.mode == modeFile {
			if err := fs.truncateLocked(ino); err != nil {
				return nil, err
			}
		}
	}
	return &Regular{fs: fs, ino: ino, flags: flags, name: path.Base(p)}, nil
}

// ReadAt reads from the file at the given offset.
func (r *Regular) ReadAt(p []byte, off int64) (int, error) {
	if !r.flags.Readable() {
		return 0, ErrReadOnly
	}
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return r.fs.readAtLocked(r.ino, p, off)
}

// WriteAt writes to the file at the given offset.
func (r *Regular) WriteAt(p []byte, off int64) (int, error) {
	if !r.flags.Writable() {
		return 0, ErrReadOnly
	}
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return r.fs.writeAtLocked(r.ino, p, off)
}

// Size returns the current file size.
func (r *Regular) Size() int64 {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	in, err := r.fs.readInode(r.ino)
	if err != nil {
		return 0
	}
	return int64(in.size)
}

// Close releases the handle (data durability needs Sync).
func (r *Regular) Close() error { return nil }

// Mkdir creates a directory.
func (fs *EncFS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.resolve(p); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	dir, name, err := fs.resolveParent(p)
	if err != nil {
		return err
	}
	ino, err := fs.allocInode()
	if err != nil {
		return err
	}
	in := inode{mode: modeDir, nlink: 2}
	if err := fs.writeInode(ino, &in); err != nil {
		return err
	}
	return fs.addEntry(dir, name, ino)
}

// Unlink removes a file or an empty directory.
func (fs *EncFS) Unlink(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(p)
	if err != nil {
		return err
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	if in.mode == modeDir {
		empty, err := fs.dirEmpty(ino)
		if err != nil {
			return err
		}
		if !empty {
			return ErrNotEmpty
		}
	}
	dir, name, err := fs.resolveParent(p)
	if err != nil {
		return err
	}
	if err := fs.removeEntry(dir, name); err != nil {
		return err
	}
	if err := fs.truncateLocked(ino); err != nil {
		return err
	}
	return fs.writeInode(ino, &inode{})
}

// Rename moves oldp to newp, atomically replacing an existing target
// (file over file, directory over empty directory), as rename(2).
func (fs *EncFS) Rename(oldp, newp string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oc, nc := path.Clean("/"+oldp), path.Clean("/"+newp)
	ino, err := fs.resolve(oc)
	if err != nil {
		return err
	}
	if oc == nc {
		return nil
	}
	if oc == "/" || nc == "/" {
		return fmt.Errorf("%w: rename of root", ErrInvalid)
	}
	// Directory cycle: EncFS paths are canonical (no hard links to
	// directories), so a prefix check suffices.
	if strings.HasPrefix(nc, oc+"/") {
		return fmt.Errorf("%w: rename into own subtree", ErrInvalid)
	}
	odir, oname, err := fs.resolveParent(oc)
	if err != nil {
		return err
	}
	ndir, nname, err := fs.resolveParent(nc)
	if err != nil {
		return err
	}
	if len(nname) > maxNameLen {
		return ErrNameTooLong
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	tIno, terr := fs.lookup(ndir, nname)
	if terr != nil && !errors.Is(terr, ErrNotExist) {
		// A corrupt dirent block must not be mistaken for "no target":
		// proceeding could install a duplicate name in the directory.
		return terr
	}
	if terr == nil {
		tin, err := fs.readInode(tIno)
		if err != nil {
			return err
		}
		if in.mode == modeDir {
			if tin.mode != modeDir {
				return ErrNotDir
			}
			empty, err := fs.dirEmpty(tIno)
			if err != nil {
				return err
			}
			if !empty {
				return ErrNotEmpty
			}
		} else if tin.mode == modeDir {
			return ErrIsDir
		}
		if err := fs.removeEntry(ndir, nname); err != nil {
			return err
		}
		if err := fs.truncateLocked(tIno); err != nil {
			return err
		}
		if err := fs.writeInode(tIno, &inode{}); err != nil {
			return err
		}
	}
	// Link under the new name before unlinking the old one: a failure
	// (e.g. ErrFull growing the target directory) leaves the file
	// reachable at its old path rather than lost.
	if err := fs.addEntry(ndir, nname, ino); err != nil {
		return err
	}
	return fs.removeEntry(odir, oname)
}

var _ Renamer = (*EncFS)(nil)

// ReadDir lists a directory.
func (fs *EncFS) ReadDir(p string) ([]FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(p)
	if err != nil {
		return nil, err
	}
	din, err := fs.readInode(ino)
	if err != nil {
		return nil, err
	}
	if din.mode != modeDir {
		return nil, ErrNotDir
	}
	var out []FileInfo
	ents := int(din.size) / direntSize
	buf := make([]byte, direntSize)
	for i := 0; i < ents; i++ {
		if _, err := fs.readAtLocked(ino, buf, int64(i*direntSize)); err != nil {
			return nil, err
		}
		cIno := binary.LittleEndian.Uint32(buf)
		if cIno == 0 {
			continue
		}
		nl := int(buf[4])
		cin, err := fs.readInode(int(cIno))
		if err != nil {
			return nil, err
		}
		out = append(out, FileInfo{
			Name:  string(buf[5 : 5+nl]),
			Size:  int64(cin.size),
			IsDir: cin.mode == modeDir,
		})
	}
	return out, nil
}

// Stat describes a path.
func (fs *EncFS) Stat(p string) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(p)
	if err != nil {
		return FileInfo{}, err
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: path.Base(p), Size: int64(in.size), IsDir: in.mode == modeDir}, nil
}

var _ FileSystem = (*EncFS)(nil)
