package fs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/hostos"
)

// newUnion builds the LibOS root mount shape: a fresh EncFS upper over
// a packed image lower.
func newUnion(t testing.TB) (*UnionFS, map[string][]byte) {
	t.Helper()
	files, blob, root := buildTestImage(t)
	h := hostos.New()
	h.WriteFile("base.img", blob)
	lower, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	store, err := CreateStore(h, "enc.img", KeyFromString("u"), 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	upper, err := Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	return NewUnionFS(upper, lower), files
}

func readAll(t *testing.T, f FileSystem, p string) []byte {
	t.Helper()
	n, err := f.Open(p, ORdOnly)
	if err != nil {
		t.Fatalf("open %s: %v", p, err)
	}
	defer n.Close()
	buf := make([]byte, n.Size())
	if _, err := n.ReadAt(buf, 0); err != nil {
		t.Fatalf("read %s: %v", p, err)
	}
	return buf
}

func names(ents []FileInfo) []string {
	var out []string
	for _, e := range ents {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

func TestUnionReadThrough(t *testing.T) {
	u, files := newUnion(t)
	for p, want := range files {
		if got := readAll(t, u, p); !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch through union", p)
		}
	}
	if fi, err := u.Stat("/etc"); err != nil || !fi.IsDir {
		t.Fatalf("stat /etc: %+v, %v", fi, err)
	}
}

func TestUnionCopyUpOnFirstWrite(t *testing.T) {
	u, files := newUnion(t)
	before := Stats()
	n, err := u.Open("/etc/hosts", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	// Reading alone must not copy up.
	buf := make([]byte, 4)
	if _, err := n.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.CopyUps != 0 {
		t.Fatalf("read-only use of a RW handle copied up (%d)", d.CopyUps)
	}
	// First write copies up and preserves the original content.
	if _, err := n.WriteAt([]byte("10.0.0.1"), 0); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.CopyUps != 1 {
		t.Fatalf("copy-ups = %d, want 1", d.CopyUps)
	}
	want := append([]byte("10.0.0.1"), files["/etc/hosts"][8:]...)
	if got := readAll(t, u, "/etc/hosts"); !bytes.Equal(got, want) {
		t.Fatalf("after copy-up: %q, want %q", got, want)
	}
	// A second write to the same handle must not copy again.
	if _, err := n.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.CopyUps != 1 {
		t.Fatalf("second write copied up again (%d)", d.CopyUps)
	}
}

func TestUnionCopyUpTruncSkipsData(t *testing.T) {
	u, _ := newUnion(t)
	n, err := u.Open("/bin/tool", OWrOnly|OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteAt([]byte("tiny"), 0); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, u, "/bin/tool"); string(got) != "tiny" {
		t.Fatalf("after trunc copy-up: %d bytes", len(got))
	}
}

func TestUnionTwoHandlesSeeOneCopyUp(t *testing.T) {
	u, _ := newUnion(t)
	a, err := u.Open("/etc/app/conf", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Open("/etc/app/conf", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteAt([]byte("A"), 0); err != nil {
		t.Fatal(err)
	}
	// b must observe a's copy-up, not resurrect lower content over it.
	if _, err := b.WriteAt([]byte("B"), 1); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, u, "/etc/app/conf")
	if string(got[:2]) != "AB" {
		t.Fatalf("handles diverged: %q", got)
	}
}

func TestUnionWhiteoutUnlink(t *testing.T) {
	u, _ := newUnion(t)
	before := Stats()
	if err := u.Unlink("/etc/hosts"); err != nil {
		t.Fatal(err)
	}
	if d := Stats().Sub(before); d.Whiteouts != 1 {
		t.Fatalf("whiteouts = %d", d.Whiteouts)
	}
	if _, err := u.Stat("/etc/hosts"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after unlink: %v", err)
	}
	if _, err := u.Open("/etc/hosts", ORdOnly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open after unlink: %v", err)
	}
	// The whiteout marker must not leak into listings.
	ents, err := u.ReadDir("/etc")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(ents); len(got) != 1 || got[0] != "app" {
		t.Fatalf("readdir /etc after unlink = %v", got)
	}
	// Re-create over the whiteout.
	n, err := u.Open("/etc/hosts", OCreate|OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteAt([]byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, u, "/etc/hosts"); string(got) != "fresh" {
		t.Fatalf("recreated content: %q", got)
	}
}

func TestUnionUnlinkCopiedUpFile(t *testing.T) {
	u, _ := newUnion(t)
	n, _ := u.Open("/etc/hosts", ORdWr)
	if _, err := n.WriteAt([]byte("mod"), 0); err != nil {
		t.Fatal(err)
	}
	// Now present in both layers: unlink must delete upper AND whiteout
	// lower, or the image copy resurfaces.
	if err := u.Unlink("/etc/hosts"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Stat("/etc/hosts"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("image copy resurfaced: %v", err)
	}
}

func TestUnionMergedReadDir(t *testing.T) {
	u, _ := newUnion(t)
	// New upper file next to lower files.
	n, err := u.Open("/etc/extra", OCreate|OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	ents, err := u.ReadDir("/etc")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(ents); !equalStrings(got, []string{"app", "extra", "hosts"}) {
		t.Fatalf("merged readdir = %v", got)
	}
	// Shadowing: copy-up must not duplicate the name.
	w, _ := u.Open("/etc/hosts", ORdWr)
	if _, err := w.WriteAt([]byte("z"), 0); err != nil {
		t.Fatal(err)
	}
	ents, _ = u.ReadDir("/etc")
	if got := names(ents); !equalStrings(got, []string{"app", "extra", "hosts"}) {
		t.Fatalf("readdir after copy-up = %v", got)
	}
}

func TestUnionMkdirAndNestedCreate(t *testing.T) {
	u, _ := newUnion(t)
	// Create below a lower-only directory chain: parents materialize in
	// the upper layer without disturbing the merge.
	n, err := u.Open("/data/nested/new.txt", OCreate|OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	ents, err := u.ReadDir("/data/nested")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(ents); !equalStrings(got, []string{"deep", "new.txt"}) {
		t.Fatalf("readdir /data/nested = %v", got)
	}
	if err := u.Mkdir("/data/nested"); !errors.Is(err, ErrExist) {
		t.Fatalf("mkdir over merged dir: %v", err)
	}
	if err := u.Mkdir("/newdir/sub"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("mkdir with missing parent: %v", err)
	}
}

func TestUnionOpaqueDirAfterWhiteout(t *testing.T) {
	u, _ := newUnion(t)
	// Empty the lower dir /etc/app, remove it, then re-create it: the
	// old image children must not resurface.
	if err := u.Unlink("/etc/app/conf"); err != nil {
		t.Fatal(err)
	}
	if err := u.Unlink("/etc/app"); err != nil {
		t.Fatal(err)
	}
	if err := u.Mkdir("/etc/app"); err != nil {
		t.Fatal(err)
	}
	ents, err := u.ReadDir("/etc/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("resurrected lower children: %v", names(ents))
	}
	if _, err := u.Stat("/etc/app/conf"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat through opaque dir: %v", err)
	}
}

func TestUnionUnlinkNonEmptyDir(t *testing.T) {
	u, _ := newUnion(t)
	if err := u.Unlink("/etc"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("unlink non-empty union dir: %v", err)
	}
}

func TestUnionRenameFile(t *testing.T) {
	u, files := newUnion(t)
	// Lower-only file: rename copies up then whiteouts the old name.
	if err := u.Rename("/etc/hosts", "/etc/hosts.bak"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Stat("/etc/hosts"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name survives rename: %v", err)
	}
	if got := readAll(t, u, "/etc/hosts.bak"); !bytes.Equal(got, files["/etc/hosts"]) {
		t.Fatal("renamed content mismatch")
	}
	// Cross-dir rename with overwrite of a lower file.
	if err := u.Rename("/etc/hosts.bak", "/data/nested/deep"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, u, "/data/nested/deep"); !bytes.Equal(got, files["/etc/hosts"]) {
		t.Fatal("overwriting rename content mismatch")
	}
	ents, _ := u.ReadDir("/etc")
	if got := names(ents); !equalStrings(got, []string{"app"}) {
		t.Fatalf("readdir /etc after renames = %v", got)
	}
}

func TestUnionRenameDirs(t *testing.T) {
	u, _ := newUnion(t)
	// Upper-only dir renames fine.
	if err := u.Mkdir("/work"); err != nil {
		t.Fatal(err)
	}
	n, _ := u.Open("/work/f", OCreate|OWrOnly)
	n.Close()
	if err := u.Rename("/work", "/done"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Stat("/done/f"); err != nil {
		t.Fatalf("renamed dir lost children: %v", err)
	}
	// Directories living in the image layer cannot be renamed.
	if err := u.Rename("/etc", "/etc2"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("rename of image dir: %v", err)
	}
	if err := u.Rename("/done", "/done/sub"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("rename into own subtree: %v", err)
	}
}

func TestUnionReservedNames(t *testing.T) {
	u, _ := newUnion(t)
	if _, err := u.Open("/.wh.secret", OCreate|OWrOnly); !errors.Is(err, ErrReservedName) {
		t.Fatalf("create reserved name: %v", err)
	}
	if _, err := u.Stat("/etc/.wh.hosts"); !errors.Is(err, ErrReservedName) {
		t.Fatalf("stat reserved name: %v", err)
	}
	if err := u.Mkdir("/.wh.d"); !errors.Is(err, ErrReservedName) {
		t.Fatalf("mkdir reserved name: %v", err)
	}
}

func TestUnionUpperPersistsAcrossRemount(t *testing.T) {
	// Copy-up and whiteouts live in the encrypted upper layer, so they
	// must survive an enclave restart (remount of both layers).
	files, blob, root := buildTestImage(t)
	h := hostos.New()
	h.WriteFile("base.img", blob)
	key := KeyFromString("persist")
	store, _ := CreateStore(h, "enc.img", key, 2048)
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	upper, _ := Mount(store)
	lower, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnionFS(upper, lower)
	n, err := u.Open("/etc/hosts", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteAt([]byte("CHANGED!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := u.Unlink("/bin/tool"); err != nil {
		t.Fatal(err)
	}
	if err := upper.Sync(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(h, "enc.img", key)
	if err != nil {
		t.Fatal(err)
	}
	upper2, err := Mount(store2)
	if err != nil {
		t.Fatal(err)
	}
	lower2, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	u2 := NewUnionFS(upper2, lower2)
	want := append([]byte("CHANGED!"), files["/etc/hosts"][8:]...)
	if got := readAll(t, u2, "/etc/hosts"); !bytes.Equal(got, want) {
		t.Fatalf("copy-up lost across remount: %q", got)
	}
	if _, err := u2.Stat("/bin/tool"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("whiteout lost across remount: %v", err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestUnionConcurrentAccess hammers the union from several goroutines
// (reads, copy-up writes, unlinks, creates, readdirs) — run under
// -race in CI, it guards the copy-up/whiteout critical sections.
func TestUnionConcurrentAccess(t *testing.T) {
	u, _ := newUnion(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (g + i) % 4 {
				case 0: // copy-up write race on a shared lower file
					if n, err := u.Open("/bin/tool", ORdWr); err == nil {
						n.WriteAt([]byte{byte(g)}, int64(g))
						n.Close()
					}
				case 1: // reads through both layers
					if n, err := u.Open("/etc/app/conf", ORdOnly); err == nil {
						buf := make([]byte, 4)
						n.ReadAt(buf, 0)
						n.Close()
					}
					u.ReadDir("/etc")
				case 2: // private file churn
					p := fmt.Sprintf("/data/g%d", g)
					if n, err := u.Open(p, OCreate|ORdWr); err == nil {
						n.WriteAt([]byte("x"), 0)
						n.Close()
					}
					u.Unlink(p)
				case 3:
					u.Stat("/data/nested/deep")
					u.ReadDir("/")
				}
			}
		}(g)
	}
	wg.Wait()
	// The shared file must have copied up exactly once and still be
	// readable and block-consistent.
	if _, err := u.Stat("/bin/tool"); err != nil {
		t.Fatal(err)
	}
	n, err := u.Open("/bin/tool", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if n.Size() == 0 {
		t.Fatal("copy-up lost the file content")
	}
}

func TestUnionOpenCreateOnLowerOnlyFile(t *testing.T) {
	// open(O_RDONLY|O_CREAT) of a file that exists only in the image
	// layer is an ordinary open — it must succeed without copying up
	// (the read-only lower layer rejects OCreate, so the union has to
	// strip it when delegating).
	u, files := newUnion(t)
	before := Stats()
	n, err := u.Open("/etc/hosts", ORdOnly|OCreate)
	if err != nil {
		t.Fatalf("O_CREAT open of existing lower file: %v", err)
	}
	got := make([]byte, len(files["/etc/hosts"]))
	if _, err := n.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["/etc/hosts"]) {
		t.Fatal("content mismatch")
	}
	if d := Stats().Sub(before); d.CopyUps != 0 {
		t.Fatalf("plain open copied up (%d)", d.CopyUps)
	}
}

// failFS wraps the upper layer and fails selected operations — the
// whiteout-atomicity tests use it to model an out-of-space encrypted
// layer at the worst possible moment.
type failFS struct {
	FileSystem
	failMkdir bool
	failOpen  string // path whose Open fails
}

func (f *failFS) Mkdir(p string) error {
	if f.failMkdir {
		return ErrFull
	}
	return f.FileSystem.Mkdir(p)
}

func (f *failFS) Open(p string, flags OpenFlag) (Node, error) {
	if f.failOpen != "" && p == f.failOpen {
		return nil, ErrFull
	}
	return f.FileSystem.Open(p, flags)
}

func (f *failFS) Rename(oldp, newp string) error {
	return f.FileSystem.(Renamer).Rename(oldp, newp)
}

// TestUnionWhiteoutSurvivesFailedMkdir: a Mkdir over a whited-out image
// directory that fails (upper layer full) must leave the whiteout in
// place — the deleted image contents must not resurface.
func TestUnionWhiteoutSurvivesFailedMkdir(t *testing.T) {
	files, blob, root := buildTestImage(t)
	_ = files
	h := hostos.New()
	h.WriteFile("base.img", blob)
	lower, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := CreateStore(h, "enc.img", KeyFromString("w"), 2048)
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	enc, _ := Mount(store)
	upper := &failFS{FileSystem: enc}
	u := NewUnionFS(upper, lower)

	if err := u.Unlink("/etc/app/conf"); err != nil {
		t.Fatal(err)
	}
	if err := u.Unlink("/etc/app"); err != nil {
		t.Fatal(err)
	}
	upper.failMkdir = true
	if err := u.Mkdir("/etc/app"); err == nil {
		t.Fatal("injected Mkdir failure did not surface")
	}
	// The whiteout must still hide the deleted image directory.
	if _, err := u.Stat("/etc/app"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("failed mkdir resurrected the deleted dir: %v", err)
	}
	if _, err := u.Stat("/etc/app/conf"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("failed mkdir resurrected deleted contents: %v", err)
	}
	// After the layer recovers, the mkdir works and stays opaque.
	upper.failMkdir = false
	if err := u.Mkdir("/etc/app"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Stat("/etc/app/conf"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("recreated dir leaked old contents: %v", err)
	}
}

// TestUnionWhiteoutSurvivesFailedCreate: same property for the
// open(O_CREAT) path over a whited-out file.
func TestUnionWhiteoutSurvivesFailedCreate(t *testing.T) {
	files, blob, root := buildTestImage(t)
	h := hostos.New()
	h.WriteFile("base.img", blob)
	lower, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := CreateStore(h, "enc.img", KeyFromString("w2"), 2048)
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	enc, _ := Mount(store)
	upper := &failFS{FileSystem: enc}
	u := NewUnionFS(upper, lower)

	if err := u.Unlink("/etc/hosts"); err != nil {
		t.Fatal(err)
	}
	upper.failOpen = "/etc/hosts"
	if _, err := u.Open("/etc/hosts", OCreate|OWrOnly); err == nil {
		t.Fatal("injected create failure did not surface")
	}
	if _, err := u.Stat("/etc/hosts"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("failed create resurrected the deleted file: %v", err)
	}
	upper.failOpen = ""
	n, err := u.Open("/etc/hosts", OCreate|OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if fi, err := u.Stat("/etc/hosts"); err != nil || fi.Size != 0 {
		t.Fatalf("recreate after recovery: %+v, %v (image content %d bytes must stay hidden)",
			fi, err, len(files["/etc/hosts"]))
	}
}

// TestUnionWriteAfterUnlinkDoesNotResurrect: the open-then-unlink
// pattern. A lazily-copying handle opened before the unlink must not
// re-publish the deleted name via its deferred copy-up; its reads keep
// serving the (immutable) lower content, its writes fail.
func TestUnionWriteAfterUnlinkDoesNotResurrect(t *testing.T) {
	u, files := newUnion(t)
	n, err := u.Open("/etc/hosts", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Unlink("/etc/hosts"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteAt([]byte("zombie"), 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("write through unlinked handle: %v", err)
	}
	if _, err := u.Stat("/etc/hosts"); !errors.Is(err, ErrNotExist) {
		t.Fatal("deferred copy-up re-published the deleted name")
	}
	// Reads through the old handle still see the lower bytes.
	buf := make([]byte, 4)
	if _, err := n.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, files["/etc/hosts"][:4]) {
		t.Fatal("stale handle read diverged")
	}
	// A fresh create over the whiteout gets a NEW file; the old handle
	// must not suddenly write into it.
	c, err := u.Open("/etc/hosts", OCreate|OWrOnly)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	n.WriteAt([]byte("Z"), 0) // may fail; must not reach the new file
	got := readAll(t, u, "/etc/hosts")
	if len(got) != 0 {
		t.Fatalf("old handle leaked into recreated file: %q", got)
	}
}

// TestUnionUpperCorruptionFailsClosed: a tampered encrypted upper layer
// must surface ErrCorrupt through the union — never silently fall back
// to the pristine image content (that would be an undetected rollback
// of user data).
func TestUnionUpperCorruptionFailsClosed(t *testing.T) {
	files, blob, root := buildTestImage(t)
	h := hostos.New()
	h.WriteFile("base.img", blob)
	key := KeyFromString("uc")
	store, _ := CreateStore(h, "enc.img", key, 2048)
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	upper, _ := Mount(store)
	lower, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnionFS(upper, lower)
	n, err := u.Open("/etc/hosts", ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WriteAt([]byte("USERDATA"), 0); err != nil {
		t.Fatal(err)
	}
	if err := upper.Sync(); err != nil {
		t.Fatal(err)
	}

	// Host tampers the whole encrypted block-data area in EVERY backing
	// file (beyond any parity's reach), then the enclave "restarts"
	// (remounts both layers from host bytes).
	dataStart := store.cellOff(store.blockStripe(0, 0))
	for _, name := range store.BackingFiles() {
		for off := dataStart; off < h.FileSize(name); off += 512 {
			_ = h.FlipBit(name, off)
		}
	}
	store2, err := OpenStore(h, "enc.img", key)
	if err != nil {
		t.Fatal(err) // header+table untouched; per-block MACs catch reads
	}
	upper2, err := Mount(store2)
	if err == nil {
		lower2, lerr := MountImage(h, "base.img", root)
		if lerr != nil {
			t.Fatal(lerr)
		}
		u2 := NewUnionFS(upper2, lower2)
		fi, serr := u2.Stat("/etc/hosts")
		if serr == nil {
			// Absolutely must not be the image's original bytes.
			if fi.Size == int64(len(files["/etc/hosts"])) {
				t.Fatal("corrupt upper layer fell back to stale image content")
			}
			t.Fatalf("stat of corrupt upper succeeded: %+v", fi)
		}
		if !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("error class = %v, want ErrCorrupt", serr)
		}
	}
}
