package fs

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// OpenFlag is the open(2)-style flag set of the LibOS VFS.
type OpenFlag int

// Open flags.
const (
	ORdOnly OpenFlag = 0
	OWrOnly OpenFlag = 1
	ORdWr   OpenFlag = 2

	OCreate OpenFlag = 0x40
	OTrunc  OpenFlag = 0x200
	OAppend OpenFlag = 0x400

	oAccMask OpenFlag = 3
)

// Readable reports whether the access mode permits reads.
func (f OpenFlag) Readable() bool { return f&oAccMask != OWrOnly }

// Writable reports whether the access mode permits writes.
func (f OpenFlag) Writable() bool { return f&oAccMask != ORdOnly }

// FileInfo describes a file for Stat and ReadDir.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
}

// Node is an open regular-file-like object. Stream objects (pipes,
// sockets, TTYs) live at the LibOS FD layer, not in the VFS.
type Node interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() int64
	Close() error
}

// BorrowReader is the zero-copy read interface: nodes whose data lives
// in an immutable in-enclave cache (the ImageFS verified page cache)
// lend a read-only view of [off, off+max) instead of copying it out.
// The returned slice aliases the cache and must not be modified; one
// call lends at most one cache block, so callers loop. A (nil, nil)
// return means EOF. sendfile uses this to move image bytes to a socket
// ring with no intermediate buffer — and because the lend comes from
// the verified cache, lazy Merkle verification still happens exactly
// once per block, on the first touch.
type BorrowReader interface {
	ReadBorrow(off int64, max int) ([]byte, error)
}

// FileSystem is one mountable filesystem.
type FileSystem interface {
	Open(path string, flags OpenFlag) (Node, error)
	Mkdir(path string) error
	Unlink(path string) error
	ReadDir(path string) ([]FileInfo, error)
	Stat(path string) (FileInfo, error)
}

// Renamer is the optional rename capability of a FileSystem. Read-only
// and special filesystems (devfs, procfs, the image layer) simply do not
// implement it.
type Renamer interface {
	Rename(oldpath, newpath string) error
}

// VFS dispatches paths across mounted filesystems by longest prefix, as
// the Occlum LibOS does for /, /dev and /proc.
type VFS struct {
	mounts []mountPoint
}

type mountPoint struct {
	prefix string
	fs     FileSystem
}

// NewVFS creates an empty mount table.
func NewVFS() *VFS { return &VFS{} }

// Mount attaches fs at prefix ("/" for the root filesystem). Longest
// prefix wins during resolution.
func (v *VFS) Mount(prefix string, fs FileSystem) {
	prefix = path.Clean("/" + prefix)
	v.mounts = append(v.mounts, mountPoint{prefix: prefix, fs: fs})
	sort.Slice(v.mounts, func(i, j int) bool {
		return len(v.mounts[i].prefix) > len(v.mounts[j].prefix)
	})
}

func (v *VFS) route(p string) (FileSystem, string, error) {
	p = path.Clean("/" + p)
	for _, m := range v.mounts {
		if p == m.prefix || strings.HasPrefix(p, m.prefix+"/") || m.prefix == "/" {
			rel := strings.TrimPrefix(p, m.prefix)
			if rel == "" {
				rel = "/"
			}
			return m.fs, rel, nil
		}
	}
	return nil, "", fmt.Errorf("%w: %s (nothing mounted)", ErrNotExist, p)
}

// Open resolves and opens a path.
func (v *VFS) Open(p string, flags OpenFlag) (Node, error) {
	fs, rel, err := v.route(p)
	if err != nil {
		return nil, err
	}
	return fs.Open(rel, flags)
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(p string) error {
	fs, rel, err := v.route(p)
	if err != nil {
		return err
	}
	return fs.Mkdir(rel)
}

// Unlink removes a file or empty directory.
func (v *VFS) Unlink(p string) error {
	fs, rel, err := v.route(p)
	if err != nil {
		return err
	}
	return fs.Unlink(rel)
}

// ReadDir lists a directory.
func (v *VFS) ReadDir(p string) ([]FileInfo, error) {
	fs, rel, err := v.route(p)
	if err != nil {
		return nil, err
	}
	return fs.ReadDir(rel)
}

// Stat describes a path.
func (v *VFS) Stat(p string) (FileInfo, error) {
	fs, rel, err := v.route(p)
	if err != nil {
		return FileInfo{}, err
	}
	return fs.Stat(rel)
}

// Rename moves oldp to newp. Both paths must resolve to the same mount
// (no cross-filesystem moves, as rename(2)'s EXDEV), and the mount must
// implement Renamer.
func (v *VFS) Rename(oldp, newp string) error {
	ofs, orel, err := v.route(oldp)
	if err != nil {
		return err
	}
	nfs, nrel, err := v.route(newp)
	if err != nil {
		return err
	}
	if ofs != nfs {
		return fmt.Errorf("%w: %s -> %s", ErrCrossDevice, oldp, newp)
	}
	r, ok := ofs.(Renamer)
	if !ok {
		return ErrReadOnly
	}
	return r.Rename(orel, nrel)
}
