package fs

import (
	"fmt"
	"io"
	"math/rand"
	"path"
	"sync"
)

// DevFS is the /dev special filesystem: a handful of device nodes
// implemented entirely inside the enclave, as in the paper's §6.
type DevFS struct {
	mu      sync.Mutex
	console io.Writer
	rng     *rand.Rand
}

// NewDevFS creates a /dev with null, zero, urandom and console. Writes to
// /dev/console go to the provided writer (the LibOS wires it to the
// host's stdout); a nil writer discards them.
func NewDevFS(console io.Writer) *DevFS {
	return &DevFS{console: console, rng: rand.New(rand.NewSource(0x0cc1))}
}

var _ FileSystem = (*DevFS)(nil)

var devNames = []string{"null", "zero", "urandom", "console"}

// Open opens a device node.
func (d *DevFS) Open(p string, flags OpenFlag) (Node, error) {
	name := path.Base(path.Clean("/" + p))
	for _, dn := range devNames {
		if name == dn {
			return &devNode{fs: d, kind: dn}, nil
		}
	}
	return nil, fmt.Errorf("%w: /dev/%s", ErrNotExist, name)
}

// Mkdir is not supported on devfs.
func (d *DevFS) Mkdir(string) error { return ErrReadOnly }

// Unlink is not supported on devfs.
func (d *DevFS) Unlink(string) error { return ErrReadOnly }

// ReadDir lists the device nodes.
func (d *DevFS) ReadDir(p string) ([]FileInfo, error) {
	if path.Clean("/"+p) != "/" {
		return nil, ErrNotDir
	}
	var out []FileInfo
	for _, n := range devNames {
		out = append(out, FileInfo{Name: n})
	}
	return out, nil
}

// Stat describes a device node.
func (d *DevFS) Stat(p string) (FileInfo, error) {
	if path.Clean("/"+p) == "/" {
		return FileInfo{Name: "dev", IsDir: true}, nil
	}
	if _, err := d.Open(p, ORdOnly); err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: path.Base(p)}, nil
}

type devNode struct {
	fs   *DevFS
	kind string
}

func (n *devNode) ReadAt(p []byte, off int64) (int, error) {
	switch n.kind {
	case "null", "console":
		return 0, io.EOF
	case "zero":
		for i := range p {
			p[i] = 0
		}
		return len(p), nil
	case "urandom":
		n.fs.mu.Lock()
		defer n.fs.mu.Unlock()
		n.fs.rng.Read(p)
		return len(p), nil
	}
	return 0, ErrNotExist
}

func (n *devNode) WriteAt(p []byte, off int64) (int, error) {
	switch n.kind {
	case "null", "zero", "urandom":
		return len(p), nil
	case "console":
		n.fs.mu.Lock()
		defer n.fs.mu.Unlock()
		if n.fs.console != nil {
			return n.fs.console.Write(p)
		}
		return len(p), nil
	}
	return 0, ErrNotExist
}

func (n *devNode) Size() int64  { return 0 }
func (n *devNode) Close() error { return nil }
