package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path"
	"strings"
	"sync"
)

// Filesystem errors.
var (
	// ErrNotExist reports a missing path.
	ErrNotExist = errors.New("fs: no such file or directory")
	// ErrExist reports a path that already exists.
	ErrExist = errors.New("fs: file exists")
	// ErrIsDir reports a file operation on a directory.
	ErrIsDir = errors.New("fs: is a directory")
	// ErrNotDir reports a directory operation on a file.
	ErrNotDir = errors.New("fs: not a directory")
	// ErrNotEmpty reports removing a non-empty directory.
	ErrNotEmpty = errors.New("fs: directory not empty")
	// ErrNameTooLong reports a path component over 58 bytes.
	ErrNameTooLong = errors.New("fs: name too long")
	// ErrReadOnly reports a write through a read-only handle or
	// filesystem.
	ErrReadOnly = errors.New("fs: read-only")
	// ErrCrossDevice reports a rename across mounts (EXDEV).
	ErrCrossDevice = errors.New("fs: cross-device rename")
	// ErrInvalid reports a structurally invalid operation, e.g. renaming
	// a directory into its own subtree (EINVAL).
	ErrInvalid = errors.New("fs: invalid operation")
)

const (
	inodeSize     = 128
	inodesPerBlk  = BlockSize / inodeSize
	numDirect     = 24
	ptrsPerBlk    = BlockSize / 4
	direntSize    = 64
	maxNameLen    = 58
	modeFile      = 1
	modeDir       = 2
	defaultInodes = 1024
)

type inode struct {
	mode     uint16
	nlink    uint16
	size     uint64
	direct   [numDirect]uint32
	indirect uint32
	dblIndir uint32
}

func (in *inode) marshal() []byte {
	b := make([]byte, inodeSize)
	binary.LittleEndian.PutUint16(b[0:], in.mode)
	binary.LittleEndian.PutUint16(b[2:], in.nlink)
	binary.LittleEndian.PutUint64(b[8:], in.size)
	for i, p := range in.direct {
		binary.LittleEndian.PutUint32(b[16+4*i:], p)
	}
	binary.LittleEndian.PutUint32(b[16+4*numDirect:], in.indirect)
	binary.LittleEndian.PutUint32(b[20+4*numDirect:], in.dblIndir)
	return b
}

func unmarshalInode(b []byte) inode {
	var in inode
	in.mode = binary.LittleEndian.Uint16(b[0:])
	in.nlink = binary.LittleEndian.Uint16(b[2:])
	in.size = binary.LittleEndian.Uint64(b[8:])
	for i := range in.direct {
		in.direct[i] = binary.LittleEndian.Uint32(b[16+4*i:])
	}
	in.indirect = binary.LittleEndian.Uint32(b[16+4*numDirect:])
	in.dblIndir = binary.LittleEndian.Uint32(b[20+4*numDirect:])
	return in
}

// EncFS is Occlum's writable encrypted filesystem: a Unix-like filesystem
// (superblock, bitmap, inode table, directories) over a protected block
// store, with a page cache shared by every SIP in the enclave.
type EncFS struct {
	mu    sync.Mutex
	store *BlockStore

	numInodes   int
	bitmapStart int
	bitmapBlks  int
	inodeStart  int
	inodeBlks   int
	dataStart   int

	cache    map[int]*cpage
	cacheCap int

	// stats for /proc and tests
	reads, writes, hits uint64
}

type cpage struct {
	data  []byte
	dirty bool
}

func geometry(maxBlocks int) (bitmapBlks, inodeBlks int) {
	bitmapBlks = (maxBlocks + BlockSize*8 - 1) / (BlockSize * 8)
	inodeBlks = (defaultInodes + inodesPerBlk - 1) / inodesPerBlk
	return
}

// Mkfs formats the block store with an empty filesystem.
func Mkfs(store *BlockStore) error {
	bitmapBlks, inodeBlks := geometry(store.MaxBlocks())
	fs := &EncFS{
		store:       store,
		numInodes:   defaultInodes,
		bitmapStart: 1,
		bitmapBlks:  bitmapBlks,
		inodeStart:  1 + bitmapBlks,
		inodeBlks:   inodeBlks,
		dataStart:   1 + bitmapBlks + inodeBlks,
		cache:       make(map[int]*cpage),
		cacheCap:    1024,
	}
	// Superblock.
	sb := make([]byte, BlockSize)
	copy(sb, "OCFS1\x00\x00\x00")
	binary.LittleEndian.PutUint32(sb[8:], uint32(fs.numInodes))
	if err := store.WriteBlock(0, sb); err != nil {
		return err
	}
	// Mark metadata blocks used in the bitmap.
	for b := 0; b < fs.dataStart; b++ {
		if err := fs.setBitmap(b, true); err != nil {
			return err
		}
	}
	// Root directory: inode 1.
	root := inode{mode: modeDir, nlink: 2}
	if err := fs.writeInode(1, &root); err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	return nil
}

// Mount opens a formatted filesystem.
func Mount(store *BlockStore) (*EncFS, error) {
	sb, err := store.ReadBlock(0)
	if err != nil {
		return nil, err
	}
	if string(sb[:5]) != "OCFS1" {
		return nil, fmt.Errorf("%w: bad superblock", ErrBadKey)
	}
	bitmapBlks, inodeBlks := geometry(store.MaxBlocks())
	return &EncFS{
		store:       store,
		numInodes:   int(binary.LittleEndian.Uint32(sb[8:])),
		bitmapStart: 1,
		bitmapBlks:  bitmapBlks,
		inodeStart:  1 + bitmapBlks,
		inodeBlks:   inodeBlks,
		dataStart:   1 + bitmapBlks + inodeBlks,
		cache:       make(map[int]*cpage),
		cacheCap:    1024,
	}, nil
}

// --- Page cache ------------------------------------------------------------

func (fs *EncFS) getBlock(i int) (*cpage, error) {
	if p, ok := fs.cache[i]; ok {
		fs.hits++
		return p, nil
	}
	if len(fs.cache) >= fs.cacheCap {
		if err := fs.flushCacheLocked(); err != nil {
			return nil, err
		}
		fs.cache = make(map[int]*cpage)
	}
	data, err := fs.store.ReadBlock(i)
	if err != nil {
		return nil, err
	}
	fs.reads++
	p := &cpage{data: data}
	fs.cache[i] = p
	return p, nil
}

func (fs *EncFS) flushCacheLocked() error {
	for i, p := range fs.cache {
		if p.dirty {
			if err := fs.store.WriteBlock(i, p.data); err != nil {
				return err
			}
			fs.writes++
			p.dirty = false
		}
	}
	return nil
}

// Sync writes back every dirty page and persists the store's
// authentication state.
func (fs *EncFS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.flushCacheLocked(); err != nil {
		return err
	}
	return fs.store.Flush()
}

// CacheStats returns (device reads, device writes, cache hits).
func (fs *EncFS) CacheStats() (reads, writes, hits uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.reads, fs.writes, fs.hits
}

// --- Bitmap and inode helpers ----------------------------------------------

func (fs *EncFS) setBitmap(block int, used bool) error {
	blk := fs.bitmapStart + block/(BlockSize*8)
	p, err := fs.getBlock(blk)
	if err != nil {
		return err
	}
	bit := block % (BlockSize * 8)
	if used {
		p.data[bit/8] |= 1 << (bit % 8)
	} else {
		p.data[bit/8] &^= 1 << (bit % 8)
	}
	p.dirty = true
	return nil
}

func (fs *EncFS) allocBlock() (int, error) {
	for blk := 0; blk < fs.bitmapBlks; blk++ {
		p, err := fs.getBlock(fs.bitmapStart + blk)
		if err != nil {
			return 0, err
		}
		for i, by := range p.data {
			if by == 0xFF {
				continue
			}
			for bit := 0; bit < 8; bit++ {
				if by&(1<<bit) == 0 {
					block := blk*BlockSize*8 + i*8 + bit
					if block >= fs.store.MaxBlocks() {
						return 0, ErrFull
					}
					p.data[i] |= 1 << bit
					p.dirty = true
					// Fresh blocks read as zero.
					zp := &cpage{data: make([]byte, BlockSize), dirty: true}
					fs.cache[block] = zp
					return block, nil
				}
			}
		}
	}
	return 0, ErrFull
}

func (fs *EncFS) freeBlock(block int) error {
	delete(fs.cache, block)
	return fs.setBitmap(block, false)
}

func (fs *EncFS) readInode(ino int) (inode, error) {
	if ino < 1 || ino > fs.numInodes {
		return inode{}, fmt.Errorf("fs: bad inode %d", ino)
	}
	blk := fs.inodeStart + (ino-1)/inodesPerBlk
	p, err := fs.getBlock(blk)
	if err != nil {
		return inode{}, err
	}
	off := ((ino - 1) % inodesPerBlk) * inodeSize
	return unmarshalInode(p.data[off : off+inodeSize]), nil
}

func (fs *EncFS) writeInode(ino int, in *inode) error {
	blk := fs.inodeStart + (ino-1)/inodesPerBlk
	p, err := fs.getBlock(blk)
	if err != nil {
		return err
	}
	off := ((ino - 1) % inodesPerBlk) * inodeSize
	copy(p.data[off:off+inodeSize], in.marshal())
	p.dirty = true
	return nil
}

func (fs *EncFS) allocInode() (int, error) {
	for ino := 1; ino <= fs.numInodes; ino++ {
		in, err := fs.readInode(ino)
		if err != nil {
			return 0, err
		}
		if in.mode == 0 {
			return ino, nil
		}
	}
	return 0, ErrFull
}

// --- File block mapping ------------------------------------------------------

// fileBlock returns the device block holding file block fb of the inode,
// allocating it if alloc is set. Returns 0 for an unallocated hole.
func (fs *EncFS) fileBlock(in *inode, fb int, alloc bool) (int, error) {
	getPtr := func(tableBlk int, idx int) (int, error) {
		p, err := fs.getBlock(tableBlk)
		if err != nil {
			return 0, err
		}
		ptr := int(binary.LittleEndian.Uint32(p.data[idx*4:]))
		if ptr == 0 && alloc {
			nb, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint32(p.data[idx*4:], uint32(nb))
			p.dirty = true
			ptr = nb
		}
		return ptr, nil
	}

	switch {
	case fb < numDirect:
		ptr := int(in.direct[fb])
		if ptr == 0 && alloc {
			nb, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			in.direct[fb] = uint32(nb)
			ptr = nb
		}
		return ptr, nil
	case fb < numDirect+ptrsPerBlk:
		if in.indirect == 0 {
			if !alloc {
				return 0, nil
			}
			nb, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			in.indirect = uint32(nb)
		}
		return getPtr(int(in.indirect), fb-numDirect)
	default:
		fb -= numDirect + ptrsPerBlk
		if fb >= ptrsPerBlk*ptrsPerBlk {
			return 0, fmt.Errorf("fs: file too large")
		}
		if in.dblIndir == 0 {
			if !alloc {
				return 0, nil
			}
			nb, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			in.dblIndir = uint32(nb)
		}
		l1, err := getPtr(int(in.dblIndir), fb/ptrsPerBlk)
		if err != nil || l1 == 0 {
			return l1, err
		}
		return getPtr(l1, fb%ptrsPerBlk)
	}
}

func (fs *EncFS) readAtLocked(ino int, p []byte, off int64) (int, error) {
	in, err := fs.readInode(ino)
	if err != nil {
		return 0, err
	}
	if off >= int64(in.size) {
		return 0, nil
	}
	if int64(len(p)) > int64(in.size)-off {
		p = p[:int64(in.size)-off]
	}
	total := 0
	for len(p) > 0 {
		fb := int(off / BlockSize)
		bo := int(off % BlockSize)
		n := min(BlockSize-bo, len(p))
		blk, err := fs.fileBlock(&in, fb, false)
		if err != nil {
			return total, err
		}
		if blk == 0 {
			for i := 0; i < n; i++ {
				p[i] = 0
			}
		} else {
			cp, err := fs.getBlock(blk)
			if err != nil {
				return total, err
			}
			copy(p[:n], cp.data[bo:bo+n])
		}
		p = p[n:]
		off += int64(n)
		total += n
	}
	return total, nil
}

func (fs *EncFS) writeAtLocked(ino int, p []byte, off int64) (int, error) {
	in, err := fs.readInode(ino)
	if err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		fb := int(off / BlockSize)
		bo := int(off % BlockSize)
		n := min(BlockSize-bo, len(p))
		blk, err := fs.fileBlock(&in, fb, true)
		if err != nil {
			return total, err
		}
		cp, err := fs.getBlock(blk)
		if err != nil {
			return total, err
		}
		copy(cp.data[bo:bo+n], p[:n])
		cp.dirty = true
		p = p[n:]
		off += int64(n)
		total += n
	}
	if uint64(off) > in.size {
		in.size = uint64(off)
	}
	if err := fs.writeInode(ino, &in); err != nil {
		return total, err
	}
	return total, nil
}

// truncateLocked frees all blocks of the inode and zeroes its size.
func (fs *EncFS) truncateLocked(ino int) error {
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	nblocks := int((in.size + BlockSize - 1) / BlockSize)
	for fb := 0; fb < nblocks; fb++ {
		blk, err := fs.fileBlock(&in, fb, false)
		if err != nil {
			return err
		}
		if blk != 0 {
			if err := fs.freeBlock(blk); err != nil {
				return err
			}
		}
	}
	if in.indirect != 0 {
		if err := fs.freeBlock(int(in.indirect)); err != nil {
			return err
		}
	}
	if in.dblIndir != 0 {
		// Free the level-1 tables too.
		p, err := fs.getBlock(int(in.dblIndir))
		if err != nil {
			return err
		}
		for i := 0; i < ptrsPerBlk; i++ {
			l1 := binary.LittleEndian.Uint32(p.data[i*4:])
			if l1 != 0 {
				if err := fs.freeBlock(int(l1)); err != nil {
					return err
				}
			}
		}
		if err := fs.freeBlock(int(in.dblIndir)); err != nil {
			return err
		}
	}
	in.size = 0
	in.direct = [numDirect]uint32{}
	in.indirect, in.dblIndir = 0, 0
	return fs.writeInode(ino, &in)
}

// --- Directories -------------------------------------------------------------

func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// resolve walks a path to an inode number.
func (fs *EncFS) resolve(p string) (int, error) {
	ino := 1
	for _, comp := range splitPath(p) {
		next, err := fs.lookup(ino, comp)
		if err != nil {
			return 0, err
		}
		ino = next
	}
	return ino, nil
}

// resolveParent returns the inode of the parent directory and the final
// path component. The parent must actually be a directory: without the
// final mode check, creating "/f/child" under a regular file /f would
// hand the file's inode to addEntry, which would then append a dirent
// into the file's data (silent corruption, caught by the differential
// test).
func (fs *EncFS) resolveParent(p string) (int, string, error) {
	comps := splitPath(p)
	if len(comps) == 0 {
		return 0, "", fmt.Errorf("%w: root has no parent", ErrExist)
	}
	dir := 1
	for _, comp := range comps[:len(comps)-1] {
		next, err := fs.lookup(dir, comp)
		if err != nil {
			return 0, "", err
		}
		dir = next
	}
	din, err := fs.readInode(dir)
	if err != nil {
		return 0, "", err
	}
	if din.mode != modeDir {
		return 0, "", ErrNotDir
	}
	return dir, comps[len(comps)-1], nil
}

func (fs *EncFS) lookup(dirIno int, name string) (int, error) {
	din, err := fs.readInode(dirIno)
	if err != nil {
		return 0, err
	}
	if din.mode != modeDir {
		return 0, ErrNotDir
	}
	ents := int(din.size) / direntSize
	buf := make([]byte, direntSize)
	for i := 0; i < ents; i++ {
		if _, err := fs.readAtLocked(dirIno, buf, int64(i*direntSize)); err != nil {
			return 0, err
		}
		ino := binary.LittleEndian.Uint32(buf)
		if ino == 0 {
			continue
		}
		nl := int(buf[4])
		if string(buf[5:5+nl]) == name {
			return int(ino), nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
}

func (fs *EncFS) addEntry(dirIno int, name string, ino int) error {
	if len(name) > maxNameLen {
		return ErrNameTooLong
	}
	din, err := fs.readInode(dirIno)
	if err != nil {
		return err
	}
	ent := make([]byte, direntSize)
	binary.LittleEndian.PutUint32(ent, uint32(ino))
	ent[4] = byte(len(name))
	copy(ent[5:], name)
	// Reuse a free slot if any.
	ents := int(din.size) / direntSize
	buf := make([]byte, direntSize)
	for i := 0; i < ents; i++ {
		if _, err := fs.readAtLocked(dirIno, buf, int64(i*direntSize)); err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(buf) == 0 {
			_, err := fs.writeAtLocked(dirIno, ent, int64(i*direntSize))
			return err
		}
	}
	_, err = fs.writeAtLocked(dirIno, ent, int64(din.size))
	return err
}

func (fs *EncFS) removeEntry(dirIno int, name string) error {
	din, err := fs.readInode(dirIno)
	if err != nil {
		return err
	}
	ents := int(din.size) / direntSize
	buf := make([]byte, direntSize)
	for i := 0; i < ents; i++ {
		if _, err := fs.readAtLocked(dirIno, buf, int64(i*direntSize)); err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(buf) == 0 {
			continue
		}
		nl := int(buf[4])
		if string(buf[5:5+nl]) == name {
			zero := make([]byte, direntSize)
			_, err := fs.writeAtLocked(dirIno, zero, int64(i*direntSize))
			return err
		}
	}
	return fmt.Errorf("%w: %s", ErrNotExist, name)
}

func (fs *EncFS) dirEmpty(ino int) (bool, error) {
	din, err := fs.readInode(ino)
	if err != nil {
		return false, err
	}
	ents := int(din.size) / direntSize
	buf := make([]byte, direntSize)
	for i := 0; i < ents; i++ {
		if _, err := fs.readAtLocked(ino, buf, int64(i*direntSize)); err != nil {
			return false, err
		}
		if binary.LittleEndian.Uint32(buf) != 0 {
			return false, nil
		}
	}
	return true, nil
}
