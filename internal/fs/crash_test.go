package fs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hostos"
)

// TestCrashMidSyncConsistency cuts the host-write sequence of a Sync at
// every possible point (the fault-injecting host store drops all writes
// after the Nth) and remounts from host storage alone. Whatever the cut
// point, the remounted filesystem must:
//
//   - open and mount cleanly (the atomic header+table commit means the
//     host always holds a fully-consistent committed state);
//   - pass fsck (no leaked or double-allocated blocks, tree intact);
//   - equal exactly the tree at the last completed Sync, or — when the
//     cut spared the commit write — the tree at the interrupted Sync.
//
// The A/B block slots are what makes this hold: data writes of the
// interrupted epoch land on shadow slots, leaving every ciphertext the
// committed MAC table references untouched.
func TestCrashMidSyncConsistency(t *testing.T) {
	for _, seed := range []int64{5, 99} {
		maxCut := 1 << 30
		for cut := 0; cut <= maxCut; cut++ {
			h := hostos.New()
			key := KeyFromString("crash")
			store, err := CreateStore(h, "img", key, 2048)
			if err != nil {
				t.Fatal(err)
			}
			if err := Mkfs(store); err != nil {
				t.Fatal(err)
			}
			efs, err := Mount(store)
			if err != nil {
				t.Fatal(err)
			}
			d := &diffState{t: t, rng: rand.New(rand.NewSource(seed)), fs: efs, model: newModel()}
			d.applyOps(120)
			if err := efs.Sync(); err != nil {
				t.Fatal(err)
			}
			committed := d.model.clone()
			epochA := store.Epoch()
			d.applyOps(80)
			interrupted := d.model.clone()

			h.Inject("img*", hostos.CrashAfter(cut))
			if err := efs.Sync(); err != nil {
				t.Fatal(err) // drops are silent; the enclave can't see them
			}
			tripped := h.Heal("img*")

			// Remount purely from (possibly cut) host storage.
			store2, err := OpenStore(h, "img", key)
			if err != nil {
				t.Fatalf("seed %d cut %d: remount failed: %v", seed, cut, err)
			}
			efs2, err := Mount(store2)
			if err != nil {
				t.Fatalf("seed %d cut %d: %v", seed, cut, err)
			}
			if err := efs2.Fsck(); err != nil {
				t.Fatalf("seed %d cut %d: %v", seed, cut, err)
			}
			want := committed
			if store2.Epoch() != epochA {
				want = interrupted // the commit write made it through
			}
			chk := &diffState{t: t, fs: efs2, model: want, ops: cut}
			chk.compareTree()

			if !tripped {
				// The whole sync fit under the budget: larger cuts are
				// identical. Done with this seed.
				if store2.Epoch() == epochA {
					t.Fatalf("seed %d: full sync did not advance the epoch", seed)
				}
				t.Logf("seed %d: %d cut points all consistent", seed, cut)
				maxCut = -1
			}
		}
	}
}

// TestCrashRecoveredFSRemainsUsable goes one step further: after a
// mid-sync crash and remount, the filesystem must keep working — more
// random ops, another (complete) sync, another remount, still
// fsck-clean.
func TestCrashRecoveredFSRemainsUsable(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("crash2")
	store, err := CreateStore(h, "img", key, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	efs, _ := Mount(store)
	d := &diffState{t: t, rng: rand.New(rand.NewSource(17)), fs: efs, model: newModel()}
	d.applyOps(150)
	if err := efs.Sync(); err != nil {
		t.Fatal(err)
	}
	committed := d.model.clone()
	d.applyOps(60)
	h.Inject("img*", hostos.CrashAfter(2))
	_ = efs.Sync()
	if !h.Heal("img*") {
		t.Fatal("crash plan never tripped — cut too late to mean anything")
	}

	store2, err := OpenStore(h, "img", key)
	if err != nil {
		t.Fatal(err)
	}
	efs2, err := Mount(store2)
	if err != nil {
		t.Fatal(err)
	}
	d2 := &diffState{t: t, rng: rand.New(rand.NewSource(18)), fs: efs2, model: committed}
	d2.compareTree()
	d2.applyOps(150)
	if err := efs2.Sync(); err != nil {
		t.Fatal(err)
	}
	store3, err := OpenStore(h, "img", key)
	if err != nil {
		t.Fatal(err)
	}
	efs3, err := Mount(store3)
	if err != nil {
		t.Fatal(err)
	}
	if err := efs3.Fsck(); err != nil {
		t.Fatal(err)
	}
	d3 := &diffState{t: t, fs: efs3, model: d2.model}
	d3.compareTree()
}

// TestCrashMidSyncNeverServesCorruptData asserts the fail-closed side:
// across all cut points, no file read after remount may ever return
// bytes that differ from one of the two legitimate states — compareTree
// in TestCrashMidSyncConsistency proves equality, and this test spells
// out the integrity-error path by also exercising reads under a cut
// where shadow-slot data was partially written.
func TestCrashMidSyncNeverServesCorruptData(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("crash3")
	store, _ := CreateStore(h, "img", key, 512)
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	efs, _ := Mount(store)
	f, err := efs.Open("/x", ORdWr|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5*BlockSize)
	for i := range payload {
		payload[i] = 0xA1
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := efs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second pattern, crash after 3 block writes.
	for i := range payload {
		payload[i] = 0xB2
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	h.Inject("img*", hostos.CrashAfter(3))
	_ = efs.Sync()
	h.Heal("img*")

	store2, err := OpenStore(h, "img", key)
	if err != nil {
		t.Fatal(err)
	}
	efs2, err := Mount(store2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := efs2.Open("/x", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xA1 {
			t.Fatalf("byte %d = %#x: interrupted sync leaked half-new data", i, b)
		}
	}
}

// seedBigFiles adds count multi-block files (model kept in sync) so the
// repair/scrub crash batteries have a meaningful number of committed
// stripes to cut through.
func seedBigFiles(t *testing.T, d *diffState, efs *EncFS, count, blocksEach int) {
	t.Helper()
	for i := 0; i < count; i++ {
		p := fmt.Sprintf("/big%d", i)
		data := make([]byte, blocksEach*BlockSize)
		d.rng.Read(data)
		n, err := efs.Open(p, ORdWr|OCreate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		n.Close()
		if _, err := d.model.create(p, false); err != nil {
			t.Fatal(err)
		}
		if err := d.model.write(p, 0, data); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashDuringRepair cuts the host-write sequence of an offline
// Repair at every possible point. Repair only ever rewrites shards to
// the values the committed MAC table already authenticates, so a crash
// mid-repair must never change logical content: whatever the cut, a
// remount must fsck clean and equal the committed tree exactly — and a
// completed repair must leave the lost backing file fully rebuilt.
func TestCrashDuringRepair(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("crash-repair")
	store, err := CreateStore(h, "img", key, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	efs, _ := Mount(store)
	d := &diffState{t: t, rng: rand.New(rand.NewSource(23)), fs: efs, model: newModel()}
	d.applyOps(120)
	seedBigFiles(t, d, efs, 5, 8)
	if err := efs.Sync(); err != nil {
		t.Fatal(err)
	}
	committed := d.model.clone()

	// The host loses one backing file; snapshot the damaged state so
	// every cut starts from it.
	h.DropFiles("img.s2")
	damaged := h.CopyFiles("img.s*")

	maxCut := 1 << 30
	for cut := 0; cut <= maxCut; cut++ {
		h.DropFiles("img.s*")
		h.PutFiles(damaged)
		s2, err := OpenStore(h, "img", key)
		if err != nil {
			t.Fatalf("cut %d: open damaged image: %v", cut, err)
		}
		h.Inject("img.s*", hostos.CrashAfter(cut))
		_, _ = s2.Repair() // errors are not the point; state after the cut is
		tripped := h.Heal("img.s*")

		s3, err := OpenStore(h, "img", key)
		if err != nil {
			t.Fatalf("cut %d: reopen after cut repair: %v", cut, err)
		}
		efs3, err := Mount(s3)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := efs3.Fsck(); err != nil {
			t.Fatalf("cut %d: fsck: %v", cut, err)
		}
		chk := &diffState{t: t, fs: efs3, model: committed, ops: cut}
		chk.compareTree()

		if !tripped {
			// The whole repair fit under the budget: the lost file must be
			// back, and the store must survive losing a DIFFERENT file.
			if h.FileSize("img.s2") == 0 {
				t.Fatal("completed repair did not rebuild the lost file")
			}
			h.DropFiles("img.s4")
			s4, err := OpenStore(h, "img", key)
			if err != nil {
				t.Fatal(err)
			}
			efs4, err := Mount(s4)
			if err != nil {
				t.Fatal(err)
			}
			chk2 := &diffState{t: t, fs: efs4, model: committed}
			chk2.compareTree()
			t.Logf("%d repair cut points all consistent", cut)
			maxCut = -1
		}
	}
}

// TestCrashDuringScrub is the same property for the background
// scrubber: rot within the parity envelope, then cut the scrub's repair
// writes at every point. Any cut must leave a remountable, fsck-clean
// image equal to the committed tree.
func TestCrashDuringScrub(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("crash-scrub")
	store, err := CreateStore(h, "img", key, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	efs, _ := Mount(store)
	d := &diffState{t: t, rng: rand.New(rand.NewSource(29)), fs: efs, model: newModel()}
	d.applyOps(120)
	seedBigFiles(t, d, efs, 5, 8)
	if err := efs.Sync(); err != nil {
		t.Fatal(err)
	}
	committed := d.model.clone()

	// Bit-rot across two backing files (= m, inside the envelope).
	dataStart := store.cellOff(store.blockStripe(0, 0))
	h.CorruptFiles("img.s1", dataStart, 0, 256, 31)
	h.CorruptFiles("img.s3", dataStart, 0, 256, 37)
	damaged := h.CopyFiles("img.s*")

	maxCut := 1 << 30
	for cut := 0; cut <= maxCut; cut++ {
		h.DropFiles("img.s*")
		h.PutFiles(damaged)
		s2, err := OpenStore(h, "img", key)
		if err != nil {
			t.Fatalf("cut %d: open rotted image: %v", cut, err)
		}
		h.Inject("img.s*", hostos.CrashAfter(cut))
		_, _ = s2.Scrub()
		tripped := h.Heal("img.s*")

		s3, err := OpenStore(h, "img", key)
		if err != nil {
			t.Fatalf("cut %d: reopen after cut scrub: %v", cut, err)
		}
		efs3, err := Mount(s3)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := efs3.Fsck(); err != nil {
			t.Fatalf("cut %d: fsck: %v", cut, err)
		}
		chk := &diffState{t: t, fs: efs3, model: committed, ops: cut}
		chk.compareTree()

		if !tripped {
			t.Logf("%d scrub cut points all consistent", cut)
			maxCut = -1
		}
	}
}

// errAny asserts err wraps one of the given sentinels (helper for the
// tamper battery).
func errAny(t *testing.T, err error, sentinels ...error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a verification error, got success")
	}
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return
		}
	}
	t.Fatalf("unexpected error class: %v", err)
}
