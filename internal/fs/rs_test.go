package fs

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestGFFieldAxioms(t *testing.T) {
	// a * inv(a) == 1 for every nonzero a; mul is commutative and
	// distributes over xor on a sample.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a*inv(a) != 1 for a=%d", a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative: %d %d", a, b)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("mul not distributive: %d %d %d", a, b, c)
		}
	}
}

func TestRSSystematic(t *testing.T) {
	// The top k rows of the encoding matrix must be the identity: data
	// shards pass through unchanged.
	c, err := newRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.k; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if c.mat[i][j] != want {
				t.Fatalf("mat[%d][%d] = %d, not systematic", i, j, c.mat[i][j])
			}
		}
	}
}

// TestRSAllLossPatterns: for several geometries, every loss pattern of
// up to m shards reconstructs the stripe byte-identically.
func TestRSAllLossPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, geom := range [][2]int{{2, 1}, {4, 2}, {5, 3}, {8, 4}} {
		k, m := geom[0], geom[1]
		c, err := newRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		const size = 64
		orig := make([][]byte, k+m)
		for i := range orig {
			orig[i] = make([]byte, size)
			if i < k {
				rng.Read(orig[i])
			}
		}
		c.encode(orig)

		// Enumerate every subset of lost shards with |subset| <= m.
		n := k + m
		for mask := 0; mask < 1<<uint(n); mask++ {
			lost := 0
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					lost++
				}
			}
			if lost == 0 || lost > m {
				continue
			}
			shards := make([][]byte, n)
			present := make([]bool, n)
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) == 0 {
					shards[i] = append([]byte(nil), orig[i]...)
					present[i] = true
				}
			}
			if err := c.reconstruct(shards, present); err != nil {
				t.Fatalf("k=%d m=%d mask=%b: %v", k, m, mask, err)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(shards[i], orig[i]) {
					t.Fatalf("k=%d m=%d mask=%b: shard %d differs after reconstruct", k, m, mask, i)
				}
			}
		}
	}
}

// TestRSTooManyLost: losing more than m shards must error, not return
// garbage.
func TestRSTooManyLost(t *testing.T) {
	c, _ := newRS(4, 2)
	shards := make([][]byte, 6)
	present := make([]bool, 6)
	for i := 0; i < 3; i++ { // only 3 of the 4 needed
		shards[i] = make([]byte, 16)
		present[i] = true
	}
	if err := c.reconstruct(shards, present); err == nil {
		t.Fatal("reconstruct with k-1 shards succeeded")
	}
}

// TestRSWrongShardNotDetected documents the layer contract: if a
// present shard holds wrong bytes, reconstruction "succeeds" with wrong
// data — the RS layer has no integrity of its own. The MAC table above
// it is what rejects the result (exercised in the pfs batteries).
func TestRSWrongShardNotDetected(t *testing.T) {
	c, _ := newRS(4, 2)
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = bytes.Repeat([]byte{byte(i + 1)}, 8)
	}
	c.encode(shards)
	good := append([]byte(nil), shards[0]...)
	shards[0][3] ^= 0xFF // silently wrong data shard
	present := []bool{true, true, true, true, false, false}
	shards[4], shards[5] = nil, nil
	if err := c.reconstruct(shards, present); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(shards[0], good) {
		t.Fatal("test bug: corruption vanished")
	}
}

func TestRSBadGeometry(t *testing.T) {
	for _, geom := range [][2]int{{0, 2}, {4, 0}, {200, 100}} {
		if _, err := newRS(geom[0], geom[1]); err == nil {
			t.Fatalf("newRS(%d,%d) accepted", geom[0], geom[1])
		}
	}
}

func BenchmarkRSEncode4x2(b *testing.B) {
	c, _ := newRS(4, 2)
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = make([]byte, 1024)
		rand.New(rand.NewSource(int64(i))).Read(shards[i])
	}
	b.SetBytes(4 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.encode(shards)
	}
}

func BenchmarkRSReconstruct4x2(b *testing.B) {
	c, _ := newRS(4, 2)
	orig := make([][]byte, 6)
	for i := range orig {
		orig[i] = make([]byte, 1024)
		rand.New(rand.NewSource(int64(i))).Read(orig[i])
	}
	c.encode(orig)
	b.SetBytes(4 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, 6)
		present := []bool{false, true, true, true, false, true}
		for j := range orig {
			if present[j] {
				shards[j] = orig[j]
			}
		}
		if err := c.reconstruct(shards, present); err != nil {
			b.Fatal(err)
		}
	}
}
