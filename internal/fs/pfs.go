// Package fs implements Occlum's filesystem stack (§6) and the special
// in-enclave filesystems (/dev, and /proc via internal/libos).
//
// The stack mirrors the paper:
//
//   - BlockStore (this file): the analog of Intel SGX Protected FS — an
//     encrypted, integrity-protected block device kept in untrusted host
//     storage. Every block is AES-CTR encrypted and HMAC-authenticated
//     with a per-write version (anti-replay); a root MAC over the version
//     table authenticates the whole device. A/B block slots plus a
//     single-write header+table commit make Sync crash-consistent.
//   - EncFS (fs.go): a full Unix-like filesystem (superblock, inodes,
//     directories, a shared page cache) built on the block store. Because
//     a single LibOS instance owns it, it is writable and consistent
//     across all SIPs — the capability EIP-based LibOSes lack (Table 1).
//   - ImageFS (imagefs.go): the read-only integrity-verified image layer
//     holding the trusted base image, lazily Merkle-verified against a
//     root hash pinned at mount (packed by cmd/occlum-image).
//   - UnionFS (unionfs.go): EncFS over ImageFS with copy-up on first
//     write and whiteout-based unlink — the union root a SIP boots from.
//   - VFS (vfs.go): mount table dispatching paths to the union root,
//     devfs, or procfs.
package fs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hostos"
)

// BlockSize is the payload size of one protected block.
const BlockSize = 4096

// macEntrySize is the on-disk size of one version-table entry:
// version(8) + slot(8) + MAC(32).
const macEntrySize = 48

// pfs header: magic(8) + maxBlocks(8) + epoch(8) + rootMAC(32).
const headerSize = 56

var pfsMagic = [8]byte{'O', 'C', 'P', 'F', 'S', 0, 0, 2}

// Integrity errors.
var (
	// ErrCorrupt reports failed decryption or integrity verification —
	// the untrusted host tampered with the image.
	ErrCorrupt = errors.New("fs: integrity verification failed (image tampered?)")
	// ErrBadKey reports opening an image with the wrong key.
	ErrBadKey = errors.New("fs: wrong key or not a protected image")
	// ErrFull reports block exhaustion.
	ErrFull = errors.New("fs: no free blocks")
)

// Key is the 128-bit filesystem sealing key. On real SGX it would be
// derived from the enclave sealing identity.
type Key [16]byte

// KeyFromString derives a key from a passphrase-like seed.
func KeyFromString(s string) Key {
	sum := sha256.Sum256([]byte("ocpfs-key:" + s))
	var k Key
	copy(k[:], sum[:16])
	return k
}

// BlockStore is an encrypted, integrity-protected block device stored in
// an untrusted host file.
//
// Crash consistency: every block owns two on-disk slots (A/B). The first
// write to a block after a Flush flips its slot, so the ciphertext the
// last-committed MAC table references is never overwritten mid-epoch;
// rewrites within the same epoch land on the same (uncommitted) slot.
// Flush commits header and MAC table in a single host write, so a crash
// that cuts the write sequence at any point leaves either the old or the
// new state fully intact — never a table that references half-written
// data.
type BlockStore struct {
	host      *hostos.Host
	name      string
	aesKey    []byte
	macKey    []byte
	maxBlocks int
	epoch     uint64
	versions  []uint64
	slots     []uint8
	macs      [][32]byte
	// epochWritten marks blocks already flipped to their shadow slot
	// this epoch; cleared by Flush.
	epochWritten []bool
	dirtyHdr     bool
}

func deriveKeys(k Key) (aesKey, macKey []byte) {
	a := sha256.Sum256(append([]byte("enc:"), k[:]...))
	m := sha256.Sum256(append([]byte("mac:"), k[:]...))
	return a[:16], m[:]
}

// CreateStore formats a new protected image with capacity maxBlocks in the
// named host file, destroying any previous content.
func CreateStore(h *hostos.Host, name string, key Key, maxBlocks int) (*BlockStore, error) {
	if maxBlocks <= 0 {
		return nil, fmt.Errorf("fs: maxBlocks must be positive")
	}
	aesKey, macKey := deriveKeys(key)
	s := &BlockStore{
		host: h, name: name, aesKey: aesKey, macKey: macKey,
		maxBlocks:    maxBlocks,
		versions:     make([]uint64, maxBlocks),
		slots:        make([]uint8, maxBlocks),
		macs:         make([][32]byte, maxBlocks),
		epochWritten: make([]bool, maxBlocks),
		epoch:        1,
	}
	h.RemoveFile(name)
	h.WriteFile(name, make([]byte, headerSize+maxBlocks*macEntrySize))
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenStore opens an existing protected image, verifying the root MAC.
func OpenStore(h *hostos.Host, name string, key Key) (*BlockStore, error) {
	hdr := make([]byte, headerSize)
	if n, err := h.ReadFileAt(name, 0, hdr); err != nil || n < headerSize {
		return nil, fmt.Errorf("%w: truncated header", ErrBadKey)
	}
	if string(hdr[:8]) != string(pfsMagic[:]) {
		return nil, ErrBadKey
	}
	maxBlocks := int(binary.LittleEndian.Uint64(hdr[8:]))
	epoch := binary.LittleEndian.Uint64(hdr[16:])
	if maxBlocks <= 0 || maxBlocks > 1<<24 {
		return nil, ErrBadKey
	}
	aesKey, macKey := deriveKeys(key)
	s := &BlockStore{
		host: h, name: name, aesKey: aesKey, macKey: macKey,
		maxBlocks: maxBlocks, epoch: epoch,
		versions:     make([]uint64, maxBlocks),
		slots:        make([]uint8, maxBlocks),
		macs:         make([][32]byte, maxBlocks),
		epochWritten: make([]bool, maxBlocks),
	}
	table := make([]byte, maxBlocks*macEntrySize)
	if n, err := h.ReadFileAt(name, headerSize, table); err != nil || n < len(table) {
		return nil, fmt.Errorf("%w: truncated table", ErrCorrupt)
	}
	for i := 0; i < maxBlocks; i++ {
		e := table[i*macEntrySize:]
		s.versions[i] = binary.LittleEndian.Uint64(e)
		s.slots[i] = uint8(binary.LittleEndian.Uint64(e[8:]) & 1)
		copy(s.macs[i][:], e[16:48])
	}
	// Verify the root MAC over epoch + table.
	want := s.rootMAC()
	if !hmac.Equal(want[:], hdr[24:56]) {
		return nil, ErrCorrupt
	}
	return s, nil
}

// OpenStoreAt opens an existing protected image and additionally checks
// the committed epoch against a trusted witness (an SGX monotonic
// counter in the paper's deployment; the caller's in-enclave memory
// here). Without the witness, a host that rolls header, MAC table and
// data back to an older fully-consistent snapshot is undetectable; with
// it, any stale epoch fails closed.
func OpenStoreAt(h *hostos.Host, name string, key Key, wantEpoch uint64) (*BlockStore, error) {
	s, err := OpenStore(h, name, key)
	if err != nil {
		return nil, err
	}
	if s.epoch != wantEpoch {
		return nil, fmt.Errorf("%w: epoch %d, trusted witness says %d (rollback?)",
			ErrCorrupt, s.epoch, wantEpoch)
	}
	return s, nil
}

// Epoch returns the current commit epoch (bumped by every Flush). A
// caller that persists it in trusted storage can detect full-image
// rollback via OpenStoreAt.
func (s *BlockStore) Epoch() uint64 { return s.epoch }

func (s *BlockStore) rootMAC() [32]byte {
	mac := hmac.New(sha256.New, s.macKey)
	var e [8]byte
	binary.LittleEndian.PutUint64(e[:], s.epoch)
	mac.Write(e[:])
	for i := range s.versions {
		binary.LittleEndian.PutUint64(e[:], s.versions[i])
		mac.Write(e[:])
		mac.Write([]byte{s.slots[i]})
		mac.Write(s.macs[i][:])
	}
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// MaxBlocks returns the device capacity in blocks.
func (s *BlockStore) MaxBlocks() int { return s.maxBlocks }

func (s *BlockStore) blockOffset(i int, slot uint8) int {
	return headerSize + s.maxBlocks*macEntrySize + (2*i+int(slot&1))*BlockSize
}

func (s *BlockStore) keystream(i int, version uint64, dst, src []byte) {
	block, err := aes.NewCipher(s.aesKey)
	if err != nil {
		panic(err) // key length is fixed; cannot fail
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:], uint64(i))
	binary.LittleEndian.PutUint64(iv[8:], version)
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst, src)
}

func (s *BlockStore) blockMAC(i int, version uint64, ct []byte) [32]byte {
	mac := hmac.New(sha256.New, s.macKey)
	var e [16]byte
	binary.LittleEndian.PutUint64(e[0:], uint64(i))
	binary.LittleEndian.PutUint64(e[8:], version)
	mac.Write(e[:])
	mac.Write(ct)
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// WriteBlock encrypts and stores one block (padded/truncated to
// BlockSize). The version table is updated in memory; Flush persists it.
// The first write of a block after a Flush lands on its shadow slot, so
// the last-committed ciphertext survives until the next commit.
func (s *BlockStore) WriteBlock(i int, data []byte) error {
	if i < 0 || i >= s.maxBlocks {
		return fmt.Errorf("fs: block %d out of range", i)
	}
	pt := make([]byte, BlockSize)
	copy(pt, data)
	if !s.epochWritten[i] {
		s.slots[i] ^= 1
		s.epochWritten[i] = true
	}
	// The version still bumps on every write (not once per epoch): it is
	// the CTR IV, and rewriting a slot under a reused IV would be a
	// two-time pad.
	s.versions[i]++
	ct := make([]byte, BlockSize)
	s.keystream(i, s.versions[i], ct, pt)
	s.macs[i] = s.blockMAC(i, s.versions[i], ct)
	s.host.WriteFileAt(s.name, s.blockOffset(i, s.slots[i]), ct)
	s.dirtyHdr = true
	return nil
}

// ReadBlock fetches, verifies and decrypts one block. A never-written
// block reads as zeros.
func (s *BlockStore) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= s.maxBlocks {
		return nil, fmt.Errorf("fs: block %d out of range", i)
	}
	if s.versions[i] == 0 {
		return make([]byte, BlockSize), nil
	}
	ct := make([]byte, BlockSize)
	if n, err := s.host.ReadFileAt(s.name, s.blockOffset(i, s.slots[i]), ct); err != nil || n < BlockSize {
		return nil, fmt.Errorf("%w: block %d missing", ErrCorrupt, i)
	}
	want := s.blockMAC(i, s.versions[i], ct)
	if !hmac.Equal(want[:], s.macs[i][:]) {
		return nil, fmt.Errorf("%w: block %d", ErrCorrupt, i)
	}
	pt := make([]byte, BlockSize)
	s.keystream(i, s.versions[i], pt, ct)
	return pt, nil
}

// Flush commits the version table and root MAC. Data blocks are written
// through on WriteBlock (to shadow slots); the commit is a single host
// write covering header + table, so a crash cannot leave a header that
// authenticates a half-written table: the host file holds either the
// previous committed state or this one.
func (s *BlockStore) Flush() error {
	s.epoch++
	buf := make([]byte, headerSize+s.maxBlocks*macEntrySize)
	copy(buf, pfsMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.maxBlocks))
	binary.LittleEndian.PutUint64(buf[16:], s.epoch)
	root := s.rootMAC()
	copy(buf[24:], root[:])
	for i := 0; i < s.maxBlocks; i++ {
		e := buf[headerSize+i*macEntrySize:]
		binary.LittleEndian.PutUint64(e, s.versions[i])
		binary.LittleEndian.PutUint64(e[8:], uint64(s.slots[i]))
		copy(e[16:], s.macs[i][:])
	}
	s.host.WriteFileAt(s.name, 0, buf)
	for i := range s.epochWritten {
		s.epochWritten[i] = false
	}
	s.dirtyHdr = false
	return nil
}
