// Package fs implements Occlum's filesystem stack (§6) and the special
// in-enclave filesystems (/dev, and /proc via internal/libos).
//
// The stack mirrors the paper:
//
//   - BlockStore (this file): the analog of Intel SGX Protected FS — an
//     encrypted, integrity-protected block device kept in untrusted host
//     storage. Every block is AES-CTR encrypted and HMAC-authenticated
//     with a per-write version (anti-replay); a root MAC over the version
//     table authenticates the whole device. A/B block slots plus an
//     atomic commit-record protocol make Sync crash-consistent. Beneath
//     the integrity layer, every block is striped across k+m host files
//     with Reed–Solomon parity (rs.go), so the device self-heals from
//     the loss or rot of up to m shards per stripe — including an entire
//     deleted backing file — without ever serving a byte that has not
//     re-passed MAC verification.
//   - EncFS (fs.go): a full Unix-like filesystem (superblock, inodes,
//     directories, a shared page cache) built on the block store. Because
//     a single LibOS instance owns it, it is writable and consistent
//     across all SIPs — the capability EIP-based LibOSes lack (Table 1).
//   - ImageFS (imagefs.go): the read-only integrity-verified image layer
//     holding the trusted base image, lazily Merkle-verified against a
//     root hash pinned at mount (packed by cmd/occlum-image).
//   - UnionFS (unionfs.go): EncFS over ImageFS with copy-up on first
//     write and whiteout-based unlink — the union root a SIP boots from.
//   - VFS (vfs.go): mount table dispatching paths to the union root,
//     devfs, or procfs.
package fs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/hostos"
)

// BlockSize is the payload size of one protected block.
const BlockSize = 4096

// macEntrySize is the on-disk size of one version-table entry:
// version(8) + slot(8) + MAC(32).
const macEntrySize = 48

// Default erasure-code geometry: 4 data + 2 parity shards per stripe.
// With shardSize = BlockSize/k, one block slot is exactly one stripe, so
// parity never needs a read-modify-write cycle.
const (
	defaultDataShards   = 4
	defaultParityShards = 2
)

// Per-backing-file layout:
//
//	[0,32)    file header: magic(8) k(2) m(2) fileIdx(2) pad(2) maxBlocks(8) pad(8)
//	[32,224)  two 96-byte commit-record slots (A/B, indexed by epoch&1)
//	[224,...) shard cells: shardSize payload + crc32(4) + pad(4) each
//
// The crc32 trailer is a *locator* for accidental corruption (bit-rot,
// torn writes, truncation) — it decides which shards the decoder
// excludes, nothing more. Authenticity always comes from the MAC table:
// no assembled or reconstructed payload is served or written back until
// it re-verifies against the per-block HMAC (or, for the table itself,
// the root MAC in a commit record).
const (
	fileHeaderSize   = 32
	commitRecordSize = 96
	shardDataStart   = fileHeaderSize + 2*commitRecordSize // 224
)

var pfsMagic = [8]byte{'O', 'C', 'P', 'F', 'S', 0, 0, 3}

// Integrity errors.
var (
	// ErrCorrupt reports failed decryption or integrity verification —
	// the untrusted host tampered with the image, or more shards are
	// lost than the parity can reconstruct.
	ErrCorrupt = errors.New("fs: integrity verification failed (image tampered?)")
	// ErrBadKey reports opening an image with the wrong key.
	ErrBadKey = errors.New("fs: wrong key or not a protected image")
	// ErrFull reports block exhaustion.
	ErrFull = errors.New("fs: no free blocks")
)

// Key is the 128-bit filesystem sealing key. On real SGX it would be
// derived from the enclave sealing identity.
type Key [16]byte

// KeyFromString derives a key from a passphrase-like seed.
func KeyFromString(s string) Key {
	sum := sha256.Sum256([]byte("ocpfs-key:" + s))
	var k Key
	copy(k[:], sum[:16])
	return k
}

// BlockStore is an encrypted, integrity-protected block device striped
// across k+m untrusted host files ("name.s0" … "name.s<k+m-1>").
//
// Crash consistency: every block owns two on-disk stripe slots (A/B).
// The first write to a block after a Flush flips its slot, so the
// ciphertext the last-committed MAC table references is never
// overwritten mid-epoch; rewrites within the same epoch land on the same
// (uncommitted) slot. Flush writes the MAC table into the A/B table
// slot for the new epoch and then publishes it with per-file commit
// records (epoch + root MAC, self-authenticated by an HMAC): a crash
// cutting the write sequence at any point leaves the previous committed
// state fully recoverable, because nothing it references was touched.
//
// Durability: each 4 KiB stripe (a block slot, or one table chunk) is
// split into k data shards and m Reed–Solomon parity shards, one per
// backing file, each with a crc32 locator trailer. Reads exclude
// crc-bad/short/missing shards, reconstruct from any k survivors,
// re-verify the result against the MAC table, and only then serve it —
// rewriting the bad shards in place (repair-on-read). The scrubber
// (ScrubStep) walks stripes incrementally doing the same in the
// background, and Repair rebuilds whole lost backing files offline.
type BlockStore struct {
	mu        sync.Mutex
	host      *hostos.Host
	name      string
	aesKey    []byte
	macKey    []byte
	maxBlocks int
	k, m      int
	rs        *rsCode
	epoch     uint64
	versions  []uint64
	slots     []uint8
	macs      [][32]byte
	// epochWritten marks blocks already flipped to their shadow slot
	// this epoch; cleared by Flush.
	epochWritten []bool
	dirtyHdr     bool

	// Scrub cursor state: gen counts mutations; a full pass over an
	// unchanged store latches clean until the next mutation.
	scrubCursor  int
	scrubGen     uint64
	scrubPassGen uint64
	scrubClean   bool
}

func deriveKeys(k Key) (aesKey, macKey []byte) {
	a := sha256.Sum256(append([]byte("enc:"), k[:]...))
	m := sha256.Sum256(append([]byte("mac:"), k[:]...))
	return a[:16], m[:]
}

// --- Geometry -------------------------------------------------------------

func (s *BlockStore) shardSize() int { return BlockSize / s.k }
func (s *BlockStore) cellSize() int  { return s.shardSize() + 8 }
func (s *BlockStore) nFiles() int    { return s.k + s.m }

// fileName returns the host name of shard file f.
func (s *BlockStore) fileName(f int) string { return fmt.Sprintf("%s.s%d", s.name, f) }

// tableStripes is the stripe count of ONE table slot.
func (s *BlockStore) tableStripes() int {
	return (s.maxBlocks*macEntrySize + BlockSize - 1) / BlockSize
}

// blockStripe maps (block, A/B slot) to its stripe index: the two table
// slots come first, then two stripes per block.
func (s *BlockStore) blockStripe(i int, slot uint8) int {
	return 2*s.tableStripes() + 2*i + int(slot&1)
}

// cellOff is the per-file byte offset of stripe st's shard cell.
func (s *BlockStore) cellOff(st int) int {
	return shardDataStart + st*s.cellSize()
}

// MaxBlocks returns the device capacity in blocks.
func (s *BlockStore) MaxBlocks() int { return s.maxBlocks }

// Geometry returns the erasure-code shape: k data + m parity shards.
func (s *BlockStore) Geometry() (k, m int) { return s.k, s.m }

// BackingFiles lists the host files the store stripes across.
func (s *BlockStore) BackingFiles() []string {
	out := make([]string, s.nFiles())
	for f := range out {
		out[f] = s.fileName(f)
	}
	return out
}

// StoreExists reports whether a striped image by this name is present on
// the host (any shard file suffices — missing ones are repairable).
func StoreExists(h *hostos.Host, name string) bool {
	for f := 0; f < 64; f++ {
		if h.FileSize(fmt.Sprintf("%s.s%d", name, f)) > 0 {
			return true
		}
	}
	return false
}

// --- Create / open --------------------------------------------------------

// CreateStore formats a new protected image with capacity maxBlocks and
// the default 4+2 erasure-code geometry, destroying any previous content
// under the same name.
func CreateStore(h *hostos.Host, name string, key Key, maxBlocks int) (*BlockStore, error) {
	return CreateStoreGeom(h, name, key, maxBlocks, defaultDataShards, defaultParityShards)
}

// CreateStoreGeom formats a new protected image striped as k data + m
// parity shards per stripe. k must divide BlockSize.
func CreateStoreGeom(h *hostos.Host, name string, key Key, maxBlocks, k, m int) (*BlockStore, error) {
	if maxBlocks <= 0 {
		return nil, fmt.Errorf("fs: maxBlocks must be positive")
	}
	if k < 1 || m < 1 || BlockSize%k != 0 {
		return nil, fmt.Errorf("fs: bad stripe geometry k=%d m=%d", k, m)
	}
	rs, err := newRS(k, m)
	if err != nil {
		return nil, err
	}
	aesKey, macKey := deriveKeys(key)
	s := &BlockStore{
		host: h, name: name, aesKey: aesKey, macKey: macKey,
		maxBlocks: maxBlocks, k: k, m: m, rs: rs,
		versions:     make([]uint64, maxBlocks),
		slots:        make([]uint8, maxBlocks),
		macs:         make([][32]byte, maxBlocks),
		epochWritten: make([]bool, maxBlocks),
		epoch:        1,
	}
	h.DropFiles(name + ".s*")
	for f := 0; f < s.nFiles(); f++ {
		s.host.WriteFileAt(s.fileName(f), 0, s.fileHeader(f))
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// fileHeader serializes shard file f's header.
func (s *BlockStore) fileHeader(f int) []byte {
	hdr := make([]byte, fileHeaderSize)
	copy(hdr, pfsMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:], uint16(s.k))
	binary.LittleEndian.PutUint16(hdr[10:], uint16(s.m))
	binary.LittleEndian.PutUint16(hdr[12:], uint16(f))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.maxBlocks))
	return hdr
}

// commitRecord serializes the commit record publishing (epoch, rootMAC).
// The record authenticates itself with an HMAC, so open can tell a valid
// record from torn or rotted bytes without trusting anything else.
func (s *BlockStore) commitRecord(epoch uint64, root [32]byte) []byte {
	rec := make([]byte, commitRecordSize)
	binary.LittleEndian.PutUint64(rec[0:], epoch)
	binary.LittleEndian.PutUint64(rec[8:], uint64(s.maxBlocks))
	copy(rec[16:48], root[:])
	mac := s.recMAC(rec[:48])
	copy(rec[48:80], mac[:])
	return rec
}

func (s *BlockStore) recMAC(fields []byte) [32]byte {
	mac := hmac.New(sha256.New, s.macKey)
	mac.Write([]byte("commit:"))
	mac.Write(fields)
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// openGeometry scans the shard files for one valid header to learn the
// stripe geometry (any surviving file can supply it).
func openGeometry(h *hostos.Host, name string) (k, m, maxBlocks int, err error) {
	for f := 0; f < 64; f++ {
		hdr := make([]byte, fileHeaderSize)
		n, rerr := h.ReadFileAt(fmt.Sprintf("%s.s%d", name, f), 0, hdr)
		if rerr != nil || n < fileHeaderSize {
			continue
		}
		if string(hdr[:8]) != string(pfsMagic[:]) {
			continue
		}
		k = int(binary.LittleEndian.Uint16(hdr[8:]))
		m = int(binary.LittleEndian.Uint16(hdr[10:]))
		maxBlocks = int(binary.LittleEndian.Uint64(hdr[16:]))
		if k < 1 || m < 1 || BlockSize%k != 0 || maxBlocks <= 0 || maxBlocks > 1<<24 {
			continue
		}
		return k, m, maxBlocks, nil
	}
	return 0, 0, 0, ErrBadKey
}

// OpenStore opens an existing protected image: it finds the
// newest self-authenticated commit record across all shard files,
// reads that epoch's MAC table (repairing rotted or missing table
// shards from parity), and verifies the root MAC. Up to m lost or
// corrupted shards per stripe — including whole missing backing
// files — are tolerated and repaired in place.
func OpenStore(h *hostos.Host, name string, key Key) (*BlockStore, error) {
	k, m, maxBlocks, err := openGeometry(h, name)
	if err != nil {
		return nil, err
	}
	rs, err := newRS(k, m)
	if err != nil {
		return nil, ErrBadKey
	}
	aesKey, macKey := deriveKeys(key)
	s := &BlockStore{
		host: h, name: name, aesKey: aesKey, macKey: macKey,
		maxBlocks: maxBlocks, k: k, m: m, rs: rs,
		versions:     make([]uint64, maxBlocks),
		slots:        make([]uint8, maxBlocks),
		macs:         make([][32]byte, maxBlocks),
		epochWritten: make([]bool, maxBlocks),
	}

	// Collect every valid commit record, newest epoch first. Records are
	// per-file replicas: any one survivor publishes the commit.
	type candidate struct {
		epoch uint64
		root  [32]byte
	}
	var cands []candidate
	seen := make(map[uint64]bool)
	for f := 0; f < s.nFiles(); f++ {
		for rslot := 0; rslot < 2; rslot++ {
			rec := make([]byte, commitRecordSize)
			n, rerr := h.ReadFileAt(s.fileName(f), fileHeaderSize+rslot*commitRecordSize, rec)
			if rerr != nil || n < commitRecordSize {
				continue
			}
			want := s.recMAC(rec[:48])
			if !hmac.Equal(want[:], rec[48:80]) {
				continue
			}
			epoch := binary.LittleEndian.Uint64(rec[0:])
			if int(binary.LittleEndian.Uint64(rec[8:])) != maxBlocks {
				continue
			}
			if epoch&1 != uint64(rslot&1) {
				continue // a record can only live in its own A/B slot
			}
			if !seen[epoch] {
				seen[epoch] = true
				var c candidate
				c.epoch = epoch
				copy(c.root[:], rec[16:48])
				cands = append(cands, c)
			}
		}
	}
	if len(cands) == 0 {
		// Headers were fine but no record authenticates under this key.
		return nil, ErrBadKey
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].epoch > cands[j-1].epoch; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}

	// Try candidates newest-first: load that epoch's table slot and
	// check the root MAC. Torn later commits simply fall through to the
	// previous fully-committed epoch.
	for _, c := range cands {
		if s.loadTable(c.epoch, c.root) {
			s.epoch = c.epoch
			return s, nil
		}
	}
	return nil, ErrCorrupt
}

// loadTable reads the MAC table from epoch's A/B table slot (with shard
// repair) and installs it if the root MAC matches. Caller holds no lock
// (open path) — the store is not yet shared.
func (s *BlockStore) loadTable(epoch uint64, wantRoot [32]byte) bool {
	slot := int(epoch & 1)
	T := s.tableStripes()
	table := make([]byte, T*BlockSize)
	for j := 0; j < T; j++ {
		pay, err := s.readStripe(slot*T+j, nil)
		if err != nil {
			return false
		}
		copy(table[j*BlockSize:], pay)
	}
	for i := 0; i < s.maxBlocks; i++ {
		e := table[i*macEntrySize:]
		s.versions[i] = binary.LittleEndian.Uint64(e)
		s.slots[i] = uint8(binary.LittleEndian.Uint64(e[8:]) & 1)
		copy(s.macs[i][:], e[16:48])
	}
	s.epoch = epoch
	got := s.rootMAC()
	return hmac.Equal(got[:], wantRoot[:])
}

// OpenStoreAt opens an existing protected image and additionally checks
// the committed epoch against a trusted witness (an SGX monotonic
// counter in the paper's deployment; the caller's in-enclave memory
// here). Without the witness, a host that rolls records, MAC table and
// data back to an older fully-consistent snapshot is undetectable; with
// it, any stale epoch fails closed.
func OpenStoreAt(h *hostos.Host, name string, key Key, wantEpoch uint64) (*BlockStore, error) {
	s, err := OpenStore(h, name, key)
	if err != nil {
		return nil, err
	}
	if s.epoch != wantEpoch {
		return nil, fmt.Errorf("%w: epoch %d, trusted witness says %d (rollback?)",
			ErrCorrupt, s.epoch, wantEpoch)
	}
	return s, nil
}

// Epoch returns the current commit epoch (bumped by every Flush). A
// caller that persists it in trusted storage can detect full-image
// rollback via OpenStoreAt.
func (s *BlockStore) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *BlockStore) rootMAC() [32]byte {
	mac := hmac.New(sha256.New, s.macKey)
	var e [8]byte
	binary.LittleEndian.PutUint64(e[:], s.epoch)
	mac.Write(e[:])
	for i := range s.versions {
		binary.LittleEndian.PutUint64(e[:], s.versions[i])
		mac.Write(e[:])
		mac.Write([]byte{s.slots[i]})
		mac.Write(s.macs[i][:])
	}
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// --- Stripe I/O -----------------------------------------------------------

// writeStripe splits a BlockSize payload into k data shards, encodes m
// parity shards, and writes one crc-trailed cell per backing file.
func (s *BlockStore) writeStripe(st int, payload []byte) {
	ss := s.shardSize()
	shards := make([][]byte, s.nFiles())
	for d := 0; d < s.k; d++ {
		shards[d] = payload[d*ss : (d+1)*ss]
	}
	for p := 0; p < s.m; p++ {
		shards[s.k+p] = make([]byte, ss)
	}
	s.rs.encode(shards)
	for f := 0; f < s.nFiles(); f++ {
		s.writeCell(f, st, shards[f])
	}
}

// writeCell writes one shard cell (payload + crc trailer).
func (s *BlockStore) writeCell(f, st int, shard []byte) {
	cell := make([]byte, s.cellSize())
	copy(cell, shard)
	binary.LittleEndian.PutUint32(cell[s.shardSize():], crc32.ChecksumIEEE(shard))
	s.host.WriteFileAt(s.fileName(f), s.cellOff(st), cell)
}

// readStripe reassembles stripe st's payload, repairing as it goes.
//
// Shards are classified by the crc32 locator: missing files, short
// reads and crc mismatches are excluded, and the payload is
// reconstructed from any k survivors. verify is the authenticity gate —
// for block stripes it checks the per-block HMAC against the MAC table;
// nil (table stripes during open) defers to the caller's root-MAC
// check. A payload that fails verify is NEVER served: if the crc-guided
// decode does not authenticate (a tamperer can forge crc trailers), a
// bounded search over k-subsets of the readable shards looks for any
// combination that does. Only after the payload authenticates are bad
// shards rewritten in place (repair-on-read) — so repair can restore
// accidental damage but can never launder adversarial bytes into the
// device.
func (s *BlockStore) readStripe(st int, verify func([]byte) bool) ([]byte, error) {
	n := s.nFiles()
	ss := s.shardSize()
	raw := make([][]byte, n) // full-length shard payloads (nil: unreadable)
	crcOK := make([]bool, n)
	nCrcOK := 0
	for f := 0; f < n; f++ {
		cell := make([]byte, s.cellSize())
		cnt, err := s.host.ReadFileAt(s.fileName(f), s.cellOff(st), cell)
		if err != nil || cnt < s.cellSize() {
			continue // missing file, truncated file, or short read
		}
		raw[f] = cell[:ss]
		if binary.LittleEndian.Uint32(cell[ss:]) == crc32.ChecksumIEEE(raw[f]) {
			crcOK[f] = true
			nCrcOK++
		}
	}

	// First attempt: trust the crc locators.
	if nCrcOK >= s.k {
		if pay, ok := s.tryDecode(raw, crcOK, verify); ok {
			s.repairFrom(st, pay, crcOK)
			return pay, nil
		}
	}
	// The crc-guided decode failed authentication (or too few shards
	// passed crc): search k-subsets of everything readable. This covers
	// a tamperer who fixed up crc trailers over corrupted shards.
	if verify != nil {
		readable := make([]int, 0, n)
		for f := 0; f < n; f++ {
			if raw[f] != nil {
				readable = append(readable, f)
			}
		}
		if len(readable) >= s.k && n <= 16 {
			for mask := 0; mask < 1<<uint(len(readable)); mask++ {
				if popcount(mask) != s.k {
					continue
				}
				sel := make([]bool, n)
				for bi, f := range readable {
					if mask&(1<<uint(bi)) != 0 {
						sel[f] = true
					}
				}
				if pay, ok := s.tryDecode(raw, sel, verify); ok {
					s.repairFrom(st, pay, sel)
					return pay, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("%w: stripe %d unrecoverable", ErrCorrupt, st)
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// tryDecode reconstructs the stripe payload from the shards selected by
// use, then authenticates it with verify (nil accepts — the caller
// authenticates the assembled whole separately).
func (s *BlockStore) tryDecode(raw [][]byte, use []bool, verify func([]byte) bool) ([]byte, bool) {
	shards := make([][]byte, s.nFiles())
	present := make([]bool, s.nFiles())
	for f, ok := range use {
		if ok {
			shards[f] = append([]byte(nil), raw[f]...)
			present[f] = true
		}
	}
	if err := s.rs.reconstruct(shards, present); err != nil {
		return nil, false
	}
	pay := make([]byte, BlockSize)
	ss := s.shardSize()
	for d := 0; d < s.k; d++ {
		copy(pay[d*ss:], shards[d])
	}
	if verify != nil && !verify(pay) {
		return nil, false
	}
	return pay, true
}

// repairFrom rewrites every shard of stripe st that was NOT part of the
// authenticated decode (trusted[f] == false), re-deriving it from the
// verified payload. Called only after verify passed.
func (s *BlockStore) repairFrom(st int, payload []byte, trusted []bool) {
	nBad := 0
	for _, ok := range trusted {
		if !ok {
			nBad++
		}
	}
	if nBad == 0 {
		return
	}
	ss := s.shardSize()
	shards := make([][]byte, s.nFiles())
	for d := 0; d < s.k; d++ {
		shards[d] = payload[d*ss : (d+1)*ss]
	}
	for p := 0; p < s.m; p++ {
		shards[s.k+p] = make([]byte, ss)
	}
	s.rs.encode(shards)
	for f := 0; f < s.nFiles(); f++ {
		if !trusted[f] {
			s.writeCell(f, st, shards[f])
			fsStats.repairedShards.Add(1)
		}
	}
}

// --- Block I/O ------------------------------------------------------------

func (s *BlockStore) keystream(i int, version uint64, dst, src []byte) {
	block, err := aes.NewCipher(s.aesKey)
	if err != nil {
		panic(err) // key length is fixed; cannot fail
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:], uint64(i))
	binary.LittleEndian.PutUint64(iv[8:], version)
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst, src)
}

func (s *BlockStore) blockMAC(i int, version uint64, ct []byte) [32]byte {
	mac := hmac.New(sha256.New, s.macKey)
	var e [16]byte
	binary.LittleEndian.PutUint64(e[0:], uint64(i))
	binary.LittleEndian.PutUint64(e[8:], version)
	mac.Write(e[:])
	mac.Write(ct)
	var out [32]byte
	mac.Sum(out[:0])
	return out
}

// WriteBlock encrypts and stores one block (padded/truncated to
// BlockSize). The version table is updated in memory; Flush persists it.
// The first write of a block after a Flush lands on its shadow slot, so
// the last-committed ciphertext survives until the next commit.
func (s *BlockStore) WriteBlock(i int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= s.maxBlocks {
		return fmt.Errorf("fs: block %d out of range", i)
	}
	pt := make([]byte, BlockSize)
	copy(pt, data)
	if !s.epochWritten[i] {
		s.slots[i] ^= 1
		s.epochWritten[i] = true
	}
	// The version still bumps on every write (not once per epoch): it is
	// the CTR IV, and rewriting a slot under a reused IV would be a
	// two-time pad.
	s.versions[i]++
	ct := make([]byte, BlockSize)
	s.keystream(i, s.versions[i], ct, pt)
	s.macs[i] = s.blockMAC(i, s.versions[i], ct)
	s.writeStripe(s.blockStripe(i, s.slots[i]), ct)
	s.dirtyHdr = true
	s.mutated()
	return nil
}

// ReadBlock fetches, verifies and decrypts one block, transparently
// repairing up to m lost or corrupted shards of its stripe. A
// never-written block reads as zeros.
func (s *BlockStore) ReadBlock(i int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readBlockLocked(i)
}

func (s *BlockStore) readBlockLocked(i int) ([]byte, error) {
	if i < 0 || i >= s.maxBlocks {
		return nil, fmt.Errorf("fs: block %d out of range", i)
	}
	if s.versions[i] == 0 {
		return make([]byte, BlockSize), nil
	}
	ct, err := s.readStripe(s.blockStripe(i, s.slots[i]), func(ct []byte) bool {
		want := s.blockMAC(i, s.versions[i], ct)
		return hmac.Equal(want[:], s.macs[i][:])
	})
	if err != nil {
		return nil, fmt.Errorf("%w: block %d", ErrCorrupt, i)
	}
	pt := make([]byte, BlockSize)
	s.keystream(i, s.versions[i], pt, ct)
	return pt, nil
}

// Flush commits the version table and root MAC. Data blocks are written
// through on WriteBlock (to shadow stripe slots), so nothing the
// last-committed table references is touched here: the new table lands
// in its own A/B table slot, and only then do the per-file commit
// records publish it. A crash at any cut leaves either the previous
// commit or this one fully intact — torn stripes only ever hit
// uncommitted slots, and a torn record fails its own HMAC and is
// ignored by open.
func (s *BlockStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	slot := int(s.epoch & 1)
	T := s.tableStripes()
	table := make([]byte, T*BlockSize)
	for i := 0; i < s.maxBlocks; i++ {
		e := table[i*macEntrySize:]
		binary.LittleEndian.PutUint64(e, s.versions[i])
		binary.LittleEndian.PutUint64(e[8:], uint64(s.slots[i]))
		copy(e[16:], s.macs[i][:])
	}
	for j := 0; j < T; j++ {
		s.writeStripe(slot*T+j, table[j*BlockSize:(j+1)*BlockSize])
	}
	rec := s.commitRecord(s.epoch, s.rootMAC())
	for f := 0; f < s.nFiles(); f++ {
		s.host.WriteFileAt(s.fileName(f), fileHeaderSize+slot*commitRecordSize, rec)
	}
	for i := range s.epochWritten {
		s.epochWritten[i] = false
	}
	s.dirtyHdr = false
	s.mutated()
	return nil
}

// mutated bumps the scrub generation. Caller holds s.mu.
func (s *BlockStore) mutated() {
	s.scrubGen++
	s.scrubClean = false
}

// --- Scrub and repair -----------------------------------------------------

// ScrubStep verifies up to n blocks' committed stripes against the MAC
// table, repairing any rotted or missing shards it finds, and advances a
// persistent cursor. When a full pass completes with no concurrent
// mutation, the store latches clean and ScrubStep returns false until
// the next WriteBlock/Flush — so an idle LibOS eventually goes quiet
// instead of re-reading a clean device forever.
//
// Returns whether any work was done, and the first unrecoverable error
// encountered (scrubbing continues past errors so one dead stripe does
// not shadow the rest).
func (s *BlockStore) ScrubStep(n int) (worked bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scrubClean {
		return false, nil
	}
	if s.scrubCursor == 0 {
		s.scrubPassGen = s.scrubGen
	}
	for done := 0; done < n && s.scrubCursor < s.maxBlocks; done++ {
		i := s.scrubCursor
		s.scrubCursor++
		worked = true
		if s.versions[i] == 0 {
			continue
		}
		if _, rerr := s.readBlockLocked(i); rerr != nil && err == nil {
			err = rerr
		}
		fsStats.scrubbedBlocks.Add(1)
	}
	if s.scrubCursor >= s.maxBlocks {
		// End of pass: scrub the committed table and records too (only
		// meaningful when memory matches disk), then decide cleanliness.
		worked = true
		if !s.dirtyHdr {
			if rerr := s.scrubTableLocked(); rerr != nil && err == nil {
				err = rerr
			}
		}
		s.scrubCursor = 0
		if s.scrubGen == s.scrubPassGen {
			s.scrubClean = true
		}
	}
	return worked, err
}

// scrubTableLocked re-derives the committed table stripes, commit record
// and file headers from in-memory state and rewrites any on-disk shard
// that disagrees. Unlike block scrubbing this needs no parity decode:
// memory holds the authenticated truth. Caller holds s.mu and has
// checked !s.dirtyHdr.
func (s *BlockStore) scrubTableLocked() error {
	slot := int(s.epoch & 1)
	T := s.tableStripes()
	ss := s.shardSize()
	table := make([]byte, T*BlockSize)
	for i := 0; i < s.maxBlocks; i++ {
		e := table[i*macEntrySize:]
		binary.LittleEndian.PutUint64(e, s.versions[i])
		binary.LittleEndian.PutUint64(e[8:], uint64(s.slots[i]))
		copy(e[16:], s.macs[i][:])
	}
	for j := 0; j < T; j++ {
		st := slot*T + j
		pay := table[j*BlockSize : (j+1)*BlockSize]
		shards := make([][]byte, s.nFiles())
		for d := 0; d < s.k; d++ {
			shards[d] = pay[d*ss : (d+1)*ss]
		}
		for p := 0; p < s.m; p++ {
			shards[s.k+p] = make([]byte, ss)
		}
		s.rs.encode(shards)
		for f := 0; f < s.nFiles(); f++ {
			cell := make([]byte, s.cellSize())
			cnt, rerr := s.host.ReadFileAt(s.fileName(f), s.cellOff(st), cell)
			want := make([]byte, s.cellSize())
			copy(want, shards[f])
			binary.LittleEndian.PutUint32(want[ss:], crc32.ChecksumIEEE(shards[f]))
			if rerr != nil || cnt < s.cellSize() || string(cell) != string(want) {
				s.host.WriteFileAt(s.fileName(f), s.cellOff(st), want)
				fsStats.repairedShards.Add(1)
			}
		}
	}
	rec := s.commitRecord(s.epoch, s.rootMAC())
	for f := 0; f < s.nFiles(); f++ {
		got := make([]byte, commitRecordSize)
		cnt, rerr := s.host.ReadFileAt(s.fileName(f), fileHeaderSize+slot*commitRecordSize, got)
		if rerr != nil || cnt < commitRecordSize || string(got) != string(rec) {
			s.host.WriteFileAt(s.fileName(f), fileHeaderSize+slot*commitRecordSize, rec)
			fsStats.repairedShards.Add(1)
		}
		hdr := s.fileHeader(f)
		gotHdr := make([]byte, fileHeaderSize)
		cnt, rerr = s.host.ReadFileAt(s.fileName(f), 0, gotHdr)
		if rerr != nil || cnt < fileHeaderSize || string(gotHdr) != string(hdr) {
			s.host.WriteFileAt(s.fileName(f), 0, hdr)
			fsStats.repairedShards.Add(1)
		}
	}
	return nil
}

// Scrub runs ScrubStep to completion: one full verify-and-repair pass
// over every committed block plus the table. Returns blocks scrubbed
// and the first unrecoverable error.
func (s *BlockStore) Scrub() (blocks int, err error) {
	before := fsStats.scrubbedBlocks.Load()
	for {
		worked, serr := s.ScrubStep(64)
		if serr != nil && err == nil {
			err = serr
		}
		if !worked {
			return int(fsStats.scrubbedBlocks.Load() - before), err
		}
	}
}

// Repair rebuilds every damaged or missing shard of the committed state
// — the offline recovery path after losing an entire backing file. It
// restores file headers and the commit record on every shard file, then
// walks all committed stripes re-verifying (and re-writing) shards
// against the MAC table. Returns the number of shards rebuilt. The store
// must be freshly opened or flushed (no uncommitted writes), because
// repair re-derives on-disk state from the last commit.
func (s *BlockStore) Repair() (rebuilt int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirtyHdr {
		return 0, fmt.Errorf("fs: repair requires a clean (flushed) store")
	}
	before := fsStats.repairedShards.Load()
	if rerr := s.scrubTableLocked(); rerr != nil {
		err = rerr
	}
	for i := 0; i < s.maxBlocks; i++ {
		if s.versions[i] == 0 {
			continue
		}
		if _, rerr := s.readBlockLocked(i); rerr != nil && err == nil {
			err = rerr
		}
	}
	rebuilt = int(fsStats.repairedShards.Load() - before)
	fsStats.rebuiltShards.Add(uint64(rebuilt))
	return rebuilt, err
}
