package fs

import (
	"encoding/binary"
	"fmt"
)

// Fsck checks the on-disk invariants of the encrypted filesystem: every
// directory entry references a live inode of a sane mode, the tree is
// acyclic, no block is claimed by two owners, every claimed block is
// marked used in the bitmap, and no data block is marked used without an
// owner (a leak). The crash-consistency tests run it after remounting an
// image whose sync was cut short: the A/B-slot store plus the atomic
// header+table commit must leave a tree for which all of this still
// holds.
func (fs *EncFS) Fsck() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	owner := make(map[int]int) // device block → owning inode
	claim := func(blk, ino int) error {
		if blk < fs.dataStart || blk >= fs.store.MaxBlocks() {
			return fmt.Errorf("fs: fsck: inode %d references out-of-range block %d", ino, blk)
		}
		if prev, ok := owner[blk]; ok {
			return fmt.Errorf("fs: fsck: block %d double-allocated (inodes %d and %d)", blk, prev, ino)
		}
		owner[blk] = ino
		used, err := fs.bitmapBit(blk)
		if err != nil {
			return err
		}
		if !used {
			return fmt.Errorf("fs: fsck: block %d of inode %d not marked used", blk, ino)
		}
		return nil
	}

	// claimInode walks one inode's block mapping, including the mapping
	// tables themselves.
	claimInode := func(ino int, in *inode) error {
		nblocks := int((in.size + BlockSize - 1) / BlockSize)
		for fb := 0; fb < nblocks; fb++ {
			blk, err := fs.fileBlock(in, fb, false)
			if err != nil {
				return err
			}
			if blk != 0 {
				if err := claim(blk, ino); err != nil {
					return err
				}
			}
		}
		if in.indirect != 0 {
			if err := claim(int(in.indirect), ino); err != nil {
				return err
			}
		}
		if in.dblIndir != 0 {
			if err := claim(int(in.dblIndir), ino); err != nil {
				return err
			}
			p, err := fs.getBlock(int(in.dblIndir))
			if err != nil {
				return err
			}
			for i := 0; i < ptrsPerBlk; i++ {
				if l1 := binary.LittleEndian.Uint32(p.data[i*4:]); l1 != 0 {
					if err := claim(int(l1), ino); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	visited := make(map[int]bool)
	var walk func(ino int) error
	walk = func(ino int) error {
		if visited[ino] {
			return fmt.Errorf("fs: fsck: inode %d referenced twice (cycle or duplicate dirent)", ino)
		}
		visited[ino] = true
		in, err := fs.readInode(ino)
		if err != nil {
			return err
		}
		if in.mode != modeFile && in.mode != modeDir {
			return fmt.Errorf("fs: fsck: inode %d has invalid mode %d", ino, in.mode)
		}
		if err := claimInode(ino, &in); err != nil {
			return err
		}
		if in.mode != modeDir {
			return nil
		}
		ents := int(in.size) / direntSize
		buf := make([]byte, direntSize)
		for i := 0; i < ents; i++ {
			if _, err := fs.readAtLocked(ino, buf, int64(i*direntSize)); err != nil {
				return err
			}
			cIno := int(binary.LittleEndian.Uint32(buf))
			if cIno == 0 {
				continue
			}
			if nl := int(buf[4]); nl > maxNameLen {
				return fmt.Errorf("fs: fsck: dirent %d of inode %d has bad name length %d", i, ino, nl)
			}
			if err := walk(cIno); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(1); err != nil {
		return err
	}

	// Leak check: every data-area block marked used must have an owner.
	for blk := fs.dataStart; blk < fs.store.MaxBlocks(); blk++ {
		used, err := fs.bitmapBit(blk)
		if err != nil {
			return err
		}
		if used {
			if _, ok := owner[blk]; !ok {
				return fmt.Errorf("fs: fsck: block %d leaked (marked used, no owner)", blk)
			}
		}
	}
	return nil
}

// bitmapBit reads one allocation bit. Caller holds fs.mu.
func (fs *EncFS) bitmapBit(block int) (bool, error) {
	p, err := fs.getBlock(fs.bitmapStart + block/(BlockSize*8))
	if err != nil {
		return false, err
	}
	bit := block % (BlockSize * 8)
	return p.data[bit/8]&(1<<(bit%8)) != 0, nil
}
