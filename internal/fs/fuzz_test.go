package fs_test

import (
	"io"
	"path"
	"sync"
	"testing"

	"repro/internal/fs"
	"repro/internal/hostos"
)

// fuzzVFS builds one VFS over the full LibOS root-mount shape — a union
// of a packed read-only image (lower) and a real encrypted filesystem
// (upper), plus devfs — shared by every fuzz execution in the process
// (the resolver is mutex-protected and the fuzz only needs reachable
// state, not a pristine image per input). The mutating half of the fuzz
// therefore exercises copy-up creates and whiteout unlinks on every
// iteration.
var (
	fuzzOnce sync.Once
	fuzzV    *fs.VFS
)

func fuzzVFS(tb testing.TB) *fs.VFS {
	fuzzOnce.Do(func() {
		host := hostos.New()
		// Lower layer: /etc/hosts and /fuzzdir/seed baked into the image
		// so path resolution crosses into the image layer, and creates
		// under /fuzzdir land next to image content.
		ib := fs.NewImageBuilder()
		if err := ib.AddFile("/etc/hosts", []byte("127.0.0.1 localhost\n")); err != nil {
			tb.Fatal(err)
		}
		if err := ib.AddFile("/fuzzdir/seed", []byte("image seed")); err != nil {
			tb.Fatal(err)
		}
		blob, root, err := ib.Build()
		if err != nil {
			tb.Fatal(err)
		}
		host.WriteFile("base.img", blob)
		lower, err := fs.MountImage(host, "base.img", root)
		if err != nil {
			tb.Fatal(err)
		}

		store, err := fs.CreateStore(host, "fuzz.img", fs.KeyFromString("fuzz"), 512)
		if err != nil {
			tb.Fatal(err)
		}
		if err := fs.Mkfs(store); err != nil {
			tb.Fatal(err)
		}
		enc, err := fs.Mount(store)
		if err != nil {
			tb.Fatal(err)
		}
		v := fs.NewVFS()
		v.Mount("/", fs.NewUnionFS(enc, lower))
		v.Mount("/dev", fs.NewDevFS(io.Discard))
		fuzzV = v
	})
	return fuzzV
}

// FuzzVFSPath fuzzes path resolution across the mount table, the union
// walk (copy-up and whiteout paths) and the image layer's directory
// walk: no input may panic the resolver, resolution must be invariant
// under path.Clean (the routing normalizes before matching mounts), and
// a successful create must be observable — and removable — through the
// same path.
func FuzzVFSPath(f *testing.F) {
	for _, seed := range []string{
		"", "/", ".", "..", "/.", "/..", "/../..",
		"/etc/hosts", "etc/hosts", "/etc//hosts", "/etc/./hosts",
		"/etc/../etc/hosts", "//etc///hosts/",
		"/dev/null", "/dev/console", "dev/null",
		"/nonexistent", "/etc/hosts/impossible-child",
		"/a/b/c/d/e/f/g", "a//b/../../c", "....//....",
		"/etc/\x00/x", "/\xff\xfe", "/etc/hosts ", " /etc/hosts",
		"/dev", "/dev/", "/dev/..", "/dev/../etc/hosts",
		"/fuzzdir/seed", "/.wh.x", "/fuzzdir/.wh.seed", "/.wh..wh..opq",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, p string) {
		v := fuzzVFS(t)
		clean := path.Clean("/" + p)

		// Read-only resolution: must not panic, and must agree with the
		// cleaned form of the same path.
		fi1, err1 := v.Stat(p)
		fi2, err2 := v.Stat(clean)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Stat(%q) err=%v but Stat(clean %q) err=%v", p, err1, clean, err2)
		}
		if err1 == nil && fi1 != fi2 {
			t.Fatalf("Stat(%q) = %+v but Stat(clean %q) = %+v", p, fi1, clean, fi2)
		}
		if n, err := v.Open(p, fs.ORdOnly); err == nil {
			n.Close()
		} else if err1 == nil && !fi1.IsDir {
			t.Fatalf("Stat(%q) succeeded on a file but Open failed: %v", p, err)
		}
		_, _ = v.ReadDir(p)

		// Mutating resolution under a dedicated subtree so the fuzz
		// cannot eat the fixture files. /fuzzdir lives in the read-only
		// image, so every create here is a copy-up-style create into
		// the upper layer and every unlink a real union unlink; a
		// successful create must be visible via Stat, and unlink must
		// remove it again (whiteout correctness).
		sub := "/fuzzdir" + clean
		if n, err := v.Open(sub, fs.OCreate|fs.ORdWr); err == nil {
			n.Close()
			if _, serr := v.Stat(sub); serr != nil {
				t.Fatalf("created %q but Stat fails: %v", sub, serr)
			}
			if uerr := v.Unlink(sub); uerr != nil {
				t.Fatalf("created %q but Unlink fails: %v", sub, uerr)
			}
			if _, serr := v.Stat(sub); serr == nil {
				t.Fatalf("unlinked %q but Stat still succeeds", sub)
			}
		}
	})
}

// FuzzImageFS mounts attacker-controlled image bytes. Two trust models
// are exercised per input: a pinned root that cannot match (mount must
// fail closed) and a self-consistent root recomputed from the blob
// itself (parsing must then survive arbitrary structure: no panics, no
// out-of-bounds, reads bounded by the reported sizes).
func FuzzImageFS(f *testing.F) {
	ib := fs.NewImageBuilder()
	_ = ib.AddFile("/etc/hosts", []byte("seed content"))
	_ = ib.AddFile("/bin/tool", make([]byte, 3*4096))
	_ = ib.AddDir("/empty")
	blob, _, err := ib.Build()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:4096])
	f.Add([]byte("OCIMG\x00\x00\x01garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		host := hostos.New()
		host.WriteFile("img", data)

		// A root the attacker cannot know: mount must always fail.
		if _, err := fs.MountImage(host, "img", [32]byte{1, 2, 3}); err == nil {
			t.Fatal("mount with unmatchable root succeeded")
		}

		// Self-consistent root: the attacker controls all content, so
		// mounts may succeed — everything after that must stay memory-safe
		// and bounded.
		root, err := fs.ImageRoot(data)
		if err != nil {
			return
		}
		ifs, err := fs.MountImage(host, "img", root)
		if err != nil {
			return
		}
		var walk func(dir string, depth int)
		visited := 0
		walk = func(dir string, depth int) {
			if depth > 3 || visited > 200 {
				return
			}
			ents, err := ifs.ReadDir(dir)
			if err != nil {
				return
			}
			for _, e := range ents {
				if visited++; visited > 200 {
					return
				}
				p := dir + "/" + e.Name
				if e.IsDir {
					walk(p, depth+1)
					continue
				}
				n, err := ifs.Open(p, fs.ORdOnly)
				if err != nil {
					continue
				}
				buf := make([]byte, 4096)
				if rn, err := n.ReadAt(buf, 0); err == nil && rn > len(buf) {
					t.Fatalf("read of %q returned %d > buffer", p, rn)
				}
				n.Close()
			}
		}
		walk("", 0)
		_, _ = ifs.Stat("/etc/hosts")
		_, _ = ifs.Open("/does/not/exist", fs.ORdOnly)
	})
}
