package fs_test

import (
	"io"
	"path"
	"sync"
	"testing"

	"repro/internal/fs"
	"repro/internal/hostos"
)

// fuzzVFS builds one VFS over a real encrypted filesystem plus devfs —
// the same mount shape the LibOS boots — shared by every fuzz
// execution in the process (the resolver is mutex-protected and the
// fuzz only needs reachable state, not a pristine image per input).
var (
	fuzzOnce sync.Once
	fuzzV    *fs.VFS
)

func fuzzVFS(tb testing.TB) *fs.VFS {
	fuzzOnce.Do(func() {
		store, err := fs.CreateStore(hostos.New(), "fuzz.img", fs.KeyFromString("fuzz"), 512)
		if err != nil {
			tb.Fatal(err)
		}
		if err := fs.Mkfs(store); err != nil {
			tb.Fatal(err)
		}
		enc, err := fs.Mount(store)
		if err != nil {
			tb.Fatal(err)
		}
		v := fs.NewVFS()
		v.Mount("/", enc)
		v.Mount("/dev", fs.NewDevFS(io.Discard))
		if err := v.Mkdir("/etc"); err != nil {
			tb.Fatal(err)
		}
		// The mutating half of the fuzz creates under /fuzzdir; without
		// the parent every create would fail and that half would be
		// dead code.
		if err := v.Mkdir("/fuzzdir"); err != nil {
			tb.Fatal(err)
		}
		if n, err := v.Open("/etc/hosts", fs.OCreate|fs.ORdWr); err != nil {
			tb.Fatal(err)
		} else {
			n.Close()
		}
		fuzzV = v
	})
	return fuzzV
}

// FuzzVFSPath fuzzes path resolution across the mount table and the
// encrypted filesystem's directory walk: no input may panic the
// resolver, resolution must be invariant under path.Clean (the routing
// normalizes before matching mounts), and a successful create must be
// observable through the same path.
func FuzzVFSPath(f *testing.F) {
	for _, seed := range []string{
		"", "/", ".", "..", "/.", "/..", "/../..",
		"/etc/hosts", "etc/hosts", "/etc//hosts", "/etc/./hosts",
		"/etc/../etc/hosts", "//etc///hosts/",
		"/dev/null", "/dev/console", "dev/null",
		"/nonexistent", "/etc/hosts/impossible-child",
		"/a/b/c/d/e/f/g", "a//b/../../c", "....//....",
		"/etc/\x00/x", "/\xff\xfe", "/etc/hosts ", " /etc/hosts",
		"/dev", "/dev/", "/dev/..", "/dev/../etc/hosts",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, p string) {
		v := fuzzVFS(t)
		clean := path.Clean("/" + p)

		// Read-only resolution: must not panic, and must agree with the
		// cleaned form of the same path.
		fi1, err1 := v.Stat(p)
		fi2, err2 := v.Stat(clean)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Stat(%q) err=%v but Stat(clean %q) err=%v", p, err1, clean, err2)
		}
		if err1 == nil && fi1 != fi2 {
			t.Fatalf("Stat(%q) = %+v but Stat(clean %q) = %+v", p, fi1, clean, fi2)
		}
		if n, err := v.Open(p, fs.ORdOnly); err == nil {
			n.Close()
		} else if err1 == nil && !fi1.IsDir {
			t.Fatalf("Stat(%q) succeeded on a file but Open failed: %v", p, err)
		}
		_, _ = v.ReadDir(p)

		// Mutating resolution under a dedicated subtree so the fuzz
		// cannot eat the fixture files: a successful create must be
		// visible via Stat, and unlink must remove it again.
		sub := "/fuzzdir" + clean
		if n, err := v.Open(sub, fs.OCreate|fs.ORdWr); err == nil {
			n.Close()
			if _, serr := v.Stat(sub); serr != nil {
				t.Fatalf("created %q but Stat fails: %v", sub, serr)
			}
			if uerr := v.Unlink(sub); uerr != nil {
				t.Fatalf("created %q but Unlink fails: %v", sub, uerr)
			}
		}
	})
}
