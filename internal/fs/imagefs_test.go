package fs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hostos"
)

// buildTestImage packs a representative tree: nested dirs, an empty
// file, a one-block file, and a multi-block file with random content.
func buildTestImage(t testing.TB) (files map[string][]byte, blob []byte, root [32]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	big := make([]byte, 5*BlockSize+123)
	rng.Read(big)
	files = map[string][]byte{
		"/etc/hosts":        []byte("127.0.0.1 localhost\n"),
		"/etc/app/conf":     []byte("key=value"),
		"/bin/tool":         big,
		"/empty":            {},
		"/data/nested/deep": []byte("bottom of the tree"),
	}
	b := NewImageBuilder()
	if err := b.AddDir("/var"); err != nil {
		t.Fatal(err)
	}
	for p, d := range files {
		if err := b.AddFile(p, d); err != nil {
			t.Fatal(err)
		}
	}
	blob, root, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return files, blob, root
}

func mountTestImage(t testing.TB, blob []byte, root [32]byte) *ImageFS {
	t.Helper()
	h := hostos.New()
	h.WriteFile("base.img", blob)
	ifs, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	return ifs
}

func TestImageRoundTrip(t *testing.T) {
	files, blob, root := buildTestImage(t)
	ifs := mountTestImage(t, blob, root)
	for p, want := range files {
		n, err := ifs.Open(p, ORdOnly)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		if n.Size() != int64(len(want)) {
			t.Fatalf("%s: size %d, want %d", p, n.Size(), len(want))
		}
		got := make([]byte, len(want))
		if rn, err := n.ReadAt(got, 0); err != nil || rn != len(want) {
			t.Fatalf("%s: read %d, %v", p, rn, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch", p)
		}
	}
	// Unaligned reads across block boundaries.
	n, _ := ifs.Open("/bin/tool", ORdOnly)
	got := make([]byte, 1000)
	if _, err := n.ReadAt(got, BlockSize-500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["/bin/tool"][BlockSize-500:BlockSize+500]) {
		t.Fatal("unaligned read mismatch")
	}
	// ReadDir + Stat.
	ents, err := ifs.ReadDir("/etc")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, e := range ents {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	if fmt.Sprint(names) != "[app hosts]" {
		t.Fatalf("readdir /etc = %v", names)
	}
	if fi, err := ifs.Stat("/var"); err != nil || !fi.IsDir {
		t.Fatalf("stat /var = %+v, %v", fi, err)
	}
	if _, err := ifs.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
}

func TestImageIsReadOnly(t *testing.T) {
	_, blob, root := buildTestImage(t)
	ifs := mountTestImage(t, blob, root)
	if _, err := ifs.Open("/etc/hosts", ORdWr); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("writable open: %v", err)
	}
	if _, err := ifs.Open("/new", OCreate|OWrOnly); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create: %v", err)
	}
	if err := ifs.Mkdir("/d"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mkdir: %v", err)
	}
	if err := ifs.Unlink("/etc/hosts"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("unlink: %v", err)
	}
	n, _ := ifs.Open("/etc/hosts", ORdOnly)
	if _, err := n.WriteAt([]byte("x"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("node write: %v", err)
	}
}

func TestImageWrongRootRejected(t *testing.T) {
	_, blob, root := buildTestImage(t)
	h := hostos.New()
	h.WriteFile("base.img", blob)
	bad := root
	bad[7] ^= 1
	if _, err := MountImage(h, "base.img", bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong root: %v", err)
	}
}

// readEverything exercises every file and directory of the mounted
// image, returning the first error.
func readEverything(ifs *ImageFS, files map[string][]byte) error {
	for p, want := range files {
		n, err := ifs.Open(p, ORdOnly)
		if err != nil {
			return err
		}
		got := make([]byte, len(want))
		if _, err := n.ReadAt(got, 0); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("content of %s silently corrupted", p)
		}
	}
	for _, d := range []string{"/", "/etc", "/etc/app", "/bin", "/data", "/data/nested", "/var"} {
		if _, err := ifs.ReadDir(d); err != nil {
			return err
		}
	}
	return nil
}

// TestImageTamperAnyBit flips one bit at sampled offsets across the
// whole blob — superblock, inode table, data extents and the Merkle
// node region. A flip anywhere in the content-block region must fail
// closed (ErrCorrupt/ErrBadKey at mount or read). A flip in the stored
// Merkle nodes either fails closed or is provably harmless: path
// memoization can make a redundant stored node dead, in which case
// every read must still return the exact original bytes. Silently
// serving wrong content is the one forbidden outcome everywhere.
func TestImageTamperAnyBit(t *testing.T) {
	files, blob, root := buildTestImage(t)
	blockRegion := int(binary.LittleEndian.Uint32(blob[8:])) * BlockSize
	step := 41 // prime stride: hits every region including the tree tail
	var detected, harmless int
	for off := 0; off < len(blob); off += step {
		h := hostos.New()
		h.WriteFile("base.img", blob)
		if err := h.FlipBit("base.img", off); err != nil {
			t.Fatal(err)
		}
		ifs, err := MountImage(h, "base.img", root)
		if err == nil {
			err = readEverything(ifs, files)
		}
		switch {
		case err == nil:
			// readEverything compared every byte against the original:
			// the flip was never consulted. Only legal for redundant
			// stored tree nodes.
			if off < blockRegion {
				t.Fatalf("bit flip at content offset %d went undetected", off)
			}
			harmless++
		case errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadKey):
			detected++
		default:
			t.Fatalf("offset %d: unexpected error class: %v", off, err)
		}
	}
	if detected == 0 {
		t.Fatal("no flips detected at all")
	}
	t.Logf("%d flips detected, %d harmless (redundant tree nodes); blob %d bytes, content region %d",
		detected, harmless, len(blob), blockRegion)
}

// TestImageTruncated cuts the backing file at assorted lengths. A cut
// into the content-block region must fail closed; a cut that only loses
// redundant tree-node bytes must either fail closed or still serve
// every original byte exactly.
func TestImageTruncated(t *testing.T) {
	files, blob, root := buildTestImage(t)
	blockRegion := int(binary.LittleEndian.Uint32(blob[8:])) * BlockSize
	for _, cut := range []int{0, 7, BlockSize - 1, BlockSize, len(blob) / 2,
		blockRegion - 1, blockRegion, len(blob) - 33, len(blob) - 1} {
		h := hostos.New()
		h.WriteFile("base.img", blob[:cut])
		ifs, err := MountImage(h, "base.img", root)
		if err == nil {
			err = readEverything(ifs, files)
		}
		if err == nil && cut < blockRegion {
			t.Fatalf("truncation to %d bytes (inside content region) went undetected", cut)
		}
	}
}

// TestImageReadAheadAndVerifyOnce checks the lazy verification
// contract: a sequential read verifies each block once (with the
// read-ahead doing most fetches), and a warm re-read hashes nothing.
func TestImageReadAheadAndVerifyOnce(t *testing.T) {
	files, blob, root := buildTestImage(t)
	ifs := mountTestImage(t, blob, root)
	want := files["/bin/tool"]

	before := Stats()
	n, err := ifs.Open("/bin/tool", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := n.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	cold := Stats().Sub(before)
	if cold.VerifiedBlocks == 0 {
		t.Fatal("cold read verified nothing")
	}
	if cold.ReadAheads == 0 {
		t.Fatal("sequential cold read triggered no read-ahead")
	}

	before = Stats()
	if _, err := n.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	warm := Stats().Sub(before)
	if warm.VerifiedBlocks != 0 {
		t.Fatalf("warm re-read re-verified %d blocks", warm.VerifiedBlocks)
	}
	if warm.VerifyHits == 0 {
		t.Fatal("warm re-read recorded no cache hits")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch")
	}
}

func TestImageRootRecompute(t *testing.T) {
	_, blob, root := buildTestImage(t)
	got, err := ImageRoot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got != root {
		t.Fatal("ImageRoot disagrees with Build")
	}
}
