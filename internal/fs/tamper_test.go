package fs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/hostos"
)

// This file is the BlockStore half of the tamper battery the image
// layer's TestImageTamperAnyBit mirrors, updated for the erasure-coded
// layout. The envelope it pins down:
//
//   - accidental damage to at most m shards of a stripe (bit-rot, torn
//     or truncated cells, a whole deleted backing file) is repaired
//     transparently, and only after the reconstruction re-verifies
//     against the MAC table;
//   - damage beyond m shards, and any adversarial tampering — even one
//     that keeps data, parity and crc trailers mutually consistent —
//     fails closed with ErrCorrupt. Parity reconstructs bytes; it never
//     authenticates them.

func newTamperStore(t *testing.T) (*hostos.Host, *BlockStore, Key) {
	t.Helper()
	h := hostos.New()
	key := KeyFromString("tamper")
	s, err := CreateStore(h, "dev", key, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.WriteBlock(i, []byte{byte(i), 0xEE, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return h, s, key
}

// wantBlock asserts block i of the tamper store reads back intact.
func wantBlock(t *testing.T, s *BlockStore, i int) {
	t.Helper()
	got, err := s.ReadBlock(i)
	if err != nil {
		t.Fatalf("block %d: %v", i, err)
	}
	if !bytes.Equal(got[:3], []byte{byte(i), 0xEE, byte(i)}) {
		t.Fatalf("block %d content mangled: % x", i, got[:3])
	}
}

// TestBlockStoreBitFlipAnyShardRepaired flips one bit in every
// byte-offset sample of every block's live cell, in each backing file in
// turn: the read must succeed with the original content (repaired from
// parity), and so must a read through a fresh open of the damaged image.
func TestBlockStoreBitFlipAnyShardRepaired(t *testing.T) {
	h, s, key := newTamperStore(t)
	pristine := h.CopyFiles("dev.s*")
	ss := s.shardSize()
	for blk := 0; blk < 8; blk++ {
		for _, within := range []int{0, 1, ss / 2, ss - 1} {
			for f := 0; f < s.nFiles(); f++ {
				h.PutFiles(pristine)
				off := s.cellOff(s.blockStripe(blk, s.slots[blk])) + within
				if err := h.FlipBit(s.fileName(f), off); err != nil {
					t.Fatal(err)
				}
				before := Stats().RepairedShards
				wantBlock(t, s, blk)
				if Stats().RepairedShards == before {
					t.Fatalf("block %d file %d: flip was not repaired", blk, f)
				}
				// The repair must have stuck: pristine bytes again on disk.
				wantBlock(t, s, blk)

				// Same through a fresh mount of the damaged image.
				h.PutFiles(pristine)
				_ = h.FlipBit(s.fileName(f), off)
				s2, err := OpenStore(h, "dev", key)
				if err != nil {
					t.Fatalf("block %d file %d: open: %v", blk, f, err)
				}
				wantBlock(t, s2, blk)
			}
		}
	}
	h.PutFiles(pristine)
}

// TestBlockStoreBeyondParityFailsClosed: damage to m+1 shards of one
// stripe is past the code's reach and must fail closed — never serve
// wrong bytes, never panic.
func TestBlockStoreBeyondParityFailsClosed(t *testing.T) {
	h, s, key := newTamperStore(t)
	_, m := s.Geometry()
	off := s.cellOff(s.blockStripe(5, s.slots[5])) + 7
	for f := 0; f <= m; f++ {
		if err := h.FlipBit(s.fileName(f), off); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ReadBlock(5); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("m+1 corrupt shards: err = %v, want ErrCorrupt", err)
	}
	// Other blocks are untouched.
	wantBlock(t, s, 4)
	// Fresh open still works (table intact) but the dead block stays dead.
	s2, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ReadBlock(5); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("m+1 corrupt shards after reopen: err = %v, want ErrCorrupt", err)
	}
}

// TestBlockStoreAdversarialConsistentTamper forges a whole stripe the
// way a hostile host would: attacker-chosen data shards with correctly
// recomputed parity and crc trailers. The erasure decode succeeds — the
// stripe is internally flawless — so the only thing standing between
// the forged bytes and the caller is the MAC re-verification. The read
// must fail closed, and must NOT "repair" any real shard from the
// forged ones.
func TestBlockStoreAdversarialConsistentTamper(t *testing.T) {
	h, s, _ := newTamperStore(t)
	k, m := s.Geometry()
	ss := s.shardSize()
	rs, err := newRS(k, m)
	if err != nil {
		t.Fatal(err)
	}
	forged := bytes.Repeat([]byte{0x5A}, BlockSize)
	shards := make([][]byte, k+m)
	for d := 0; d < k; d++ {
		shards[d] = forged[d*ss : (d+1)*ss]
	}
	for p := 0; p < m; p++ {
		shards[k+p] = make([]byte, ss)
	}
	rs.encode(shards)
	off := s.cellOff(s.blockStripe(2, s.slots[2]))
	for f := 0; f < k+m; f++ {
		cell := make([]byte, ss+8)
		copy(cell, shards[f])
		binary.LittleEndian.PutUint32(cell[ss:], crc32.ChecksumIEEE(shards[f]))
		h.WriteFileAt(s.fileName(f), off, cell)
	}
	if _, err := s.ReadBlock(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("consistent forged stripe: err = %v, want ErrCorrupt", err)
	}
	wantBlock(t, s, 3)
}

// TestBlockStoreForgedCRCRepaired: an attacker corrupts one shard's
// payload AND fixes up its crc trailer, so the locator lies. The
// crc-guided decode then assembles wrong bytes — which the MAC rejects —
// and the bounded subset search must find the honest k-subset, serve
// the true content, and repair the forged shard.
func TestBlockStoreForgedCRCRepaired(t *testing.T) {
	h, s, _ := newTamperStore(t)
	ss := s.shardSize()
	off := s.cellOff(s.blockStripe(6, s.slots[6]))
	cell := make([]byte, ss+8)
	if n, err := h.ReadFileAt(s.fileName(1), off, cell); err != nil || n < len(cell) {
		t.Fatal("short read of pristine cell")
	}
	cell[10] ^= 0xFF
	binary.LittleEndian.PutUint32(cell[ss:], crc32.ChecksumIEEE(cell[:ss]))
	h.WriteFileAt(s.fileName(1), off, cell)

	before := Stats().RepairedShards
	wantBlock(t, s, 6)
	if Stats().RepairedShards == before {
		t.Fatal("forged-crc shard was not repaired")
	}
	// Repair wrote honest bytes back over the forgery.
	after := make([]byte, ss+8)
	h.ReadFileAt(s.fileName(1), off, after)
	if bytes.Equal(after[:ss], cell[:ss]) {
		t.Fatal("forged shard still on disk after repair")
	}
}

// TestBlockStoreStaleEpochRollback rolls every backing file back to an
// earlier epoch. Because the A/B slots deliberately preserve the
// previous epoch's ciphertext (that is what makes crashes recoverable),
// the rolled-back image is fully self-consistent — indistinguishable
// from a real old disk. Catching it therefore requires the trusted
// epoch witness: OpenStoreAt must fail closed, and the plain OpenStore
// must at worst yield the stale-but-authentic old contents, never a
// mix.
func TestBlockStoreStaleEpochRollback(t *testing.T) {
	h, s, key := newTamperStore(t)
	oldImage := h.CopyFiles("dev.s*")
	oldEpoch := s.Epoch()

	if err := s.WriteBlock(3, []byte("new generation")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	trustedEpoch := s.Epoch()
	if trustedEpoch == oldEpoch {
		t.Fatal("flush did not advance the epoch")
	}

	// Host rolls records, table and data back wholesale.
	h.DropFiles("dev.s*")
	h.PutFiles(oldImage)
	if _, err := OpenStoreAt(h, "dev", key, trustedEpoch); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale epoch with witness: err = %v, want ErrCorrupt", err)
	}
	// Without the witness the old image opens, but serves only the old
	// authentic content.
	s2, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:3], []byte{3, 0xEE, 3}) {
		t.Fatal("rollback served mixed-generation data")
	}

	// Partial rollback — a stale table over data that no longer matches
	// it — is detectable even without a witness: the stale table's MACs
	// bind the old versions. Corrupt both slots of block 3 beyond the
	// parity's reach so neither generation's ciphertext survives.
	h.DropFiles("dev.s*")
	h.PutFiles(oldImage)
	_, m := s.Geometry()
	for _, slot := range []uint8{0, 1} {
		off := s.cellOff(s.blockStripe(3, slot)) + 10
		for f := 0; f <= m; f++ {
			_ = h.FlipBit(s.fileName(f), off)
		}
	}
	s3, err := OpenStore(h, "dev", key)
	if err == nil {
		_, err = s3.ReadBlock(3)
	}
	errAny(t, err, ErrCorrupt, ErrBadKey)
}

// TestBlockStoreTruncatedOneFile cuts a single backing file at every
// interesting point — inside the header, inside each commit record,
// just into the shard area, mid-data, one byte short. Each cut is at
// most one lost shard per stripe, so open must succeed and EVERY block
// must read back intact (short reads surface as repairable shard loss,
// never as zero-fill or a panic).
func TestBlockStoreTruncatedOneFile(t *testing.T) {
	h, s, key := newTamperStore(t)
	pristine := h.CopyFiles("dev.s*")
	size := h.FileSize(s.fileName(1))
	cuts := []int{0, fileHeaderSize - 1, fileHeaderSize + 3,
		fileHeaderSize + commitRecordSize + 8, shardDataStart - 1,
		shardDataStart + 3, size / 2, size - 1}
	for _, cut := range cuts {
		h.PutFiles(pristine)
		trunc := append([]byte(nil), pristine[s.fileName(1)][:cut]...)
		h.RemoveFile(s.fileName(1))
		h.WriteFile(s.fileName(1), trunc)
		s2, err := OpenStore(h, "dev", key)
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		for blk := 0; blk < 8; blk++ {
			wantBlock(t, s2, blk)
		}
	}
	h.PutFiles(pristine)
	_ = s
}

// TestBlockStoreTruncatedBeyondParity cuts m+1 backing files mid-data:
// blocks whose cells fell off the cut ends must fail with ErrCorrupt
// (not zeros, not a panic); blocks before the cut still read fine.
func TestBlockStoreTruncatedBeyondParity(t *testing.T) {
	h, s, key := newTamperStore(t)
	_, m := s.Geometry()
	// Cut right after block 3's later slot: blocks 0..3 keep all shards,
	// blocks 4..7 lose one shard per truncated file.
	cut := s.cellOff(s.blockStripe(4, 0))
	for f := 0; f <= m; f++ {
		name := s.fileName(f)
		raw, err := h.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		h.RemoveFile(name)
		h.WriteFile(name, raw[:cut])
	}
	s2, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 4; blk++ {
		wantBlock(t, s2, blk)
	}
	for blk := 4; blk < 8; blk++ {
		if _, err := s2.ReadBlock(blk); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("block %d beyond m+1 cuts: err = %v, want ErrCorrupt", blk, err)
		}
	}
	// Truncating every file to nothing must refuse to open entirely.
	for f := 0; f < s.nFiles(); f++ {
		name := s.fileName(f)
		h.RemoveFile(name)
		h.WriteFile(name, []byte{})
	}
	if _, err := OpenStore(h, "dev", key); err == nil {
		t.Fatal("fully truncated image opened")
	}
}

// TestBlockStoreDeletedFileRepaired: the host deletes an entire backing
// file. Open and every read must still succeed, and Repair must rebuild
// the file so a SECOND file loss later is also survivable.
func TestBlockStoreDeletedFileRepaired(t *testing.T) {
	h, s, key := newTamperStore(t)
	lost := s.fileName(2)
	h.RemoveFile(lost)

	s2, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatalf("open with deleted backing file: %v", err)
	}
	rebuilt, err := s2.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rebuilt == 0 {
		t.Fatal("repair rebuilt nothing for a deleted file")
	}
	if h.FileSize(lost) == 0 {
		t.Fatal("repair did not recreate the lost file")
	}
	for blk := 0; blk < 8; blk++ {
		wantBlock(t, s2, blk)
	}

	// The rebuilt file now carries real redundancy: lose a DIFFERENT
	// file and everything must still read.
	h.RemoveFile(s.fileName(5))
	s3, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 8; blk++ {
		wantBlock(t, s3, blk)
	}
}

// TestBlockStoreScrubHealsRot rots shards across the image at rest,
// then lets the scrubber walk the store: it must repair every damaged
// stripe (counters prove work happened), latch clean on an idle store,
// and wake up again after the next write.
func TestBlockStoreScrubHealsRot(t *testing.T) {
	h, s, _ := newTamperStore(t)
	_, m := s.Geometry()
	// Rot two shard files (= m, inside the envelope) across the block
	// data area.
	dataStart := s.cellOff(s.blockStripe(0, 0))
	for f := 0; f < m; f++ {
		h.CorruptFiles(s.fileName(f), dataStart, 0, 32, int64(f)+1)
	}
	before := Stats()
	var worked bool
	for {
		w, err := s.ScrubStep(3)
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		if !w {
			break
		}
		worked = true
	}
	if !worked {
		t.Fatal("scrub did no work on a rotted store")
	}
	d := Stats().Sub(before)
	if d.ScrubbedBlocks == 0 || d.RepairedShards == 0 {
		t.Fatalf("scrub counters: %+v", d)
	}
	// All content intact afterwards, with no faults left to mask.
	for blk := 0; blk < 8; blk++ {
		wantBlock(t, s, blk)
	}
	// Clean store: scrub is idle until the next mutation.
	if w, _ := s.ScrubStep(64); w {
		t.Fatal("scrub kept working on a clean store")
	}
	if err := s.WriteBlock(0, []byte{0, 0xEE, 0}); err != nil {
		t.Fatal(err)
	}
	if w, _ := s.ScrubStep(64); !w {
		t.Fatal("scrub did not wake after a write")
	}
}

// TestBlockStoreRepairNeverLaunders is the property test for the repair
// path's core invariant: whatever combination of shard corruption and
// crc forgery the host applies, a ReadBlock either returns the exact
// original content or ErrCorrupt — never different bytes. Repair can
// restore truth; it can never invent it.
func TestBlockStoreRepairNeverLaunders(t *testing.T) {
	h, s, _ := newTamperStore(t)
	pristine := h.CopyFiles("dev.s*")
	ss := s.shardSize()
	for trial := 0; trial < 64; trial++ {
		h.PutFiles(pristine)
		// Corrupt a pseudo-random subset of shards of block trial%8, with
		// pseudo-random crc forgery.
		blk := trial % 8
		off := s.cellOff(s.blockStripe(blk, s.slots[blk]))
		seed := uint32(trial)*2654435761 + 1
		for f := 0; f < s.nFiles(); f++ {
			seed = seed*1664525 + 1013904223
			if seed%3 == 0 {
				continue // leave this shard honest
			}
			cell := make([]byte, ss+8)
			if n, err := h.ReadFileAt(s.fileName(f), off, cell); err != nil || n < len(cell) {
				t.Fatal("short pristine read")
			}
			cell[int(seed)%ss] ^= byte(seed>>8) | 1
			if seed%2 == 0 { // forge the locator too
				binary.LittleEndian.PutUint32(cell[ss:], crc32.ChecksumIEEE(cell[:ss]))
			}
			h.WriteFileAt(s.fileName(f), off, cell)
		}
		got, err := s.ReadBlock(blk)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("trial %d: unexpected error class %v", trial, err)
			}
			continue
		}
		if !bytes.Equal(got[:3], []byte{byte(blk), 0xEE, byte(blk)}) {
			t.Fatalf("trial %d: read returned WRONG bytes instead of failing closed", trial)
		}
	}
}
