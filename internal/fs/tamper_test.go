package fs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/hostos"
)

// This file is the BlockStore half of the tamper battery the image
// layer's TestImageTamperAnyBit mirrors: single bit-flips in any live
// data slot, MAC-table rollback to a stale epoch, and truncated backing
// files must all fail closed with a verification error.

func newTamperStore(t *testing.T) (*hostos.Host, *BlockStore, Key) {
	t.Helper()
	h := hostos.New()
	key := KeyFromString("tamper")
	s, err := CreateStore(h, "dev", key, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.WriteBlock(i, []byte{byte(i), 0xEE, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return h, s, key
}

// TestBlockStoreBitFlipAnyDataBlock flips one bit in every byte-offset
// sample of every block's live ciphertext slot: each read must fail
// with ErrCorrupt, and a fresh open must never yield the corrupt bytes
// either.
func TestBlockStoreBitFlipAnyDataBlock(t *testing.T) {
	h, s, key := newTamperStore(t)
	pristine, _ := h.ReadFile("dev")
	for blk := 0; blk < 8; blk++ {
		for _, within := range []int{0, 1, BlockSize / 2, BlockSize - 1} {
			h.WriteFile("dev", pristine)
			off := s.blockOffset(blk, s.slots[blk]) + within
			if err := h.TamperFile("dev", off); err != nil {
				t.Fatal(err)
			}
			if _, err := s.ReadBlock(blk); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("block %d offset %d: err = %v, want ErrCorrupt", blk, within, err)
			}
			// Same through a fresh mount of the tampered image.
			s2, err := OpenStore(h, "dev", key)
			if err == nil {
				_, err = s2.ReadBlock(blk)
			}
			errAny(t, err, ErrCorrupt, ErrBadKey)
		}
	}
}

// TestBlockStoreStaleEpochRollback rolls the header + MAC table back to
// an earlier epoch. Because the A/B slots deliberately preserve the
// previous epoch's ciphertext (that is what makes crashes recoverable),
// the rolled-back image is fully self-consistent — indistinguishable
// from a real old disk. Catching it therefore requires the trusted
// epoch witness: OpenStoreAt must fail closed, and the plain OpenStore
// must at worst yield the stale-but-authentic old contents, never a
// mix.
func TestBlockStoreStaleEpochRollback(t *testing.T) {
	h, s, key := newTamperStore(t)
	oldImage, _ := h.ReadFile("dev")
	oldEpoch := s.Epoch()

	if err := s.WriteBlock(3, []byte("new generation")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	trustedEpoch := s.Epoch()
	if trustedEpoch == oldEpoch {
		t.Fatal("flush did not advance the epoch")
	}

	// Host rolls header+table (and data) back wholesale.
	h.WriteFile("dev", oldImage)
	if _, err := OpenStoreAt(h, "dev", key, trustedEpoch); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale epoch with witness: err = %v, want ErrCorrupt", err)
	}
	// Without the witness the old image opens, but serves only the old
	// authentic content.
	s2, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:3], []byte{3, 0xEE, 3}) {
		t.Fatal("rollback served mixed-generation data")
	}

	// Partial rollback — a stale header+table over data that no longer
	// matches it — is detectable even without a witness: the stale
	// table's MACs bind the old versions. Corrupt both slots of block 3
	// so neither generation's ciphertext survives.
	h.WriteFile("dev", oldImage)
	if err := h.TamperFile("dev", s.blockOffset(3, 0)+10); err != nil {
		t.Fatal(err)
	}
	if err := h.TamperFile("dev", s.blockOffset(3, 1)+10); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(h, "dev", key)
	if err == nil {
		_, err = s3.ReadBlock(3)
	}
	errAny(t, err, ErrCorrupt, ErrBadKey)
}

// TestBlockStoreTruncated cuts the backing file at several lengths:
// every cut must surface as ErrBadKey/ErrCorrupt at open or as
// ErrCorrupt on the first read of a block whose slot fell off the end.
func TestBlockStoreTruncated(t *testing.T) {
	h, s, key := newTamperStore(t)
	pristine, _ := h.ReadFile("dev")
	tableEnd := headerSize + 8*macEntrySize
	for _, cut := range []int{0, headerSize - 1, headerSize + 3, tableEnd - 1,
		tableEnd + BlockSize, len(pristine) / 2, len(pristine) - 1} {
		h.WriteFile("dev", pristine[:cut])
		s2, err := OpenStore(h, "dev", key)
		if err == nil {
			for blk := 0; blk < 8 && err == nil; blk++ {
				_, err = s2.ReadBlock(blk)
			}
		}
		if err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
		errAny(t, err, ErrCorrupt, ErrBadKey)
	}
	_ = s
}
