package fs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"testing"

	"repro/internal/hostos"
)

// This file is the filesystem analog of the interpreter's randomized
// differential test: a few thousand random operations are driven
// against the real filesystem and an in-memory model oracle in
// lockstep. Every operation's error class must agree, and the full tree
// state (names, types, sizes, contents) is compared periodically and at
// the end. The same harness runs twice — against bare EncFS and against
// the union mount (EncFS upper over a packed image lower), where the
// ops exercise copy-up, whiteouts and opaque directories for free.

// --- Model oracle ----------------------------------------------------------

type mnode struct {
	isDir bool
	// lowerDir marks directories seeded from the image layer: the union
	// cannot rename those (the image is immutable), so the model
	// predicts ErrReadOnly for them.
	lowerDir bool
	data     []byte
	children map[string]*mnode
}

func newModel() *mnode {
	return &mnode{isDir: true, children: map[string]*mnode{}}
}

func (m *mnode) clone() *mnode {
	c := &mnode{isDir: m.isDir, lowerDir: m.lowerDir, data: append([]byte(nil), m.data...)}
	if m.children != nil {
		c.children = make(map[string]*mnode, len(m.children))
		for n, ch := range m.children {
			c.children[n] = ch.clone()
		}
	}
	return c
}

func (m *mnode) resolve(p string) (*mnode, error) {
	cur := m
	for _, c := range splitPath(p) {
		if !cur.isDir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// resolveParent mirrors EncFS.resolveParent: walk all but the last
// component.
func (m *mnode) resolveParent(p string) (*mnode, string, error) {
	comps := splitPath(p)
	if len(comps) == 0 {
		return nil, "", ErrExist // "root has no parent"
	}
	cur := m
	for _, c := range comps[:len(comps)-1] {
		if !cur.isDir {
			return nil, "", ErrNotDir
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, "", ErrNotExist
		}
		cur = next
	}
	if !cur.isDir {
		return nil, "", ErrNotDir
	}
	return cur, comps[len(comps)-1], nil
}

// modelCreate mirrors Open(ORdWr|OCreate[|OTrunc]) returning the node.
func (m *mnode) create(p string, trunc bool) (*mnode, error) {
	if n, err := m.resolve(p); err == nil {
		if n.isDir {
			return nil, ErrIsDir
		}
		if trunc {
			n.data = nil
		}
		return n, nil
	}
	dir, name, err := m.resolveParent(p)
	if err != nil {
		return nil, err
	}
	if _, ok := dir.children[name]; ok {
		// resolve failed but the entry exists → intermediate weirdness;
		// cannot happen with a failed resolve of the full path.
		return nil, ErrExist
	}
	n := &mnode{}
	dir.children[name] = n
	return n, nil
}

func (m *mnode) write(p string, off int64, data []byte) error {
	n, err := m.resolve(p)
	if err != nil {
		return err
	}
	if n.isDir {
		return ErrIsDir
	}
	if need := off + int64(len(data)); need > int64(len(n.data)) {
		nd := make([]byte, need)
		copy(nd, n.data)
		n.data = nd
	}
	copy(n.data[off:], data)
	return nil
}

func (m *mnode) mkdir(p string) error {
	if _, err := m.resolve(p); err == nil {
		return ErrExist
	}
	dir, name, err := m.resolveParent(p)
	if err != nil {
		return err
	}
	dir.children[name] = &mnode{isDir: true, children: map[string]*mnode{}}
	return nil
}

func (m *mnode) unlink(p string) error {
	n, err := m.resolve(p)
	if err != nil {
		return err
	}
	if n.isDir && len(n.children) > 0 {
		return ErrNotEmpty
	}
	dir, name, err := m.resolveParent(p)
	if err != nil {
		return err
	}
	delete(dir.children, name)
	return nil
}

// rename mirrors EncFS.Rename's check order; union mode adds the
// immutable-lower-directory rule.
func (m *mnode) rename(oldp, newp string, union bool) error {
	oc, nc := path.Clean("/"+oldp), path.Clean("/"+newp)
	n, err := m.resolve(oc)
	if err != nil {
		return err
	}
	if oc == nc {
		return nil
	}
	if oc == "/" || nc == "/" {
		return ErrInvalid
	}
	if strings.HasPrefix(nc, oc+"/") {
		return ErrInvalid
	}
	odir, oname, err := m.resolveParent(oc)
	if err != nil {
		return err
	}
	ndir, nname, err := m.resolveParent(nc)
	if err != nil {
		return err
	}
	if t, ok := ndir.children[nname]; ok {
		if n.isDir != t.isDir {
			if t.isDir {
				return ErrIsDir
			}
			return ErrNotDir
		}
		if t.isDir && len(t.children) > 0 {
			return ErrNotEmpty
		}
	}
	if union && n.isDir && n.lowerDir {
		return ErrReadOnly
	}
	ndir.children[nname] = n
	delete(odir.children, oname)
	return nil
}

// --- Differential driver ---------------------------------------------------

// errClass buckets an error into the sentinel it wraps, so the model
// and the real filesystem can be compared without matching message
// strings.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrNotExist):
		return "ENOENT"
	case errors.Is(err, ErrExist):
		return "EEXIST"
	case errors.Is(err, ErrIsDir):
		return "EISDIR"
	case errors.Is(err, ErrNotDir):
		return "ENOTDIR"
	case errors.Is(err, ErrNotEmpty):
		return "ENOTEMPTY"
	case errors.Is(err, ErrReadOnly):
		return "EROFS"
	case errors.Is(err, ErrInvalid):
		return "EINVAL"
	case errors.Is(err, ErrNameTooLong):
		return "ENAMETOOLONG"
	case errors.Is(err, ErrFull):
		return "ENOSPC"
	default:
		return "other:" + err.Error()
	}
}

// renamerFS is what the differential drives: a filesystem with rename.
type renamerFS interface {
	FileSystem
	Renamer
}

// diffState is one differential run's shared state.
type diffState struct {
	t     *testing.T
	rng   *rand.Rand
	fs    renamerFS
	model *mnode
	union bool
	ops   int
}

var diffNames = []string{"f0", "f1", "f2", "g", "sub", "deep", "x"}
var diffDirs = []string{"/", "/a", "/a/b", "/c", "/img", "/img/sub"}

func (d *diffState) randPath() string {
	dir := diffDirs[d.rng.Intn(len(diffDirs))]
	switch d.rng.Intn(10) {
	case 0:
		return dir // operate on the directory itself
	case 1: // deliberately deep/unlikely path
		return path.Join(dir, diffNames[d.rng.Intn(len(diffNames))], diffNames[d.rng.Intn(len(diffNames))])
	default:
		return path.Join(dir, diffNames[d.rng.Intn(len(diffNames))])
	}
}

// step applies one random operation to both systems and compares the
// error class.
func (d *diffState) step() {
	d.ops++
	p := d.randPath()
	var gotErr, wantErr error
	var op string
	switch r := d.rng.Intn(100); {
	case r < 20: // create (sometimes truncating)
		trunc := d.rng.Intn(3) == 0
		flags := ORdWr | OCreate
		if trunc {
			flags |= OTrunc
		}
		op = fmt.Sprintf("create(%s, trunc=%v)", p, trunc)
		n, err := d.fs.Open(p, flags)
		if err == nil {
			n.Close()
		}
		gotErr = err
		_, wantErr = d.model.create(p, trunc)
	case r < 45: // write at a random offset
		size := d.rng.Intn(8 << 10)
		if d.rng.Intn(50) == 0 {
			size = 200 << 10 // occasionally large: indirect blocks
		}
		off := int64(d.rng.Intn(20 << 10))
		data := make([]byte, size)
		d.rng.Read(data)
		op = fmt.Sprintf("write(%s, off=%d, len=%d)", p, off, size)
		n, err := d.fs.Open(p, ORdWr)
		if err == nil {
			_, werr := n.WriteAt(data, off)
			n.Close()
			err = werr
		}
		gotErr = err
		wantErr = d.model.write(p, off, data)
	case r < 55: // mkdir
		op = fmt.Sprintf("mkdir(%s)", p)
		gotErr = d.fs.Mkdir(p)
		wantErr = d.model.mkdir(p)
	case r < 65: // readdir (deep-compared below; here just error class)
		op = fmt.Sprintf("readdir(%s)", p)
		_, gotErr = d.fs.ReadDir(p)
		n, err := d.model.resolve(p)
		wantErr = err
		if err == nil && !n.isDir {
			wantErr = ErrNotDir
		}
	case r < 80: // unlink
		if path.Clean("/"+p) == "/" {
			return
		}
		op = fmt.Sprintf("unlink(%s)", p)
		gotErr = d.fs.Unlink(p)
		wantErr = d.model.unlink(p)
	default: // rename
		q := d.randPath()
		if path.Clean("/"+p) == "/" || path.Clean("/"+q) == "/" {
			return
		}
		op = fmt.Sprintf("rename(%s, %s)", p, q)
		gotErr = d.fs.Rename(p, q)
		wantErr = d.model.rename(p, q, d.union)
	}
	if errClass(gotErr) != errClass(wantErr) {
		d.t.Fatalf("op %d %s: fs=%v model=%v", d.ops, op, gotErr, wantErr)
	}
}

// compareTree deep-compares the filesystem against the model: exact
// name sets, types, file sizes and file contents.
func (d *diffState) compareTree() {
	var walk func(p string, n *mnode)
	walk = func(p string, n *mnode) {
		if !n.isDir {
			fi, err := d.fs.Stat(p)
			if err != nil {
				d.t.Fatalf("after op %d: Stat(%s): %v", d.ops, p, err)
			}
			if fi.IsDir || fi.Size != int64(len(n.data)) {
				d.t.Fatalf("after op %d: %s: fs {dir=%v size=%d}, model {file size=%d}",
					d.ops, p, fi.IsDir, fi.Size, len(n.data))
			}
			f, err := d.fs.Open(p, ORdOnly)
			if err != nil {
				d.t.Fatalf("after op %d: Open(%s): %v", d.ops, p, err)
			}
			got := make([]byte, len(n.data))
			if _, err := f.ReadAt(got, 0); err != nil {
				d.t.Fatalf("after op %d: Read(%s): %v", d.ops, p, err)
			}
			f.Close()
			if !bytes.Equal(got, n.data) {
				d.t.Fatalf("after op %d: content of %s diverged", d.ops, p)
			}
			return
		}
		ents, err := d.fs.ReadDir(p)
		if err != nil {
			d.t.Fatalf("after op %d: ReadDir(%s): %v", d.ops, p, err)
		}
		var fsNames []string
		entByName := map[string]FileInfo{}
		for _, e := range ents {
			fsNames = append(fsNames, e.Name)
			entByName[e.Name] = e
		}
		var modelNames []string
		for name := range n.children {
			modelNames = append(modelNames, name)
		}
		sort.Strings(fsNames)
		sort.Strings(modelNames)
		if !equalStrings(fsNames, modelNames) {
			d.t.Fatalf("after op %d: ReadDir(%s): fs=%v model=%v", d.ops, p, fsNames, modelNames)
		}
		for name, child := range n.children {
			if entByName[name].IsDir != child.isDir {
				d.t.Fatalf("after op %d: %s/%s type diverged", d.ops, p, name)
			}
			walk(path.Join(p, name), child)
		}
	}
	walk("/", d.model)
}

func (d *diffState) run(nops int) {
	for i := 0; i < nops; i++ {
		d.step()
		if d.ops%64 == 0 {
			d.compareTree()
		}
	}
	d.compareTree()
}

// applyOps drives n random ops without tree comparison (used by the
// crash tests to build up state quickly).
func (d *diffState) applyOps(n int) {
	for i := 0; i < n; i++ {
		d.step()
	}
}

func TestDifferentialEncFS(t *testing.T) {
	for _, seed := range []int64{1, 7, 20260729} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			efs, _, _ := newFS(t, 16384)
			d := &diffState{t: t, rng: rand.New(rand.NewSource(seed)), fs: efs, model: newModel()}
			d.run(1500)
			if err := efs.Fsck(); err != nil {
				t.Fatalf("fsck after differential: %v", err)
			}
			t.Logf("%d ops diverged nowhere (seed %d)", d.ops, seed)
		})
	}
}

// seedLowerImage builds a random image tree and mirrors it into the
// model (directories flagged immutable-lower).
func seedLowerImage(t *testing.T, rng *rand.Rand, model *mnode) (*ImageFS, *hostos.Host) {
	t.Helper()
	b := NewImageBuilder()
	addFile := func(p string, size int) {
		data := make([]byte, size)
		rng.Read(data)
		if err := b.AddFile(p, data); err != nil {
			t.Fatal(err)
		}
		dir, name, err := model.resolveParent(p)
		if err != nil {
			t.Fatal(err)
		}
		dir.children[name] = &mnode{data: data}
	}
	addDir := func(p string) {
		if err := b.AddDir(p); err != nil {
			t.Fatal(err)
		}
		dir, name, err := model.resolveParent(p)
		if err != nil {
			t.Fatal(err)
		}
		dir.children[name] = &mnode{isDir: true, lowerDir: true, children: map[string]*mnode{}}
	}
	model.lowerDir = true
	addDir("/a") // collides with the driver's upper-dir pool on purpose
	addDir("/img")
	addDir("/img/sub")
	addFile("/img/f0", 100)
	addFile("/img/f1", 3*BlockSize+7)
	addFile("/img/sub/deep", 777)
	addFile("/seed", 5000)
	blob, root, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := hostos.New()
	h.WriteFile("base.img", blob)
	ifs, err := MountImage(h, "base.img", root)
	if err != nil {
		t.Fatal(err)
	}
	return ifs, h
}

func TestDifferentialUnionFS(t *testing.T) {
	for _, seed := range []int64{3, 11, 404} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			model := newModel()
			lower, h := seedLowerImage(t, rng, model)
			store, err := CreateStore(h, "enc.img", KeyFromString("diff"), 16384)
			if err != nil {
				t.Fatal(err)
			}
			if err := Mkfs(store); err != nil {
				t.Fatal(err)
			}
			upper, err := Mount(store)
			if err != nil {
				t.Fatal(err)
			}
			u := NewUnionFS(upper, lower)
			d := &diffState{t: t, rng: rng, fs: u, model: model, union: true}
			d.run(1500)
			if err := upper.Fsck(); err != nil {
				t.Fatalf("fsck of upper layer after differential: %v", err)
			}
			t.Logf("%d union ops diverged nowhere (seed %d)", d.ops, seed)
		})
	}
}
