package fs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hostos"
)

func newFS(t testing.TB, blocks int) (*EncFS, *hostos.Host, Key) {
	t.Helper()
	h := hostos.New()
	key := KeyFromString("test")
	store, err := CreateStore(h, "img", key, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	return fs, h, key
}

func TestBlockStoreRoundTrip(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("k")
	s, err := CreateStore(h, "dev", key, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("secret block content")
	if err := s.WriteBlock(3, msg); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(msg)], msg) {
		t.Fatal("content mismatch")
	}
	// Unwritten blocks read as zeros.
	z, err := s.ReadBlock(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("fresh block not zero")
		}
	}
}

func TestBlockStoreCiphertextOnHost(t *testing.T) {
	h := hostos.New()
	s, _ := CreateStore(h, "dev", KeyFromString("k"), 4)
	secret := []byte("TOP-SECRET-MARKER")
	if err := s.WriteBlock(0, secret); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.BackingFiles() {
		raw, err := h.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, secret) {
			t.Fatalf("plaintext visible to the untrusted host in %s", name)
		}
	}
}

// TestBlockStoreTamperDetected: corruption beyond the parity's reach
// (more than m shards of one stripe) must fail closed with ErrCorrupt —
// single-shard damage is the repair path's job (tamper_test.go).
func TestBlockStoreTamperDetected(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("k")
	s, _ := CreateStore(h, "dev", key, 4)
	if err := s.WriteBlock(1, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Host flips a bit inside block 1's live stripe cell in m+1 backing
	// files — one more than the erasure code can reconstruct.
	_, m := s.Geometry()
	off := s.cellOff(s.blockStripe(1, s.slots[1])) + 100
	for f := 0; f <= m; f++ {
		if err := h.FlipBit(s.BackingFiles()[f], off); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ReadBlock(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered read: err = %v, want ErrCorrupt", err)
	}
}

func TestBlockStoreReplayDetected(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("k")
	s, _ := CreateStore(h, "dev", key, 4)
	_ = s.WriteBlock(1, []byte("version-one"))
	_ = s.Flush()
	old := h.CopyFiles("dev.s*")
	_ = s.WriteBlock(1, []byte("version-two"))
	_ = s.Flush()
	// Host rolls every backing file back to the old version.
	h.PutFiles(old)
	if s2, err := OpenStore(h, "dev", key); err == nil {
		// Rolling back everything including the commit records yields a
		// consistent old image — full rollback needs monotonic
		// counters. What must fail is a *partial* replay:
		got, err := s2.ReadBlock(1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, []byte("version-one")) {
			t.Fatal("consistent rollback should yield the old content")
		}
	}
	// Partial replay: restore only the block-data area of every backing
	// file, keep the new commit records and MAC table.
	_ = s.WriteBlock(1, []byte("version-three"))
	_ = s.Flush()
	dataStart := s.cellOff(s.blockStripe(0, 0))
	cur := h.CopyFiles("dev.s*")
	for name, curBytes := range cur {
		if oldBytes, ok := old[name]; ok && len(oldBytes) > dataStart && len(curBytes) > dataStart {
			copy(curBytes[dataStart:], oldBytes[dataStart:])
		}
	}
	h.PutFiles(cur)
	s3, err := OpenStore(h, "dev", key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.ReadBlock(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial replay: err = %v, want ErrCorrupt", err)
	}
}

func TestOpenStoreWrongKey(t *testing.T) {
	h := hostos.New()
	s, _ := CreateStore(h, "dev", KeyFromString("right"), 4)
	_ = s.WriteBlock(0, []byte("x"))
	_ = s.Flush()
	if _, err := OpenStore(h, "dev", KeyFromString("wrong")); err == nil {
		t.Fatal("wrong key must not open the store")
	}
}

func TestFileCreateWriteRead(t *testing.T) {
	fs, _, _ := newFS(t, 256)
	f, err := fs.Open("/hello.txt", ORdWr|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello encrypted world")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("read %q", buf)
	}
	if f.Size() != int64(len(msg)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestPersistenceAcrossMount(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("persist")
	store, _ := CreateStore(h, "img", key, 256)
	if err := Mkfs(store); err != nil {
		t.Fatal(err)
	}
	fsa, _ := Mount(store)
	f, err := fsa.Open("/data", ORdWr|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fsa.Sync(); err != nil {
		t.Fatal(err)
	}

	// Remount from host storage only.
	store2, err := OpenStore(h, "img", key)
	if err != nil {
		t.Fatal(err)
	}
	fsb, err := Mount(store2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fsb.Open("/data", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Fatalf("got %q", buf)
	}
}

func TestDirectories(t *testing.T) {
	fs, _, _ := newFS(t, 256)
	if err := fs.Mkdir("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/etc/app"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/etc"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	f, err := fs.Open("/etc/app/conf", ORdWr|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("k=v"), 0); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir("/etc/app")
	if err != nil || len(ents) != 1 || ents[0].Name != "conf" || ents[0].Size != 3 {
		t.Fatalf("ReadDir = %+v, %v", ents, err)
	}
	st, err := fs.Stat("/etc/app")
	if err != nil || !st.IsDir {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	if err := fs.Unlink("/etc/app"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("unlink non-empty dir: %v", err)
	}
	if err := fs.Unlink("/etc/app/conf"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/etc/app"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/etc/app"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after unlink: %v", err)
	}
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	fs, _, _ := newFS(t, 2048)
	f, err := fs.Open("/big", ORdWr|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	// 600 KiB spans direct + indirect blocks (24 direct = 96 KiB).
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 600<<10)
	rng.Read(data)
	if n, err := f.WriteAt(data, 0); err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file content mismatch")
	}
}

func TestSparseFileReadsZero(t *testing.T) {
	fs, _, _ := newFS(t, 512)
	f, _ := fs.Open("/sparse", ORdWr|OCreate)
	if _, err := f.WriteAt([]byte{0xAA}, 200000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole should read as zeros")
		}
	}
}

func TestTruncateFreesBlocks(t *testing.T) {
	fs, _, _ := newFS(t, 128)
	// Fill, delete, and refill — reuse must work, proving blocks are
	// actually freed.
	for round := 0; round < 3; round++ {
		f, err := fs.Open("/tmp", ORdWr|OCreate)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		data := make([]byte, 300<<10) // ~75 blocks of the 128
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := fs.Unlink("/tmp"); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestOpenTrunc(t *testing.T) {
	fs, _, _ := newFS(t, 128)
	f, _ := fs.Open("/f", ORdWr|OCreate)
	_, _ = f.WriteAt([]byte("0123456789"), 0)
	g, err := fs.Open("/f", ORdWr|OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 0 {
		t.Fatalf("size after trunc = %d", g.Size())
	}
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	fs, _, _ := newFS(t, 128)
	f, _ := fs.Open("/f", ORdWr|OCreate)
	_, _ = f.WriteAt([]byte("x"), 0)
	g, err := fs.Open("/f", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("y"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on rdonly: %v", err)
	}
}

func TestVFSRouting(t *testing.T) {
	fs, _, _ := newFS(t, 128)
	v := NewVFS()
	v.Mount("/", fs)
	v.Mount("/dev", NewDevFS(nil))

	if _, err := v.Open("/dev/null", ORdOnly); err != nil {
		t.Fatal(err)
	}
	f, err := v.Open("/root.txt", ORdWr|OCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("via vfs"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/root.txt"); err != nil {
		t.Fatal("file should land on the root filesystem")
	}
	ents, err := v.ReadDir("/dev")
	if err != nil || len(ents) != 4 {
		t.Fatalf("dev entries = %v, %v", ents, err)
	}
}

func TestDevNodes(t *testing.T) {
	var console bytes.Buffer
	d := NewDevFS(&console)

	null, _ := d.Open("/null", ORdWr)
	if n, err := null.WriteAt([]byte("gone"), 0); err != nil || n != 4 {
		t.Fatalf("null write: %d, %v", n, err)
	}
	buf := make([]byte, 4)
	if _, err := null.ReadAt(buf, 0); err == nil {
		t.Fatal("null read should EOF")
	}

	zero, _ := d.Open("/zero", ORdOnly)
	buf = []byte{1, 2, 3, 4}
	if _, err := zero.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[3] != 0 {
		t.Fatal("zero should read zeros")
	}

	ur, _ := d.Open("/urandom", ORdOnly)
	a, b := make([]byte, 16), make([]byte, 16)
	_, _ = ur.ReadAt(a, 0)
	_, _ = ur.ReadAt(b, 0)
	if bytes.Equal(a, b) {
		t.Fatal("urandom repeated itself")
	}

	con, _ := d.Open("/console", OWrOnly)
	_, _ = con.WriteAt([]byte("boot ok"), 0)
	if console.String() != "boot ok" {
		t.Fatalf("console = %q", console.String())
	}

	if _, err := d.Open("/tty99", ORdOnly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("unknown device: %v", err)
	}
}

func TestManyFiles(t *testing.T) {
	fs, _, _ := newFS(t, 1024)
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("/f%02d", i)
		f, err := fs.Open(name, ORdWr|OCreate)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := f.WriteAt([]byte(name), 0); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir("/")
	if err != nil || len(ents) != 100 {
		t.Fatalf("root entries = %d, %v", len(ents), err)
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("/f%02d", i)
		f, err := fs.Open(name, ORdOnly)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(name))
		if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != name {
			t.Fatalf("%s: got %q, %v", name, buf, err)
		}
	}
}

func BenchmarkEncFSSequentialWrite(b *testing.B) {
	fs, _, _ := newFS(b, 4096)
	f, _ := fs.Open("/bench", ORdWr|OCreate)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%1000)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncFSSequentialRead(b *testing.B) {
	fs, _, _ := newFS(b, 4096)
	f, _ := fs.Open("/bench", ORdWr|OCreate)
	buf := make([]byte, 4096)
	for i := 0; i < 1000; i++ {
		_, _ = f.WriteAt(buf, int64(i)*4096)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, int64(i%1000)*4096); err != nil {
			b.Fatal(err)
		}
	}
}
