package fs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"path"
	"sort"
	"sync"

	"repro/internal/hostos"
)

// This file implements the read-only half of Occlum's union filesystem
// (§6): the integrity-protected image layer holding the trusted base
// image (binaries, libraries, configuration). The layout is a single
// blob in untrusted host storage:
//
//	block 0                superblock
//	blocks 1..             inode table (32-byte inodes)
//	blocks ..nBlocks-1     data extents (files and dirent arrays)
//	after the blocks       Merkle node region (32-byte SHA-256 nodes)
//
// Every file's data is one contiguous extent — the image is built once
// by occlum-image and never mutated, so there is no need for indirect
// blocks or a free list. Integrity is a binary Merkle tree over all
// nBlocks content blocks: leaves are H(0x00 ‖ block), interior nodes
// H(0x01 ‖ left ‖ right), and the root hash is pinned by the caller at
// mount time (in the paper's deployment it would be baked into the
// enclave measurement). Blocks are verified lazily on first read; the
// verified path is memoized, so steady-state re-reads of a cached block
// hash nothing at all.

const (
	imgInodeSize    = 32
	imgInodesPerBlk = BlockSize / imgInodeSize
	imgMaxBlocks    = 1 << 20 // 4 GiB of content — a sanity bound, not a design limit
	imgMaxDirBytes  = 1 << 24 // 256k dirents per directory — bounds walks over hostile inodes
	imgCachePages   = 4096    // 16 MiB of verified pages kept hot
	readAheadWindow = 8
)

// imgMaxNameLen caps image path components below the EncFS dirent limit
// by the whiteout prefix's length: every image entry must remain
// deletable through the union, and ".wh."+name has to fit a dirent in
// the writable upper layer.
const imgMaxNameLen = maxNameLen - len(whPrefix)

var imgMagic = [8]byte{'O', 'C', 'I', 'M', 'G', 0, 0, 1}

// imgInode is one immutable inode: {mode u16 @0, size u64 @8, start u32 @16}.
type imgInode struct {
	mode  uint16
	size  uint64
	start uint32
}

func (in imgInode) blocks() int { return int((in.size + BlockSize - 1) / BlockSize) }

func leafHash(data []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0})
	h.Write(data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func interiorHash(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{1})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// --- Builder ---------------------------------------------------------------

// ImageBuilder assembles a read-only image blob from a file tree. Use
// AddDir/AddFile, then Build. Intermediate directories are created
// implicitly. The output is deterministic: children are laid out in
// sorted name order.
type ImageBuilder struct {
	root *buildNode
}

type buildNode struct {
	isDir    bool
	data     []byte
	children map[string]*buildNode

	ino   int
	start uint32
	size  uint64
}

// NewImageBuilder returns an empty builder holding just the root
// directory.
func NewImageBuilder() *ImageBuilder {
	return &ImageBuilder{root: &buildNode{isDir: true, children: map[string]*buildNode{}}}
}

func (b *ImageBuilder) walk(p string, makeDirs bool) (*buildNode, string, error) {
	comps := splitPath(p)
	if len(comps) == 0 {
		return b.root, "", nil
	}
	cur := b.root
	for _, c := range comps[:len(comps)-1] {
		next, ok := cur.children[c]
		if !ok {
			if !makeDirs {
				return nil, "", fmt.Errorf("%w: %s", ErrNotExist, c)
			}
			// Implicitly created parents get the same name validation as
			// explicit AddDir: an oversized name would otherwise spill
			// past its dirent slot at Build time.
			if len(c) > imgMaxNameLen {
				return nil, "", fmt.Errorf("%w: %s", ErrNameTooLong, c)
			}
			next = &buildNode{isDir: true, children: map[string]*buildNode{}}
			cur.children[c] = next
		}
		if !next.isDir {
			return nil, "", fmt.Errorf("%w: %s", ErrNotDir, c)
		}
		cur = next
	}
	return cur, comps[len(comps)-1], nil
}

// AddFile places a regular file at p, creating parent directories.
func (b *ImageBuilder) AddFile(p string, data []byte) error {
	dir, name, err := b.walk(p, true)
	if err != nil {
		return err
	}
	if name == "" {
		return ErrIsDir
	}
	if len(name) > imgMaxNameLen {
		return ErrNameTooLong
	}
	if old, ok := dir.children[name]; ok && old.isDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	dir.children[name] = &buildNode{data: append([]byte(nil), data...)}
	return nil
}

// AddDir places a directory at p, creating parents.
func (b *ImageBuilder) AddDir(p string) error {
	dir, name, err := b.walk(p, true)
	if err != nil {
		return err
	}
	if name == "" {
		return nil // root always exists
	}
	if len(name) > imgMaxNameLen {
		return ErrNameTooLong
	}
	if old, ok := dir.children[name]; ok {
		if !old.isDir {
			return fmt.Errorf("%w: %s", ErrExist, p)
		}
		return nil
	}
	dir.children[name] = &buildNode{isDir: true, children: map[string]*buildNode{}}
	return nil
}

func sortedNames(m map[string]*buildNode) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build serializes the tree into an image blob and returns it with the
// Merkle root hash to pin at mount time.
func (b *ImageBuilder) Build() (blob []byte, root [32]byte, err error) {
	// Pass 1: number inodes in DFS order (root = 1).
	var nodes []*buildNode
	var number func(n *buildNode)
	number = func(n *buildNode) {
		nodes = append(nodes, n)
		n.ino = len(nodes)
		for _, name := range sortedNames(n.children) {
			number(n.children[name])
		}
	}
	number(b.root)
	nInodes := len(nodes)

	// Pass 2: materialize content (dirent arrays need child numbers) and
	// assign contiguous extents.
	inodeBlks := (nInodes + imgInodesPerBlk - 1) / imgInodesPerBlk
	next := 1 + inodeBlks
	for _, n := range nodes {
		content := n.data
		if n.isDir {
			content = make([]byte, len(n.children)*direntSize)
			for i, name := range sortedNames(n.children) {
				e := content[i*direntSize:]
				binary.LittleEndian.PutUint32(e, uint32(n.children[name].ino))
				e[4] = byte(len(name))
				copy(e[5:], name)
			}
			n.data = content
		}
		n.size = uint64(len(content))
		if n.size > 0 {
			n.start = uint32(next)
			next += int((n.size + BlockSize - 1) / BlockSize)
		}
	}
	nBlocks := next
	if nBlocks > imgMaxBlocks {
		return nil, root, fmt.Errorf("fs: image too large (%d blocks)", nBlocks)
	}

	// Pass 3: serialize the block region.
	blob = make([]byte, nBlocks*BlockSize)
	copy(blob, imgMagic[:])
	binary.LittleEndian.PutUint32(blob[8:], uint32(nBlocks))
	binary.LittleEndian.PutUint32(blob[12:], uint32(nInodes))
	binary.LittleEndian.PutUint32(blob[16:], 1) // inodeStart
	for _, n := range nodes {
		off := BlockSize + (n.ino-1)*imgInodeSize
		mode := uint16(modeFile)
		if n.isDir {
			mode = modeDir
		}
		binary.LittleEndian.PutUint16(blob[off:], mode)
		binary.LittleEndian.PutUint64(blob[off+8:], n.size)
		binary.LittleEndian.PutUint32(blob[off+16:], n.start)
		copy(blob[int(n.start)*BlockSize:], n.data)
	}

	// Pass 4: Merkle tree over the block region, appended as a node
	// heap. The root itself is NOT stored: it is the pinned trust
	// anchor, and a stored copy would be the one byte range no
	// verification path ever consults. Node i ≥ 2 lands at
	// treeOff + (i-2)*32.
	tree := merkleTree(blob, nBlocks)
	for i := 2; i < len(tree); i++ {
		blob = append(blob, tree[i][:]...)
	}
	return blob, tree[1], nil
}

// merkleTree builds the full node heap over the first nBlocks 4 KiB
// blocks of blob: children of node i at 2i/2i+1, leaves at
// L..L+nBlocks-1 (L = nextPow2(nBlocks)), missing leaves padded with
// leafHash(nil). Shared by Build and ImageRoot so the packer and the
// verifier can never disagree on tree shape.
func merkleTree(blob []byte, nBlocks int) [][32]byte {
	leafBase := nextPow2(nBlocks)
	tree := make([][32]byte, 2*leafBase)
	for i := 0; i < leafBase; i++ {
		if i < nBlocks {
			tree[leafBase+i] = leafHash(blob[i*BlockSize : (i+1)*BlockSize])
		} else {
			tree[leafBase+i] = leafHash(nil)
		}
	}
	for i := leafBase - 1; i >= 1; i-- {
		tree[i] = interiorHash(tree[2*i], tree[2*i+1])
	}
	return tree
}

// ImageRoot recomputes the Merkle root of a packed image blob — the
// value occlum-image prints for the operator to pin at mount time. It
// trusts the blob (use only at pack time, never on untrusted input
// as a mount check).
func ImageRoot(blob []byte) ([32]byte, error) {
	var root [32]byte
	if len(blob) < BlockSize || string(blob[:8]) != string(imgMagic[:]) {
		return root, fmt.Errorf("%w: not an image blob", ErrBadKey)
	}
	nBlocks := int(binary.LittleEndian.Uint32(blob[8:]))
	if nBlocks <= 0 || nBlocks > imgMaxBlocks || len(blob) < nBlocks*BlockSize {
		return root, fmt.Errorf("%w: bad block count", ErrBadKey)
	}
	return merkleTree(blob, nBlocks)[1], nil
}

// --- Mounted filesystem ----------------------------------------------------

// ImageFS is a mounted read-only image: every block is Merkle-verified
// against the pinned root hash on first read, cached afterwards, and
// sequential reads pull a read-ahead window through the verifier in one
// pass.
type ImageFS struct {
	host *hostos.Host
	name string

	nBlocks  int
	nInodes  int
	leafBase int
	treeOff  int

	mu sync.Mutex
	// trusted maps Merkle node index → verified hash. Seeded with the
	// pinned root; grows as verification paths succeed, so later
	// verifications stop at the nearest trusted ancestor.
	trusted map[int][32]byte
	cache   map[int][]byte
}

var _ FileSystem = (*ImageFS)(nil)

// MountImage opens the image blob stored in the named host file,
// pinning root as the only trusted input. Everything else — superblock,
// inodes, dirents, data, even the stored Merkle nodes — is untrusted
// until a verification path reaches the root.
func MountImage(h *hostos.Host, name string, root [32]byte) (*ImageFS, error) {
	hdr := make([]byte, 16)
	if n, err := h.ReadFileAt(name, 0, hdr); err != nil || n < len(hdr) {
		return nil, fmt.Errorf("%w: truncated image", ErrBadKey)
	}
	if string(hdr[:8]) != string(imgMagic[:]) {
		return nil, fmt.Errorf("%w: not an image blob", ErrBadKey)
	}
	nBlocks := int(binary.LittleEndian.Uint32(hdr[8:]))
	nInodes := int(binary.LittleEndian.Uint32(hdr[12:]))
	// Geometry from the (still unverified) superblock. Lying about it
	// changes the tree shape and fails the root comparison below; the
	// bounds here only keep allocations sane.
	if nBlocks <= 0 || nBlocks > imgMaxBlocks || nBlocks*BlockSize > h.FileSize(name) {
		return nil, fmt.Errorf("%w: bad block count", ErrBadKey)
	}
	if nInodes <= 0 || nInodes > nBlocks*imgInodesPerBlk {
		return nil, fmt.Errorf("%w: bad inode count", ErrBadKey)
	}
	ifs := &ImageFS{
		host: h, name: name,
		nBlocks: nBlocks, nInodes: nInodes,
		leafBase: nextPow2(nBlocks),
		treeOff:  nBlocks * BlockSize,
		trusted:  map[int][32]byte{1: root},
		cache:    make(map[int][]byte),
	}
	// Verifying the superblock now both authenticates the geometry and
	// fails fast on a wrong root.
	if _, err := ifs.getBlock(0); err != nil {
		return nil, err
	}
	return ifs, nil
}

func (ifs *ImageFS) nodeHash(idx int) ([32]byte, error) {
	var h [32]byte
	if n, err := ifs.host.ReadFileAt(ifs.name, ifs.treeOff+(idx-2)*32, h[:]); err != nil || n < 32 {
		return h, fmt.Errorf("%w: merkle node %d missing", ErrCorrupt, idx)
	}
	return h, nil
}

// verifyBlock checks block i's data against the pinned root, walking up
// the tree until it reaches a trusted node. On success the whole path
// (and the siblings that contributed to it) becomes trusted. Caller
// holds ifs.mu.
func (ifs *ImageFS) verifyBlock(i int, data []byte) error {
	type pathNode struct {
		idx int
		h   [32]byte
	}
	var settled []pathNode
	h := leafHash(data)
	idx := ifs.leafBase + i
	for {
		if want, ok := ifs.trusted[idx]; ok {
			if h != want {
				return fmt.Errorf("%w: image block %d", ErrCorrupt, i)
			}
			break
		}
		settled = append(settled, pathNode{idx, h})
		sib := idx ^ 1
		sh, err := ifs.nodeHash(sib)
		if err != nil {
			return err
		}
		settled = append(settled, pathNode{sib, sh})
		if idx&1 == 0 {
			h = interiorHash(h, sh)
		} else {
			h = interiorHash(sh, h)
		}
		idx >>= 1
	}
	// The computed chain matched a trusted ancestor: every node on the
	// path — including the stored siblings, which fed the matching
	// digests — is now known-good.
	for _, n := range settled {
		ifs.trusted[n.idx] = n.h
	}
	fsStats.verifiedBlocks.Add(1)
	return nil
}

// fetchBlock reads and verifies block i, without touching the cache.
// Caller holds ifs.mu.
func (ifs *ImageFS) fetchBlock(i int) ([]byte, error) {
	data := make([]byte, BlockSize)
	if n, err := ifs.host.ReadFileAt(ifs.name, i*BlockSize, data); err != nil || n < BlockSize {
		return nil, fmt.Errorf("%w: image block %d missing", ErrCorrupt, i)
	}
	if err := ifs.verifyBlock(i, data); err != nil {
		return nil, err
	}
	return data, nil
}

// getBlock returns a verified block through the page cache.
func (ifs *ImageFS) getBlock(i int) ([]byte, error) {
	ifs.mu.Lock()
	defer ifs.mu.Unlock()
	return ifs.getBlockLocked(i, 0)
}

// getBlockLocked serves block i, prefetching up to readAhead further
// blocks (a sequential read's next pages) through the verifier on a
// miss. Caller holds ifs.mu.
func (ifs *ImageFS) getBlockLocked(i, readAhead int) ([]byte, error) {
	if i < 0 || i >= ifs.nBlocks {
		return nil, fmt.Errorf("%w: image block %d out of range", ErrCorrupt, i)
	}
	if d, ok := ifs.cache[i]; ok {
		fsStats.verifyHits.Add(1)
		return d, nil
	}
	for len(ifs.cache) >= imgCachePages {
		// Evict one arbitrary page (map order is effectively random) —
		// wholesale clearing would throw away the block being streamed
		// and break the warm-read guarantee for any file that fits.
		for k := range ifs.cache {
			delete(ifs.cache, k)
			break
		}
	}
	d, err := ifs.fetchBlock(i)
	if err != nil {
		return nil, err
	}
	ifs.cache[i] = d
	for j := i + 1; j <= i+readAhead && j < ifs.nBlocks; j++ {
		if _, ok := ifs.cache[j]; ok {
			continue
		}
		rd, err := ifs.fetchBlock(j)
		if err != nil {
			// A tampered block further ahead must not fail this read;
			// the failure re-surfaces if the reader actually gets there.
			break
		}
		ifs.cache[j] = rd
		fsStats.readAheads.Add(1)
	}
	return d, nil
}

func (ifs *ImageFS) readInode(ino int) (imgInode, error) {
	if ino < 1 || ino > ifs.nInodes {
		return imgInode{}, fmt.Errorf("%w: bad image inode %d", ErrCorrupt, ino)
	}
	blk := 1 + (ino-1)/imgInodesPerBlk
	d, err := ifs.getBlock(blk)
	if err != nil {
		return imgInode{}, err
	}
	off := ((ino - 1) % imgInodesPerBlk) * imgInodeSize
	in := imgInode{
		mode:  binary.LittleEndian.Uint16(d[off:]),
		size:  binary.LittleEndian.Uint64(d[off+8:]),
		start: binary.LittleEndian.Uint32(d[off+16:]),
	}
	// Extent bounds are attacker-controlled until verified reads prove
	// them; reject geometry that escapes the block region outright.
	if in.size > 0 {
		end := int(in.start) + in.blocks()
		if int(in.start) <= 0 || end > ifs.nBlocks {
			return imgInode{}, fmt.Errorf("%w: inode %d extent out of range", ErrCorrupt, ino)
		}
	}
	return in, nil
}

// readAt reads file content from an inode's extent with sequential
// read-ahead.
func (ifs *ImageFS) readAt(in imgInode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("fs: negative offset")
	}
	if off >= int64(in.size) {
		return 0, nil
	}
	if int64(len(p)) > int64(in.size)-off {
		p = p[:int64(in.size)-off]
	}
	extentEnd := int(in.start) + in.blocks()
	total := 0
	ifs.mu.Lock()
	defer ifs.mu.Unlock()
	for len(p) > 0 {
		blk := int(in.start) + int(off/BlockSize)
		bo := int(off % BlockSize)
		n := min(BlockSize-bo, len(p))
		ra := min(readAheadWindow, extentEnd-blk-1)
		d, err := ifs.getBlockLocked(blk, ra)
		if err != nil {
			return total, err
		}
		copy(p[:n], d[bo:bo+n])
		p = p[n:]
		off += int64(n)
		total += n
	}
	return total, nil
}

// forEachDirent walks a directory extent block at a time (dirents never
// straddle blocks: direntSize divides BlockSize), calling fn for each
// entry until it returns stop or an error.
func (ifs *ImageFS) forEachDirent(din imgInode, fn func(ino int, name string) (stop bool, err error)) error {
	if din.mode != modeDir {
		return ErrNotDir
	}
	if din.size > imgMaxDirBytes {
		return fmt.Errorf("%w: directory inode oversized", ErrCorrupt)
	}
	ents := int(din.size) / direntSize
	perBlock := BlockSize / direntSize
	ifs.mu.Lock()
	defer ifs.mu.Unlock()
	for i := 0; i < ents; i++ {
		d, err := ifs.getBlockLocked(int(din.start)+i/perBlock, 0)
		if err != nil {
			return err
		}
		e := d[(i%perBlock)*direntSize:]
		nl := int(e[4])
		if nl > maxNameLen {
			return fmt.Errorf("%w: dirent name length", ErrCorrupt)
		}
		stop, err := fn(int(binary.LittleEndian.Uint32(e)), string(e[5:5+nl]))
		if err != nil || stop {
			return err
		}
	}
	return nil
}

func (ifs *ImageFS) lookup(dirIno int, name string) (int, error) {
	din, err := ifs.readInode(dirIno)
	if err != nil {
		return 0, err
	}
	found := 0
	err = ifs.forEachDirent(din, func(ino int, n string) (bool, error) {
		if n == name {
			found = ino
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return found, nil
}

func (ifs *ImageFS) resolve(p string) (int, error) {
	ino := 1
	for _, comp := range splitPath(p) {
		next, err := ifs.lookup(ino, comp)
		if err != nil {
			return 0, err
		}
		ino = next
	}
	return ino, nil
}

// imageNode is an open file on the image layer.
type imageNode struct {
	ifs *ImageFS
	in  imgInode
}

var _ Node = (*imageNode)(nil)

func (n *imageNode) ReadAt(p []byte, off int64) (int, error) { return n.ifs.readAt(n.in, p, off) }

// ReadBorrow implements BorrowReader: it lends a read-only view of the
// verified page cache covering [off, off+max), clipped to one block and
// to the file size. The lent slice is safe indefinitely: cache entries
// are immutable after verification, and eviction only drops the map
// reference — it never recycles the storage under a borrower.
func (n *imageNode) ReadBorrow(off int64, max int) ([]byte, error) {
	in := n.in
	if off < 0 {
		return nil, fmt.Errorf("fs: negative offset")
	}
	if off >= int64(in.size) || max <= 0 {
		return nil, nil
	}
	if int64(max) > int64(in.size)-off {
		max = int(int64(in.size) - off)
	}
	blk := int(in.start) + int(off/BlockSize)
	bo := int(off % BlockSize)
	want := min(BlockSize-bo, max)
	extentEnd := int(in.start) + in.blocks()
	n.ifs.mu.Lock()
	d, err := n.ifs.getBlockLocked(blk, min(readAheadWindow, extentEnd-blk-1))
	n.ifs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return d[bo : bo+want : bo+want], nil
}

var _ BorrowReader = (*imageNode)(nil)

func (n *imageNode) WriteAt(p []byte, off int64) (int, error) {
	return 0, ErrReadOnly
}
func (n *imageNode) Size() int64  { return int64(n.in.size) }
func (n *imageNode) Close() error { return nil }

// Open opens a file or directory read-only; any writable flag fails
// with ErrReadOnly (the union layer turns that into a copy-up).
func (ifs *ImageFS) Open(p string, flags OpenFlag) (Node, error) {
	if flags.Writable() || flags&(OCreate|OTrunc) != 0 {
		return nil, ErrReadOnly
	}
	ino, err := ifs.resolve(p)
	if err != nil {
		return nil, err
	}
	in, err := ifs.readInode(ino)
	if err != nil {
		return nil, err
	}
	return &imageNode{ifs: ifs, in: in}, nil
}

// Mkdir always fails: the image is immutable.
func (ifs *ImageFS) Mkdir(string) error { return ErrReadOnly }

// Unlink always fails: the image is immutable.
func (ifs *ImageFS) Unlink(string) error { return ErrReadOnly }

// ReadDir lists a directory.
func (ifs *ImageFS) ReadDir(p string) ([]FileInfo, error) {
	ino, err := ifs.resolve(p)
	if err != nil {
		return nil, err
	}
	din, err := ifs.readInode(ino)
	if err != nil {
		return nil, err
	}
	// Collect (ino, name) pairs first: forEachDirent holds ifs.mu, and
	// readInode takes it again.
	type ent struct {
		ino  int
		name string
	}
	var raw []ent
	if err := ifs.forEachDirent(din, func(cIno int, name string) (bool, error) {
		raw = append(raw, ent{cIno, name})
		return false, nil
	}); err != nil {
		return nil, err
	}
	var out []FileInfo
	for _, e := range raw {
		cin, err := ifs.readInode(e.ino)
		if err != nil {
			return nil, err
		}
		out = append(out, FileInfo{
			Name:  e.name,
			Size:  int64(cin.size),
			IsDir: cin.mode == modeDir,
		})
	}
	return out, nil
}

// Stat describes a path.
func (ifs *ImageFS) Stat(p string) (FileInfo, error) {
	ino, err := ifs.resolve(p)
	if err != nil {
		return FileInfo{}, err
	}
	in, err := ifs.readInode(ino)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: path.Base(path.Clean("/" + p)), Size: int64(in.size), IsDir: in.mode == modeDir}, nil
}
