package fs

import "sync/atomic"

// fsStats holds the package-global filesystem counters reported by
// occlum-bench -fsstats. They are cumulative across every mounted
// filesystem in the process (like the scheduler and net counters), so
// benchmarks snapshot before/after and subtract.
var fsStats struct {
	verifiedBlocks atomic.Uint64
	verifyHits     atomic.Uint64
	readAheads     atomic.Uint64
	copyUps        atomic.Uint64
	whiteouts      atomic.Uint64
	scrubbedBlocks atomic.Uint64
	repairedShards atomic.Uint64
	rebuiltShards  atomic.Uint64
}

// StatCounters is a snapshot of the filesystem counters.
type StatCounters struct {
	// VerifiedBlocks counts image blocks Merkle-verified on first read.
	VerifiedBlocks uint64
	// VerifyHits counts image reads served from already-verified cache
	// pages (no hashing).
	VerifyHits uint64
	// ReadAheads counts image blocks fetched speculatively by the
	// sequential read-ahead.
	ReadAheads uint64
	// CopyUps counts files copied from the image layer to the writable
	// layer on first write.
	CopyUps uint64
	// Whiteouts counts whiteout markers created by union unlinks.
	Whiteouts uint64
	// ScrubbedBlocks counts blocks MAC-verified by the background
	// scrubber (ScrubStep/Scrub).
	ScrubbedBlocks uint64
	// RepairedShards counts erasure-coded shards rewritten from parity
	// after failing their crc or going missing (repair-on-read + scrub).
	RepairedShards uint64
	// RebuiltShards counts shards recreated by offline Repair (the
	// lost-backing-file recovery path); a subset of RepairedShards.
	RebuiltShards uint64
}

// Stats returns the current global filesystem counters.
func Stats() StatCounters {
	return StatCounters{
		VerifiedBlocks: fsStats.verifiedBlocks.Load(),
		VerifyHits:     fsStats.verifyHits.Load(),
		ReadAheads:     fsStats.readAheads.Load(),
		CopyUps:        fsStats.copyUps.Load(),
		Whiteouts:      fsStats.whiteouts.Load(),
		ScrubbedBlocks: fsStats.scrubbedBlocks.Load(),
		RepairedShards: fsStats.repairedShards.Load(),
		RebuiltShards:  fsStats.rebuiltShards.Load(),
	}
}

// Sub returns the counter deltas since an earlier snapshot.
func (s StatCounters) Sub(prev StatCounters) StatCounters {
	return StatCounters{
		VerifiedBlocks: s.VerifiedBlocks - prev.VerifiedBlocks,
		VerifyHits:     s.VerifyHits - prev.VerifyHits,
		ReadAheads:     s.ReadAheads - prev.ReadAheads,
		CopyUps:        s.CopyUps - prev.CopyUps,
		Whiteouts:      s.Whiteouts - prev.Whiteouts,
		ScrubbedBlocks: s.ScrubbedBlocks - prev.ScrubbedBlocks,
		RepairedShards: s.RepairedShards - prev.RepairedShards,
		RebuiltShards:  s.RebuiltShards - prev.RebuiltShards,
	}
}
