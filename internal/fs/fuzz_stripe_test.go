package fs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"testing"

	"repro/internal/hostos"
)

// FuzzStripeRecover hands the attacker the shard set of one committed
// block: each fuzz byte picks an action against one backing file —
// leave it, flip payload bits, flip payload bits AND forge the crc
// trailer so the locator lies, zero the cell consistently (payload and
// crc agree), truncate the file at the cell, or delete the file
// entirely. Whatever combination results, ReadBlock must either return
// the exact original plaintext or fail with ErrCorrupt — reconstructed
// bytes that never re-passed MAC verification must not escape, and
// nothing may panic.
func FuzzStripeRecover(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 1})          // m+1 rotted shards
	f.Add([]byte{2, 2})             // forged crc pair
	f.Add([]byte{5, 5, 5, 5, 5, 5}) // every file deleted
	f.Add([]byte{2, 0, 3, 0, 4, 1})
	f.Add([]byte{4, 4, 4})

	f.Fuzz(func(t *testing.T, plan []byte) {
		h := hostos.New()
		key := KeyFromString("stripe-fuzz")
		s, err := CreateStore(h, "dev", key, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{0xC3, 0x96}, BlockSize/2)
		if err := s.WriteBlock(0, want); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}

		ss := s.shardSize()
		off := s.cellOff(s.blockStripe(0, s.slots[0]))
		for f := 0; f < s.nFiles() && f < len(plan); f++ {
			name := s.fileName(f)
			cell := make([]byte, ss+8)
			if n, err := h.ReadFileAt(name, off, cell); err != nil || n < len(cell) {
				t.Fatal("fixture cell unreadable")
			}
			action := plan[f]
			switch action % 6 {
			case 0: // honest
				continue
			case 1: // rot the payload
				cell[int(action)%ss] ^= 0x41
				h.WriteFileAt(name, off, cell)
			case 2: // rot the payload and forge the locator
				cell[int(action)%ss] ^= 0x41
				binary.LittleEndian.PutUint32(cell[ss:], crc32.ChecksumIEEE(cell[:ss]))
				h.WriteFileAt(name, off, cell)
			case 3: // consistent zeroed cell (valid crc over wrong bytes)
				zero := make([]byte, ss+8)
				binary.LittleEndian.PutUint32(zero[ss:], crc32.ChecksumIEEE(zero[:ss]))
				h.WriteFileAt(name, off, zero)
			case 4: // truncate the file at the cell
				raw, err := h.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				h.RemoveFile(name)
				h.WriteFile(name, raw[:off+int(action)%ss])
			case 5: // delete the file
				h.RemoveFile(name)
			}
		}

		got, err := s.ReadBlock(0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("wrong error class: %v", err)
			}
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read returned bytes that differ from the original — unverified reconstruction escaped")
		}
		// If the read succeeded it also repaired: a second read with the
		// same result must come from healthy shards.
		got2, err := s.ReadBlock(0)
		if err != nil || !bytes.Equal(got2, want) {
			t.Fatalf("post-repair re-read: %v", err)
		}
	})
}

// TestScrubRepairRaceSmoke drives concurrent writers, readers, the
// scrubber and periodic flushes over one store — the -race CI smoke for
// the new store mutex. Correctness of content is asserted; the point is
// that no interleaving races or deadlocks.
func TestScrubRepairRaceSmoke(t *testing.T) {
	h := hostos.New()
	key := KeyFromString("race")
	s, err := CreateStore(h, "dev", key, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := s.WriteBlock(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // writer + flusher
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.WriteBlock(i%64, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Error(err)
				return
			}
			if i%32 == 0 {
				if err := s.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // reader
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.ReadBlock((i * 7) % 64); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // scrubber
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.ScrubStep(8); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		_, _ = s.ReadBlock(i % 64)
	}
	close(stop)
	wg.Wait()

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(); err != nil {
		t.Fatalf("final scrub: %v", err)
	}
}
