// Package timerwheel implements the hierarchical timing wheel behind
// the LibOS's poll/epoll timeouts and idle-connection deadlines.
//
// The seed-era design armed one host time.AfterFunc per blocking park:
// at c100k that is 100k host timer goroutines whose only job is to
// (usually) be cancelled a few milliseconds later. The wheel inverts
// the cost: Arm and Cancel are O(1) pointer splices under one mutex,
// and a single host alarm per wheel — re-armed to the earliest pending
// deadline — is the only real timer the host ever sees. The LibOS runs
// one wheel per hart, so a 4-hart kernel holds at most 4 host timers
// no matter how many connections are parked.
//
// Geometry: 4 levels × 64 slots at a 1ms tick. Level 0 resolves single
// ticks; each higher level is 64× coarser, so the horizon is 64^4
// ticks (~4.6 hours at 1ms). Timers land in the coarsest level that
// still resolves their delta and cascade down lazily when the level
// below wraps; a timer beyond the horizon is clamped to it. Slots are
// intrusive doubly-linked lists, so Cancel unlinks without scanning,
// and per-level occupancy bitmaps let the next-event computation run
// in a handful of word operations instead of a slot walk.
//
// Callbacks fire outside the wheel lock, so a callback may re-arm its
// own timer with Reset — the idle-reaper's lazy re-arm pattern — or
// arm new timers freely. Cancel reports whether it prevented the fire;
// once a tick has collected a timer, Cancel returns false and the
// callback will still run, so callbacks must be idempotent against a
// racing cancel (the parking protocol's latched wakes already are).
package timerwheel

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

const (
	numLevels  = 4
	slotBits   = 6
	slotsPer   = 1 << slotBits // 64
	slotMask   = slotsPer - 1
	horizonLog = slotBits * numLevels
	horizon    = 1 << horizonLog // ticks covered by all levels
)

// Stats counts wheel activity since creation. Fires counts callbacks
// run; Cascades counts timers re-filed from a coarse level to a finer
// one as the wheel turned.
type Stats struct {
	Arms, Fires, Cancels, Cascades uint64
}

// Timer is one armed deadline. The zero value is not usable; obtain
// timers from Wheel.Arm.
type Timer struct {
	w          *Wheel
	fn         func()
	deadline   uint64 // absolute tick
	next, prev *Timer
	level      int8
	slot       int8
	linked     bool
}

type level struct {
	occ   uint64 // bit i set ⇔ slots[i] non-empty
	slots [slotsPer]*Timer
}

// Wheel is a hierarchical timing wheel. Driven wheels (alarm != nil)
// advance themselves from a single host alarm; manual wheels advance
// only via Advance, which tests use for deterministic tick control.
type Wheel struct {
	mu      sync.Mutex
	tick    time.Duration
	cur     uint64 // all ticks ≤ cur have been processed
	levels  [numLevels]level
	armed   int
	stopped bool

	// Driven mode: alarm schedules fn on the host clock after d and
	// returns a cancel. At most one alarm is outstanding per wheel.
	alarm      func(d time.Duration, fn func()) (cancel func())
	startT     time.Time // real-time anchor for tick arithmetic
	alarmGen   uint64
	alarmLive  bool
	alarmFor   uint64 // tick the live alarm targets
	alarmStop  func()
	manualTime time.Duration // manual mode: virtual elapsed time

	arms, fires, cancels, cascades atomic.Uint64
}

// New returns a wheel with the given tick. If alarm is non-nil the
// wheel is driven: it keeps exactly one host alarm outstanding, armed
// to the next tick at which anything fires or cascades. A nil alarm
// yields a manual wheel advanced only by Advance.
func New(tick time.Duration, alarm func(d time.Duration, fn func()) (cancel func())) *Wheel {
	if tick <= 0 {
		panic("timerwheel: tick must be positive")
	}
	return &Wheel{tick: tick, alarm: alarm, startT: time.Now()}
}

// Arm schedules fn to run once, about d after now (rounded up to a
// tick, min one tick, clamped to the wheel horizon). fn runs outside
// the wheel lock on the advancing goroutine — the alarm goroutine for
// driven wheels, the Advance caller for manual ones.
func (w *Wheel) Arm(d time.Duration, fn func()) *Timer {
	t := &Timer{w: w, fn: fn}
	w.mu.Lock()
	t.deadline = w.cur + w.ticksFor(d)
	w.insert(t)
	w.armed++
	w.arms.Add(1)
	w.schedule()
	w.mu.Unlock()
	return t
}

// Cancel unlinks the timer and reports whether it prevented the
// callback from running. Once a tick has collected the timer — even
// if the callback has not started yet — Cancel returns false.
func (t *Timer) Cancel() bool {
	w := t.w
	w.mu.Lock()
	hit := t.linked
	if hit {
		w.unlink(t)
		w.armed--
		w.cancels.Add(1)
	}
	w.mu.Unlock()
	return hit
}

// Reset re-arms the timer for d from now with its original callback.
// Safe to call from inside the callback itself (the lazy re-arm
// pattern); calling it from outside while the timer might be firing
// risks one extra callback run, so external users Cancel first.
func (t *Timer) Reset(d time.Duration) {
	w := t.w
	w.mu.Lock()
	if t.linked {
		w.unlink(t)
		w.armed--
	}
	t.deadline = w.cur + w.ticksFor(d)
	w.insert(t)
	w.armed++
	w.arms.Add(1)
	w.schedule()
	w.mu.Unlock()
}

// Advance moves a manual wheel's clock forward by d, firing every due
// callback synchronously on the calling goroutine.
func (w *Wheel) Advance(d time.Duration) {
	w.mu.Lock()
	w.manualTime += d
	fired := w.advanceLocked(uint64(w.manualTime / w.tick))
	w.mu.Unlock()
	w.fire(fired)
}

// Stop cancels the host alarm and inhibits future alarms. Armed timers
// stay linked but will not fire (a manual Advance still works, which
// shutdown tests use to flush).
func (w *Wheel) Stop() {
	w.mu.Lock()
	w.stopped = true
	stop := w.alarmStop
	w.alarmStop, w.alarmLive = nil, false
	w.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Armed returns the number of currently armed timers.
func (w *Wheel) Armed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.armed
}

// Stats returns activity counters since creation.
func (w *Wheel) Stats() Stats {
	return Stats{
		Arms:     w.arms.Load(),
		Fires:    w.fires.Load(),
		Cancels:  w.cancels.Load(),
		Cascades: w.cascades.Load(),
	}
}

// ticksFor converts a duration to a tick delta: rounded up, min 1,
// clamped below the horizon. Lock held.
func (w *Wheel) ticksFor(d time.Duration) uint64 {
	if d <= 0 {
		return 1
	}
	t := uint64((d + w.tick - 1) / w.tick)
	if t == 0 {
		t = 1
	}
	if t >= horizon {
		t = horizon - 1
	}
	return t
}

// insert links t into the coarsest level that resolves its delta from
// cur. Lock held.
func (w *Wheel) insert(t *Timer) {
	delta := t.deadline - w.cur
	if delta >= horizon {
		delta = horizon - 1
		t.deadline = w.cur + delta
	}
	var l int
	for l = 0; l < numLevels-1 && delta >= 1<<(slotBits*(l+1)); l++ {
	}
	idx := (t.deadline >> (slotBits * l)) & slotMask
	lv := &w.levels[l]
	t.next = lv.slots[idx]
	t.prev = nil
	if t.next != nil {
		t.next.prev = t
	}
	lv.slots[idx] = t
	lv.occ |= 1 << idx
	t.level, t.slot = int8(l), int8(idx)
	t.linked = true
}

// unlink removes t from its slot. Lock held.
func (w *Wheel) unlink(t *Timer) {
	lv := &w.levels[t.level]
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		lv.slots[t.slot] = t.next
		if t.next == nil {
			lv.occ &^= 1 << uint(t.slot)
		}
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev, t.linked = nil, nil, false
}

// takeSlot detaches and returns a slot's whole list. Lock held.
func (w *Wheel) takeSlot(l, idx int) *Timer {
	lv := &w.levels[l]
	head := lv.slots[idx]
	lv.slots[idx] = nil
	lv.occ &^= 1 << uint(idx)
	return head
}

// advanceLocked turns the wheel up to target, collecting expired
// timers. Lock held; callers run fire() on the result after unlocking.
func (w *Wheel) advanceLocked(target uint64) []*Timer {
	var fired []*Timer
	for w.cur < target {
		if w.empty() {
			w.cur = target
			break
		}
		w.cur++
		idx0 := int(w.cur & slotMask)
		if idx0 == 0 {
			w.cascade(1)
		}
		for t := w.takeSlot(0, idx0); t != nil; {
			next := t.next
			t.next, t.prev, t.linked = nil, nil, false
			w.armed--
			fired = append(fired, t)
			t = next
		}
	}
	return fired
}

// cascade re-files level l's current slot into finer levels; called
// when level l-1 wraps, recursing upward when this level wraps too.
// Timers whose deadline is the current tick land in level 0's current
// slot and are collected by the same tick that triggered the cascade.
func (w *Wheel) cascade(l int) {
	if l >= numLevels {
		return
	}
	idx := int((w.cur >> (slotBits * l)) & slotMask)
	if idx == 0 {
		w.cascade(l + 1)
	}
	for t := w.takeSlot(l, idx); t != nil; {
		next := t.next
		t.next, t.prev = nil, nil
		w.insert(t)
		w.cascades.Add(1)
		t = next
	}
}

func (w *Wheel) empty() bool {
	for l := range w.levels {
		if w.levels[l].occ != 0 {
			return false
		}
	}
	return true
}

// fire runs collected callbacks outside the lock and rolls the
// driven-mode alarm forward.
func (w *Wheel) fire(fired []*Timer) {
	for _, t := range fired {
		w.fires.Add(1)
		t.fn()
	}
}

// nextEventTick returns the earliest tick at which any slot fires or
// cascades, using the occupancy bitmaps. Lock held.
func (w *Wheel) nextEventTick() (uint64, bool) {
	best := uint64(0)
	found := false
	for l := 0; l < numLevels; l++ {
		occ := w.levels[l].occ
		if occ == 0 {
			continue
		}
		shift := uint(slotBits * l)
		curIdx := (w.cur >> shift) & slotMask
		// Distance 1..64 to the next occupied slot, wrapping.
		rot := bits.RotateLeft64(occ, -int(curIdx+1))
		d := uint64(bits.TrailingZeros64(rot)) + 1
		ev := ((w.cur >> shift) + d) << shift
		if !found || ev < best {
			best, found = ev, true
		}
	}
	return best, found
}

// schedule (driven mode) keeps exactly one host alarm outstanding,
// targeting the next event tick. Lock held.
func (w *Wheel) schedule() {
	if w.alarm == nil || w.stopped {
		return
	}
	next, ok := w.nextEventTick()
	if !ok {
		if w.alarmStop != nil {
			w.alarmStop()
			w.alarmStop, w.alarmLive = nil, false
		}
		return
	}
	if w.alarmLive && w.alarmFor <= next {
		return // the live alarm already fires soon enough
	}
	if w.alarmStop != nil {
		w.alarmStop()
	}
	w.alarmGen++
	gen := w.alarmGen
	w.alarmLive, w.alarmFor = true, next
	d := time.Until(w.startT.Add(time.Duration(next) * w.tick))
	if d < 0 {
		d = 0
	}
	w.alarmStop = w.alarm(d, func() { w.onAlarm(gen) })
}

// onAlarm is the single host-alarm callback: advance to real time,
// fire, re-arm.
func (w *Wheel) onAlarm(gen uint64) {
	w.mu.Lock()
	if gen == w.alarmGen {
		w.alarmLive = false
		w.alarmStop = nil
	}
	target := uint64(time.Since(w.startT) / w.tick)
	fired := w.advanceLocked(target)
	w.schedule()
	w.mu.Unlock()
	w.fire(fired)
}
