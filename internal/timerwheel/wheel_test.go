package timerwheel

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// manual returns a test wheel advanced only by Advance.
func manual() *Wheel { return New(time.Millisecond, nil) }

func TestWheelFiresInOrder(t *testing.T) {
	w := manual()
	var mu sync.Mutex
	var got []int
	for _, d := range []int{5, 2, 9, 2, 70, 4097} {
		d := d
		w.Arm(time.Duration(d)*time.Millisecond, func() {
			mu.Lock()
			got = append(got, d)
			mu.Unlock()
		})
	}
	w.Advance(5 * time.Second)
	want := []int{2, 2, 4, 5, 9, 70, 4097}[:6]
	sort.Ints(want)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 6 {
		t.Fatalf("fired %d of 6: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d", w.Armed())
	}
}

// TestWheelTickBoundary arms deadlines exactly on level-wrap tick
// boundaries (64, 4096 = where a cascade happens on the same tick the
// timer is due) and checks each fires exactly at its deadline — not a
// tick early, not a tick late.
func TestWheelTickBoundary(t *testing.T) {
	for _, ticks := range []int{1, 63, 64, 65, 127, 128, 4095, 4096, 4097} {
		w := manual()
		var fired atomic.Int32
		w.Arm(time.Duration(ticks)*time.Millisecond, func() { fired.Add(1) })
		w.Advance(time.Duration(ticks-1) * time.Millisecond)
		if fired.Load() != 0 {
			t.Fatalf("deadline %d ticks: fired at tick %d", ticks, ticks-1)
		}
		w.Advance(time.Millisecond)
		if fired.Load() != 1 {
			t.Fatalf("deadline %d ticks: did not fire on its tick", ticks)
		}
	}
}

// TestWheelCancelDuringCascade races Cancel against an advance that is
// cascading the timers' level — the window where a timer is unlinked
// from its coarse slot and re-filed. Run under -race this checks the
// lock discipline; the invariant checked here is exactly-once: every
// timer either fires once or reports a successful cancel, never both,
// never neither.
func TestWheelCancelDuringCascade(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		w := manual()
		const n = 256
		fired := make([]atomic.Int32, n)
		timers := make([]*Timer, n)
		for i := 0; i < n; i++ {
			i := i
			// 64..320 ticks: level ≥ 1, so every advance past 64
			// ticks cascades these down.
			timers[i] = w.Arm(time.Duration(64+i)*time.Millisecond, func() { fired[i].Add(1) })
		}
		var cancelled [n]bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				w.Advance(10 * time.Millisecond)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < n; i += 2 {
				cancelled[i] = timers[i].Cancel()
			}
		}()
		wg.Wait()
		w.Advance(time.Second)
		for i := 0; i < n; i++ {
			f := fired[i].Load()
			if f > 1 {
				t.Fatalf("timer %d fired %d times", i, f)
			}
			want := int32(1)
			if cancelled[i] {
				want = 0
			}
			if f != want {
				t.Fatalf("timer %d: fired=%d cancelled=%v", i, f, cancelled[i])
			}
		}
	}
}

// TestWheelMassExpiry parks 10k idle-connection deadlines on the same
// tick and expires them all in one Advance — the reaper's burst case.
func TestWheelMassExpiry(t *testing.T) {
	w := manual()
	const n = 10000
	var fired atomic.Int32
	for i := 0; i < n; i++ {
		w.Arm(500*time.Millisecond, func() { fired.Add(1) })
	}
	w.Advance(499 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatalf("early fires: %d", fired.Load())
	}
	w.Advance(time.Millisecond)
	if fired.Load() != n {
		t.Fatalf("fired %d of %d in the deadline tick", fired.Load(), n)
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d", w.Armed())
	}
}

// TestWheelRearmFromCallback re-arms a timer from inside its own
// expiry callback — the idle reaper's lazy re-arm — and checks the
// chain keeps firing on schedule.
func TestWheelRearmFromCallback(t *testing.T) {
	w := manual()
	var fires atomic.Int32
	var tm *Timer
	tm = w.Arm(10*time.Millisecond, func() {
		if fires.Add(1) < 5 {
			tm.Reset(10 * time.Millisecond)
		}
	})
	for i := 0; i < 5; i++ {
		w.Advance(10 * time.Millisecond)
	}
	if fires.Load() != 5 {
		t.Fatalf("fires = %d, want 5", fires.Load())
	}
	if w.Armed() != 0 {
		t.Fatalf("armed = %d after chain ended", w.Armed())
	}
	// Arming new timers from a callback also works.
	var child atomic.Bool
	w.Arm(time.Millisecond, func() {
		w.Arm(time.Millisecond, func() { child.Store(true) })
	})
	w.Advance(time.Millisecond)
	w.Advance(time.Millisecond)
	if !child.Load() {
		t.Fatal("callback-armed child did not fire")
	}
}

func TestWheelCancelSemantics(t *testing.T) {
	w := manual()
	var fired atomic.Int32
	tm := w.Arm(5*time.Millisecond, func() { fired.Add(1) })
	if !tm.Cancel() {
		t.Fatal("first cancel should win")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should lose")
	}
	w.Advance(time.Second)
	if fired.Load() != 0 {
		t.Fatalf("cancelled timer fired %d times", fired.Load())
	}
	s := w.Stats()
	if s.Arms != 1 || s.Cancels != 1 || s.Fires != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestWheelDriven runs a real-clock wheel and checks both that timers
// fire and that at most one host alarm is ever outstanding.
func TestWheelDriven(t *testing.T) {
	var outstanding, maxSeen atomic.Int32
	alarm := func(d time.Duration, fn func()) func() {
		if o := outstanding.Add(1); o > maxSeen.Load() {
			maxSeen.Store(o)
		}
		var done atomic.Bool
		tm := time.AfterFunc(d, func() {
			if done.CompareAndSwap(false, true) {
				outstanding.Add(-1)
			}
			fn()
		})
		return func() {
			tm.Stop()
			if done.CompareAndSwap(false, true) {
				outstanding.Add(-1)
			}
		}
	}
	w := New(time.Millisecond, alarm)
	defer w.Stop()
	const n = 64
	var fired atomic.Int32
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		w.Arm(time.Duration(1+i%20)*time.Millisecond, func() {
			if fired.Add(1) == n {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d of %d fired", fired.Load(), n)
	}
	if m := maxSeen.Load(); m > 1 {
		t.Fatalf("%d host alarms outstanding at once", m)
	}
}

// TestWheelDifferential drives the wheel and a sorted-deadline model
// with a random arm/cancel/advance stream and compares fire sets.
func TestWheelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		w := manual()
		var mu sync.Mutex
		firedSet := map[int]bool{}
		type mt struct {
			id       int
			deadline uint64
			tm       *Timer
		}
		var live []*mt
		nextID := 0
		now := uint64(0)
		wantFired := map[int]bool{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1: // arm
				d := 1 + rng.Intn(9000)
				id := nextID
				nextID++
				m := &mt{id: id, deadline: now + uint64(d)}
				m.tm = w.Arm(time.Duration(d)*time.Millisecond, func() {
					mu.Lock()
					firedSet[id] = true
					mu.Unlock()
				})
				live = append(live, m)
			case 2: // cancel a random live timer
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				m := live[i]
				if m.tm.Cancel() {
					live = append(live[:i], live[i+1:]...)
				}
			default: // advance
				d := uint64(1 + rng.Intn(200))
				now += d
				w.Advance(time.Duration(d) * time.Millisecond)
				rest := live[:0]
				for _, m := range live {
					if m.deadline <= now {
						wantFired[m.id] = true
					} else {
						rest = append(rest, m)
					}
				}
				live = rest
			}
		}
		w.Advance(20 * time.Second)
		for _, m := range live {
			wantFired[m.id] = true
		}
		mu.Lock()
		if len(firedSet) != len(wantFired) {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(firedSet), len(wantFired))
		}
		for id := range wantFired {
			if !firedSet[id] {
				t.Fatalf("trial %d: timer %d never fired", trial, id)
			}
		}
		mu.Unlock()
	}
}
