// Package verifier implements the Occlum binary verifier (§5 of the
// paper): an independent static checker that takes an OELF binary and
// decides whether it complies with the security policies of MMDSFI. Only
// binaries that pass all four stages are signed; the LibOS loader refuses
// anything unsigned. This keeps the large MMDSFI toolchain out of the TCB.
//
// The four stages mirror the paper exactly:
//
//	Stage 1 — complete disassembly (Algorithm 1): scan for cfi_label
//	          magic bytes, disassemble from every label following
//	          sequential execution and direct transfers, abort on any
//	          invalid or overlapping instruction.
//	Stage 2 — instruction set verification: reject dangerous SGX, MPX
//	          and miscellaneous privileged instructions.
//	Stage 3 — control transfer verification (Figure 3): classify every
//	          transfer and check its category's criteria.
//	Stage 4 — memory access verification (Figure 4): classify every
//	          access and check it with the cfi_label-aware range
//	          analysis.
package verifier

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmdsfi"
	"repro/internal/oelf"
)

// Error is a verification failure, tagged with the stage that rejected
// the binary.
type Error struct {
	Stage  int
	Offset int
	Msg    string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("verifier: stage %d: offset %#x: %s", e.Stage, e.Offset, e.Msg)
}

func errf(stage, off int, format string, args ...any) error {
	return &Error{Stage: stage, Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// Verifier checks OELF binaries and signs the compliant ones.
type Verifier struct {
	key oelf.SigningKey
}

// New creates a verifier that signs with key.
func New(key oelf.SigningKey) *Verifier { return &Verifier{key: key} }

// Verify runs all four stages on b. It does not sign.
func (v *Verifier) Verify(b *oelf.Binary) error {
	if b.Image.GuardSize != asm.DefaultGuardSize {
		return errf(0, 0, "unsupported guard size %d (loader provides %d)",
			b.Image.GuardSize, asm.DefaultGuardSize)
	}
	r, err := disassemble(b.Image.Code)
	if err != nil {
		return err
	}
	if err := verifyEntry(b, r); err != nil {
		return err
	}
	if err := verifyInstructionSet(r); err != nil {
		return err
	}
	if err := verifyControlTransfers(b.Image.Code, r); err != nil {
		return err
	}
	return verifyMemoryAccesses(b, r)
}

// VerifyAndSign verifies b and, on success, attaches the verifier
// signature.
func (v *Verifier) VerifyAndSign(b *oelf.Binary) error {
	if err := v.Verify(b); err != nil {
		return err
	}
	v.key.Sign(b)
	return nil
}

// rinst is one reachable instruction: the subject set R of Algorithm 1.
type rinst struct {
	off  int
	n    int
	inst isa.Inst
}

// disassemble is Stage 1, Algorithm 1: complete and reliable disassembly
// rooted at the cfi_labels. It returns R sorted by offset.
func disassemble(code []byte) ([]rinst, error) {
	const stage = 1
	owner := make([]int32, len(code)) // byte → owning instruction start, or -1
	for i := range owner {
		owner[i] = -1
	}
	insts := make(map[int]rinst)

	// Line 2: find all cfi_labels by scanning byte by byte.
	stack := isa.FindCFIMagic(code)
	if len(stack) == 0 {
		return nil, errf(stage, 0, "no cfi_labels: program has no valid entry points")
	}

	for len(stack) > 0 {
		addr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for {
			// Line 6: the whole instruction must lie within C.
			if addr < 0 || addr >= len(code) {
				return nil, errf(stage, addr, "control flow leaves the code segment")
			}
			// Line 8-10: decode; invalid instructions abort.
			in, n, err := isa.Decode(code, addr)
			if err != nil {
				return nil, errf(stage, addr, "invalid instruction: %v", err)
			}
			// Line 11-12: already disassembled here — converged.
			if _, ok := insts[addr]; ok {
				break
			}
			// Line 13-14: overlap with a differently-aligned
			// instruction aborts (the variable-length hazard).
			for b := addr; b < addr+n; b++ {
				if owner[b] != -1 {
					return nil, errf(stage, addr,
						"instruction overlaps the one at %#x", owner[b])
				}
			}
			for b := addr; b < addr+n; b++ {
				owner[b] = int32(addr)
			}
			insts[addr] = rinst{off: addr, n: n, inst: in}
			// Line 16-18: follow direct control transfers.
			if in.Op.IsDirectBranch() {
				target := addr + n + int(int32(in.Imm))
				stack = append(stack, target)
			}
			// Line 19-20: stop at unconditional transfers.
			if in.Op.IsUncondTransfer() {
				break
			}
			addr += n
		}
	}

	// Overlap detection must also consider instructions disassembled
	// *before* an overlapping root is popped; re-check every pair by
	// ownership: already guaranteed by the owner array above.

	r := make([]rinst, 0, len(insts))
	for _, ri := range insts {
		r = append(r, ri)
	}
	sort.Slice(r, func(i, j int) bool { return r[i].off < r[j].off })
	return r, nil
}

// verifyEntry checks that the binary's declared entry point is a
// cfi_label (the LibOS guarantees programs start there).
func verifyEntry(b *oelf.Binary, r []rinst) error {
	i, ok := find(r, int(b.Image.Entry))
	if !ok || r[i].inst.Op != isa.OpCFILabel {
		return errf(1, int(b.Image.Entry), "entry point is not a cfi_label")
	}
	return nil
}

func find(r []rinst, off int) (int, bool) {
	i := sort.Search(len(r), func(i int) bool { return r[i].off >= off })
	if i < len(r) && r[i].off == off {
		return i, true
	}
	return 0, false
}

// verifyInstructionSet is Stage 2: no dangerous instructions in R.
func verifyInstructionSet(r []rinst) error {
	for _, ri := range r {
		if ri.inst.Op.IsDangerous() {
			return errf(2, ri.off, "dangerous instruction %s", ri.inst.Op)
		}
	}
	return nil
}

// cfiGuardAt reports whether r[i..i+3] form a cfi_guard triple followed by
// a register-based indirect transfer through the guarded register, at
// contiguous offsets.
func cfiGuardAt(r []rinst, i int) (target isa.Reg, ok bool) {
	if i+3 >= len(r) {
		return 0, false
	}
	ld, cl, cu, tr := r[i], r[i+1], r[i+2], r[i+3]
	if ld.off+ld.n != cl.off || cl.off+cl.n != cu.off || cu.off+cu.n != tr.off {
		return 0, false
	}
	if !(ld.inst.Op == isa.OpLoad && ld.inst.R1 == isa.GuardScratch &&
		!ld.inst.Mem.HasIndex() && !ld.inst.Mem.IsPCRel() && !ld.inst.Mem.IsAbs() &&
		ld.inst.Mem.Disp == 0) {
		return 0, false
	}
	if !(cl.inst.Op == isa.OpBndCL && cl.inst.Bnd == isa.BND1 && cl.inst.R1 == isa.GuardScratch) {
		return 0, false
	}
	if !(cu.inst.Op == isa.OpBndCU && cu.inst.Bnd == isa.BND1 && cu.inst.R1 == isa.GuardScratch) {
		return 0, false
	}
	if !tr.inst.Op.IsRegIndirect() || tr.inst.R1 != ld.inst.Mem.Base {
		return 0, false
	}
	if tr.inst.R1 == isa.GuardScratch {
		return 0, false // the load would have clobbered the target
	}
	return tr.inst.R1, true
}

// verifyControlTransfers is Stage 3, Figure 3.
func verifyControlTransfers(code []byte, r []rinst) error {
	const stage = 3

	// Mark, for every register-based indirect transfer, whether it is
	// guarded; and mark the interior instructions of guard sequences
	// (the bndcl/bndcu and the transfer itself), which direct branches
	// must not target.
	guarded := make(map[int]bool) // offset of reg-indirect transfer
	interior := make(map[int]bool)
	for i := range r {
		if _, ok := cfiGuardAt(r, i); ok {
			guarded[r[i+3].off] = true
			interior[r[i+1].off] = true
			interior[r[i+2].off] = true
			interior[r[i+3].off] = true
		}
	}

	for i, ri := range r {
		op := ri.inst.Op
		switch {
		case op.IsDirectBranch():
			// Category 1: the target must not be a register-based
			// indirect transfer (which would skip its cfi_guard),
			// nor any interior instruction of a guard sequence.
			target := ri.off + ri.n + int(int32(ri.inst.Imm))
			ti, ok := find(r, target)
			if !ok {
				return errf(stage, ri.off, "direct transfer to unverified offset %#x", target)
			}
			if r[ti].inst.Op.IsRegIndirect() {
				return errf(stage, ri.off,
					"direct transfer targets a register-based indirect transfer at %#x", target)
			}
			if interior[target] {
				return errf(stage, ri.off,
					"direct transfer into the middle of a cfi_guard sequence at %#x", target)
			}
		case op.IsRegIndirect():
			// Category 2: must be guarded by a cfi_guard.
			if !guarded[ri.off] {
				return errf(stage, ri.off, "%s is not guarded by a cfi_guard", op)
			}
			_ = i
		case op.IsMemIndirect():
			// Category 3: reject.
			return errf(stage, ri.off, "memory-based indirect transfer %s", op)
		case op.IsReturn():
			// Category 4: reject.
			return errf(stage, ri.off, "return-based indirect transfer %s", op)
		}
	}
	return nil
}

// verifyMemoryAccesses is Stage 4, Figure 4: build the CFG over R, run the
// cfi_label-aware range analysis, and check every access.
func verifyMemoryAccesses(b *oelf.Binary, r []rinst) error {
	const stage = 4
	code, err := buildCode(b, r)
	if err != nil {
		return err
	}
	res := mmdsfi.Analyze(code, nil)
	for i, ri := range r {
		op := ri.inst.Op
		// Category: direct memory offset — reject (no fixed address
		// can be assumed to be within a domain).
		accesses := mmdsfi.Accesses(ri.inst)
		for _, a := range accesses {
			if a.Mem.IsAbs() {
				return errf(stage, ri.off, "direct memory offset operand in %s", op)
			}
		}
		// Category: vector SIB — reject.
		if op == isa.OpVScatter {
			return errf(stage, ri.off, "vector SIB scatter")
		}
		if len(accesses) == 0 || code.Nodes[i].Exempt {
			continue
		}
		// Categories SIB / implicit register-based / RIP-relative:
		// check via the range analysis.
		if !res.In[i].Reachable {
			// In R but unreachable for the analysis would be a
			// verifier bug; reject conservatively.
			return errf(stage, ri.off, "access in analysis-unreachable code")
		}
		if !res.Proven[i] {
			return errf(stage, ri.off, "memory access in %s not provably within the data region", op)
		}
	}
	return nil
}

// buildCode lowers R into the shared analysis representation.
func buildCode(b *oelf.Binary, r []rinst) (*mmdsfi.Code, error) {
	byOff := make(map[int]int, len(r))
	for i, ri := range r {
		byOff[ri.off] = i
	}
	nodes := make([]mmdsfi.Node, len(r))
	for i, ri := range r {
		target := -1
		if ri.inst.Op.IsDirectBranch() {
			t, ok := byOff[ri.off+ri.n+int(int32(ri.inst.Imm))]
			if !ok {
				return nil, errf(4, ri.off, "direct branch target not in R")
			}
			target = t
		}
		// Fallthrough adjacency: the analysis engine treats node i+1
		// as the fallthrough; verify that holds whenever the
		// instruction can fall through.
		if !ri.inst.Op.IsUncondTransfer() {
			if i+1 >= len(r) || r[i+1].off != ri.off+ri.n {
				return nil, errf(4, ri.off, "instruction falls through into unverified bytes")
			}
		}
		nodes[i] = mmdsfi.Node{
			Inst:   ri.inst,
			Target: target,
			Addr:   uint64(ri.off),
			Next:   uint64(ri.off + ri.n),
		}
	}
	// Exempt cfi_guard loads.
	for i := range r {
		if _, ok := cfiGuardAt(r, i); ok {
			nodes[i].Exempt = true
		}
	}
	codeSpan := (int64(len(b.Image.Code)) + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	return &mmdsfi.Code{
		Nodes:     nodes,
		GuardSize: int64(b.Image.GuardSize),
		CodeSpan:  codeSpan,
		MinData:   int64(b.Image.MinDataSize()),
	}, nil
}
