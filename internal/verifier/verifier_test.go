package verifier

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mmdsfi"
	"repro/internal/oelf"
)

var testKey = oelf.NewSigningKey("verifier-test")

// jmpToStart appends a direct jump back to offset 0 (the cfi_label),
// computing the rel32 from the current code length.
func jmpToStart(code []byte) []byte {
	rel := -(len(code) + 5)
	out, _ := isa.Encode(code, isa.Inst{Op: isa.OpJmp, Imm: int64(rel)})
	return out
}

func buildRaw(t testing.TB, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// compile instruments (optionally) and links a program into a binary.
func compile(t testing.TB, p *asm.Program, instrument bool) *oelf.Binary {
	t.Helper()
	var err error
	if instrument {
		p, err = mmdsfi.Instrument(p, mmdsfi.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	img, err := asm.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	return oelf.FromImage("test", img)
}

// workload is a representative program: functions, loops, stack use,
// indirect control flow via return, static data.
func workload(t testing.TB) *asm.Program {
	return buildRaw(t, func(b *asm.Builder) {
		b.Bytes("table", make([]byte, 256))
		b.Entry("_start")
		b.MovRI(isa.R1, 10)
		b.Call("fill")
		b.MovRI(isa.R1, 3)
		b.MovRI(isa.R2, 4)
		b.Call("madd")
		b.Label("done")
		b.Jmp("done")

		b.Func("fill")
		b.LeaData(isa.R3, "table")
		b.MovRI(isa.R4, 0)
		b.Label("fill_loop")
		b.Store(isa.Mem(isa.R3, 0), isa.R4)
		b.AddI(isa.R3, 8)
		b.AddI(isa.R4, 1)
		b.CmpI(isa.R4, 32)
		b.Jl("fill_loop")
		b.Ret()

		b.Func("madd")
		b.Push(isa.R1)
		b.Mul(isa.R1, isa.R2)
		b.MovRR(isa.R0, isa.R1)
		b.Pop(isa.R1)
		b.Add(isa.R0, isa.R1)
		b.Ret()
	})
}

func TestInstrumentedProgramVerifies(t *testing.T) {
	bin := compile(t, workload(t), true)
	v := New(testKey)
	if err := v.VerifyAndSign(bin); err != nil {
		t.Fatalf("instrumented program rejected: %v", err)
	}
	if err := testKey.Verify(bin); err != nil {
		t.Fatalf("signature missing after VerifyAndSign: %v", err)
	}
}

func TestUninstrumentedProgramRejected(t *testing.T) {
	bin := compile(t, workload(t), false)
	err := New(testKey).Verify(bin)
	if err == nil {
		t.Fatal("uninstrumented program must be rejected")
	}
	t.Logf("rejected as expected: %v", err)
}

func stageOf(t *testing.T, err error) int {
	t.Helper()
	ve, ok := err.(*Error)
	if !ok {
		t.Fatalf("error %v is not a verifier.Error", err)
	}
	return ve.Stage
}

func TestStage1RejectsNoLabels(t *testing.T) {
	bin := oelf.FromImage("x", &asm.Image{
		Code:      []byte{byte(isa.OpNop)},
		GuardSize: asm.DefaultGuardSize,
	})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 1 {
		t.Fatalf("err = %v, want stage 1", err)
	}
}

func TestStage1RejectsInvalidInstruction(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code = append(code, 0xEE) // undefined opcode reached by fallthrough
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 1 {
		t.Fatalf("err = %v, want stage 1", err)
	}
}

func TestStage1RejectsRunoffEnd(t *testing.T) {
	// A conditional branch as the last instruction falls through past
	// the end of C.
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJe, Imm: -13})
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 1 {
		t.Fatalf("err = %v, want stage 1", err)
	}
}

func TestStage1RejectsOverlap(t *testing.T) {
	// A direct jump into the middle of another instruction: the jump
	// target decodes fine but overlaps the movri.
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	// movri r0, imm where imm bytes decode as a nop at offset +2.
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpMovRI, R1: isa.R0, Imm: int64(isa.OpNop)})
	// jmp back into the middle of the movri (offset 8+2 = 10).
	// jmp is at offset 18, next=23; target 10 → rel = -13.
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmp, Imm: -13})
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 1 {
		t.Fatalf("err = %v, want stage 1 overlap", err)
	}
}

func TestStage1RejectsEntryNotLabel(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpNop})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmp, Imm: -14}) // loop back to label
	bin := oelf.FromImage("x", &asm.Image{Code: code, Entry: 8, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 1 {
		t.Fatalf("err = %v, want stage 1 (entry not a cfi_label)", err)
	}
}

func TestStage2RejectsDangerous(t *testing.T) {
	for _, op := range []isa.Op{isa.OpEExit, isa.OpEAccept, isa.OpEModPE,
		isa.OpBndMov, isa.OpXRstor, isa.OpTrap, isa.OpHalt} {
		var code []byte
		code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
		code, _ = isa.Encode(code, isa.Inst{Op: op, Bnd: isa.BND2, Bnd2: isa.BND3})
		code = jmpToStart(code)
		bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
		err := New(testKey).Verify(bin)
		if err == nil || stageOf(t, err) != 2 {
			t.Fatalf("%s: err = %v, want stage 2", op, err)
		}
	}
}

func TestStage2RejectsWrFSBase(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpWrFSBase, R1: isa.R1})
	code = jmpToStart(code)
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 2 {
		t.Fatalf("err = %v, want stage 2", err)
	}
}

func TestStage3RejectsUnguardedIndirect(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmpR, R1: isa.R1})
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 3 {
		t.Fatalf("err = %v, want stage 3", err)
	}
}

func TestStage3RejectsReturn(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpRet})
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 3 {
		t.Fatalf("err = %v, want stage 3", err)
	}
}

func TestStage3RejectsMemIndirect(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmpM, R1: isa.R0, Mem: isa.Mem(isa.R1, 0)})
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 3 {
		t.Fatalf("err = %v, want stage 3", err)
	}
}

// guardedJump encodes cfi_label; cfi_guard(r1); jmpr r1 and returns the
// code plus the offsets of the pieces.
func guardedJump(t *testing.T) (code []byte, guardCL, jmpOff int) {
	t.Helper()
	var err error
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, err = isa.Encode(code, isa.Inst{Op: isa.OpLoad, R1: isa.GuardScratch, Mem: isa.Mem(isa.R1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	guardCL = len(code)
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND1, R1: isa.GuardScratch})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND1, R1: isa.GuardScratch})
	jmpOff = len(code)
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmpR, R1: isa.R1})
	return code, guardCL, jmpOff
}

func TestStage3AcceptsGuardedIndirect(t *testing.T) {
	code, _, _ := guardedJump(t)
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	// The guard load reads [r1] which is exempt; there are no other
	// accesses, so this passes all stages.
	if err := New(testKey).Verify(bin); err != nil {
		t.Fatalf("guarded indirect rejected: %v", err)
	}
}

// guardedJumpWithEntryJmp builds: cfi_label; jmp <guard-start+delta>;
// cfi_guard(r1); jmpr r1. The direct jmp is reachable from the label, so
// Stage 1 keeps it in R.
func guardedJumpWithEntryJmp(t *testing.T, delta int) *oelf.Binary {
	t.Helper()
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmp, Imm: int64(delta)}) // guard starts right after
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpLoad, R1: isa.GuardScratch, Mem: isa.Mem(isa.R1, 0)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND1, R1: isa.GuardScratch})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND1, R1: isa.GuardScratch})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpJmpR, R1: isa.R1})
	return oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
}

func TestStage3AcceptsJumpToGuardStart(t *testing.T) {
	// Landing at the start of the cfi_guard executes the whole
	// sequence — allowed.
	if err := New(testKey).Verify(guardedJumpWithEntryJmp(t, 0)); err != nil {
		t.Fatalf("jump to guard start rejected: %v", err)
	}
}

func TestStage3RejectsJumpSkippingGuard(t *testing.T) {
	// A direct jump straight to the jmpr would bypass the cfi_guard.
	// Guard layout: load (9 bytes), bndcl (3), bndcu (3), jmpr.
	err := New(testKey).Verify(guardedJumpWithEntryJmp(t, 9+3+3))
	if err == nil || stageOf(t, err) != 3 {
		t.Fatalf("err = %v, want stage 3", err)
	}
}

func TestStage3RejectsJumpIntoGuardMiddle(t *testing.T) {
	// A direct jump to the bndcu (with a stale scratch) must be
	// rejected: it would reach the jmpr with an unvalidated target.
	err := New(testKey).Verify(guardedJumpWithEntryJmp(t, 9+3))
	if err == nil || stageOf(t, err) != 3 {
		t.Fatalf("err = %v, want stage 3", err)
	}
}

func TestStage4RejectsUnguardedStore(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpStore, R1: isa.R2, Mem: isa.Mem(isa.R1, 0)})
	code = jmpToStart(code)
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 4 {
		t.Fatalf("err = %v, want stage 4", err)
	}
}

func TestStage4RejectsAbsoluteOperand(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpLoad, R1: isa.R2, Mem: isa.Abs(0x1000)})
	code = jmpToStart(code)
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 4 {
		t.Fatalf("err = %v, want stage 4", err)
	}
}

func TestStage4RejectsVectorScatter(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	// Pre-guard the operand so only the scatter rule can reject.
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCLM, Bnd: isa.BND0, Mem: isa.Mem(isa.R1, 0)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCUM, Bnd: isa.BND0, Mem: isa.Mem(isa.R1, 0)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpVScatter, R1: isa.R2, Mem: isa.Mem(isa.R1, 0)})
	code = jmpToStart(code)
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	err := New(testKey).Verify(bin)
	if err == nil || stageOf(t, err) != 4 {
		t.Fatalf("err = %v, want stage 4", err)
	}
}

func TestStage4AcceptsGuardedStore(t *testing.T) {
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCLM, Bnd: isa.BND0, Mem: isa.Mem(isa.R1, 0)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCUM, Bnd: isa.BND0, Mem: isa.Mem(isa.R1, 0)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpStore, R1: isa.R2, Mem: isa.Mem(isa.R1, 0)})
	code = jmpToStart(code)
	bin := oelf.FromImage("x", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	if err := New(testKey).Verify(bin); err != nil {
		t.Fatalf("guarded store rejected: %v", err)
	}
}

func TestFuzzMutationsNeverPanic(t *testing.T) {
	bin := compile(t, workload(t), true)
	v := New(testKey)
	if err := v.Verify(bin); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		mut := *bin
		mut.Image.Code = append([]byte(nil), bin.Image.Code...)
		// Flip 1-4 random bytes.
		for j := 0; j < 1+rng.Intn(4); j++ {
			mut.Image.Code[rng.Intn(len(mut.Image.Code))] ^= byte(1 + rng.Intn(255))
		}
		// The verifier must terminate without panicking; acceptance
		// is allowed only if the mutation kept the binary compliant.
		_ = v.Verify(&mut)
	}
}

func TestVerifierIndependentOfToolchain(t *testing.T) {
	// The verifier accepts compliant binaries regardless of origin:
	// hand-written instrumented code (not produced by Instrument).
	var code []byte
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpCFILabel})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpMovRI, R1: isa.R2, Imm: 1})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCLM, Bnd: isa.BND0, Mem: isa.Mem(isa.R5, 16)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpBndCUM, Bnd: isa.BND0, Mem: isa.Mem(isa.R5, 16)})
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpStore, R1: isa.R2, Mem: isa.Mem(isa.R5, 16)})
	// Redundant-by-refinement second store within guard slack.
	code, _ = isa.Encode(code, isa.Inst{Op: isa.OpStore, R1: isa.R2, Mem: isa.Mem(isa.R5, 24)})
	code = jmpToStart(code)
	bin := oelf.FromImage("handmade", &asm.Image{Code: code, GuardSize: asm.DefaultGuardSize})
	if err := New(testKey).Verify(bin); err != nil {
		t.Fatalf("hand-made compliant binary rejected: %v", err)
	}
}

func BenchmarkVerify(b *testing.B) {
	bin := compile(b, workload(b), true)
	v := New(testKey)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Verify(bin); err != nil {
			b.Fatal(err)
		}
	}
}
