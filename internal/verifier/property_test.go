package verifier

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mmdsfi"
	"repro/internal/oelf"
)

// randomProgram generates a structurally valid program with random
// arithmetic, memory traffic, loops and calls — the kind of code an
// arbitrary compiler might emit.
func randomProgram(rng *rand.Rand) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("data", 4096)
	b.Entry("_start")
	b.LeaData(isa.R1, "data")

	nBlocks := 2 + rng.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		loop := fmt.Sprintf("L%d", blk)
		b.MovRI(isa.R2, int64(2+rng.Intn(5)))
		b.Label(loop)
		for i := 0; i < 3+rng.Intn(6); i++ {
			switch rng.Intn(7) {
			case 0:
				b.Load(isa.R3, isa.Mem(isa.R1, int32(rng.Intn(64)*8)))
			case 1:
				b.Store(isa.Mem(isa.R1, int32(rng.Intn(64)*8)), isa.R3)
			case 2:
				b.AddI(isa.R3, int32(rng.Intn(100)))
			case 3:
				b.Mul(isa.R3, isa.R2)
			case 4:
				b.Push(isa.R3)
				b.Pop(isa.R4)
			case 5:
				b.Call(fmt.Sprintf("fn%d", rng.Intn(2)))
			case 6:
				b.AddI(isa.R1, 8)
				b.SubI(isa.R1, 8)
			}
		}
		b.SubI(isa.R2, 1)
		b.CmpI(isa.R2, 0)
		b.Jg(loop)
	}
	lbl := "end"
	b.Label(lbl)
	b.Jmp(lbl)

	for i := 0; i < 2; i++ {
		b.Func(fmt.Sprintf("fn%d", i))
		b.AddI(isa.R5, int32(i+1))
		b.Ret()
	}
	return b.Finish()
}

// TestPropertyInstrumentedAlwaysVerifies is the toolchain/verifier
// agreement property at the heart of the paper's architecture: whatever
// the (untrusted) instrumenter emits for well-formed input, the
// (trusted, independent) verifier accepts — including the output of the
// range-analysis optimizations and loop hoisting.
func TestPropertyInstrumentedAlwaysVerifies(t *testing.T) {
	v := New(testKey)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, err := randomProgram(rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, opts := range []mmdsfi.Options{
			mmdsfi.DefaultOptions(),
			{ConfineControl: true, ConfineLoads: true, ConfineStores: true}, // naive
		} {
			ip, err := mmdsfi.Instrument(p, opts)
			if err != nil {
				t.Fatalf("seed %d: instrument: %v", seed, err)
			}
			img, err := asm.Link(ip)
			if err != nil {
				t.Fatalf("seed %d: link: %v", seed, err)
			}
			if err := v.Verify(oelf.FromImage("rnd", img)); err != nil {
				t.Fatalf("seed %d (opt=%v): verifier rejected toolchain output: %v",
					seed, opts.Optimize, err)
			}
		}
		// And the uninstrumented version is always rejected (it
		// contains raw rets and unguarded accesses).
		img, err := asm.Link(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := v.Verify(oelf.FromImage("raw", img)); err == nil {
			t.Fatalf("seed %d: uninstrumented program accepted", seed)
		}
	}
}
