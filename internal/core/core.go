// Package core is the public facade of the Occlum reproduction, tying the
// three components of Figure 1b together:
//
//   - the toolchain (asm builder + MMDSFI instrumentation + linker),
//   - the verifier (independent static checking + signing),
//   - the LibOS (enclave, domains, syscalls, filesystems).
//
// Typical use:
//
//	tc := core.NewToolchain()
//	bin, err := tc.Compile("hello", prog)      // instrument, link, verify, sign
//	sys, err := core.BootSystem(core.SystemConfig{})
//	sys.OS.InstallBinary("/bin/hello", bin)
//	p, err := sys.OS.Spawn("/bin/hello", nil, libos.SpawnOpt{})
//	status := p.Wait()
package core

import (
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/fs"
	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/mmdsfi"
	"repro/internal/oelf"
	"repro/internal/sgx"
	"repro/internal/verifier"
)

// Toolchain compiles programs into verified, signed OELF binaries.
type Toolchain struct {
	key  oelf.SigningKey
	opts mmdsfi.Options
	ver  *verifier.Verifier
}

// NewToolchain builds a toolchain with the default signing key and full,
// optimized MMDSFI instrumentation.
func NewToolchain() *Toolchain {
	return NewToolchainWith(oelf.NewSigningKey("occlum"), mmdsfi.DefaultOptions())
}

// NewToolchainWith builds a toolchain with explicit key and options.
func NewToolchainWith(key oelf.SigningKey, opts mmdsfi.Options) *Toolchain {
	return &Toolchain{key: key, opts: opts, ver: verifier.New(key)}
}

// Key returns the signing key (needed to configure a LibOS that trusts
// this toolchain's verifier).
func (tc *Toolchain) Key() oelf.SigningKey { return tc.key }

// Compile instruments, links, verifies and signs a program. The verifier
// runs unconditionally: a toolchain bug that emits non-compliant code is
// caught here, exactly as the paper's architecture intends.
func (tc *Toolchain) Compile(name string, p *asm.Program) (*oelf.Binary, error) {
	ip, err := mmdsfi.Instrument(p, tc.opts)
	if err != nil {
		return nil, fmt.Errorf("core: instrument %s: %w", name, err)
	}
	img, err := asm.Link(ip)
	if err != nil {
		return nil, fmt.Errorf("core: link %s: %w", name, err)
	}
	bin := oelf.FromImage(name, img)
	if err := tc.ver.VerifyAndSign(bin); err != nil {
		return nil, fmt.Errorf("core: verify %s: %w", name, err)
	}
	return bin, nil
}

// CompileUnverified links without instrumentation or signing — for
// baseline (native Linux) execution and for negative tests.
func (tc *Toolchain) CompileUnverified(name string, p *asm.Program) (*oelf.Binary, error) {
	img, err := asm.Link(p)
	if err != nil {
		return nil, fmt.Errorf("core: link %s: %w", name, err)
	}
	return oelf.FromImage(name, img), nil
}

// SystemConfig parameterizes BootSystem.
type SystemConfig struct {
	// LibOS overrides the LibOS configuration; zero means
	// libos.DefaultConfig with the toolchain key.
	LibOS libos.Config
	// EPCBytes sizes the platform's EPC (default 512 MiB).
	EPCBytes uint64
	// Stdout receives /dev/console output.
	Stdout io.Writer
	// HostFiles pre-populates untrusted host storage before boot — how
	// a packed occlum-image blob reaches LibOS.Config.BaseImage.
	HostFiles map[string][]byte
}

// System is a booted platform + host + LibOS.
type System struct {
	Platform *sgx.Platform
	Host     *hostos.Host
	OS       *libos.Occlum
}

// BootSystem creates a platform and host and boots one Occlum LibOS
// enclave on them.
func BootSystem(cfg SystemConfig) (*System, error) {
	if cfg.EPCBytes == 0 {
		cfg.EPCBytes = 512 << 20
	}
	lc := cfg.LibOS
	if lc.NumDomains == 0 {
		lc = libos.DefaultConfig()
	}
	if cfg.Stdout != nil {
		lc.Stdout = cfg.Stdout
	}
	platform := sgx.NewPlatform(cfg.EPCBytes)
	host := hostos.New()
	for name, data := range cfg.HostFiles {
		host.WriteFile(name, data)
	}
	os, err := libos.Boot(platform, host, lc)
	if err != nil {
		return nil, err
	}
	return &System{Platform: platform, Host: host, OS: os}, nil
}

// Install compiles-and-installs in one step, the "occlum build" flow.
func (s *System) Install(tc *Toolchain, path, name string, p *asm.Program) error {
	bin, err := tc.Compile(name, p)
	if err != nil {
		return err
	}
	return s.InstallBinary(path, bin)
}

// InstallBinary places a prebuilt binary at path, creating parent
// directories as needed.
func (s *System) InstallBinary(path string, bin *oelf.Binary) error {
	s.MkdirAll(parentDir(path))
	return s.OS.InstallBinary(path, bin)
}

// MkdirAll creates the directory path and its missing parents on the
// LibOS filesystem.
func (s *System) MkdirAll(path string) {
	if path == "" || path == "/" {
		return
	}
	s.MkdirAll(parentDir(path))
	_ = s.OS.VFS().Mkdir(path)
}

func parentDir(p string) string {
	i := len(p) - 1
	for i > 0 && p[i] != '/' {
		i--
	}
	return p[:i]
}

// WriteFile writes a plain file into the LibOS encrypted filesystem
// (image preparation), creating parent directories as needed.
func (s *System) WriteFile(path string, data []byte) error {
	s.MkdirAll(parentDir(path))
	f, err := s.OS.VFS().Open(path, fs.OWrOnly|fs.OCreate|fs.OTrunc)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, 0)
	return err
}

// ReadFile reads a file back from the LibOS filesystem.
func (s *System) ReadFile(path string) ([]byte, error) {
	f, err := s.OS.VFS().Open(path, fs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	_, err = f.ReadAt(buf, 0)
	return buf, err
}
