package core_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/libos"
	"repro/internal/mmdsfi"
	"repro/internal/oelf"
	"repro/internal/ulib"
)

func hello(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	b.String("m", "hi")
	b.Entry("_start")
	ulib.Prologue(b)
	ulib.WriteStr(b, 1, "m", 2)
	ulib.Exit(b, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileProducesSignedBinary(t *testing.T) {
	tc := core.NewToolchain()
	bin, err := tc.Compile("h", hello(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Key().Verify(bin); err != nil {
		t.Fatalf("compiled binary not signed: %v", err)
	}
}

func TestCompileCatchesToolchainMisconfiguration(t *testing.T) {
	// A toolchain configured without SFI emits binaries the verifier
	// rejects at Compile time — the safety net of the architecture.
	tc := core.NewToolchainWith(oelf.NewSigningKey("x"), mmdsfi.Options{})
	if _, err := tc.Compile("h", hello(t)); err == nil {
		t.Fatal("uninstrumented output must fail verification")
	}
}

func TestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	tc := core.NewToolchain()
	sys, err := core.BootSystem(core.SystemConfig{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.OS.Shutdown()
	if err := sys.Install(tc, "/apps/deep/hello", "h", hello(t)); err != nil {
		t.Fatal(err)
	}
	p, err := sys.OS.Spawn("/apps/deep/hello", nil, libos.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 || out.String() != "hi" {
		t.Fatalf("status=%d out=%q", st, out.String())
	}
}

func TestMismatchedVerifierKeyRefused(t *testing.T) {
	// A binary signed by a verifier the LibOS does not trust is
	// rejected by the loader.
	other := core.NewToolchainWith(oelf.NewSigningKey("rogue"), mmdsfi.DefaultOptions())
	bin, err := other.Compile("h", hello(t))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.BootSystem(core.SystemConfig{}) // trusts the default key
	if err != nil {
		t.Fatal(err)
	}
	defer sys.OS.Shutdown()
	if err := sys.InstallBinary("/bin/h", bin); err != nil {
		t.Fatal(err)
	}
	_, err = sys.OS.Spawn("/bin/h", nil, libos.SpawnOpt{})
	if !errors.Is(err, libos.ErrNotSigned) {
		t.Fatalf("err = %v, want ErrNotSigned", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	sys, err := core.BootSystem(core.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.OS.Shutdown()
	if err := sys.WriteFile("/a/b/c/file.txt", []byte("nested")); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadFile("/a/b/c/file.txt")
	if err != nil || string(got) != "nested" {
		t.Fatalf("got %q, %v", got, err)
	}
}
