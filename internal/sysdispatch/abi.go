// Package sysdispatch is the syscall spine shared by every simulated
// kernel: the user-visible syscall ABI (numbers, errnos, flag values), a
// table-driven dispatcher, a shared file-descriptor table, and the
// argument-marshalling halves of the handlers that are common across
// kernels.
//
// Before this package existed, internal/libos and internal/linuxsim each
// carried a ~400-line switch over the same syscall numbers, duplicating
// the marshalling (path strings, argv blocks, status write-backs, fd
// bookkeeping) and drifting on every new syscall. Now each kernel builds
// one Table at init, registering either a spine-provided handler (where
// only the semantics primitive differs, injected as a closure) or its own
// handler (where the whole operation is kernel-specific, e.g. signals in
// the LibOS), and its trap path shrinks to one Dispatch call.
package sysdispatch

// Syscall numbers. The calling convention (trampoline call with the
// number in R0 and arguments in R1..R5, result in R0) is documented in
// internal/libos/abi.go, which re-exports these constants to user-program
// builders.
const (
	SysExit     = 1  // exit(status)
	SysWrite    = 2  // write(fd, buf, len) → n
	SysRead     = 3  // read(fd, buf, len) → n
	SysOpen     = 4  // open(path, pathLen, flags) → fd
	SysClose    = 5  // close(fd)
	SysSpawn    = 6  // spawn(path, pathLen, argvBlock, argvLen) → pid
	SysWait4    = 7  // wait4(pid, statusPtr) → pid
	SysPipe2    = 8  // pipe2(fds[2]ptr)
	SysDup2     = 9  // dup2(oldfd, newfd)
	SysGetpid   = 10 // getpid() → pid
	SysMmap     = 11 // mmap(len) → addr (anonymous RW only)
	SysMunmap   = 12 // munmap(addr, len)
	SysFutex    = 13 // futex(op, addr, val)
	SysKill     = 14 // kill(pid, sig)
	SysSigact   = 15 // sigaction(sig, handler)
	SysSigret   = 16 // sigreturn()
	SysLseek    = 17 // lseek(fd, off, whence) → off
	SysStat     = 18 // stat(path, pathLen, statPtr{size,isdir})
	SysMkdir    = 19 // mkdir(path, pathLen)
	SysUnlink   = 20 // unlink(path, pathLen)
	SysReaddir  = 21 // readdir(path, pathLen, buf, bufLen) → n
	SysSocket   = 22 // socket() → fd
	SysBind     = 23 // bind(fd, port)
	SysListen   = 24 // listen(fd)
	SysAccept   = 25 // accept(fd) → connfd
	SysConnect  = 26 // connect(fd, port)
	SysSend     = 27 // send(fd, buf, len) → n
	SysRecv     = 28 // recv(fd, buf, len) → n
	SysClock    = 29 // clock_gettime() → ns
	SysYield    = 30 // sched_yield()
	SysGetppid  = 31 // getppid() → pid
	SysFsync    = 32 // fsync(fd)
	SysSpawnCPU = 33 // internal: report consumed cycles (diagnostics)
	SysFcntl    = 34 // fcntl(fd, cmd, arg) → flags (F_GETFL/F_SETFL)
	SysPoll     = 35 // poll(fdsPtr, nfds, timeoutMs) → ready count
	SysEpCreate = 36 // epoll_create() → epfd
	SysEpCtl    = 37 // epoll_ctl(epfd, op, fd, events)
	SysEpWait   = 38 // epoll_wait(epfd, eventsPtr, maxEvents, timeoutMs) → n
	SysShutdown = 39 // shutdown(fd, how)
	SysRename   = 40 // rename(oldPath, oldLen, newPath, newLen)
	SysWritev   = 41 // writev(fd, iovPtr, iovCnt) → n
	SysReadv    = 42 // readv(fd, iovPtr, iovCnt) → n
	SysSendfile = 43 // sendfile(outfd, infd, off, count) → n
	SysSplice   = 44 // splice(fdIn, fdOut, count) → n

	// SysMax bounds the dispatch table; numbers must stay below it.
	SysMax = 64
)

// Errno values (returned as -errno in R0).
const (
	EPERM        = 1
	ENOENT       = 2
	ESRCH        = 3
	EINTR        = 4
	EIO          = 5
	EBADF        = 9
	ECHILD       = 10
	EAGAIN       = 11
	ENOMEM       = 12
	EACCES       = 13
	EFAULT       = 14
	EEXIST       = 17
	EXDEV        = 18
	ENOTDIR      = 20
	EISDIR       = 21
	EINVAL       = 22
	EMFILE       = 24
	ENOSPC       = 28
	ESPIPE       = 29
	EPIPE        = 32
	ENOSYS       = 38
	ENOTEMPTY    = 39
	ENOTCONN     = 107
	ECONNREFUSED = 111
)

// Open flags in the user ABI (mirroring fs.OpenFlag values).
const (
	ORdOnly = 0
	OWrOnly = 1
	ORdWr   = 2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Futex operations.
const (
	FutexWait = 0
	FutexWake = 1
)

// Status flags set with fcntl(F_SETFL). O_NONBLOCK is a property of the
// open file description, so — as on Linux — processes sharing a
// description via dup2 or spawn inheritance share the flag.
const (
	ONonblock = 0x800
)

// Fcntl commands.
const (
	FGetFl = 3
	FSetFl = 4
)

// poll/epoll event bits (pollfd.events / epoll interest masks).
// PollErr, PollHup and PollNval are always reported regardless of the
// requested mask, as in poll(2).
const (
	PollIn   = 0x1
	PollOut  = 0x4
	PollErr  = 0x8
	PollHup  = 0x10
	PollNval = 0x20
)

// epoll_ctl operations.
const (
	EpCtlAdd = 1
	EpCtlDel = 2
	EpCtlMod = 3
)

// shutdown(2) directions.
const (
	ShutRd   = 0
	ShutWr   = 1
	ShutRdWr = 2
)

// PollMaxFDs bounds one poll set; EpMaxEvents bounds one epoll_wait
// result batch. Both keep a single syscall's user-memory traffic small.
const (
	PollMaxFDs  = 128
	EpMaxEvents = 256
)

// User-memory layouts: poll takes an array of 24-byte entries
// {fd i64, events u64, revents u64}; epoll_wait fills an array of
// 16-byte entries {fd u64, revents u64}; readv/writev take an array of
// 16-byte iovec entries {base u64, len u64}. All fields are
// little-endian 64-bit words, matching the OVM's natural load/store
// width.
const (
	PollEntrySize = 24
	EpEntrySize   = 16
	IovEntrySize  = 16
)

// IovMax bounds one readv/writev iovec array (UIO_MAXIOV's role); the
// summed spans are additionally capped at MaxUserBuf, like a scalar
// buffer.
const IovMax = 64

// Sendfile/splice semantics: sendfile(outfd, infd, off, count) reads
// [off, off+count) of the in file — the description offset is neither
// consulted nor advanced, pread-style, so concurrent servers need no
// offset locking — and sends it to the out socket, returning the byte
// count actually queued (short when the socket backpressures; 0 at
// EOF). splice(fdIn, fdOut, count) moves up to count bytes between a
// pipe and a socket (either direction) without the bytes ever entering
// guest memory; it returns as soon as at least one byte moves.

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// MaxUserBuf caps a single read/write/path buffer, as the seed kernels
// did ad hoc.
const MaxUserBuf = 1 << 20
