package sysdispatch

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

// fakeKernel backs handlers with a flat memory buffer and an fd table.
type fakeKernel struct {
	mem  []byte
	fds  *FDTable
	pid  int
	ppid int
}

func newFakeKernel() *fakeKernel {
	return &fakeKernel{mem: make([]byte, 4096), fds: NewFDTable(), pid: 7, ppid: 3}
}

func (k *fakeKernel) ReadUser(addr, n uint64) ([]byte, error) {
	if addr+n > uint64(len(k.mem)) {
		return nil, errors.New("fault")
	}
	return append([]byte(nil), k.mem[addr:addr+n]...), nil
}

func (k *fakeKernel) WriteUser(addr uint64, b []byte) error {
	if addr+uint64(len(b)) > uint64(len(k.mem)) {
		return errors.New("fault")
	}
	copy(k.mem[addr:], b)
	return nil
}

func (k *fakeKernel) FDs() *FDTable { return k.fds }
func (k *fakeKernel) PID() int      { return k.pid }
func (k *fakeKernel) PPID() int     { return k.ppid }

// fakeFile counts refs and records data.
type fakeFile struct {
	refs int
	data []byte
	off  int
}

func (f *fakeFile) Read(p []byte) (int, error) {
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}
func (f *fakeFile) Write(p []byte) (int, error) { f.data = append(f.data, p...); return len(p), nil }
func (f *fakeFile) Seek(off int64, whence int) (int64, error) {
	f.off = int(off)
	return off, nil
}
func (f *fakeFile) Ref()   { f.refs++ }
func (f *fakeFile) Unref() { f.refs-- }

func TestDispatchUnknownIsENOSYS(t *testing.T) {
	tab := NewTable()
	k := newFakeKernel()
	var a [5]uint64
	if r := tab.Dispatch(k, 999, &a); r.Ret != -ENOSYS {
		t.Fatalf("Ret = %d, want -ENOSYS", r.Ret)
	}
	if r := tab.Dispatch(k, SysOpen, &a); r.Ret != -ENOSYS {
		t.Fatalf("unregistered slot: Ret = %d, want -ENOSYS", r.Ret)
	}
}

func TestDoubleRegistrationPanics(t *testing.T) {
	tab := NewTable()
	tab.Register(SysGetpid, Getpid)
	defer func() {
		if recover() == nil {
			t.Fatal("double registration did not panic")
		}
	}()
	tab.Register(SysGetpid, Getpid)
}

func TestFDTableLowestFree(t *testing.T) {
	tab := NewFDTable()
	a, b := &fakeFile{refs: 1}, &fakeFile{refs: 1}
	if fd := tab.Install(a); fd != 3 {
		t.Fatalf("first install = %d, want 3", fd)
	}
	if fd := tab.Install(b); fd != 4 {
		t.Fatalf("second install = %d, want 4", fd)
	}
	tab.Remove(3)
	if fd := tab.Install(&fakeFile{refs: 1}); fd != 3 {
		t.Fatalf("reuse install = %d, want 3", fd)
	}
}

func TestDup2RefCounts(t *testing.T) {
	tab := NewFDTable()
	a, b := &fakeFile{refs: 1}, &fakeFile{refs: 1}
	afd, bfd := tab.Install(a), tab.Install(b)
	if ret := tab.Dup2(afd, bfd); ret != int64(bfd) {
		t.Fatalf("dup2 = %d", ret)
	}
	if a.refs != 2 || b.refs != 0 {
		t.Fatalf("refs after dup2: a=%d b=%d, want 2, 0", a.refs, b.refs)
	}
	if ret := tab.Dup2(afd, afd); ret != int64(afd) || a.refs != 2 {
		t.Fatalf("self-dup2 changed refs: %d (ret %d)", a.refs, ret)
	}
	if ret := tab.Dup2(99, 5); ret != -EBADF {
		t.Fatalf("dup2 of bad fd = %d, want -EBADF", ret)
	}
}

func TestInheritAndCloseAll(t *testing.T) {
	parent := NewFDTable()
	f := &fakeFile{refs: 1}
	parent.Install(f)
	child := NewFDTable()
	child.InheritFrom(parent)
	if f.refs != 2 {
		t.Fatalf("refs after inherit = %d, want 2", f.refs)
	}
	child.CloseAll()
	parent.CloseAll()
	if f.refs != 0 {
		t.Fatalf("refs after close = %d, want 0", f.refs)
	}
}

func TestSpawnHandlerMarshalling(t *testing.T) {
	k := newFakeKernel()
	copy(k.mem[100:], "/bin/x")
	copy(k.mem[200:], "a\x00bc\x00")
	var gotPath string
	var gotArgv []string
	h := SpawnHandler(func(_ Kernel, path string, argv []string) int64 {
		gotPath, gotArgv = path, argv
		return 42
	})
	a := [5]uint64{100, 6, 200, 5}
	if r := h(k, &a); r.Ret != 42 {
		t.Fatalf("Ret = %d", r.Ret)
	}
	if gotPath != "/bin/x" || len(gotArgv) != 2 || gotArgv[0] != "a" || gotArgv[1] != "bc" {
		t.Fatalf("parsed %q %v", gotPath, gotArgv)
	}
	// Unreadable path faults.
	a = [5]uint64{4000, 500}
	if r := h(k, &a); r.Ret != -EFAULT {
		t.Fatalf("fault Ret = %d, want -EFAULT", r.Ret)
	}
}

func TestWait4HandlerWritesStatus(t *testing.T) {
	k := newFakeKernel()
	h := Wait4Handler(func(_ Kernel, pid int) (int, int, int64, bool) {
		return 5, 17, 0, false
	})
	a := [5]uint64{^uint64(0), 64}
	if r := h(k, &a); r.Ret != 5 {
		t.Fatalf("Ret = %d, want 5", r.Ret)
	}
	if got := binary.LittleEndian.Uint64(k.mem[64:]); got != 17 {
		t.Fatalf("status = %d, want 17", got)
	}
	parked := Wait4Handler(func(_ Kernel, pid int) (int, int, int64, bool) {
		return 0, 0, 0, true
	})
	if r := parked(k, &a); !r.Parked {
		t.Fatal("parked wait4 not reported")
	}
}

func TestBlockingReadWrite(t *testing.T) {
	k := newFakeKernel()
	f := &fakeFile{refs: 1}
	fd := k.fds.Install(f)
	copy(k.mem[10:], "hello")
	a := [5]uint64{uint64(fd), 10, 5}
	if r := BlockingWrite(k, &a); r.Ret != 5 {
		t.Fatalf("write Ret = %d", r.Ret)
	}
	a = [5]uint64{uint64(fd), 300, 5}
	if r := BlockingRead(k, &a); r.Ret != 5 {
		t.Fatalf("read Ret = %d", r.Ret)
	}
	if string(k.mem[300:305]) != "hello" {
		t.Fatalf("read back %q", k.mem[300:305])
	}
}

// TestFDTableShardedLowestFree drives the sharded table and a model
// map with a random Install/Remove/Set/Dup2 stream and checks that
// Install always returns the POSIX lowest free slot ≥ 3 — the
// invariant the allocator's watermark+heap must preserve even when
// Set and Dup2 occupy slots it never handed out.
func TestFDTableShardedLowestFree(t *testing.T) {
	tab := NewFDTable()
	model := map[int]bool{}
	lowestFree := func() int {
		for fd := 3; ; fd++ {
			if !model[fd] {
				return fd
			}
		}
	}
	rnd := uint32(12345)
	next := func(n int) int {
		rnd = rnd*1664525 + 1013904223
		return int(rnd>>16) % n
	}
	for op := 0; op < 5000; op++ {
		switch next(4) {
		case 0, 1: // install
			want := lowestFree()
			if fd := tab.Install(&fakeFile{refs: 1}); fd != want {
				t.Fatalf("op %d: install = %d, want %d", op, fd, want)
			}
			model[want] = true
		case 2: // remove a random-ish fd
			fd := 3 + next(40)
			_, ok := tab.Remove(fd)
			if ok != model[fd] {
				t.Fatalf("op %d: remove(%d) = %v, model %v", op, fd, ok, model[fd])
			}
			delete(model, fd)
		case 3: // occupy an arbitrary slot behind the allocator's back
			fd := 3 + next(40)
			tab.Set(fd, &fakeFile{refs: 1})
			model[fd] = true
		}
	}
}

// TestFDTableConcurrent hammers the sharded table from many
// goroutines; run under -race this checks the shard lock discipline,
// and the final sweep checks no fd was ever handed out twice.
func TestFDTableConcurrent(t *testing.T) {
	tab := NewFDTable()
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var mine []int
			for i := 0; i < 500; i++ {
				fd := tab.Install(&fakeFile{refs: 1})
				tab.Get(fd)
				mine = append(mine, fd)
				if len(mine) > 4 {
					victim := mine[0]
					mine = mine[1:]
					if f, ok := tab.Remove(victim); ok {
						f.Unref()
					}
				}
			}
			for _, fd := range mine {
				if f, ok := tab.Remove(fd); ok {
					f.Unref()
				}
			}
		}()
	}
	wg.Wait()
	left := 0
	tab.Range(func(fd int, f File) { left++ })
	if left != 0 {
		t.Fatalf("%d orphan fds after concurrent churn", left)
	}
}
