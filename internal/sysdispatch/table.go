package sysdispatch

import (
	"io"
	"sync"
	"time"
)

// Result is the outcome of one syscall dispatch.
type Result struct {
	// Ret is the value for R0 (negative errno on failure).
	Ret int64
	// Exited: the process tore itself down; nothing is written back.
	Exited bool
	// Parked: the calling task registered a waiter and must be parked;
	// the kernel re-dispatches the same syscall when it is unparked.
	// Only kernels whose tasks are resumable coroutines (the LibOS
	// under the M:N scheduler) ever return this; goroutine-per-process
	// kernels block inside the handler instead.
	Parked bool
	// NoWriteback: the handler managed PC/R0 itself (sigreturn restores
	// a full pre-signal context); skip the normal return path.
	NoWriteback bool
	// Yielded: the process asked to give up its quantum (sched_yield);
	// write back normally, then end the scheduling quantum.
	Yielded bool
}

// Ok returns a plain successful result.
func Ok(v int64) Result { return Result{Ret: v} }

// Errno returns a failed result carrying -e.
func Errno(e int64) Result { return Result{Ret: -e} }

// ParkedResult is returned by a handler that parked the calling task.
var ParkedResult = Result{Parked: true}

// Kernel is what a handler may assume about the calling process,
// implemented by each simulated kernel's process type. User-memory
// access is validated by the implementation (domain bounds for SIPs,
// page permissions for the native baseline).
type Kernel interface {
	// ReadUser copies n bytes of user memory at addr.
	ReadUser(addr, n uint64) ([]byte, error)
	// WriteUser copies b into user memory at addr.
	WriteUser(addr uint64, b []byte) error
	// FDs returns the process's file-descriptor table.
	FDs() *FDTable
	// PID and PPID identify the process.
	PID() int
	PPID() int
}

// Handler executes one syscall for the calling process. a holds the five
// argument registers R1..R5.
type Handler func(k Kernel, a *[5]uint64) Result

// Table maps syscall numbers to handlers. Build one per kernel type at
// init and treat it as immutable afterwards.
type Table struct {
	h [SysMax]Handler
}

// NewTable returns an empty table (every slot answers -ENOSYS).
func NewTable() *Table { return &Table{} }

// Register installs h for syscall number no, panicking on out-of-range
// numbers or double registration — both are build bugs, not runtime
// conditions.
func (t *Table) Register(no int, h Handler) {
	if no < 0 || no >= SysMax {
		panic("sysdispatch: syscall number out of range")
	}
	if t.h[no] != nil {
		panic("sysdispatch: double registration")
	}
	t.h[no] = h
}

// Dispatch runs the handler for no, or fails with -ENOSYS.
func (t *Table) Dispatch(k Kernel, no uint64, a *[5]uint64) Result {
	if no >= SysMax || t.h[no] == nil {
		return Errno(ENOSYS)
	}
	return t.h[no](k, a)
}

// --- Marshalling helpers -------------------------------------------------

// ReadPath copies a path argument (pointer, length pair).
func ReadPath(k Kernel, ptr, n uint64) (string, bool) {
	if n > MaxUserBuf {
		return "", false
	}
	b, err := k.ReadUser(ptr, n)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// ParseArgv splits a NUL-separated argv block.
func ParseArgv(block []byte) []string {
	var argv []string
	start := 0
	for i, b := range block {
		if b == 0 {
			argv = append(argv, string(block[start:i]))
			start = i + 1
		}
	}
	return argv
}

// WriteU64 stores a little-endian u64 to user memory.
func WriteU64(k Kernel, addr, v uint64) bool {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return k.WriteUser(addr, b[:]) == nil
}

// --- Shared handlers -----------------------------------------------------
//
// Fully-shared handlers close over nothing; where one primitive differs
// per kernel (open, spawn, ...), the spine provides the marshalling half
// as a constructor taking the primitive.

// ExitHandler builds the exit handler around the kernel's teardown
// primitive.
func ExitHandler(exit func(k Kernel, status int)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		exit(k, int(int64(a[0]))&0xFF)
		return Result{Exited: true}
	}
}

// CloseFD is the shared close(2).
func CloseFD(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Remove(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	f.Unref()
	return Ok(0)
}

// Dup2FD is the shared dup2(2).
func Dup2FD(k Kernel, a *[5]uint64) Result {
	return Ok(k.FDs().Dup2(int(int64(a[0])), int(int64(a[1]))))
}

// Getpid is the shared getpid(2).
func Getpid(k Kernel, a *[5]uint64) Result { return Ok(int64(k.PID())) }

// Getppid is the shared getppid(2).
func Getppid(k Kernel, a *[5]uint64) Result { return Ok(int64(k.PPID())) }

// Clock is the shared clock_gettime(2) (host wall clock, as in the
// paper: time is delegated to the untrusted host).
func Clock(k Kernel, a *[5]uint64) Result { return Ok(time.Now().UnixNano()) }

// Munmap is the shared munmap(2): every kernel uses a bump allocator, so
// unmapping is a no-op.
func Munmap(k Kernel, a *[5]uint64) Result { return Ok(0) }

// Backlogger is implemented by socket files whose bound host listener
// can take listen(2)'s backlog argument.
type Backlogger interface {
	SetListenBacklog(n int)
}

// Listen is the shared listen(2): binding already created the host
// listener, so the handler's job is plumbing the guest's backlog
// through to it. A backlog ≤ 0 keeps the host default (and old guests
// that never set the register get the seed behavior); the host clamps
// the rest to its cap.
func Listen(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	if bl, ok := f.(Backlogger); ok {
		if n := int(int64(a[1])); n > 0 {
			bl.SetListenBacklog(n)
		}
	}
	return Ok(0)
}

// Lseek is the shared lseek(2) over the fd table.
func Lseek(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	off, err := f.Seek(int64(a[1]), int(int64(a[2])))
	if err != nil {
		return Errno(ESPIPE)
	}
	return Ok(off)
}

// OpenHandler builds open(2) around the kernel's path-open primitive
// (VFS lookup for the LibOS, plaintext map for the native baseline).
// open returns the new file or a negative errno.
func OpenHandler(open func(k Kernel, path string, flags uint64) (File, int64)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		path, ok := ReadPath(k, a[0], a[1])
		if !ok {
			return Errno(EFAULT)
		}
		f, errno := open(k, path, a[2])
		if errno != 0 {
			return Errno(errno)
		}
		return Ok(int64(k.FDs().Install(f)))
	}
}

// SpawnHandler builds spawn(2) around the kernel's process-creation
// primitive. spawn returns the child pid or a negative errno.
func SpawnHandler(spawn func(k Kernel, path string, argv []string) int64) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		path, ok := ReadPath(k, a[0], a[1])
		if !ok {
			return Errno(EFAULT)
		}
		var argv []string
		if a[3] > 0 {
			if a[3] > MaxUserBuf {
				return Errno(EFAULT)
			}
			block, err := k.ReadUser(a[2], a[3])
			if err != nil {
				return Errno(EFAULT)
			}
			argv = ParseArgv(block)
		}
		return Ok(spawn(k, path, argv))
	}
}

// Wait4Handler builds wait4(2) around the kernel's child-reaping
// primitive, which returns (pid, status, errno, parked). A parking
// kernel returns parked=true after registering a child-exit waiter.
func Wait4Handler(wait func(k Kernel, pid int) (cpid, status int, errno int64, parked bool)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		cpid, status, errno, parked := wait(k, int(int64(a[0])))
		if parked {
			return ParkedResult
		}
		if errno != 0 {
			return Errno(errno)
		}
		if a[1] != 0 && !WriteU64(k, a[1], uint64(status)) {
			return Errno(EFAULT)
		}
		return Ok(int64(cpid))
	}
}

// Pipe2Handler builds pipe2(2) around the kernel's pipe constructor.
func Pipe2Handler(newPipe func(k Kernel) (r, w File)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		r, w := newPipe(k)
		rfd := k.FDs().Install(r)
		wfd := k.FDs().Install(w)
		if !WriteU64(k, a[0], uint64(rfd)) || !WriteU64(k, a[0]+8, uint64(wfd)) {
			return Errno(EFAULT)
		}
		return Ok(0)
	}
}

// SocketHandler builds socket(2) around the kernel's socket constructor.
func SocketHandler(newSock func(k Kernel) File) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		return Ok(int64(k.FDs().Install(newSock(k))))
	}
}

// BlockingRead is the shared read(2)/recv(2) for kernels whose processes
// own a goroutine and may block inside the handler. Parking kernels
// register their own read handler instead.
func BlockingRead(k Kernel, a *[5]uint64) Result {
	fd, buf, n := int(int64(a[0])), a[1], a[2]
	if n > MaxUserBuf {
		return Errno(EINVAL)
	}
	f, ok := k.FDs().Get(fd)
	if !ok {
		return Errno(EBADF)
	}
	tmp := make([]byte, n)
	rn, err := f.Read(tmp)
	if err != nil && err != io.EOF && rn == 0 {
		return Errno(EIO)
	}
	if rn > 0 {
		if k.WriteUser(buf, tmp[:rn]) != nil {
			return Errno(EFAULT)
		}
	}
	return Ok(int64(rn))
}

// ReadIovec unmarshals an iovec array (IovEntrySize-byte {base, len}
// little-endian entries) from user memory, enforcing IovMax on the
// count and MaxUserBuf on each span and on the summed length. The
// spans themselves are validated lazily when dereferenced.
func ReadIovec(k Kernel, ptr, cnt uint64) (base, length []uint64, e int64) {
	if cnt > IovMax {
		return nil, nil, -EINVAL
	}
	if cnt == 0 {
		return nil, nil, 0
	}
	raw, err := k.ReadUser(ptr, cnt*IovEntrySize)
	if err != nil {
		return nil, nil, -EFAULT
	}
	base = make([]uint64, cnt)
	length = make([]uint64, cnt)
	var total uint64
	for i := range base {
		ent := raw[i*IovEntrySize:]
		base[i] = le64(ent)
		length[i] = le64(ent[8:])
		total += length[i]
		if length[i] > MaxUserBuf || total > MaxUserBuf {
			return nil, nil, -EINVAL
		}
	}
	return base, length, 0
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// BlockingReadv is the shared readv(2) for goroutine-per-process
// kernels: scatter the blocking File.Read stream across the iovec
// spans, returning at the first short fill (byte-identical to a scalar
// read loop over the same spans).
func BlockingReadv(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	base, length, e := ReadIovec(k, a[1], a[2])
	if e != 0 {
		return Ok(e)
	}
	var total int64
	for i := range base {
		if length[i] == 0 {
			continue
		}
		tmp := make([]byte, length[i])
		rn, err := f.Read(tmp)
		if err != nil && err != io.EOF && rn == 0 {
			if total > 0 {
				break
			}
			return Errno(EIO)
		}
		if rn > 0 {
			if k.WriteUser(base[i], tmp[:rn]) != nil {
				if total > 0 {
					break
				}
				return Errno(EFAULT)
			}
			total += int64(rn)
		}
		if err == io.EOF || rn < len(tmp) {
			break
		}
	}
	return Ok(total)
}

// BlockingWritev is the shared writev(2) counterpart of BlockingReadv:
// gather the iovec spans through blocking File.Write calls in order,
// reporting partial progress when a later span faults or comes up
// short.
func BlockingWritev(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	base, length, e := ReadIovec(k, a[1], a[2])
	if e != 0 {
		return Ok(e)
	}
	var total int64
	for i := range base {
		if length[i] == 0 {
			continue
		}
		data, err := k.ReadUser(base[i], length[i])
		if err != nil {
			if total > 0 {
				break
			}
			return Errno(EFAULT)
		}
		wn, werr := f.Write(data)
		total += int64(wn)
		if werr != nil && wn == 0 {
			if total > 0 {
				break
			}
			return Errno(EPIPE)
		}
		if wn < len(data) {
			break
		}
	}
	return Ok(total)
}

// BlockingWrite is the shared write(2)/send(2) counterpart of
// BlockingRead.
func BlockingWrite(k Kernel, a *[5]uint64) Result {
	fd, buf, n := int(int64(a[0])), a[1], a[2]
	if n > MaxUserBuf {
		return Errno(EINVAL)
	}
	f, ok := k.FDs().Get(fd)
	if !ok {
		return Errno(EBADF)
	}
	data, err := k.ReadUser(buf, n)
	if err != nil {
		return Errno(EFAULT)
	}
	wn, werr := f.Write(data)
	if werr != nil && wn == 0 {
		return Errno(EPIPE)
	}
	return Ok(int64(wn))
}

// --- File-descriptor table -----------------------------------------------

// File is an open file description as the fd table sees it. The LibOS's
// OpenFile is the canonical implementation, shared by the baselines.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Seek(off int64, whence int) (int64, error)
	Ref()
	Unref()
}

// fdTableShards is the shard count of the descriptor table; a power of
// two so the shard pick is a mask. Adjacent fds land in different
// shards, so an event loop hammering Get on a handful of hot sockets
// does not serialize on one lock.
const fdTableShards = 16

type fdShard struct {
	mu    sync.RWMutex
	files map[int]File
}

// FDTable is the per-process descriptor table: fd → open file
// description, with POSIX lowest-free allocation at or above 3 (so dup2
// targets never collide with fresh fds).
//
// The table is sharded by fd: lookups touch only their shard's RWMutex,
// which is the hot path an epoll loop drives at c100k. Allocation order
// lives behind a separate allocMu — a next-fd watermark plus a min-heap
// of freed slots below it. Set and Dup2 can occupy arbitrary slots the
// allocator never handed out, so Install re-checks occupancy per
// candidate and skips stale ones; the heap self-heals (a slot may be
// listed free while occupied, never the reverse).
type FDTable struct {
	shards [fdTableShards]fdShard

	allocMu sync.Mutex
	freed   []int // min-heap of freed fds below next
	next    int   // every fd ≥ next is untouched by Install
}

// NewFDTable returns an empty table.
func NewFDTable() *FDTable {
	t := &FDTable{next: 3}
	for i := range t.shards {
		t.shards[i].files = make(map[int]File)
	}
	return t
}

func (t *FDTable) shard(fd int) *fdShard {
	return &t.shards[uint(fd)&(fdTableShards-1)]
}

// --- freed min-heap (lock: allocMu) --------------------------------------

func (t *FDTable) heapPush(fd int) {
	t.freed = append(t.freed, fd)
	i := len(t.freed) - 1
	for i > 0 {
		p := (i - 1) / 2
		if t.freed[p] <= t.freed[i] {
			break
		}
		t.freed[p], t.freed[i] = t.freed[i], t.freed[p]
		i = p
	}
}

func (t *FDTable) heapPop() int {
	fd := t.freed[0]
	last := len(t.freed) - 1
	t.freed[0] = t.freed[last]
	t.freed = t.freed[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(t.freed) && t.freed[l] < t.freed[small] {
			small = l
		}
		if r < len(t.freed) && t.freed[r] < t.freed[small] {
			small = r
		}
		if small == i {
			break
		}
		t.freed[i], t.freed[small] = t.freed[small], t.freed[i]
		i = small
	}
	return fd
}

// Get looks up fd.
func (t *FDTable) Get(fd int) (File, bool) {
	sh := t.shard(fd)
	sh.mu.RLock()
	f, ok := sh.files[fd]
	sh.mu.RUnlock()
	return f, ok
}

// Set installs f at an explicit slot (stdio setup), dropping any
// previous occupant's reference.
func (t *FDTable) Set(fd int, f File) {
	sh := t.shard(fd)
	sh.mu.Lock()
	old := sh.files[fd]
	sh.files[fd] = f
	sh.mu.Unlock()
	if old != nil {
		old.Unref()
	}
}

// Install places f in the lowest free slot at or above 3.
func (t *FDTable) Install(f File) int {
	t.allocMu.Lock()
	defer t.allocMu.Unlock()
	for {
		var fd int
		if len(t.freed) > 0 && t.freed[0] < t.next {
			fd = t.heapPop()
		} else {
			fd = t.next
			t.next++
		}
		sh := t.shard(fd)
		sh.mu.Lock()
		_, used := sh.files[fd]
		if !used {
			sh.files[fd] = f
		}
		sh.mu.Unlock()
		if !used {
			return fd
		}
		// Candidate occupied via Set/Dup2: discard and retry.
	}
}

// Remove deletes fd, returning its file (caller unrefs).
func (t *FDTable) Remove(fd int) (File, bool) {
	sh := t.shard(fd)
	sh.mu.Lock()
	f, ok := sh.files[fd]
	if ok {
		delete(sh.files, fd)
	}
	sh.mu.Unlock()
	if ok {
		t.allocMu.Lock()
		if fd < t.next {
			t.heapPush(fd)
		}
		t.allocMu.Unlock()
	}
	return f, ok
}

// Dup2 implements dup2(2): newfd refers to oldfd's description.
func (t *FDTable) Dup2(oldfd, newfd int) int64 {
	oldsh := t.shard(oldfd)
	oldsh.mu.RLock()
	f, ok := oldsh.files[oldfd]
	oldsh.mu.RUnlock()
	if !ok {
		return -EBADF
	}
	if oldfd == newfd {
		return int64(newfd)
	}
	// The description could be closed between the lookup and the ref;
	// Ref on a still-referenced file is safe because the caller's fd
	// pins it — the same guarantee Get-then-use relies on everywhere.
	f.Ref()
	newsh := t.shard(newfd)
	newsh.mu.Lock()
	old := newsh.files[newfd]
	newsh.files[newfd] = f
	newsh.mu.Unlock()
	if old != nil {
		old.Unref()
	}
	return int64(newfd)
}

// InheritFrom fills the table with references to every entry of the
// parent's — the cheap fd inheritance of spawn (§6). The receiver must
// be fresh and unshared.
func (t *FDTable) InheritFrom(parent *FDTable) {
	for i := range parent.shards {
		psh, sh := &parent.shards[i], &t.shards[i]
		psh.mu.RLock()
		sh.mu.Lock()
		for fd, f := range psh.files {
			f.Ref()
			sh.files[fd] = f
		}
		sh.mu.Unlock()
		psh.mu.RUnlock()
	}
	parent.allocMu.Lock()
	t.allocMu.Lock()
	t.next = parent.next
	t.freed = append([]int(nil), parent.freed...)
	t.allocMu.Unlock()
	parent.allocMu.Unlock()
}

// CloseAll unrefs and drops every entry (process teardown).
func (t *FDTable) CloseAll() {
	var files []File
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, f := range sh.files {
			files = append(files, f)
		}
		sh.files = make(map[int]File)
		sh.mu.Unlock()
	}
	t.allocMu.Lock()
	t.next, t.freed = 3, nil
	t.allocMu.Unlock()
	for _, f := range files {
		f.Unref()
	}
}

// Range calls f for each (fd, file) pair; one shard lock is held at a
// time, so f must not call back into the table.
func (t *FDTable) Range(f func(fd int, file File)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for fd, file := range sh.files {
			f(fd, file)
		}
		sh.mu.RUnlock()
	}
}
