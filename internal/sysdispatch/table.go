package sysdispatch

import (
	"io"
	"sync"
	"time"
)

// Result is the outcome of one syscall dispatch.
type Result struct {
	// Ret is the value for R0 (negative errno on failure).
	Ret int64
	// Exited: the process tore itself down; nothing is written back.
	Exited bool
	// Parked: the calling task registered a waiter and must be parked;
	// the kernel re-dispatches the same syscall when it is unparked.
	// Only kernels whose tasks are resumable coroutines (the LibOS
	// under the M:N scheduler) ever return this; goroutine-per-process
	// kernels block inside the handler instead.
	Parked bool
	// NoWriteback: the handler managed PC/R0 itself (sigreturn restores
	// a full pre-signal context); skip the normal return path.
	NoWriteback bool
	// Yielded: the process asked to give up its quantum (sched_yield);
	// write back normally, then end the scheduling quantum.
	Yielded bool
}

// Ok returns a plain successful result.
func Ok(v int64) Result { return Result{Ret: v} }

// Errno returns a failed result carrying -e.
func Errno(e int64) Result { return Result{Ret: -e} }

// ParkedResult is returned by a handler that parked the calling task.
var ParkedResult = Result{Parked: true}

// Kernel is what a handler may assume about the calling process,
// implemented by each simulated kernel's process type. User-memory
// access is validated by the implementation (domain bounds for SIPs,
// page permissions for the native baseline).
type Kernel interface {
	// ReadUser copies n bytes of user memory at addr.
	ReadUser(addr, n uint64) ([]byte, error)
	// WriteUser copies b into user memory at addr.
	WriteUser(addr uint64, b []byte) error
	// FDs returns the process's file-descriptor table.
	FDs() *FDTable
	// PID and PPID identify the process.
	PID() int
	PPID() int
}

// Handler executes one syscall for the calling process. a holds the five
// argument registers R1..R5.
type Handler func(k Kernel, a *[5]uint64) Result

// Table maps syscall numbers to handlers. Build one per kernel type at
// init and treat it as immutable afterwards.
type Table struct {
	h [SysMax]Handler
}

// NewTable returns an empty table (every slot answers -ENOSYS).
func NewTable() *Table { return &Table{} }

// Register installs h for syscall number no, panicking on out-of-range
// numbers or double registration — both are build bugs, not runtime
// conditions.
func (t *Table) Register(no int, h Handler) {
	if no < 0 || no >= SysMax {
		panic("sysdispatch: syscall number out of range")
	}
	if t.h[no] != nil {
		panic("sysdispatch: double registration")
	}
	t.h[no] = h
}

// Dispatch runs the handler for no, or fails with -ENOSYS.
func (t *Table) Dispatch(k Kernel, no uint64, a *[5]uint64) Result {
	if no >= SysMax || t.h[no] == nil {
		return Errno(ENOSYS)
	}
	return t.h[no](k, a)
}

// --- Marshalling helpers -------------------------------------------------

// ReadPath copies a path argument (pointer, length pair).
func ReadPath(k Kernel, ptr, n uint64) (string, bool) {
	if n > MaxUserBuf {
		return "", false
	}
	b, err := k.ReadUser(ptr, n)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// ParseArgv splits a NUL-separated argv block.
func ParseArgv(block []byte) []string {
	var argv []string
	start := 0
	for i, b := range block {
		if b == 0 {
			argv = append(argv, string(block[start:i]))
			start = i + 1
		}
	}
	return argv
}

// WriteU64 stores a little-endian u64 to user memory.
func WriteU64(k Kernel, addr, v uint64) bool {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return k.WriteUser(addr, b[:]) == nil
}

// --- Shared handlers -----------------------------------------------------
//
// Fully-shared handlers close over nothing; where one primitive differs
// per kernel (open, spawn, ...), the spine provides the marshalling half
// as a constructor taking the primitive.

// ExitHandler builds the exit handler around the kernel's teardown
// primitive.
func ExitHandler(exit func(k Kernel, status int)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		exit(k, int(int64(a[0]))&0xFF)
		return Result{Exited: true}
	}
}

// CloseFD is the shared close(2).
func CloseFD(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Remove(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	f.Unref()
	return Ok(0)
}

// Dup2FD is the shared dup2(2).
func Dup2FD(k Kernel, a *[5]uint64) Result {
	return Ok(k.FDs().Dup2(int(int64(a[0])), int(int64(a[1]))))
}

// Getpid is the shared getpid(2).
func Getpid(k Kernel, a *[5]uint64) Result { return Ok(int64(k.PID())) }

// Getppid is the shared getppid(2).
func Getppid(k Kernel, a *[5]uint64) Result { return Ok(int64(k.PPID())) }

// Clock is the shared clock_gettime(2) (host wall clock, as in the
// paper: time is delegated to the untrusted host).
func Clock(k Kernel, a *[5]uint64) Result { return Ok(time.Now().UnixNano()) }

// Munmap is the shared munmap(2): every kernel uses a bump allocator, so
// unmapping is a no-op.
func Munmap(k Kernel, a *[5]uint64) Result { return Ok(0) }

// Listen is the shared listen(2): binding already created the host
// listener.
func Listen(k Kernel, a *[5]uint64) Result { return Ok(0) }

// Lseek is the shared lseek(2) over the fd table.
func Lseek(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	off, err := f.Seek(int64(a[1]), int(int64(a[2])))
	if err != nil {
		return Errno(ESPIPE)
	}
	return Ok(off)
}

// OpenHandler builds open(2) around the kernel's path-open primitive
// (VFS lookup for the LibOS, plaintext map for the native baseline).
// open returns the new file or a negative errno.
func OpenHandler(open func(k Kernel, path string, flags uint64) (File, int64)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		path, ok := ReadPath(k, a[0], a[1])
		if !ok {
			return Errno(EFAULT)
		}
		f, errno := open(k, path, a[2])
		if errno != 0 {
			return Errno(errno)
		}
		return Ok(int64(k.FDs().Install(f)))
	}
}

// SpawnHandler builds spawn(2) around the kernel's process-creation
// primitive. spawn returns the child pid or a negative errno.
func SpawnHandler(spawn func(k Kernel, path string, argv []string) int64) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		path, ok := ReadPath(k, a[0], a[1])
		if !ok {
			return Errno(EFAULT)
		}
		var argv []string
		if a[3] > 0 {
			if a[3] > MaxUserBuf {
				return Errno(EFAULT)
			}
			block, err := k.ReadUser(a[2], a[3])
			if err != nil {
				return Errno(EFAULT)
			}
			argv = ParseArgv(block)
		}
		return Ok(spawn(k, path, argv))
	}
}

// Wait4Handler builds wait4(2) around the kernel's child-reaping
// primitive, which returns (pid, status, errno, parked). A parking
// kernel returns parked=true after registering a child-exit waiter.
func Wait4Handler(wait func(k Kernel, pid int) (cpid, status int, errno int64, parked bool)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		cpid, status, errno, parked := wait(k, int(int64(a[0])))
		if parked {
			return ParkedResult
		}
		if errno != 0 {
			return Errno(errno)
		}
		if a[1] != 0 && !WriteU64(k, a[1], uint64(status)) {
			return Errno(EFAULT)
		}
		return Ok(int64(cpid))
	}
}

// Pipe2Handler builds pipe2(2) around the kernel's pipe constructor.
func Pipe2Handler(newPipe func(k Kernel) (r, w File)) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		r, w := newPipe(k)
		rfd := k.FDs().Install(r)
		wfd := k.FDs().Install(w)
		if !WriteU64(k, a[0], uint64(rfd)) || !WriteU64(k, a[0]+8, uint64(wfd)) {
			return Errno(EFAULT)
		}
		return Ok(0)
	}
}

// SocketHandler builds socket(2) around the kernel's socket constructor.
func SocketHandler(newSock func(k Kernel) File) Handler {
	return func(k Kernel, a *[5]uint64) Result {
		return Ok(int64(k.FDs().Install(newSock(k))))
	}
}

// BlockingRead is the shared read(2)/recv(2) for kernels whose processes
// own a goroutine and may block inside the handler. Parking kernels
// register their own read handler instead.
func BlockingRead(k Kernel, a *[5]uint64) Result {
	fd, buf, n := int(int64(a[0])), a[1], a[2]
	if n > MaxUserBuf {
		return Errno(EINVAL)
	}
	f, ok := k.FDs().Get(fd)
	if !ok {
		return Errno(EBADF)
	}
	tmp := make([]byte, n)
	rn, err := f.Read(tmp)
	if err != nil && err != io.EOF && rn == 0 {
		return Errno(EIO)
	}
	if rn > 0 {
		if k.WriteUser(buf, tmp[:rn]) != nil {
			return Errno(EFAULT)
		}
	}
	return Ok(int64(rn))
}

// ReadIovec unmarshals an iovec array (IovEntrySize-byte {base, len}
// little-endian entries) from user memory, enforcing IovMax on the
// count and MaxUserBuf on each span and on the summed length. The
// spans themselves are validated lazily when dereferenced.
func ReadIovec(k Kernel, ptr, cnt uint64) (base, length []uint64, e int64) {
	if cnt > IovMax {
		return nil, nil, -EINVAL
	}
	if cnt == 0 {
		return nil, nil, 0
	}
	raw, err := k.ReadUser(ptr, cnt*IovEntrySize)
	if err != nil {
		return nil, nil, -EFAULT
	}
	base = make([]uint64, cnt)
	length = make([]uint64, cnt)
	var total uint64
	for i := range base {
		ent := raw[i*IovEntrySize:]
		base[i] = le64(ent)
		length[i] = le64(ent[8:])
		total += length[i]
		if length[i] > MaxUserBuf || total > MaxUserBuf {
			return nil, nil, -EINVAL
		}
	}
	return base, length, 0
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// BlockingReadv is the shared readv(2) for goroutine-per-process
// kernels: scatter the blocking File.Read stream across the iovec
// spans, returning at the first short fill (byte-identical to a scalar
// read loop over the same spans).
func BlockingReadv(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	base, length, e := ReadIovec(k, a[1], a[2])
	if e != 0 {
		return Ok(e)
	}
	var total int64
	for i := range base {
		if length[i] == 0 {
			continue
		}
		tmp := make([]byte, length[i])
		rn, err := f.Read(tmp)
		if err != nil && err != io.EOF && rn == 0 {
			if total > 0 {
				break
			}
			return Errno(EIO)
		}
		if rn > 0 {
			if k.WriteUser(base[i], tmp[:rn]) != nil {
				if total > 0 {
					break
				}
				return Errno(EFAULT)
			}
			total += int64(rn)
		}
		if err == io.EOF || rn < len(tmp) {
			break
		}
	}
	return Ok(total)
}

// BlockingWritev is the shared writev(2) counterpart of BlockingReadv:
// gather the iovec spans through blocking File.Write calls in order,
// reporting partial progress when a later span faults or comes up
// short.
func BlockingWritev(k Kernel, a *[5]uint64) Result {
	f, ok := k.FDs().Get(int(int64(a[0])))
	if !ok {
		return Errno(EBADF)
	}
	base, length, e := ReadIovec(k, a[1], a[2])
	if e != 0 {
		return Ok(e)
	}
	var total int64
	for i := range base {
		if length[i] == 0 {
			continue
		}
		data, err := k.ReadUser(base[i], length[i])
		if err != nil {
			if total > 0 {
				break
			}
			return Errno(EFAULT)
		}
		wn, werr := f.Write(data)
		total += int64(wn)
		if werr != nil && wn == 0 {
			if total > 0 {
				break
			}
			return Errno(EPIPE)
		}
		if wn < len(data) {
			break
		}
	}
	return Ok(total)
}

// BlockingWrite is the shared write(2)/send(2) counterpart of
// BlockingRead.
func BlockingWrite(k Kernel, a *[5]uint64) Result {
	fd, buf, n := int(int64(a[0])), a[1], a[2]
	if n > MaxUserBuf {
		return Errno(EINVAL)
	}
	f, ok := k.FDs().Get(fd)
	if !ok {
		return Errno(EBADF)
	}
	data, err := k.ReadUser(buf, n)
	if err != nil {
		return Errno(EFAULT)
	}
	wn, werr := f.Write(data)
	if werr != nil && wn == 0 {
		return Errno(EPIPE)
	}
	return Ok(int64(wn))
}

// --- File-descriptor table -----------------------------------------------

// File is an open file description as the fd table sees it. The LibOS's
// OpenFile is the canonical implementation, shared by the baselines.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Seek(off int64, whence int) (int64, error)
	Ref()
	Unref()
}

// FDTable is the per-process descriptor table: fd → open file
// description, with POSIX lowest-free allocation at or above 3 (so dup2
// targets never collide with fresh fds).
type FDTable struct {
	mu    sync.Mutex
	files map[int]File
}

// NewFDTable returns an empty table.
func NewFDTable() *FDTable {
	return &FDTable{files: make(map[int]File)}
}

// Get looks up fd.
func (t *FDTable) Get(fd int) (File, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.files[fd]
	return f, ok
}

// Set installs f at an explicit slot (stdio setup), dropping any
// previous occupant's reference.
func (t *FDTable) Set(fd int, f File) {
	t.mu.Lock()
	old := t.files[fd]
	t.files[fd] = f
	t.mu.Unlock()
	if old != nil {
		old.Unref()
	}
}

// Install places f in the lowest free slot at or above 3.
func (t *FDTable) Install(f File) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd := 3
	for {
		if _, used := t.files[fd]; !used {
			break
		}
		fd++
	}
	t.files[fd] = f
	return fd
}

// Remove deletes fd, returning its file (caller unrefs).
func (t *FDTable) Remove(fd int) (File, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.files[fd]
	if ok {
		delete(t.files, fd)
	}
	return f, ok
}

// Dup2 implements dup2(2): newfd refers to oldfd's description.
func (t *FDTable) Dup2(oldfd, newfd int) int64 {
	t.mu.Lock()
	f, ok := t.files[oldfd]
	if !ok {
		t.mu.Unlock()
		return -EBADF
	}
	if oldfd == newfd {
		t.mu.Unlock()
		return int64(newfd)
	}
	old := t.files[newfd]
	f.Ref()
	t.files[newfd] = f
	t.mu.Unlock()
	if old != nil {
		old.Unref()
	}
	return int64(newfd)
}

// InheritFrom fills the table with references to every entry of the
// parent's — the cheap fd inheritance of spawn (§6).
func (t *FDTable) InheritFrom(parent *FDTable) {
	parent.mu.Lock()
	defer parent.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	for fd, f := range parent.files {
		f.Ref()
		t.files[fd] = f
	}
}

// CloseAll unrefs and drops every entry (process teardown).
func (t *FDTable) CloseAll() {
	t.mu.Lock()
	files := t.files
	t.files = make(map[int]File)
	t.mu.Unlock()
	for _, f := range files {
		f.Unref()
	}
}

// Range calls f for each (fd, file) pair; the table lock is held, so f
// must not call back into the table.
func (t *FDTable) Range(f func(fd int, file File)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for fd, file := range t.files {
		f(fd, file)
	}
}
