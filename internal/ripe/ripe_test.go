package ripe

import "testing"

func TestOcclumPreventsInjectionAndROP(t *testing.T) {
	for _, sp := range []bool{false, true} {
		cc, outs, err := RunCorpus(GenerateCorpus(sp), EnvOcclum)
		if err != nil {
			t.Fatal(err)
		}
		if cc.Succeeded[TargetShellcode] != 0 {
			t.Errorf("sp=%v: %d code-injection attacks succeeded on Occlum",
				sp, cc.Succeeded[TargetShellcode])
		}
		if cc.Succeeded[TargetGadget] != 0 {
			t.Errorf("sp=%v: %d ROP attacks succeeded on Occlum", sp, cc.Succeeded[TargetGadget])
		}
		// Return-to-libc still succeeds (libc functions start with
		// valid cfi_labels) — matching the paper.
		if cc.Succeeded[TargetLibc] == 0 {
			t.Errorf("sp=%v: return-to-libc unexpectedly prevented — corpus broken?", sp)
		}
		for _, o := range outs {
			if !o.Succeeded && o.PreventedBy == "no effect" && o.Attack.Target != TargetLibc {
				t.Logf("sp=%v %v/%v buf=%d: no effect", sp, o.Attack.Tech, o.Attack.Target, o.Attack.BufSize)
			}
		}
	}
}

func TestGrapheneVulnerableWithoutSP(t *testing.T) {
	cc, _, err := RunCorpus(GenerateCorpus(false), EnvGraphene)
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range []Target{TargetShellcode, TargetGadget, TargetLibc} {
		if cc.Succeeded[tgt] == 0 {
			t.Errorf("no %v attack succeeded on Graphene without stack protection", tgt)
		}
	}
}

func TestStackProtectorReducesGrapheneAttacks(t *testing.T) {
	noSP, _, err := RunCorpus(GenerateCorpus(false), EnvGraphene)
	if err != nil {
		t.Fatal(err)
	}
	withSP, _, err := RunCorpus(GenerateCorpus(true), EnvGraphene)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(cc CategoryCounts) int {
		n := 0
		for _, v := range cc.Succeeded {
			n += v
		}
		return n
	}
	if sum(withSP) >= sum(noSP) {
		t.Fatalf("stack protector did not reduce successes: %d → %d", sum(noSP), sum(withSP))
	}
	// Function-pointer overwrites bypass the canary (the paper's
	// residual successes under SP).
	if sum(withSP) == 0 {
		t.Fatal("canary stopped everything — funcptr bypass missing")
	}
}

func TestRetAttacksStoppedByCanary(t *testing.T) {
	a := Attack{Tech: TechRet, Target: TargetLibc, BufSize: 64, StackProt: true}
	o, err := Run(a, EnvGraphene)
	if err != nil {
		t.Fatal(err)
	}
	if o.Succeeded || o.PreventedBy != "stack-protector" {
		t.Fatalf("outcome = %+v, want stack-protector prevention", o)
	}
}

func TestOcclumPreventionMechanisms(t *testing.T) {
	// Plain shellcode: the cfi_guard value check fails (#BR).
	o, err := Run(Attack{Tech: TechFuncPtr, Target: TargetShellcode, BufSize: 64}, EnvOcclum)
	if err != nil {
		t.Fatal(err)
	}
	if o.Succeeded || o.PreventedBy != "MMDSFI (#BR)" {
		t.Fatalf("plain shellcode: %+v", o)
	}
	// Forged-label shellcode: passes the value check, dies on NX.
	o, err = Run(Attack{Tech: TechFuncPtr, Target: TargetShellcode, BufSize: 64, ForgedLabel: true}, EnvOcclum)
	if err != nil {
		t.Fatal(err)
	}
	if o.Succeeded || o.PreventedBy != "NX data region (#PF)" {
		t.Fatalf("forged-label shellcode: %+v", o)
	}
	// Gadget: #BR (no cfi_label at the gadget).
	o, err = Run(Attack{Tech: TechRet, Target: TargetGadget, BufSize: 256}, EnvOcclum)
	if err != nil {
		t.Fatal(err)
	}
	if o.Succeeded || o.PreventedBy != "MMDSFI (#BR)" {
		t.Fatalf("gadget: %+v", o)
	}
}
