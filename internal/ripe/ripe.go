// Package ripe reproduces the paper's §9.3 security evaluation: a
// RIPE-style corpus of buffer-overflow attacks run against an
// Occlum-style environment (MMDSFI-instrumented code, NX data, MPX
// bounds) and a Graphene-SGX-style environment (uninstrumented code, the
// RWX enclave page pool of §7, no MPX).
//
// Each attack builds a deliberately vulnerable program whose stack buffer
// is overflowed with an attacker-controlled payload, corrupting either
// the saved return address or a function pointer. The payload aims at
// injected shellcode, a mid-function gadget, or a legitimate library
// function (return-to-libc). Attacks run with and without a stack
// protector (canary).
//
// Success is detected exactly: the attack "shell" sets a magic register
// value and traps. The paper's findings reproduce:
//
//   - Occlum stops all code-injection attacks (mem_guard/NX) and all
//     ROP-style gadget attacks (cfi_guard), while return-to-libc attacks
//     still succeed (library functions begin with valid cfi_labels);
//   - Graphene-SGX stops none of them without a stack protector, and
//     the canary only stops the return-slot overwrites.
package ripe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmdsfi"
	"repro/internal/mpx"
	"repro/internal/vm"
)

// Env selects the defense environment.
type Env int

// Environments.
const (
	EnvOcclum Env = iota
	EnvGraphene
)

func (e Env) String() string {
	if e == EnvOcclum {
		return "Occlum"
	}
	return "Graphene-SGX"
}

// Technique is the corrupted code pointer.
type Technique int

// Techniques.
const (
	TechRet     Technique = iota // overwrite the saved return address
	TechFuncPtr                  // overwrite a function pointer local
)

func (t Technique) String() string {
	if t == TechRet {
		return "ret"
	}
	return "funcptr"
}

// Target is where the corrupted pointer aims.
type Target int

// Targets, matching the paper's attack classes.
const (
	TargetShellcode Target = iota // code injection
	TargetGadget                  // ROP-style: mid-function code
	TargetLibc                    // return-to-libc: a real function
)

func (t Target) String() string {
	switch t {
	case TargetShellcode:
		return "code-injection"
	case TargetGadget:
		return "rop"
	default:
		return "return-to-libc"
	}
}

// Attack is one corpus entry.
type Attack struct {
	Tech        Technique
	Target      Target
	BufSize     int
	ForgedLabel bool // prefix shellcode with a forged cfi_label
	StackProt   bool // compile with a stack canary
}

// GenerateCorpus enumerates the attack corpus: every technique × target ×
// buffer size, shellcode with and without a forged cfi_label, each with
// and without stack protection.
func GenerateCorpus(stackProt bool) []Attack {
	var out []Attack
	for _, tech := range []Technique{TechRet, TechFuncPtr} {
		for _, tgt := range []Target{TargetShellcode, TargetGadget, TargetLibc} {
			for _, bufSize := range []int{64, 256, 1024} {
				forged := []bool{false}
				if tgt == TargetShellcode {
					forged = []bool{false, true}
				}
				for _, f := range forged {
					out = append(out, Attack{
						Tech: tech, Target: tgt, BufSize: bufSize,
						ForgedLabel: f, StackProt: stackProt,
					})
				}
			}
		}
	}
	return out
}

// Outcome reports one attack run.
type Outcome struct {
	Attack    Attack
	Succeeded bool
	// PreventedBy names the mechanism that stopped a failed attack.
	PreventedBy string
}

// successMagic is the value the attack payload places in R0 on success.
const successMagic = 0x5EC7E7

// canary is the stack-protector value (the attacker does not know it).
const canaryValue = 0x0DD0C0DE

const abortStatus = 0xAB

// buildVulnerable builds the victim program for an attack: a main that
// calls a vulnerable function which copies the payload over its stack
// frame without bounds checking, then (funcptr technique) calls through a
// local function pointer or (ret technique) returns.
//
// Frame layout (low→high): buf[BufSize] | funcptr | canary | saved-ret.
func buildVulnerable(a Attack) (*asm.Program, error) {
	b := asm.NewBuilder()
	payloadLen := a.BufSize + 8 // overflow through funcptr
	if a.Tech == TechRet {
		payloadLen = a.BufSize + 24 // through funcptr, canary and ret
	}
	b.Zero("payload", payloadLen)
	b.Zero("plen", 8)

	b.Entry("_start")
	b.Call("vuln")
	// Normal return: no effect; report 0.
	b.MovRI(isa.R0, 0)
	b.I(isa.Inst{Op: isa.OpTrap})

	b.Func("vuln")
	frame := int32(a.BufSize + 16)
	b.SubI(isa.SP, frame)
	// funcptr ← &benign (the runner patches the *payload*, not this).
	b.LoadData(isa.R2, "benignptr")
	b.Store(isa.Mem(isa.SP, int32(a.BufSize)), isa.R2)
	if a.StackProt {
		b.MovRI(isa.R2, canaryValue)
		b.Store(isa.Mem(isa.SP, int32(a.BufSize)+8), isa.R2)
	}
	// The unchecked copy: memcpy(buf, payload, *plen) — *plen exceeds
	// BufSize, the classic RIPE vulnerability.
	b.LeaData(isa.R3, "payload")
	b.MovRR(isa.R4, isa.SP)
	b.LoadData(isa.R5, "plen")
	b.Label("copy")
	b.CmpI(isa.R5, 0)
	b.Jle("copied")
	b.Load(isa.R6, isa.Mem(isa.R3, 0))
	b.Store(isa.Mem(isa.R4, 0), isa.R6)
	b.AddI(isa.R3, 8)
	b.AddI(isa.R4, 8)
	b.SubI(isa.R5, 8)
	b.Jmp("copy")
	b.Label("copied")
	b.Nop()
	if a.Tech == TechFuncPtr {
		// Call through the (now corrupted) function pointer before
		// the epilogue — which is why the canary cannot help here.
		b.Load(isa.R7, isa.Mem(isa.SP, int32(a.BufSize)))
		b.CallR(isa.R7)
	}
	if a.StackProt {
		b.Load(isa.R2, isa.Mem(isa.SP, int32(a.BufSize)+8))
		b.CmpI(isa.R2, canaryValue)
		b.Jne("smashed")
	}
	b.AddI(isa.SP, frame)
	b.Ret()
	b.Label("smashed")
	// __stack_chk_fail: abort.
	b.MovRI(isa.R0, abortStatus)
	b.I(isa.Inst{Op: isa.OpTrap})

	// benign: the legitimate funcptr target.
	b.Func("benign")
	b.AddI(isa.R1, 1)
	b.Ret()

	// "libc": a real library function whose body is the attacker's
	// goal (think system(3)). It starts with a valid cfi_label.
	b.Func("libc_system")
	b.MovRI(isa.R0, successMagic)
	b.I(isa.Inst{Op: isa.OpTrap})

	// A function containing a usable gadget *not* at a cfi_label.
	b.Func("bigfunc")
	b.AddI(isa.R1, 2)
	b.MulI(isa.R1, 3)
	b.Label("gadget") // mid-function: no cfi_label here
	b.MovRI(isa.R0, successMagic)
	b.I(isa.Inst{Op: isa.OpTrap})

	// Pointer materialization table, filled by the runner.
	b.Zero("benignptr", 8)
	return b.Finish()
}

// Run executes one attack in the given environment and classifies the
// outcome.
func Run(a Attack, env Env) (Outcome, error) {
	prog, err := buildVulnerable(a)
	if err != nil {
		return Outcome{}, err
	}
	opts := mmdsfi.Options{}
	if env == EnvOcclum {
		opts = mmdsfi.DefaultOptions()
	}
	ip, err := mmdsfi.Instrument(prog, opts)
	if err != nil {
		return Outcome{}, err
	}
	img, err := asm.Link(ip)
	if err != nil {
		return Outcome{}, err
	}

	// Load into a bare domain reproducing each environment's memory
	// policy.
	const base = 0x300000
	const domID = 7
	dSize := uint64(1 << 20)
	m := mem.NewPaged(base, img.DataStart()+dSize+uint64(img.GuardSize))
	if err := m.Map(base, img.CodeSpan(), mem.PermRWX); err != nil {
		return Outcome{}, err
	}
	code := append([]byte(nil), img.Code...)
	for _, off := range isa.FindCFIMagic(code) {
		binary.LittleEndian.PutUint32(code[off+4:], domID)
	}
	if err := m.WriteDirect(base, code); err != nil {
		return Outcome{}, err
	}
	dBase := base + img.DataStart()
	dataPerm := mem.PermRW
	if env == EnvGraphene {
		// The RWX enclave page pool of §7: data is executable.
		dataPerm = mem.PermRWX
	}
	if err := m.Map(dBase, dSize, dataPerm); err != nil {
		return Outcome{}, err
	}
	if err := m.WriteDirect(dBase, img.Data); err != nil {
		return Outcome{}, err
	}

	cpu := vm.New(m)
	cpu.PC = base + uint64(img.Entry)
	stackTop := dBase + dSize
	cpu.Regs[isa.SP] = stackTop
	if env == EnvOcclum {
		cpu.Bnd.Set(isa.BND0, mpx.Bound{Lower: dBase, Upper: dBase + dSize - 1})
		v := isa.CFILabelValue(domID)
		cpu.Bnd.Set(isa.BND1, mpx.Bound{Lower: v, Upper: v})
	} else {
		// No MPX programming: bounds stay permissive enough that the
		// (absent) instrumentation never fires.
		cpu.Bnd.Set(isa.BND0, mpx.Bound{Lower: 0, Upper: ^uint64(0)})
		cpu.Bnd.Set(isa.BND1, mpx.Bound{Lower: 0, Upper: ^uint64(0)})
	}

	// The attacker knows the layout (no ASLR, as in RIPE): compute the
	// frame addresses and patch the payload and plen in the data
	// region.
	// At vuln entry: SP = stackTop - 8 (pushed return address);
	// after the prologue SubI: buf = that - frame.
	frame := uint64(a.BufSize + 16)
	bufAddr := stackTop - 8 - frame
	payload, err := buildPayload(a, img, base, bufAddr)
	if err != nil {
		return Outcome{}, err
	}
	payloadAddr := dBase + uint64(img.DataSymbols["payload"])
	if err := m.WriteDirect(payloadAddr, payload); err != nil {
		return Outcome{}, err
	}
	var plen [8]byte
	binary.LittleEndian.PutUint64(plen[:], uint64(len(payload)))
	if err := m.WriteDirect(dBase+uint64(img.DataSymbols["plen"]), plen[:]); err != nil {
		return Outcome{}, err
	}
	// benignptr ← &benign.
	var bp [8]byte
	binary.LittleEndian.PutUint64(bp[:], base+uint64(img.Symbols["benign"]))
	if err := m.WriteDirect(dBase+uint64(img.DataSymbols["benignptr"]), bp[:]); err != nil {
		return Outcome{}, err
	}

	st := cpu.Run(10_000_000)
	out := Outcome{Attack: a}
	switch {
	case st.Reason == vm.StopTrap && cpu.Regs[isa.R0] == successMagic:
		out.Succeeded = true
	case st.Reason == vm.StopTrap && cpu.Regs[isa.R0] == abortStatus:
		out.PreventedBy = "stack-protector"
	case st.Reason == vm.StopException && st.Exc == vm.ExcBound:
		out.PreventedBy = "MMDSFI (#BR)"
	case st.Reason == vm.StopException && st.Exc == vm.ExcPage &&
		st.Fault != nil && st.Fault.Access == mem.AccessExec:
		out.PreventedBy = "NX data region (#PF)"
	case st.Reason == vm.StopException:
		out.PreventedBy = fmt.Sprintf("fault (%v)", st.Exc)
	default:
		out.PreventedBy = "no effect"
	}
	return out, nil
}

// buildPayload constructs the overflow bytes for an attack.
func buildPayload(a Attack, img *asm.Image, codeBase, bufAddr uint64) ([]byte, error) {
	// The corrupted pointer's value.
	var target uint64
	switch a.Target {
	case TargetShellcode:
		target = bufAddr
	case TargetGadget:
		target = codeBase + uint64(img.Symbols["gadget"])
	case TargetLibc:
		target = codeBase + uint64(img.Symbols["libc_system"])
	}

	buf := make([]byte, a.BufSize)
	if a.Target == TargetShellcode {
		var sc []byte
		if a.ForgedLabel {
			// Forge this domain's cfi_label so the value check of
			// cfi_guard passes; only NX can stop it then.
			var err error
			sc, err = isa.Encode(sc, isa.Inst{Op: isa.OpCFILabel, DomainID: 7})
			if err != nil {
				return nil, err
			}
		}
		var err error
		sc, err = isa.Encode(sc, isa.Inst{Op: isa.OpMovRI, R1: isa.R0, Imm: successMagic})
		if err != nil {
			return nil, err
		}
		sc, err = isa.Encode(sc, isa.Inst{Op: isa.OpTrap})
		if err != nil {
			return nil, err
		}
		copy(buf, sc)
	}

	out := buf
	var tgt [8]byte
	binary.LittleEndian.PutUint64(tgt[:], target)
	switch a.Tech {
	case TechFuncPtr:
		out = append(out, tgt[:]...) // overwrite funcptr, stop
	case TechRet:
		out = append(out, tgt[:]...) // funcptr slot: don't care (same value)
		var garbage [8]byte
		binary.LittleEndian.PutUint64(garbage[:], 0x4141414141414141)
		out = append(out, garbage[:]...) // canary slot: smashed
		out = append(out, tgt[:]...)     // saved return address
	}
	return out, nil
}

// CategoryCounts summarizes outcomes by attack class.
type CategoryCounts struct {
	Total     map[Target]int
	Succeeded map[Target]int
}

// RunCorpus executes a corpus in an environment.
func RunCorpus(attacks []Attack, env Env) (CategoryCounts, []Outcome, error) {
	cc := CategoryCounts{Total: map[Target]int{}, Succeeded: map[Target]int{}}
	var outs []Outcome
	for _, a := range attacks {
		o, err := Run(a, env)
		if err != nil {
			return cc, nil, fmt.Errorf("%v/%v: %w", a.Tech, a.Target, err)
		}
		cc.Total[a.Target]++
		if o.Succeeded {
			cc.Succeeded[a.Target]++
		}
		outs = append(outs, o)
	}
	return cc, outs, nil
}
