package hostos

import (
	"bytes"
	"testing"
	"time"
)

// TestCrashAfterSharedBudget verifies the crash budget is shared across
// every file a pattern matches: exactly n writes land regardless of
// which file they target, then everything is dropped until Heal.
func TestCrashAfterSharedBudget(t *testing.T) {
	h := New()
	h.Inject("dev.s*", CrashAfter(3))
	for i := 0; i < 5; i++ {
		h.WriteFileAt("dev.s0", i*4, []byte{byte(i), 1, 2, 3})
		h.WriteFileAt("dev.s1", i*4, []byte{byte(i), 1, 2, 3})
	}
	// 3 writes landed in total: two on s0 (offsets 0,4 interleaved with
	// s1) and one on s1.
	if got := h.FileSize("dev.s0"); got != 8 {
		t.Fatalf("s0 size = %d, want 8", got)
	}
	if got := h.FileSize("dev.s1"); got != 4 {
		t.Fatalf("s1 size = %d, want 4", got)
	}
	// Unmatched files are unaffected.
	h.WriteFileAt("other", 0, []byte("x"))
	if h.FileSize("other") != 1 {
		t.Fatal("crash budget leaked onto an unmatched file")
	}
	if !h.Heal("dev.s*") {
		t.Fatal("dropped writes did not trip the fault")
	}
	h.WriteFileAt("dev.s1", 4, []byte{9, 9, 9, 9})
	if h.FileSize("dev.s1") != 8 {
		t.Fatal("write after Heal still dropped")
	}
}

// TestHealUntripped reports false when the budget never ran out.
func TestHealUntripped(t *testing.T) {
	h := New()
	h.Inject("f", CrashAfter(10))
	h.WriteFileAt("f", 0, []byte("ok"))
	if h.Heal("f") {
		t.Fatal("untripped crash reported tripped")
	}
}

// TestTornWritesDeterministic: the same seed tears the same writes at
// the same points; a torn write persists only a prefix.
func TestTornWritesDeterministic(t *testing.T) {
	run := func() []byte {
		h := New()
		h.Inject("f", TornWrites(0.5, 42))
		for i := 0; i < 16; i++ {
			buf := bytes.Repeat([]byte{byte(i + 1)}, 32)
			h.WriteFileAt("f", i*32, buf)
		}
		got, _ := h.ReadFile("f")
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different torn-write outcomes")
	}
	// With p=0.5 over 16 writes, some must be torn (leaving zero bytes
	// where the tail was dropped inside the grown file).
	torn := false
	for _, x := range a {
		if x == 0 {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no write was torn at p=0.5 over 16 writes")
	}
}

// TestBitRotDeterministic: write-path rot flips bits persistently and
// replays bit-identically under one seed.
func TestBitRotDeterministic(t *testing.T) {
	run := func() []byte {
		h := New()
		h.Inject("f", BitRot(0.01, 7))
		h.WriteFileAt("f", 0, make([]byte, 4096))
		got, _ := h.ReadFile("f")
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different rot")
	}
	rotted := 0
	for _, x := range a {
		if x != 0 {
			rotted++
		}
	}
	if rotted == 0 {
		t.Fatal("no bits rotted at p=0.01 over 4 KiB")
	}
}

// TestShortReads: a short read returns fewer bytes than stored; the
// buffer beyond the returned count must not be trusted, and the count
// is what shrinks — no silent zero-fill.
func TestShortReads(t *testing.T) {
	h := New()
	h.WriteFile("f", bytes.Repeat([]byte{0xAA}, 100))
	h.Inject("f", ShortReads(1.0, 3))
	buf := make([]byte, 100)
	n, err := h.ReadFileAt("f", 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 100 {
		t.Fatalf("read returned %d bytes, want a short count", n)
	}
	h.Heal("f")
	n, _ = h.ReadFileAt("f", 0, buf)
	if n != 100 {
		t.Fatalf("read after Heal = %d, want 100", n)
	}
}

// TestStackedFaults: crash and torn writes stack in injection order on
// the same file set.
func TestStackedFaults(t *testing.T) {
	h := New()
	h.Inject("f", CrashAfter(2), TornWrites(1.0, 1))
	h.WriteFileAt("f", 0, bytes.Repeat([]byte{1}, 64))
	h.WriteFileAt("f", 64, bytes.Repeat([]byte{2}, 64))
	h.WriteFileAt("f", 128, bytes.Repeat([]byte{3}, 64)) // dropped by crash
	if h.FileSize("f") > 128 {
		t.Fatal("crash did not drop the third write")
	}
	// Both surviving writes were torn (p=1.0): the file cannot hold the
	// full 128 bytes of payload.
	full := 0
	got, _ := h.ReadFile("f")
	for _, x := range got {
		if x != 0 {
			full++
		}
	}
	if full >= 128 {
		t.Fatal("torn writes persisted full buffers")
	}
	if !h.Heal("f") {
		t.Fatal("stacked faults never tripped")
	}
}

// TestReadLatency delays matching reads without holding the host lock.
func TestReadLatency(t *testing.T) {
	h := New()
	h.WriteFile("slow", []byte("x"))
	h.WriteFile("fast", []byte("x"))
	h.Inject("slow", ReadLatency(30*time.Millisecond))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := h.ReadFileAt("slow", 0, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency fault not applied: read took %v", d)
	}
	// Concurrent read of an unmatched file is not stalled behind the
	// sleeping one (the sleep happens outside h.mu).
	done := make(chan time.Duration, 1)
	go func() {
		s := time.Now()
		h.ReadFileAt("fast", 0, make([]byte, 1))
		done <- time.Since(s)
	}()
	go h.ReadFileAt("slow", 0, make([]byte, 1))
	if d := <-done; d > 25*time.Millisecond {
		t.Fatalf("unmatched read stalled %v behind a latency fault", d)
	}
}

// TestCorruptDropCopyPut covers the one-shot at-rest faults.
func TestCorruptDropCopyPut(t *testing.T) {
	h := New()
	h.WriteFile("a.s0", make([]byte, 256))
	h.WriteFile("a.s1", make([]byte, 256))
	h.WriteFile("keep", make([]byte, 16))

	snap := h.CopyFiles("a.s*")
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d files, want 2", len(snap))
	}

	if n := h.CorruptFiles("a.s*", 0, 0, 8, 11); n != 16 {
		t.Fatalf("flipped %d bits, want 16 (8 per matched file)", n)
	}
	got, _ := h.ReadFile("a.s0")
	if bytes.Equal(got, snap["a.s0"]) {
		t.Fatal("corruption had no effect")
	}
	// Range-restricted corruption stays inside [from, to).
	h2 := New()
	h2.WriteFile("r", make([]byte, 100))
	h2.CorruptFiles("r", 10, 20, 64, 5)
	r, _ := h2.ReadFile("r")
	for i, x := range r {
		if x != 0 && (i < 10 || i >= 20) {
			t.Fatalf("corruption escaped range: byte %d", i)
		}
	}

	if n := h.DropFiles("a.s*"); n != 2 {
		t.Fatalf("dropped %d files, want 2", n)
	}
	if _, err := h.ReadFile("a.s0"); err == nil {
		t.Fatal("dropped file still readable")
	}
	if h.FileSize("keep") != 16 {
		t.Fatal("drop ate an unmatched file")
	}

	h.PutFiles(snap)
	back, _ := h.ReadFile("a.s1")
	if !bytes.Equal(back, snap["a.s1"]) {
		t.Fatal("restore did not bring the snapshot back")
	}
}
