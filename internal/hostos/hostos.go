// Package hostos models the untrusted host operating system beneath the
// enclave: persistent storage for encrypted filesystem images, futex
// sleep/wake primitives, a loopback network, and untrusted shared memory
// buffers (the channel EIP-based LibOSes use for encrypted IPC).
//
// Everything in this package is OUTSIDE the trust boundary. The LibOS must
// never store plaintext secrets here; the encrypted filesystem (internal/fs)
// and the EIP baseline's encrypted IPC both treat host storage as hostile,
// and tests exercise tamper detection over it.
package hostos

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Host is one untrusted host OS instance.
type Host struct {
	mu        sync.Mutex
	files     map[string][]byte
	faults    []*injection
	futexes   map[uint64]*futexQueue
	listeners map[uint16]*Listener
	shm       map[string][]byte
}

// New creates an empty host.
func New() *Host {
	return &Host{
		files:     make(map[string][]byte),
		futexes:   make(map[uint64]*futexQueue),
		listeners: make(map[uint16]*Listener),
		shm:       make(map[string][]byte),
	}
}

// Storage errors.
var (
	// ErrNoFile reports a missing host file.
	ErrNoFile = errors.New("hostos: no such file")
	// ErrPortInUse reports a taken listen port.
	ErrPortInUse = errors.New("hostos: port in use")
	// ErrConnRefused reports dialing a port with no listener.
	ErrConnRefused = errors.New("hostos: connection refused")
	// ErrClosed reports an operation on a closed connection or
	// listener.
	ErrClosed = errors.New("hostos: closed")
)

// WriteFile stores (or replaces) a host file. The host sees — and may
// tamper with — every byte. Armed write faults (fault.go) apply.
func (h *Host) WriteFile(name string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.applyWriteFaults(name, data)
	if !ok {
		return
	}
	h.files[name] = append([]byte(nil), p...)
}

// ReadFile returns a copy of a host file.
func (h *Host) ReadFile(name string) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, ok := h.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	return append([]byte(nil), data...), nil
}

// RemoveFile deletes a host file.
func (h *Host) RemoveFile(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.files, name)
}

// WriteFileAt overwrites the range [off, off+len(p)) of a host file,
// growing it as needed. This is the block-device write the encrypted
// filesystem uses. Armed write faults (fault.go) apply: a crashed
// budget drops the write silently, a torn write persists only a
// prefix, bit-rot lands flipped bits.
func (h *Host) WriteFileAt(name string, off int, p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.applyWriteFaults(name, p)
	if !ok {
		return
	}
	f := h.files[name]
	if need := off + len(p); need > len(f) {
		nf := make([]byte, need)
		copy(nf, f)
		f = nf
	}
	copy(f[off:], p)
	h.files[name] = f
}

// ReadFileAt reads up to len(p) bytes at off, returning the count.
// Armed read faults (fault.go) apply: a short read returns fewer bytes
// than stored, read latency delays the return. Callers must treat a
// short read as missing data, never as zeros.
func (h *Host) ReadFileAt(name string, off int, p []byte) (int, error) {
	h.mu.Lock()
	f, ok := h.files[name]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	n := 0
	if off < len(f) {
		n = copy(p, f[off:])
	}
	n, delay := h.applyReadFaults(name, n)
	h.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return n, nil
}

// FileSize returns the size of a host file (0 if absent).
func (h *Host) FileSize(name string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.files[name])
}

// --- Futex ---------------------------------------------------------------

type futexQueue struct {
	waiters []*FutexReg
}

// FutexReg is one registered futex waiter. Exactly one of two things
// happens to a registration: FutexWake pops it and invokes its callback,
// or the owner Cancels it. Cancel after a wake is a harmless no-op.
type FutexReg struct {
	h    *Host
	key  uint64
	wake func()
}

// FutexSubscribe registers wake to be called by a future FutexWake on
// key. This is the asynchronous form of FutexWait used by the M:N
// scheduler: instead of blocking a hart, a SIP registers a callback that
// unparks it. The caller must Cancel the registration if it stops
// waiting for any reason other than being woken (e.g. the SIP is killed
// while parked) — a stale registration would otherwise swallow a wake
// meant for a real waiter.
func (h *Host) FutexSubscribe(key uint64, wake func()) *FutexReg {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.futexes[key]
	if q == nil {
		q = &futexQueue{}
		h.futexes[key] = q
	}
	reg := &FutexReg{h: h, key: key, wake: wake}
	q.waiters = append(q.waiters, reg)
	return reg
}

// Cancel removes the registration if it has not been consumed by a wake.
func (r *FutexReg) Cancel() {
	h := r.h
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.futexes[r.key]
	if q == nil {
		return
	}
	for i, w := range q.waiters {
		if w == r {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// FutexWait blocks the caller until a FutexWake on the same key. The LibOS
// uses this to put SGX threads to sleep; the *semantic* correctness of
// user-visible synchronization stays inside the LibOS, as in the paper
// (§6): a spurious or missing host wake can delay a SIP but not corrupt
// LibOS state.
func (h *Host) FutexWait(key uint64) {
	ch := make(chan struct{})
	h.FutexSubscribe(key, func() { close(ch) })
	<-ch
}

// FutexWake wakes up to n waiters on key, returning how many were woken.
// Callbacks run outside the host lock.
func (h *Host) FutexWake(key uint64, n int) int {
	h.mu.Lock()
	q := h.futexes[key]
	var woken []*FutexReg
	if q != nil {
		for len(woken) < n && len(q.waiters) > 0 {
			woken = append(woken, q.waiters[0])
			q.waiters = q.waiters[1:]
		}
	}
	h.mu.Unlock()
	for _, r := range woken {
		r.wake()
	}
	return len(woken)
}

// --- Timers ----------------------------------------------------------------

// Timer schedules fn on the untrusted host clock after d, returning a
// cancel function. Like futex sleeps, timeouts are delegated to the host
// (§6): a malicious host can delay or drop the callback, which can stall
// a poll timeout but never corrupt LibOS state. Cancel after firing is a
// harmless no-op; fn may race a concurrent cancel, so callers must make
// fn idempotent (the parking protocol's latched wakes already are).
func (h *Host) Timer(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// --- Untrusted shared memory ----------------------------------------------

// ShmWrite stores a buffer in untrusted shared memory (used by EIP-based
// LibOSes to pass encrypted IPC messages between enclaves).
func (h *Host) ShmWrite(key string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.shm[key] = append([]byte(nil), data...)
}

// ShmRead fetches a buffer from untrusted shared memory.
func (h *Host) ShmRead(key string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.shm[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}
