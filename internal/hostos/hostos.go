// Package hostos models the untrusted host operating system beneath the
// enclave: persistent storage for encrypted filesystem images, futex
// sleep/wake primitives, a loopback network, and untrusted shared memory
// buffers (the channel EIP-based LibOSes use for encrypted IPC).
//
// Everything in this package is OUTSIDE the trust boundary. The LibOS must
// never store plaintext secrets here; the encrypted filesystem (internal/fs)
// and the EIP baseline's encrypted IPC both treat host storage as hostile,
// and tests exercise tamper detection over it.
package hostos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// tableShards is the shard count for the host's hot connection-facing
// tables (futex queues, listener ports). File and shm state stay under
// the single coarse lock — they are cold paths. A power of two keeps
// the shard pick a mask.
const tableShards = 16

// futexShard is one lock's worth of futex queues. Sharding by key
// keeps a c100k park/unpark storm from serializing on one mutex: each
// key hashes to a shard that owns its queues outright, the
// message-passing-flavored ownership split the sharded tables use
// throughout this stack.
type futexShard struct {
	mu sync.Mutex
	q  map[uint64]*futexQueue
}

// listenerShard is one lock's worth of bound ports.
type listenerShard struct {
	mu sync.Mutex
	m  map[uint16]*Listener
}

// Host is one untrusted host OS instance.
type Host struct {
	mu        sync.Mutex // guards files, faults, shm
	files     map[string][]byte
	faults    []*injection
	shm       map[string][]byte
	futexes   [tableShards]futexShard
	listeners [tableShards]listenerShard
	// activeTimers counts outstanding host timers (armed, not yet
	// fired or cancelled). The timer wheel holds this at ≤1 per hart;
	// tests assert it.
	activeTimers atomic.Int64
}

// New creates an empty host.
func New() *Host {
	h := &Host{
		files: make(map[string][]byte),
		shm:   make(map[string][]byte),
	}
	for i := range h.futexes {
		h.futexes[i].q = make(map[uint64]*futexQueue)
	}
	for i := range h.listeners {
		h.listeners[i].m = make(map[uint16]*Listener)
	}
	return h
}

// futexShardFor picks the shard owning a futex key. The multiply
// spreads low-entropy keys (guest addresses share alignment) across
// shards before masking.
func (h *Host) futexShardFor(key uint64) *futexShard {
	return &h.futexes[(key*0x9e3779b97f4a7c15)>>58&(tableShards-1)]
}

func (h *Host) listenerShardFor(port uint16) *listenerShard {
	return &h.listeners[port&(tableShards-1)]
}

// Storage errors.
var (
	// ErrNoFile reports a missing host file.
	ErrNoFile = errors.New("hostos: no such file")
	// ErrPortInUse reports a taken listen port.
	ErrPortInUse = errors.New("hostos: port in use")
	// ErrConnRefused reports dialing a port with no listener.
	ErrConnRefused = errors.New("hostos: connection refused")
	// ErrClosed reports an operation on a closed connection or
	// listener.
	ErrClosed = errors.New("hostos: closed")
)

// WriteFile stores (or replaces) a host file. The host sees — and may
// tamper with — every byte. Armed write faults (fault.go) apply.
func (h *Host) WriteFile(name string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.applyWriteFaults(name, data)
	if !ok {
		return
	}
	h.files[name] = append([]byte(nil), p...)
}

// ReadFile returns a copy of a host file.
func (h *Host) ReadFile(name string) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, ok := h.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	return append([]byte(nil), data...), nil
}

// RemoveFile deletes a host file.
func (h *Host) RemoveFile(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.files, name)
}

// WriteFileAt overwrites the range [off, off+len(p)) of a host file,
// growing it as needed. This is the block-device write the encrypted
// filesystem uses. Armed write faults (fault.go) apply: a crashed
// budget drops the write silently, a torn write persists only a
// prefix, bit-rot lands flipped bits.
func (h *Host) WriteFileAt(name string, off int, p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.applyWriteFaults(name, p)
	if !ok {
		return
	}
	f := h.files[name]
	if need := off + len(p); need > len(f) {
		nf := make([]byte, need)
		copy(nf, f)
		f = nf
	}
	copy(f[off:], p)
	h.files[name] = f
}

// ReadFileAt reads up to len(p) bytes at off, returning the count.
// Armed read faults (fault.go) apply: a short read returns fewer bytes
// than stored, read latency delays the return. Callers must treat a
// short read as missing data, never as zeros.
func (h *Host) ReadFileAt(name string, off int, p []byte) (int, error) {
	h.mu.Lock()
	f, ok := h.files[name]
	if !ok {
		h.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	n := 0
	if off < len(f) {
		n = copy(p, f[off:])
	}
	n, delay := h.applyReadFaults(name, n)
	h.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return n, nil
}

// FileSize returns the size of a host file (0 if absent).
func (h *Host) FileSize(name string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.files[name])
}

// --- Futex ---------------------------------------------------------------

type futexQueue struct {
	waiters []*FutexReg
}

// FutexReg is one registered futex waiter. Exactly one of two things
// happens to a registration: FutexWake pops it and invokes its callback,
// or the owner Cancels it. Cancel after a wake is a harmless no-op.
type FutexReg struct {
	h    *Host
	key  uint64
	wake func()
}

// FutexSubscribe registers wake to be called by a future FutexWake on
// key. This is the asynchronous form of FutexWait used by the M:N
// scheduler: instead of blocking a hart, a SIP registers a callback that
// unparks it. The caller must Cancel the registration if it stops
// waiting for any reason other than being woken (e.g. the SIP is killed
// while parked) — a stale registration would otherwise swallow a wake
// meant for a real waiter.
func (h *Host) FutexSubscribe(key uint64, wake func()) *FutexReg {
	sh := h.futexShardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.q[key]
	if q == nil {
		q = &futexQueue{}
		sh.q[key] = q
	}
	reg := &FutexReg{h: h, key: key, wake: wake}
	q.waiters = append(q.waiters, reg)
	return reg
}

// Cancel removes the registration if it has not been consumed by a wake.
func (r *FutexReg) Cancel() {
	sh := r.h.futexShardFor(r.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.q[r.key]
	if q == nil {
		return
	}
	for i, w := range q.waiters {
		if w == r {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// FutexWait blocks the caller until a FutexWake on the same key. The LibOS
// uses this to put SGX threads to sleep; the *semantic* correctness of
// user-visible synchronization stays inside the LibOS, as in the paper
// (§6): a spurious or missing host wake can delay a SIP but not corrupt
// LibOS state.
func (h *Host) FutexWait(key uint64) {
	ch := make(chan struct{})
	h.FutexSubscribe(key, func() { close(ch) })
	<-ch
}

// FutexWake wakes up to n waiters on key, returning how many were woken.
// Callbacks run outside the host lock.
func (h *Host) FutexWake(key uint64, n int) int {
	sh := h.futexShardFor(key)
	sh.mu.Lock()
	q := sh.q[key]
	var woken []*FutexReg
	if q != nil {
		for len(woken) < n && len(q.waiters) > 0 {
			woken = append(woken, q.waiters[0])
			q.waiters = q.waiters[1:]
		}
	}
	sh.mu.Unlock()
	for _, r := range woken {
		r.wake()
	}
	return len(woken)
}

// --- Timers ----------------------------------------------------------------

// Timer schedules fn on the untrusted host clock after d, returning a
// cancel function. Like futex sleeps, timeouts are delegated to the host
// (§6): a malicious host can delay or drop the callback, which can stall
// a poll timeout but never corrupt LibOS state. Cancel after firing is a
// harmless no-op; fn may race a concurrent cancel, so callers must make
// fn idempotent (the parking protocol's latched wakes already are).
//
// Each outstanding timer is counted in ActiveTimers. The LibOS timer
// wheel keeps this at one per hart regardless of how many guest
// deadlines are pending; c100k tests assert that bound.
func (h *Host) Timer(d time.Duration, fn func()) (cancel func()) {
	h.activeTimers.Add(1)
	var settled atomic.Bool // fired-or-cancelled latch for the count
	t := time.AfterFunc(d, func() {
		if settled.CompareAndSwap(false, true) {
			h.activeTimers.Add(-1)
		}
		fn()
	})
	return func() {
		t.Stop()
		if settled.CompareAndSwap(false, true) {
			h.activeTimers.Add(-1)
		}
	}
}

// ActiveTimers reports the number of host timers currently armed —
// scheduled and neither fired nor cancelled.
func (h *Host) ActiveTimers() int64 { return h.activeTimers.Load() }

// --- Untrusted shared memory ----------------------------------------------

// ShmWrite stores a buffer in untrusted shared memory (used by EIP-based
// LibOSes to pass encrypted IPC messages between enclaves).
func (h *Host) ShmWrite(key string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.shm[key] = append([]byte(nil), data...)
}

// ShmRead fetches a buffer from untrusted shared memory.
func (h *Host) ShmRead(key string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.shm[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}
